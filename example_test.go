package spatialjoin_test

import (
	"fmt"

	"spatialjoin"
)

// The smallest possible use: join two tiny point sets and print the
// matches.
func ExampleJoin() {
	r := spatialjoin.FromPoints([]spatialjoin.Point{
		{X: 1, Y: 1}, {X: 5, Y: 5},
	}, 0)
	s := spatialjoin.FromPoints([]spatialjoin.Point{
		{X: 1.2, Y: 1}, {X: 9, Y: 9},
	}, 100)

	rep, err := spatialjoin.Join(r, s, spatialjoin.Options{
		Eps:     0.5,
		Collect: true,
	})
	if err != nil {
		panic(err)
	}
	for _, p := range rep.Pairs {
		fmt.Printf("r%d matches s%d\n", p.RID, p.SID)
	}
	// Output: r0 matches s100
}

// Compare two algorithms on the same data: results always agree, the
// metrics differ.
func ExampleJoin_comparingAlgorithms() {
	r := spatialjoin.GenerateGaussian(20_000, 101)
	s := spatialjoin.GenerateGaussian(20_000, 202)

	adaptive, err := spatialjoin.Join(r, s, spatialjoin.Options{
		Eps:       0.5,
		Algorithm: spatialjoin.AdaptiveLPiB,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	pbsm, err := spatialjoin.Join(r, s, spatialjoin.Options{
		Eps:       0.5,
		Algorithm: spatialjoin.PBSMUniR,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("same results:", adaptive.Results == pbsm.Results)
	fmt.Println("adaptive replicates less:", adaptive.Replicated() < pbsm.Replicated())
	// Output:
	// same results: true
	// adaptive replicates less: true
}

// Objects with extent: polylines and polygons join exactly like points.
func ExampleJoinObjects() {
	road := spatialjoin.NewPolyline(1, []spatialjoin.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0},
	})
	park := spatialjoin.NewPolygon(2, []spatialjoin.Point{
		{X: 4, Y: 1}, {X: 6, Y: 1}, {X: 6, Y: 3}, {X: 4, Y: 3},
	})
	farPark := spatialjoin.NewPolygon(3, []spatialjoin.Point{
		{X: 40, Y: 40}, {X: 42, Y: 40}, {X: 42, Y: 42}, {X: 40, Y: 42},
	})

	rep, err := spatialjoin.JoinObjects(
		[]spatialjoin.Object{road},
		[]spatialjoin.Object{park, farPark},
		spatialjoin.Options{Eps: 1.5, Collect: true},
	)
	if err != nil {
		panic(err)
	}
	for _, p := range rep.Pairs {
		fmt.Printf("road %d is within 1.5 of park %d\n", p.RID, p.SID)
	}
	// Output: road 1 is within 1.5 of park 2
}

// BruteForce is the oracle for small inputs and tests.
func ExampleBruteForce() {
	r := spatialjoin.FromPoints([]spatialjoin.Point{{X: 0, Y: 0}}, 0)
	s := spatialjoin.FromPoints([]spatialjoin.Point{{X: 3, Y: 4}}, 10)
	fmt.Println(len(spatialjoin.BruteForce(r, s, 5)))
	fmt.Println(len(spatialjoin.BruteForce(r, s, 4.9)))
	// Output:
	// 1
	// 0
}
