package spatialjoin

import (
	"math/rand"
	"testing"
)

func randomMixedObjects(rng *rand.Rand, n int, base int64) []Object {
	out := make([]Object, n)
	for i := range out {
		anchor := Point{X: rng.Float64() * 30, Y: rng.Float64() * 30}
		id := base + int64(i)
		switch rng.Intn(3) {
		case 0:
			out[i] = NewPointObject(id, anchor)
		case 1:
			out[i] = NewPolyline(id, []Point{anchor, {X: anchor.X + rng.Float64(), Y: anchor.Y + rng.Float64()}})
		default:
			w, h := 0.2+rng.Float64(), 0.2+rng.Float64()
			out[i] = NewPolygon(id, []Point{
				anchor, {X: anchor.X + w, Y: anchor.Y},
				{X: anchor.X + w, Y: anchor.Y + h}, {X: anchor.X, Y: anchor.Y + h},
			})
		}
	}
	return out
}

func TestJoinObjectsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := randomMixedObjects(rng, 500, 0)
	ss := randomMixedObjects(rng, 500, 1_000_000)
	const eps = 0.8

	var want []Pair
	for i := range rs {
		for j := range ss {
			if ObjectDist(&rs[i], &ss[j]) <= eps {
				want = append(want, Pair{RID: rs[i].ID, SID: ss[j].ID})
			}
		}
	}
	sortPairs(want)

	for _, algo := range []Algorithm{AdaptiveLPiB, AdaptiveDIFF, PBSMUniR, PBSMUniS} {
		rep, err := JoinObjects(rs, ss, Options{Eps: eps, Algorithm: algo, Collect: true, Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		got := append([]Pair(nil), rep.Pairs...)
		sortPairs(got)
		if len(got) != len(want) {
			t.Fatalf("%v: got %d pairs, want %d", algo, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: pair %d: %v vs %v", algo, i, got[i], want[i])
			}
		}
	}
}

func TestJoinObjectsReportFields(t *testing.T) {
	rs := []Object{NewPolyline(1, []Point{{X: 0, Y: 0}, {X: 3, Y: 4}})}
	ss := []Object{NewPointObject(2, Point{X: 1, Y: 1})}
	rep, err := JoinObjects(rs, ss, Options{Eps: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxHalfDiag != 2.5 {
		t.Fatalf("max half diag = %v, want 2.5", rep.MaxHalfDiag)
	}
	if rep.EffectiveEps != 6 {
		t.Fatalf("effective eps = %v, want 6", rep.EffectiveEps)
	}
	if rep.Results != 1 {
		t.Fatalf("results = %d, want 1 (point on the segment's eps-band)", rep.Results)
	}
}

func TestJoinObjectsValidation(t *testing.T) {
	if _, err := JoinObjects(nil, nil, Options{Eps: 0}); err == nil {
		t.Error("eps=0 must fail")
	}
	bad := []Object{{Kind: 1, Verts: []Point{{X: 0, Y: 0}}}} // polyline with 1 vertex
	if _, err := JoinObjects(bad, nil, Options{Eps: 1}); err == nil {
		t.Error("invalid object must fail")
	}
}

func TestObjectDistFacade(t *testing.T) {
	a := NewPolygon(1, []Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}})
	b := NewPointObject(2, Point{X: 5, Y: 2})
	if d := ObjectDist(&a, &b); d != 3 {
		t.Fatalf("dist = %v, want 3", d)
	}
}
