package spatialjoin_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/dstore"
	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/textio"
	"spatialjoin/internal/tuple"
)

// buildCmds compiles the command-line tools once into a temp dir and
// returns their paths.
func buildCmds(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := map[string]string{}
	for _, name := range []string{"sjoin", "datagen", "experiments", "sjoind", "sjoin-router"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCommandLinePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t)
	dir := t.TempDir()
	rPath := filepath.Join(dir, "r.txt")
	sPath := filepath.Join(dir, "s.txt")
	outPath := filepath.Join(dir, "pairs.txt")

	// Generate two small data sets.
	out := runCmd(t, bins["datagen"], "-kind", "gaussian", "-n", "5000", "-seed", "101", "-out", rPath)
	if !strings.Contains(out, "wrote 5000 gaussian points") {
		t.Fatalf("datagen output: %s", out)
	}
	runCmd(t, bins["datagen"], "-kind", "tiger", "-n", "5000", "-seed", "303", "-out", sPath)

	// Join them with two algorithms; results must agree.
	resultsOf := func(algo string) string {
		out := runCmd(t, bins["sjoin"], "-r", rPath, "-s", sPath, "-eps", "0.8", "-algo", algo, "-out", outPath)
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "results") {
				return strings.Fields(line)[1]
			}
		}
		t.Fatalf("no results line in sjoin output: %s", out)
		return ""
	}
	lpib := resultsOf("lpib")
	unir := resultsOf("uni-r")
	if lpib != unir {
		t.Fatalf("algorithms disagree via CLI: lpib=%s, uni-r=%s", lpib, unir)
	}

	// The pairs file must hold exactly that many lines.
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if wantLines := lpib; wantLines != "" {
		n := 0
		for _, c := range wantLines {
			n = n*10 + int(c-'0')
		}
		if lines != n {
			t.Fatalf("pairs file has %d lines, results said %d", lines, n)
		}
	}

	// experiments -list shows the registry; a tiny table1 run works.
	list := runCmd(t, bins["experiments"], "-list")
	for _, id := range []string{"fig10", "table6", "xobjects"} {
		if !strings.Contains(list, id) {
			t.Fatalf("experiments -list missing %s:\n%s", id, list)
		}
	}
	t1 := runCmd(t, bins["experiments"], "-exp", "table1", "-quick")
	if !strings.Contains(t1, "Universal replication of R set") {
		t.Fatalf("table1 output unexpected:\n%s", t1)
	}
}

func TestCommandErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t)
	fails := [][]string{
		{bins["sjoin"]}, // missing required flags
		{bins["sjoin"], "-r", "x", "-s", "y", "-eps", "0"}, // bad eps
		{bins["sjoin"], "-r", "missing.txt", "-s", "missing.txt", "-eps", "1"},
		{bins["datagen"], "-kind", "nope", "-out", "z.txt"},
		{bins["datagen"]}, // missing -out
		{bins["experiments"], "-exp", "nope"},
		{bins["experiments"]}, // no action
	}
	for _, args := range fails {
		cmd := exec.Command(args[0], args[1:]...)
		if err := cmd.Run(); err == nil {
			t.Errorf("%v should have failed", args)
		}
	}
}

// TestDatagenStreamOut checks the -stream-out path end to end: the
// streamed columnar file must contain exactly the points the in-memory
// generator produces for the same (kind, n, seed), payloads included.
func TestDatagenStreamOut(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t)
	dir := t.TempDir()
	col := filepath.Join(dir, "r1.col")
	out := runCmd(t, bins["datagen"], "-kind", "tiger", "-n", "20000", "-seed", "303", "-payload", "4", "-stream-out", col)
	if !strings.Contains(out, "wrote 20000 tiger points") {
		t.Fatalf("datagen output: %s", out)
	}

	r, err := dstore.OpenColFile(col)
	if err != nil {
		t.Fatalf("opening streamed colfile: %v", err)
	}
	defer r.Close()
	got, err := r.Tuples()
	if err != nil {
		t.Fatalf("reading streamed colfile: %v", err)
	}
	want := datagen.TigerLike(datagen.World(), 20000, 303, 0)
	if len(got) != len(want) {
		t.Fatalf("streamed file has %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Pt != want[i].Pt {
			t.Fatalf("point %d = %+v, want %+v (draw order diverged)", i, got[i], want[i])
		}
		if string(got[i].Payload) != "xxxx" {
			t.Fatalf("point %d payload = %q", i, got[i].Payload)
		}
	}

	// Flag validation: -out and -stream-out are mutually exclusive.
	if _, err := exec.Command(bins["datagen"], "-out", "a", "-stream-out", "b").CombinedOutput(); err == nil {
		t.Fatal("datagen accepted both -out and -stream-out")
	}
}

// TestDatagenGeomOut checks the -geom path end to end: the text output
// must parse back as the exact objects the in-memory generator draws,
// and the streamed columnar file must carry the same objects in the
// same order as geometry wire payloads.
func TestDatagenGeomOut(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t)
	dir := t.TempDir()
	txt := filepath.Join(dir, "geo.txt")
	col := filepath.Join(dir, "geo.col")
	args := []string{"-kind", "uniform", "-geom", "polygon", "-n", "2000",
		"-seed", "5", "-min-size", "0.5", "-max-size", "2", "-verts", "5"}
	out := runCmd(t, bins["datagen"], append(args, "-out", txt)...)
	if !strings.Contains(out, "wrote 2000 uniform polygon objects") {
		t.Fatalf("datagen output: %s", out)
	}
	runCmd(t, bins["datagen"], append(args, "-stream-out", col)...)

	w := datagen.World()
	want, err := datagen.GeomObjects(
		datagen.GeomSpec{Kind: "polygon", MinExtent: 0.5, MaxExtent: 2, Verts: 5, ShapeSeed: 6},
		func(emit func(tuple.Tuple)) { datagen.UniformEach(w, 2000, 5, 0, emit) })
	if err != nil {
		t.Fatal(err)
	}

	got, err := textio.ReadGeomsFile(txt, 0)
	if err != nil {
		t.Fatalf("reading text output: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("text file has %d objects, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Kind != want[i].Kind || len(got[i].Verts) != len(want[i].Verts) {
			t.Fatalf("text object %d = %+v, want %+v (draw order diverged)", i, got[i], want[i])
		}
		for j := range want[i].Verts {
			if got[i].Verts[j] != want[i].Verts[j] {
				t.Fatalf("text object %d vertex %d diverged", i, j)
			}
		}
	}

	r, err := dstore.OpenColFile(col)
	if err != nil {
		t.Fatalf("opening streamed colfile: %v", err)
	}
	defer r.Close()
	ts, err := r.Tuples()
	if err != nil {
		t.Fatalf("reading streamed colfile: %v", err)
	}
	if len(ts) != len(want) {
		t.Fatalf("streamed file has %d tuples, want %d", len(ts), len(want))
	}
	for i := range want {
		o, err := extgeom.DecodeObject(ts[i].ID, ts[i].Payload)
		if err != nil {
			t.Fatalf("tuple %d payload does not decode: %v", i, err)
		}
		if o.ID != want[i].ID || o.Kind != want[i].Kind || len(o.Verts) != len(want[i].Verts) {
			t.Fatalf("streamed object %d diverged from in-memory draw", i)
		}
		for j := range want[i].Verts {
			if o.Verts[j] != want[i].Verts[j] {
				t.Fatalf("streamed object %d vertex %d diverged", i, j)
			}
		}
		if ts[i].Pt != o.Bounds().Center() {
			t.Fatalf("tuple %d point %v is not the MBR center", i, ts[i].Pt)
		}
	}

	// -payload and -geom are mutually exclusive.
	if _, err := exec.Command(bins["datagen"], append(args, "-payload", "4", "-out", txt)...).CombinedOutput(); err == nil {
		t.Fatal("datagen accepted -payload with -geom")
	}
}
