// Benchmarks: one testing.B per table and figure of the paper's
// evaluation, driving the same experiment harness as cmd/experiments at a
// bench-friendly scale. Each bench reports the headline quantity of its
// artefact via b.ReportMetric so regressions in the *shape* of a result
// (e.g. the adaptive replication advantage) show up in benchstat diffs,
// not just raw speed.
//
// Regenerate the full-scale artefacts with:
//
//	go run ./cmd/experiments -all | tee experiments_output.txt
package spatialjoin_test

import (
	"testing"

	"spatialjoin"
	"spatialjoin/internal/experiments"
)

// benchScale keeps a single bench iteration around a second.
func benchScale() experiments.Scale {
	return experiments.Scale{N: 10_000, Workers: 4, Reps: 1}
}

// runExperiment executes one registry artefact b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	sc := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tables := e.Run(sc); len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

func BenchmarkTable1RunningExample(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkFig1bReplicationOverhead(b *testing.B) {
	// Also surface the headline ratio: UNI best over LPiB on S1xS2.
	sc := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Fig1b(sc)
	}
	b.StopTimer()
	r := replicationAdvantage(sc)
	b.ReportMetric(r, "uni/adaptive-repl")
}

func BenchmarkFig10VaryEpsilonReplication(b *testing.B) { runExperiment(b, "fig10") }
func BenchmarkFig11VaryEpsilonShuffle(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig12VaryEpsilonTime(b *testing.B)        { runExperiment(b, "fig12") }
func BenchmarkTable4Selectivity(b *testing.B)           { runExperiment(b, "table4") }
func BenchmarkFig13Scalability(b *testing.B)            { runExperiment(b, "fig13") }
func BenchmarkFig14VaryNodes(b *testing.B)              { runExperiment(b, "fig14") }
func BenchmarkFig15GridResolution(b *testing.B)         { runExperiment(b, "fig15") }
func BenchmarkFig16TupleSizeSynthetic(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkFig17TupleSizeMixed(b *testing.B)         { runExperiment(b, "fig17") }
func BenchmarkFig18TupleSizeReal(b *testing.B)          { runExperiment(b, "fig18") }
func BenchmarkTable5PostProcessing(b *testing.B)        { runExperiment(b, "table5") }
func BenchmarkTable6Dedup(b *testing.B)                 { runExperiment(b, "table6") }
func BenchmarkTable7LoadBalancing(b *testing.B)         { runExperiment(b, "table7") }

// Extension-experiment benchmarks (ablations beyond the paper).
func BenchmarkXSampleFraction(b *testing.B)    { runExperiment(b, "xsample") }
func BenchmarkXPolicyFallback(b *testing.B)    { runExperiment(b, "xpolicy") }
func BenchmarkXCostModel(b *testing.B)         { runExperiment(b, "xcostmodel") }
func BenchmarkXObjectsExtended(b *testing.B)   { runExperiment(b, "xobjects") }
func BenchmarkXOrderAblation(b *testing.B)     { runExperiment(b, "xorder") }
func BenchmarkXRefPointAblation(b *testing.B)  { runExperiment(b, "xrefpoint") }
func BenchmarkXKernelAblation(b *testing.B)    { runExperiment(b, "xkernel") }
func BenchmarkXBroadcastCost(b *testing.B)     { runExperiment(b, "xbroadcast") }
func BenchmarkXResolutionPlanner(b *testing.B) { runExperiment(b, "xresolution") }

// replicationAdvantage measures best-universal / adaptive replication on
// the synthetic combo.
func replicationAdvantage(sc experiments.Scale) float64 {
	r := spatialjoin.GenerateGaussian(sc.N, 101)
	s := spatialjoin.GenerateGaussian(sc.N, 202)
	adaptive, err := spatialjoin.Join(r, s, spatialjoin.Options{Eps: experiments.DefaultEps, Algorithm: spatialjoin.AdaptiveLPiB, Workers: sc.Workers})
	if err != nil {
		panic(err)
	}
	uniR, err := spatialjoin.Join(r, s, spatialjoin.Options{Eps: experiments.DefaultEps, Algorithm: spatialjoin.PBSMUniR, Workers: sc.Workers})
	if err != nil {
		panic(err)
	}
	uniS, err := spatialjoin.Join(r, s, spatialjoin.Options{Eps: experiments.DefaultEps, Algorithm: spatialjoin.PBSMUniS, Workers: sc.Workers})
	if err != nil {
		panic(err)
	}
	best := uniR.Replicated()
	if uniS.Replicated() < best {
		best = uniS.Replicated()
	}
	return float64(best) / float64(adaptive.Replicated())
}

// Component-level benchmarks: the hot paths of the core algorithm, for
// profiling and regression tracking independent of the full pipeline.

func BenchmarkAdaptiveJoin100k(b *testing.B) {
	r := spatialjoin.GenerateGaussian(100_000, 101)
	s := spatialjoin.GenerateGaussian(100_000, 202)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := spatialjoin.Join(r, s, spatialjoin.Options{Eps: 0.5, Algorithm: spatialjoin.AdaptiveLPiB, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Results == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkPBSMJoin100k(b *testing.B) {
	r := spatialjoin.GenerateGaussian(100_000, 101)
	s := spatialjoin.GenerateGaussian(100_000, 202)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := spatialjoin.Join(r, s, spatialjoin.Options{Eps: 0.5, Algorithm: spatialjoin.PBSMUniR, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Results == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkSedonaJoin100k(b *testing.B) {
	r := spatialjoin.GenerateGaussian(100_000, 101)
	s := spatialjoin.GenerateGaussian(100_000, 202)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := spatialjoin.Join(r, s, spatialjoin.Options{Eps: 0.5, Algorithm: spatialjoin.SedonaLike, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Results == 0 {
			b.Fatal("no results")
		}
	}
}
