// Urban analytics: match taxi pickups to points of interest.
//
// A city's pickups concentrate around hotspots while POIs cluster in
// commercial areas — exactly the locally-varying density where adaptive
// replication shines. Each POI carries a textual payload (name/category),
// so the tuple-size effect the paper studies in Figures 16-18 is visible
// too: replicated fat tuples are bytes on the wire.
//
//	go run ./examples/urban
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialjoin"
)

func main() {
	city := spatialjoin.Rect{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30} // ~30 km square
	rng := rand.New(rand.NewSource(7))

	pickups := generatePickups(rng, city, 150_000)
	pois := generatePOIs(rng, city, 30_000)

	// "Which POIs are within 150 m of each pickup?"
	const eps = 0.15
	fmt.Printf("matching %d pickups against %d POIs within %.0f m\n\n",
		len(pickups), len(pois), eps*1000)

	for _, algo := range []spatialjoin.Algorithm{
		spatialjoin.AdaptiveLPiB,
		spatialjoin.AdaptiveDIFF,
		spatialjoin.PBSMUniR,
		spatialjoin.PBSMUniS,
	} {
		rep, err := spatialjoin.Join(pickups, pois, spatialjoin.Options{
			Eps:       eps,
			Algorithm: algo,
			Bounds:    &city,
			UseLPT:    true,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %9d matches  %8d replicated  %9d bytes shuffled  %v\n",
			algo, rep.Results, rep.Replicated(), rep.ShuffledBytes, rep.TotalTime())
	}
}

// generatePickups models taxi demand: a few heavy hotspots (station,
// airport, nightlife) over a light city-wide background.
func generatePickups(rng *rand.Rand, city spatialjoin.Rect, n int) []spatialjoin.Tuple {
	hotspots := []struct {
		x, y, sigma, weight float64
	}{
		{8, 9, 0.4, 0.35},   // central station
		{25, 5, 0.8, 0.20},  // airport
		{12, 14, 0.6, 0.25}, // nightlife district
		{20, 22, 1.2, 0.10}, // business park
	}
	pts := make([]spatialjoin.Point, 0, n)
	for len(pts) < n {
		t := rng.Float64()
		placed := false
		acc := 0.0
		for _, h := range hotspots {
			acc += h.weight
			if t < acc {
				pts = append(pts, clampPt(spatialjoin.Point{
					X: h.x + rng.NormFloat64()*h.sigma,
					Y: h.y + rng.NormFloat64()*h.sigma,
				}, city))
				placed = true
				break
			}
		}
		if !placed { // background trip
			pts = append(pts, spatialjoin.Point{
				X: city.MinX + rng.Float64()*city.Width(),
				Y: city.MinY + rng.Float64()*city.Height(),
			})
		}
	}
	return spatialjoin.FromPoints(pts, 0)
}

// generatePOIs models points of interest clustered along commercial
// corridors, each carrying a ~48-byte name/category payload.
func generatePOIs(rng *rand.Rand, city spatialjoin.Rect, n int) []spatialjoin.Tuple {
	pts := make([]spatialjoin.Point, 0, n)
	for len(pts) < n {
		// Corridors: line segments with Gaussian spread.
		x0, y0 := rng.Float64()*30, rng.Float64()*30
		dx, dy := rng.NormFloat64(), rng.NormFloat64()
		steps := 5 + rng.Intn(40)
		for i := 0; i < steps && len(pts) < n; i++ {
			pts = append(pts, clampPt(spatialjoin.Point{
				X: x0 + float64(i)*dx*0.1 + rng.NormFloat64()*0.05,
				Y: y0 + float64(i)*dy*0.1 + rng.NormFloat64()*0.05,
			}, city))
		}
	}
	return spatialjoin.WithPayloads(spatialjoin.FromPoints(pts, 1_000_000_000), 48)
}

func clampPt(p spatialjoin.Point, r spatialjoin.Rect) spatialjoin.Point {
	if p.X < r.MinX {
		p.X = r.MinX
	} else if p.X > r.MaxX {
		p.X = r.MaxX
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	} else if p.Y > r.MaxY {
		p.Y = r.MaxY
	}
	return p
}
