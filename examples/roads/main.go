// Objects with extent: find every road segment passing within 50 m of a
// park — the polyline/polygon join the paper lists as future work,
// supported here via MBR-centre replication at an inflated threshold with
// exact geometric refinement.
//
//	go run ./examples/roads
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialjoin"
)

func main() {
	city := spatialjoin.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 50} // km
	rng := rand.New(rand.NewSource(3))

	roads := generateRoads(rng, city, 20_000)
	parks := generateParks(rng, city, 5_000)
	fmt.Printf("joining %d road polylines with %d park polygons\n\n", len(roads), len(parks))

	const eps = 0.05 // 50 m
	rep, err := spatialjoin.JoinObjects(roads, parks, spatialjoin.Options{
		Eps:       eps,
		Algorithm: spatialjoin.AdaptiveLPiB,
		Bounds:    &city,
		Collect:   true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("road-park pairs within %.0f m: %d\n", eps*1000, rep.Results)
	fmt.Printf("effective centre threshold:   %.3f km (objects inflate eps by 2 x %.3f)\n",
		rep.EffectiveEps, rep.MaxHalfDiag)
	fmt.Printf("replicated objects:           %d\n", rep.Replicated())
	fmt.Printf("execution time:               %v\n\n", rep.TotalTime())

	// Cross-check against PBSM-style universal replication of the roads.
	uni, err := spatialjoin.JoinObjects(roads, parks, spatialjoin.Options{
		Eps:       eps,
		Algorithm: spatialjoin.PBSMUniR,
		Bounds:    &city,
	})
	if err != nil {
		log.Fatal(err)
	}
	if uni.Results != rep.Results {
		log.Fatalf("strategies disagree: %d vs %d", uni.Results, rep.Results)
	}
	fmt.Printf("universal replication would move %d objects (%.1fx more)\n",
		uni.Replicated(), float64(uni.Replicated())/float64(rep.Replicated()))

	// A quick downstream use: the most park-adjacent road.
	counts := map[int64]int{}
	for _, p := range rep.Pairs {
		counts[p.RID]++
	}
	bestRoad, best := int64(-1), 0
	for id, c := range counts {
		if c > best {
			bestRoad, best = id, c
		}
	}
	if bestRoad >= 0 {
		fmt.Printf("road %d borders the most parks: %d\n", bestRoad, best)
	}
}

// generateRoads builds short polyline chains following a loose street
// grid, denser downtown (south-west).
func generateRoads(rng *rand.Rand, city spatialjoin.Rect, n int) []spatialjoin.Object {
	out := make([]spatialjoin.Object, 0, n)
	id := int64(0)
	for len(out) < n {
		// Denser near (10, 10).
		var x0, y0 float64
		if rng.Float64() < 0.6 {
			x0, y0 = 10+rng.NormFloat64()*6, 10+rng.NormFloat64()*6
		} else {
			x0, y0 = rng.Float64()*50, rng.Float64()*50
		}
		// Mostly axis-aligned segments ~100-400 m with a couple of bends.
		verts := []spatialjoin.Point{{X: x0, Y: y0}}
		dir := rng.Intn(2)
		for seg := 0; seg < 1+rng.Intn(3); seg++ {
			last := verts[len(verts)-1]
			step := 0.1 + rng.Float64()*0.3
			if dir == 0 {
				verts = append(verts, spatialjoin.Point{X: last.X + step, Y: last.Y})
			} else {
				verts = append(verts, spatialjoin.Point{X: last.X, Y: last.Y + step})
			}
			dir = 1 - dir
		}
		out = append(out, spatialjoin.NewPolyline(id, clampVerts(verts, city)))
		id++
	}
	return out
}

// generateParks builds small rectangular park polygons clustered around
// neighbourhood centres.
func generateParks(rng *rand.Rand, city spatialjoin.Rect, n int) []spatialjoin.Object {
	centres := make([]spatialjoin.Point, 12)
	for i := range centres {
		centres[i] = spatialjoin.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
	}
	out := make([]spatialjoin.Object, n)
	for i := range out {
		c := centres[rng.Intn(len(centres))]
		x := c.X + rng.NormFloat64()*3
		y := c.Y + rng.NormFloat64()*3
		w := 0.05 + rng.Float64()*0.25
		h := 0.05 + rng.Float64()*0.25
		ring := clampVerts([]spatialjoin.Point{
			{X: x, Y: y}, {X: x + w, Y: y}, {X: x + w, Y: y + h}, {X: x, Y: y + h},
		}, city)
		out[i] = spatialjoin.NewPolygon(int64(i)+1_000_000_000, ring)
	}
	return out
}

func clampVerts(verts []spatialjoin.Point, r spatialjoin.Rect) []spatialjoin.Point {
	for i, p := range verts {
		if p.X < r.MinX {
			p.X = r.MinX
		} else if p.X > r.MaxX {
			p.X = r.MaxX
		}
		if p.Y < r.MinY {
			p.Y = r.MinY
		} else if p.Y > r.MaxY {
			p.Y = r.MaxY
		}
		verts[i] = p
	}
	return verts
}
