// Quickstart: generate two skewed point sets, run the adaptive-
// replication ε-distance join, and print what the library measured.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spatialjoin"
)

func main() {
	// Two skewed data sets in the default 100x100 world: river-like
	// features and Gaussian-clustered facilities.
	r := spatialjoin.GenerateTigerLike(100_000, 1)
	s := spatialjoin.GenerateGaussian(100_000, 2)

	// Find every (r, s) pair within distance 0.5, using the paper's
	// adaptive replication with the LPiB agreement policy.
	rep, err := spatialjoin.Join(r, s, spatialjoin.Options{
		Eps:       0.5,
		Algorithm: spatialjoin.AdaptiveLPiB,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pairs within eps:   %d\n", rep.Results)
	fmt.Printf("replicated objects: %d (R: %d, S: %d)\n",
		rep.Replicated(), rep.ReplicatedR, rep.ReplicatedS)
	fmt.Printf("shuffled:           %d bytes (%d remote)\n",
		rep.ShuffledBytes, rep.ShuffleRemoteBytes)
	fmt.Printf("construction:       %v\n", rep.ConstructionTime())
	fmt.Printf("join:               %v\n", rep.JoinTime)

	// The same join with classic PBSM replicating all of R shows what
	// adaptive replication saves.
	pbsm, err := spatialjoin.Join(r, s, spatialjoin.Options{
		Eps:       0.5,
		Algorithm: spatialjoin.PBSMUniR,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPBSM UNI(R) would replicate %d objects — %.1fx more\n",
		pbsm.Replicated(), float64(pbsm.Replicated())/float64(rep.Replicated()))
	if pbsm.Results != rep.Results {
		log.Fatalf("algorithms disagree: %d vs %d", pbsm.Results, rep.Results)
	}
}
