// Catalogue cross-match: identify candidate counterparts between two
// astronomical surveys observed with different instruments.
//
// Cross-matching is an ε-distance join: two catalogues of sky positions,
// a match radius, and hugely non-uniform density (galactic plane vs
// poles). This example sweeps the match radius and compares the adaptive
// join against a Sedona-style quadtree join, then materialises matches
// for the densest field.
//
//	go run ./examples/astro
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spatialjoin"
)

func main() {
	sky := spatialjoin.Rect{MinX: 0, MinY: -45, MaxX: 90, MaxY: 45} // degrees
	rng := rand.New(rand.NewSource(42))

	surveyA := generateSurvey(rng, sky, 120_000, 0)
	surveyB := generateSurvey(rng, sky, 80_000, 1_000_000_000)
	fmt.Printf("cross-matching %d x %d sources\n\n", len(surveyA), len(surveyB))

	// Sweep the match radius like the paper sweeps ε (Figures 10-12).
	fmt.Println("radius(deg)  algorithm  matches     replicated  time")
	for _, radius := range []float64{0.05, 0.1, 0.2} {
		for _, algo := range []spatialjoin.Algorithm{
			spatialjoin.AdaptiveLPiB,
			spatialjoin.SedonaLike,
		} {
			rep, err := spatialjoin.Join(surveyA, surveyB, spatialjoin.Options{
				Eps:       radius,
				Algorithm: algo,
				Bounds:    &sky,
				Seed:      2,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12.2f %-10s %-11d %-11d %v\n",
				radius, algo, rep.Results, rep.Replicated(), rep.TotalTime())
		}
	}

	// Materialise the matches at the tightest radius and report the
	// most-matched source — the kind of downstream use a real pipeline has.
	rep, err := spatialjoin.Join(surveyA, surveyB, spatialjoin.Options{
		Eps:       0.05,
		Algorithm: spatialjoin.AdaptiveLPiB,
		Bounds:    &sky,
		Collect:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	counts := map[int64]int{}
	for _, p := range rep.Pairs {
		counts[p.RID]++
	}
	bestID, best := int64(-1), 0
	for id, c := range counts {
		if c > best {
			bestID, best = id, c
		}
	}
	fmt.Printf("\n%d sources have at least one counterpart at 0.05deg;\n", len(counts))
	if bestID >= 0 {
		fmt.Printf("source %d is the most confused with %d candidates\n", bestID, best)
	}
}

// generateSurvey models a sky survey: source density peaks sharply along
// the galactic plane (y ≈ 0) and in a handful of deep fields.
func generateSurvey(rng *rand.Rand, sky spatialjoin.Rect, n int, idBase int64) []spatialjoin.Tuple {
	pts := make([]spatialjoin.Point, 0, n)
	deepFields := make([]spatialjoin.Point, 6)
	for i := range deepFields {
		deepFields[i] = spatialjoin.Point{
			X: sky.MinX + rng.Float64()*sky.Width(),
			Y: sky.MinY + rng.Float64()*sky.Height(),
		}
	}
	for len(pts) < n {
		switch r := rng.Float64(); {
		case r < 0.55: // galactic plane
			pts = append(pts, clampPt(spatialjoin.Point{
				X: sky.MinX + rng.Float64()*sky.Width(),
				Y: rng.NormFloat64() * 4,
			}, sky))
		case r < 0.85: // deep fields
			f := deepFields[rng.Intn(len(deepFields))]
			pts = append(pts, clampPt(spatialjoin.Point{
				X: f.X + rng.NormFloat64()*0.8,
				Y: f.Y + rng.NormFloat64()*0.8,
			}, sky))
		default: // isotropic background
			pts = append(pts, spatialjoin.Point{
				X: sky.MinX + rng.Float64()*sky.Width(),
				Y: sky.MinY + rng.Float64()*sky.Height(),
			})
		}
	}
	return spatialjoin.FromPoints(pts, idBase)
}

func clampPt(p spatialjoin.Point, r spatialjoin.Rect) spatialjoin.Point {
	if p.X < r.MinX {
		p.X = r.MinX
	} else if p.X > r.MaxX {
		p.X = r.MaxX
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	} else if p.Y > r.MaxY {
		p.Y = r.MaxY
	}
	return p
}
