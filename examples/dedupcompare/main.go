// Duplicate handling ablation (the paper's Table 6, runnable): compare
// the duplicate-free adaptive assignment against the simplified
// assignment that lets duplicates through and removes them with a
// parallel distinct() pass afterwards.
//
//	go run ./examples/dedupcompare
package main

import (
	"fmt"
	"log"

	"spatialjoin"
)

func main() {
	r := spatialjoin.GenerateGaussian(100_000, 101)
	s := spatialjoin.GenerateGaussian(100_000, 202)
	const eps = 0.5

	dupFree, err := spatialjoin.Join(r, s, spatialjoin.Options{
		Eps:       eps,
		Algorithm: spatialjoin.AdaptiveLPiB,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	withDedup, err := spatialjoin.Join(r, s, spatialjoin.Options{
		Eps:       eps,
		Algorithm: spatialjoin.AdaptiveSimpleDedup,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}

	if dupFree.Results != withDedup.Results || dupFree.Checksum != withDedup.Checksum {
		log.Fatalf("variants disagree: %d vs %d results", dupFree.Results, withDedup.Results)
	}

	fmt.Printf("results (both variants):     %d\n\n", dupFree.Results)
	fmt.Printf("duplicate-free assignment:   total %v (join %v)\n",
		dupFree.TotalTime(), dupFree.JoinTime)
	fmt.Printf("dedup-after assignment:      total %v (join %v, distinct %v)\n",
		withDedup.TotalTime(), withDedup.JoinTime, withDedup.DedupTime)
	fmt.Printf("\nslowdown from deduplicating: %.1fx\n",
		float64(withDedup.TotalTime())/float64(dupFree.TotalTime()))
	fmt.Printf("extra bytes shuffled:        %d\n",
		withDedup.ShuffledBytes-dupFree.ShuffledBytes)
}
