// Similarity analysis on one data set: the self-join and kNN operators.
//
// A sensor network logs readings with GPS positions; duplicated
// installations appear as points within a few metres of each other, and
// coverage quality is judged by each sensor's distance to its nearest
// neighbours. Both are single-set problems: a duplicate scan is an
// ε-distance self-join (the MR-DSJ workload of the paper's related
// work), and coverage is a kNN join of the set with itself.
//
//	go run ./examples/similarity
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"spatialjoin"
)

func main() {
	region := spatialjoin.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20} // km
	sensors := generateSensors(region, 40_000)
	fmt.Printf("analysing %d sensor positions\n\n", len(sensors))

	// --- Duplicate detection: pairs closer than 5 m.
	const dupRadius = 0.005
	rep, err := spatialjoin.SelfJoin(sensors, spatialjoin.Options{
		Eps:       dupRadius,
		Algorithm: spatialjoin.AdaptiveLPiB,
		Bounds:    &region,
		Collect:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suspected duplicate installations (within %.0f m): %d pairs\n",
		dupRadius*1000, rep.Results)

	// --- Coverage: distance to the 3rd nearest other sensor.
	knn, err := spatialjoin.KNNJoin(sensors, sensors, 4, spatialjoin.Options{
		Workers: 4,
		Bounds:  &region,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Neighbour 0 of each group is the sensor itself (distance 0); the
	// 4th entry is the 3rd genuine neighbour.
	gaps := make([]float64, 0, len(sensors))
	for i := range sensors {
		group := knn.Neighbors[i*4 : (i+1)*4]
		gaps = append(gaps, group[3].Dist)
	}
	sort.Float64s(gaps)
	fmt.Printf("\ncoverage (distance to 3rd nearest sensor):\n")
	fmt.Printf("  median: %.0f m\n", gaps[len(gaps)/2]*1000)
	fmt.Printf("  p95:    %.0f m\n", gaps[len(gaps)*95/100]*1000)
	fmt.Printf("  worst:  %.0f m\n", gaps[len(gaps)-1]*1000)
	fmt.Printf("(kNN search took %d rounds, %d candidate distances)\n",
		knn.Rounds, knn.CandidatesScanned)
}

// generateSensors places sensors densely downtown and sparsely in the
// outskirts, with a fraction of accidental duplicates.
func generateSensors(region spatialjoin.Rect, n int) []spatialjoin.Tuple {
	rng := rand.New(rand.NewSource(9))
	pts := make([]spatialjoin.Point, 0, n)
	for len(pts) < n {
		var p spatialjoin.Point
		if rng.Float64() < 0.7 { // downtown cluster
			p = spatialjoin.Point{X: 8 + rng.NormFloat64()*2, Y: 8 + rng.NormFloat64()*2}
		} else {
			p = spatialjoin.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
		}
		if p.X < 0 || p.X > 20 || p.Y < 0 || p.Y > 20 {
			continue
		}
		pts = append(pts, p)
		// 1% duplicated installations a couple of metres away.
		if rng.Float64() < 0.01 && len(pts) < n {
			pts = append(pts, spatialjoin.Point{
				X: p.X + rng.NormFloat64()*0.002,
				Y: p.Y + rng.NormFloat64()*0.002,
			})
		}
	}
	return spatialjoin.FromPoints(pts, 0)
}
