package spatialjoin_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fleetLogDir is where shard and router process logs land: the
// FLEET_LOG_DIR env var when set (CI uploads it as an artifact on
// failure), a per-test temp dir otherwise.
func fleetLogDir(t *testing.T) string {
	if dir := os.Getenv("FLEET_LOG_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("creating FLEET_LOG_DIR: %v", err)
		}
		return dir
	}
	return t.TempDir()
}

// startProc launches a daemon binary, waits for its "<name> listening
// on ADDR" banner, and tees all process output into logPath so a CI
// failure leaves per-process logs behind.
func startProc(t *testing.T, bin, banner, logPath string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(stdout)
	var line string
	for i := 0; ; i++ {
		line, err = rd.ReadString('\n')
		if line != "" {
			logf.WriteString(line)
		}
		if err != nil {
			cmd.Process.Kill()
			t.Fatalf("reading %s banner: %v (got %q)", filepath.Base(bin), err, line)
		}
		if strings.HasPrefix(line, banner) {
			break
		}
		if i > 50 {
			cmd.Process.Kill()
			t.Fatalf("no banner after %d lines; last: %q", i, line)
		}
	}
	go func() {
		io.Copy(logf, rd)
		logf.Close()
	}()
	addr := strings.TrimSpace(strings.TrimPrefix(line, banner))
	return "http://" + addr, cmd
}

func fleetPost(t *testing.T, url, tenant, body string) (int, map[string]any, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, m, resp.Header
}

// TestFleetEndToEnd runs the whole fleet as real processes: three
// sjoind shards behind one sjoin-router. It checks that the router
// serves the single-daemon API with byte-identical results, that
// per-tenant admission 429s only the noisy tenant, that a graceful
// shard leave migrates data under live traffic, and that a shard
// killed mid-fleet is survived via replicas.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns a process fleet")
	}
	bins := buildCmds(t)
	logDir := fleetLogDir(t)

	// A standalone daemon computes the reference answer.
	oracleURL, oracleCmd := startSjoind(t, bins["sjoind"])
	defer oracleCmd.Process.Kill()

	// Three shards.
	shardURLs := map[string]string{}
	shardCmds := map[string]*exec.Cmd{}
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("s%d", i)
		// Straggler threshold 1: any join raises a straggler_spike event,
		// so the observability subtest sees a deterministic anomaly.
		u, cmd := startProc(t, bins["sjoind"], "sjoind listening on ",
			filepath.Join(logDir, id+".log"), "-addr", "127.0.0.1:0",
			"-straggler-threshold", "1", "-telem-sample", "250ms")
		shardURLs[id] = u
		shardCmds[id] = cmd
		defer cmd.Process.Kill()
	}
	var shardList []string
	for id, u := range shardURLs {
		shardList = append(shardList, id+"="+u)
	}

	routerURL, routerCmd := startProc(t, bins["sjoin-router"], "sjoin-router listening on ",
		filepath.Join(logDir, "router.log"),
		"-addr", "127.0.0.1:0",
		"-shards", strings.Join(shardList, ","),
		"-replicas", "2",
		"-heartbeat", "100ms",
		"-heartbeat-misses", "3",
		"-tenant-override", "noisy=1:2",
	)
	defer routerCmd.Process.Kill()

	// Upload through router and oracle alike: server-side generation is
	// deterministic, so both hold identical data.
	for _, q := range []string{
		"name=r&generate=gaussian&n=20000&seed=1",
		"name=s&generate=uniform&n=20000&seed=2",
	} {
		if code, m, _ := fleetPost(t, routerURL+"/v1/datasets?"+q, "", ""); code != http.StatusCreated {
			t.Fatalf("router upload %s: status %d, %v", q, code, m)
		}
		if code, m, _ := fleetPost(t, oracleURL+"/v1/datasets?"+q, "", ""); code != http.StatusCreated {
			t.Fatalf("oracle upload %s: status %d, %v", q, code, m)
		}
	}

	join := `{"r":"r","s":"s","eps":0.4,"algorithm":"lpib"}`
	_, want, _ := fleetPost(t, oracleURL+"/v1/join", "", join)
	code, got, _ := fleetPost(t, routerURL+"/v1/join", "", join)
	if code != http.StatusOK {
		t.Fatalf("fleet join: status %d, %v", code, got)
	}
	if got["checksum"] != want["checksum"] || got["results"] != want["results"] {
		t.Fatalf("fleet join = (%v, %v), single daemon = (%v, %v)",
			got["checksum"], got["results"], want["checksum"], want["results"])
	}

	// Per-tenant admission: the noisy tenant exhausts its burst of 2 and
	// 429s with Retry-After; the anonymous tenant is unaffected.
	t.Run("TenantQuota", func(t *testing.T) {
		sawReject := false
		for i := 0; i < 4; i++ {
			code, _, hdr := fleetPost(t, routerURL+"/v1/join", "noisy", join)
			if code == http.StatusTooManyRequests {
				sawReject = true
				if hdr.Get("Retry-After") == "" {
					t.Error("429 lacks Retry-After")
				}
			}
		}
		if !sawReject {
			t.Fatal("noisy tenant was never throttled")
		}
		if code, m, _ := fleetPost(t, routerURL+"/v1/join", "", join); code != http.StatusOK {
			t.Fatalf("anonymous join during noisy throttle: status %d, %v", code, m)
		}
	})

	// The fleet overview aggregates every shard's telemetry: per-shard
	// series, merged fleet-wide series, SLO rows with interpolated
	// percentiles, and the straggler anomalies the threshold-1 shards
	// raised. Runs before the destructive subtests so all 3 shards are
	// still standing.
	t.Run("Observability", func(t *testing.T) {
		resp, err := http.Get(routerURL + "/v1/fleet/overview")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("overview: status %d: %s", resp.StatusCode, raw)
		}
		if out := os.Getenv("FLEET_OVERVIEW_OUT"); out != "" {
			if err := os.WriteFile(out, raw, 0o644); err != nil {
				t.Errorf("writing FLEET_OVERVIEW_OUT: %v", err)
			}
		}
		var ov struct {
			Shards []struct {
				ID     string           `json:"id"`
				Alive  bool             `json:"alive"`
				Err    string           `json:"error"`
				Series []map[string]any `json:"series"`
			} `json:"shards"`
			Series []struct {
				Name string `json:"name"`
				Res  string `json:"res"`
			} `json:"series"`
			SLOs []struct {
				Tenant    string  `json:"tenant"`
				Total     int64   `json:"total"`
				P99Millis float64 `json:"p99_ms"`
				BurnRate  float64 `json:"burn_rate"`
			} `json:"slos"`
			Events []struct {
				Shard string `json:"shard"`
				Kind  string `json:"kind"`
			} `json:"events"`
		}
		if err := json.Unmarshal(raw, &ov); err != nil {
			t.Fatalf("decoding overview: %v", err)
		}
		if len(ov.Shards) != 3 {
			t.Fatalf("overview shards = %d, want 3", len(ov.Shards))
		}
		withSeries := 0
		for _, sh := range ov.Shards {
			if !sh.Alive || sh.Err != "" {
				t.Errorf("shard %s: alive=%v err=%q", sh.ID, sh.Alive, sh.Err)
			}
			if len(sh.Series) > 0 {
				withSeries++
			}
		}
		if withSeries == 0 {
			t.Fatal("no shard reported any telemetry series")
		}
		aggNames := map[string]bool{}
		for _, s := range ov.Series {
			aggNames[s.Name] = true
		}
		for _, want := range []string{"join_latency_seconds", "straggler_ratio"} {
			if !aggNames[want] {
				t.Errorf("aggregated series missing %q (have %v)", want, aggNames)
			}
		}
		sloOK := false
		for _, st := range ov.SLOs {
			if st.Total > 0 && st.P99Millis > 0 && st.BurnRate >= 0 {
				sloOK = true
			}
		}
		if !sloOK {
			t.Fatalf("no usable SLO row in overview: %+v", ov.SLOs)
		}
		spikes := 0
		for _, ev := range ov.Events {
			if ev.Kind == "straggler_spike" {
				spikes++
			}
		}
		if spikes == 0 {
			t.Fatalf("no straggler_spike anomaly in overview events: %+v", ov.Events)
		}
	})

	// Graceful leave under traffic: requests keep succeeding with the
	// same checksum while s1's datasets migrate away.
	t.Run("ShardLeaveUnderTraffic", func(t *testing.T) {
		stop := make(chan struct{})
		errs := make(chan string, 16)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, m, _ := fleetPost(t, routerURL+"/v1/join", "", join)
				if code != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %v", code, m)
					return
				}
				if m["checksum"] != want["checksum"] {
					errs <- fmt.Sprintf("checksum drifted: %v", m["checksum"])
					return
				}
			}
		}()

		req, _ := http.NewRequest(http.MethodDelete, routerURL+"/v1/fleet/shards/s1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard leave: status %d: %s", resp.StatusCode, body)
		}
		close(stop)
		wg.Wait()
		select {
		case e := <-errs:
			t.Fatalf("request failed during shard leave: %s", e)
		default:
		}
		shardCmds["s1"].Process.Kill()
	})

	// Kill a live shard outright: replicas (factor 2) and the retry path
	// keep the fleet answering with the same bytes.
	t.Run("ShardDeath", func(t *testing.T) {
		shardCmds["s2"].Process.Kill()
		deadline := time.Now().Add(15 * time.Second)
		for {
			code, m, _ := fleetPost(t, routerURL+"/v1/join", "", join)
			if code == http.StatusOK {
				if m["checksum"] != want["checksum"] {
					t.Fatalf("post-death checksum %v, want %v", m["checksum"], want["checksum"])
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet never recovered from shard death: status %d, %v", code, m)
			}
			time.Sleep(200 * time.Millisecond)
		}
	})

	// The fleet still reports healthy with one shard standing.
	resp, err := http.Get(routerURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router healthz after losses: status %d", resp.StatusCode)
	}
}

// TestFleetShardJoinMigration exercises runtime shard join: a fresh
// shard process joins the fleet through the router API and datasets
// migrate onto it without changing any answer.
func TestFleetShardJoinMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns a process fleet")
	}
	bins := buildCmds(t)
	logDir := fleetLogDir(t)

	u1, c1 := startProc(t, bins["sjoind"], "sjoind listening on ",
		filepath.Join(logDir, "join-s1.log"), "-addr", "127.0.0.1:0")
	defer c1.Process.Kill()
	routerURL, routerCmd := startProc(t, bins["sjoin-router"], "sjoin-router listening on ",
		filepath.Join(logDir, "join-router.log"),
		"-addr", "127.0.0.1:0", "-shards", "s1="+u1, "-replicas", "2")
	defer routerCmd.Process.Kill()

	for _, q := range []string{
		"name=r&generate=gaussian&n=10000&seed=5",
		"name=s&generate=uniform&n=10000&seed=6",
	} {
		if code, m, _ := fleetPost(t, routerURL+"/v1/datasets?"+q, "", ""); code != http.StatusCreated {
			t.Fatalf("upload %s: status %d, %v", q, code, m)
		}
	}
	join := `{"r":"r","s":"s","eps":0.4,"algorithm":"lpib"}`
	code, before, _ := fleetPost(t, routerURL+"/v1/join", "", join)
	if code != http.StatusOK {
		t.Fatalf("pre-join join: status %d, %v", code, before)
	}

	u2, c2 := startProc(t, bins["sjoind"], "sjoind listening on ",
		filepath.Join(logDir, "join-s2.log"), "-addr", "127.0.0.1:0")
	defer c2.Process.Kill()
	code, m, _ := fleetPost(t, routerURL+"/v1/fleet/shards", "", fmt.Sprintf(`{"id":"s2","url":%q}`, u2))
	if code != http.StatusOK {
		t.Fatalf("shard join: status %d, %v", code, m)
	}

	// Placement now spans both shards (replicas=2 over 2 shards places
	// everything on both) and the answer is unchanged.
	var info struct {
		Datasets []struct {
			Name    string   `json:"name"`
			Holders []string `json:"holders"`
		} `json:"datasets"`
	}
	resp, err := http.Get(routerURL + "/v1/fleet/ring")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	for _, d := range info.Datasets {
		if len(d.Holders) < 2 {
			t.Errorf("dataset %s replicated to %v after shard join, want both shards", d.Name, d.Holders)
		}
	}
	code, after, _ := fleetPost(t, routerURL+"/v1/join", "", join)
	if code != http.StatusOK || after["checksum"] != before["checksum"] {
		t.Fatalf("post-join join: status %d, checksum %v (want %v)", code, after["checksum"], before["checksum"])
	}
}
