package spatialjoin

import (
	"errors"
	"sync"
	"testing"
)

// TestPreparedJoinMatchesJoin: for every preparable algorithm, Prepare +
// repeated Execute must reproduce the one-shot Join bit for bit.
func TestPreparedJoinMatchesJoin(t *testing.T) {
	rs := GenerateTigerLike(4000, 11)
	ss := GenerateGaussian(4000, 12)
	algos := []Algorithm{
		AdaptiveLPiB, AdaptiveDIFF, AdaptiveSimpleDedup,
		PBSMUniR, PBSMUniS, PBSMEpsGrid, PBSMClone, AutoPlanned,
	}
	for _, a := range algos {
		t.Run(a.String(), func(t *testing.T) {
			opt := Options{Eps: 0.6, Algorithm: a, Seed: 3}
			want, err := Join(rs, ss, opt)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Prepare(rs, ss, opt)
			if err != nil {
				t.Fatal(err)
			}
			if a == AutoPlanned && p.Algorithm() == AutoPlanned {
				t.Fatal("AutoPlanned must resolve to a concrete strategy")
			}
			if p.Eps() != 0.6 {
				t.Fatalf("plan eps %v", p.Eps())
			}
			if p.FootprintBytes() <= 0 {
				t.Fatalf("footprint %d", p.FootprintBytes())
			}
			for i := 0; i < 2; i++ {
				got, err := p.Execute(ExecOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if got.Results != want.Results || got.Checksum != want.Checksum {
					t.Fatalf("execute %d: (%d, %#x) != join (%d, %#x)",
						i, got.Results, got.Checksum, want.Results, want.Checksum)
				}
			}
		})
	}
}

// TestPreparedJoinEpsResweep: executing a plan with a smaller ε must
// match a from-scratch join at that ε (same grid regime), and a larger ε
// must be rejected.
func TestPreparedJoinEpsResweep(t *testing.T) {
	rs := GenerateUniform(3000, 21)
	ss := GenerateUniform(3000, 22)
	p, err := Prepare(rs, ss, Options{Eps: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Execute(ExecOptions{Eps: 0.5, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(rs, ss, 0.5)
	if int(got.Results) != len(want) {
		t.Fatalf("re-sweep at 0.5 found %d pairs, oracle %d", got.Results, len(want))
	}
	if len(got.Pairs) != len(want) {
		t.Fatalf("collected %d pairs, oracle %d", len(got.Pairs), len(want))
	}
	if _, err := p.Execute(ExecOptions{Eps: 0.9}); err == nil {
		t.Fatal("eps above the plan's threshold must be rejected")
	}
}

// TestPreparedJoinConcurrent executes one plan from many goroutines;
// under -race this proves Execute shares no mutable state.
func TestPreparedJoinConcurrent(t *testing.T) {
	rs := GenerateGaussian(3000, 31)
	ss := GenerateTigerLike(3000, 32)
	p, err := Prepare(rs, ss, Options{Eps: 0.5, UseLPT: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Execute(ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := p.Execute(ExecOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			if got.Checksum != base.Checksum {
				t.Errorf("checksum diverged: %#x != %#x", got.Checksum, base.Checksum)
			}
		}()
	}
	wg.Wait()
}

// TestPrepareSedonaNotPreparable: the Sedona-style baseline has no
// reusable plan and must say so with ErrNotPreparable.
func TestPrepareSedonaNotPreparable(t *testing.T) {
	rs := GenerateUniform(100, 1)
	ss := GenerateUniform(100, 2)
	_, err := Prepare(rs, ss, Options{Eps: 0.5, Algorithm: SedonaLike})
	if !errors.Is(err, ErrNotPreparable) {
		t.Fatalf("err = %v, want ErrNotPreparable", err)
	}
}

// TestPrepareWithPresample: feeding the samples Prepare would draw back
// through PresampledR/S must produce the identical plan outcome.
func TestPrepareWithPresample(t *testing.T) {
	rs := GenerateTigerLike(3000, 41)
	ss := GenerateGaussian(3000, 42)
	opt := Options{Eps: 0.6, Seed: 5}
	direct, err := Prepare(rs, ss, opt)
	if err != nil {
		t.Fatal(err)
	}
	pre := opt
	pre.PresampledR = Sample(rs, opt.SampleFraction, opt.Seed)
	pre.PresampledS = Sample(ss, opt.SampleFraction, opt.Seed+1)
	cached, err := Prepare(rs, ss, pre)
	if err != nil {
		t.Fatal(err)
	}
	a, err := direct.Execute(ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cached.Execute(ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum || a.Results != b.Results ||
		a.ReplicatedR != b.ReplicatedR || a.ReplicatedS != b.ReplicatedS {
		t.Fatalf("presampled plan diverged: (%d, %#x, repl %d/%d) != (%d, %#x, repl %d/%d)",
			b.Results, b.Checksum, b.ReplicatedR, b.ReplicatedS,
			a.Results, a.Checksum, a.ReplicatedR, a.ReplicatedS)
	}
}
