// Command datagen generates the evaluation data sets as text files.
//
// Usage:
//
//	datagen -kind gaussian -n 200000 -seed 101 -out s1.txt
//	datagen -kind tiger -n 10000000 -seed 303 -stream-out r1.col
//
// Kinds: uniform, gaussian (the paper's 30-cluster synthetic), tiger
// (TIGER-Hydrography-like skew), osm (OSM-Parks-like skew). The paper
// codenames map to: S1 = gaussian seed 101, S2 = gaussian seed 202,
// R1 = tiger seed 303, R2 = osm seed 404.
//
// With -stream-out the points are streamed straight into the durable
// store's columnar format (a .col file loadable by sjoind's -data-dir
// machinery and cmd/bench) without ever materializing the whole data
// set in memory, so sets larger than RAM can be generated. The
// streaming generators make exactly the same rng draws as the in-memory
// ones: the same (kind, n, seed) yields identical points either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/dstore"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/textio"
	"spatialjoin/internal/tuple"
)

func main() {
	var (
		kind      = flag.String("kind", "gaussian", "distribution: uniform, gaussian, tiger, osm")
		n         = flag.Int("n", 200_000, "number of points")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("out", "", "text output file")
		streamOut = flag.String("stream-out", "", "columnar output file, written streaming (O(1) memory)")
		payload   = flag.Int("payload", 0, "attach a payload of this many bytes per point")
	)
	flag.Parse()
	if (*out == "") == (*streamOut == "") {
		fail("exactly one of -out and -stream-out is required")
	}
	if *n <= 0 {
		fail("-n must be positive")
	}

	w := datagen.World()
	gen, err := generator(strings.ToLower(*kind), w, *n, *seed)
	if err != nil {
		fail("%v", err)
	}
	var pad []byte
	if *payload > 0 {
		pad = []byte(strings.Repeat("x", *payload))
	}

	if *streamOut != "" {
		cw, err := dstore.NewTuplesWriter(*streamOut)
		if err != nil {
			fail("%v", err)
		}
		var werr error
		gen(func(t tuple.Tuple) {
			if werr != nil {
				return
			}
			t.Payload = pad
			werr = cw.Append(t)
		})
		if werr == nil {
			werr = cw.Close()
		}
		if werr != nil {
			fail("%v", werr)
		}
		fmt.Printf("wrote %d %s points to %s (columnar)\n", cw.Count(), *kind, *streamOut)
		return
	}

	var ts []tuple.Tuple
	gen(func(t tuple.Tuple) {
		t.Payload = pad
		ts = append(ts, t)
	})
	if err := textio.WriteFile(*out, ts); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %d %s points to %s\n", len(ts), *kind, *out)
}

// generator returns the streaming form of the requested distribution.
func generator(kind string, w geom.Rect, n int, seed int64) (func(func(tuple.Tuple)), error) {
	switch kind {
	case "uniform":
		return func(emit func(tuple.Tuple)) { datagen.UniformEach(w, n, seed, 0, emit) }, nil
	case "gaussian":
		return func(emit func(tuple.Tuple)) { datagen.GaussianClustersEach(w, n, 30, 0.1, 0.8, seed, 0, emit) }, nil
	case "tiger":
		return func(emit func(tuple.Tuple)) { datagen.TigerLikeEach(w, n, seed, 0, emit) }, nil
	case "osm":
		return func(emit func(tuple.Tuple)) { datagen.OSMLikeEach(w, n, seed, 0, emit) }, nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(2)
}
