// Command datagen generates the evaluation data sets as text files.
//
// Usage:
//
//	datagen -kind gaussian -n 200000 -seed 101 -out s1.txt
//
// Kinds: uniform, gaussian (the paper's 30-cluster synthetic), tiger
// (TIGER-Hydrography-like skew), osm (OSM-Parks-like skew). The paper
// codenames map to: S1 = gaussian seed 101, S2 = gaussian seed 202,
// R1 = tiger seed 303, R2 = osm seed 404.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/textio"
	"spatialjoin/internal/tuple"
)

func main() {
	var (
		kind    = flag.String("kind", "gaussian", "distribution: uniform, gaussian, tiger, osm")
		n       = flag.Int("n", 200_000, "number of points")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (required)")
		payload = flag.Int("payload", 0, "attach a payload of this many bytes per point")
	)
	flag.Parse()
	if *out == "" {
		fail("-out is required")
	}
	if *n <= 0 {
		fail("-n must be positive")
	}

	w := datagen.World()
	var ts []tuple.Tuple
	switch strings.ToLower(*kind) {
	case "uniform":
		ts = datagen.Uniform(w, *n, *seed, 0)
	case "gaussian":
		ts = datagen.GaussianClusters(w, *n, 30, 0.1, 0.8, *seed, 0)
	case "tiger":
		ts = datagen.TigerLike(w, *n, *seed, 0)
	case "osm":
		ts = datagen.OSMLike(w, *n, *seed, 0)
	default:
		fail("unknown kind %q", *kind)
	}
	if *payload > 0 {
		pad := strings.Repeat("x", *payload)
		for i := range ts {
			ts[i].Payload = []byte(pad)
		}
	}
	if err := textio.WriteFile(*out, ts); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %d %s points to %s\n", len(ts), *kind, *out)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(2)
}
