// Command datagen generates the evaluation data sets as text files.
//
// Usage:
//
//	datagen -kind gaussian -n 200000 -seed 101 -out s1.txt
//	datagen -kind tiger -n 10000000 -seed 303 -stream-out r1.col
//	datagen -kind uniform -geom polygon -n 50000 -max-size 2 -out parks.txt
//
// Kinds: uniform, gaussian (the paper's 30-cluster synthetic), tiger
// (TIGER-Hydrography-like skew), osm (OSM-Parks-like skew). The paper
// codenames map to: S1 = gaussian seed 101, S2 = gaussian seed 202,
// R1 = tiger seed 303, R2 = osm seed 404.
//
// With -geom rect|polyline|polygon the points become object centers and
// the output is a geometry set for the two-layer non-point engine:
// -out writes the WKT-flavoured text format /v1/geodatasets ingests,
// -stream-out writes columnar tuples whose payloads carry the geometry
// wire encoding. -min-size/-max-size bound each object's MBR diameter,
// -verts sets the polyline/polygon vertex count.
//
// With -stream-out the points are streamed straight into the durable
// store's columnar format (a .col file loadable by sjoind's -data-dir
// machinery and cmd/bench) without ever materializing the whole data
// set in memory, so sets larger than RAM can be generated. The
// streaming generators make exactly the same rng draws as the in-memory
// ones: the same (kind, n, seed) yields identical points either way —
// and with -geom, identical objects in identical draw order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/dstore"
	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/textio"
	"spatialjoin/internal/tuple"
)

func main() {
	var (
		kind      = flag.String("kind", "gaussian", "distribution: uniform, gaussian, tiger, osm")
		n         = flag.Int("n", 200_000, "number of points")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("out", "", "text output file")
		streamOut = flag.String("stream-out", "", "columnar output file, written streaming (O(1) memory)")
		payload   = flag.Int("payload", 0, "attach a payload of this many bytes per point")
		geomKind  = flag.String("geom", "", "generate geometry objects instead of points: rect, polyline, polygon")
		minSize   = flag.Float64("min-size", 0, "minimum object MBR diameter (default max-size/10)")
		maxSize   = flag.Float64("max-size", 1, "maximum object MBR diameter")
		verts     = flag.Int("verts", 6, "polyline/polygon vertex count")
	)
	flag.Parse()
	if (*out == "") == (*streamOut == "") {
		fail("exactly one of -out and -stream-out is required")
	}
	if *n <= 0 {
		fail("-n must be positive")
	}

	w := datagen.World()
	gen, err := generator(strings.ToLower(*kind), w, *n, *seed)
	if err != nil {
		fail("%v", err)
	}
	if *geomKind != "" {
		if *payload > 0 {
			fail("-payload does not combine with -geom (the geometry is the payload)")
		}
		runGeom(datagen.GeomSpec{
			Kind:      strings.ToLower(*geomKind),
			MinExtent: *minSize, MaxExtent: *maxSize,
			Verts: *verts, ShapeSeed: *seed + 1,
		}, gen, *out, *streamOut, *kind)
		return
	}
	var pad []byte
	if *payload > 0 {
		pad = []byte(strings.Repeat("x", *payload))
	}

	if *streamOut != "" {
		cw, err := dstore.NewTuplesWriter(*streamOut)
		if err != nil {
			fail("%v", err)
		}
		var werr error
		gen(func(t tuple.Tuple) {
			if werr != nil {
				return
			}
			t.Payload = pad
			werr = cw.Append(t)
		})
		if werr == nil {
			werr = cw.Close()
		}
		if werr != nil {
			fail("%v", werr)
		}
		fmt.Printf("wrote %d %s points to %s (columnar)\n", cw.Count(), *kind, *streamOut)
		return
	}

	var ts []tuple.Tuple
	gen(func(t tuple.Tuple) {
		t.Payload = pad
		ts = append(ts, t)
	})
	if err := textio.WriteFile(*out, ts); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %d %s points to %s\n", len(ts), *kind, *out)
}

// runGeom is the -geom path: the point generator supplies object
// centers and the shape stream attaches geometry, either as WKT-ish
// text (-out) or streamed columnar tuples whose payloads carry the
// geometry wire encoding (-stream-out). Both consume the one
// GeomObjectsEach stream, so their draw order is identical.
func runGeom(spec datagen.GeomSpec, centers func(func(tuple.Tuple)), out, streamOut, kind string) {
	if streamOut != "" {
		cw, err := dstore.NewTuplesWriter(streamOut)
		if err != nil {
			fail("%v", err)
		}
		var werr error
		err = datagen.GeomObjectsEach(spec, centers, func(o extgeom.Object) {
			if werr != nil {
				return
			}
			werr = cw.Append(tuple.Tuple{
				ID: o.ID, Pt: o.Bounds().Center(), Payload: extgeom.AppendObject(nil, &o),
			})
		})
		if err == nil {
			err = werr
		}
		if err == nil {
			err = cw.Close()
		}
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("wrote %d %s %s objects to %s (columnar)\n", cw.Count(), kind, spec.Kind, streamOut)
		return
	}
	objs, err := datagen.GeomObjects(spec, centers)
	if err != nil {
		fail("%v", err)
	}
	if err := textio.WriteGeomsFile(out, objs); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %d %s %s objects to %s\n", len(objs), kind, spec.Kind, out)
}

// generator returns the streaming form of the requested distribution.
func generator(kind string, w geom.Rect, n int, seed int64) (func(func(tuple.Tuple)), error) {
	switch kind {
	case "uniform":
		return func(emit func(tuple.Tuple)) { datagen.UniformEach(w, n, seed, 0, emit) }, nil
	case "gaussian":
		return func(emit func(tuple.Tuple)) { datagen.GaussianClustersEach(w, n, 30, 0.1, 0.8, seed, 0, emit) }, nil
	case "tiger":
		return func(emit func(tuple.Tuple)) { datagen.TigerLikeEach(w, n, seed, 0, emit) }, nil
	case "osm":
		return func(emit func(tuple.Tuple)) { datagen.OSMLikeEach(w, n, seed, 0, emit) }, nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(2)
}
