package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialjoin/internal/obs"
)

func gateRef(t *testing.T, rep report) string {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ref.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateAgainst pins the regression rules CI relies on: the gate must
// pass inside tolerance, fail on a throughput drop or a gated-phase
// slowdown beyond it, and ignore phases outside gatePhases (sweep/dedup
// durations track the pair count, not pipeline overhead).
func TestGateAgainst(t *testing.T) {
	ref := report{
		Entries: []entry{{Name: "core/columnar", PairsPerSec: 1000}},
		PhaseMillis: map[string]float64{
			obs.SpanPartition:     10,
			obs.SpanReplicate:     20,
			obs.SpanSupplementary: 15,
			obs.SpanSweep:         8,
		},
	}
	path := gateRef(t, ref)

	cur := report{
		Entries: []entry{{Name: "core/columnar", PairsPerSec: 900}},
		PhaseMillis: map[string]float64{
			obs.SpanPartition:     11,
			obs.SpanReplicate:     22,
			obs.SpanSupplementary: 17,
			obs.SpanSweep:         80, // ungated: may grow with pair count
		},
	}
	if err := gateAgainst(path, cur, 0.20); err != nil {
		t.Fatalf("within tolerance, want pass: %v", err)
	}

	slow := cur
	slow.Entries = []entry{{Name: "core/columnar", PairsPerSec: 700}}
	err := gateAgainst(path, slow, 0.20)
	if err == nil || !strings.Contains(err.Error(), "core/columnar throughput") {
		t.Fatalf("30%% throughput drop, want throughput failure, got: %v", err)
	}

	lag := cur
	lag.PhaseMillis = map[string]float64{obs.SpanReplicate: 30}
	err = gateAgainst(path, lag, 0.20)
	if err == nil || !strings.Contains(err.Error(), "phase replicate") {
		t.Fatalf("50%% replicate slowdown, want phase failure, got: %v", err)
	}

	if err := gateAgainst(filepath.Join(t.TempDir(), "missing.json"), cur, 0.20); err == nil {
		t.Fatal("missing reference, want error")
	}
}

// TestAppendHistory: each run appends exactly one JSON line carrying a
// timestamp plus the full report, and existing lines are preserved.
func TestAppendHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	for i := 1; i <= 2; i++ {
		rep := report{GoMaxProcs: i, Entries: []entry{{Name: "core/columnar", PairsPerSec: float64(i)}}}
		if err := appendHistory(path, rep); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d history lines, want 2", len(lines))
	}
	for i, line := range lines {
		var rec struct {
			Time string `json:"time"`
			report
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if rec.Time == "" || rec.GoMaxProcs != i+1 {
			t.Fatalf("line %d: time %q gomaxprocs %d", i, rec.Time, rec.GoMaxProcs)
		}
	}
}
