// Command bench is the machine-readable perf gate for the sweep kernels.
// It runs the kernel benchmarks programmatically (testing.Benchmark, no
// `go test` invocation needed), derives pairs/sec throughput for each
// kernel on the same deterministic workload, and writes a JSON report.
//
// Usage:
//
//	bench [-out BENCH_sweep.json] [-cells 64] [-per-side 256] [-eps 0.5]
//	      [-e2e-n 50000] [-cpu N] [-gate ref.json] [-gate-tolerance 0.2]
//	      [-history BENCH_history.json]
//
// -gate compares this run against a checked-in reference report and
// exits non-zero when the end-to-end throughput or any gated phase time
// (partition, replicate, supplementary join) regresses by more than the
// tolerance. -history appends the report as one compact JSON line, so
// the per-PR trajectory of the gate metrics accumulates in-repo.
//
// Three kernels are measured on identical per-cell inputs:
//
//	sweep/seed-scalar  the pre-optimisation kernel, replicated here:
//	                   reflection-based sort.Slice copies plus a per-pair
//	                   closure emit — the seed baseline the perf gate
//	                   compares against
//	sweep/scalar       the current scalar kernel (sweep.PlaneSweep):
//	                   slices.SortFunc, still one emit call per pair
//	sweep/columnar     the columnar kernel (colsweep.JoinCell): SoA slabs,
//	                   pooled buffers, batched emission
//
// plus core/columnar and core/scalar — the full adaptive join end to end
// with the default (columnar) and oracle (scalar) kernels, and the
// durable-store scan pair:
//
//	scan/disk  dstore.JoinFiles over two grid-partitioned colfiles, data
//	           lanes mmap-streamed from disk one partition at a time
//	scan/ram   the identical merge+sweep loop over the same partitions
//	           preloaded into heap-resident slabs
//
// Both scans produce the same pairs (checked before measuring), so the
// ratio isolates what the on-disk format costs over in-memory slabs.
//
// The report records ns/op, B/op, allocs/op, pairs/op, and pairs/sec per
// benchmark, and the headline speedup ratios. CI runs this binary and
// uploads the JSON as an artifact; the checked-in BENCH_sweep.json is the
// reference result for the acceptance gate (columnar ≥ 1.5× seed pairs/sec,
// 0 allocs/op steady state).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"spatialjoin/internal/colsweep"
	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/dstore"
	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
	"spatialjoin/internal/twolayer"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	PairsPerOp  int64   `json:"pairs_per_op"`
	PairsPerSec float64 `json:"pairs_per_sec"`
}

type report struct {
	Go         string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPUs       int     `json:"cpus"`       // runtime.NumCPU
	GoMaxProcs int     `json:"gomaxprocs"` // scheduler parallelism the run used
	Workload   string  `json:"workload"`
	Entries    []entry `json:"entries"`

	// PhaseMillis is the per-phase wall time of one traced end-to-end
	// run of the simple-replication variant (which exercises every
	// phase, including the supplementary join and dedup that the
	// agreement-based algorithms avoid), keyed by span name with the
	// execute phase reported as "sweep".
	PhaseMillis map[string]float64 `json:"phase_ms"`

	// Headline ratios of the perf gate: columnar pairs/sec over the seed
	// replica and over the current scalar kernel.
	SpeedupColumnarVsSeed   float64 `json:"speedup_columnar_vs_seed"`
	SpeedupColumnarVsScalar float64 `json:"speedup_columnar_vs_scalar"`

	// ScanWorkload describes the disk-vs-RAM inputs; DiskVsRAMScan is
	// scan/disk pairs/sec over scan/ram pairs/sec (1.0 = the mmap format
	// is free once pages are resident).
	ScanWorkload  string  `json:"scan_workload"`
	DiskVsRAMScan float64 `json:"disk_vs_ram_scan"`

	// GeomWorkload describes the non-point (two-layer) join inputs.
	GeomWorkload string `json:"geom_workload,omitempty"`
}

func randomTuples(rng *rand.Rand, n int, extent float64, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{
			ID: base + int64(i),
			Pt: geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
		}
	}
	return out
}

// seedPlaneSweep replicates the seed repo's kernel exactly: copy both
// sides, sort with the reflection-based sort.Slice, sweep with one
// dynamic emit call per result pair. Kept as the honest "before" in the
// perf gate — the scalar kernel itself got faster in the same PR.
func seedPlaneSweep(rs, ss []tuple.Tuple, eps float64, emit sweep.Emit) {
	if len(rs) == 0 || len(ss) == 0 {
		return
	}
	cp := func(ts []tuple.Tuple) []tuple.Tuple {
		out := make([]tuple.Tuple, len(ts))
		copy(out, ts)
		sort.Slice(out, func(i, j int) bool { return out[i].Pt.X < out[j].Pt.X })
		return out
	}
	r, s := cp(rs), cp(ss)
	eps2 := eps * eps
	start := 0
	for i := range r {
		rx := r[i].Pt.X
		for start < len(s) && s[start].Pt.X < rx-eps {
			start++
		}
		if start == len(s) {
			return
		}
		for j := start; j < len(s) && s[j].Pt.X <= rx+eps; j++ {
			dy := r[i].Pt.Y - s[j].Pt.Y
			if dy > eps || dy < -eps {
				continue
			}
			if r[i].Pt.SqDist(s[j].Pt) <= eps2 {
				emit(r[i], s[j])
			}
		}
	}
}

// ramPartitions is a partitioned colfile preloaded into heap slabs: the
// RAM baseline for the scan comparison. Chunk order and x-sortedness are
// preserved, so joinRAM can run the exact JoinFiles merge+sweep loop.
type ramPartitions struct {
	cells  []int64         // R-native iteration order
	native []colsweep.Cols // parallel to cells
	sNat   map[int64]colsweep.Cols
	sHalo  map[int64]colsweep.Cols
}

func cloneCols(c colsweep.Cols) colsweep.Cols {
	var out colsweep.Cols
	for i := 0; i < c.Len(); i++ {
		out.Append(c.Xs[i], c.Ys[i], c.IDs[i])
	}
	return out
}

func loadPartitions(r *dstore.ColReader) ramPartitions {
	p := ramPartitions{
		sNat:  make(map[int64]colsweep.Cols),
		sHalo: make(map[int64]colsweep.Cols),
	}
	for i := 0; i < r.NumChunks(); i++ {
		info := r.Info(i)
		c := cloneCols(r.Chunk(i))
		if info.Kind == dstore.ChunkKindNative {
			p.cells = append(p.cells, info.Cell)
			p.native = append(p.native, c)
			p.sNat[info.Cell] = c
		} else {
			p.sHalo[info.Cell] = c
		}
	}
	return p
}

// joinRAM mirrors dstore.JoinFiles partition for partition over
// heap-resident slabs: per R-native cell, merge the S native and halo
// chunks linearly, sweep with the columnar kernel.
func joinRAM(r, s ramPartitions, eps float64) int64 {
	var pairs int64
	b := colsweep.Get()
	defer colsweep.Put(b)
	out := b.Batch(func(ps []tuple.Pair) { pairs += int64(len(ps)) }, false)
	var merged colsweep.Cols
	for i, rc := range r.native {
		cell := r.cells[i]
		sn, okN := s.sNat[cell]
		sh, okH := s.sHalo[cell]
		var sc colsweep.Cols
		switch {
		case okN && okH:
			merged.Reset()
			a, b2 := sn, sh
			x, y := 0, 0
			for x < a.Len() && y < b2.Len() {
				if a.Xs[x] <= b2.Xs[y] {
					merged.Append(a.Xs[x], a.Ys[x], a.IDs[x])
					x++
				} else {
					merged.Append(b2.Xs[y], b2.Ys[y], b2.IDs[y])
					y++
				}
			}
			for ; x < a.Len(); x++ {
				merged.Append(a.Xs[x], a.Ys[x], a.IDs[x])
			}
			for ; y < b2.Len(); y++ {
				merged.Append(b2.Xs[y], b2.Ys[y], b2.IDs[y])
			}
			sc = merged
		case okN:
			sc = sn
		case okH:
			sc = sh
		default:
			continue
		}
		colsweep.SweepSorted(&rc, &sc, eps, out)
	}
	out.Flush()
	return pairs
}

func measure(name string, pairsPerOp int64, bench func(b *testing.B)) entry {
	res := testing.Benchmark(bench)
	ns := float64(res.NsPerOp())
	e := entry{
		Name:        name,
		NsPerOp:     ns,
		BPerOp:      res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		PairsPerOp:  pairsPerOp,
	}
	if ns > 0 {
		e.PairsPerSec = float64(pairsPerOp) / (ns / 1e9)
	}
	fmt.Printf("%-20s %12.0f ns/op %10d B/op %8d allocs/op %14.0f pairs/sec\n",
		name, e.NsPerOp, e.BPerOp, e.AllocsPerOp, e.PairsPerSec)
	return e
}

func main() {
	var (
		out     = flag.String("out", "BENCH_sweep.json", "JSON report path (- for stdout)")
		cells   = flag.Int("cells", 64, "partition cells per op")
		perSide = flag.Int("per-side", 256, "points per side per cell")
		eps     = flag.Float64("eps", 0.5, "join distance")
		extent  = flag.Float64("extent", 8, "cell extent (points uniform in [0,extent)^2)")
		e2eN    = flag.Int("e2e-n", 50000, "points per side for the end-to-end core benchmark")
		scanN   = flag.Int("scan-n", 200_000, "points per side for the disk-vs-RAM partition scan")
		geomN   = flag.Int("geom-n", 20_000, "objects per side for the non-point (two-layer) benchmarks")
		cpu     = flag.Int("cpu", 0, "GOMAXPROCS for the parallel core/columnar-cpuN row (0 = runtime.NumCPU)")
		gate    = flag.String("gate", "", "reference report to gate against; exit non-zero on regression")
		gateTol = flag.Float64("gate-tolerance", 0.20, "allowed fractional regression vs the gate reference")
		history = flag.String("history", "", "append this report as one compact JSON line to the given file")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(99))
	var rss, sss [][]tuple.Tuple
	for c := 0; c < *cells; c++ {
		rss = append(rss, randomTuples(rng, *perSide, *extent, int64(c)<<20))
		sss = append(sss, randomTuples(rng, *perSide, *extent, 1<<40|int64(c)<<20))
	}

	// One counted pass per kernel: pair counts and checksums must agree,
	// otherwise the throughput comparison is comparing different joins.
	var seedC, scalarC, colC sweep.Counter
	for j := range rss {
		seedPlaneSweep(rss[j], sss[j], *eps, seedC.Emit)
		sweep.PlaneSweep(rss[j], sss[j], *eps, scalarC.Emit)
	}
	{
		bufs := colsweep.Get()
		bat := bufs.Batch(func(ps []tuple.Pair) {
			for _, p := range ps {
				colC.EmitPair(p)
			}
		}, false)
		for j := range rss {
			colsweep.JoinCell(bufs, rss[j], sss[j], *eps, bat)
		}
		bat.Flush()
		colsweep.Put(bufs)
	}
	if seedC != scalarC || seedC != colC {
		log.Fatalf("bench: kernel divergence: seed %d/%x scalar %d/%x columnar %d/%x",
			seedC.N, seedC.Checksum, scalarC.N, scalarC.Checksum, colC.N, colC.Checksum)
	}
	pairs := seedC.N

	rep := report{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workload: fmt.Sprintf("%d cells x (%d R + %d S) uniform points in [0,%g)^2, eps=%g, %d pairs/op",
			*cells, *perSide, *perSide, *extent, *eps, pairs),
	}

	var sink sweep.Counter
	rep.Entries = append(rep.Entries, measure("sweep/seed-scalar", pairs, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range rss {
				seedPlaneSweep(rss[j], sss[j], *eps, sink.Emit)
			}
		}
	}))
	rep.Entries = append(rep.Entries, measure("sweep/scalar", pairs, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range rss {
				sweep.PlaneSweep(rss[j], sss[j], *eps, sink.Emit)
			}
		}
	}))
	rep.Entries = append(rep.Entries, measure("sweep/columnar", pairs, func(b *testing.B) {
		b.ReportAllocs()
		bufs := colsweep.Get()
		defer colsweep.Put(bufs)
		bat := bufs.Batch(func(ps []tuple.Pair) {
			for _, p := range ps {
				sink.EmitPair(p)
			}
		}, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range rss {
				colsweep.JoinCell(bufs, rss[j], sss[j], *eps, bat)
			}
			bat.Flush()
		}
	}))

	// End-to-end: the full adaptive join (sample, agreements, shuffle,
	// partition joins) with the default columnar kernel vs the scalar
	// oracle, same inputs.
	e2eR := randomTuples(rng, *e2eN, 100, 0)
	e2eS := randomTuples(rng, *e2eN, 100, 1<<40)
	e2eCfg := core.Config{Eps: 0.4, Seed: 7}
	res, err := core.Join(e2eR, e2eS, e2eCfg)
	if err != nil {
		log.Fatalf("bench: end-to-end join: %v", err)
	}
	e2ePairs := res.Results
	rep.Entries = append(rep.Entries, measure("core/columnar", e2ePairs, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Join(e2eR, e2eS, e2eCfg); err != nil {
				b.Fatal(err)
			}
		}
	}))
	scalarCfg := e2eCfg
	scalarCfg.Kernel = dpe.ScalarKernel
	rep.Entries = append(rep.Entries, measure("core/scalar", e2ePairs, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Join(e2eR, e2eS, scalarCfg); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// The same end-to-end join pinned to -cpu procs (default NumCPU), so
	// the report carries an explicit scaling row next to the
	// default-GOMAXPROCS one: on multi-core boxes the pair shows how the
	// map/shuffle/join parallelism scales, on this repo's 1-CPU reference
	// box the two rows coincide and document that fact.
	benchCPU := *cpu
	if benchCPU <= 0 {
		benchCPU = runtime.NumCPU()
	}
	prevProcs := runtime.GOMAXPROCS(benchCPU)
	rep.Entries = append(rep.Entries, measure(fmt.Sprintf("core/columnar-cpu%d", benchCPU), e2ePairs, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Join(e2eR, e2eS, e2eCfg); err != nil {
				b.Fatal(err)
			}
		}
	}))
	runtime.GOMAXPROCS(prevProcs)

	// Disk vs RAM: the same grid-partitioned join, once streamed from
	// mmap colfiles (dstore.JoinFiles) and once over the identical
	// partitions preloaded into heap slabs.
	scanDir, err := os.MkdirTemp("", "bench-scan")
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	defer os.RemoveAll(scanDir)
	scanEps := 0.5
	scanBounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	scanR := randomTuples(rng, *scanN, 100, 0)
	scanS := randomTuples(rng, *scanN, 100, 1<<40)
	rPath := filepath.Join(scanDir, "r.col")
	sPath := filepath.Join(scanDir, "s.col")
	if err := dstore.WritePartitioned(rPath, scanR, scanEps, 0, scanBounds); err != nil {
		log.Fatalf("bench: %v", err)
	}
	if err := dstore.WritePartitioned(sPath, scanS, scanEps, 0, scanBounds); err != nil {
		log.Fatalf("bench: %v", err)
	}
	rr, err := dstore.OpenColFile(rPath)
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	defer rr.Close()
	sr, err := dstore.OpenColFile(sPath)
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	defer sr.Close()
	ramR, ramS := loadPartitions(rr), loadPartitions(sr)

	// Counted pass: both scan paths must agree before their throughput
	// is worth comparing.
	diskPairs, err := dstore.JoinFiles(rr, sr, scanEps, nil)
	if err != nil {
		log.Fatalf("bench: disk scan: %v", err)
	}
	if ramPairs := joinRAM(ramR, ramS, scanEps); ramPairs != diskPairs {
		log.Fatalf("bench: scan divergence: disk %d pairs, ram %d pairs", diskPairs, ramPairs)
	}
	rep.ScanWorkload = fmt.Sprintf("%d R x %d S uniform points in [0,100)^2, eps=%g, %d pairs/op",
		*scanN, *scanN, scanEps, diskPairs)
	rep.Entries = append(rep.Entries, measure("scan/disk", diskPairs, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dstore.JoinFiles(rr, sr, scanEps, nil); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rep.Entries = append(rep.Entries, measure("scan/ram", diskPairs, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			joinRAM(ramR, ramS, scanEps)
		}
	}))

	// Non-point joins: the two-layer engine (MBR replication with tile
	// classes, per-tile class-pair sweeps, exact refinement) over
	// synthetic polygon and polyline sets. Each op includes Prepare —
	// assignment and shuffle are part of the cost being measured.
	world := datagen.World()
	geoR, err := datagen.GeomObjects(
		datagen.GeomSpec{Kind: "polygon", MinExtent: 0.2, MaxExtent: 1, Verts: 6, ShapeSeed: 21},
		func(emit func(tuple.Tuple)) { datagen.UniformEach(world, *geomN, 20, 0, emit) })
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	geoS, err := datagen.GeomObjects(
		datagen.GeomSpec{Kind: "polyline", MinExtent: 0.2, MaxExtent: 1, Verts: 4, ShapeSeed: 22},
		func(emit func(tuple.Tuple)) { datagen.UniformEach(world, *geomN, 23, 1<<40, emit) })
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	for _, tl := range []struct {
		name string
		cfg  twolayer.Config
	}{
		{"twolayer/intersects", twolayer.Config{R: geoR, S: geoS, Pred: extgeom.Intersects}},
		{"twolayer/within", twolayer.Config{R: geoR, S: geoS, Pred: extgeom.WithinDistance, Eps: 0.5}},
	} {
		res, err := twolayer.Join(tl.cfg)
		if err != nil {
			log.Fatalf("bench: %s: %v", tl.name, err)
		}
		tlPairs := res.Results
		if rep.GeomWorkload == "" {
			rep.GeomWorkload = fmt.Sprintf("%d polygons x %d polylines, extents [0.2,1] in [0,100)^2",
				*geomN, *geomN)
		}
		cfg := tl.cfg
		rep.Entries = append(rep.Entries, measure(tl.name, tlPairs, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := twolayer.Join(cfg); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Per-phase wall times from the tracer, one traced run.
	trCfg := e2eCfg
	trCfg.Simple = true
	tr := obs.New()
	root := tr.Start(0, obs.SpanJoin)
	trCfg.Tracer = tr
	trCfg.TraceParent = root.SpanID()
	if _, err := core.Join(e2eR, e2eS, trCfg); err != nil {
		log.Fatalf("bench: traced end-to-end join: %v", err)
	}
	root.End()
	rep.PhaseMillis = map[string]float64{}
	for _, sp := range tr.Spans() {
		if sp.Name == obs.SpanJoin || sp.Name == obs.SpanTask || sp.Done == 0 {
			continue
		}
		name := sp.Name
		if name == obs.SpanExecute {
			name = "sweep"
		}
		rep.PhaseMillis[name] += float64(sp.Done-sp.Start) / 1e6
	}
	fmt.Printf("phases: partition %.1fms replicate %.1fms sweep %.1fms supplementary %.1fms dedup %.1fms\n",
		rep.PhaseMillis[obs.SpanPartition], rep.PhaseMillis[obs.SpanReplicate],
		rep.PhaseMillis["sweep"], rep.PhaseMillis[obs.SpanSupplementary], rep.PhaseMillis[obs.SpanDedup])

	byName := map[string]entry{}
	for _, e := range rep.Entries {
		byName[e.Name] = e
	}
	if s := byName["sweep/seed-scalar"].PairsPerSec; s > 0 {
		rep.SpeedupColumnarVsSeed = byName["sweep/columnar"].PairsPerSec / s
	}
	if s := byName["sweep/scalar"].PairsPerSec; s > 0 {
		rep.SpeedupColumnarVsScalar = byName["sweep/columnar"].PairsPerSec / s
	}
	if s := byName["scan/ram"].PairsPerSec; s > 0 {
		rep.DiskVsRAMScan = byName["scan/disk"].PairsPerSec / s
	}
	fmt.Printf("columnar vs seed:   %.2fx pairs/sec\ncolumnar vs scalar: %.2fx pairs/sec\ndisk vs ram scan:   %.2fx pairs/sec\n",
		rep.SpeedupColumnarVsSeed, rep.SpeedupColumnarVsScalar, rep.DiskVsRAMScan)

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	js = append(js, '\n')
	if *out == "-" {
		os.Stdout.Write(js)
	} else {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			log.Fatalf("bench: %v", err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *history != "" {
		if err := appendHistory(*history, rep); err != nil {
			log.Fatalf("bench: %v", err)
		}
		fmt.Printf("appended %s\n", *history)
	}
	if *gate != "" {
		if err := gateAgainst(*gate, rep, *gateTol); err != nil {
			log.Fatalf("bench: %v", err)
		}
		fmt.Printf("gate passed against %s (tolerance %.0f%%)\n", *gate, *gateTol*100)
	}
}

// gatePhases are the phase times the perf gate watches: the map-side
// costs the adaptive-replication work targets. Sweep and dedup are
// deliberately ungated — their duration tracks the pair count, which
// varies with workload flags, not with regressions.
var gatePhases = []string{obs.SpanPartition, obs.SpanReplicate, obs.SpanSupplementary}

// gateAgainst fails when this run regresses more than tol (fractional)
// against the reference report: lower pairs/sec on the end-to-end
// columnar row, or higher wall time on any gated phase.
func gateAgainst(refPath string, cur report, tol float64) error {
	raw, err := os.ReadFile(refPath)
	if err != nil {
		return fmt.Errorf("gate reference: %w", err)
	}
	var ref report
	if err := json.Unmarshal(raw, &ref); err != nil {
		return fmt.Errorf("gate reference %s: %w", refPath, err)
	}
	var fails []string
	refBy := map[string]entry{}
	for _, e := range ref.Entries {
		refBy[e.Name] = e
	}
	curBy := map[string]entry{}
	for _, e := range cur.Entries {
		curBy[e.Name] = e
	}
	if r := refBy["core/columnar"].PairsPerSec; r > 0 {
		if c := curBy["core/columnar"].PairsPerSec; c < r*(1-tol) {
			fails = append(fails, fmt.Sprintf(
				"core/columnar throughput %.0f pairs/sec, reference %.0f (-%.0f%%)", c, r, (1-c/r)*100))
		}
	}
	for _, ph := range gatePhases {
		r, ok := ref.PhaseMillis[ph]
		if !ok || r <= 0 {
			continue
		}
		if c := cur.PhaseMillis[ph]; c > r*(1+tol) {
			fails = append(fails, fmt.Sprintf(
				"phase %s %.2fms, reference %.2fms (+%.0f%%)", ph, c, r, (c/r-1)*100))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("perf gate failed vs %s:\n  %s", refPath, strings.Join(fails, "\n  "))
	}
	return nil
}

// appendHistory adds the report as one compact JSON line (with a
// timestamp) to path, creating it if needed — a per-PR trajectory of
// the gate metrics that plain `jq -s` can analyse.
func appendHistory(path string, rep report) error {
	line, err := json.Marshal(struct {
		Time string `json:"time"`
		report
	}{Time: time.Now().UTC().Format(time.RFC3339), report: rep})
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	return err
}
