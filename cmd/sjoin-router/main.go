// Command sjoin-router is the fleet front door: one logical sjoind
// over N sjoind shards. Datasets are placed on a consistent-hash ring
// (tenant-aware keys, replicated), single-shard requests are proxied,
// cross-shard joins are fanned out or streamed and their partial
// results merged so clients see exactly the single-daemon HTTP API —
// same wire formats, byte-identical checksums.
//
// Usage:
//
//	sjoin-router -shards a=http://h1:8080,b=http://h2:8080 [-addr :8090]
//	             [-vnodes 64] [-replicas 2]
//	             [-heartbeat 500ms] [-heartbeat-misses 5] [-retries 3]
//	             [-tenant-quota RATE:BURST] [-tenant-override T=RATE:BURST]
//	             [-fanout-min-points N] [-warm-joins 4] [-log-level info]
//
// Tenancy rides on the X-Tenant request header: it scopes dataset
// names, placement keys and admission buckets. -tenant-quota sets the
// default joins-per-second budget (token bucket, e.g. 5:10 is 5/s with
// burst 10); -tenant-override pins a specific tenant's budget and may
// repeat. Over-budget requests answer 429 with Retry-After.
//
// Shards join and leave at runtime via POST/DELETE /v1/fleet/shards;
// the router migrates datasets over the shard handoff endpoints before
// swapping the ring, so in-flight requests never observe a
// half-migrated placement. GET /v1/fleet/ring shows placement.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spatialjoin/internal/fleet"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		shardsArg = flag.String("shards", "", "comma-separated id=url shard list (e.g. a=http://h1:8080,b=http://h2:8080)")
		vnodes    = flag.Int("vnodes", 64, "ring points per shard")
		replicas  = flag.Int("replicas", 2, "shards holding each dataset")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "shard /healthz probe interval")
		hbMisses  = flag.Int("heartbeat-misses", 5, "consecutive missed probes before a shard is declared dead")
		retries   = flag.Int("retries", 3, "per-request attempts across shard failures")
		fanoutMin = flag.Int("fanout-min-points", 0, "fan a cross-shard join out by grid region when both inputs have at least this many points (0 streams instead)")
		warmJoins = flag.Int("warm-joins", 4, "recent join shapes replayed to warm a migrated dataset's new owner")
		maxUpload = flag.Int64("max-upload-bytes", 64<<20, "dataset upload size cap")
		traceRing = flag.Int("trace-ring", 0, "retained routed-join traces for /v1/joins/{id}/trace (default 64)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	var defQuota fleet.Quota
	flag.Func("tenant-quota", "default per-tenant join budget as RATE:BURST (e.g. 5:10); empty disables tenant admission", func(s string) error {
		q, err := fleet.ParseQuota(s)
		if err != nil {
			return err
		}
		defQuota = q
		return nil
	})
	overrides := map[string]fleet.Quota{}
	flag.Func("tenant-override", "per-tenant budget as TENANT=RATE:BURST; may repeat", func(s string) error {
		tenant, spec, ok := strings.Cut(s, "=")
		if !ok || tenant == "" {
			return fmt.Errorf("want TENANT=RATE:BURST, got %q", s)
		}
		q, err := fleet.ParseQuota(spec)
		if err != nil {
			return err
		}
		overrides[tenant] = q
		return nil
	})
	flag.Parse()

	var level slog.LevelVar
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("sjoin-router: bad -log-level", "value", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &level}))

	shardURLs, err := parseShards(*shardsArg)
	if err != nil {
		logger.Error("bad -shards", "err", err)
		os.Exit(2)
	}
	if len(shardURLs) == 0 {
		logger.Error("at least one -shards entry is required")
		os.Exit(2)
	}
	if flagWasSet("trace-ring") && *traceRing < 1 {
		logger.Error("-trace-ring must be at least 1")
		os.Exit(1)
	}

	rt := fleet.NewRouter(fleet.Config{
		VNodes:            *vnodes,
		Replicas:          *replicas,
		HeartbeatInterval: *heartbeat,
		HeartbeatMisses:   *hbMisses,
		MaxRetries:        *retries,
		TenantQuota:       defQuota,
		TenantOverrides:   overrides,
		FanoutMinPoints:   *fanoutMin,
		WarmJoins:         *warmJoins,
		MaxUploadBytes:    *maxUpload,
		TraceRing:         *traceRing,
		Log:               logger,
	}, shardURLs)
	defer rt.Close()

	srv := &http.Server{Handler: rt.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// Port first on stdout, like sjoind: scripts and the e2e test bind
	// ":0" and parse the banner to find the router.
	fmt.Printf("sjoin-router listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Info("signal received, shutting down", "signal", sig.String())
		srv.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	}
}

// flagWasSet reports whether the named flag appeared on the command
// line — distinguishing an explicit bad value from the zero default.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// parseShards decodes "id=url,id=url".
func parseShards(s string) (map[string]string, error) {
	out := map[string]string{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("want id=url, got %q", part)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("duplicate shard id %q", id)
		}
		out[id] = url
	}
	return out, nil
}
