// Command sjoin runs an ε-distance spatial join between two point files.
//
// Usage:
//
//	sjoin -r left.txt -s right.txt -eps 0.5 [-algo LPiB] [-workers 8]
//	      [-lpt] [-out pairs.txt] [-trace trace.json]
//
// With -trace the join runs under a tracer and its span tree is written
// as Chrome trace-event JSON (load in chrome://tracing or Perfetto); a
// one-line skew summary is printed alongside the metrics.
//
// Input files hold one point per line: "x y [attributes...]". The chosen
// algorithm's replication, shuffle and timing metrics are printed to
// stdout; with -out, the result pairs are written as "rid sid" lines.
//
// Cluster mode: with -cluster-workers N the join's partition-level work
// runs on N sjoin-worker processes instead of in-process. sjoin listens
// on -cluster-listen, prints the address, waits for the workers to
// connect, and reports the measured wire bytes alongside the modelled
// shuffle metrics:
//
//	sjoin -cluster-listen :7077 -cluster-workers 3 -r a.txt -s b.txt -eps 0.5 &
//	sjoin-worker -connect 127.0.0.1:7077   # × 3
//
// Follow mode: with -follow the command becomes a continuous join. It
// tails a mutation file and prints one line per result delta ("+ rid sid"
// when a pair starts qualifying, "- rid sid" when one stops). Mutation
// lines are:
//
//	r <id> <x> <y>     upsert a point of R (insert, move, or refresh)
//	s <id> <x> <y>     upsert a point of S
//	del r <id>         delete a point of R (same for s)
//	rebalance          force an agreement drift scan
//	# ...              comment
//
//	sjoin -follow mutations.txt -eps 0.5 -bounds 0,0,100,100
//
// -follow-poll sets how often the file is re-read once exhausted; 0 makes
// a single pass and exits at EOF (for scripts). -bounds declares the
// data-space MBR the streaming grid covers, and -algo must be lpib or
// diff. A summary "# ..." line is printed at the end.
//
// Watch mode: with -watch URL the command becomes a live terminal
// dashboard over a daemon's /v1/telemetry endpoints (or a router's
// /v1/fleet/overview): sparkline charts of the rollup series, the
// per-tenant SLO table, and recent anomaly events, refreshed every
// -watch-interval. -watch-count N renders N frames then exits (for
// scripts); -watch-window sets the rollup window per frame.
//
//	sjoin -watch http://localhost:8080 -watch-interval 2s
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spatialjoin"
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/cluster"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/stream"
	"spatialjoin/internal/tuple"
)

var algorithms = map[string]spatialjoin.Algorithm{
	"lpib":       spatialjoin.AdaptiveLPiB,
	"diff":       spatialjoin.AdaptiveDIFF,
	"uni-r":      spatialjoin.PBSMUniR,
	"uni-s":      spatialjoin.PBSMUniS,
	"eps-grid":   spatialjoin.PBSMEpsGrid,
	"sedona":     spatialjoin.SedonaLike,
	"lpib-dedup": spatialjoin.AdaptiveSimpleDedup,
	"clone":      spatialjoin.PBSMClone,
	"auto":       spatialjoin.AutoPlanned,
}

func main() {
	var (
		rPath     = flag.String("r", "", "path of the R point file (required)")
		sPath     = flag.String("s", "", "path of the S point file (required)")
		eps       = flag.Float64("eps", 0, "distance threshold (required, > 0)")
		algoName  = flag.String("algo", "lpib", "algorithm: lpib, diff, uni-r, uni-s, eps-grid, sedona, lpib-dedup, clone, auto")
		selfJoin  = flag.Bool("self", false, "self-join: -r joined with itself (-s ignored)")
		workers   = flag.Int("workers", 0, "simulated cluster size (default GOMAXPROCS)")
		parts     = flag.Int("partitions", 0, "reduce partitions (default 8 x workers)")
		sample    = flag.Float64("sample", 0, "sampling fraction (default 0.03)")
		seed      = flag.Int64("seed", 1, "sampling seed")
		useLPT    = flag.Bool("lpt", false, "use LPT cell placement (adaptive algorithms)")
		gridRes   = flag.Float64("grid-res", 0, "grid resolution multiplier (default per algorithm)")
		outPath   = flag.String("out", "", "write result pairs to this file")
		tracePath = flag.String("trace", "", "write the join's span tree as Chrome trace-event JSON to this file")

		clusterListen  = flag.String("cluster-listen", "", "run the join on a worker cluster, accepting sjoin-worker connections on this address (e.g. :7077)")
		clusterWorkers = flag.Int("cluster-workers", 0, "worker processes to wait for before joining (requires -cluster-listen)")
		clusterWait    = flag.Duration("cluster-wait", time.Minute, "how long to wait for -cluster-workers connections")

		followPath = flag.String("follow", "", "continuous join: tail this mutation file and print result deltas")
		followPoll = flag.Duration("follow-poll", 200*time.Millisecond, "poll interval once -follow reaches EOF (0: single pass, exit at EOF)")
		boundsSpec = flag.String("bounds", "", "data-space MBR as minx,miny,maxx,maxy (required with -follow)")

		watchURL      = flag.String("watch", "", "live telemetry dashboard: poll this sjoind (or sjoin-router) base URL and render sparkline charts")
		watchInterval = flag.Duration("watch-interval", 2*time.Second, "refresh period for -watch")
		watchCount    = flag.Int("watch-count", 0, "frames to render before exiting; 0 runs until interrupted (requires -watch)")
		watchWindow   = flag.String("watch-window", "2m", "rollup window requested per -watch frame")
	)
	flag.Parse()

	if *watchURL != "" {
		watchMain(*watchURL, *watchInterval, *watchCount, *watchWindow)
		return
	}
	if *followPath != "" {
		followMain(*followPath, *followPoll, *boundsSpec, *eps, *algoName, *gridRes, *tracePath)
		return
	}

	algo, ok := algorithms[strings.ToLower(*algoName)]
	if !ok {
		fail("unknown algorithm %q", *algoName)
	}
	if *rPath == "" || (*sPath == "" && !*selfJoin) {
		fail("both -r and -s are required (or -r with -self)")
	}
	if *eps <= 0 {
		fail("-eps must be positive")
	}

	rs, err := spatialjoin.ReadFile(*rPath, 0)
	if err != nil {
		fail("reading R: %v", err)
	}
	var ss []spatialjoin.Tuple
	if !*selfJoin {
		ss, err = spatialjoin.ReadFile(*sPath, 1_000_000_000)
		if err != nil {
			fail("reading S: %v", err)
		}
	}

	opts := spatialjoin.Options{
		Eps:            *eps,
		Algorithm:      algo,
		Workers:        *workers,
		Partitions:     *parts,
		SampleFraction: *sample,
		Seed:           *seed,
		UseLPT:         *useLPT,
		GridRes:        *gridRes,
		Collect:        *outPath != "",
	}
	var tracer *spatialjoin.Tracer
	if *tracePath != "" {
		tracer = spatialjoin.NewTracer()
		opts.Trace = tracer
	}

	if *clusterListen != "" || *clusterWorkers > 0 {
		if *clusterListen == "" {
			fail("-cluster-workers requires -cluster-listen")
		}
		if *clusterWorkers <= 0 {
			fail("-cluster-listen requires -cluster-workers > 0")
		}
		logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
		coord, err := cluster.Listen(*clusterListen, cluster.Config{Log: logger})
		if err != nil {
			fail("cluster: %v", err)
		}
		defer coord.Close()
		fmt.Printf("cluster listening on %s, waiting for %d workers\n", coord.Addr(), *clusterWorkers)
		ctx, cancel := context.WithTimeout(context.Background(), *clusterWait)
		if err := coord.WaitForWorkers(ctx, *clusterWorkers); err != nil {
			cancel()
			fail("cluster: %v", err)
		}
		cancel()
		opts.Engine = coord.Engine()
	}
	var rep *spatialjoin.Report
	if *selfJoin {
		rep, err = spatialjoin.SelfJoin(rs, opts)
		ss = rs
	} else {
		rep, err = spatialjoin.Join(rs, ss, opts)
	}
	if err != nil {
		fail("join: %v", err)
	}

	fmt.Printf("algorithm          %s\n", rep.Algorithm)
	fmt.Printf("|R|, |S|           %d, %d\n", len(rs), len(ss))
	fmt.Printf("results            %d (selectivity %.3e)\n", rep.Results, rep.Selectivity(len(rs), len(ss)))
	fmt.Printf("replicated         %d (R: %d, S: %d)\n", rep.Replicated(), rep.ReplicatedR, rep.ReplicatedS)
	fmt.Printf("shuffled bytes     %d (remote: %d)\n", rep.ShuffledBytes, rep.ShuffleRemoteBytes)
	fmt.Printf("construction time  %v (sample %v, build %v, map %v, shuffle %v)\n",
		rep.ConstructionTime(), rep.SampleTime, rep.BuildTime, rep.MapTime, rep.ShuffleTime)
	fmt.Printf("join time          %v\n", rep.JoinTime)
	if rep.DedupTime > 0 {
		fmt.Printf("dedup time         %v\n", rep.DedupTime)
	}
	fmt.Printf("total time         %v\n", rep.TotalTime())
	if cm := rep.Cluster; cm.Workers > 0 {
		fmt.Printf("cluster workers    %d\n", cm.Workers)
		fmt.Printf("wire task bytes    %d (local: %d, remote: %d)\n",
			cm.TaskBytesLocal+cm.TaskBytesRemote, cm.TaskBytesLocal, cm.TaskBytesRemote)
		fmt.Printf("wire broadcast     %d bytes\n", cm.BroadcastBytes)
		fmt.Printf("wire results       %d bytes\n", cm.ResultBytes)
		fmt.Printf("cluster tasks      %d (retries %d, speculative %d launched / %d won)\n",
			cm.Tasks, cm.Retries, cm.SpeculativeLaunched, cm.SpeculativeWins)
	}

	if tracer != nil {
		writeTrace(tracer, *tracePath)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail("creating output: %v", err)
		}
		for _, p := range rep.Pairs {
			fmt.Fprintf(f, "%d %d\n", p.RID, p.SID)
		}
		if err := f.Close(); err != nil {
			fail("writing output: %v", err)
		}
		fmt.Printf("pairs written      %s\n", *outPath)
	}
}

// followMain is the continuous-join entry point: it builds a streaming
// engine, tails the mutation file, and prints result deltas as they are
// emitted.
func followMain(path string, poll time.Duration, boundsSpec string, eps float64, algoName string, gridRes float64, tracePath string) {
	if eps <= 0 {
		fail("-eps must be positive")
	}
	var policy agreements.Policy
	switch strings.ToLower(algoName) {
	case "lpib":
		policy = agreements.LPiB
	case "diff":
		policy = agreements.DIFF
	default:
		fail("-follow supports -algo lpib or diff, got %q", algoName)
	}
	parts := strings.Split(boundsSpec, ",")
	if len(parts) != 4 {
		fail("-follow requires -bounds minx,miny,maxx,maxy")
	}
	var b [4]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fail("-bounds element %d: %v", i+1, err)
		}
		b[i] = v
	}
	var tracer *spatialjoin.Tracer
	if tracePath != "" {
		tracer = spatialjoin.NewTracer()
	}
	eng, err := stream.New(stream.Config{
		Eps:     eps,
		Bounds:  geom.Rect{MinX: b[0], MinY: b[1], MaxX: b[2], MaxY: b[3]},
		GridRes: gridRes,
		Policy:  policy,
		Tracer:  tracer,
	})
	if err != nil {
		fail("follow: %v", err)
	}
	sub := eng.Subscribe()
	defer sub.Close()

	f, err := os.Open(path)
	if err != nil {
		fail("follow: %v", err)
	}
	defer f.Close()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	drain := func() {
		for {
			d, ok := sub.TryNext()
			if !ok {
				break
			}
			fmt.Fprintf(out, "%s %d %d\n", d.Op, d.RID, d.SID)
		}
		out.Flush()
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	rd := bufio.NewReader(f)
	var pending string
	lineNo := 0
tail:
	for {
		chunk, err := rd.ReadString('\n')
		pending += chunk
		switch {
		case err == nil:
			lineNo++
			followLine(eng, strings.TrimSpace(pending), lineNo)
			pending = ""
			drain()
		case err == io.EOF:
			if poll <= 0 {
				if strings.TrimSpace(pending) != "" {
					lineNo++
					followLine(eng, strings.TrimSpace(pending), lineNo)
					drain()
				}
				break tail
			}
			select {
			case <-sigCh:
				break tail
			case <-time.After(poll):
			}
		default:
			fail("follow: reading %s: %v", path, err)
		}
	}
	if tracer != nil {
		writeTrace(tracer, tracePath)
	}
	c := eng.Counters()
	fmt.Fprintf(out, "# upserts=%d deletes=%d rejected=%d deltas=+%d/-%d live=%d/%d replicas=%d flips=%d migrations=%d\n",
		c.Upserts, c.Deletes, c.Rejected, c.DeltasAdded, c.DeltasRemoved,
		c.LiveR, c.LiveS, c.Replicas, c.AgreementFlips, c.Migrations)
}

// followLine applies one mutation-file line to the engine.
func followLine(eng *stream.Engine, line string, lineNo int) {
	if line == "" || strings.HasPrefix(line, "#") {
		return
	}
	fs := strings.Fields(line)
	parseSet := func(s string) (tuple.Set, bool) {
		switch strings.ToLower(s) {
		case "r":
			return tuple.R, true
		case "s":
			return tuple.S, true
		}
		return 0, false
	}
	switch strings.ToLower(fs[0]) {
	case "rebalance":
		eng.Rebalance()
	case "del":
		if len(fs) != 3 {
			fail("follow line %d: want \"del r|s <id>\", got %q", lineNo, line)
		}
		set, ok := parseSet(fs[1])
		id, err := strconv.ParseInt(fs[2], 10, 64)
		if !ok || err != nil {
			fail("follow line %d: bad delete %q", lineNo, line)
		}
		eng.Delete(set, id)
	case "r", "s":
		if len(fs) != 4 {
			fail("follow line %d: want \"r|s <id> <x> <y>\", got %q", lineNo, line)
		}
		set, _ := parseSet(fs[0])
		id, err1 := strconv.ParseInt(fs[1], 10, 64)
		x, err2 := strconv.ParseFloat(fs[2], 64)
		y, err3 := strconv.ParseFloat(fs[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			fail("follow line %d: bad upsert %q", lineNo, line)
		}
		eng.Upsert(set, spatialjoin.Tuple{ID: id, Pt: spatialjoin.Point{X: x, Y: y}})
	default:
		fail("follow line %d: unknown mutation %q", lineNo, line)
	}
}

// writeTrace exports the tracer as Chrome trace-event JSON and prints a
// one-line skew summary.
func writeTrace(tr *spatialjoin.Tracer, path string) {
	f, err := os.Create(path)
	if err != nil {
		fail("creating trace: %v", err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		fail("writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("writing trace: %v", err)
	}
	sk := tr.Skew()
	fmt.Printf("trace written      %s (%d spans; %d tasks, max %v, median %v, straggler ratio %.2f)\n",
		path, tr.Len(), sk.Tasks,
		time.Duration(sk.MaxTaskMicros)*time.Microsecond,
		time.Duration(sk.MedianTaskMicros)*time.Microsecond,
		sk.StragglerRatio)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sjoin: "+format+"\n", args...)
	os.Exit(2)
}
