// Command sjoin runs an ε-distance spatial join between two point files.
//
// Usage:
//
//	sjoin -r left.txt -s right.txt -eps 0.5 [-algo LPiB] [-workers 8]
//	      [-lpt] [-out pairs.txt]
//
// Input files hold one point per line: "x y [attributes...]". The chosen
// algorithm's replication, shuffle and timing metrics are printed to
// stdout; with -out, the result pairs are written as "rid sid" lines.
//
// Cluster mode: with -cluster-workers N the join's partition-level work
// runs on N sjoin-worker processes instead of in-process. sjoin listens
// on -cluster-listen, prints the address, waits for the workers to
// connect, and reports the measured wire bytes alongside the modelled
// shuffle metrics:
//
//	sjoin -cluster-listen :7077 -cluster-workers 3 -r a.txt -s b.txt -eps 0.5 &
//	sjoin-worker -connect 127.0.0.1:7077   # × 3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"spatialjoin"
	"spatialjoin/internal/cluster"
)

var algorithms = map[string]spatialjoin.Algorithm{
	"lpib":       spatialjoin.AdaptiveLPiB,
	"diff":       spatialjoin.AdaptiveDIFF,
	"uni-r":      spatialjoin.PBSMUniR,
	"uni-s":      spatialjoin.PBSMUniS,
	"eps-grid":   spatialjoin.PBSMEpsGrid,
	"sedona":     spatialjoin.SedonaLike,
	"lpib-dedup": spatialjoin.AdaptiveSimpleDedup,
	"clone":      spatialjoin.PBSMClone,
	"auto":       spatialjoin.AutoPlanned,
}

func main() {
	var (
		rPath    = flag.String("r", "", "path of the R point file (required)")
		sPath    = flag.String("s", "", "path of the S point file (required)")
		eps      = flag.Float64("eps", 0, "distance threshold (required, > 0)")
		algoName = flag.String("algo", "lpib", "algorithm: lpib, diff, uni-r, uni-s, eps-grid, sedona, lpib-dedup, clone, auto")
		selfJoin = flag.Bool("self", false, "self-join: -r joined with itself (-s ignored)")
		workers  = flag.Int("workers", 0, "simulated cluster size (default GOMAXPROCS)")
		parts    = flag.Int("partitions", 0, "reduce partitions (default 8 x workers)")
		sample   = flag.Float64("sample", 0, "sampling fraction (default 0.03)")
		seed     = flag.Int64("seed", 1, "sampling seed")
		useLPT   = flag.Bool("lpt", false, "use LPT cell placement (adaptive algorithms)")
		gridRes  = flag.Float64("grid-res", 0, "grid resolution multiplier (default per algorithm)")
		outPath  = flag.String("out", "", "write result pairs to this file")

		clusterListen  = flag.String("cluster-listen", "", "run the join on a worker cluster, accepting sjoin-worker connections on this address (e.g. :7077)")
		clusterWorkers = flag.Int("cluster-workers", 0, "worker processes to wait for before joining (requires -cluster-listen)")
		clusterWait    = flag.Duration("cluster-wait", time.Minute, "how long to wait for -cluster-workers connections")
	)
	flag.Parse()

	algo, ok := algorithms[strings.ToLower(*algoName)]
	if !ok {
		fail("unknown algorithm %q", *algoName)
	}
	if *rPath == "" || (*sPath == "" && !*selfJoin) {
		fail("both -r and -s are required (or -r with -self)")
	}
	if *eps <= 0 {
		fail("-eps must be positive")
	}

	rs, err := spatialjoin.ReadFile(*rPath, 0)
	if err != nil {
		fail("reading R: %v", err)
	}
	var ss []spatialjoin.Tuple
	if !*selfJoin {
		ss, err = spatialjoin.ReadFile(*sPath, 1_000_000_000)
		if err != nil {
			fail("reading S: %v", err)
		}
	}

	opts := spatialjoin.Options{
		Eps:            *eps,
		Algorithm:      algo,
		Workers:        *workers,
		Partitions:     *parts,
		SampleFraction: *sample,
		Seed:           *seed,
		UseLPT:         *useLPT,
		GridRes:        *gridRes,
		Collect:        *outPath != "",
	}

	if *clusterListen != "" || *clusterWorkers > 0 {
		if *clusterListen == "" {
			fail("-cluster-workers requires -cluster-listen")
		}
		if *clusterWorkers <= 0 {
			fail("-cluster-listen requires -cluster-workers > 0")
		}
		coord, err := cluster.Listen(*clusterListen, cluster.Config{Logf: log.Printf})
		if err != nil {
			fail("cluster: %v", err)
		}
		defer coord.Close()
		fmt.Printf("cluster listening on %s, waiting for %d workers\n", coord.Addr(), *clusterWorkers)
		ctx, cancel := context.WithTimeout(context.Background(), *clusterWait)
		if err := coord.WaitForWorkers(ctx, *clusterWorkers); err != nil {
			cancel()
			fail("cluster: %v", err)
		}
		cancel()
		opts.Engine = coord.Engine()
	}
	var rep *spatialjoin.Report
	if *selfJoin {
		rep, err = spatialjoin.SelfJoin(rs, opts)
		ss = rs
	} else {
		rep, err = spatialjoin.Join(rs, ss, opts)
	}
	if err != nil {
		fail("join: %v", err)
	}

	fmt.Printf("algorithm          %s\n", rep.Algorithm)
	fmt.Printf("|R|, |S|           %d, %d\n", len(rs), len(ss))
	fmt.Printf("results            %d (selectivity %.3e)\n", rep.Results, rep.Selectivity(len(rs), len(ss)))
	fmt.Printf("replicated         %d (R: %d, S: %d)\n", rep.Replicated(), rep.ReplicatedR, rep.ReplicatedS)
	fmt.Printf("shuffled bytes     %d (remote: %d)\n", rep.ShuffledBytes, rep.ShuffleRemoteBytes)
	fmt.Printf("construction time  %v (sample %v, build %v, map %v, shuffle %v)\n",
		rep.ConstructionTime(), rep.SampleTime, rep.BuildTime, rep.MapTime, rep.ShuffleTime)
	fmt.Printf("join time          %v\n", rep.JoinTime)
	if rep.DedupTime > 0 {
		fmt.Printf("dedup time         %v\n", rep.DedupTime)
	}
	fmt.Printf("total time         %v\n", rep.TotalTime())
	if cm := rep.Cluster; cm.Workers > 0 {
		fmt.Printf("cluster workers    %d\n", cm.Workers)
		fmt.Printf("wire task bytes    %d (local: %d, remote: %d)\n",
			cm.TaskBytesLocal+cm.TaskBytesRemote, cm.TaskBytesLocal, cm.TaskBytesRemote)
		fmt.Printf("wire broadcast     %d bytes\n", cm.BroadcastBytes)
		fmt.Printf("wire results       %d bytes\n", cm.ResultBytes)
		fmt.Printf("cluster tasks      %d (retries %d, speculative %d launched / %d won)\n",
			cm.Tasks, cm.Retries, cm.SpeculativeLaunched, cm.SpeculativeWins)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail("creating output: %v", err)
		}
		for _, p := range rep.Pairs {
			fmt.Fprintf(f, "%d %d\n", p.RID, p.SID)
		}
		if err := f.Close(); err != nil {
			fail("writing output: %v", err)
		}
		fmt.Printf("pairs written      %s\n", *outPath)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sjoin: "+format+"\n", args...)
	os.Exit(2)
}
