// Watch mode: a terminal telemetry dashboard. sjoin polls a daemon's
// /v1/telemetry endpoints (or, against a router, /v1/fleet/overview)
// and renders the rollup series as asciichart sparklines alongside the
// per-tenant SLO table and the recent anomaly events.

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"spatialjoin/internal/asciichart"
	"spatialjoin/internal/fleet"
	"spatialjoin/internal/telem"
)

// watchFrame is one refresh worth of telemetry, from either source.
type watchFrame struct {
	source string // "daemon" or "fleet"
	series []telem.SeriesDump
	slos   []telem.SLOStatus
	events []string // pre-rendered, newest last
}

func watchMain(baseURL string, interval time.Duration, count int, window string) {
	baseURL = strings.TrimRight(baseURL, "/")
	if interval <= 0 {
		fail("-watch-interval must be positive")
	}
	client := &http.Client{Timeout: interval}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	for frame := 0; count <= 0 || frame < count; frame++ {
		if frame > 0 {
			select {
			case <-sigCh:
				return
			case <-time.After(interval):
			}
			fmt.Print("\033[2J\033[H") // clear + home between frames
		}
		wf, err := fetchFrame(client, baseURL, window)
		if err != nil {
			fmt.Printf("sjoin watch: %s: %v\n", baseURL, err)
			continue
		}
		renderFrame(wf, baseURL, window)
	}
}

// fetchFrame tries the daemon telemetry surface first and falls back to
// the router's fleet overview when the daemon endpoints are absent.
func fetchFrame(client *http.Client, baseURL, window string) (*watchFrame, error) {
	var series []telem.SeriesDump
	code, err := getJSON(client, baseURL+"/v1/telemetry/series?window="+window, &series)
	if err != nil {
		return nil, err
	}
	if code == http.StatusOK {
		wf := &watchFrame{source: "daemon", series: series}
		if _, err := getJSON(client, baseURL+"/v1/telemetry/slo", &wf.slos); err != nil {
			return nil, err
		}
		var evs []telem.Event
		if _, err := getJSON(client, baseURL+"/v1/telemetry/events?limit=5", &evs); err != nil {
			return nil, err
		}
		for _, ev := range evs {
			wf.events = append(wf.events, renderEvent("", ev))
		}
		return wf, nil
	}
	var ov fleet.OverviewResponse
	code, err = getJSON(client, baseURL+"/v1/fleet/overview?window="+window, &ov)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("no telemetry surface (series: 404, overview: %d)", code)
	}
	wf := &watchFrame{source: "fleet", series: ov.Series, slos: ov.SLOs}
	evs := ov.Events
	if len(evs) > 5 {
		evs = evs[len(evs)-5:]
	}
	for _, ev := range evs {
		wf.events = append(wf.events, renderEvent(ev.Shard, ev.Event))
	}
	return wf, nil
}

func renderFrame(wf *watchFrame, baseURL, window string) {
	fmt.Printf("sjoin watch  %s  (%s telemetry, window %s, %s)\n\n",
		baseURL, wf.source, window, time.Now().Format("15:04:05"))

	// One chart per series name at the finest resolution; each key
	// (tenant or join shape) is a line.
	byName := map[string][]telem.SeriesDump{}
	var names []string
	for _, d := range wf.series {
		if d.Res != "1s" {
			continue
		}
		if _, ok := byName[d.Name]; !ok {
			names = append(names, d.Name)
		}
		byName[d.Name] = append(byName[d.Name], d)
	}
	sort.Strings(names)
	for _, name := range names {
		chart := renderSeriesChart(name, byName[name])
		if chart != "" {
			fmt.Println(chart)
		}
	}
	if len(names) == 0 {
		fmt.Println("  (no series yet — run a join)")
	}

	if len(wf.slos) > 0 {
		fmt.Println("tenant SLOs:")
		for _, st := range wf.slos {
			tenant := st.Tenant
			if tenant == "" {
				tenant = "(anonymous)"
			}
			fmt.Printf("  %-16s total %-6d err %-4d p50 %7.2fms  p99 %7.2fms  burn %.2fx\n",
				tenant, st.Total, st.Errors, st.P50Millis, st.P99Millis, st.BurnRate)
		}
		fmt.Println()
	}
	if len(wf.events) > 0 {
		fmt.Println("recent events:")
		for _, line := range wf.events {
			fmt.Println("  " + line)
		}
	}
}

// renderSeriesChart turns one series name's dumps into a labelled
// sparkline chart over the union of bucket timestamps.
func renderSeriesChart(name string, dumps []telem.SeriesDump) string {
	startSet := map[int64]bool{}
	for _, d := range dumps {
		for _, b := range d.Buckets {
			startSet[b.Start] = true
		}
	}
	if len(startSet) == 0 {
		return ""
	}
	starts := make([]int64, 0, len(startSet))
	for s := range startSet {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	xlabels := make([]string, len(starts))
	slot := map[int64]int{}
	for i, s := range starts {
		slot[s] = i
		xlabels[i] = time.Unix(s, 0).Format("15:04:05")
	}
	var series []asciichart.Series
	for _, d := range dumps {
		vals := make([]float64, len(starts))
		for i := range vals {
			vals[i] = naNStandIn
		}
		for _, b := range d.Buckets {
			vals[slot[b.Start]] = b.Mean()
		}
		// asciichart skips NaN-ish gaps only by shorter slices; fill
		// gaps by carrying the previous mean so the line stays readable.
		last := 0.0
		for i, v := range vals {
			if v == naNStandIn {
				vals[i] = last
			} else {
				last = v
			}
		}
		label := d.Key
		if label == "" {
			label = name
		}
		series = append(series, asciichart.Series{Name: label, Values: vals})
	}
	return asciichart.Render(name+" (1s mean)", xlabels, series, asciichart.Options{Width: 60, Height: 8})
}

// naNStandIn marks "no bucket at this timestamp" while filling chart
// slots; real means are folded from observations and never equal it.
const naNStandIn = -1.0e308

func renderEvent(shard string, ev telem.Event) string {
	at := time.UnixMilli(ev.UnixMS).Format("15:04:05")
	origin := ""
	if shard != "" {
		origin = shard + " "
	}
	return fmt.Sprintf("%s %s%-18s %s", at, origin, ev.Kind, ev.Message)
}

// getJSON GETs url and decodes the body on 200; non-200 returns the
// status with a nil error so callers can fall back.
func getJSON(client *http.Client, url string, out any) (int, error) {
	res, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		io.Copy(io.Discard, res.Body)
		return res.StatusCode, nil
	}
	return res.StatusCode, json.NewDecoder(res.Body).Decode(out)
}
