// Command sjoin-worker is one worker process of a spatial-join cluster.
// It dials the coordinator (a `sjoin --cluster-listen` run or a
// `sjoind --cluster-listen` daemon), announces itself, and then executes
// the reduce-partition join tasks streamed to it until the coordinator
// goes away or the process receives SIGTERM/SIGINT.
//
// Usage:
//
//	sjoin-worker -connect host:7077 [-name w1] [-parallel N]
//	             [-heartbeat 500ms] [-task-delay 0] [-log-level info]
//
// -task-delay stalls every task before it runs; it exists for fault
// injection and straggler experiments, not production use.
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spatialjoin/internal/cluster"
)

func main() {
	var (
		connect   = flag.String("connect", "", "coordinator address (required), e.g. 127.0.0.1:7077")
		name      = flag.String("name", "", "worker name in coordinator logs (default the hostname)")
		parallel  = flag.Int("parallel", 0, "concurrent task executors (default GOMAXPROCS)")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "liveness beacon period")
		taskDelay = flag.Duration("task-delay", 0, "stall every task by this long (fault-injection aid)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	var level slog.LevelVar
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("sjoin-worker: bad -log-level", "value", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &level}))

	if *connect == "" {
		logger.Error("sjoin-worker: -connect is required")
		os.Exit(2)
	}
	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		} else {
			*name = "worker"
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigCh
		logger.Info("signal received, disconnecting", "signal", sig.String(), "worker", *name)
		cancel()
	}()

	err := cluster.RunWorker(ctx, *connect, cluster.WorkerOptions{
		Name:              *name,
		Parallel:          *parallel,
		HeartbeatInterval: *heartbeat,
		TaskDelay:         *taskDelay,
		Log:               logger,
	})
	if err != nil {
		logger.Error("worker exited", "worker", *name, "err", err)
		os.Exit(1)
	}
}
