// Command sjoind is a long-running spatial-join service: an HTTP daemon
// over the library's prepared-plan serving layer.
//
// Usage:
//
//	sjoind [-addr :8080] [-max-concurrent N] [-max-queue N]
//	       [-plan-cache N] [-timeout 30s] [-pprof :6060]
//	       [-data-dir DIR] [-fsync] [-checkpoint-every 30s]
//	       [-cluster-listen :7077] [-cluster-workers N] [-log-level info]
//	       [-trace-ring N] [-telem-sample 1s] [-telem-flush 2s]
//	       [-straggler-threshold 4] [-slo-objective 0.995]
//
// With -data-dir the daemon is durable: datasets, streams, and skew
// history are logged to an append-only record log (plus columnar
// dataset files and periodic checkpoints) under DIR, and a restart —
// clean or after a crash — recovers the full state from the newest
// checkpoint plus a bounded log tail. -fsync makes each acknowledged
// mutation survive host crashes too; -checkpoint-every bounds the
// replay tail (POST /v1/admin/checkpoint triggers one on demand).
//
// With -cluster-listen the daemon also accepts sjoin-worker connections
// on that address and executes every join's partition-level work on the
// connected workers; -cluster-workers N blocks startup until N workers
// have joined. Measured wire counters surface as sjoind_cluster_* on
// /metrics.
//
// Endpoints:
//
//	POST   /v1/datasets?name=r           upload "x y [payload]" lines
//	POST   /v1/datasets?name=r&generate=gaussian&n=200000&seed=1
//	GET    /v1/datasets                  list datasets
//	DELETE /v1/datasets/{name}           drop a dataset
//	POST   /v1/join                      {"r":..,"s":..,"eps":..,...}
//	POST   /v1/join/count                count-only fast path
//	POST   /v1/stream                    create a continuous join stream
//	GET    /v1/stream                    list streams
//	DELETE /v1/stream/{name}             tear a stream down
//	POST   /v1/stream/ingest?name=N      apply NDJSON point mutations
//	GET    /v1/stream/subscribe?name=N   chunked NDJSON result deltas
//	POST   /v1/admin/checkpoint          write a durable checkpoint now
//	GET    /v1/planner/history           persisted per-(R,S,eps) skew reports
//	GET    /v1/telemetry/series          multi-resolution rollup series
//	GET    /v1/telemetry/slo             per-tenant SLO status (p50/p99, burn)
//	GET    /v1/telemetry/events          bounded anomaly event log
//	GET    /healthz                      200 ok / 503 draining
//	GET    /metrics                      Prometheus text format
//	GET    /debug/vars                   JSON metrics mirror
//
// With -pprof ADDR a second listener serves net/http/pprof on ADDR
// (/debug/pprof/...). It is a separate socket so profiling stays off the
// service port and can be firewalled independently; it never delays
// shutdown.
//
// On SIGTERM/SIGINT the daemon stops accepting work (healthz turns 503
// so load balancers take it out of rotation), drains in-flight requests
// for up to -drain-grace, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spatialjoin/internal/cluster"
	"spatialjoin/internal/fleet"
	"spatialjoin/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxConc    = flag.Int("max-concurrent", 0, "concurrent join executions (default GOMAXPROCS)")
		maxQueue   = flag.Int("max-queue", 64, "admission queue depth before 429s")
		planCache  = flag.Int("plan-cache", 32, "prepared plans kept in the LRU cache")
		timeout    = flag.Duration("timeout", 30*time.Second, "default per-request timeout")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "shutdown drain deadline")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060; off when empty)")

		dataDir   = flag.String("data-dir", "", "durable store directory; empty runs fully in-memory")
		fsync     = flag.Bool("fsync", false, "fsync the record log after every append (requires -data-dir)")
		ckptEvery = flag.Duration("checkpoint-every", 0, "periodic checkpoint interval; 0 checkpoints only on demand (requires -data-dir)")

		clusterListen  = flag.String("cluster-listen", "", "accept sjoin-worker connections on this address and run joins on them")
		clusterWorkers = flag.Int("cluster-workers", 0, "workers to wait for before serving (requires -cluster-listen)")
		clusterWait    = flag.Duration("cluster-wait", time.Minute, "how long to wait for -cluster-workers connections")
		logLevel       = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")

		traceRing    = flag.Int("trace-ring", 0, "retained join traces for /v1/joins/{id}/trace (default 64)")
		telemSample  = flag.Duration("telem-sample", time.Second, "service gauge sampling interval for /v1/telemetry/series; 0 disables the sampler")
		telemFlush   = flag.Duration("telem-flush", 0, "telemetry snapshot flush interval (default 2s; requires -data-dir)")
		stragglerThr = flag.Float64("straggler-threshold", 0, "straggler ratio that raises a straggler_spike event (default 4)")
		sloObjective = flag.Float64("slo-objective", 0, "per-tenant join success objective for burn-rate math (default 0.995)")
	)
	var tenantQuota fleet.Quota
	flag.Func("tenant-quota", "default per-tenant join budget as RATE:BURST (e.g. 5:10); empty disables tenant admission", func(s string) error {
		q, err := fleet.ParseQuota(s)
		if err != nil {
			return err
		}
		tenantQuota = q
		return nil
	})
	tenantOverrides := map[string]fleet.Quota{}
	flag.Func("tenant-override", "per-tenant budget as TENANT=RATE:BURST; may repeat", func(s string) error {
		tenant, spec, ok := strings.Cut(s, "=")
		if !ok || tenant == "" {
			return fmt.Errorf("want TENANT=RATE:BURST, got %q", s)
		}
		q, err := fleet.ParseQuota(spec)
		if err != nil {
			return err
		}
		tenantOverrides[tenant] = q
		return nil
	})
	flag.Parse()

	var level slog.LevelVar
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("sjoind: bad -log-level", "value", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &level}))

	cfg := service.Config{
		MaxConcurrent:      *maxConc,
		MaxQueue:           *maxQueue,
		PlanCacheSize:      *planCache,
		DefaultTimeout:     *timeout,
		DataDir:            *dataDir,
		Fsync:              *fsync,
		CheckpointEvery:    *ckptEvery,
		TenantQuota:        tenantQuota,
		TenantOverrides:    tenantOverrides,
		TraceRing:          *traceRing,
		TelemSampleEvery:   *telemSample,
		TelemFlushEvery:    *telemFlush,
		StragglerThreshold: *stragglerThr,
		SLOObjective:       *sloObjective,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	}
	if (*fsync || *ckptEvery > 0) && *dataDir == "" {
		logger.Error("-fsync and -checkpoint-every require -data-dir")
		os.Exit(1)
	}
	if flagWasSet("trace-ring") && *traceRing < 1 {
		logger.Error("-trace-ring must be at least 1")
		os.Exit(1)
	}
	if *clusterWorkers > 0 && *clusterListen == "" {
		logger.Error("-cluster-workers requires -cluster-listen")
		os.Exit(1)
	}
	if *pprofAddr != "" {
		// A dedicated mux (not http.DefaultServeMux) so the profiling
		// listener exposes exactly the pprof routes and nothing else.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			logger.Error("pprof listen failed", "addr", *pprofAddr, "err", err)
			os.Exit(1)
		}
		fmt.Printf("sjoind pprof listening on %s\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, mux); err != nil {
				logger.Warn("pprof server stopped", "err", err)
			}
		}()
	}
	if *clusterListen != "" {
		coord, err := cluster.Listen(*clusterListen, cluster.Config{Log: logger})
		if err != nil {
			logger.Error("cluster listen failed", "addr", *clusterListen, "err", err)
			os.Exit(1)
		}
		defer coord.Close()
		fmt.Printf("sjoind cluster listening on %s\n", coord.Addr())
		if *clusterWorkers > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), *clusterWait)
			err := coord.WaitForWorkers(ctx, *clusterWorkers)
			cancel()
			if err != nil {
				logger.Error("waiting for cluster workers failed", "err", err)
				os.Exit(1)
			}
			logger.Info("cluster workers connected", "workers", coord.NumWorkers())
		}
		cfg.Engine = coord.Engine()
	}
	svc, err := service.Open(cfg)
	if err != nil {
		logger.Error("opening durable store failed", "dir", *dataDir, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: svc.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// The chosen port is printed first so scripts (and the integration
	// test) can bind ":0" and discover where the daemon landed.
	fmt.Printf("sjoind listening on %s\n", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		logger.Info("signal received, draining", "signal", sig.String(), "grace", drainGrace.String())
		svc.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("drained cleanly")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	}
	// Final checkpoint + store close, so the next start replays nothing.
	if err := svc.Close(); err != nil {
		logger.Error("closing durable store failed", "err", err)
		os.Exit(1)
	}
}

// flagWasSet reports whether the named flag appeared on the command
// line — distinguishing an explicit bad value from the zero default.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
