// Command experiments regenerates the paper's evaluation tables and
// figures as text tables.
//
// Usage:
//
//	experiments -list
//	experiments -exp fig10            # one artefact
//	experiments -all                  # the whole evaluation section
//	experiments -all -quick           # fast smoke-scale pass
//	experiments -exp fig13 -n 400000 -workers 12
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured outcomes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spatialjoin/internal/asciichart"
	"spatialjoin/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		expID   = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "quick scale (25k points) instead of full (200k)")
		n       = flag.Int("n", 0, "override base cardinality per data set")
		workers = flag.Int("workers", 0, "override simulated cluster size")
		parts   = flag.Int("partitions", 0, "override reduce partition count")
		seed    = flag.Int64("seed", 0, "sampling seed")
		chart   = flag.Bool("chart", false, "render each table as an ASCII line chart too")
		logY    = flag.Bool("log", false, "log-scale chart y axis (with -chart)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.FullRegistry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	if *n > 0 {
		sc.N = *n
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	if *parts > 0 {
		sc.Partitions = *parts
	}
	sc.Seed = *seed

	switch {
	case *all:
		for _, e := range experiments.FullRegistry() {
			runOne(e, sc, *chart, *logY)
		}
	case *expID != "":
		e, ok := experiments.Find(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		runOne(e, sc, *chart, *logY)
	default:
		fmt.Fprintln(os.Stderr, "experiments: one of -list, -exp <id>, or -all is required")
		os.Exit(2)
	}
}

func runOne(e experiments.Experiment, sc experiments.Scale, chart, logY bool) {
	fmt.Printf("### %s — %s (N=%d, workers=%d)\n", e.ID, e.Description, sc.N, sc.Workers)
	start := time.Now()
	for _, t := range e.Run(sc) {
		fmt.Println(t)
		if chart {
			if out := renderChart(t, logY); out != "" {
				fmt.Println(out)
			}
		}
	}
	fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
}

// renderChart converts a table into an ASCII line chart: leading
// non-numeric cells of each row become the series name, the remaining
// columns the x axis. Tables without numeric cells render nothing.
func renderChart(t *experiments.Table, logY bool) string {
	if len(t.Rows) == 0 {
		return ""
	}
	// Leading label columns: the longest prefix of the first row whose
	// cells do not parse as numbers.
	labels := 0
	for _, cell := range t.Rows[0] {
		if _, ok := asciichart.ParseCell(cell); ok {
			break
		}
		labels++
	}
	if labels == 0 || labels >= len(t.Columns) {
		return ""
	}
	var series []asciichart.Series
	for _, row := range t.Rows {
		s := asciichart.Series{Name: strings.Join(row[:labels], " ")}
		numeric := false
		for _, cell := range row[labels:] {
			v, ok := asciichart.ParseCell(cell)
			if !ok {
				v = 0
			} else {
				numeric = true
			}
			s.Values = append(s.Values, v)
		}
		if numeric {
			series = append(series, s)
		}
	}
	if len(series) == 0 {
		return ""
	}
	return asciichart.Render(t.Title, t.Columns[labels:], series, asciichart.Options{Log: logY})
}
