package spatialjoin

import (
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/extjoin"
)

// Object is a spatial object with extent: a point, polyline or simple
// polygon. Build instances with NewPointObject, NewPolyline and
// NewPolygon.
type Object = extgeom.Object

// NewPointObject builds a degenerate single-point object.
func NewPointObject(id int64, p Point) Object { return extgeom.NewPoint(id, p) }

// NewPolyline builds an open-chain object from its vertices (>= 2).
func NewPolyline(id int64, verts []Point) Object { return extgeom.NewPolyline(id, verts) }

// NewPolygon builds a simple-polygon object from its ring (>= 3 vertices;
// the last vertex connects back to the first implicitly). The polygon's
// interior counts as part of the object for distance purposes.
func NewPolygon(id int64, ring []Point) Object { return extgeom.NewPolygon(id, ring) }

// ObjectDist returns the exact distance between two objects: zero when
// they intersect or one contains the other.
func ObjectDist(a, b *Object) float64 { return extgeom.Dist(a, b) }

// ObjectReport is the outcome of an extended-object join.
type ObjectReport struct {
	*Report
	// EffectiveEps is the inflated centre-distance threshold
	// ε + 2·maxHalfDiag the grid was built for.
	EffectiveEps float64
	// MaxHalfDiag is the largest MBR half-diagonal across both inputs.
	MaxHalfDiag float64
}

// JoinObjects computes every pair of objects within Eps of each other —
// the paper's future-work extension to polylines and polygons. The
// adaptive algorithms assign objects by their MBR centres at the inflated
// threshold EffectiveEps and refine candidates with exact geometry
// distances, which preserves both correctness and the duplicate-free
// property (see internal/extjoin for the argument). Only the adaptive and
// PBSM-universal strategies apply; other Options.Algorithm values are
// mapped to their closest extended counterpart.
func JoinObjects(rs, ss []Object, opt Options) (*ObjectReport, error) {
	cfg := extjoin.Config{
		Eps:            opt.Eps,
		SampleFraction: opt.SampleFraction,
		Seed:           opt.Seed,
		Workers:        opt.Workers,
		Partitions:     opt.Partitions,
		Collect:        opt.Collect,
		Bounds:         opt.Bounds,
		NetBandwidth:   opt.NetBandwidth,
	}
	switch opt.Algorithm {
	case AdaptiveLPiB, AdaptiveSimpleDedup, SedonaLike:
		cfg.Strategy = extjoin.Adaptive
		cfg.Policy = agreements.LPiB
	case AdaptiveDIFF:
		cfg.Strategy = extjoin.Adaptive
		cfg.Policy = agreements.DIFF
	case PBSMUniR, PBSMEpsGrid:
		cfg.Strategy = extjoin.UniversalR
	case PBSMUniS:
		cfg.Strategy = extjoin.UniversalS
	}
	res, err := extjoin.Join(rs, ss, cfg)
	if err != nil {
		return nil, err
	}
	return &ObjectReport{
		Report:       report(opt.Algorithm, res.Metrics, res.Pairs),
		EffectiveEps: res.EffectiveEps,
		MaxHalfDiag:  res.MaxHalfDiag,
	}, nil
}
