package spatialjoin

import (
	"fmt"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/core"
	"spatialjoin/internal/pbsm"
	"spatialjoin/internal/sedonasim"
)

// SelfJoin computes the ε-distance self-join of one point set: every
// unordered pair {a, b}, a ≠ b, with d(a, b) ≤ Eps, reported once with
// RID < SID. Self-joins are the workload of distance-based similarity
// analysis (the MR-DSJ setting of the paper's related work); any
// algorithm except the dedup ablation can execute one.
func SelfJoin(ts []Tuple, opt Options) (*Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	switch opt.Algorithm {
	case AdaptiveLPiB, AdaptiveDIFF:
		policy := agreements.LPiB
		if opt.Algorithm == AdaptiveDIFF {
			policy = agreements.DIFF
		}
		res, err := core.Join(ts, ts, core.Config{
			Eps:            opt.Eps,
			Res:            opt.GridRes,
			Policy:         policy,
			SampleFraction: opt.SampleFraction,
			Seed:           opt.Seed,
			Workers:        opt.Workers,
			Partitions:     opt.Partitions,
			UseLPT:         opt.UseLPT,
			Collect:        opt.Collect,
			Bounds:         opt.Bounds,
			NetBandwidth:   opt.NetBandwidth,
			PoolSize:       opt.PoolSize,
			Engine:         opt.Engine,
			SelfFilter:     true,
		})
		if err != nil {
			return nil, err
		}
		return report(opt.Algorithm, res.Metrics, res.Pairs), nil

	case PBSMUniR, PBSMUniS, PBSMEpsGrid, PBSMClone:
		variant := map[Algorithm]pbsm.Variant{
			PBSMUniR: pbsm.UniR, PBSMUniS: pbsm.UniS,
			PBSMEpsGrid: pbsm.EpsGrid, PBSMClone: pbsm.Clone,
		}[opt.Algorithm]
		res, err := pbsm.Join(ts, ts, pbsm.Config{
			Eps:          opt.Eps,
			Variant:      variant,
			Workers:      opt.Workers,
			Partitions:   opt.Partitions,
			Collect:      opt.Collect,
			Bounds:       opt.Bounds,
			NetBandwidth: opt.NetBandwidth,
			PoolSize:     opt.PoolSize,
			Engine:       opt.Engine,
			SelfFilter:   true,
		})
		if err != nil {
			return nil, err
		}
		return report(opt.Algorithm, res.Metrics, res.Pairs), nil

	case SedonaLike:
		res, err := sedonasim.Join(ts, ts, sedonasim.Config{
			Eps:            opt.Eps,
			Workers:        opt.Workers,
			Partitions:     opt.Partitions,
			SampleFraction: opt.SampleFraction,
			Seed:           opt.Seed,
			Collect:        opt.Collect,
			Bounds:         opt.Bounds,
			NetBandwidth:   opt.NetBandwidth,
			SelfFilter:     true,
		})
		if err != nil {
			return nil, err
		}
		return report(opt.Algorithm, res.Metrics, res.Pairs), nil

	default:
		return nil, fmt.Errorf("spatialjoin: algorithm %v does not support self-joins", opt.Algorithm)
	}
}
