package spatialjoin

import (
	"context"
	"errors"
	"fmt"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/core"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/pbsm"
	"spatialjoin/internal/planner"
)

// ErrNotPreparable reports an algorithm whose execution cannot be split
// into a reusable plan plus cheap probes (currently only SedonaLike,
// whose quadtree partitions are rebuilt per run).
var ErrNotPreparable = errors.New("spatialjoin: algorithm does not support prepared plans")

// ExecOptions configures one execution of a PreparedJoin.
type ExecOptions struct {
	// Eps optionally re-sweeps the plan with a smaller threshold. The
	// plan's replication co-locates every pair within its ε in exactly
	// one common cell, so any ε' in (0, plan ε] remains correct and
	// duplicate-free. Zero means the plan's own ε.
	Eps float64
	// Collect materialises the result pairs in Report.Pairs.
	Collect bool
	// Trace records this execution's spans (tasks, supplementary join,
	// dedup) under TraceParent. A prepared plan serving many probes gets
	// a per-probe tracer here; nil falls back to the tracer the plan was
	// built with, so one-shot joins yield a single tree.
	Trace       *Tracer
	TraceParent SpanID
}

// PreparedJoin is a reusable execution plan for an ε-distance join: the
// sampled statistics, grid, resolved graph of agreements (adaptive
// algorithms), cell placement, and the already-replicated,
// partition-bucketed tuples of both inputs. Construction is paid once by
// Prepare; Execute then runs only the partition-level joins and is safe
// to call repeatedly and concurrently — the shape a long-running join
// service caches and serves probes from.
type PreparedJoin struct {
	algorithm Algorithm
	collect   bool
	adaptive  *core.Plan
	universal *pbsm.Plan
}

// Prepare builds a reusable plan for the join R ⋈ε S. The AutoPlanned
// algorithm is resolved to a concrete strategy at prepare time; the
// SedonaLike baseline returns ErrNotPreparable.
func Prepare(rs, ss []Tuple, opt Options) (*PreparedJoin, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	switch opt.Algorithm {
	case AutoPlanned:
		resolved, err := resolveAuto(rs, ss, opt)
		if err != nil {
			return nil, err
		}
		opt.Algorithm = resolved
		return Prepare(rs, ss, opt)

	case AdaptiveLPiB, AdaptiveDIFF, AdaptiveSimpleDedup:
		policy := agreements.LPiB
		if opt.Algorithm == AdaptiveDIFF {
			policy = agreements.DIFF
		}
		plan, err := core.BuildPlan(rs, ss, core.Config{
			Eps:            opt.Eps,
			Res:            opt.GridRes,
			Policy:         policy,
			SampleFraction: opt.SampleFraction,
			Seed:           opt.Seed,
			Workers:        opt.Workers,
			Partitions:     opt.Partitions,
			UseLPT:         opt.UseLPT,
			Simple:         opt.Algorithm == AdaptiveSimpleDedup,
			Collect:        opt.Collect,
			Bounds:         opt.Bounds,
			NetBandwidth:   opt.NetBandwidth,
			PoolSize:       opt.PoolSize,
			Engine:         opt.Engine,
			SampleR:        opt.PresampledR,
			SampleS:        opt.PresampledS,
			Tracer:         opt.Trace,
			TraceParent:    opt.TraceParent,
		})
		if err != nil {
			return nil, err
		}
		return &PreparedJoin{algorithm: opt.Algorithm, collect: opt.Collect, adaptive: plan}, nil

	case PBSMUniR, PBSMUniS, PBSMEpsGrid, PBSMClone:
		variant := map[Algorithm]pbsm.Variant{
			PBSMUniR: pbsm.UniR, PBSMUniS: pbsm.UniS,
			PBSMEpsGrid: pbsm.EpsGrid, PBSMClone: pbsm.Clone,
		}[opt.Algorithm]
		plan, err := pbsm.BuildPlan(rs, ss, pbsm.Config{
			Eps:          opt.Eps,
			Variant:      variant,
			Workers:      opt.Workers,
			Partitions:   opt.Partitions,
			Collect:      opt.Collect,
			Bounds:       opt.Bounds,
			NetBandwidth: opt.NetBandwidth,
			PoolSize:     opt.PoolSize,
			Engine:       opt.Engine,
			Tracer:       opt.Trace,
			TraceParent:  opt.TraceParent,
		})
		if err != nil {
			return nil, err
		}
		return &PreparedJoin{algorithm: opt.Algorithm, collect: opt.Collect, universal: plan}, nil

	case SedonaLike:
		return nil, fmt.Errorf("%w: %v", ErrNotPreparable, opt.Algorithm)

	default:
		return nil, fmt.Errorf("spatialjoin: unknown algorithm %v", opt.Algorithm)
	}
}

// Algorithm returns the concrete strategy of the plan (AutoPlanned is
// resolved at prepare time).
func (p *PreparedJoin) Algorithm() Algorithm { return p.algorithm }

// Eps returns the distance threshold the plan was prepared for — the
// upper bound on ExecOptions.Eps.
func (p *PreparedJoin) Eps() float64 {
	if p.adaptive != nil {
		return p.adaptive.Eps()
	}
	return p.universal.Eps()
}

// FootprintBytes returns the wire size of the partition-bucketed tuples
// the plan retains — what a plan cache should account for.
func (p *PreparedJoin) FootprintBytes() int64 {
	if p.adaptive != nil {
		return p.adaptive.FootprintBytes()
	}
	return p.universal.FootprintBytes()
}

// Replicated returns the replicated objects the plan serves per Execute.
func (p *PreparedJoin) Replicated() int64 {
	if p.adaptive != nil {
		return p.adaptive.Replicated()
	}
	return p.universal.Replicated()
}

// Execute runs the partition-level joins of the plan and reports the
// outcome. Construction metrics (sampling, build, map, shuffle) are
// carried into every Report; only the join phase is re-run.
func (p *PreparedJoin) Execute(e ExecOptions) (*Report, error) {
	return p.ExecuteContext(context.Background(), e)
}

// ExecuteContext is Execute with cancellation: when ctx expires the
// engine abandons unstarted partitions and returns ctx's error — the hook
// a serving layer uses to make request deadlines cancel in-flight joins.
func (p *PreparedJoin) ExecuteContext(ctx context.Context, e ExecOptions) (*Report, error) {
	if p.adaptive != nil {
		res, err := p.adaptive.Execute(core.Exec{
			Eps: e.Eps, Collect: e.Collect, Ctx: ctx,
			Tracer: e.Trace, TraceParent: e.TraceParent,
		})
		if err != nil {
			return nil, err
		}
		return report(p.algorithm, res.Metrics, res.Pairs), nil
	}
	res, err := p.universal.Execute(core.Exec{
		Eps: e.Eps, Collect: e.Collect, Ctx: ctx,
		Tracer: e.Trace, TraceParent: e.TraceParent,
	})
	if err != nil {
		return nil, err
	}
	return report(p.algorithm, res.Metrics, res.Pairs), nil
}

// resolveAuto runs the cost-model planner on sampled statistics and
// returns the concrete strategy AutoPlanned selects.
func resolveAuto(rs, ss []Tuple, opt Options) (Algorithm, error) {
	res := opt.GridRes
	if res == 0 {
		res = 2
	}
	bounds := core.DataBounds(opt.Bounds, rs, ss)
	g := grid.New(bounds, opt.Eps, res)
	tupleBytes := 24
	if len(rs) > 0 {
		tupleBytes = rs[0].SerializedSize()
	}
	choice, err := planner.Plan(g, rs, ss, opt.SampleFraction, opt.Seed, tupleBytes, planner.MinShuffle)
	if err != nil {
		return 0, err
	}
	switch choice.Strategy {
	case planner.UniversalR:
		return PBSMUniR, nil
	case planner.UniversalS:
		return PBSMUniS, nil
	default:
		return AdaptiveLPiB, nil
	}
}
