// Package spatialjoin is a parallel ε-distance spatial join library with
// adaptive replication, reproducing "Parallel Spatial Join Processing with
// Adaptive Replication" (Koutroumanis, Doulkeridis, Vlachou — EDBT 2025).
//
// Given two point sets R and S and a distance threshold ε, Join reports
// every pair (r, s) with d(r, s) ≤ ε. The library partitions space with a
// grid and replicates boundary points so partitions join independently in
// parallel. Its contribution over classic PBSM is adaptive replication:
// every pair of adjacent cells locally agrees on which data set crosses
// their border, minimising replication on skewed data while a graph-based
// marking/locking scheme keeps the result correct and duplicate-free.
//
// Six algorithms share one interface: the adaptive join with the LPiB or
// DIFF agreement policy, three PBSM baselines (UNI(R), UNI(S), ε-grid),
// and a Sedona-style quadtree + R-tree join. All run on an in-process
// data-parallel engine that reports the replication, shuffle-byte and
// timing metrics of the paper's evaluation.
//
// Quickstart:
//
//	r := spatialjoin.GenerateTigerLike(200_000, 1)
//	s := spatialjoin.GenerateGaussian(200_000, 2)
//	rep, err := spatialjoin.Join(r, s, spatialjoin.Options{
//		Eps:       0.5,
//		Algorithm: spatialjoin.AdaptiveLPiB,
//	})
package spatialjoin

import (
	"context"
	"fmt"
	"time"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/knnjoin"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/sample"
	"spatialjoin/internal/sedonasim"
	"spatialjoin/internal/textio"
	"spatialjoin/internal/tuple"
)

// Point is a location in the plane.
type Point = geom.Point

// Rect is a closed axis-aligned rectangle.
type Rect = geom.Rect

// Tuple is one input record: an identified point with optional payload.
type Tuple = tuple.Tuple

// Pair is one join result, the identifiers of matched (r, s) tuples.
type Pair = tuple.Pair

// Engine is a pluggable execution backend for the partition-level joins:
// nil (the default) runs them on the in-process engine of simulated
// workers, while a cluster coordinator's Engine ships them to remote
// worker processes over TCP.
type Engine = dpe.Engine

// ClusterMetrics are the measured-on-the-wire counters of a distributed
// engine run (all zero under the in-process engine).
type ClusterMetrics = dpe.ClusterMetrics

// Tracer records a span tree for a join — phase spans, per-partition
// task spans with worker attribution, and typed attributes. Create one
// with NewTracer, attach it via Options.Trace (or ExecOptions.Trace for
// prepared-plan probes), then export with WriteChromeTrace, Tree, or
// Skew. A nil tracer disables tracing at zero cost.
type Tracer = obs.Tracer

// SpanID identifies one span within a trace.
type SpanID = obs.SpanID

// SkewReport is the derived skew diagnostics of a traced join.
type SkewReport = obs.SkewReport

// TraceNode is one span of the exported JSON span tree.
type TraceNode = obs.Node

// NewTracer returns a tracer with a fresh trace id.
func NewTracer() *Tracer { return obs.New() }

// Algorithm selects the join strategy.
type Algorithm uint8

const (
	// AdaptiveLPiB is the paper's algorithm with the "least points in
	// boundaries" agreement policy (the default).
	AdaptiveLPiB Algorithm = iota
	// AdaptiveDIFF is the paper's algorithm with the "greatest count
	// difference" agreement policy.
	AdaptiveDIFF
	// PBSMUniR is PBSM replicating the whole R input on a 2ε grid.
	PBSMUniR
	// PBSMUniS is PBSM replicating the whole S input on a 2ε grid.
	PBSMUniS
	// PBSMEpsGrid is PBSM on an ε×ε grid replicating the smaller input.
	PBSMEpsGrid
	// SedonaLike joins with quadtree partitioning and per-partition
	// R-tree indexes, mirroring Apache Sedona's distance join.
	SedonaLike
	// AdaptiveSimpleDedup is the ablation variant: agreement-based
	// replication without the duplicate-free machinery, followed by a
	// parallel distinct() pass.
	AdaptiveSimpleDedup
	// PBSMClone is Patel & DeWitt's clone join: both inputs replicated on
	// a 2ε grid, duplicates avoided with the reference-point technique (a
	// pair is reported only by the cell containing its midpoint).
	PBSMClone
	// AutoPlanned lets the cost-model planner choose between adaptive
	// replication and the two universal choices from sampled statistics,
	// minimising predicted shuffle volume. Report.Algorithm holds the
	// strategy it selected.
	AutoPlanned
)

// String names the algorithm as in the paper's charts.
func (a Algorithm) String() string {
	switch a {
	case AdaptiveLPiB:
		return "LPiB"
	case AdaptiveDIFF:
		return "DIFF"
	case PBSMUniR:
		return "UNI(R)"
	case PBSMUniS:
		return "UNI(S)"
	case PBSMEpsGrid:
		return "eps-grid"
	case SedonaLike:
		return "Sedona"
	case AdaptiveSimpleDedup:
		return "LPiB+dedup"
	case PBSMClone:
		return "clone+refpoint"
	case AutoPlanned:
		return "auto"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Options configures a join. Only Eps is required.
type Options struct {
	// Eps is the join distance threshold (required, > 0).
	Eps float64
	// Algorithm selects the strategy; AdaptiveLPiB by default.
	Algorithm Algorithm
	// Workers is the simulated cluster size; GOMAXPROCS when 0.
	Workers int
	// Partitions is the number of reduce partitions; 8×workers when 0.
	Partitions int
	// SampleFraction is the sampling rate for statistics and partitioner
	// construction; the paper's 3% when 0.
	SampleFraction float64
	// Seed makes sampling deterministic.
	Seed int64
	// UseLPT enables the LPT cell placement (adaptive algorithms only).
	UseLPT bool
	// GridRes overrides the grid resolution multiplier (cell side =
	// GridRes·ε); the algorithm default when 0. Must be >= 2 for the
	// adaptive algorithms.
	GridRes float64
	// Collect materialises the result pairs in Report.Pairs; otherwise
	// only the count and checksum are returned.
	Collect bool
	// Bounds fixes the data-space MBR; computed from the inputs when nil.
	Bounds *Rect
	// NetBandwidth simulates the cluster interconnect: remote shuffle
	// reads are charged at this many bytes per second per worker link in
	// SimulatedTime. Zero disables network simulation.
	NetBandwidth float64
	// PresampledR and PresampledS optionally supply pre-drawn Bernoulli
	// samples of the inputs — as produced by Sample with (SampleFraction,
	// Seed) and (SampleFraction, Seed+1) respectively — letting a serving
	// layer reuse cached samples across repeated plan constructions (e.g.
	// ε re-sweeps). When nil, samples are drawn from the inputs.
	PresampledR, PresampledS []Tuple
	// PoolSize caps the OS-level goroutine pool that runs the simulated
	// workers; GOMAXPROCS when 0. Unlike Workers it changes only real
	// parallelism, not the modelled cluster size.
	PoolSize int
	// Engine selects the execution backend for the partition-level joins;
	// nil runs them in-process. SedonaLike does not support remote
	// engines (its R-tree kernel has no wire description).
	Engine Engine
	// Trace, when non-nil, records the join's span tree (phases, tasks,
	// worker attribution) into the tracer. TraceParent optionally parents
	// the spans under an existing span of the same tracer; Join/Prepare
	// create their own root span when it is zero.
	Trace       *Tracer
	TraceParent SpanID
}

// Validate checks the options for values that would cause downstream
// panics or silent misbehaviour, returning a descriptive error.
func (o Options) Validate() error {
	if o.Eps <= 0 {
		return fmt.Errorf("spatialjoin: Options.Eps must be positive, got %v", o.Eps)
	}
	if o.Workers < 0 {
		return fmt.Errorf("spatialjoin: Options.Workers must not be negative, got %d (use 0 for the GOMAXPROCS default)", o.Workers)
	}
	if o.Partitions < 0 {
		return fmt.Errorf("spatialjoin: Options.Partitions must not be negative, got %d (use 0 for the 8×workers default)", o.Partitions)
	}
	if o.SampleFraction < 0 || o.SampleFraction > 1 {
		return fmt.Errorf("spatialjoin: Options.SampleFraction must be in [0, 1], got %v (0 selects the paper's 3%%)", o.SampleFraction)
	}
	if o.GridRes < 0 {
		return fmt.Errorf("spatialjoin: Options.GridRes must not be negative, got %v", o.GridRes)
	}
	if o.PoolSize < 0 {
		return fmt.Errorf("spatialjoin: Options.PoolSize must not be negative, got %d (use 0 for the GOMAXPROCS default)", o.PoolSize)
	}
	if o.Engine != nil && o.Algorithm == SedonaLike {
		return fmt.Errorf("spatialjoin: %v cannot run on a remote engine: its R-tree kernel has no wire description", o.Algorithm)
	}
	switch o.Algorithm {
	case AdaptiveLPiB, AdaptiveDIFF, AdaptiveSimpleDedup, AutoPlanned:
		if o.GridRes > 0 && o.GridRes < 2 {
			return fmt.Errorf("spatialjoin: Options.GridRes %v violates the l ≥ 2ε requirement of adaptive replication (use 0 for the default, or a value ≥ 2)", o.GridRes)
		}
	case PBSMUniR, PBSMUniS, PBSMEpsGrid, PBSMClone, SedonaLike:
		// Any positive resolution is structurally fine for the baselines.
	default:
		return fmt.Errorf("spatialjoin: unknown algorithm %v", o.Algorithm)
	}
	if o.Bounds != nil && (o.Bounds.MaxX <= o.Bounds.MinX || o.Bounds.MaxY <= o.Bounds.MinY) {
		return fmt.Errorf("spatialjoin: Options.Bounds %+v has a non-positive extent", *o.Bounds)
	}
	return nil
}

// Report is the unified outcome of any algorithm.
type Report struct {
	Algorithm Algorithm
	// Results is the number of (r, s) pairs within Eps; Checksum is an
	// order-independent hash of their identifiers.
	Results  int64
	Checksum uint64
	// Pairs holds the materialised results when Options.Collect was set.
	Pairs []Pair
	// Replication and shuffle metrics (the paper's chart quantities).
	ReplicatedR, ReplicatedS int64
	ShuffledBytes            int64
	ShuffleRemoteBytes       int64
	// BroadcastBytes is the wire size of driver-built structures (grid +
	// graph of agreements) shipped to every worker before the join.
	BroadcastBytes int64
	// Phase timings. Construction covers sampling, structure building,
	// mapping and shuffling; Join covers the partition-level joins.
	SampleTime, BuildTime, MapTime, ShuffleTime time.Duration
	NetTime                                     time.Duration
	JoinTime, DedupTime                         time.Duration
	// MaxPartitionCost is the largest per-partition Σ|R_c|·|S_c|, a load
	// balance indicator; CandidatePairs is the total Σ|R_c|·|S_c| across
	// cells, the deterministic join-work metric.
	MaxPartitionCost int64
	CandidatePairs   int64
	// MapBusyMax and JoinBusyMax are the busiest worker's CPU time in the
	// map and join phases — the parallel-phase makespans of the simulated
	// cluster.
	MapBusyMax, JoinBusyMax time.Duration
	// SimulatedTime is the critical-path time of the simulated cluster:
	// sequential driver phases plus the busiest worker of each parallel
	// phase. Unlike TotalTime (wall clock), it reflects multi-node
	// scaling even when the host has fewer cores than simulated workers.
	SimulatedTime time.Duration
	// Cluster holds the measured wire counters when the join ran on a
	// distributed Engine (zero otherwise): real shuffle bytes split into
	// worker-local and remote reads, broadcast and result bytes, task
	// retries and speculative executions.
	Cluster ClusterMetrics
}

// SimulatedConstructionTime returns the pre-join part of SimulatedTime:
// sampling, structure building, the busiest map worker, and shuffling.
func (r *Report) SimulatedConstructionTime() time.Duration {
	return r.SampleTime + r.BuildTime + r.MapBusyMax + r.ShuffleTime + r.NetTime
}

// SimulatedJoinTime returns the join part of SimulatedTime: the busiest
// join worker plus the distinct() pass when one ran.
func (r *Report) SimulatedJoinTime() time.Duration {
	return r.JoinBusyMax + r.DedupTime
}

// Replicated returns the total replicated objects across both inputs.
func (r *Report) Replicated() int64 { return r.ReplicatedR + r.ReplicatedS }

// ConstructionTime returns sampling + building + mapping + shuffling.
func (r *Report) ConstructionTime() time.Duration {
	return r.SampleTime + r.BuildTime + r.MapTime + r.ShuffleTime
}

// TotalTime returns the end-to-end execution time.
func (r *Report) TotalTime() time.Duration {
	return r.ConstructionTime() + r.JoinTime + r.DedupTime
}

// Selectivity returns Results / (|R|·|S|) for the given input sizes, the
// quantity of the paper's Table 4.
func (r *Report) Selectivity(nr, ns int) float64 {
	if nr == 0 || ns == 0 {
		return 0
	}
	return float64(r.Results) / (float64(nr) * float64(ns))
}

// Join computes the ε-distance join R ⋈ε S with the selected algorithm.
// Every algorithm except SedonaLike runs as Prepare followed by a single
// Execute; callers that repeat a join should Prepare once themselves.
func Join(rs, ss []Tuple, opt Options) (*Report, error) {
	return JoinContext(context.Background(), rs, ss, opt)
}

// JoinContext is Join with cancellation: when ctx expires, the engine
// abandons unstarted partitions (a cluster engine additionally tells its
// workers to drop queued tasks) and ctx's error is returned. Plan
// construction itself is not interruptible — only the partition-level
// joins observe ctx.
func JoinContext(ctx context.Context, rs, ss []Tuple, opt Options) (*Report, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	switch opt.Algorithm {
	case SedonaLike:
		res, err := sedonasim.Join(rs, ss, sedonasim.Config{
			Eps:            opt.Eps,
			Workers:        opt.Workers,
			Partitions:     opt.Partitions,
			SampleFraction: opt.SampleFraction,
			Seed:           opt.Seed,
			Collect:        opt.Collect,
			Bounds:         opt.Bounds,
			NetBandwidth:   opt.NetBandwidth,
		})
		if err != nil {
			return nil, err
		}
		return report(opt.Algorithm, res.Metrics, res.Pairs), nil

	default:
		root := (*obs.Span)(nil)
		if opt.Trace != nil && opt.TraceParent == 0 {
			root = opt.Trace.Start(0, obs.SpanJoin)
			root.SetStr("algorithm", opt.Algorithm.String())
			opt.TraceParent = root.SpanID()
		}
		p, err := Prepare(rs, ss, opt)
		if err != nil {
			root.End()
			return nil, err
		}
		rep, err := p.ExecuteContext(ctx, ExecOptions{
			Collect:     opt.Collect,
			Trace:       opt.Trace,
			TraceParent: opt.TraceParent,
		})
		root.End()
		return rep, err
	}
}

// BruteForce computes the join by comparing all pairs — O(|R|·|S|), the
// correctness oracle for tests and tiny inputs.
func BruteForce(rs, ss []Tuple, eps float64) []Pair {
	var out []Pair
	eps2 := eps * eps
	for _, r := range rs {
		for _, s := range ss {
			if r.Pt.SqDist(s.Pt) <= eps2 {
				out = append(out, Pair{RID: r.ID, SID: s.ID})
			}
		}
	}
	return out
}

// Data set helpers ----------------------------------------------------

// World returns the default 100×100 data space of the bundled generators.
func World() Rect { return datagen.World() }

// GenerateUniform produces n uniform points with sequential ids from 0.
func GenerateUniform(n int, seed int64) []Tuple {
	return datagen.Uniform(datagen.World(), n, seed, 0)
}

// GenerateGaussian produces the paper's synthetic distribution: n points
// over 30 Gaussian clusters with σ in the paper's range.
func GenerateGaussian(n int, seed int64) []Tuple {
	return datagen.GaussianClusters(datagen.World(), n, 30, 0.1, 0.8, seed, 2_000_000_000)
}

// GenerateTigerLike produces a TIGER-Hydrography-like skewed set.
func GenerateTigerLike(n int, seed int64) []Tuple {
	return datagen.TigerLike(datagen.World(), n, seed, 0)
}

// GenerateOSMLike produces an OSM-Parks-like skewed set.
func GenerateOSMLike(n int, seed int64) []Tuple {
	return datagen.OSMLike(datagen.World(), n, seed, 1_000_000_000)
}

// WithPayloads attaches a payload of the given size to every tuple,
// modelling non-spatial attributes that must travel through shuffles.
func WithPayloads(ts []Tuple, bytes int) []Tuple {
	return tuple.WithPayloads(ts, bytes)
}

// FromPoints wraps raw points into tuples with sequential ids from base.
func FromPoints(pts []Point, base int64) []Tuple {
	return tuple.FromPoints(pts, base)
}

// ReadFile loads a data set from a text file ("x y [attributes...]" per
// line), assigning sequential ids from idBase.
func ReadFile(path string, idBase int64) ([]Tuple, error) {
	return textio.ReadFile(path, idBase)
}

// WriteFile saves a data set to a text file.
func WriteFile(path string, ts []Tuple) error {
	return textio.WriteFile(path, ts)
}

// report converts engine metrics into the public Report.
func report(a Algorithm, m dpe.Metrics, pairs []Pair) *Report {
	return &Report{
		Algorithm:          a,
		Results:            m.Results,
		Checksum:           m.Checksum,
		Pairs:              pairs,
		ReplicatedR:        m.ReplicatedR,
		ReplicatedS:        m.ReplicatedS,
		ShuffledBytes:      m.ShuffledBytes,
		ShuffleRemoteBytes: m.RemoteBytes,
		BroadcastBytes:     m.BroadcastBytes,
		SampleTime:         m.SampleTime,
		BuildTime:          m.BuildTime,
		MapTime:            m.MapTime,
		ShuffleTime:        m.ShuffleTime,
		JoinTime:           m.JoinTime,
		DedupTime:          m.DedupTime,
		NetTime:            m.NetTime,
		MaxPartitionCost:   m.MaxPartitionCost,
		CandidatePairs:     m.TotalPartitionCost,
		MapBusyMax:         maxDuration(m.MapBusy),
		JoinBusyMax:        maxDuration(m.WorkerBusy),
		SimulatedTime:      m.SimulatedTime(),
		Cluster:            m.Cluster,
	}
}

// maxDuration returns the largest element of ds (0 when empty).
func maxDuration(ds []time.Duration) time.Duration {
	var max time.Duration
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	return max
}

// Sample draws the Bernoulli sample the adaptive algorithms use for
// their statistics: fraction of ts (the paper's 3% when 0), seeded
// deterministically. Serving layers can cache its output and feed it
// back through Options.PresampledR / PresampledS.
func Sample(ts []Tuple, fraction float64, seed int64) []Tuple {
	if fraction == 0 {
		fraction = sample.DefaultFraction
	}
	return sample.Bernoulli(ts, fraction, seed)
}

// Neighbor is one kNN join result: SID is among the K nearest S points
// of RID, at distance Dist.
type Neighbor = knnjoin.Neighbor

// KNNReport is the outcome of a kNN join.
type KNNReport struct {
	// Neighbors holds, per R point in input order, its (up to) k nearest
	// S points sorted by ascending distance.
	Neighbors []Neighbor
	// Rounds is the number of radius-doubling rounds the slowest query
	// point needed; CandidatesScanned is the total distance evaluations.
	Rounds            int
	CandidatesScanned int64
}

// KNNJoin finds, for every point of rs, its k nearest neighbours in ss —
// the kNN join operator of the related distributed spatial analytics
// systems (Sedona, LocationSpark, Simba). Only Options.Workers and
// Options.Bounds apply.
func KNNJoin(rs, ss []Tuple, k int, opt Options) (*KNNReport, error) {
	res, err := knnjoin.Join(rs, ss, knnjoin.Config{
		K:       k,
		Workers: opt.Workers,
		Bounds:  opt.Bounds,
	})
	if err != nil {
		return nil, err
	}
	return &KNNReport{
		Neighbors:         res.Neighbors,
		Rounds:            res.Rounds,
		CandidatesScanned: res.CandidatesScanned,
	}, nil
}
