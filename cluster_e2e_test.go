package spatialjoin_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"os/exec"
	"sort"
	"testing"
	"time"

	"spatialjoin"
	"spatialjoin/internal/cluster"
	"spatialjoin/internal/experiments"
)

// e2eLogger routes coordinator slog output into the test log.
func e2eLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(e2eLogWriter{t}, nil))
}

type e2eLogWriter struct{ t *testing.T }

func (w e2eLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// buildWorker compiles cmd/sjoin-worker into a temp dir.
func buildWorker(t *testing.T) string {
	t.Helper()
	bin := t.TempDir() + "/sjoin-worker"
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/sjoin-worker")
	if msg, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sjoin-worker: %v\n%s", err, msg)
	}
	return bin
}

// startWorkerProc launches one sjoin-worker process against the
// coordinator and returns it; cleanup kills it if still running.
func startWorkerProc(t *testing.T, bin string, coord *cluster.Coordinator, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-connect", coord.Addr().String()}, args...)...)
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		cmd.Wait()
	})
	return cmd
}

func sortedPairs(ps []spatialjoin.Pair) []spatialjoin.Pair {
	out := append([]spatialjoin.Pair(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RID != out[j].RID {
			return out[i].RID < out[j].RID
		}
		return out[i].SID < out[j].SID
	})
	return out
}

func assertSamePairs(t *testing.T, label string, got, want []spatialjoin.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d is %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestClusterTraceStitchE2E runs a traced join against two real worker
// processes and checks the acceptance criteria of the tracing PR: the
// coordinator holds one connected span tree whose task spans carry the
// names of both remote processes, the skew report is populated
// (including replication bytes by agreement), and the Chrome trace
// export is valid trace-event JSON. When CLUSTER_TRACE_OUT is set the
// exported trace is also written there (CI uploads it as an artifact).
func TestClusterTraceStitchE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns worker processes")
	}
	bin := buildWorker(t)

	coord, err := cluster.Listen("127.0.0.1:0", cluster.Config{Log: e2eLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	startWorkerProc(t, bin, coord, "-name", "pw1")
	startWorkerProc(t, bin, coord, "-name", "pw2")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.WaitForWorkers(ctx, 2); err != nil {
		t.Fatal(err)
	}

	rs := spatialjoin.GenerateUniform(4000, 1)
	ss := spatialjoin.GenerateGaussian(4000, 2)
	tr := spatialjoin.NewTracer()
	opt := spatialjoin.Options{
		Eps:       experiments.DefaultEps,
		Algorithm: spatialjoin.AdaptiveSimpleDedup, // exercises supplementary join + dedup
		UseLPT:    true,
		Workers:   2,
		Engine:    coord.Engine(),
		Trace:     tr,
	}
	rep, err := spatialjoin.Join(rs, ss, opt)
	if err != nil {
		t.Fatalf("traced cluster join: %v", err)
	}
	if rep.Results == 0 {
		t.Fatal("traced cluster join produced no results")
	}

	// One connected tree rooted at the join span, with spans stitched in
	// from both remote worker processes.
	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != "join" {
		t.Fatalf("stitched trace is not a single join-rooted tree: %d roots", len(roots))
	}
	workers := map[string]int{}
	for _, sp := range tr.Spans() {
		if sp.Name == "task" {
			if sp.Worker == "" {
				t.Error("task span without worker attribution")
			}
			workers[sp.Worker]++
		}
	}
	if workers["pw1"] == 0 || workers["pw2"] == 0 {
		t.Fatalf("task spans did not come from both worker processes: %v", workers)
	}

	sk := tr.Skew()
	if sk.Tasks == 0 || sk.MaxTaskMicros <= 0 || sk.MedianTaskMicros <= 0 {
		t.Fatalf("skew report empty: %+v", sk)
	}
	if len(sk.TasksPerWorker) != 2 {
		t.Fatalf("skew per-worker counts = %v, want both processes", sk.TasksPerWorker)
	}
	if len(sk.ReplicationBytes) == 0 {
		t.Fatalf("skew lacks replication bytes by agreement: %+v", sk)
	}

	// The Chrome export must be valid trace-event JSON: metadata and
	// complete events only, with both worker lanes named.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	lanes := map[string]bool{}
	var complete int
	for _, ev := range chrome.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				lanes[ev.Args["name"].(string)] = true
			}
		case "X":
			complete++
			if ev.Name == "" || ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("malformed complete event: %+v", ev)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete == 0 || !lanes["pw1"] || !lanes["pw2"] {
		t.Fatalf("chrome export missing worker lanes or events: %d events, lanes %v", complete, lanes)
	}

	if out := os.Getenv("CLUSTER_TRACE_OUT"); out != "" {
		if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing CLUSTER_TRACE_OUT: %v", err)
		}
		t.Logf("wrote stitched trace to %s (%d events)", out, len(chrome.TraceEvents))
	}
}

// TestClusterFaultInjectionE2E runs the acceptance scenario of the
// cluster backend end to end with real worker processes: a 3-worker
// cluster join over the seed generators at the experiments' default ε
// must return the byte-identical sorted pair set as the in-process
// engine — and must still do so when one worker process is killed
// mid-join.
func TestClusterFaultInjectionE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and spawns worker processes")
	}
	bin := buildWorker(t)

	// Seed generators: one uniform input, one gaussian, at the scaled
	// paper default ε.
	eps := experiments.DefaultEps
	rs := spatialjoin.GenerateUniform(4000, 1)
	ss := spatialjoin.GenerateGaussian(4000, 2)
	opt := spatialjoin.Options{Eps: eps, Algorithm: spatialjoin.AdaptiveLPiB, UseLPT: true, Workers: 3, Collect: true}

	localRep, err := spatialjoin.Join(rs, ss, opt)
	if err != nil {
		t.Fatalf("local join: %v", err)
	}
	want := sortedPairs(localRep.Pairs)

	// The oracle: the cluster result must equal brute force too, not just
	// the local engine (they could share a bug).
	brute := sortedPairs(spatialjoin.BruteForce(rs, ss, eps))
	assertSamePairs(t, "local vs brute force", want, brute)

	t.Run("healthy", func(t *testing.T) {
		coord, err := cluster.Listen("127.0.0.1:0", cluster.Config{Log: e2eLogger(t)})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		for i := 0; i < 3; i++ {
			startWorkerProc(t, bin, coord, "-name", "w"+string(rune('0'+i)))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := coord.WaitForWorkers(ctx, 3); err != nil {
			t.Fatal(err)
		}

		o := opt
		o.Engine = coord.Engine()
		rep, err := spatialjoin.Join(rs, ss, o)
		if err != nil {
			t.Fatalf("cluster join: %v", err)
		}
		assertSamePairs(t, "cluster vs local", sortedPairs(rep.Pairs), want)
		if rep.Checksum != localRep.Checksum {
			t.Errorf("cluster checksum %#x, local %#x", rep.Checksum, localRep.Checksum)
		}
		if cm := rep.Cluster; cm.Workers != 3 || cm.TaskBytesRemote <= 0 || cm.BroadcastBytes <= 0 {
			t.Errorf("cluster metrics implausible: %+v", cm)
		}
	})

	t.Run("worker-killed-mid-join", func(t *testing.T) {
		coord, err := cluster.Listen("127.0.0.1:0", cluster.Config{
			HeartbeatInterval: 50 * time.Millisecond,
			Log:               e2eLogger(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()

		// The victim stalls each task and runs them one at a time, so a
		// kill shortly after dispatch is guaranteed to land while its
		// partitions are outstanding.
		victim := startWorkerProc(t, bin, coord, "-name", "victim", "-task-delay", "400ms", "-parallel", "1")
		startWorkerProc(t, bin, coord, "-name", "s1")
		startWorkerProc(t, bin, coord, "-name", "s2")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := coord.WaitForWorkers(ctx, 3); err != nil {
			t.Fatal(err)
		}

		o := opt
		o.Engine = coord.Engine()
		type outcome struct {
			rep *spatialjoin.Report
			err error
		}
		ch := make(chan outcome, 1)
		go func() {
			rep, err := spatialjoin.Join(rs, ss, o)
			ch <- outcome{rep, err}
		}()

		// Kill the victim process while its tasks are in flight.
		time.Sleep(150 * time.Millisecond)
		if err := victim.Process.Kill(); err != nil {
			t.Fatalf("killing victim: %v", err)
		}

		select {
		case out := <-ch:
			if out.err != nil {
				t.Fatalf("cluster join after worker kill: %v", out.err)
			}
			assertSamePairs(t, "cluster-after-kill vs local", sortedPairs(out.rep.Pairs), want)
			assertSamePairs(t, "cluster-after-kill vs brute force", sortedPairs(out.rep.Pairs), brute)
			if out.rep.Checksum != localRep.Checksum {
				t.Errorf("checksum after kill %#x, local %#x", out.rep.Checksum, localRep.Checksum)
			}
			if out.rep.Cluster.Retries == 0 {
				t.Errorf("victim was killed mid-join but no task was retried")
			}
		case <-time.After(60 * time.Second):
			t.Fatal("cluster join did not recover from the worker kill")
		}
		if st := coord.Stats(); st.WorkersLost == 0 {
			t.Errorf("coordinator never declared the killed worker dead: %+v", st)
		}
	})
}
