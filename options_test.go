package spatialjoin

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"spatialjoin/internal/dpe"
)

// TestOptionsValidation exercises every rejection of Options.Validate —
// each must produce a descriptive error instead of a downstream panic or
// silent misbehaviour, through both Validate and the Join entry point.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want string // substring of the error
	}{
		{"zero eps", Options{Eps: 0}, "Eps must be positive"},
		{"negative eps", Options{Eps: -0.5}, "Eps must be positive"},
		{"negative workers", Options{Eps: 1, Workers: -4}, "Workers must not be negative"},
		{"negative partitions", Options{Eps: 1, Partitions: -8}, "Partitions must not be negative"},
		{"negative sample fraction", Options{Eps: 1, SampleFraction: -0.1}, "SampleFraction must be in [0, 1]"},
		{"sample fraction above one", Options{Eps: 1, SampleFraction: 1.5}, "SampleFraction must be in [0, 1]"},
		{"negative grid res", Options{Eps: 1, GridRes: -2}, "GridRes must not be negative"},
		{"adaptive grid res below 2", Options{Eps: 1, GridRes: 1.5}, "l ≥ 2ε"},
		{"adaptive grid res below 2 (DIFF)", Options{Eps: 1, Algorithm: AdaptiveDIFF, GridRes: 0.5}, "l ≥ 2ε"},
		{"negative pool size", Options{Eps: 1, PoolSize: -2}, "PoolSize must not be negative"},
		{"sedona on remote engine", Options{Eps: 1, Algorithm: SedonaLike, Engine: dpe.LocalEngine{}}, "cannot run on a remote engine"},
		{"unknown algorithm", Options{Eps: 1, Algorithm: Algorithm(200)}, "unknown algorithm"},
		{"empty bounds", Options{Eps: 1, Bounds: &Rect{MinX: 1, MinY: 0, MaxX: 1, MaxY: 2}}, "non-positive extent"},
	}
	rs := GenerateUniform(50, 1)
	ss := GenerateUniform(50, 2)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opt.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
			if _, err := Join(rs, ss, c.opt); err == nil {
				t.Fatal("Join accepted invalid options")
			}
			if _, err := SelfJoin(rs, c.opt); err == nil {
				t.Fatal("SelfJoin accepted invalid options")
			}
		})
	}
}

// TestOptionsValidationAccepts pins down values that must NOT be
// rejected: defaults, baseline grid resolutions below 2, full sampling.
func TestOptionsValidationAccepts(t *testing.T) {
	for _, opt := range []Options{
		{Eps: 0.5},
		{Eps: 0.5, Algorithm: PBSMEpsGrid, GridRes: 1}, // fine for baselines
		{Eps: 0.5, SampleFraction: 1},
		{Eps: 0.5, GridRes: 2, Workers: 3, Partitions: 7},
	} {
		if err := opt.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", opt, err)
		}
	}
}

// TestJoinContextCancellation: a context that is already cancelled must
// abort both the one-shot and the prepared-plan execution paths instead
// of running the join to completion (this is what lets sjoind deadlines
// cancel in-flight work).
func TestJoinContextCancellation(t *testing.T) {
	rs := GenerateUniform(2000, 3)
	ss := GenerateGaussian(2000, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := JoinContext(ctx, rs, ss, Options{Eps: 0.5, Collect: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("JoinContext(cancelled) = %v, want context.Canceled", err)
	}

	plan, err := Prepare(rs, ss, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.ExecuteContext(ctx, ExecOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteContext(cancelled) = %v, want context.Canceled", err)
	}
	// A live context still joins normally.
	if rep, err := JoinContext(context.Background(), rs, ss, Options{Eps: 0.5}); err != nil || rep.Results == 0 {
		t.Fatalf("JoinContext(live) = %v, %v", rep, err)
	}
}

// TestSelectivityZeroCardinality: Selectivity must return 0, never
// NaN or Inf, when either input is empty.
func TestSelectivityZeroCardinality(t *testing.T) {
	rep := &Report{Results: 42}
	for _, c := range [][2]int{{0, 10}, {10, 0}, {0, 0}} {
		got := rep.Selectivity(c[0], c[1])
		if got != 0 {
			t.Fatalf("Selectivity(%d, %d) = %v, want 0", c[0], c[1], got)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Selectivity(%d, %d) = %v, must be finite", c[0], c[1], got)
		}
	}
	if got := rep.Selectivity(7, 6); got != float64(42)/42 {
		t.Fatalf("Selectivity(7, 6) = %v, want 1", got)
	}
}
