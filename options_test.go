package spatialjoin

import (
	"math"
	"strings"
	"testing"
)

// TestOptionsValidation exercises every rejection of Options.Validate —
// each must produce a descriptive error instead of a downstream panic or
// silent misbehaviour, through both Validate and the Join entry point.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want string // substring of the error
	}{
		{"zero eps", Options{Eps: 0}, "Eps must be positive"},
		{"negative eps", Options{Eps: -0.5}, "Eps must be positive"},
		{"negative workers", Options{Eps: 1, Workers: -4}, "Workers must not be negative"},
		{"negative partitions", Options{Eps: 1, Partitions: -8}, "Partitions must not be negative"},
		{"negative sample fraction", Options{Eps: 1, SampleFraction: -0.1}, "SampleFraction must be in [0, 1]"},
		{"sample fraction above one", Options{Eps: 1, SampleFraction: 1.5}, "SampleFraction must be in [0, 1]"},
		{"negative grid res", Options{Eps: 1, GridRes: -2}, "GridRes must not be negative"},
		{"adaptive grid res below 2", Options{Eps: 1, GridRes: 1.5}, "l ≥ 2ε"},
		{"adaptive grid res below 2 (DIFF)", Options{Eps: 1, Algorithm: AdaptiveDIFF, GridRes: 0.5}, "l ≥ 2ε"},
		{"unknown algorithm", Options{Eps: 1, Algorithm: Algorithm(200)}, "unknown algorithm"},
		{"empty bounds", Options{Eps: 1, Bounds: &Rect{MinX: 1, MinY: 0, MaxX: 1, MaxY: 2}}, "non-positive extent"},
	}
	rs := GenerateUniform(50, 1)
	ss := GenerateUniform(50, 2)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opt.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
			if _, err := Join(rs, ss, c.opt); err == nil {
				t.Fatal("Join accepted invalid options")
			}
			if _, err := SelfJoin(rs, c.opt); err == nil {
				t.Fatal("SelfJoin accepted invalid options")
			}
		})
	}
}

// TestOptionsValidationAccepts pins down values that must NOT be
// rejected: defaults, baseline grid resolutions below 2, full sampling.
func TestOptionsValidationAccepts(t *testing.T) {
	for _, opt := range []Options{
		{Eps: 0.5},
		{Eps: 0.5, Algorithm: PBSMEpsGrid, GridRes: 1}, // fine for baselines
		{Eps: 0.5, SampleFraction: 1},
		{Eps: 0.5, GridRes: 2, Workers: 3, Partitions: 7},
	} {
		if err := opt.Validate(); err != nil {
			t.Fatalf("Validate(%+v) = %v, want nil", opt, err)
		}
	}
}

// TestSelectivityZeroCardinality: Selectivity must return 0, never
// NaN or Inf, when either input is empty.
func TestSelectivityZeroCardinality(t *testing.T) {
	rep := &Report{Results: 42}
	for _, c := range [][2]int{{0, 10}, {10, 0}, {0, 0}} {
		got := rep.Selectivity(c[0], c[1])
		if got != 0 {
			t.Fatalf("Selectivity(%d, %d) = %v, want 0", c[0], c[1], got)
		}
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Selectivity(%d, %d) = %v, must be finite", c[0], c[1], got)
		}
	}
	if got := rep.Selectivity(7, 6); got != float64(42)/42 {
		t.Fatalf("Selectivity(7, 6) = %v, want 1", got)
	}
}
