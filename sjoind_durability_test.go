package spatialjoin_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// durableArgs builds the daemon's durability flags. CI's durability
// matrix drives the knobs through env vars so one test body covers
// fsync on/off and on-demand vs periodic checkpoints:
//
//	SJOIND_TEST_NO_FSYNC=1              drop -fsync (page cache still
//	                                    survives SIGKILL; only host
//	                                    crashes need fsync)
//	SJOIND_TEST_CHECKPOINT_EVERY=200ms  add periodic checkpoints on top
//	                                    of the explicit admin one
func durableArgs(dataDir string) []string {
	// A fast telemetry flush keeps the rollup snapshot in the record log
	// within a test-scale window of each observation, so the crash test
	// can assert pre-crash series survive SIGKILL.
	args := []string{"-data-dir", dataDir, "-telem-flush", "100ms"}
	if os.Getenv("SJOIND_TEST_NO_FSYNC") == "" {
		args = append(args, "-fsync")
	}
	if ce := os.Getenv("SJOIND_TEST_CHECKPOINT_EVERY"); ce != "" {
		args = append(args, "-checkpoint-every", ce)
	}
	return args
}

// getJSON fetches url and decodes the JSON body into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
	return resp.StatusCode
}

// metricValue scrapes one metric from /metrics (first sample wins).
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parsing metric %s from %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// streamSnapshot subscribes with snapshot=true and returns the initial
// result set, sorted. The snapshot prefix is flushed atomically with the
// subscription, so with no concurrent ingest the lines read before the
// feed goes idle are exactly the live pair set.
func streamSnapshot(t *testing.T, base, name string) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET",
		base+"/v1/stream/subscribe?name="+name+"&snapshot=true", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("subscribe %s: %v", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe %s: status %d", name, resp.StatusCode)
	}
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	var out []string
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				sort.Strings(out)
				return out
			}
			out = append(out, line)
		case <-time.After(2 * time.Second):
			// Feed idle: the snapshot prefix is complete.
			sort.Strings(out)
			return out
		}
	}
}

func postNDJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST %s: bad JSON: %v", url, err)
	}
	return resp.StatusCode, m
}

// telemLatencyCount sums the 1s join-latency rollup observations the
// daemon serves on /v1/telemetry/series.
func telemLatencyCount(t *testing.T, base string) int64 {
	t.Helper()
	var dumps []struct {
		Res     string `json:"res"`
		Buckets []struct {
			Count int64 `json:"count"`
		} `json:"buckets"`
	}
	getJSON(t, base+"/v1/telemetry/series?name=join_latency_seconds", &dumps)
	var n int64
	for _, d := range dumps {
		if d.Res != "1s" {
			continue
		}
		for _, b := range d.Buckets {
			n += b.Count
		}
	}
	return n
}

// TestSjoindCrashRecovery is the durability end-to-end test: a daemon
// with -data-dir -fsync takes datasets, a live stream, joins and a
// mid-run checkpoint, is killed with SIGKILL (no drain, no final
// checkpoint), and is restarted on the same directory. Every acked
// observable — dataset list, join checksum, stream result set, planner
// history — must come back identical, with only the short post-checkpoint
// log tail replayed.
func TestSjoindCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t)
	dataDir := t.TempDir()
	// CI points this at a workspace path so the store directory (wal
	// segments + checkpoints) can be uploaded as an artifact on failure.
	if d := os.Getenv("SJOIND_TEST_DATA_DIR"); d != "" {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		dataDir = d
	}
	base, cmd := startSjoind(t, bins["sjoind"], durableArgs(dataDir)...)
	defer cmd.Process.Kill()

	for _, q := range []string{
		"name=r&generate=gaussian&n=20000&seed=1",
		"name=s&generate=uniform&n=20000&seed=2",
	} {
		if code, m := postJSON(t, base+"/v1/datasets?"+q, ""); code != http.StatusCreated {
			t.Fatalf("upload %s: status %d, %v", q, code, m)
		}
	}
	// A live stream with TTL 0 so its result set is a pure function of
	// the acked mutations.
	if code, m := postJSON(t, base+"/v1/stream",
		`{"name":"live","eps":0.1,"min_x":0,"min_y":0,"max_x":1,"max_y":1}`); code != http.StatusCreated {
		t.Fatalf("create stream: status %d, %v", code, m)
	}
	ingest := func(from, to int) {
		var b strings.Builder
		for id := from; id < to; id++ {
			set := "r"
			if id%2 == 1 {
				set = "s"
			}
			fmt.Fprintf(&b, `{"set":%q,"id":%d,"x":%.3f,"y":%.3f}`+"\n",
				set, id, float64(id%10)/10, float64(id%7)/10)
		}
		if code, m := postNDJSON(t, base+"/v1/stream/ingest?name=live", b.String()); code != http.StatusOK {
			t.Fatalf("ingest: status %d, %v", code, m)
		}
	}
	ingest(0, 40)

	join := `{"r":"r","s":"s","eps":0.05,"algorithm":"lpib"}`
	code, joinBefore := postJSON(t, base+"/v1/join", join)
	if code != http.StatusOK {
		t.Fatalf("join: status %d, %v", code, joinBefore)
	}

	// Checkpoint mid-run, then keep mutating: the tail after this seq is
	// all the restart may replay.
	code, ck := postJSON(t, base+"/v1/admin/checkpoint", "")
	if code != http.StatusOK {
		t.Fatalf("checkpoint: status %d, %v", code, ck)
	}
	if s, ok := ck["checkpoint_seq"].(float64); !ok || s <= 0 {
		t.Fatalf("checkpoint response: %v", ck)
	}
	ingest(40, 60)
	if code, m := postJSON(t, base+"/v1/datasets?name=late&generate=uniform&n=5000&seed=9", ""); code != http.StatusCreated {
		t.Fatalf("upload late: status %d, %v", code, m)
	}

	var listBefore []map[string]any
	getJSON(t, base+"/v1/datasets", &listBefore)
	pairsBefore := streamSnapshot(t, base, "live")
	if len(pairsBefore) == 0 {
		t.Fatal("stream has no pairs before the crash; test is vacuous")
	}

	// The pre-crash join landed in the telemetry rollups; give the
	// 100ms flush loop time to log a snapshot before the SIGKILL.
	telemBefore := telemLatencyCount(t, base)
	if telemBefore == 0 {
		t.Fatal("no join latency telemetry before the crash; test is vacuous")
	}
	time.Sleep(400 * time.Millisecond)

	// SIGKILL: no drain, no final checkpoint, torn tail possible.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	base2, cmd2 := startSjoind(t, bins["sjoind"], durableArgs(dataDir)...)
	defer cmd2.Process.Kill()

	var listAfter []map[string]any
	getJSON(t, base2+"/v1/datasets", &listAfter)
	key := func(list []map[string]any) []string {
		out := make([]string, 0, len(list))
		for _, d := range list {
			out = append(out, fmt.Sprintf("%v/r%v/g%v/p%v", d["name"], d["rev"], d["gen"], d["points"]))
		}
		sort.Strings(out)
		return out
	}
	kb, ka := key(listBefore), key(listAfter)
	if strings.Join(kb, ",") != strings.Join(ka, ",") {
		t.Fatalf("dataset list diverged:\n before %v\n after  %v", kb, ka)
	}

	code, joinAfter := postJSON(t, base2+"/v1/join", join)
	if code != http.StatusOK {
		t.Fatalf("post-recovery join: status %d, %v", code, joinAfter)
	}
	if joinAfter["checksum"] != joinBefore["checksum"] || joinAfter["results"] != joinBefore["results"] {
		t.Fatalf("join diverged after recovery: %v vs %v", joinAfter, joinBefore)
	}

	pairsAfter := streamSnapshot(t, base2, "live")
	if strings.Join(pairsAfter, "\n") != strings.Join(pairsBefore, "\n") {
		t.Fatalf("stream result set diverged:\n before %d pairs\n after  %d pairs",
			len(pairsBefore), len(pairsAfter))
	}

	// Recovery used the checkpoint and replayed only the tail: one
	// ingest batch and one dataset put landed after it.
	if v := metricValue(t, base2, "sjoind_dstore_checkpoint_seq"); v <= 0 {
		t.Fatalf("recovered without a checkpoint (seq %v)", v)
	}
	// With periodic checkpoints a timer may have fired after the late
	// mutations, legitimately leaving nothing to replay — only the upper
	// bound holds there.
	periodic := os.Getenv("SJOIND_TEST_CHECKPOINT_EVERY") != ""
	if v := metricValue(t, base2, "sjoind_dstore_replayed_records"); v > 5 || (!periodic && v <= 0) {
		t.Fatalf("replayed %v records, want a short bounded tail", v)
	}

	// Persisted planner history from the pre-crash join survives.
	var hist []map[string]any
	getJSON(t, base2+"/v1/planner/history", &hist)
	if len(hist) == 0 {
		t.Fatal("planner history empty after recovery")
	}

	// The telemetry rollup history survives too: the restarted daemon
	// serves the pre-crash series from the restored snapshot.
	if after := telemLatencyCount(t, base2); after < telemBefore {
		t.Fatalf("telemetry lost across the crash: %d latency observations, want >= %d",
			after, telemBefore)
	}

	// The recovered daemon keeps accepting acked work.
	ingest2 := `{"set":"r","id":999,"x":0.5,"y":0.5}`
	if code, m := postNDJSON(t, base2+"/v1/stream/ingest?name=live", ingest2); code != http.StatusOK {
		t.Fatalf("post-recovery ingest: status %d, %v", code, m)
	}
}
