package spatialjoin

import (
	"testing"
)

// bruteSelf returns every unordered pair {a, b}, a.ID < b.ID, within eps.
func bruteSelf(ts []Tuple, eps float64) []Pair {
	var out []Pair
	eps2 := eps * eps
	for i := range ts {
		for j := range ts {
			if ts[i].ID < ts[j].ID && ts[i].Pt.SqDist(ts[j].Pt) <= eps2 {
				out = append(out, Pair{RID: ts[i].ID, SID: ts[j].ID})
			}
		}
	}
	sortPairs(out)
	return out
}

func TestSelfJoinMatchesBruteForce(t *testing.T) {
	ts := GenerateGaussian(3000, 77)
	const eps = 0.4
	want := bruteSelf(ts, eps)
	if len(want) == 0 {
		t.Fatal("workload produced no self-pairs; test is vacuous")
	}

	for _, algo := range []Algorithm{
		AdaptiveLPiB, AdaptiveDIFF, PBSMUniR, PBSMUniS, PBSMEpsGrid, PBSMClone, SedonaLike,
	} {
		rep, err := SelfJoin(ts, Options{Eps: eps, Algorithm: algo, Collect: true, Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		got := append([]Pair(nil), rep.Pairs...)
		sortPairs(got)
		if len(got) != len(want) {
			t.Fatalf("%v: %d pairs, want %d", algo, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: pair %d: %v vs %v", algo, i, got[i], want[i])
			}
		}
	}
}

func TestSelfJoinOrientationInvariant(t *testing.T) {
	ts := GenerateUniform(2000, 5)
	rep, err := SelfJoin(ts, Options{Eps: 1.2, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Pairs {
		if p.RID >= p.SID {
			t.Fatalf("pair %v not in canonical orientation", p)
		}
	}
}

func TestSelfJoinRejectsDedupVariant(t *testing.T) {
	ts := GenerateUniform(10, 1)
	if _, err := SelfJoin(ts, Options{Eps: 1, Algorithm: AdaptiveSimpleDedup}); err == nil {
		t.Fatal("dedup ablation must be rejected for self-joins")
	}
	if _, err := SelfJoin(ts, Options{Eps: 1, Algorithm: AutoPlanned}); err == nil {
		t.Fatal("auto planner must be rejected for self-joins")
	}
}
