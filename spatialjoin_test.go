package spatialjoin

import (
	"sort"
	"testing"
)

func allAlgorithms() []Algorithm {
	return []Algorithm{
		AdaptiveLPiB, AdaptiveDIFF, PBSMUniR, PBSMUniS, PBSMEpsGrid,
		SedonaLike, AdaptiveSimpleDedup, PBSMClone,
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	r := GenerateTigerLike(5000, 1)
	s := GenerateGaussian(5000, 2)
	eps := 0.6

	var baseline *Report
	for _, algo := range allAlgorithms() {
		rep, err := Join(r, s, Options{Eps: eps, Algorithm: algo, Workers: 4, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if baseline == nil {
			baseline = rep
			continue
		}
		if rep.Results != baseline.Results || rep.Checksum != baseline.Checksum {
			t.Fatalf("%v: results %d/%x disagree with %v: %d/%x",
				algo, rep.Results, rep.Checksum, baseline.Algorithm, baseline.Results, baseline.Checksum)
		}
	}
	if baseline.Results == 0 {
		t.Fatal("workload produced no results; the agreement test is vacuous")
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	r := GenerateUniform(800, 3)
	s := GenerateGaussian(800, 4)
	eps := 1.2
	want := BruteForce(r, s, eps)
	rep, err := Join(r, s, Options{Eps: eps, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(rep.Pairs), len(want))
	}
	sortPairs(rep.Pairs)
	sortPairs(want)
	for i := range want {
		if rep.Pairs[i] != want[i] {
			t.Fatalf("pair %d: %v vs %v", i, rep.Pairs[i], want[i])
		}
	}
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RID != ps[j].RID {
			return ps[i].RID < ps[j].RID
		}
		return ps[i].SID < ps[j].SID
	})
}

func TestAdaptiveBeatsUniversalReplicationOnSkew(t *testing.T) {
	r := GenerateTigerLike(30_000, 5)
	s := GenerateGaussian(30_000, 6)
	eps := 0.5

	adaptive, err := Join(r, s, Options{Eps: eps, Algorithm: AdaptiveLPiB, SampleFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	uniR, err := Join(r, s, Options{Eps: eps, Algorithm: PBSMUniR})
	if err != nil {
		t.Fatal(err)
	}
	uniS, err := Join(r, s, Options{Eps: eps, Algorithm: PBSMUniS})
	if err != nil {
		t.Fatal(err)
	}
	best := uniR.Replicated()
	if uniS.Replicated() < best {
		best = uniS.Replicated()
	}
	if adaptive.Replicated() >= best {
		t.Fatalf("adaptive replicated %d, best universal %d", adaptive.Replicated(), best)
	}
	t.Logf("replication: LPiB=%d UNI(R)=%d UNI(S)=%d (%.1fx saving)",
		adaptive.Replicated(), uniR.Replicated(), uniS.Replicated(),
		float64(best)/float64(adaptive.Replicated()))
}

func TestReportDerivedQuantities(t *testing.T) {
	r := GenerateUniform(2000, 8)
	s := GenerateUniform(2000, 9)
	rep, err := Join(r, s, Options{Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalTime() <= 0 || rep.ConstructionTime() <= 0 {
		t.Fatal("times must be positive")
	}
	if rep.TotalTime() < rep.ConstructionTime() {
		t.Fatal("total < construction")
	}
	sel := rep.Selectivity(2000, 2000)
	if sel <= 0 || sel > 1 {
		t.Fatalf("selectivity = %v", sel)
	}
	if rep.Selectivity(0, 10) != 0 {
		t.Fatal("empty input selectivity must be 0")
	}
	if rep.ShuffleRemoteBytes > rep.ShuffledBytes {
		t.Fatal("remote bytes exceed shuffled bytes")
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[Algorithm]string{
		AdaptiveLPiB:        "LPiB",
		AdaptiveDIFF:        "DIFF",
		PBSMUniR:            "UNI(R)",
		PBSMUniS:            "UNI(S)",
		PBSMEpsGrid:         "eps-grid",
		SedonaLike:          "Sedona",
		AdaptiveSimpleDedup: "LPiB+dedup",
		PBSMClone:           "clone+refpoint",
	}
	for a, name := range want {
		if a.String() != name {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), name)
		}
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown algorithm must still print")
	}
}

func TestJoinValidation(t *testing.T) {
	if _, err := Join(nil, nil, Options{Eps: 0}); err == nil {
		t.Error("expected error for eps=0")
	}
	if _, err := Join(nil, nil, Options{Eps: 1, Algorithm: Algorithm(99)}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestGenerateHelpers(t *testing.T) {
	w := World()
	for name, ts := range map[string][]Tuple{
		"uniform": GenerateUniform(500, 1),
		"gauss":   GenerateGaussian(500, 2),
		"tiger":   GenerateTigerLike(500, 3),
		"osm":     GenerateOSMLike(500, 4),
	} {
		if len(ts) != 500 {
			t.Fatalf("%s: len %d", name, len(ts))
		}
		for _, tu := range ts {
			if !w.Contains(tu.Pt) {
				t.Fatalf("%s: point outside world", name)
			}
		}
	}
	pts := []Point{{X: 1, Y: 2}}
	if got := FromPoints(pts, 5); got[0].ID != 5 {
		t.Fatal("FromPoints base id broken")
	}
	padded := WithPayloads(FromPoints(pts, 0), 64)
	if len(padded[0].Payload) != 64 {
		t.Fatal("WithPayloads broken")
	}
}

func TestFileRoundTripViaFacade(t *testing.T) {
	dir := t.TempDir()
	ts := GenerateUniform(100, 11)
	path := dir + "/pts.txt"
	if err := WriteFile(path, ts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ts) {
		t.Fatalf("round trip: %d vs %d", len(back), len(ts))
	}
	for i := range ts {
		if back[i].Pt != ts[i].Pt {
			t.Fatalf("point %d: %v vs %v", i, back[i].Pt, ts[i].Pt)
		}
	}
}

func TestTupleSizeGrowsShuffle(t *testing.T) {
	r := GenerateGaussian(10_000, 12)
	s := GenerateGaussian(10_000, 13)
	slim, err := Join(r, s, Options{Eps: 0.5, Algorithm: PBSMUniR})
	if err != nil {
		t.Fatal(err)
	}
	fat, err := Join(WithPayloads(r, 256), WithPayloads(s, 256), Options{Eps: 0.5, Algorithm: PBSMUniR})
	if err != nil {
		t.Fatal(err)
	}
	if fat.ShuffledBytes <= slim.ShuffledBytes {
		t.Fatal("payloads did not grow shuffle volume")
	}
	if fat.Results != slim.Results || fat.Checksum != slim.Checksum {
		t.Fatal("payloads changed join results")
	}
}

func TestAutoPlannedJoin(t *testing.T) {
	r := GenerateTigerLike(8000, 1)
	s := GenerateGaussian(8000, 2)
	auto, err := Join(r, s, Options{Eps: 0.6, Algorithm: AutoPlanned, SampleFraction: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Join(r, s, Options{Eps: 0.6, Algorithm: AdaptiveLPiB, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Results != want.Results || auto.Checksum != want.Checksum {
		t.Fatalf("auto join results %d/%x, want %d/%x", auto.Results, auto.Checksum, want.Results, want.Checksum)
	}
	// The resolved algorithm is reported, never AutoPlanned itself.
	if auto.Algorithm == AutoPlanned {
		t.Fatal("report must carry the resolved algorithm")
	}
	// On this skewed workload the planner must pick the adaptive strategy.
	if auto.Algorithm != AdaptiveLPiB {
		t.Fatalf("planner picked %v on skewed data", auto.Algorithm)
	}
	if _, err := Join(nil, nil, Options{Eps: 0, Algorithm: AutoPlanned}); err == nil {
		t.Fatal("auto join must validate eps")
	}
	if _, err := Join(nil, nil, Options{Eps: 1, Algorithm: AutoPlanned, GridRes: 1}); err == nil {
		t.Fatal("auto join must reject sub-2eps grids")
	}
}

func TestKNNJoinFacade(t *testing.T) {
	r := GenerateUniform(200, 31)
	s := GenerateUniform(3000, 32)
	rep, err := KNNJoin(r, s, 4, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Neighbors) != 200*4 {
		t.Fatalf("neighbours = %d, want 800", len(rep.Neighbors))
	}
	if rep.Rounds < 1 || rep.CandidatesScanned <= 0 {
		t.Fatalf("profile not recorded: %d rounds, %d scanned", rep.Rounds, rep.CandidatesScanned)
	}
	// Spot-check the first point against brute force.
	first := rep.Neighbors[:4]
	bestDist := first[3].Dist
	closer := 0
	for _, sp := range s {
		if r[0].Pt.Dist(sp.Pt) < bestDist {
			closer++
		}
	}
	if closer > 4 {
		t.Fatalf("%d points closer than the reported 4th neighbour", closer)
	}
	if _, err := KNNJoin(r, s, 0, Options{}); err == nil {
		t.Fatal("k=0 must fail")
	}
}
