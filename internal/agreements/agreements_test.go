package agreements

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

// worldGrid returns a 3x3 grid of 4x4 cells with eps=1.
func worldGrid() *grid.Grid {
	return grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 12, MaxY: 12}, 1, 4)
}

func TestPolicyString(t *testing.T) {
	if LPiB.String() != "LPiB" || DIFF.String() != "DIFF" || UniR.String() != "UNI(R)" || UniS.String() != "UNI(S)" {
		t.Fatal("policy names broken")
	}
}

func TestBuildRequiresAgreementGrid(t *testing.T) {
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 12, MaxY: 12}, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Build must panic on l < 2eps grids")
		}
	}()
	Build(grid.NewStats(g), LPiB)
}

func TestUniversalPoliciesHaveNoMixedTriangles(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		st.Add(tuple.Set(rng.Intn(2)), geom.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12})
	}
	for _, pol := range []Policy{UniR, UniS} {
		gr := Build(st, pol)
		wantType := tuple.R
		if pol == UniS {
			wantType = tuple.S
		}
		for qi := range gr.Subs {
			s := &gr.Subs[qi]
			if s.MixedTriangles() != 0 {
				t.Fatalf("%v: subgraph %d has mixed triangles", pol, qi)
			}
			if s.MarkedEdges() != 0 {
				t.Fatalf("%v: subgraph %d has marked edges", pol, qi)
			}
			for i := grid.Pos(0); i < grid.NumPos; i++ {
				for j := grid.Pos(0); j < grid.NumPos; j++ {
					if i != j && s.Type(i, j) != wantType {
						t.Fatalf("%v: edge type = %v", pol, s.Type(i, j))
					}
				}
			}
		}
	}
}

func TestLPiBPicksFewerBoundaryPoints(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	// Cell (0,0) spans [0,4]x[0,4]; cell (1,0) spans [4,8]x[0,4].
	// Put 3 R points near their shared border and 1 S point near it.
	st.Add(tuple.R, geom.Point{X: 3.5, Y: 2})
	st.Add(tuple.R, geom.Point{X: 3.6, Y: 2.5})
	st.Add(tuple.R, geom.Point{X: 4.3, Y: 2}) // in cell (1,0), near border
	st.Add(tuple.S, geom.Point{X: 3.7, Y: 2})

	gr := Build(st, LPiB)
	// The pair (0,0)-(1,0) appears in quartet (1,1) as BL-BR.
	s := gr.Sub(1, 1)
	if got := s.Type(grid.BL, grid.BR); got != tuple.S {
		t.Fatalf("LPiB type = %v, want S (1 S candidate vs 3 R candidates)", got)
	}
	// The same pair in quartet (1,0) as TL-TR must agree.
	if got := gr.Sub(1, 0).Type(grid.TL, grid.TR); got != tuple.S {
		t.Fatalf("pair type differs between subgraphs: %v", got)
	}
}

func TestLPiBTieBreaksToR(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	gr := Build(st, LPiB) // empty stats: every pair ties 0-0
	if got := gr.Sub(1, 1).Type(grid.BL, grid.BR); got != tuple.R {
		t.Fatalf("empty tie should resolve to R, got %v", got)
	}
}

func TestDIFFPicksMinorityOfMostSkewedCell(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	// Cell (0,0): 1 R, 3 S -> diff 2. Cell (1,0): 2 R, 2 S -> diff 0.
	// DIFF decides by cell (0,0), whose minority set is R (Example 4.3).
	st.Add(tuple.R, geom.Point{X: 1, Y: 1})
	for i := 0; i < 3; i++ {
		st.Add(tuple.S, geom.Point{X: 1.5, Y: 1})
	}
	st.Add(tuple.R, geom.Point{X: 5, Y: 1})
	st.Add(tuple.R, geom.Point{X: 5, Y: 2})
	st.Add(tuple.S, geom.Point{X: 6, Y: 1})
	st.Add(tuple.S, geom.Point{X: 6, Y: 2})

	gr := Build(st, DIFF)
	if got := gr.Sub(1, 1).Type(grid.BL, grid.BR); got != tuple.R {
		t.Fatalf("DIFF type = %v, want R", got)
	}
}

func TestDIFFSkewedTowardR(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	// Cell (0,0): 5 R, 1 S -> minority S decides.
	for i := 0; i < 5; i++ {
		st.Add(tuple.R, geom.Point{X: 1, Y: 1})
	}
	st.Add(tuple.S, geom.Point{X: 1, Y: 1})
	gr := Build(st, DIFF)
	if got := gr.Sub(1, 1).Type(grid.BL, grid.BR); got != tuple.S {
		t.Fatalf("DIFF type = %v, want S", got)
	}
}

func TestEdgeWeight(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	// Agreement (0,0)-(1,0) will be R (LPiB: 1 R candidate vs 2 S candidates
	// ... so actually S wins; construct so R wins: 1 R candidate, 2 S).
	// Make R the minority on the border: 1 R near border, 2 S near border.
	st.Add(tuple.R, geom.Point{X: 3.5, Y: 2}) // candidate toward (1,0)
	st.Add(tuple.S, geom.Point{X: 3.5, Y: 2.2})
	st.Add(tuple.S, geom.Point{X: 3.5, Y: 2.4})
	// S points inside cell (1,0) for the weight product.
	st.Add(tuple.S, geom.Point{X: 6, Y: 2})
	st.Add(tuple.S, geom.Point{X: 6, Y: 2.5})
	// Make the (0,1)-(1,1) agreement S (2 R candidates, 0 S) so the
	// quartet is mixed: uniform quartets skip Algorithm 1 and never
	// materialise their edge weights.
	st.Add(tuple.R, geom.Point{X: 3.5, Y: 6})
	st.Add(tuple.R, geom.Point{X: 3.5, Y: 6.5})

	gr := Build(st, LPiB)
	s := gr.Sub(1, 1)
	if got := s.Type(grid.BL, grid.BR); got != tuple.R {
		t.Fatalf("agreement type = %v, want R", got)
	}
	if got := s.Type(grid.TL, grid.TR); got != tuple.S {
		t.Fatalf("agreement type TL-TR = %v, want S (mixed quartet)", got)
	}
	// w(BL->BR) = 1 R candidate * 2 S points in (1,0) = 2.
	if got := s.Weight(grid.BL, grid.BR); got != 2 {
		t.Fatalf("weight BL->BR = %d, want 2", got)
	}
	// w(BR->BL) = 0 R candidates in (1,0) * 3 S points in (0,0) = 0.
	if got := s.Weight(grid.BR, grid.BL); got != 0 {
		t.Fatalf("weight BR->BL = %d, want 0", got)
	}
}

// Structural invariants of Algorithm 1 over every possible type
// configuration of a quartet (2^6 = 64).
func TestResolveExhaustiveInvariants(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	gr := Build(st, LPiB)
	s := gr.Sub(1, 1) // interior quartet, all cells real

	for mask := 0; mask < 64; mask++ {
		var types [6]tuple.Set
		for b := 0; b < 6; b++ {
			if mask&(1<<b) != 0 {
				types[b] = tuple.S
			}
		}
		s.SetTypesForTest(types)

		// (1) No edge is both marked and locked.
		for i := grid.Pos(0); i < grid.NumPos; i++ {
			for j := grid.Pos(0); j < grid.NumPos; j++ {
				if i == j {
					continue
				}
				if s.Marked(i, j) && s.Locked(i, j) {
					t.Fatalf("mask %06b: edge %v->%v both marked and locked", mask, i, j)
				}
			}
		}

		// (2) A marked edge lies in at least one mixed triangle with its
		// tail as apex.
		for i := grid.Pos(0); i < grid.NumPos; i++ {
			for j := grid.Pos(0); j < grid.NumPos; j++ {
				if i == j || !s.Marked(i, j) {
					continue
				}
				ok := false
				for _, k := range otherTwo(i, j) {
					if s.Type(i, k) == s.Type(i, j) && s.Type(j, k) != s.Type(i, j) {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("mask %06b: marked edge %v->%v has no eligible triangle", mask, i, j)
				}
			}
		}

		// (3) Every mixed triangle must be defused: its apex must not
		// replicate its duplicate-prone points to both other vertices,
		// i.e. at least one apex out-edge within the triangle is marked.
		forEachTriangle(func(a, b, c grid.Pos) {
			apex, x, y, mixed := apexOf(s, a, b, c)
			if !mixed {
				return
			}
			if !s.Marked(apex, x) && !s.Marked(apex, y) {
				t.Fatalf("mask %06b: mixed triangle (%v,%v,%v) apex %v has no marked out-edge",
					mask, a, b, c, apex)
			}
		})

		// (4) An apex never has all three out-edges of its type marked:
		// its duplicate-prone points must still reach at least one cell
		// (either a side cell, or the diagonal via Algorithm 3's marked-
		// side-edge branch, which requires the diagonal edge unmarked).
		// Note that both out-edges of a single triangle MAY be marked —
		// the excluded points then travel to the quartet's fourth cell —
		// so the invariant is per apex across the subgraph, not per
		// triangle.
		for i := grid.Pos(0); i < grid.NumPos; i++ {
			adj := i.SideAdjacent()
			diag := i.Diagonal()
			allMarked := true
			for _, j := range []grid.Pos{adj[0], adj[1], diag} {
				if s.Type(i, j) != s.Type(i, adj[0]) {
					continue // different agreement type: not a replication path for the same set
				}
				if !s.Marked(i, j) {
					allMarked = false
				}
			}
			// Only meaningful when all three out-edges share a type.
			sameType := s.Type(i, adj[0]) == s.Type(i, adj[1]) && s.Type(i, adj[1]) == s.Type(i, diag)
			if sameType && allMarked {
				t.Fatalf("mask %06b: apex %v has all same-type out-edges marked", mask, i)
			}
		}
	}
}

// apexOf returns the apex of a mixed triangle: the vertex whose two
// triangle edges share a type while the opposite edge differs.
func apexOf(s *Subgraph, a, b, c grid.Pos) (apex, x, y grid.Pos, mixed bool) {
	tab, tac, tbc := s.Type(a, b), s.Type(a, c), s.Type(b, c)
	switch {
	case tab == tac && tab != tbc:
		return a, b, c, true
	case tab == tbc && tab != tac:
		return b, a, c, true
	case tac == tbc && tac != tab:
		return c, a, b, true
	default:
		return 0, 0, 0, false
	}
}

func TestPairTypeConsistentAcrossSubgraphs(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		st.Add(tuple.Set(rng.Intn(2)), geom.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12})
	}
	for _, pol := range []Policy{LPiB, DIFF} {
		gr := Build(st, pol)
		// Every side-sharing pair appears in two quartets; the agreement
		// type must match.
		for cy := 0; cy < g.NY; cy++ {
			for cx := 0; cx < g.NX-1; cx++ {
				// Horizontal pair (cx,cy)-(cx+1,cy): quartets at
				// (cx+1,cy) [TL-TR] and (cx+1,cy+1) [BL-BR].
				a := gr.Sub(cx+1, cy).Type(grid.TL, grid.TR)
				b := gr.Sub(cx+1, cy+1).Type(grid.BL, grid.BR)
				if a != b {
					t.Fatalf("%v: horizontal pair (%d,%d): types %v vs %v", pol, cx, cy, a, b)
				}
			}
		}
		for cy := 0; cy < g.NY-1; cy++ {
			for cx := 0; cx < g.NX; cx++ {
				// Vertical pair (cx,cy)-(cx,cy+1): quartets at
				// (cx,cy+1) [BR-TR] and (cx+1,cy+1) [BL-TL].
				a := gr.Sub(cx, cy+1).Type(grid.BR, grid.TR)
				b := gr.Sub(cx+1, cy+1).Type(grid.BL, grid.TL)
				if a != b {
					t.Fatalf("%v: vertical pair (%d,%d): types %v vs %v", pol, cx, cy, a, b)
				}
			}
		}
	}
}

func TestEstimatedCostsIncludeReplication(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	// Cell (1,1) has 2 R and 3 S interior points.
	for i := 0; i < 2; i++ {
		st.Add(tuple.R, geom.Point{X: 6, Y: 6})
	}
	for i := 0; i < 3; i++ {
		st.Add(tuple.S, geom.Point{X: 6, Y: 6.2})
	}
	// Cell (0,1) has an R point near the border to (1,1).
	st.Add(tuple.R, geom.Point{X: 3.5, Y: 6})

	gr := Build(st, UniR) // replicate R everywhere
	costs := gr.EstimatedCosts(st)
	// Cell (1,1): R = 2 native + 1 replicated in, S = 3 -> cost 9.
	if got := costs[g.CellID(1, 1)]; got != 9 {
		t.Fatalf("cost(1,1) = %d, want 9", got)
	}
	// Cell (0,1): 1 R native, 0 S -> cost 0.
	if got := costs[g.CellID(0, 1)]; got != 0 {
		t.Fatalf("cost(0,1) = %d, want 0", got)
	}
}

func TestDirBetween(t *testing.T) {
	cases := []struct {
		i, j grid.Pos
		want grid.Dir
	}{
		{grid.BL, grid.BR, grid.DirE},
		{grid.BR, grid.BL, grid.DirW},
		{grid.BL, grid.TL, grid.DirN},
		{grid.TL, grid.BL, grid.DirS},
		{grid.BL, grid.TR, grid.DirNE},
		{grid.TR, grid.BL, grid.DirSW},
		{grid.BR, grid.TL, grid.DirNW},
		{grid.TL, grid.BR, grid.DirSE},
	}
	for _, tc := range cases {
		if got := dirBetween(tc.i, tc.j); got != tc.want {
			t.Errorf("dirBetween(%v,%v) = %v, want %v", tc.i, tc.j, got, tc.want)
		}
	}
}

func TestOtherTwo(t *testing.T) {
	got := otherTwo(grid.BL, grid.TR)
	if got != [2]grid.Pos{grid.BR, grid.TL} {
		t.Fatalf("otherTwo(BL,TR) = %v", got)
	}
	got = otherTwo(grid.BR, grid.TL)
	if got != [2]grid.Pos{grid.BL, grid.TR} {
		t.Fatalf("otherTwo(BR,TL) = %v", got)
	}
}

func TestBorderQuartetsResolveWithoutPanic(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	rng := rand.New(rand.NewSource(33))
	// Heavy sampling near world borders exercises virtual-cell quartets.
	for i := 0; i < 500; i++ {
		st.Add(tuple.Set(rng.Intn(2)), geom.Point{X: rng.Float64() * 0.5, Y: rng.Float64() * 12})
		st.Add(tuple.Set(rng.Intn(2)), geom.Point{X: rng.Float64() * 12, Y: 12 - rng.Float64()*0.5})
	}
	for _, pol := range []Policy{LPiB, DIFF} {
		gr := Build(st, pol)
		if len(gr.Subs) != g.NumQuartets() {
			t.Fatalf("%v: %d subgraphs, want %d", pol, len(gr.Subs), g.NumQuartets())
		}
	}
}

func TestOrderNamesAndBehaviour(t *testing.T) {
	if OrderPaper.String() != "paper" || OrderWeightOnly.String() != "weight-only" || OrderIndex.String() != "index" {
		t.Fatal("order names broken")
	}
	if LPiBStrict.String() != "LPiB-strict" {
		t.Fatal("strict policy name broken")
	}
	// All orders keep the structural invariants on a mixed configuration.
	g := worldGrid()
	st := grid.NewStats(g)
	rng := rand.New(rand.NewSource(55))
	for i := 0; i < 500; i++ {
		st.Add(tuple.Set(rng.Intn(2)), geom.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12})
	}
	for _, order := range []Order{OrderPaper, OrderWeightOnly, OrderIndex} {
		gr := BuildOrdered(st, LPiB, order)
		for qi := range gr.Subs {
			s := &gr.Subs[qi]
			for i := grid.Pos(0); i < grid.NumPos; i++ {
				for j := grid.Pos(0); j < grid.NumPos; j++ {
					if i != j && s.Marked(i, j) && s.Locked(i, j) {
						t.Fatalf("order %v: edge both marked and locked", order)
					}
				}
			}
		}
	}
}

func TestLPiBStrictIgnoresTotals(t *testing.T) {
	g := worldGrid()
	st := grid.NewStats(g)
	// Points in cell interiors only: boundary candidates are all zero,
	// but totals favour S.
	for i := 0; i < 5; i++ {
		st.Add(tuple.R, geom.Point{X: 2, Y: 2})
	}
	st.Add(tuple.S, geom.Point{X: 2, Y: 2})
	strict := Build(st, LPiBStrict)
	fallback := Build(st, LPiB)
	pair := strict.Sub(1, 1)
	if got := pair.Type(grid.BL, grid.BR); got != tuple.R {
		t.Fatalf("strict tie should resolve to R, got %v", got)
	}
	if got := fallback.Sub(1, 1).Type(grid.BL, grid.BR); got != tuple.S {
		t.Fatalf("fallback should use totals and pick S, got %v", got)
	}
}
