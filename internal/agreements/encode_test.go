package agreements

import (
	"bytes"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

func buildRandomGraph(t *testing.T, seed int64) *Graph {
	t.Helper()
	g := grid.New(geom.Rect{MinX: -2, MinY: 3, MaxX: 14, MaxY: 19}, 1, 2)
	st := grid.NewStats(g)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 3000; i++ {
		st.Add(tuple.Set(rng.Intn(2)), geom.Point{
			X: -2 + rng.Float64()*16, Y: 3 + rng.Float64()*16,
		})
	}
	return Build(st, LPiB)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	gr := buildRandomGraph(t, 1)
	var buf bytes.Buffer
	if err := gr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != gr.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize promised %d", buf.Len(), gr.EncodedSize())
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Policy != gr.Policy {
		t.Fatalf("policy = %v, want %v", back.Policy, gr.Policy)
	}
	if back.Grid.NX != gr.Grid.NX || back.Grid.NY != gr.Grid.NY ||
		back.Grid.Eps != gr.Grid.Eps || back.Grid.Bounds != gr.Grid.Bounds {
		t.Fatal("grid parameters did not round trip")
	}
	for qi := range gr.Subs {
		a, b := &gr.Subs[qi], &back.Subs[qi]
		if a.Cells != b.Cells || a.Ref != b.Ref {
			t.Fatalf("quartet %d geometry mismatch", qi)
		}
		for i := grid.Pos(0); i < grid.NumPos; i++ {
			for j := grid.Pos(0); j < grid.NumPos; j++ {
				if i == j {
					continue
				}
				if a.Type(i, j) != b.Type(i, j) {
					t.Fatalf("quartet %d edge %v->%v type mismatch", qi, i, j)
				}
				if a.Marked(i, j) != b.Marked(i, j) {
					t.Fatalf("quartet %d edge %v->%v mark mismatch", qi, i, j)
				}
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	gr := buildRandomGraph(t, 2)
	var buf bytes.Buffer
	if err := gr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), full[4:]...),
		"bad version": append(append([]byte("SJAG"), 99), full[5:]...),
		"truncated":   full[:len(full)-5],
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
}

func TestEncodedSizeScalesWithGrid(t *testing.T) {
	small := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}, 1, 2)
	big := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 80, MaxY: 80}, 1, 2)
	grSmall := Build(grid.NewStats(small), LPiB)
	grBig := Build(grid.NewStats(big), LPiB)
	if grBig.EncodedSize() <= grSmall.EncodedSize() {
		t.Fatal("bigger grid must encode larger")
	}
	// 3 bytes per quartet plus a constant header.
	want := grSmall.EncodedSize() + 3*(grBig.Grid.NumQuartets()-grSmall.Grid.NumQuartets())
	if grBig.EncodedSize() != want {
		t.Fatalf("encoded size = %d, want %d", grBig.EncodedSize(), want)
	}
}
