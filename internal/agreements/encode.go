package agreements

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

// Wire format of a resolved graph of agreements, for the broadcast step
// of the paper's Algorithm 5 (line 6: the driver ships the grid and its
// agreements to every worker). After resolution only the agreement types
// and edge marks matter for point assignment — locks exist solely to
// steer Algorithm 1 and weights solely to order it — so each quartet
// costs exactly three bytes: 6 type bits (one per unordered cell pair in
// canonical order) and 12 mark bits (one per directed edge).
//
//	magic "SJAG" | version u8 | policy u8
//	bounds 4×f64 | eps f64 | res f64
//	quartet count u32 | 3 bytes per quartet
const (
	encodeMagic   = "SJAG"
	encodeVersion = 1
	// bytesPerQuartet is the per-quartet payload: types + marks.
	bytesPerQuartet = 3
	headerBytes     = 4 + 1 + 1 + 6*8 + 4
)

// EncodedSize returns the exact number of bytes Encode will write — the
// broadcast cost of the graph.
func (gr *Graph) EncodedSize() int {
	return headerBytes + bytesPerQuartet*len(gr.Subs)
}

// Encode writes the resolved graph in the wire format.
func (gr *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(encodeMagic); err != nil {
		return fmt.Errorf("agreements: encode: %w", err)
	}
	bw.WriteByte(encodeVersion)
	bw.WriteByte(byte(gr.Policy))
	g := gr.Grid
	for _, f := range []float64{g.Bounds.MinX, g.Bounds.MinY, g.Bounds.MaxX, g.Bounds.MaxY, g.Eps, g.Res} {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		bw.Write(buf[:])
	}
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(len(gr.Subs)))
	bw.Write(cnt[:])

	for qi := range gr.Subs {
		s := &gr.Subs[qi]
		var types byte
		var marks uint16
		bit := 0
		mbit := 0
		for i := grid.Pos(0); i < grid.NumPos; i++ {
			for j := i + 1; j < grid.NumPos; j++ {
				if s.typ[i][j] == tuple.S {
					types |= 1 << bit
				}
				bit++
				if s.mark[i][j] {
					marks |= 1 << mbit
				}
				mbit++
				if s.mark[j][i] {
					marks |= 1 << mbit
				}
				mbit++
			}
		}
		bw.WriteByte(types)
		var mb [2]byte
		binary.LittleEndian.PutUint16(mb[:], marks)
		bw.Write(mb[:])
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("agreements: encode: %w", err)
	}
	return nil
}

// Decode reconstructs a graph from the wire format. The returned graph
// assigns points identically to the encoded one; weights and locks are
// not part of the format (they are build-time-only state).
func Decode(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head := make([]byte, headerBytes)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("agreements: decode: %w", err)
	}
	if string(head[:4]) != encodeMagic {
		return nil, fmt.Errorf("agreements: decode: bad magic %q", head[:4])
	}
	if head[4] != encodeVersion {
		return nil, fmt.Errorf("agreements: decode: unsupported version %d", head[4])
	}
	policy := Policy(head[5])
	fs := make([]float64, 6)
	for i := range fs {
		fs[i] = math.Float64frombits(binary.LittleEndian.Uint64(head[6+8*i:]))
	}
	count := binary.LittleEndian.Uint32(head[6+48:])

	bounds := geom.Rect{MinX: fs[0], MinY: fs[1], MaxX: fs[2], MaxY: fs[3]}
	if bounds.IsEmpty() || fs[4] <= 0 || fs[5] <= 0 {
		return nil, fmt.Errorf("agreements: decode: invalid grid parameters")
	}
	g := grid.New(bounds, fs[4], fs[5])
	if int(count) != g.NumQuartets() {
		return nil, fmt.Errorf("agreements: decode: %d quartets, grid needs %d", count, g.NumQuartets())
	}

	gr := &Graph{Grid: g, Policy: policy, Subs: make([]Subgraph, count), flags: make([]byte, count)}
	body := make([]byte, bytesPerQuartet)
	for gy := 0; gy <= g.NY; gy++ {
		for gx := 0; gx <= g.NX; gx++ {
			if _, err := io.ReadFull(br, body); err != nil {
				return nil, fmt.Errorf("agreements: decode: %w", err)
			}
			s := gr.Sub(gx, gy)
			s.Ref = g.RefPoint(gx, gy)
			s.Cells = g.QuartetCells(gx, gy)
			types := body[0]
			marks := binary.LittleEndian.Uint16(body[1:])
			bit := 0
			mbit := 0
			for i := grid.Pos(0); i < grid.NumPos; i++ {
				for j := i + 1; j < grid.NumPos; j++ {
					t := tuple.R
					if types&(1<<bit) != 0 {
						t = tuple.S
					}
					bit++
					s.typ[i][j], s.typ[j][i] = t, t
					s.mark[i][j] = marks&(1<<mbit) != 0
					mbit++
					s.mark[j][i] = marks&(1<<mbit) != 0
					mbit++
				}
			}
			s.anyMark = marks != 0
			// types is the packed 6-bit pair-type vector: all-R (0) and
			// all-S (0b111111) are the uniform quartets.
			s.uniform = types == 0 || types == 0b111111
			gr.refreshFlag(gx, gy)
		}
	}
	return gr, nil
}
