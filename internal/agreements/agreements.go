// Package agreements implements the paper's graph of agreements: the
// directed, typed, weighted multigraph over grid cells that records, for
// every pair of adjacent cells, which data set (R or S) is replicated
// between them, and — per quartet subgraph — which edges are marked
// (their tail cell's duplicate-prone points are excluded from replication
// to the head cell) and which are locked (protected from marking because
// another marking relies on them for correctness).
//
// The graph is represented as one Subgraph per quartet reference point,
// exactly as the paper's second dictionary (Section 5.1). Agreement types
// are a property of the unordered cell pair and are therefore computed
// from pair-level sample statistics only, which keeps the 1–2 subgraphs
// containing a side-sharing pair consistent by construction (Def. 4.2:
// "the edges that link two vertices are always of the same type").
package agreements

import (
	"fmt"
	"slices"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

// Policy selects how agreement types are instantiated (Section 4.3).
type Policy uint8

const (
	// LPiB (least points in boundaries): the agreement type is the data
	// set with the fewest replication-candidate points between the two
	// cells.
	LPiB Policy = iota
	// DIFF: the cell with the greatest |#R - #S| determines the type,
	// which is the data set with the fewest points in that cell.
	DIFF
	// UniR replicates R everywhere: the PBSM UNI(R) baseline expressed as
	// a graph-of-agreements instance (every agreement type is R, no
	// triangle is mixed, nothing is marked).
	UniR
	// UniS is the symmetric universal instance replicating S everywhere.
	UniS
	// LPiBStrict is LPiB without the sampled-totals fallback on boundary
	// ties: ties resolve straight to R. It exists for the sampling
	// ablation (xpolicy), which quantifies how much the fallback recovers
	// under sparse sampling.
	LPiBStrict
)

// String names the policy as in the paper.
func (p Policy) String() string {
	switch p {
	case LPiB:
		return "LPiB"
	case DIFF:
		return "DIFF"
	case UniR:
		return "UNI(R)"
	case UniS:
		return "UNI(S)"
	case LPiBStrict:
		return "LPiB-strict"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// dirBetween returns the grid direction from quartet position i to j.
func dirBetween(i, j grid.Pos) grid.Dir {
	ix, iy := grid.PosCoord(i)
	jx, jy := grid.PosCoord(j)
	dx := jx - ix
	dy := jy - iy
	switch {
	case dx == 1 && dy == 0:
		return grid.DirE
	case dx == -1 && dy == 0:
		return grid.DirW
	case dx == 0 && dy == 1:
		return grid.DirN
	case dx == 0 && dy == -1:
		return grid.DirS
	case dx == 1 && dy == 1:
		return grid.DirNE
	case dx == -1 && dy == 1:
		return grid.DirNW
	case dx == 1 && dy == -1:
		return grid.DirSE
	case dx == -1 && dy == -1:
		return grid.DirSW
	default:
		panic("agreements: dirBetween called with identical positions")
	}
}

// Subgraph models the agreements among the quartet of cells around one
// grid corner: 4 vertices, 12 directed edges. Edge state is addressed by
// (tail, head) quartet positions.
type Subgraph struct {
	Ref   geom.Point       // the quartet's reference point
	Cells [grid.NumPos]int // cell ids by position; virtual cells are NoCell
	typ   [grid.NumPos][grid.NumPos]tuple.Set
	wgt   [grid.NumPos][grid.NumPos]int64
	mark  [grid.NumPos][grid.NumPos]bool
	lock  [grid.NumPos][grid.NumPos]bool
	// anyMark caches whether any directed edge is marked: the assignment
	// hot path (Algorithms 3 and 4) consults it to skip the per-edge
	// mark machinery entirely in the — overwhelmingly common — quartets
	// Algorithm 1 left untouched.
	anyMark bool
	// uniform caches whether all six pair types are equal (the common
	// value is typ[0][1]); together with anyMark it gives Algorithm 3 a
	// branch-light fast path for the dominant quartet shape.
	uniform bool
}

// Type returns the agreement type of the edge from position i to j
// (identical in both directions by construction).
func (s *Subgraph) Type(i, j grid.Pos) tuple.Set { return s.typ[i][j] }

// Weight returns the processing-cost weight of the directed edge i->j.
// Weights exist to order Algorithm 1's traversal, which uniform quartets
// skip entirely — their weights are never materialised and read as zero.
func (s *Subgraph) Weight(i, j grid.Pos) int64 { return s.wgt[i][j] }

// Marked reports whether the directed edge i->j is marked: points in the
// merged duplicate-prone area of cell i are excluded from replication to
// cell j.
func (s *Subgraph) Marked(i, j grid.Pos) bool { return s.mark[i][j] }

// Locked reports whether the directed edge i->j is locked against marking.
func (s *Subgraph) Locked(i, j grid.Pos) bool { return s.lock[i][j] }

// AnyMarked reports whether any directed edge of the subgraph is marked.
// When false, every Marked query would return false and no supplementary
// area exists in the quartet — the fast-path guard of Algorithms 3 and 4.
func (s *Subgraph) AnyMarked() bool { return s.anyMark }

// UniformType reports whether all six pair types of the quartet agree,
// and when they do, their common value. A uniform quartet has no mixed
// triangle, so Algorithm 1 marks nothing in it and every Type query
// returns the same set — the precondition of Algorithm 3's fast path.
func (s *Subgraph) UniformType() (tuple.Set, bool) { return s.typ[0][1], s.uniform }

// Graph is the full graph of agreements of a grid: one Subgraph per
// quartet reference point, indexed by grid.QuartetID.
type Graph struct {
	Grid   *grid.Grid
	Policy Policy
	Subs   []Subgraph
	// flags packs each quartet's fast-path state (uniform, uniform type,
	// any-marked) into one byte, indexed like Subs. The assignment hot
	// path probes millions of random quartets; the byte table stays
	// cache-resident where the ~200-byte Subgraph structs cannot.
	flags []byte
}

const (
	flagUniform byte = 1 << iota
	flagUniformS
	flagMarked
)

// Sub returns the subgraph of the quartet at corner (gx, gy).
func (gr *Graph) Sub(gx, gy int) *Subgraph {
	return &gr.Subs[gr.Grid.QuartetID(gx, gy)]
}

// Info returns the quartet's assignment fast-path state from the packed
// one-byte side table: the uniform pair type (meaningful only when
// uniform is true), whether all six pair types agree, and whether any
// directed edge is marked — without touching the Subgraph itself.
func (gr *Graph) Info(gx, gy int) (t tuple.Set, uniform, marked bool) {
	f := gr.flags[gr.Grid.QuartetID(gx, gy)]
	t = tuple.R
	if f&flagUniformS != 0 {
		t = tuple.S
	}
	return t, f&flagUniform != 0, f&flagMarked != 0
}

// refreshFlag re-derives the packed flags of quartet (gx, gy) from its
// resolved subgraph. Every path that mutates a subgraph's types or marks
// must call it before the graph is used for assignment.
func (gr *Graph) refreshFlag(gx, gy int) {
	s := gr.Sub(gx, gy)
	var f byte
	if s.uniform {
		f |= flagUniform
		if s.typ[0][1] == tuple.S {
			f |= flagUniformS
		}
	}
	if s.anyMark {
		f |= flagMarked
	}
	gr.flags[gr.Grid.QuartetID(gx, gy)] = f
}

// Order selects the edge traversal order of Algorithm 1. The paper
// argues for OrderPaper (Section 5.2); the alternatives exist for the
// xorder ablation.
type Order uint8

const (
	// OrderPaper visits touching-point (diagonal) edges before side
	// edges, each group in descending weight — the paper's order, which
	// prefers markings that need no supplementary replication
	// (Corollary 4.9) and defuses expensive edges first.
	OrderPaper Order = iota
	// OrderWeightOnly sorts all 12 edges by descending weight, ignoring
	// the diagonal-first rule.
	OrderWeightOnly
	// OrderIndex visits edges in fixed positional order, ignoring
	// weights entirely.
	OrderIndex
)

// String names the order.
func (o Order) String() string {
	return [...]string{"paper", "weight-only", "index"}[o]
}

// Build instantiates the graph of agreements from per-cell sample
// statistics using the given policy, then derives the duplicate-free
// assignment by running Algorithm 1 on every subgraph with the paper's
// edge ordering. The grid must satisfy the l >= 2ε precondition.
func Build(st *grid.Stats, policy Policy) *Graph {
	return BuildOrdered(st, policy, OrderPaper)
}

// BuildOrdered is Build with an explicit Algorithm 1 edge order.
func BuildOrdered(st *grid.Stats, policy Policy, order Order) *Graph {
	g := st.Grid()
	if !g.SupportsAgreements() {
		panic(fmt.Sprintf("agreements: grid resolution %v·ε violates the l >= 2ε precondition", g.Res))
	}
	gr := &Graph{Grid: g, Policy: policy, Subs: make([]Subgraph, g.NumQuartets()), flags: make([]byte, g.NumQuartets())}
	for gy := 0; gy <= g.NY; gy++ {
		for gx := 0; gx <= g.NX; gx++ {
			s := gr.Sub(gx, gy)
			s.Ref = g.RefPoint(gx, gy)
			s.Cells = g.QuartetCells(gx, gy)
			if instantiateTypes(s, st, policy) {
				// Uniform quartet: Algorithm 1 marks nothing, so the 12
				// edge-weight products would never be read — skip them.
				s.uniform = true
			} else {
				instantiateWeights(s, st)
				resolveOrdered(s, order)
			}
			gr.refreshFlag(gx, gy)
		}
	}
	return gr
}

// BuildFromTypeFunc instantiates a graph over g whose agreement types are
// supplied by typeOf — which must be symmetric in its arguments and may
// receive grid.NoCell for virtual border cells — with zero edge weights,
// then derives the duplicate-free assignment with Algorithm 1. It is used
// by property tests and ablation experiments to exercise arbitrary
// agreement configurations beyond what LPiB/DIFF would produce.
func BuildFromTypeFunc(g *grid.Grid, typeOf func(ci, cj int) tuple.Set) *Graph {
	if !g.SupportsAgreements() {
		panic(fmt.Sprintf("agreements: grid resolution %v·ε violates the l >= 2ε precondition", g.Res))
	}
	gr := &Graph{Grid: g, Subs: make([]Subgraph, g.NumQuartets()), flags: make([]byte, g.NumQuartets())}
	for gy := 0; gy <= g.NY; gy++ {
		for gx := 0; gx <= g.NX; gx++ {
			s := gr.Sub(gx, gy)
			s.Ref = g.RefPoint(gx, gy)
			s.Cells = g.QuartetCells(gx, gy)
			for i := grid.Pos(0); i < grid.NumPos; i++ {
				for j := i + 1; j < grid.NumPos; j++ {
					t := typeOf(s.Cells[i], s.Cells[j])
					s.typ[i][j], s.typ[j][i] = t, t
				}
			}
			resolve(s)
			gr.refreshFlag(gx, gy)
		}
	}
	return gr
}

// TypeForPair exposes the pair-level agreement decision to incremental
// callers: the type the policy would assign, from the statistics st, to
// the unordered pair of adjacent cells ci and cj, where dir is the
// direction from ci to cj. Either cell may be grid.NoCell. The streaming
// engine's rebalancer evaluates it against exact live histograms to detect
// when skew drift has flipped a pair's agreement.
func TypeForPair(st *grid.Stats, ci, cj int, dir grid.Dir, policy Policy) tuple.Set {
	return pairType(st, ci, cj, dir, policy)
}

// RebuildSub re-derives one quartet's subgraph in place: agreement types
// are re-read from typeOf (which must be symmetric in its arguments and
// may receive grid.NoCell), edge weights are recomputed from st (zero
// when st is nil), and the duplicate-free assignment is re-derived by
// re-running Algorithm 1's edge marking and locking. This is the
// incremental entry point of the streaming engine's rebalancer, which —
// when a pair's agreement flips — rebuilds exactly the subgraphs
// containing that pair instead of the whole graph. Callers must rebuild
// every subgraph containing a flipped pair in the same update, or the
// graph violates Def. 4.2's type consistency.
func (gr *Graph) RebuildSub(st *grid.Stats, gx, gy int, typeOf func(ci, cj int) tuple.Set) {
	s := gr.Sub(gx, gy)
	for i := grid.Pos(0); i < grid.NumPos; i++ {
		for j := i + 1; j < grid.NumPos; j++ {
			t := typeOf(s.Cells[i], s.Cells[j])
			s.typ[i][j], s.typ[j][i] = t, t
			if st != nil {
				s.wgt[i][j] = edgeWeight(st, s.Cells[i], s.Cells[j], dirBetween(i, j), t)
				s.wgt[j][i] = edgeWeight(st, s.Cells[j], s.Cells[i], dirBetween(j, i), t)
			} else {
				s.wgt[i][j], s.wgt[j][i] = 0, 0
			}
		}
	}
	s.mark = [grid.NumPos][grid.NumPos]bool{}
	s.lock = [grid.NumPos][grid.NumPos]bool{}
	s.anyMark = false
	resolve(s)
	gr.refreshFlag(gx, gy)
}

// instantiateTypes decides only the agreement types of s; weights stay
// untouched. Build uses it to defer the 12 edge-weight products until a
// quartet turns out mixed — uniform quartets skip Algorithm 1 entirely,
// so their weights are never read.
func instantiateTypes(s *Subgraph, st *grid.Stats, policy Policy) (uniform bool) {
	uniform = true
	for i := grid.Pos(0); i < grid.NumPos; i++ {
		for j := i + 1; j < grid.NumPos; j++ {
			t := pairType(st, s.Cells[i], s.Cells[j], dirBetween(i, j), policy)
			s.typ[i][j], s.typ[j][i] = t, t
			if t != s.typ[0][1] {
				uniform = false
			}
		}
	}
	return uniform
}

// instantiateWeights fills in the 12 edge weights from the already
// decided types.
func instantiateWeights(s *Subgraph, st *grid.Stats) {
	for i := grid.Pos(0); i < grid.NumPos; i++ {
		for j := i + 1; j < grid.NumPos; j++ {
			t := s.typ[i][j]
			s.wgt[i][j] = edgeWeight(st, s.Cells[i], s.Cells[j], dirBetween(i, j), t)
			s.wgt[j][i] = edgeWeight(st, s.Cells[j], s.Cells[i], dirBetween(j, i), t)
		}
	}
}

// pairType decides the agreement type between adjacent cells ci and cj
// (dir is the direction from ci to cj). It depends only on pair-level
// statistics so every subgraph containing the pair reaches the same
// decision. Ties resolve to R.
func pairType(st *grid.Stats, ci, cj int, dir grid.Dir, policy Policy) tuple.Set {
	switch policy {
	case UniR:
		return tuple.R
	case UniS:
		return tuple.S
	case LPiB, LPiBStrict:
		candR := int64(st.Candidates(ci, dir, tuple.R)) + int64(st.Candidates(cj, dir.Opposite(), tuple.R))
		candS := int64(st.Candidates(ci, dir, tuple.S)) + int64(st.Candidates(cj, dir.Opposite(), tuple.S))
		if candS != candR {
			if candS < candR {
				return tuple.S
			}
			return tuple.R
		}
		if policy == LPiBStrict {
			return tuple.R
		}
		// The sampled boundary counts tie (usually 0-0 under sparse
		// sampling): fall back to the sampled totals of the two cells,
		// the best remaining proxy for boundary density. A final tie
		// resolves to R.
		csi, csj := st.At(ci), st.At(cj)
		totR := int64(csi.Total[tuple.R]) + int64(csj.Total[tuple.R])
		totS := int64(csi.Total[tuple.S]) + int64(csj.Total[tuple.S])
		if totS < totR {
			return tuple.S
		}
		return tuple.R
	case DIFF:
		csi, csj := st.At(ci), st.At(cj)
		diffI := abs32(csi.Total[tuple.R] - csi.Total[tuple.S])
		diffJ := abs32(csj.Total[tuple.R] - csj.Total[tuple.S])
		decider := csi
		switch {
		case diffJ > diffI:
			decider = csj
		case diffJ == diffI && cj < ci:
			decider = csj // deterministic tie-break by cell id
		}
		if decider.Total[tuple.S] < decider.Total[tuple.R] {
			return tuple.S
		}
		return tuple.R
	default:
		panic(fmt.Sprintf("agreements: unknown policy %d", policy))
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// edgeWeight is the processing cost induced by replication along the
// directed edge ci->cj of agreement type t: the number of t-points of ci
// that are replication candidates toward cj, times the number of points
// of the other set in cj (Section 4.3, "Defining edge weights").
func edgeWeight(st *grid.Stats, ci, cj int, dir grid.Dir, t tuple.Set) int64 {
	return int64(st.Candidates(ci, dir, t)) * int64(st.At(cj).Total[t.Other()])
}

// quartetEdge is one directed edge of a subgraph during Algorithm 1.
type quartetEdge struct {
	i, j     grid.Pos
	diagonal bool
	weight   int64
}

// otherTwo returns the two quartet positions that are neither a nor b.
func otherTwo(a, b grid.Pos) [2]grid.Pos {
	var out [2]grid.Pos
	n := 0
	for p := grid.Pos(0); p < grid.NumPos; p++ {
		if p != a && p != b {
			out[n] = p
			n++
		}
	}
	return out
}

// resolve runs Algorithm 1 (duplicate-free graph generation) on s: it
// traverses the subgraph's edges — those linking cells with only a common
// touching point first, then the side edges, each group in descending
// weight order — and marks each eligible edge, locking the two edges whose
// head is the third triangle vertex. When both triangles containing an
// edge are eligible, the one whose to-be-locked edges have the largest
// weight sum is selected (Section 5.2).
func resolve(s *Subgraph) { resolveOrdered(s, OrderPaper) }

func resolveOrdered(s *Subgraph, order Order) {
	// Marking needs a mixed triangle: an edge of each type meeting at an
	// apex. A quartet whose six pair types are all equal cannot contain
	// one, so Algorithm 1 would mark nothing — skip the sort and the
	// traversal outright. Under sparse sampling most quartets are
	// uniform (empty regions tie to R everywhere), making this the
	// common case by a wide margin.
	uniform := true
	t0 := s.typ[0][1]
	for i := grid.Pos(0); uniform && i < grid.NumPos; i++ {
		for j := i + 1; j < grid.NumPos; j++ {
			if s.typ[i][j] != t0 {
				uniform = false
				break
			}
		}
	}
	s.uniform = uniform
	if uniform {
		return
	}

	var edgeArr [12]quartetEdge
	edges := edgeArr[:0]
	for i := grid.Pos(0); i < grid.NumPos; i++ {
		for j := grid.Pos(0); j < grid.NumPos; j++ {
			if i == j {
				continue
			}
			edges = append(edges, quartetEdge{
				i: i, j: j,
				diagonal: grid.IsDiagonalPair(i, j),
				weight:   s.wgt[i][j],
			})
		}
	}
	slices.SortStableFunc(edges, func(ea, eb quartetEdge) int {
		if order == OrderPaper && ea.diagonal != eb.diagonal {
			if ea.diagonal { // touching-point edges first
				return -1
			}
			return 1
		}
		if order != OrderIndex && ea.weight != eb.weight {
			if ea.weight > eb.weight { // descending weight
				return -1
			}
			return 1
		}
		if ea.i != eb.i { // deterministic tie-break
			return int(ea.i) - int(eb.i)
		}
		return int(ea.j) - int(eb.j)
	})

	for _, e := range edges {
		i, j := e.i, e.j
		if s.lock[i][j] || s.mark[i][j] {
			continue
		}
		// Only triangles whose three cells are all real can produce
		// duplicates (virtual cells hold no points and are never joined),
		// and marking inside a partly-virtual triangle would redirect
		// excluded points into a virtual cell — dropping them. Skip any
		// edge or triangle touching a virtual cell.
		if s.Cells[i] == grid.NoCell || s.Cells[j] == grid.NoCell {
			continue
		}
		bestK := grid.Pos(255)
		var bestLockWeight int64 = -1
		for _, k := range otherTwo(i, j) {
			if s.Cells[k] == grid.NoCell {
				continue
			}
			// Triangle (i, j, k) is eligible for marking e_ij when i is the
			// apex of a mixed triangle: e_ik shares e_ij's type, e_jk has
			// the other type, and neither e_jk nor e_ik is already marked.
			if s.typ[i][k] != s.typ[i][j] || s.typ[j][k] == s.typ[i][j] {
				continue
			}
			if s.mark[j][k] || s.mark[i][k] {
				continue
			}
			lockWeight := s.wgt[j][k] + s.wgt[i][k]
			if lockWeight > bestLockWeight {
				bestLockWeight = lockWeight
				bestK = k
			}
		}
		if bestK != grid.Pos(255) {
			s.mark[i][j] = true
			s.anyMark = true
			s.lock[j][bestK] = true
			s.lock[i][bestK] = true
		}
	}
}

// MixedTriangles returns the number of triangles of s that contain both
// agreement types — the configurations that require marking (diagnostics
// and tests).
func (s *Subgraph) MixedTriangles() int {
	n := 0
	forEachTriangle(func(a, b, c grid.Pos) {
		t1, t2, t3 := s.typ[a][b], s.typ[a][c], s.typ[b][c]
		if t1 != t2 || t2 != t3 {
			n++
		}
	})
	return n
}

// MarkedEdges returns the number of marked directed edges in s.
func (s *Subgraph) MarkedEdges() int {
	n := 0
	for i := grid.Pos(0); i < grid.NumPos; i++ {
		for j := grid.Pos(0); j < grid.NumPos; j++ {
			if i != j && s.mark[i][j] {
				n++
			}
		}
	}
	return n
}

// forEachTriangle visits the four 3-vertex subsets of a quartet.
func forEachTriangle(f func(a, b, c grid.Pos)) {
	f(grid.BL, grid.BR, grid.TL)
	f(grid.BL, grid.BR, grid.TR)
	f(grid.BL, grid.TL, grid.TR)
	f(grid.BR, grid.TL, grid.TR)
}

// SetTypesForTest overrides the agreement types of the unordered pairs of
// s and re-runs Algorithm 1, for exhaustive tests that enumerate type
// configurations. pairs is indexed like the iteration order of
// instantiate: (BL,BR), (BL,TL), (BL,TR), (BR,TL), (BR,TR), (TL,TR).
func (s *Subgraph) SetTypesForTest(types [6]tuple.Set) {
	idx := 0
	for i := grid.Pos(0); i < grid.NumPos; i++ {
		for j := i + 1; j < grid.NumPos; j++ {
			s.typ[i][j], s.typ[j][i] = types[idx], types[idx]
			idx++
		}
	}
	s.mark = [grid.NumPos][grid.NumPos]bool{}
	s.lock = [grid.NumPos][grid.NumPos]bool{}
	s.anyMark = false
	resolve(s)
}

// EstimatedCosts returns, per cell, the LPT cost estimate including
// replication: (R points native plus replicated in) × (S points native
// plus replicated in), from sample statistics and the agreement types.
// Marking is ignored — it only redirects a small fraction of points and
// this is a scheduling estimate, not an exact count.
func (gr *Graph) EstimatedCosts(st *grid.Stats) []int64 {
	g := gr.Grid
	costs := make([]int64, g.NumCells())
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			id := g.CellID(cx, cy)
			cs := st.At(id)
			est := [2]int64{int64(cs.Total[tuple.R]), int64(cs.Total[tuple.S])}
			for d := grid.Dir(0); d < grid.NumDirs; d++ {
				nb := g.Neighbor(cx, cy, d)
				if nb == grid.NoCell {
					continue
				}
				t := gr.PairType(cx, cy, d)
				// Points of type t flow from the neighbour toward this cell.
				est[t] += int64(st.Candidates(nb, d.Opposite(), t))
			}
			costs[id] = est[0] * est[1]
		}
	}
	return costs
}

// PairType returns the agreement type between cell (cx, cy) and its
// neighbour in direction d, looked up from a subgraph containing the
// pair. The neighbour must exist (be a real cell).
func (gr *Graph) PairType(cx, cy int, d grid.Dir) tuple.Set {
	g := gr.Grid
	id := g.CellID(cx, cy)
	dx, dy := d.Delta()
	nb := g.CellID(cx+dx, cy+dy)
	// The quartet at the corner between the two cells contains both; pick
	// the corner whose quartet holds the pair.
	var gx, gy int
	switch d {
	case grid.DirE, grid.DirNE, grid.DirN:
		gx, gy = cx+1, cy+1
	case grid.DirW, grid.DirSW, grid.DirS:
		gx, gy = cx, cy
	case grid.DirNW:
		gx, gy = cx, cy+1
	default: // DirSE
		gx, gy = cx+1, cy
	}
	s := gr.Sub(gx, gy)
	var pi, pj grid.Pos
	found := 0
	for p := grid.Pos(0); p < grid.NumPos; p++ {
		if s.Cells[p] == id {
			pi = p
			found++
		}
		if s.Cells[p] == nb {
			pj = p
			found++
		}
	}
	if found != 2 {
		panic("agreements: PairType picked a quartet that does not contain the pair")
	}
	return s.typ[pi][pj]
}
