package planner

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

func mkGrid() *grid.Grid {
	return grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}, 1, 2)
}

func clamp(p geom.Point) geom.Point {
	if p.X < 0 {
		p.X = 0
	} else if p.X > 40 {
		p.X = 40
	}
	if p.Y < 0 {
		p.Y = 0
	} else if p.Y > 40 {
		p.Y = 40
	}
	return p
}

// skewedSets builds R and S concentrated in different regions, the
// configuration where adaptive replication wins.
func skewedSets(rng *rand.Rand, n int) (rs, ss []tuple.Tuple) {
	for i := 0; i < n; i++ {
		rs = append(rs, tuple.Tuple{ID: int64(i), Pt: clamp(geom.Point{
			X: 8 + rng.NormFloat64()*3, Y: 20 + rng.NormFloat64()*10})})
		ss = append(ss, tuple.Tuple{ID: int64(i + 1_000_000), Pt: clamp(geom.Point{
			X: 32 + rng.NormFloat64()*3, Y: 20 + rng.NormFloat64()*10})})
	}
	return rs, ss
}

// lopsidedSets builds a tiny R against a huge S: replicating R
// universally is then near-free and can beat adaptive on shuffle.
func lopsidedSets(rng *rand.Rand, nr, ns int) (rs, ss []tuple.Tuple) {
	for i := 0; i < nr; i++ {
		rs = append(rs, tuple.Tuple{ID: int64(i), Pt: geom.Point{
			X: rng.Float64() * 40, Y: rng.Float64() * 40}})
	}
	for i := 0; i < ns; i++ {
		ss = append(ss, tuple.Tuple{ID: int64(i + 1_000_000), Pt: geom.Point{
			X: rng.Float64() * 40, Y: rng.Float64() * 40}})
	}
	return rs, ss
}

func TestPlanPicksAdaptiveOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs, ss := skewedSets(rng, 20_000)
	for _, obj := range []Objective{MinShuffle, MinReplication} {
		choice, err := Plan(mkGrid(), rs, ss, 0.2, 1, 24, obj)
		if err != nil {
			t.Fatal(err)
		}
		if choice.Strategy != Adaptive {
			t.Fatalf("%v: picked %v on skewed data, want adaptive (predictions: %+v)",
				obj, choice.Strategy, choice.Predictions)
		}
		if choice.Graph == nil || choice.Stats == nil {
			t.Fatal("choice must carry the built graph and stats")
		}
	}
}

func TestPlanPredictionsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs, ss := skewedSets(rng, 10_000)
	choice, err := Plan(mkGrid(), rs, ss, 0.5, 1, 24, MinShuffle)
	if err != nil {
		t.Fatal(err)
	}
	ad := choice.Predictions[Adaptive]
	ur := choice.Predictions[UniversalR]
	us := choice.Predictions[UniversalS]
	if ad.Replicated >= ur.Replicated || ad.Replicated >= us.Replicated {
		t.Fatalf("adaptive should predict least replication: %v vs %v / %v",
			ad.Replicated, ur.Replicated, us.Replicated)
	}
}

func TestPlanPicksCheapUniversalWhenLopsided(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 200 R points vs 50k S points, uniform: replicating R costs almost
	// nothing; the planner should never pick UNI(S).
	rs, ss := lopsidedSets(rng, 200, 50_000)
	choice, err := Plan(mkGrid(), rs, ss, 0.5, 1, 24, MinReplication)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Strategy == UniversalS {
		t.Fatalf("picked UNI(S) with |S| >> |R| (predictions: %+v)", choice.Predictions)
	}
	// And the prediction for UNI(R) must be far below UNI(S).
	if choice.Predictions[UniversalR].Replicated >= choice.Predictions[UniversalS].Replicated {
		t.Fatal("UNI(R) should predict less replication than UNI(S) here")
	}
}

func TestPlanObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rs, ss := skewedSets(rng, 5000)
	for _, obj := range []Objective{MinShuffle, MinReplication, MinMakespan} {
		choice, err := Plan(mkGrid(), rs, ss, 0.3, 1, 24, obj)
		if err != nil {
			t.Fatal(err)
		}
		if choice.Objective != obj {
			t.Fatalf("objective not recorded: %v", choice.Objective)
		}
		// The chosen strategy's score must be minimal.
		best := score(choice.Predictions[choice.Strategy], obj)
		for s, p := range choice.Predictions {
			if score(p, obj) < best {
				t.Fatalf("%v: %v scores %v below chosen %v's %v",
					obj, s, score(p, obj), choice.Strategy, best)
			}
		}
	}
}

func TestPlanValidation(t *testing.T) {
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 1, 1)
	if _, err := Plan(g, nil, nil, 0.03, 1, 24, MinShuffle); err == nil {
		t.Fatal("eps-grid resolution must be rejected")
	}
}

func TestStrategyAndObjectiveNames(t *testing.T) {
	if Adaptive.String() != "adaptive" || UniversalR.String() != "UNI(R)" || UniversalS.String() != "UNI(S)" {
		t.Fatal("strategy names broken")
	}
	if MinShuffle.String() != "min-shuffle" || MinReplication.String() != "min-replication" || MinMakespan.String() != "min-makespan" {
		t.Fatal("objective names broken")
	}
}

func TestPlanResolutionPrefersFineCells(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Overlapping dense clusters: candidate pairs per cell grow with the
	// cell area, so coarse grids are predictably more expensive.
	var rs, ss []tuple.Tuple
	for i := 0; i < 30_000; i++ {
		c := geom.Point{X: 10 + 20*float64(i%2), Y: 20}
		rs = append(rs, tuple.Tuple{ID: int64(i), Pt: clamp(geom.Point{
			X: c.X + rng.NormFloat64()*3, Y: c.Y + rng.NormFloat64()*3})})
		ss = append(ss, tuple.Tuple{ID: int64(i + 1_000_000), Pt: clamp(geom.Point{
			X: c.X + rng.NormFloat64()*3, Y: c.Y + rng.NormFloat64()*3})})
	}
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	choice, err := PlanResolution(bounds, rs, ss, 1, 0.3, 1, 24, Weights{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(choice.Costs) != 4 {
		t.Fatalf("expected 4 candidate costs, got %d", len(choice.Costs))
	}
	// Candidate pairs dominate on dense data: the finest grid must win,
	// matching the paper's Figure 15 conclusion.
	if choice.Res != 2 {
		t.Fatalf("chose %veps; Figure 15's data picks 2eps (costs: %v)", choice.Res, choice.Costs)
	}
	// Costs must be increasing in resolution for this workload.
	if choice.Costs[2] >= choice.Costs[5] {
		t.Fatalf("cost(2eps)=%v not below cost(5eps)=%v", choice.Costs[2], choice.Costs[5])
	}
}

func TestPlanResolutionValidation(t *testing.T) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if _, err := PlanResolution(bounds, nil, nil, 0, 0.1, 1, 24, Weights{}, nil); err == nil {
		t.Fatal("eps=0 must fail")
	}
	if _, err := PlanResolution(bounds, nil, nil, 1, 0.1, 1, 24, Weights{}, []float64{1.5}); err == nil {
		t.Fatal("resolution < 2 must fail")
	}
}
