// Package planner chooses a join strategy from sampled statistics before
// any data moves: it evaluates the analytical cost model of
// internal/costmodel for the adaptive assignment and both universal
// replication choices, and picks the cheapest by a configurable
// objective. It is the natural application of the cost model the paper
// lists as future work — replication decisions become a (tiny) query
// optimisation problem.
package planner

import (
	"fmt"
	"math"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/sample"
	"spatialjoin/internal/tuple"
)

// Strategy is a join strategy the planner can select.
type Strategy uint8

const (
	// Adaptive is agreement-based replication (LPiB).
	Adaptive Strategy = iota
	// UniversalR is PBSM replicating R.
	UniversalR
	// UniversalS is PBSM replicating S.
	UniversalS
)

// String names the strategy.
func (s Strategy) String() string {
	return [...]string{"adaptive", "UNI(R)", "UNI(S)"}[s]
}

// Objective ranks predicted costs.
type Objective uint8

const (
	// MinShuffle minimises predicted shuffle volume — the right choice
	// on network-bound clusters (the paper's setting).
	MinShuffle Objective = iota
	// MinReplication minimises predicted replicated objects.
	MinReplication
	// MinMakespan minimises the predicted hottest cell, the lower bound
	// on parallel join time.
	MinMakespan
)

// String names the objective.
func (o Objective) String() string {
	return [...]string{"min-shuffle", "min-replication", "min-makespan"}[o]
}

// Choice is the planner's decision with its supporting predictions.
type Choice struct {
	Strategy    Strategy
	Objective   Objective
	Predictions map[Strategy]costmodel.Prediction
	// Graph is the resolved graph of agreements, built as a side effect
	// of costing the adaptive strategy; callers picking Adaptive can
	// reuse it instead of rebuilding.
	Graph *agreements.Graph
	Stats *grid.Stats
}

// Plan samples both inputs at the given fraction, costs the three
// strategies, and picks the cheapest under the objective. tupleBytes is
// the wire size of one tuple (24 for payload-free points).
func Plan(g *grid.Grid, rs, ss []tuple.Tuple, fraction float64, seed int64, tupleBytes int, obj Objective) (*Choice, error) {
	if !g.SupportsAgreements() {
		return nil, fmt.Errorf("planner: grid resolution %v·ε cannot host agreements", g.Res)
	}
	if fraction <= 0 {
		fraction = sample.DefaultFraction
	}
	st := grid.NewStats(g)
	st.AddAll(tuple.R, sample.Bernoulli(rs, fraction, seed))
	st.AddAll(tuple.S, sample.Bernoulli(ss, fraction, seed+1))

	gr := agreements.Build(st, agreements.LPiB)
	preds := map[Strategy]costmodel.Prediction{
		Adaptive:   costmodel.Adaptive(gr, st, fraction, tupleBytes),
		UniversalR: costmodel.Universal(st, tuple.R, fraction, tupleBytes),
		UniversalS: costmodel.Universal(st, tuple.S, fraction, tupleBytes),
	}

	best := Adaptive
	bestCost := score(preds[Adaptive], obj)
	for _, s := range []Strategy{UniversalR, UniversalS} {
		if c := score(preds[s], obj); c < bestCost {
			best, bestCost = s, c
		}
	}
	return &Choice{
		Strategy:    best,
		Objective:   obj,
		Predictions: preds,
		Graph:       gr,
		Stats:       st,
	}, nil
}

// Weights convert the cost model's mixed units into one scalar cost:
// predicted nanoseconds.
type Weights struct {
	// NsPerCandidatePair is the cost of one refine comparison.
	NsPerCandidatePair float64
	// NsPerShuffledByte is the cost of moving one byte through the
	// shuffle (serialisation + network amortised).
	NsPerShuffledByte float64
}

// DefaultWeights are rough single-machine constants; they only need to
// be correct relative to each other for resolution ranking.
func DefaultWeights() Weights {
	return Weights{NsPerCandidatePair: 5, NsPerShuffledByte: 1}
}

// ResolutionChoice is the outcome of PlanResolution.
type ResolutionChoice struct {
	Res   float64             // chosen multiplier (cell side Res·ε)
	Costs map[float64]float64 // predicted ns per candidate resolution
}

// PlanResolution picks the grid resolution multiplier (from candidates,
// each >= 2) that minimises the predicted adaptive join cost — the
// "proper tuning of the number of grid partitions" of the parallel
// in-memory join literature, driven by the cost model instead of trial
// runs. An empty candidate list defaults to {2, 3, 4, 5} (the paper's
// Figure 15 sweep).
func PlanResolution(bounds geom.Rect, rs, ss []tuple.Tuple, eps, fraction float64, seed int64, tupleBytes int, w Weights, candidates []float64) (*ResolutionChoice, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("planner: eps must be positive, got %v", eps)
	}
	if len(candidates) == 0 {
		candidates = []float64{2, 3, 4, 5}
	}
	if fraction <= 0 {
		fraction = sample.DefaultFraction
	}
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	smpR := sample.Bernoulli(rs, fraction, seed)
	smpS := sample.Bernoulli(ss, fraction, seed+1)

	choice := &ResolutionChoice{Costs: make(map[float64]float64, len(candidates))}
	bestCost := math.Inf(1)
	for _, res := range candidates {
		if res < 2 {
			return nil, fmt.Errorf("planner: resolution %v violates the l >= 2ε requirement", res)
		}
		g := grid.New(bounds, eps, res)
		st := grid.NewStats(g)
		st.AddAll(tuple.R, smpR)
		st.AddAll(tuple.S, smpS)
		gr := agreements.Build(st, agreements.LPiB)
		p := costmodel.Adaptive(gr, st, fraction, tupleBytes)
		cost := p.CandidatePairs*w.NsPerCandidatePair + p.ShuffledBytes*w.NsPerShuffledByte
		choice.Costs[res] = cost
		if cost < bestCost {
			bestCost = cost
			choice.Res = res
		}
	}
	return choice, nil
}

func score(p costmodel.Prediction, obj Objective) float64 {
	switch obj {
	case MinReplication:
		return p.Replicated
	case MinMakespan:
		return p.MaxCellPairs
	default: // MinShuffle
		return p.ShuffledBytes
	}
}
