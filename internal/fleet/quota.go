package fleet

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Quota is one tenant's admission budget: a token bucket refilled at
// Rate joins per second with capacity Burst. The zero Quota means "no
// quota configured".
type Quota struct {
	Rate  float64 // tokens per second
	Burst int     // bucket capacity
}

// IsZero reports whether the quota is unset.
func (q Quota) IsZero() bool { return q.Rate == 0 && q.Burst == 0 }

func (q Quota) withDefaults() Quota {
	if q.Burst <= 0 {
		q.Burst = 1
	}
	return q
}

// ParseQuota parses the "rate:burst" flag syntax (e.g. "5:10" is five
// joins per second with bursts of ten).
func ParseQuota(s string) (Quota, error) {
	var q Quota
	if _, err := fmt.Sscanf(s, "%g:%d", &q.Rate, &q.Burst); err != nil {
		return Quota{}, fmt.Errorf("fleet: quota %q is not rate:burst", s)
	}
	if q.Rate <= 0 || q.Burst <= 0 {
		return Quota{}, fmt.Errorf("fleet: quota %q needs positive rate and burst", s)
	}
	return q, nil
}

// Quotas is a set of per-tenant token buckets: every tenant gets the
// default quota unless an override names it. A zero default with no
// override admits the tenant unconditionally.
type Quotas struct {
	def       Quota
	overrides map[string]Quota
	now       func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuotas builds a quota set. def applies to every tenant without an
// override; a zero def means unlisted tenants are not rate limited.
func NewQuotas(def Quota, overrides map[string]Quota) *Quotas {
	q := &Quotas{def: def, now: time.Now, buckets: map[string]*bucket{}}
	if len(overrides) > 0 {
		q.overrides = make(map[string]Quota, len(overrides))
		for t, o := range overrides {
			q.overrides[t] = o
		}
	}
	return q
}

// SetNow injects a clock for tests.
func (q *Quotas) SetNow(now func() time.Time) { q.now = now }

// quotaFor resolves the quota applying to tenant.
func (q *Quotas) quotaFor(tenant string) Quota {
	if o, ok := q.overrides[tenant]; ok {
		return o.withDefaults()
	}
	return q.def.withDefaults()
}

// Allow consumes one token from tenant's bucket. When the bucket is
// empty it reports false and how long until the next token arrives —
// the Retry-After a 429 should carry.
func (q *Quotas) Allow(tenant string) (bool, time.Duration) {
	if q == nil {
		return true, 0
	}
	quota := q.quotaFor(tenant)
	if quota.IsZero() || quota.Rate <= 0 {
		return true, 0
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: float64(quota.Burst), last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(float64(quota.Burst), b.tokens+dt*quota.Rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / quota.Rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Tenants returns how many tenants currently hold a bucket.
func (q *Quotas) Tenants() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
