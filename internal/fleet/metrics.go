package fleet

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"spatialjoin/internal/telem"
)

// Metrics is the router's metric set, rendered in the Prometheus text
// exposition format on the router's /metrics. Shard-level join metrics
// stay on the shards; the router reports what only it can see — routing
// decisions, fan-outs, retries, tenant admission, and handoff traffic.
type Metrics struct {
	mu   sync.Mutex
	vecs map[string]*labeledCounter
}

// labeledCounter is a counter partitioned by label values. Label values
// are stored alongside each series (never re-derived by splitting a
// joined key), so arbitrary bytes in a value — a hostile tenant header,
// say — cannot collide two series or corrupt the exposition.
type labeledCounter struct {
	name, help string
	labels     []string
	series     map[string]*series
}

type series struct {
	values []string
	v      atomic.Int64
}

// seriesKey length-prefixes each value rather than joining with a
// separator byte: a tenant header may contain any byte, and a plain
// join would alias ("a\xffb", "c") with ("a", "b\xffc").
func seriesKey(labelValues []string) string {
	var b strings.Builder
	for _, v := range labelValues {
		fmt.Fprintf(&b, "%d:%s", len(v), v)
	}
	return b.String()
}

// NewMetrics builds the router metric set.
func NewMetrics() *Metrics {
	m := &Metrics{vecs: map[string]*labeledCounter{}}
	for _, def := range []struct {
		name, help string
		labels     []string
	}{
		{"sjoin_router_requests_total", "Requests handled by the router, by endpoint and status code.", []string{"endpoint", "code"}},
		{"sjoin_router_proxied_total", "Requests proxied to a shard, by shard.", []string{"shard"}},
		{"sjoin_router_joins_total", "Joins routed, by mode (local, streamed, fanout).", []string{"mode"}},
		{"sjoin_router_retries_total", "Shard requests retried after a transport failure, by shard.", []string{"shard"}},
		{"sjoin_router_tenant_rejected_total", "Joins rejected by per-tenant admission, by tenant.", []string{"tenant"}},
		{"sjoin_router_shard_deaths_total", "Shards declared dead by the heartbeat monitor, by shard.", []string{"shard"}},
		{"sjoin_router_migrations_total", "Dataset copies moved by ring changes or repair, by reason (rebalance, repair, mirror).", []string{"reason"}},
		{"sjoin_router_handoff_bytes_total", "Colfile bytes shipped between shards by handoff, by reason.", []string{"reason"}},
		{"sjoin_router_warm_joins_total", "Plan-cache warming joins replayed after a migration.", nil},
	} {
		m.vecs[def.name] = &labeledCounter{name: def.name, help: def.help, labels: def.labels, series: map[string]*series{}}
	}
	return m
}

// Add increments one series of the named counter.
func (m *Metrics) Add(name string, n int64, labelValues ...string) {
	m.mu.Lock()
	c, ok := m.vecs[name]
	if !ok {
		m.mu.Unlock()
		panic("fleet: unknown metric " + name)
	}
	if len(labelValues) != len(c.labels) {
		m.mu.Unlock()
		panic(fmt.Sprintf("fleet: metric %s: %d label values for %d labels", name, len(labelValues), len(c.labels)))
	}
	key := seriesKey(labelValues)
	s, ok := c.series[key]
	if !ok {
		s = &series{values: append([]string(nil), labelValues...)}
		c.series[key] = s
	}
	m.mu.Unlock()
	s.v.Add(n)
}

// Inc adds one.
func (m *Metrics) Inc(name string, labelValues ...string) { m.Add(name, 1, labelValues...) }

// Value returns one series' count (0 when never touched).
func (m *Metrics) Value(name string, labelValues ...string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.vecs[name]
	if !ok {
		return 0
	}
	if s, ok := c.series[seriesKey(labelValues)]; ok {
		return s.v.Load()
	}
	return 0
}

var routerLabelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// Render writes the metric set in the Prometheus text format.
func (m *Metrics) Render(w io.Writer) {
	m.mu.Lock()
	names := make([]string, 0, len(m.vecs))
	for name := range m.vecs {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		c := m.vecs[name]
		out = append(out, fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n", c.name, c.help, c.name))
		keys := make([]string, 0, len(c.series))
		for k := range c.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(c.labels) == 0 {
			var v int64
			if s, ok := c.series[""]; ok {
				v = s.v.Load()
			}
			out = append(out, fmt.Sprintf("%s %d\n", c.name, v))
			continue
		}
		for _, k := range keys {
			s := c.series[k]
			parts := make([]string, len(c.labels))
			for i, ln := range c.labels {
				parts[i] = ln + `="` + routerLabelEscaper.Replace(s.values[i]) + `"`
			}
			out = append(out, fmt.Sprintf("%s{%s} %d\n", c.name, strings.Join(parts, ","), s.v.Load()))
		}
	}
	m.mu.Unlock()
	for _, l := range out {
		io.WriteString(w, l)
	}
	telem.RenderRuntime(w)
}
