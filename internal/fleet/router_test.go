// In-process fleet end-to-end tests: real sjoind services behind
// httptest listeners, a Router in front, and a standalone single
// service as the correctness oracle — the fleet must serve the exact
// single-daemon API with byte-identical join results.
package fleet_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialjoin/internal/fleet"
	"spatialjoin/internal/service"
)

// testFleet is N shards plus a router, all in-process.
type testFleet struct {
	t       *testing.T
	rt      *fleet.Router
	routerS *httptest.Server
	shards  map[string]*httptest.Server
	svcs    map[string]*service.Service
}

func newTestFleet(t *testing.T, n int, cfg fleet.Config) *testFleet {
	t.Helper()
	tf := &testFleet{
		t:      t,
		shards: map[string]*httptest.Server{},
		svcs:   map[string]*service.Service{},
	}
	urls := map[string]string{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("s%d", i+1)
		svc := service.New(service.Config{PlanCacheSize: 16})
		srv := httptest.NewServer(svc.Handler())
		tf.shards[id] = srv
		tf.svcs[id] = svc
		urls[id] = srv.URL
	}
	if cfg.HeartbeatInterval == 0 {
		// Liveness discovery in these tests goes through the request
		// path (markDead on transport error), not the prober.
		cfg.HeartbeatInterval = time.Hour
	}
	tf.rt = fleet.NewRouter(cfg, urls)
	tf.routerS = httptest.NewServer(tf.rt.Handler())
	t.Cleanup(func() {
		tf.routerS.Close()
		tf.rt.Close()
		for _, s := range tf.shards {
			s.Close()
		}
	})
	return tf
}

// do issues a request against the router with an optional tenant.
func (tf *testFleet) do(method, path, tenant, body string) (*http.Response, map[string]any) {
	tf.t.Helper()
	req, err := http.NewRequest(method, tf.routerS.URL+path, strings.NewReader(body))
	if err != nil {
		tf.t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tf.t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp, m
}

// generate places a server-side generated dataset through the router.
func (tf *testFleet) generate(tenant, name string, n, seed int) {
	tf.t.Helper()
	resp, m := tf.do(http.MethodPost,
		fmt.Sprintf("/v1/datasets?name=%s&generate=gaussian&n=%d&seed=%d", name, n, seed), tenant, "")
	if resp.StatusCode != http.StatusCreated {
		tf.t.Fatalf("generate %s: status %d: %v", name, resp.StatusCode, m)
	}
}

// oracle computes the single-process reference answer for a join of
// two generated datasets.
func oracle(t *testing.T, nR, seedR, nS, seedS int, joinBody string) map[string]any {
	t.Helper()
	svc := service.New(service.Config{PlanCacheSize: 16})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	for _, d := range []struct {
		name    string
		n, seed int
	}{{"r", nR, seedR}, {"s", nS, seedS}} {
		resp, err := http.Post(fmt.Sprintf("%s/v1/datasets?name=%s&generate=gaussian&n=%d&seed=%d",
			srv.URL, d.name, d.n, d.seed), "", nil)
		if err != nil || resp.StatusCode != http.StatusCreated {
			t.Fatalf("oracle upload %s failed: %v / %v", d.name, err, resp)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(srv.URL+"/v1/join", "application/json", strings.NewReader(joinBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle join: status %d: %v", resp.StatusCode, m)
	}
	return m
}

// joinVia joins r,s through the router and requires 200.
func (tf *testFleet) joinVia(tenant, body string) map[string]any {
	tf.t.Helper()
	resp, m := tf.do(http.MethodPost, "/v1/join", tenant, body)
	if resp.StatusCode != http.StatusOK {
		tf.t.Fatalf("router join: status %d: %v", resp.StatusCode, m)
	}
	return m
}

// pickPair scans generated datasets for one whose primary owner
// relation (same/different shard) matches want.
func pickPair(tf *testFleet, names []string, wantSame bool) (string, string) {
	for i := 0; i < len(names); i++ {
		for j := 0; j < len(names); j++ {
			if i == j {
				continue
			}
			oi, oj := tf.rt.Owners("", names[i]), tf.rt.Owners("", names[j])
			if len(oi) == 0 || len(oj) == 0 {
				continue
			}
			if (oi[0] == oj[0]) == wantSame {
				return names[i], names[j]
			}
		}
	}
	tf.t.Fatalf("no dataset pair with same-owner=%v among %v", wantSame, names)
	return "", ""
}

const joinShape = `{"r":"%s","s":"%s","eps":0.4,"algorithm":"lpib"}`

// seeds maps a test dataset name back to its generator arguments so the
// oracle can rebuild it.
var seeds = map[string][2]int{}

func setupDatasets(tf *testFleet, count, points int) []string {
	names := make([]string, count)
	for i := range names {
		names[i] = fmt.Sprintf("ds%d", i)
		seeds[names[i]] = [2]int{points, 100 + i}
		tf.generate("", names[i], points, 100+i)
	}
	return names
}

func checkAgainstOracle(t *testing.T, tf *testFleet, r, s string) map[string]any {
	t.Helper()
	body := fmt.Sprintf(joinShape, r, s)
	got := tf.joinVia("", body)
	want := oracle(t, seeds[r][0], seeds[r][1], seeds[s][0], seeds[s][1],
		fmt.Sprintf(joinShape, "r", "s"))
	if got["checksum"] != want["checksum"] || got["results"] != want["results"] {
		t.Fatalf("fleet join %s⋈%s = (%v, %v results), single-process = (%v, %v results)",
			r, s, got["checksum"], got["results"], want["checksum"], want["results"])
	}
	return got
}

func TestRouterLocalAndStreamedJoins(t *testing.T) {
	tf := newTestFleet(t, 3, fleet.Config{Replicas: 1})
	names := setupDatasets(tf, 8, 500)

	// Same-shard pair: plain proxy.
	r, s := pickPair(tf, names, true)
	checkAgainstOracle(t, tf, r, s)
	if tf.rt.Metrics.Value("sjoin_router_joins_total", "local") == 0 {
		t.Error("same-shard join did not count as mode=local")
	}

	// Cross-shard pair: the smaller side streams to the larger's shard.
	r, s = pickPair(tf, names, false)
	checkAgainstOracle(t, tf, r, s)
	if tf.rt.Metrics.Value("sjoin_router_joins_total", "streamed") == 0 {
		t.Error("cross-shard join did not count as mode=streamed")
	}

	// Repeating the streamed join reuses the mirror (one migration).
	mirrors := tf.rt.Metrics.Value("sjoin_router_migrations_total", "mirror")
	checkAgainstOracle(t, tf, r, s)
	if again := tf.rt.Metrics.Value("sjoin_router_migrations_total", "mirror"); again != mirrors {
		t.Errorf("repeat streamed join re-shipped the mirror: %d -> %d", mirrors, again)
	}

	// The router's list endpoint serves the client-visible catalog.
	resp, _ := tf.do(http.MethodGet, "/v1/datasets", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
}

func TestRouterFanoutJoin(t *testing.T) {
	tf := newTestFleet(t, 3, fleet.Config{Replicas: 1, FanoutMinPoints: 1})
	names := setupDatasets(tf, 8, 500)
	r, s := pickPair(tf, names, false)

	// Count and checksum merge bit-for-bit across the strips.
	checkAgainstOracle(t, tf, r, s)
	if tf.rt.Metrics.Value("sjoin_router_joins_total", "fanout") == 0 {
		t.Fatal("cross-shard join did not fan out")
	}

	// Collected pairs are the same set the single process produces.
	body := fmt.Sprintf(`{"r":"%s","s":"%s","eps":0.4,"algorithm":"lpib","collect":true}`, r, s)
	got := tf.joinVia("", body)
	want := oracle(t, seeds[r][0], seeds[r][1], seeds[s][0], seeds[s][1],
		`{"r":"r","s":"s","eps":0.4,"algorithm":"lpib","collect":true}`)
	if fmt.Sprint(sortedPairs(got["pairs"])) != fmt.Sprint(sortedPairs(want["pairs"])) {
		t.Fatal("fan-out pair set differs from the single-process join")
	}
}

func sortedPairs(v any) []string {
	arr, _ := v.([]any)
	out := make([]string, 0, len(arr))
	for _, p := range arr {
		out = append(out, fmt.Sprint(p))
	}
	sort.Strings(out)
	return out
}

func TestRouterTenantIsolation(t *testing.T) {
	tf := newTestFleet(t, 2, fleet.Config{
		TenantOverrides: map[string]fleet.Quota{"noisy": {Rate: 1, Burst: 2}},
	})
	// The same dataset name per tenant: placement keys are tenant-aware
	// and the copies are independent.
	tf.generate("noisy", "pts", 300, 1)
	tf.generate("quiet", "pts", 300, 2)

	// Tenants see only their own catalog.
	resp, _ := tf.do(http.MethodGet, "/v1/datasets", "noisy", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}

	body := fmt.Sprintf(joinShape, "pts", "pts")
	// Burst admits two joins, the third 429s with Retry-After.
	for i := 0; i < 2; i++ {
		resp, m := tf.do(http.MethodPost, "/v1/join", "noisy", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("noisy join %d: status %d: %v", i, resp.StatusCode, m)
		}
	}
	resp, m := tf.do(http.MethodPost, "/v1/join", "noisy", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota join: status %d: %v", resp.StatusCode, m)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}
	if tf.rt.Metrics.Value("sjoin_router_tenant_rejected_total", "noisy") == 0 {
		t.Error("tenant rejection not counted")
	}

	// The throttled tenant does not affect anyone else.
	resp, m = tf.do(http.MethodPost, "/v1/join", "quiet", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("quiet join during noisy throttle: status %d: %v", resp.StatusCode, m)
	}
}

func TestRouterShardDeathRetry(t *testing.T) {
	tf := newTestFleet(t, 3, fleet.Config{Replicas: 2})
	names := setupDatasets(tf, 6, 400)
	r, s := pickPair(tf, names, true)

	before := checkAgainstOracle(t, tf, r, s)

	// Kill the primary serving this join. Replication factor 2 means
	// the next ring owner already holds both datasets.
	primary := tf.rt.Owners("", r)[0]
	tf.shards[primary].Close()

	// The next join hits the dead shard, marks it dead, and the retry
	// resolves against the replicas — same bytes, no client-visible
	// failure.
	after := checkAgainstOracle(t, tf, r, s)
	if after["checksum"] != before["checksum"] {
		t.Fatalf("post-death checksum %v differs from pre-death %v", after["checksum"], before["checksum"])
	}
	if tf.rt.Metrics.Value("sjoin_router_retries_total", primary) == 0 {
		t.Error("shard death did not register a retry")
	}
	if tf.rt.Metrics.Value("sjoin_router_shard_deaths_total", primary) == 0 {
		t.Error("shard death not counted")
	}

	// The ring endpoint reflects the death.
	var info fleet.RingInfo
	resp, err := http.Get(tf.routerS.URL + "/v1/fleet/ring")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	for _, sh := range info.Shards {
		if sh.ID == primary && sh.Alive {
			t.Error("ring info still lists the dead shard as alive")
		}
	}
}

func TestRouterShardJoinLeaveMigration(t *testing.T) {
	tf := newTestFleet(t, 2, fleet.Config{Replicas: 2})
	names := setupDatasets(tf, 4, 400)
	r, s := names[0], names[1]
	before := checkAgainstOracle(t, tf, r, s)

	// Continuous traffic across the membership changes: no request may
	// fail while datasets migrate.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		body := fmt.Sprintf(joinShape, r, s)
		for {
			select {
			case <-stop:
				return
			default:
			}
			req, _ := http.NewRequest(http.MethodPost, tf.routerS.URL+"/v1/join", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err.Error()
				return
			}
			var m map[string]any
			json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d: %v", resp.StatusCode, m)
				return
			}
			if m["checksum"] != before["checksum"] {
				errs <- fmt.Sprintf("checksum drifted to %v", m["checksum"])
				return
			}
		}
	}()

	// A third shard joins: pre-copy, ring swap, prune, warm.
	svc := service.New(service.Config{PlanCacheSize: 16})
	srv := httptest.NewServer(svc.Handler())
	tf.shards["s3"], tf.svcs["s3"] = srv, svc
	resp, m := tf.do(http.MethodPost, "/v1/fleet/shards", "", fmt.Sprintf(`{"id":"s3","url":%q}`, srv.URL))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard join: status %d: %v", resp.StatusCode, m)
	}

	// And the original first shard leaves gracefully: its datasets move
	// via the dstore handoff before the ring swap.
	resp, m = tf.do(http.MethodDelete, "/v1/fleet/shards/s1", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard leave: status %d: %v", resp.StatusCode, m)
	}

	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatalf("in-flight request failed during migration: %s", e)
	default:
	}

	if tf.rt.Metrics.Value("sjoin_router_migrations_total", "rebalance") == 0 {
		t.Error("membership change moved no datasets")
	}

	// s1 is gone from placement; results still match the oracle.
	for _, n := range names {
		for _, owner := range tf.rt.Owners("", n) {
			if owner == "s1" {
				t.Fatalf("dataset %s still placed on the departed shard", n)
			}
		}
	}
	checkAgainstOracle(t, tf, r, s)
	checkAgainstOracle(t, tf, names[2], names[3])
}

func TestRouterRejectsBadInputs(t *testing.T) {
	tf := newTestFleet(t, 1, fleet.Config{})
	for _, tc := range []struct {
		method, path, tenant, body string
		want                       int
	}{
		{"POST", "/v1/datasets?name=~sneaky", "", "", http.StatusBadRequest},
		{"POST", "/v1/datasets?name=t~x", "", "", http.StatusBadRequest},
		{"POST", "/v1/datasets?name=ok", "bad tenant!", "", http.StatusBadRequest},
		{"POST", "/v1/join", "", `{"r":"nope","s":"nope","eps":0.1}`, http.StatusNotFound},
		{"POST", "/v1/join", "", `{"r":"a","s":"b","eps":0.1,"bogus":1}`, http.StatusBadRequest},
		{"DELETE", "/v1/datasets/nope", "", "", http.StatusNotFound},
	} {
		resp, _ := tf.do(tc.method, tc.path, tc.tenant, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}
