package fleet_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"spatialjoin/internal/fleet"
	"spatialjoin/internal/service"
	"spatialjoin/internal/telem"
)

func getOverview(tf *testFleet, path string) (int, fleet.OverviewResponse) {
	tf.t.Helper()
	res, err := http.Get(tf.routerS.URL + path)
	if err != nil {
		tf.t.Fatal(err)
	}
	defer res.Body.Close()
	var ov fleet.OverviewResponse
	json.NewDecoder(res.Body).Decode(&ov)
	return res.StatusCode, ov
}

func TestFleetOverviewAggregation(t *testing.T) {
	tf := newTestFleet(t, 3, fleet.Config{})
	names := setupDatasets(tf, 4, 600)
	for i := 0; i < 3; i++ {
		tf.joinVia("", fmt.Sprintf(joinShape, names[i], names[i+1]))
	}

	code, ov := getOverview(tf, "/v1/fleet/overview")
	if code != http.StatusOK {
		t.Fatalf("overview status %d", code)
	}
	if len(ov.Shards) != 3 {
		t.Fatalf("overview shards = %d, want 3", len(ov.Shards))
	}
	var shardObs, aggObs int64
	countLatency := func(dumps []telem.SeriesDump) int64 {
		var n int64
		for _, d := range dumps {
			if d.Name == telem.SeriesJoinLatency && d.Res == "1s" {
				for _, b := range d.Buckets {
					n += b.Count
				}
			}
		}
		return n
	}
	for _, row := range ov.Shards {
		if row.Err != "" {
			t.Fatalf("shard %s telemetry error: %s", row.ID, row.Err)
		}
		shardObs += countLatency(row.Series)
	}
	aggObs = countLatency(ov.Series)
	// Fan-out legs may run extra shard-side joins, so >= the 3 routed
	// joins, and the aggregate must account for exactly the per-shard sum.
	if shardObs < 3 || aggObs != shardObs {
		t.Fatalf("latency observations: shards %d (want >= 3), aggregate %d", shardObs, aggObs)
	}

	found := false
	for _, st := range ov.SLOs {
		if st.Tenant == "" && st.Total >= 3 && st.P99Millis > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("aggregated SLOs missing interpolated tenant row: %+v", ov.SLOs)
	}

	if code, _ := getOverview(tf, "/v1/fleet/overview?window=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad window status %d, want 400", code)
	}
	if code, win := getOverview(tf, "/v1/fleet/overview?window=5m"); code != http.StatusOK || len(win.Series) == 0 {
		t.Fatalf("windowed overview: status %d, series %d", code, len(win.Series))
	}
}

func TestFleetOverviewAnomalyAndDeadShard(t *testing.T) {
	// Threshold 0.5 means every join's straggler ratio (>= 1 by
	// construction) raises an event.
	tf, shardSrv := newTraceFleet(t, service.Config{PlanCacheSize: 16, StragglerThreshold: 0.5}, fleet.Config{})
	tf.generate("", "r", 400, 1)
	tf.generate("", "s", 400, 2)
	routedJoinID(tf)

	code, ov := getOverview(tf, "/v1/fleet/overview")
	if code != http.StatusOK {
		t.Fatalf("overview status %d", code)
	}
	var spikes int
	for _, ev := range ov.Events {
		if ev.Kind == telem.EventStragglerSpike && ev.Shard == "s1" {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatalf("no straggler events in overview: %+v", ov.Events)
	}

	// A dead shard degrades to an error row without failing the view.
	shardSrv.Close()
	code, ov = getOverview(tf, "/v1/fleet/overview")
	if code != http.StatusOK {
		t.Fatalf("overview with dead shard: status %d", code)
	}
	if len(ov.Shards) != 1 || ov.Shards[0].Err == "" {
		t.Fatalf("dead shard row = %+v, want error set", ov.Shards)
	}
	if len(ov.Series) != 0 || len(ov.SLOs) != 0 {
		t.Fatalf("dead-shard aggregates should be empty: %d series, %d slos", len(ov.Series), len(ov.SLOs))
	}
}
