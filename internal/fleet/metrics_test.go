package fleet

import (
	"strings"
	"testing"
)

func TestMetricsHostileLabels(t *testing.T) {
	m := NewMetrics()
	m.Inc("sjoin_router_tenant_rejected_total", `quote"ten\ant`+"\n")
	m.Add("sjoin_router_tenant_rejected_total", 2, "plain")
	// Separator bytes in values must not alias series.
	m.Inc("sjoin_router_requests_total", "a\xffb", "c")
	m.Add("sjoin_router_requests_total", 5, "a", "b\xffc")
	if got := m.Value("sjoin_router_requests_total", "a\xffb", "c"); got != 1 {
		t.Errorf("aliased series: got %d, want 1", got)
	}
	m.Inc("sjoin_router_warm_joins_total")

	var sb strings.Builder
	m.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, `tenant="quote\"ten\\ant\n"`) {
		t.Errorf("hostile tenant not escaped:\n%s", out)
	}
	if !strings.Contains(out, `tenant="plain"`) || !strings.Contains(out, "sjoin_router_warm_joins_total 1") {
		t.Errorf("expected series missing:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "\x00") {
			t.Errorf("raw control bytes in exposition line %q", line)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("unknown metric name did not panic")
		}
	}()
	m.Inc("sjoin_router_no_such_metric")
}
