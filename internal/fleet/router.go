package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the router. Zero values select sensible defaults.
type Config struct {
	// VNodes is the number of ring points per shard; default 64.
	VNodes int
	// Replicas is how many shards hold each dataset; default 2 (capped
	// at the fleet size). The primary serves joins; the others make a
	// shard death survivable without data loss.
	Replicas int
	// HeartbeatInterval is the /healthz probe period; default 500ms.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the tolerated consecutive probe failures
	// before a shard is declared dead; default 5. Mirrors the cluster
	// coordinator's worker-liveness policy.
	HeartbeatMisses int
	// MaxRetries bounds per-request attempts across shard failures;
	// default 3.
	MaxRetries int
	// TenantQuota is the default per-tenant admission budget; the zero
	// value disables tenant admission for tenants without an override.
	TenantQuota Quota
	// TenantOverrides names per-tenant budgets.
	TenantOverrides map[string]Quota
	// FanoutMinPoints: when both join inputs have at least this many
	// points and live on different shards, the join is split by grid
	// region (vertical strips) and fanned out to both owners, merging
	// the partial results. 0 disables fan-out (cross-shard joins then
	// always stream the smaller input to the larger's shard).
	FanoutMinPoints int
	// WarmJoins caps how many recent join shapes are replayed against a
	// dataset's new owner after a migration, warming its plan cache;
	// default 4.
	WarmJoins int
	// MaxUploadBytes bounds dataset upload bodies; default 64 MiB.
	MaxUploadBytes int64
	// TraceRing bounds how many routed-join traces the router retains
	// for GET /v1/joins/{id}/trace; default 64.
	TraceRing int
	// Client is the HTTP client for shard calls; a 30s-timeout default
	// is used when nil.
	Client *http.Client
	// Log receives router events; slog.Default() when nil.
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 5
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.WarmJoins <= 0 {
		c.WarmJoins = 4
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.TraceRing <= 0 {
		c.TraceRing = routerTraceRing
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// shard is one sjoind the router fans out to.
type shard struct {
	id  string
	url string // base URL, no trailing slash

	alive  atomic.Bool
	misses atomic.Int32
}

// catEntry is the router's record of one placed dataset.
type catEntry struct {
	Tenant string
	Name   string
	Points int
	Ver    int64 // router-assigned version, bumped per PUT
	// Holders are shard ids currently known to hold a copy.
	Holders map[string]bool
	// Info is the shard's DatasetInfo response with the name mapped
	// back to the client-visible one; served by the router's list.
	Info map[string]any
}

// warmJoin is one remembered join shape, replayed to warm the plan
// cache of a dataset's new owner after migration.
type warmJoin struct {
	tenant string
	wire   joinWire
}

// Router is the fleet front door: one logical sjoind over N shards.
type Router struct {
	cfg     Config
	quotas  *Quotas
	Metrics *Metrics
	log     *slog.Logger

	// mu guards the ring. Request handlers hold it for reading across
	// the whole proxy call, so a ring swap (which takes the write lock)
	// naturally quiesces: it waits for in-flight requests resolved
	// against the old ring and no request ever observes a half-migrated
	// placement.
	mu   sync.RWMutex
	ring *Ring

	// catMu guards the shard set, catalog, mirrors and warm history
	// (short holds only).
	catMu   sync.Mutex
	shards  map[string]*shard
	catalog map[string]*catEntry // Key(tenant, name) -> entry
	mirrors map[string]string    // shardID+"\xff"+datasetKey -> mirror name on that shard
	recent  map[string][]warmJoin

	traceMu    sync.Mutex
	traces     map[int64]*routerTrace
	traceOrder []int64
	nextJoinID int64

	hbStop chan struct{}
	hbDone chan struct{}
}

// NewRouter builds a router over the given shards (id -> base URL) and
// starts its heartbeat monitor. Close stops the monitor.
func NewRouter(cfg Config, shardURLs map[string]string) *Router {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:     cfg,
		quotas:  NewQuotas(cfg.TenantQuota, cfg.TenantOverrides),
		Metrics: NewMetrics(),
		log:     cfg.Log,
		ring:    NewRing(cfg.VNodes),
		shards:  map[string]*shard{},
		catalog: map[string]*catEntry{},
		mirrors: map[string]string{},
		recent:  map[string][]warmJoin{},
		traces:  map[int64]*routerTrace{},
		hbStop:  make(chan struct{}),
		hbDone:  make(chan struct{}),
	}
	for id, url := range shardURLs {
		sh := &shard{id: id, url: strings.TrimRight(url, "/")}
		sh.alive.Store(true)
		rt.shards[id] = sh
		rt.ring = rt.ring.With(id)
	}
	go rt.heartbeatLoop()
	return rt
}

// Close stops the heartbeat monitor.
func (rt *Router) Close() {
	close(rt.hbStop)
	<-rt.hbDone
}

// shardByID returns a registered shard.
func (rt *Router) shardByID(id string) *shard {
	rt.catMu.Lock()
	defer rt.catMu.Unlock()
	return rt.shards[id]
}

// liveOwners resolves the shards that should hold key right now: the
// first cfg.Replicas live members in ring order. Callers hold rt.mu
// for reading.
func (rt *Router) liveOwners(key string) []*shard {
	return rt.liveOwnersIn(rt.ring, key)
}

// liveOwnersIn is liveOwners against an explicit ring (a candidate ring
// during migration planning, or a snapshot taken without holding rt.mu).
func (rt *Router) liveOwnersIn(ring *Ring, key string) []*shard {
	ids := ring.Owners(key, ring.Len())
	rt.catMu.Lock()
	defer rt.catMu.Unlock()
	out := make([]*shard, 0, rt.cfg.Replicas)
	for _, id := range ids {
		sh := rt.shards[id]
		if sh != nil && sh.alive.Load() {
			out = append(out, sh)
			if len(out) == rt.cfg.Replicas {
				break
			}
		}
	}
	return out
}

// serveTarget picks the shard a read of key should go to: the first
// live owner that holds a copy, falling back to any live holder (a
// placement mid-repair). Callers hold rt.mu for reading.
func (rt *Router) serveTarget(key string) *shard {
	owners := rt.liveOwners(key)
	rt.catMu.Lock()
	ent := rt.catalog[key]
	var holders map[string]bool
	if ent != nil {
		holders = ent.Holders
	}
	all := make([]*shard, 0, len(rt.shards))
	for _, sh := range rt.shards {
		all = append(all, sh)
	}
	rt.catMu.Unlock()
	if holders == nil {
		if len(owners) > 0 {
			return owners[0]
		}
		return nil
	}
	for _, sh := range owners {
		if holders[sh.id] {
			return sh
		}
	}
	for _, sh := range all {
		if holders[sh.id] && sh.alive.Load() {
			return sh
		}
	}
	return nil
}

// markDead flips a shard to dead after a transport failure and kicks
// off replica repair in the background.
func (rt *Router) markDead(sh *shard, cause error) {
	if !sh.alive.CompareAndSwap(true, false) {
		return
	}
	rt.log.Warn("fleet: shard declared dead", "shard", sh.id, "cause", cause)
	rt.Metrics.Inc("sjoin_router_shard_deaths_total", sh.id)
	go rt.repair()
}

// heartbeatLoop probes every shard's /healthz on the configured
// interval — the same beacon/misses liveness policy the cluster
// coordinator applies to workers.
func (rt *Router) heartbeatLoop() {
	defer close(rt.hbDone)
	tick := time.NewTicker(rt.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.hbStop:
			return
		case <-tick.C:
		}
		rt.catMu.Lock()
		shards := make([]*shard, 0, len(rt.shards))
		for _, sh := range rt.shards {
			shards = append(shards, sh)
		}
		rt.catMu.Unlock()
		var wg sync.WaitGroup
		for _, sh := range shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HeartbeatInterval)
				defer cancel()
				req, _ := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+"/healthz", nil)
				resp, err := rt.cfg.Client.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				// A draining shard answers 503: it is alive but leaving;
				// treat it like a miss so traffic shifts to replicas.
				if err != nil || resp.StatusCode != http.StatusOK {
					if n := sh.misses.Add(1); int(n) >= rt.cfg.HeartbeatMisses {
						rt.markDead(sh, fmt.Errorf("missed %d heartbeats", n))
					}
					return
				}
				sh.misses.Store(0)
				if sh.alive.CompareAndSwap(false, true) {
					rt.log.Info("fleet: shard back alive", "shard", sh.id)
				}
			}(sh)
		}
		wg.Wait()
	}
}

// ---- tenant and name mapping ----

// ValidTenant reports whether a tenant id is routable: up to 64 bytes
// of [A-Za-z0-9._:-], or empty (the anonymous tenant). The restriction
// keeps placement keys and shard-side dataset names unambiguous.
func ValidTenant(t string) bool {
	if len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == ':' || c == '-':
		default:
			return false
		}
	}
	return true
}

// shardDatasetName maps a client-visible dataset to its shard-side
// name. Tenants are folded into the name so shards need no tenant
// awareness of their own.
func shardDatasetName(tenant, name string) string {
	if tenant == "" {
		return name
	}
	return "t~" + tenant + "~" + name
}

// validDatasetName rejects names that would collide with router-managed
// namespaces ("~…" mirrors, "t~…" tenant folding).
func validDatasetName(name string) error {
	if name == "" {
		return fmt.Errorf("fleet: dataset name must not be empty")
	}
	if strings.HasPrefix(name, "~") || strings.HasPrefix(name, "t~") {
		return fmt.Errorf("fleet: dataset name %q uses a reserved prefix", name)
	}
	if strings.ContainsRune(name, '\x00') {
		return fmt.Errorf("fleet: dataset name must not contain NUL")
	}
	return nil
}

func tenantOf(r *http.Request) string { return r.Header.Get("X-Tenant") }

// ---- HTTP plumbing ----

type errorWire struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorWire{Error: err.Error()})
	return code
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
	return code
}

// shardGet GETs path on sh and returns the body on 200.
func (rt *Router) shardGet(ctx context.Context, sh *shard, path string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.url+path, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, nil, &transportError{sh: sh, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, &transportError{sh: sh, err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("fleet: shard %s: GET %s: status %d: %s", sh.id, path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, resp.Header, nil
}

// shardPost POSTs body to path on sh and returns the response body and
// status.
func (rt *Router) shardPost(ctx context.Context, sh *shard, path, contentType string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.url+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, &transportError{sh: sh, err: err}
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, &transportError{sh: sh, err: err}
	}
	return resp.StatusCode, out, nil
}

// transportError marks a shard-level connectivity failure — the retry
// trigger, as opposed to an application-level error the shard returned.
type transportError struct {
	sh  *shard
	err error
}

func (e *transportError) Error() string {
	return fmt.Sprintf("fleet: shard %s unreachable: %v", e.sh.id, e.err)
}

func (e *transportError) Unwrap() error { return e.err }

// RingInfo describes the fleet for GET /v1/fleet/ring.
type RingInfo struct {
	VNodes   int             `json:"vnodes"`
	Replicas int             `json:"replicas"`
	Shards   []RingShardInfo `json:"shards"`
	Datasets []RingPlacement `json:"datasets"`
}

// RingShardInfo is one shard's row in RingInfo.
type RingShardInfo struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
}

// RingPlacement is one dataset's placement row in RingInfo.
type RingPlacement struct {
	Tenant  string   `json:"tenant,omitempty"`
	Name    string   `json:"name"`
	Points  int      `json:"points"`
	Owners  []string `json:"owners"`
	Holders []string `json:"holders"`
}

// Info snapshots the fleet state.
func (rt *Router) Info() RingInfo {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	info := RingInfo{VNodes: rt.cfg.VNodes, Replicas: rt.cfg.Replicas}
	rt.catMu.Lock()
	ids := make([]string, 0, len(rt.shards))
	for id := range rt.shards {
		ids = append(ids, id)
	}
	keys := make([]string, 0, len(rt.catalog))
	for k := range rt.catalog {
		keys = append(keys, k)
	}
	rt.catMu.Unlock()
	sortStrings(ids)
	sortStrings(keys)
	for _, id := range ids {
		sh := rt.shardByID(id)
		info.Shards = append(info.Shards, RingShardInfo{ID: sh.id, URL: sh.url, Alive: sh.alive.Load()})
	}
	for _, k := range keys {
		rt.catMu.Lock()
		ent := rt.catalog[k]
		var holders []string
		if ent != nil {
			for id := range ent.Holders {
				holders = append(holders, id)
			}
		}
		rt.catMu.Unlock()
		if ent == nil {
			continue
		}
		sortStrings(holders)
		var owners []string
		for _, sh := range rt.liveOwners(k) {
			owners = append(owners, sh.id)
		}
		info.Datasets = append(info.Datasets, RingPlacement{
			Tenant: ent.Tenant, Name: ent.Name, Points: ent.Points,
			Owners: owners, Holders: holders,
		})
	}
	return info
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Owners exposes the live placement of (tenant, name) — used by tests
// and the ring endpoint.
func (rt *Router) Owners(tenant, name string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var out []string
	for _, sh := range rt.liveOwners(Key(tenant, name)) {
		out = append(out, sh.id)
	}
	return out
}

// Handler returns the router's HTTP API — the sjoind surface plus the
// fleet admin endpoints:
//
//	POST   /v1/datasets?name=N        place + replicate a dataset
//	GET    /v1/datasets               this tenant's datasets
//	DELETE /v1/datasets/{name}        drop a dataset fleet-wide
//	POST   /v1/join                   route (and fan out) a join
//	POST   /v1/join/count             count-only fast path
//	GET    /v1/joins/{id}/trace       router-stitched span tree
//	GET    /v1/fleet/ring             shard + placement state
//	GET    /v1/fleet/overview         per-shard + aggregated telemetry
//	POST   /v1/fleet/shards           {"id":..,"url":..} join a shard
//	DELETE /v1/fleet/shards/{id}      graceful shard leave
//	GET    /healthz                   200 while >= 1 shard lives
//	GET    /metrics                   router metrics
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", rt.instrument("datasets_put", rt.handlePutDataset))
	mux.HandleFunc("GET /v1/datasets", rt.instrument("datasets_list", rt.handleListDatasets))
	mux.HandleFunc("DELETE /v1/datasets/{name}", rt.instrument("datasets_delete", rt.handleDeleteDataset))
	mux.HandleFunc("POST /v1/join", rt.instrument("join", func(w http.ResponseWriter, r *http.Request) (int, error) {
		return rt.handleJoin(w, r, true)
	}))
	mux.HandleFunc("POST /v1/join/count", rt.instrument("join_count", func(w http.ResponseWriter, r *http.Request) (int, error) {
		return rt.handleJoin(w, r, false)
	}))
	mux.HandleFunc("GET /v1/joins/{id}/trace", rt.instrument("join_trace", rt.handleJoinTrace))
	mux.HandleFunc("GET /v1/fleet/ring", rt.instrument("ring", func(w http.ResponseWriter, r *http.Request) (int, error) {
		return writeJSON(w, http.StatusOK, rt.Info()), nil
	}))
	mux.HandleFunc("GET /v1/fleet/overview", rt.instrument("overview", rt.handleOverview))
	mux.HandleFunc("POST /v1/fleet/shards", rt.instrument("shard_join", rt.handleAddShard))
	mux.HandleFunc("DELETE /v1/fleet/shards/{id}", rt.instrument("shard_leave", rt.handleRemoveShard))
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		rt.Metrics.Render(w)
	})
	return mux
}

func (rt *Router) instrument(endpoint string, h func(http.ResponseWriter, *http.Request) (int, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		code, err := h(w, r)
		if err != nil {
			code = writeError(w, code, err)
		}
		rt.Metrics.Inc("sjoin_router_requests_total", endpoint, strconv.Itoa(code))
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.catMu.Lock()
	live := 0
	for _, sh := range rt.shards {
		if sh.alive.Load() {
			live++
		}
	}
	rt.catMu.Unlock()
	if live == 0 {
		http.Error(w, "no live shards", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handlePutDataset places a dataset: the body (or server-side generate
// query) is shipped to every owner shard, the catalog is updated, and
// stale cross-shard mirrors of the previous version are dropped.
func (rt *Router) handlePutDataset(w http.ResponseWriter, r *http.Request) (int, error) {
	tenant := tenantOf(r)
	if !ValidTenant(tenant) {
		return http.StatusBadRequest, fmt.Errorf("fleet: invalid tenant id")
	}
	name := r.URL.Query().Get("name")
	if err := validDatasetName(name); err != nil {
		return http.StatusBadRequest, err
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxUploadBytes))
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("fleet: reading upload: %w", err)
	}
	key := Key(tenant, name)
	sname := shardDatasetName(tenant, name)

	rt.mu.RLock()
	defer rt.mu.RUnlock()
	owners := rt.liveOwners(key)
	if len(owners) == 0 {
		return http.StatusServiceUnavailable, fmt.Errorf("fleet: no live shards")
	}
	q := r.URL.Query()
	q.Set("name", sname)
	path := "/v1/datasets?" + q.Encode()

	var primary map[string]any
	holders := map[string]bool{}
	for i, sh := range owners {
		code, resp, err := rt.shardPost(r.Context(), sh, path, r.Header.Get("Content-Type"), body)
		if err != nil {
			var te *transportError
			if isTransport(err, &te) {
				rt.markDead(sh, err)
			}
			if i == 0 {
				return http.StatusBadGateway, fmt.Errorf("fleet: placing %q on %s: %w", name, sh.id, err)
			}
			rt.log.Warn("fleet: replica placement failed", "dataset", name, "shard", sh.id, "err", err)
			continue
		}
		if code != http.StatusCreated {
			if i == 0 {
				var ew errorWire
				json.Unmarshal(resp, &ew)
				return code, fmt.Errorf("fleet: shard %s rejected dataset: %s", sh.id, ew.Error)
			}
			continue
		}
		holders[sh.id] = true
		if i == 0 {
			if err := json.Unmarshal(resp, &primary); err != nil {
				return http.StatusBadGateway, fmt.Errorf("fleet: bad shard response: %w", err)
			}
		}
		rt.Metrics.Inc("sjoin_router_proxied_total", sh.id)
	}
	points, _ := primary["points"].(float64)
	primary["name"] = name

	rt.catMu.Lock()
	ent := rt.catalog[key]
	var ver int64 = 1
	if ent != nil {
		ver = ent.Ver + 1
	}
	rt.catalog[key] = &catEntry{
		Tenant: tenant, Name: name, Points: int(points), Ver: ver,
		Holders: holders, Info: primary,
	}
	stale := rt.staleMirrorsLocked(key)
	rt.catMu.Unlock()
	rt.dropMirrors(stale)
	return writeJSON(w, http.StatusCreated, primary), nil
}

// staleMirrorsLocked collects and forgets every mirror of key (full
// copies and region strips alike); callers hold catMu and delete the
// returned shard-side names afterwards. Mirror map keys are
// shardID \xff datasetKey \xff regionTag.
func (rt *Router) staleMirrorsLocked(key string) map[*shard]string {
	out := map[*shard]string{}
	for mk, mname := range rt.mirrors {
		id, rest, ok := strings.Cut(mk, "\xff")
		if !ok {
			continue
		}
		k, _, ok := strings.Cut(rest, "\xff")
		if !ok || k != key {
			continue
		}
		if sh := rt.shards[id]; sh != nil {
			out[sh] = mname
		}
		delete(rt.mirrors, mk)
	}
	return out
}

// dropMirrors best-effort deletes mirror datasets from their shards.
func (rt *Router) dropMirrors(stale map[*shard]string) {
	for sh, mname := range stale {
		if !sh.alive.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		req, _ := http.NewRequestWithContext(ctx, http.MethodDelete, sh.url+"/v1/datasets/"+mname, nil)
		if resp, err := rt.cfg.Client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
	}
}

func isTransport(err error, te **transportError) bool {
	for err != nil {
		if e, ok := err.(*transportError); ok {
			*te = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func (rt *Router) handleListDatasets(w http.ResponseWriter, r *http.Request) (int, error) {
	tenant := tenantOf(r)
	if !ValidTenant(tenant) {
		return http.StatusBadRequest, fmt.Errorf("fleet: invalid tenant id")
	}
	rt.catMu.Lock()
	var names []string
	byName := map[string]map[string]any{}
	for _, ent := range rt.catalog {
		if ent.Tenant != tenant {
			continue
		}
		names = append(names, ent.Name)
		byName[ent.Name] = ent.Info
	}
	rt.catMu.Unlock()
	sortStrings(names)
	out := make([]map[string]any, 0, len(names))
	for _, n := range names {
		out = append(out, byName[n])
	}
	return writeJSON(w, http.StatusOK, out), nil
}

func (rt *Router) handleDeleteDataset(w http.ResponseWriter, r *http.Request) (int, error) {
	tenant := tenantOf(r)
	if !ValidTenant(tenant) {
		return http.StatusBadRequest, fmt.Errorf("fleet: invalid tenant id")
	}
	name := r.PathValue("name")
	key := Key(tenant, name)
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	rt.catMu.Lock()
	ent := rt.catalog[key]
	if ent == nil {
		rt.catMu.Unlock()
		return http.StatusNotFound, fmt.Errorf("fleet: unknown dataset %q", name)
	}
	delete(rt.catalog, key)
	delete(rt.recent, key)
	var targets []*shard
	for id := range ent.Holders {
		if sh := rt.shards[id]; sh != nil && sh.alive.Load() {
			targets = append(targets, sh)
		}
	}
	stale := rt.staleMirrorsLocked(key)
	rt.catMu.Unlock()

	sname := shardDatasetName(tenant, name)
	for _, sh := range targets {
		req, _ := http.NewRequestWithContext(r.Context(), http.MethodDelete, sh.url+"/v1/datasets/"+sname, nil)
		if resp, err := rt.cfg.Client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	rt.dropMirrors(stale)
	return writeJSON(w, http.StatusOK, map[string]string{"deleted": name}), nil
}
