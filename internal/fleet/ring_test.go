package fleet

import (
	"fmt"
	"testing"
)

func TestRingDeterminism(t *testing.T) {
	a := NewRing(64).With("s1").With("s2").With("s3")
	// Insertion order must not matter: every router instance has to
	// agree on placement regardless of how it learned the members.
	b := NewRing(64).With("s3").With("s1").With("s2")
	for i := 0; i < 1000; i++ {
		k := Key("tenant", fmt.Sprintf("ds-%d", i))
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("key %q: owner %q vs %q for different insertion orders", k, ao, bo)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(64)
	shards := []string{"s1", "s2", "s3", "s4"}
	for _, s := range shards {
		r = r.With(s)
	}
	const n = 8000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[r.Owner(Key("", fmt.Sprintf("ds-%d", i)))]++
	}
	// With 64 vnodes per shard the split should be roughly even; accept
	// a generous band so the test is not sensitive to the hash details.
	for _, s := range shards {
		got := counts[s]
		if got < n/len(shards)/2 || got > n*2/len(shards) {
			t.Errorf("shard %s owns %d of %d keys, expected near %d", s, got, n, n/len(shards))
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(16).With("s1").With("s2").With("s3")
	for i := 0; i < 200; i++ {
		owners := r.Owners(Key("t", fmt.Sprintf("d%d", i)), 2)
		if len(owners) != 2 {
			t.Fatalf("want 2 owners, got %v", owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("owners must be distinct shards, got %v", owners)
		}
	}
	// Asking for more replicas than members yields all members.
	if got := len(r.Owners("k", 10)); got != 3 {
		t.Fatalf("Owners(k, 10) on a 3-ring returned %d shards", got)
	}
}

func TestRingBoundedMovement(t *testing.T) {
	base := NewRing(64).With("s1").With("s2").With("s3")
	grown := base.With("s4")
	const n = 4000
	moved := 0
	for i := 0; i < n; i++ {
		k := Key("", fmt.Sprintf("ds-%d", i))
		before, after := base.Owner(k), grown.Owner(k)
		if before != after {
			moved++
			// Consistent hashing moves keys only TO the new member.
			if after != "s4" {
				t.Fatalf("key %q moved %s -> %s, not to the joining shard", k, before, after)
			}
		}
	}
	// Expect ~1/4 of keys to move; far more means the ring reshuffles.
	if moved > n/2 {
		t.Errorf("adding one shard to three moved %d/%d keys", moved, n)
	}
	if moved == 0 {
		t.Error("adding a shard moved no keys at all")
	}

	// Removing the shard again restores the original placement exactly.
	shrunk := grown.Without("s4")
	for i := 0; i < n; i++ {
		k := Key("", fmt.Sprintf("ds-%d", i))
		if base.Owner(k) != shrunk.Owner(k) {
			t.Fatalf("key %q: remove did not restore placement", k)
		}
	}
}

func TestRingImmutability(t *testing.T) {
	r := NewRing(8).With("s1")
	_ = r.With("s2")
	if r.Len() != 1 || r.Has("s2") {
		t.Fatal("With mutated the receiver")
	}
	if r.With("s1") != r {
		t.Error("adding an existing member should return the receiver")
	}
	if r.Without("nope") != r {
		t.Error("removing a non-member should return the receiver")
	}
}

func TestRingTenantAwareKeys(t *testing.T) {
	// The same dataset name under different tenants must hash
	// independently — tenants sharing names should not all pile onto
	// one shard.
	r := NewRing(64).With("s1").With("s2").With("s3").With("s4")
	owners := map[string]bool{}
	for i := 0; i < 64; i++ {
		owners[r.Owner(Key(fmt.Sprintf("tenant-%d", i), "points"))] = true
	}
	if len(owners) < 2 {
		t.Errorf("64 tenants' same-named datasets all landed on one shard")
	}
}
