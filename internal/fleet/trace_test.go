package fleet

import (
	"testing"

	"spatialjoin/internal/obs"
)

// leg builds a shard-side span forest whose ids deliberately overlap
// with every other leg's (1, 2, 3, ...), as real shards mint them
// independently.
func testLegTree(worker string) []*obs.Node {
	return []*obs.Node{
		{ID: 1, Name: "join", Children: []*obs.Node{
			{ID: 2, Parent: 1, Name: "build", Worker: worker},
			{ID: 3, Parent: 1, Name: "probe"},
		}},
	}
}

// TestRebaseThreeLegIDCollisionSafety grafts three shard trees with
// identical span ids under one router tree and checks the per-leg
// rebase keeps every id unique and every parent edge intact.
func TestRebaseThreeLegIDCollisionSafety(t *testing.T) {
	tr := obs.New()
	root := tr.Start(0, "fleet.join")
	var proxies []uint64
	legs := []string{"s1", "s2", "s3"}
	for range legs {
		sp := tr.Start(root.SpanID(), "fleet.proxy")
		proxies = append(proxies, uint64(sp.SpanID()))
		sp.End()
	}
	root.End()
	tree := tr.Tree()

	for i, shardID := range legs {
		wire := testLegTree("w0")
		rebase(wire, uint64(i+1)<<32, shardID)
		if !obs.Graft(tree, proxies[i], wire) {
			t.Fatalf("graft under proxy %d failed", proxies[i])
		}
	}

	seen := map[uint64]string{}
	var walk func(nodes []*obs.Node, parent uint64)
	walk = func(nodes []*obs.Node, parent uint64) {
		for _, n := range nodes {
			if where, dup := seen[n.ID]; dup {
				t.Fatalf("span id %d appears twice (%s and %s)", n.ID, where, n.Worker)
			}
			seen[n.ID] = n.Worker
			if n.Parent != 0 && n.Parent != parent && parent != 0 {
				t.Fatalf("span %d parent %d, want %d", n.ID, n.Parent, parent)
			}
			walk(n.Children, n.ID)
		}
	}
	walk(tree, 0)

	// 1 root + 3 proxies + 3 legs x 3 spans.
	if got := countNodes(tree); got != 13 {
		t.Fatalf("stitched span count = %d, want 13", got)
	}
	// Worker lanes are shard-qualified so lanes from different shards
	// cannot merge.
	var workers []string
	var collect func(nodes []*obs.Node)
	collect = func(nodes []*obs.Node) {
		for _, n := range nodes {
			if n.Worker != "" {
				workers = append(workers, n.Worker)
			}
			collect(n.Children)
		}
	}
	collect(tree)
	want := map[string]bool{"s1/w0": false, "s2/w0": false, "s3/w0": false, "s1": false, "s2": false, "s3": false}
	for _, w := range workers {
		if _, ok := want[w]; !ok {
			t.Fatalf("unexpected worker lane %q (all: %v)", w, workers)
		}
		want[w] = true
	}
	for w, ok := range want {
		if !ok {
			t.Fatalf("worker lane %q missing (all: %v)", w, workers)
		}
	}
}

// TestRebaseIsIdempotentPerLeg checks two different legs never share an
// id even when their shard trees are deep.
func TestRebaseDeepTreesStayDisjoint(t *testing.T) {
	a := testLegTree("w0")
	a[0].Children[0].Children = []*obs.Node{{ID: 4, Parent: 2, Name: "repl", Worker: "w1"}}
	b := testLegTree("w0")
	b[0].Children[0].Children = []*obs.Node{{ID: 4, Parent: 2, Name: "repl", Worker: "w1"}}
	rebase(a, uint64(1)<<32, "sA")
	rebase(b, uint64(2)<<32, "sB")
	ids := map[uint64]bool{}
	var walk func(nodes []*obs.Node)
	walk = func(nodes []*obs.Node) {
		for _, n := range nodes {
			if ids[n.ID] {
				t.Fatalf("id %d shared across legs", n.ID)
			}
			ids[n.ID] = true
			walk(n.Children)
		}
	}
	walk(a)
	walk(b)
	if len(ids) != 8 {
		t.Fatalf("distinct ids = %d, want 8", len(ids))
	}
}
