package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// copyDataset ships one dataset to dst via the shards' handoff
// endpoints: the columnar file plus the planner's skew history for the
// dataset, so the new owner starts with both the data and the learned
// skew statistics. The source is any live holder. No-op when dst
// already holds a copy.
func (rt *Router) copyDataset(ctx context.Context, key string, dst *shard, reason string) error {
	rt.catMu.Lock()
	ent := rt.catalog[key]
	if ent == nil || ent.Holders[dst.id] {
		rt.catMu.Unlock()
		return nil
	}
	var src *shard
	for id := range ent.Holders {
		if sh := rt.shards[id]; sh != nil && sh.alive.Load() && sh != dst {
			src = sh
			break
		}
	}
	tenant, name, ver := ent.Tenant, ent.Name, ent.Ver
	rt.catMu.Unlock()
	if src == nil {
		return fmt.Errorf("fleet: no live holder of %q to copy from", name)
	}

	sname := shardDatasetName(tenant, name)
	blob, _, err := rt.shardGet(ctx, src, "/v1/admin/handoff/"+sname)
	if err != nil {
		return err
	}
	code, out, err := rt.shardPost(ctx, dst, "/v1/admin/handoff?name="+url.QueryEscape(sname), "application/octet-stream", blob)
	if err != nil {
		return err
	}
	if code != http.StatusCreated {
		var ew errorWire
		json.Unmarshal(out, &ew)
		return fmt.Errorf("fleet: shard %s rejected handoff of %q: %s", dst.id, name, ew.Error)
	}
	rt.Metrics.Inc("sjoin_router_migrations_total", reason)
	rt.Metrics.Add("sjoin_router_handoff_bytes_total", int64(len(blob)), reason)
	rt.shipSkew(ctx, src, dst, sname)

	rt.catMu.Lock()
	if cur := rt.catalog[key]; cur != nil && cur.Ver == ver {
		cur.Holders[dst.id] = true
	}
	rt.catMu.Unlock()
	rt.log.Info("fleet: dataset copied", "dataset", name, "from", src.id, "to", dst.id, "reason", reason, "bytes", len(blob))
	return nil
}

// shipSkew forwards the source shard's persisted skew observations for
// sname to dst, seeding the new owner's planner history. Best-effort:
// in-memory shards have no history and reject the endpoints with 400.
func (rt *Router) shipSkew(ctx context.Context, src, dst *shard, sname string) {
	hist, _, err := rt.shardGet(ctx, src, "/v1/planner/history")
	if err != nil {
		return
	}
	var samples []map[string]any
	if json.Unmarshal(hist, &samples) != nil {
		return
	}
	var keep []map[string]any
	for _, s := range samples {
		if s["r"] == sname || s["s"] == sname {
			keep = append(keep, s)
		}
	}
	if len(keep) == 0 {
		return
	}
	body, err := json.Marshal(keep)
	if err != nil {
		return
	}
	rt.shardPost(ctx, dst, "/v1/admin/skew", "application/json", body)
}

// repair restores the replica count after a shard death: every dataset
// whose live-owner set lost a member is re-replicated onto the next
// ring owner from a surviving holder.
func (rt *Router) repair() {
	rt.mu.RLock()
	ring := rt.ring
	rt.mu.RUnlock()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, key := range rt.datasetKeys() {
		for _, dst := range rt.liveOwnersIn(ring, key) {
			if err := rt.copyDataset(ctx, key, dst, "repair"); err != nil {
				rt.log.Warn("fleet: repair copy failed", "key", key, "shard", dst.id, "err", err)
			}
		}
	}
}

func (rt *Router) datasetKeys() []string {
	rt.catMu.Lock()
	defer rt.catMu.Unlock()
	keys := make([]string, 0, len(rt.catalog))
	for k := range rt.catalog {
		keys = append(keys, k)
	}
	return keys
}

// AddShard joins a shard into the fleet: health-check, pre-copy every
// dataset the new ring places on it, atomically swap the ring (waiting
// out in-flight requests resolved against the old one), drop now
// -surplus copies, and warm the mover's plan caches by replaying recent
// join shapes. In-flight requests never fail: until the swap they are
// served by the old owners, after it by the new ones, and both hold the
// data throughout the window.
func (rt *Router) AddShard(ctx context.Context, id, shardURL string) error {
	if id == "" || shardURL == "" {
		return fmt.Errorf("fleet: shard join needs id and url")
	}
	rt.catMu.Lock()
	if _, dup := rt.shards[id]; dup {
		rt.catMu.Unlock()
		return fmt.Errorf("fleet: shard %q already in the fleet", id)
	}
	rt.catMu.Unlock()

	sh := &shard{id: id, url: trimSlash(shardURL)}
	if _, _, err := rt.shardGet(ctx, sh, "/healthz"); err != nil {
		return fmt.Errorf("fleet: shard %q failed pre-join health check: %w", id, err)
	}
	sh.alive.Store(true)
	rt.catMu.Lock()
	rt.shards[id] = sh
	rt.catMu.Unlock()

	rt.mu.RLock()
	newRing := rt.ring.With(id)
	rt.mu.RUnlock()

	moved, err := rt.preCopy(ctx, newRing, "rebalance")
	if err != nil {
		rt.catMu.Lock()
		delete(rt.shards, id)
		rt.catMu.Unlock()
		return err
	}

	rt.mu.Lock()
	rt.ring = newRing
	rt.mu.Unlock()
	rt.log.Info("fleet: shard joined", "shard", id, "datasets_moved", len(moved))

	rt.pruneSurplus(newRing)
	rt.warm(ctx, moved)
	return nil
}

// RemoveShard gracefully removes a shard: every dataset it owns is
// copied to its new owners first (the leaving shard itself is a valid
// copy source — this is the dstore handoff path), then the ring swap
// retargets traffic, then the shard is forgotten.
func (rt *Router) RemoveShard(ctx context.Context, id string) error {
	rt.catMu.Lock()
	sh := rt.shards[id]
	rt.catMu.Unlock()
	if sh == nil {
		return fmt.Errorf("fleet: unknown shard %q", id)
	}
	rt.mu.RLock()
	newRing := rt.ring.Without(id)
	rt.mu.RUnlock()
	if newRing.Len() == 0 {
		return fmt.Errorf("fleet: cannot remove the last shard")
	}

	moved, err := rt.preCopy(ctx, newRing, "rebalance")
	if err != nil {
		return err
	}

	rt.mu.Lock()
	rt.ring = newRing
	rt.mu.Unlock()

	rt.catMu.Lock()
	delete(rt.shards, id)
	for _, ent := range rt.catalog {
		delete(ent.Holders, id)
	}
	for mk := range rt.mirrors {
		if sid, _, ok := strings.Cut(mk, "\xff"); ok && sid == id {
			delete(rt.mirrors, mk)
		}
	}
	rt.catMu.Unlock()
	rt.log.Info("fleet: shard left", "shard", id, "datasets_moved", len(moved))
	rt.warm(ctx, moved)
	return nil
}

// preCopy replicates every dataset onto the owners the candidate ring
// assigns it, before that ring is installed. Returns the keys that
// gained a holder.
func (rt *Router) preCopy(ctx context.Context, ring *Ring, reason string) ([]string, error) {
	var moved []string
	for _, key := range rt.datasetKeys() {
		for _, dst := range rt.liveOwnersIn(ring, key) {
			rt.catMu.Lock()
			ent := rt.catalog[key]
			have := ent != nil && ent.Holders[dst.id]
			rt.catMu.Unlock()
			if have {
				continue
			}
			if err := rt.copyDataset(ctx, key, dst, reason); err != nil {
				return nil, fmt.Errorf("fleet: migrating %s to %s: %w", keyName(key), dst.id, err)
			}
			moved = append(moved, key)
		}
	}
	return moved, nil
}

// pruneSurplus drops dataset copies from shards the installed ring no
// longer places them on, keeping fleet memory proportional to the
// replica factor.
func (rt *Router) pruneSurplus(ring *Ring) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, key := range rt.datasetKeys() {
		want := map[string]bool{}
		for _, sh := range rt.liveOwnersIn(ring, key) {
			want[sh.id] = true
		}
		rt.catMu.Lock()
		ent := rt.catalog[key]
		if ent == nil {
			rt.catMu.Unlock()
			continue
		}
		var drop []*shard
		for id := range ent.Holders {
			if !want[id] {
				if sh := rt.shards[id]; sh != nil && sh.alive.Load() {
					drop = append(drop, sh)
				}
			}
		}
		sname := shardDatasetName(ent.Tenant, ent.Name)
		for _, sh := range drop {
			delete(ent.Holders, sh.id)
		}
		rt.catMu.Unlock()
		for _, sh := range drop {
			req, _ := http.NewRequestWithContext(ctx, http.MethodDelete, sh.url+"/v1/datasets/"+sname, nil)
			if resp, err := rt.cfg.Client.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}
}

// warm replays the recent join shapes touching the moved datasets
// against their (possibly new) primary owners, count-only, so the first
// real query after a migration hits a built plan instead of paying the
// full construction pipeline.
func (rt *Router) warm(ctx context.Context, movedKeys []string) {
	seen := map[string]bool{}
	for _, key := range movedKeys {
		if seen[key] {
			continue
		}
		seen[key] = true
		rt.catMu.Lock()
		hist := append([]warmJoin(nil), rt.recent[key]...)
		rt.catMu.Unlock()
		for _, wj := range hist {
			rt.mu.RLock()
			tR := rt.serveTarget(Key(wj.tenant, wj.wire.R))
			tS := rt.serveTarget(Key(wj.tenant, wj.wire.S))
			rt.mu.RUnlock()
			if tR == nil || tR != tS {
				continue // cross-shard shapes re-mirror lazily on first use
			}
			sw := wj.wire
			sw.R = shardDatasetName(wj.tenant, wj.wire.R)
			sw.S = shardDatasetName(wj.tenant, wj.wire.S)
			body, err := json.Marshal(sw)
			if err != nil {
				continue
			}
			if code, _, err := rt.shardPost(ctx, tR, "/v1/join/count", "application/json", body); err == nil && code == http.StatusOK {
				rt.Metrics.Inc("sjoin_router_warm_joins_total")
			}
		}
	}
}

func (rt *Router) handleAddShard(w http.ResponseWriter, r *http.Request) (int, error) {
	var body struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body); err != nil {
		return http.StatusBadRequest, fmt.Errorf("fleet: bad shard join body: %w", err)
	}
	if err := rt.AddShard(r.Context(), body.ID, body.URL); err != nil {
		return http.StatusBadGateway, err
	}
	return writeJSON(w, http.StatusOK, rt.Info()), nil
}

func (rt *Router) handleRemoveShard(w http.ResponseWriter, r *http.Request) (int, error) {
	if err := rt.RemoveShard(r.Context(), r.PathValue("id")); err != nil {
		return http.StatusBadGateway, err
	}
	return writeJSON(w, http.StatusOK, rt.Info()), nil
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// keyName renders a placement key back to tenant/name for error text.
func keyName(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			if i == 0 {
				return key[1:]
			}
			return key[:i] + "/" + key[i+1:]
		}
	}
	return key
}
