// Fleet observability: GET /v1/fleet/overview fans out to every live
// shard's telemetry endpoints and returns the per-shard views alongside
// fleet-wide aggregates — merged rollup series, cross-shard SLOs
// re-interpolated from the summed latency histograms, and a time-sorted
// union of recent anomaly events.

package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"spatialjoin/internal/telem"
)

// parseWindowDuration validates a ?window= value before it is fanned
// out to the shards.
func parseWindowDuration(win string) (time.Duration, error) {
	d, err := time.ParseDuration(win)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("fleet: bad window %q (want a positive duration like 5m)", win)
	}
	return d, nil
}

// overviewEventCap bounds the aggregated event list in an overview
// response; each shard already bounds its own log.
const overviewEventCap = 256

// ShardTelemetry is one shard's slice of the fleet overview. Err is set
// (and the data fields empty) when the shard was alive in the ring but
// its telemetry fetch failed.
type ShardTelemetry struct {
	ID     string             `json:"id"`
	URL    string             `json:"url"`
	Alive  bool               `json:"alive"`
	Err    string             `json:"error,omitempty"`
	Series []telem.SeriesDump `json:"series,omitempty"`
	SLOs   []telem.SLOStatus  `json:"slos,omitempty"`
	Events []telem.Event      `json:"events,omitempty"`
}

// OverviewResponse is the payload of GET /v1/fleet/overview.
type OverviewResponse struct {
	Shards []ShardTelemetry `json:"shards"`
	// Series is the fleet-wide merge of every shard's rollup series:
	// same (name, key, res) buckets summed across shards.
	Series []telem.SeriesDump `json:"series"`
	// SLOs re-interpolates per-tenant latency percentiles from the
	// summed cross-shard histograms.
	SLOs []telem.SLOStatus `json:"slos"`
	// Events unions the shards' anomaly logs, oldest first, each tagged
	// with its origin shard in Series ("shard/series").
	Events []OverviewEvent `json:"events"`
}

// OverviewEvent is a shard anomaly event tagged with its origin.
type OverviewEvent struct {
	Shard string `json:"shard"`
	telem.Event
}

// Overview collects telemetry from every shard. Fetches run in
// parallel; a dead or failing shard contributes an error row instead of
// failing the whole view.
func (rt *Router) Overview(ctx context.Context, window string) OverviewResponse {
	rt.catMu.Lock()
	shards := make([]*shard, 0, len(rt.shards))
	for _, sh := range rt.shards {
		shards = append(shards, sh)
	}
	rt.catMu.Unlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].id < shards[j].id })

	rows := make([]ShardTelemetry, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		rows[i] = ShardTelemetry{ID: sh.id, URL: sh.url, Alive: sh.alive.Load()}
		if !rows[i].Alive {
			continue
		}
		wg.Add(1)
		go func(row *ShardTelemetry, sh *shard) {
			defer wg.Done()
			seriesPath := "/v1/telemetry/series"
			if window != "" {
				seriesPath += "?window=" + window
			}
			if err := rt.shardGetJSON(ctx, sh, seriesPath, &row.Series); err != nil {
				row.Err = err.Error()
				return
			}
			if err := rt.shardGetJSON(ctx, sh, "/v1/telemetry/slo", &row.SLOs); err != nil {
				row.Err = err.Error()
				return
			}
			if err := rt.shardGetJSON(ctx, sh, "/v1/telemetry/events", &row.Events); err != nil {
				row.Err = err.Error()
			}
		}(&rows[i], sh)
	}
	wg.Wait()

	resp := OverviewResponse{Shards: rows}
	var groups [][]telem.SeriesDump
	var sloGroups [][]telem.SLOStatus
	for _, row := range rows {
		if row.Err != "" || !row.Alive {
			continue
		}
		groups = append(groups, row.Series)
		sloGroups = append(sloGroups, row.SLOs)
		for _, ev := range row.Events {
			resp.Events = append(resp.Events, OverviewEvent{Shard: row.ID, Event: ev})
		}
	}
	resp.Series = telem.MergeSeries(groups...)
	resp.SLOs = telem.MergeSLO(sloGroups...)
	sort.SliceStable(resp.Events, func(i, j int) bool { return resp.Events[i].UnixMS < resp.Events[j].UnixMS })
	if len(resp.Events) > overviewEventCap {
		resp.Events = resp.Events[len(resp.Events)-overviewEventCap:]
	}
	if resp.Series == nil {
		resp.Series = []telem.SeriesDump{}
	}
	if resp.SLOs == nil {
		resp.SLOs = []telem.SLOStatus{}
	}
	if resp.Events == nil {
		resp.Events = []OverviewEvent{}
	}
	return resp
}

// shardGetJSON GETs path on sh and decodes the JSON body into out.
func (rt *Router) shardGetJSON(ctx context.Context, sh *shard, path string, out any) error {
	body, _, err := rt.shardGet(ctx, sh, path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("fleet: shard %s: decoding %s: %w", sh.id, path, err)
	}
	return nil
}

// handleOverview serves GET /v1/fleet/overview; ?window= (a duration,
// e.g. 5m) is forwarded to each shard's series fetch.
func (rt *Router) handleOverview(w http.ResponseWriter, r *http.Request) (int, error) {
	if win := r.URL.Query().Get("window"); win != "" {
		if _, err := parseWindowDuration(win); err != nil {
			return http.StatusBadRequest, err
		}
	}
	return writeJSON(w, http.StatusOK, rt.Overview(r.Context(), r.URL.Query().Get("window"))), nil
}
