// Package fleet multiplies sjoind: a consistent-hash ring places
// datasets across N shard daemons, a fan-out router exposes the
// single-process HTTP API over the fleet (proxying same-shard joins,
// streaming or strip-splitting cross-shard ones and merging the
// partial results), token buckets keyed by tenant replace global-only
// admission, and ring changes migrate datasets between shards through
// dstore-format handoff with plan-cache warming on the new owner.
package fleet

import (
	"cmp"
	"fmt"
	"hash/fnv"
	"slices"
)

// Key builds the placement key of a dataset: tenant-aware, so two
// tenants' datasets with the same name land independently on the ring.
// The separator byte cannot appear in either part (tenants are
// validated by the router, dataset names never contain NUL).
func Key(tenant, dataset string) string {
	return tenant + "\x00" + dataset
}

// hash64 is the ring's point hash: FNV-1a with a splitmix64-style
// finalizer. Raw FNV of the short, similar vnode labels ("s1#0",
// "s1#1", …) clusters badly in the upper bits, skewing ownership by
// several multiples; the avalanche pass spreads the points evenly. The
// whole function is stable across processes and releases so every
// router instance agrees on placement.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ring is a consistent-hash ring with virtual nodes. Each shard owns
// VNodes points on the ring; a key belongs to the first shard points
// clockwise from its hash. Adding or removing one shard moves only the
// keys adjacent to that shard's points (~1/N of the keyspace), which is
// what makes shard join/leave a bounded handoff rather than a full
// reshuffle.
//
// Ring is immutable after construction: mutation returns a new ring, so
// a router can resolve against the old ring while preparing a change
// and swap atomically once data migration completed.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	shards []string    // sorted, distinct
}

type ringPoint struct {
	hash  uint64
	shard string
}

// NewRing builds an empty ring; vnodes <= 0 selects the default 64.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes}
}

// Shards lists the ring members, sorted.
func (r *Ring) Shards() []string {
	return slices.Clone(r.shards)
}

// Len returns the number of member shards.
func (r *Ring) Len() int { return len(r.shards) }

// Has reports membership.
func (r *Ring) Has(shard string) bool {
	_, ok := slices.BinarySearch(r.shards, shard)
	return ok
}

// With returns a new ring that additionally contains shard. Adding an
// existing member returns the receiver unchanged.
func (r *Ring) With(shard string) *Ring {
	if r.Has(shard) {
		return r
	}
	nr := &Ring{
		vnodes: r.vnodes,
		points: make([]ringPoint, 0, len(r.points)+r.vnodes),
		shards: make([]string, 0, len(r.shards)+1),
	}
	nr.shards = append(nr.shards, r.shards...)
	nr.shards = append(nr.shards, shard)
	slices.Sort(nr.shards)
	nr.points = append(nr.points, r.points...)
	for i := 0; i < r.vnodes; i++ {
		nr.points = append(nr.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", shard, i)), shard: shard})
	}
	sortPoints(nr.points)
	return nr
}

// Without returns a new ring with shard removed; removing a non-member
// returns the receiver unchanged.
func (r *Ring) Without(shard string) *Ring {
	if !r.Has(shard) {
		return r
	}
	nr := &Ring{vnodes: r.vnodes}
	for _, s := range r.shards {
		if s != shard {
			nr.shards = append(nr.shards, s)
		}
	}
	for _, p := range r.points {
		if p.shard != shard {
			nr.points = append(nr.points, p)
		}
	}
	return nr
}

func sortPoints(ps []ringPoint) {
	slices.SortFunc(ps, func(a, b ringPoint) int {
		if c := cmp.Compare(a.hash, b.hash); c != 0 {
			return c
		}
		// Hash ties (astronomically rare) break deterministically by
		// shard id so every router agrees.
		return cmp.Compare(a.shard, b.shard)
	})
}

// Owners returns up to n distinct shards for key, in ring order: the
// primary first, then the shards that serve as its replicas. Fewer than
// n members yields all of them.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	h := hash64(key)
	start, _ := slices.BinarySearchFunc(r.points, h, func(p ringPoint, h uint64) int {
		return cmp.Compare(p.hash, h)
	})
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !slices.Contains(out, p.shard) {
			out = append(out, p.shard)
		}
	}
	return out
}

// Owner returns the primary shard for key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
