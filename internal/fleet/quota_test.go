package fleet

import (
	"testing"
	"time"
)

func TestParseQuota(t *testing.T) {
	q, err := ParseQuota("5:10")
	if err != nil || q.Rate != 5 || q.Burst != 10 {
		t.Fatalf("ParseQuota(5:10) = %+v, %v", q, err)
	}
	if q, err := ParseQuota("0.5:1"); err != nil || q.Rate != 0.5 {
		t.Fatalf("ParseQuota(0.5:1) = %+v, %v", q, err)
	}
	for _, bad := range []string{"", "5", "5:", ":10", "x:y", "-1:5", "5:-1", "0:0"} {
		if _, err := ParseQuota(bad); err == nil {
			t.Errorf("ParseQuota(%q) accepted", bad)
		}
	}
}

func TestQuotaBurstAndRefill(t *testing.T) {
	qs := NewQuotas(Quota{Rate: 2, Burst: 3}, nil)
	now := time.Unix(1000, 0)
	qs.SetNow(func() time.Time { return now })

	// The full burst is available up front.
	for i := 0; i < 3; i++ {
		if ok, _ := qs.Allow("t1"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := qs.Allow("t1")
	if ok {
		t.Fatal("request over burst admitted")
	}
	// At 2 tokens/s an empty bucket refills one token in 500ms.
	if retry <= 0 || retry > 600*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~500ms", retry)
	}

	// Advance past the refill point: exactly one more token.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := qs.Allow("t1"); !ok {
		t.Fatal("request after refill denied")
	}
	if ok, _ := qs.Allow("t1"); ok {
		t.Fatal("second request after a one-token refill admitted")
	}

	// Refill caps at Burst even after a long idle stretch.
	now = now.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := qs.Allow("t1"); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("after long idle %d admitted, want burst cap 3", admitted)
	}
}

func TestQuotaTenantsIndependent(t *testing.T) {
	qs := NewQuotas(Quota{Rate: 1, Burst: 1}, nil)
	now := time.Unix(0, 0)
	qs.SetNow(func() time.Time { return now })

	if ok, _ := qs.Allow("noisy"); !ok {
		t.Fatal("first noisy request denied")
	}
	if ok, _ := qs.Allow("noisy"); ok {
		t.Fatal("second noisy request admitted")
	}
	// The noisy tenant being throttled must not affect anyone else.
	if ok, _ := qs.Allow("quiet"); !ok {
		t.Fatal("quiet tenant denied because of the noisy one")
	}
	if qs.Tenants() != 2 {
		t.Fatalf("Tenants() = %d, want 2", qs.Tenants())
	}
}

func TestQuotaOverrides(t *testing.T) {
	qs := NewQuotas(Quota{}, map[string]Quota{"limited": {Rate: 1, Burst: 1}})
	now := time.Unix(0, 0)
	qs.SetNow(func() time.Time { return now })

	// Zero default: unlisted tenants are never limited.
	for i := 0; i < 100; i++ {
		if ok, _ := qs.Allow("free"); !ok {
			t.Fatal("zero-default tenant denied")
		}
	}
	if ok, _ := qs.Allow("limited"); !ok {
		t.Fatal("override tenant's first request denied")
	}
	if ok, _ := qs.Allow("limited"); ok {
		t.Fatal("override tenant admitted over its budget")
	}
}

func TestQuotaNilAdmits(t *testing.T) {
	var qs *Quotas
	if ok, retry := qs.Allow("anyone"); !ok || retry != 0 {
		t.Fatal("nil Quotas must admit unconditionally")
	}
}
