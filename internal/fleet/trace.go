package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"spatialjoin/internal/obs"
)

// routerTraceRing is the default Config.TraceRing: how many routed-join
// traces the router retains for GET /v1/joins/{id}/trace.
const routerTraceRing = 64

// routerTrace is one retained routed join: the router's own fleet spans
// plus pointers to the shard-local executions, fetched and grafted in
// lazily when the trace is requested.
type routerTrace struct {
	id     int64
	mode   string
	tracer *obs.Tracer
	legs   []joinLeg
}

// recordTrace retains a finished routed join's trace and returns its
// router-scoped join id.
func (rt *Router) recordTrace(mode string, tr *obs.Tracer, legs []joinLeg) int64 {
	rt.traceMu.Lock()
	defer rt.traceMu.Unlock()
	rt.nextJoinID++
	id := rt.nextJoinID
	rt.traces[id] = &routerTrace{id: id, mode: mode, tracer: tr, legs: legs}
	rt.traceOrder = append(rt.traceOrder, id)
	if len(rt.traceOrder) > rt.cfg.TraceRing {
		delete(rt.traces, rt.traceOrder[0])
		rt.traceOrder = rt.traceOrder[1:]
	}
	return id
}

// TraceResponse is the payload of the router's GET /v1/joins/{id}/trace:
// the fleet-level span tree with each shard's join tree grafted under
// the proxy span that dispatched it.
type TraceResponse struct {
	JoinID int64       `json:"join_id"`
	Mode   string      `json:"mode"`
	Shards []string    `json:"shards"`
	Spans  int         `json:"spans"`
	Tree   []*obs.Node `json:"tree"`
}

// shardTraceWire is the slice of the shard trace response the router
// needs for stitching.
type shardTraceWire struct {
	Tree []*obs.Node `json:"tree"`
}

func (rt *Router) handleJoinTrace(w http.ResponseWriter, r *http.Request) (int, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("fleet: bad join id %q", r.PathValue("id"))
	}
	rt.traceMu.Lock()
	jt, ok := rt.traces[id]
	rt.traceMu.Unlock()
	if !ok {
		return http.StatusNotFound, fmt.Errorf("fleet: no retained trace for join %d", id)
	}
	tree := jt.tracer.Tree()
	resp := &TraceResponse{JoinID: jt.id, Mode: jt.mode, Tree: tree}
	for i, leg := range jt.legs {
		resp.Shards = append(resp.Shards, leg.shardID)
		sh := rt.shardByID(leg.shardID)
		if sh == nil || !sh.alive.Load() {
			continue
		}
		body, _, err := rt.shardGet(r.Context(), sh, "/v1/joins/"+strconv.FormatInt(leg.joinID, 10)+"/trace")
		if err != nil {
			continue // evicted or unreachable: serve the fleet spans alone
		}
		var wire shardTraceWire
		if json.Unmarshal(body, &wire) != nil {
			continue
		}
		// Shard span ids were minted in a different process; rebase them
		// into a per-leg id range so grafted trees cannot collide with the
		// router's own spans (or each other's).
		rebase(wire.Tree, uint64(i+1)<<32, leg.shardID)
		obs.Graft(resp.Tree, leg.span, wire.Tree)
	}
	resp.Spans = countNodes(resp.Tree)
	return writeJSON(w, http.StatusOK, resp), nil
}

// rebase shifts every span id in the forest by base and prefixes worker
// lanes with the shard id, keeping stitched trees unambiguous.
func rebase(nodes []*obs.Node, base uint64, shardID string) {
	for _, n := range nodes {
		n.ID += base
		if n.Parent != 0 {
			n.Parent += base
		}
		if n.Worker == "" {
			n.Worker = shardID
		} else {
			n.Worker = shardID + "/" + n.Worker
		}
		rebase(n.Children, base, shardID)
	}
}

func countNodes(nodes []*obs.Node) int {
	n := len(nodes)
	for _, c := range nodes {
		n += countNodes(c.Children)
	}
	return n
}
