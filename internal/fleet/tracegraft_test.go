// Router trace-grafting edge cases: the stitched trace endpoint must
// degrade to the fleet-level spans when a shard dies between the join
// and the trace fetch, or when the shard has already evicted its side
// of the trace.
package fleet_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spatialjoin/internal/fleet"
	"spatialjoin/internal/service"
)

// newTraceFleet is a single-shard fleet whose shard service config the
// test controls (the shared newTestFleet fixes it).
func newTraceFleet(t *testing.T, svcCfg service.Config, rtCfg fleet.Config) (*testFleet, *httptest.Server) {
	t.Helper()
	svc := service.New(svcCfg)
	srv := httptest.NewServer(svc.Handler())
	if rtCfg.HeartbeatInterval == 0 {
		rtCfg.HeartbeatInterval = time.Hour
	}
	rt := fleet.NewRouter(rtCfg, map[string]string{"s1": srv.URL})
	routerS := httptest.NewServer(rt.Handler())
	tf := &testFleet{
		t:       t,
		rt:      rt,
		routerS: routerS,
		shards:  map[string]*httptest.Server{"s1": srv},
		svcs:    map[string]*service.Service{"s1": svc},
	}
	t.Cleanup(func() {
		routerS.Close()
		rt.Close()
		srv.Close()
	})
	return tf, srv
}

// routedJoinID runs a join through the router and returns its
// router-scoped join id.
func routedJoinID(tf *testFleet) int64 {
	tf.t.Helper()
	m := tf.joinVia("", fmt.Sprintf(joinShape, "r", "s"))
	id, ok := m["join_id"].(float64)
	if !ok {
		tf.t.Fatalf("join response missing join_id: %v", m)
	}
	return int64(id)
}

// fetchTrace GETs the router's stitched trace and returns (status,
// decoded body).
func fetchTrace(tf *testFleet, id int64) (int, map[string]any) {
	tf.t.Helper()
	res, err := http.Get(fmt.Sprintf("%s/v1/joins/%d/trace", tf.routerS.URL, id))
	if err != nil {
		tf.t.Fatal(err)
	}
	defer res.Body.Close()
	var m map[string]any
	json.NewDecoder(res.Body).Decode(&m)
	return res.StatusCode, m
}

func TestRouterTraceShardDiesBeforeTraceFetch(t *testing.T) {
	tf, shardSrv := newTraceFleet(t, service.Config{PlanCacheSize: 16}, fleet.Config{})
	tf.generate("", "r", 400, 1)
	tf.generate("", "s", 400, 2)
	id := routedJoinID(tf)

	code, full := fetchTrace(tf, id)
	if code != http.StatusOK {
		t.Fatalf("trace with live shard: status %d: %v", code, full)
	}
	grafted := int(full["spans"].(float64))

	// The shard dies between the join and the next trace fetch. The
	// router must still serve the fleet-level spans, not error.
	shardSrv.Close()
	code, degraded := fetchTrace(tf, id)
	if code != http.StatusOK {
		t.Fatalf("trace with dead shard: status %d: %v", code, degraded)
	}
	fleetOnly := int(degraded["spans"].(float64))
	if fleetOnly >= grafted {
		t.Fatalf("degraded trace spans = %d, want < grafted %d", fleetOnly, grafted)
	}
	if fleetOnly == 0 || degraded["tree"] == nil {
		t.Fatalf("degraded trace lost the fleet spans: %v", degraded)
	}
	// The leg is still named even though its tree is gone.
	shards, _ := degraded["shards"].([]any)
	if len(shards) != 1 || shards[0] != "s1" {
		t.Fatalf("degraded trace shards = %v, want [s1]", shards)
	}
}

func TestRouterTraceEvictedShardSide(t *testing.T) {
	// TraceRing 1 on the shard: the second join evicts the first join's
	// shard-side trace.
	tf, _ := newTraceFleet(t, service.Config{PlanCacheSize: 16, TraceRing: 1}, fleet.Config{})
	tf.generate("", "r", 400, 1)
	tf.generate("", "s", 400, 2)
	first := routedJoinID(tf)
	second := routedJoinID(tf)

	code, fresh := fetchTrace(tf, second)
	if code != http.StatusOK {
		t.Fatalf("fresh trace: status %d: %v", code, fresh)
	}
	code, evicted := fetchTrace(tf, first)
	if code != http.StatusOK {
		t.Fatalf("evicted-shard-side trace: status %d: %v", code, evicted)
	}
	if got, want := int(evicted["spans"].(float64)), int(fresh["spans"].(float64)); got >= want {
		t.Fatalf("evicted trace spans = %d, want < fresh %d (fleet spans only)", got, want)
	}
}

func TestRouterTraceRingConfigurable(t *testing.T) {
	tf, _ := newTraceFleet(t, service.Config{PlanCacheSize: 16}, fleet.Config{TraceRing: 1})
	tf.generate("", "r", 400, 1)
	tf.generate("", "s", 400, 2)
	first := routedJoinID(tf)
	second := routedJoinID(tf)

	if code, _ := fetchTrace(tf, first); code != http.StatusNotFound {
		t.Fatalf("evicted router trace: status %d, want 404", code)
	}
	if code, m := fetchTrace(tf, second); code != http.StatusOK {
		t.Fatalf("retained router trace: status %d: %v", code, m)
	}
}
