package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"spatialjoin/internal/obs"
)

// joinWire mirrors the sjoind join request body — the router accepts
// exactly the single-shard API and rewrites dataset names on the way
// through.
type joinWire struct {
	R              string  `json:"r"`
	S              string  `json:"s"`
	Eps            float64 `json:"eps"`
	Algorithm      string  `json:"algorithm,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	Partitions     int     `json:"partitions,omitempty"`
	SampleFraction float64 `json:"sample_fraction,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	UseLPT         bool    `json:"use_lpt,omitempty"`
	GridRes        float64 `json:"grid_res,omitempty"`
	Collect        bool    `json:"collect,omitempty"`
	Limit          int     `json:"limit,omitempty"`
	TimeoutMillis  int64   `json:"timeout_ms,omitempty"`
}

// joinResp mirrors the sjoind join response body.
type joinResp struct {
	Algorithm   string     `json:"algorithm"`
	Results     int64      `json:"results"`
	Checksum    string     `json:"checksum"`
	Selectivity float64    `json:"selectivity"`
	PlanCache   string     `json:"plan_cache"`
	ReplicatedR int64      `json:"replicated_r"`
	ReplicatedS int64      `json:"replicated_s"`
	BuildMillis float64    `json:"build_ms"`
	ProbeMillis float64    `json:"probe_ms"`
	Pairs       [][2]int64 `json:"pairs,omitempty"`
	Truncated   bool       `json:"truncated,omitempty"`
	JoinID      int64      `json:"join_id"`
}

// joinLeg records one shard execution of (part of) a routed join, for
// trace stitching.
type joinLeg struct {
	shardID string
	url     string
	joinID  int64
	span    uint64 // the SpanFleetProxy span the shard's tree grafts under
}

// shardError carries a shard's application-level rejection back to the
// client with its original status code.
type shardError struct {
	code int
	msg  string
}

func (e *shardError) Error() string { return e.msg }

// handleJoin is the router's POST /v1/join(+/count): per-tenant
// admission, then route-and-merge with whole-attempt retry across
// shard deaths.
func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request, allowCollect bool) (int, error) {
	tenant := tenantOf(r)
	if !ValidTenant(tenant) {
		return http.StatusBadRequest, fmt.Errorf("fleet: invalid tenant id")
	}
	if ok, retryAfter := rt.quotas.Allow(tenant); !ok {
		rt.Metrics.Inc("sjoin_router_tenant_rejected_total", tenant)
		secs := int(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		return http.StatusTooManyRequests, fmt.Errorf("fleet: tenant %q over quota, retry in %v", tenant, retryAfter.Round(time.Millisecond))
	}
	var wire joinWire
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return http.StatusBadRequest, fmt.Errorf("fleet: bad join request: %w", err)
	}
	if !allowCollect {
		wire.Collect = false
	}

	rt.mu.RLock()
	defer rt.mu.RUnlock()

	keyR, keyS := Key(tenant, wire.R), Key(tenant, wire.S)
	rt.catMu.Lock()
	entR, entS := rt.catalog[keyR], rt.catalog[keyS]
	rt.catMu.Unlock()
	if entR == nil {
		return http.StatusNotFound, fmt.Errorf("fleet: unknown dataset %q", wire.R)
	}
	if entS == nil {
		return http.StatusNotFound, fmt.Errorf("fleet: unknown dataset %q", wire.S)
	}
	rt.rememberJoin(keyR, keyS, tenant, wire)

	tr := obs.New()
	root := tr.Start(0, obs.SpanFleetJoin)
	root.SetStr("tenant", tenant).SetStr("r", wire.R).SetStr("s", wire.S)

	var (
		resp    *joinResp
		mode    string
		legs    []joinLeg
		lastErr error
	)
	for attempt := 0; ; attempt++ {
		var err error
		resp, mode, legs, err = rt.routeJoin(r.Context(), tr, root, tenant, wire, entR, entS)
		if err == nil {
			break
		}
		var te *transportError
		if !isTransport(err, &te) {
			if se, ok := err.(*shardError); ok {
				return se.code, se
			}
			return http.StatusBadGateway, err
		}
		rt.markDead(te.sh, te.err)
		lastErr = err
		if attempt >= rt.cfg.MaxRetries {
			return http.StatusBadGateway, fmt.Errorf("fleet: join failed after %d attempts: %w", attempt+1, lastErr)
		}
		rt.Metrics.Inc("sjoin_router_retries_total", te.sh.id)
		rt.log.Warn("fleet: retrying join after shard failure", "shard", te.sh.id, "attempt", attempt+1)
	}
	root.SetStr("mode", mode)
	root.End()
	rt.Metrics.Inc("sjoin_router_joins_total", mode)
	resp.JoinID = rt.recordTrace(mode, tr, legs)
	return writeJSON(w, http.StatusOK, resp), nil
}

// rememberJoin keeps the join shape (count-only form) in the per-dataset
// warm history replayed after migrations.
func (rt *Router) rememberJoin(keyR, keyS, tenant string, wire joinWire) {
	warm := wire
	warm.Collect = false
	warm.Limit = 0
	rt.catMu.Lock()
	defer rt.catMu.Unlock()
	for _, key := range []string{keyR, keyS} {
		hist := rt.recent[key]
		dup := false
		for _, h := range hist {
			if h.tenant == tenant && h.wire == warm {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		hist = append(hist, warmJoin{tenant: tenant, wire: warm})
		if len(hist) > rt.cfg.WarmJoins {
			hist = hist[len(hist)-rt.cfg.WarmJoins:]
		}
		rt.recent[key] = hist
	}
}

// routeJoin makes one routing attempt against the current live shard
// view. A *transportError return means a shard died under it and the
// caller may retry; placement re-resolves to the replicas.
func (rt *Router) routeJoin(ctx context.Context, tr *obs.Tracer, root *obs.Span, tenant string, wire joinWire, entR, entS *catEntry) (*joinResp, string, []joinLeg, error) {
	keyR, keyS := Key(tenant, wire.R), Key(tenant, wire.S)
	targetR, targetS := rt.serveTarget(keyR), rt.serveTarget(keyS)
	if targetR == nil || targetS == nil {
		return nil, "", nil, fmt.Errorf("fleet: no live shard holds the datasets")
	}
	snameR := shardDatasetName(tenant, wire.R)
	snameS := shardDatasetName(tenant, wire.S)

	// Same shard: plain proxy.
	if targetR == targetS {
		sw := wire
		sw.R, sw.S = snameR, snameS
		resp, leg, err := rt.proxyJoin(ctx, tr, root, targetR, sw)
		if err != nil {
			return nil, "", nil, err
		}
		return resp, "local", []joinLeg{leg}, nil
	}

	// Cross-shard, both sides large: split into vertical strips and fan
	// out to both owners, merging partial results.
	if rt.cfg.FanoutMinPoints > 0 && entR.Points >= rt.cfg.FanoutMinPoints && entS.Points >= rt.cfg.FanoutMinPoints {
		resp, legs, err := rt.fanoutJoin(ctx, tr, root, tenant, wire, entR, entS, targetR, targetS)
		if err != nil {
			return nil, "", nil, err
		}
		return resp, "fanout", legs, nil
	}

	// Cross-shard: stream the smaller dataset to the larger's shard as a
	// hidden mirror and join there.
	big, small := targetR, targetS
	smallKey, smallEnt, smallName := keyS, entS, snameS
	if entR.Points < entS.Points {
		big, small = targetS, targetR
		smallKey, smallEnt, smallName = keyR, entR, snameR
	}
	mirror, err := rt.ensureMirror(ctx, tr, root, small, big, smallKey, smallEnt, smallName, nil)
	if err != nil {
		return nil, "", nil, err
	}
	sw := wire
	if big == targetR {
		sw.R, sw.S = snameR, mirror
	} else {
		sw.R, sw.S = mirror, snameS
	}
	resp, leg, err := rt.proxyJoin(ctx, tr, root, big, sw)
	if err != nil {
		return nil, "", nil, err
	}
	return resp, "streamed", []joinLeg{leg}, nil
}

// proxyJoin runs one join on one shard under a SpanFleetProxy span.
func (rt *Router) proxyJoin(ctx context.Context, tr *obs.Tracer, root *obs.Span, sh *shard, wire joinWire) (*joinResp, joinLeg, error) {
	span := tr.Start(root.SpanID(), obs.SpanFleetProxy)
	span.SetWorker(sh.id).SetStr("shard", sh.id).SetStr("r", wire.R).SetStr("s", wire.S)
	defer span.End()
	body, err := json.Marshal(wire)
	if err != nil {
		return nil, joinLeg{}, err
	}
	code, out, err := rt.shardPost(ctx, sh, "/v1/join", "application/json", body)
	if err != nil {
		return nil, joinLeg{}, err
	}
	rt.Metrics.Inc("sjoin_router_proxied_total", sh.id)
	if code != http.StatusOK {
		var ew errorWire
		json.Unmarshal(out, &ew)
		if ew.Error == "" {
			ew.Error = fmt.Sprintf("shard %s: status %d", sh.id, code)
		}
		return nil, joinLeg{}, &shardError{code: code, msg: ew.Error}
	}
	var resp joinResp
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, joinLeg{}, fmt.Errorf("fleet: bad join response from %s: %w", sh.id, err)
	}
	span.SetInt("results", resp.Results).SetInt("shard_join_id", resp.JoinID)
	return &resp, joinLeg{shardID: sh.id, url: sh.url, joinID: resp.JoinID, span: uint64(span.SpanID())}, nil
}

// regionFilter restricts a handoff export to an x-range; nil exports the
// whole dataset. Lo is always inclusive; IncHi makes Hi inclusive too
// (half-open otherwise).
type regionFilter struct {
	Lo, Hi float64
	IncHi  bool
}

func (f *regionFilter) query() url.Values {
	q := url.Values{}
	if f == nil {
		return q
	}
	q.Set("xlo", strconv.FormatFloat(f.Lo, 'g', -1, 64))
	q.Set("xhi", strconv.FormatFloat(f.Hi, 'g', -1, 64))
	if f.IncHi {
		q.Set("inchi", "1")
	}
	return q
}

func (f *regionFilter) tag() string {
	if f == nil {
		return "full"
	}
	inc := "o"
	if f.IncHi {
		inc = "c"
	}
	return fmt.Sprintf("%x-%x-%s", math.Float64bits(f.Lo), math.Float64bits(f.Hi), inc)
}

// ensureMirror ships (a region of) a dataset from shard src to shard
// dst under a hidden name, reusing a previous ship when the dataset
// version has not changed. Mirrors are invalidated when the dataset is
// re-uploaded and garbage-collected when it is deleted.
func (rt *Router) ensureMirror(ctx context.Context, tr *obs.Tracer, root *obs.Span, src, dst *shard, key string, ent *catEntry, sname string, filter *regionFilter) (string, error) {
	tag := filter.tag()
	mk := dst.id + "\xff" + key + "\xff" + tag
	mirror := fmt.Sprintf("~m~%d~%s~%s", ent.Ver, tag, sname)
	rt.catMu.Lock()
	cached := rt.mirrors[mk] == mirror && dst.alive.Load()
	rt.catMu.Unlock()
	if cached {
		return mirror, nil
	}

	span := tr.Start(root.SpanID(), obs.SpanFleetMirror)
	span.SetStr("dataset", ent.Name).SetStr("from", src.id).SetStr("to", dst.id)
	defer span.End()

	q := filter.query()
	blob, _, err := rt.shardGet(ctx, src, "/v1/admin/handoff/"+sname+"?"+q.Encode())
	if err != nil {
		return "", err
	}
	if len(blob) == 0 {
		// Empty region: nothing to join against on this leg.
		span.SetInt("bytes", 0)
		return "", nil
	}
	code, out, err := rt.shardPost(ctx, dst, "/v1/admin/handoff?name="+url.QueryEscape(mirror), "application/octet-stream", blob)
	if err != nil {
		return "", err
	}
	if code != http.StatusCreated {
		var ew errorWire
		json.Unmarshal(out, &ew)
		return "", fmt.Errorf("fleet: shard %s rejected mirror: %s", dst.id, ew.Error)
	}
	span.SetInt("bytes", int64(len(blob)))
	rt.Metrics.Inc("sjoin_router_migrations_total", "mirror")
	rt.Metrics.Add("sjoin_router_handoff_bytes_total", int64(len(blob)), "mirror")
	rt.catMu.Lock()
	rt.mirrors[mk] = mirror
	rt.catMu.Unlock()
	return mirror, nil
}

// fanoutJoin splits a cross-shard join into two vertical strips, one
// per owner shard, and merges the partial results. Correctness: the
// strips partition R's points exactly (half-open cut at the x midpoint),
// and each strip's S side is expanded by eps on both ends, so every
// result pair is produced by exactly one strip — counts add up and the
// order-independent checksum (a sum of per-pair hashes) merges by
// addition, reproducing the single-process result bit for bit.
func (rt *Router) fanoutJoin(ctx context.Context, tr *obs.Tracer, root *obs.Span, tenant string, wire joinWire, entR, entS *catEntry, targetR, targetS *shard) (*joinResp, []joinLeg, error) {
	keyR, keyS := Key(tenant, wire.R), Key(tenant, wire.S)
	snameR := shardDatasetName(tenant, wire.R)
	snameS := shardDatasetName(tenant, wire.S)

	rlo, rhi := boundsX(entR)
	slo, shi := boundsX(entS)
	lo, hi := math.Min(rlo, slo), math.Max(rhi, shi)
	mid := lo + (hi-lo)/2

	type strip struct {
		target *shard
		rf, sf regionFilter
	}
	strips := []strip{
		{target: targetR,
			rf: regionFilter{Lo: lo, Hi: mid, IncHi: false},
			sf: regionFilter{Lo: lo - wire.Eps, Hi: mid + wire.Eps, IncHi: true}},
		{target: targetS,
			rf: regionFilter{Lo: mid, Hi: hi, IncHi: true},
			sf: regionFilter{Lo: mid - wire.Eps, Hi: hi + wire.Eps, IncHi: true}},
	}

	type legOut struct {
		resp *joinResp
		leg  joinLeg
		err  error
	}
	outs := make([]legOut, len(strips))
	done := make(chan int, len(strips))
	for i := range strips {
		go func(i int) {
			defer func() { done <- i }()
			st := strips[i]
			rName, err := rt.ensureMirror(ctx, tr, root, targetR, st.target, keyR, entR, snameR, &st.rf)
			if err != nil {
				outs[i].err = err
				return
			}
			sName, err := rt.ensureMirror(ctx, tr, root, targetS, st.target, keyS, entS, snameS, &st.sf)
			if err != nil {
				outs[i].err = err
				return
			}
			if rName == "" || sName == "" {
				// An empty strip side joins to nothing: zero partial.
				outs[i].resp = &joinResp{Checksum: "0000000000000000", PlanCache: "hit"}
				return
			}
			sw := wire
			sw.R, sw.S = rName, sName
			outs[i].resp, outs[i].leg, outs[i].err = rt.proxyJoin(ctx, tr, root, st.target, sw)
		}(i)
	}
	for range strips {
		<-done
	}
	for i := range outs {
		if outs[i].err != nil {
			return nil, nil, outs[i].err
		}
	}

	mspan := tr.Start(root.SpanID(), obs.SpanFleetMerge)
	defer mspan.End()
	merged := &joinResp{PlanCache: "hit"}
	var checksum uint64
	var legs []joinLeg
	limit := wire.Limit
	for i := range outs {
		p := outs[i].resp
		merged.Results += p.Results
		merged.ReplicatedR += p.ReplicatedR
		merged.ReplicatedS += p.ReplicatedS
		if p.Algorithm != "" {
			merged.Algorithm = p.Algorithm
		}
		if p.PlanCache != "hit" {
			merged.PlanCache = "miss"
		}
		if p.BuildMillis > merged.BuildMillis {
			merged.BuildMillis = p.BuildMillis
		}
		if p.ProbeMillis > merged.ProbeMillis {
			merged.ProbeMillis = p.ProbeMillis
		}
		if c, err := strconv.ParseUint(p.Checksum, 16, 64); err == nil {
			checksum += c
		}
		if wire.Collect {
			merged.Pairs = append(merged.Pairs, p.Pairs...)
			merged.Truncated = merged.Truncated || p.Truncated
		}
		if outs[i].leg.shardID != "" {
			legs = append(legs, outs[i].leg)
		}
	}
	if wire.Collect && limit > 0 && len(merged.Pairs) > limit {
		merged.Pairs = merged.Pairs[:limit]
		merged.Truncated = true
	}
	merged.Checksum = fmt.Sprintf("%016x", checksum)
	if pr, ps := entR.Points, entS.Points; pr > 0 && ps > 0 {
		merged.Selectivity = float64(merged.Results) / (float64(pr) * float64(ps))
	}
	mspan.SetInt("results", merged.Results).SetInt("legs", int64(len(legs)))
	return merged, legs, nil
}

// boundsX pulls a dataset's x extent from its catalog info.
func boundsX(ent *catEntry) (lo, hi float64) {
	lo, _ = ent.Info["min_x"].(float64)
	hi, _ = ent.Info["max_x"].(float64)
	return lo, hi
}
