package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestObsNilTracerFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(0, SpanTask)
		sp.SetInt("partition", 3)
		sp.SetStr("kind", "local")
		sp.SetWorker("w0")
		_ = sp.SpanID()
		sp.End()
		_ = tr.TraceID()
		tr.AddSpans(nil)
		_ = tr.Spans()
		_ = tr.Len()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer path allocated %.1f times per run, want 0", allocs)
	}
}

func TestObsSpanTree(t *testing.T) {
	tr := New()
	root := tr.Start(0, SpanJoin)
	plan := tr.Start(root.SpanID(), SpanPlan)
	tr.Start(plan.SpanID(), SpanSample).End()
	plan.End()
	exec := tr.Start(root.SpanID(), SpanExecute)
	for i := 0; i < 3; i++ {
		tr.Start(exec.SpanID(), SpanTask).SetInt("partition", int64(i)).SetWorker("w0").End()
	}
	exec.End()
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	jn := roots[0]
	if jn.Name != SpanJoin || len(jn.Children) != 2 {
		t.Fatalf("root %q with %d children, want join with 2", jn.Name, len(jn.Children))
	}
	var tasks int
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Name == SpanTask {
			tasks++
			if n.Worker != "w0" {
				t.Errorf("task span worker = %q, want w0", n.Worker)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(jn)
	if tasks != 3 {
		t.Fatalf("found %d task spans, want 3", tasks)
	}
}

func TestObsTreeMalformedInput(t *testing.T) {
	tr := NewWithID(7, 0)
	// Duplicate span ids, a self-parent, and a two-node cycle: the tree
	// must stay finite and JSON-serialisable.
	tr.AddSpans([]Span{
		{ID: 1, Parent: 0, Name: "a"},
		{ID: 1, Parent: 0, Name: "a-dup"},
		{ID: 2, Parent: 2, Name: "self"},
		{ID: 3, Parent: 4, Name: "cyc1"},
		{ID: 4, Parent: 3, Name: "cyc2"},
	})
	roots := tr.Tree()
	if len(roots) == 0 {
		t.Fatal("no roots from malformed spans")
	}
	if _, err := json.Marshal(roots); err != nil {
		t.Fatalf("tree not serialisable: %v", err)
	}
	total := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		total++
		if total > 10 {
			t.Fatal("tree walk exploded: cycle reached the serialised tree")
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	if total != 4 {
		t.Fatalf("tree has %d nodes, want 4 (duplicate dropped)", total)
	}
}

func TestObsStitchRemoteSpans(t *testing.T) {
	// Coordinator-side tracer plus two simulated worker processes with
	// disjoint span-id bases, as the cluster protocol arranges.
	tr := New()
	root := tr.Start(0, SpanJoin)
	exec := tr.Start(root.SpanID(), SpanExecute)

	for w := 1; w <= 2; w++ {
		wt := NewWithID(tr.TraceID(), SpanID(uint64(w)<<40))
		sp := wt.Start(exec.SpanID(), SpanTask)
		sp.SetWorker([]string{"", "alpha", "beta"}[w]).SetInt("partition", int64(w))
		sp.End()
		tr.AddSpans(wt.Spans())
	}
	exec.End()
	root.End()

	roots := tr.Tree()
	if len(roots) != 1 {
		t.Fatalf("stitched trace has %d roots, want 1", len(roots))
	}
	workers := map[string]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Name == SpanTask {
			workers[n.Worker] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(roots[0])
	if !workers["alpha"] || !workers["beta"] {
		t.Fatalf("stitched tree missing worker spans: %v", workers)
	}
}

// validateChromeTrace decodes Chrome trace-event JSON and checks the
// schema invariants Perfetto relies on. Shared with the cluster e2e
// trace test.
func validateChromeTrace(t *testing.T, data []byte) {
	t.Helper()
	var ct struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	var complete int
	for i, ev := range ct.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "" || name == "" {
			t.Fatalf("event %d missing ph/name: %v", i, ev)
		}
		switch ph {
		case "M":
			continue
		case "X":
			complete++
			ts, ok := ev["ts"].(float64)
			if !ok || ts < 0 {
				t.Fatalf("event %d has bad ts: %v", i, ev)
			}
			if _, ok := ev["pid"].(float64); !ok {
				t.Fatalf("event %d missing pid: %v", i, ev)
			}
			if _, ok := ev["tid"].(float64); !ok {
				t.Fatalf("event %d missing tid: %v", i, ev)
			}
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ph)
		}
	}
	if complete == 0 {
		t.Fatal("chrome trace has no complete (X) events")
	}
}

func TestObsChromeTraceSchema(t *testing.T) {
	tr := New()
	root := tr.Start(0, SpanJoin)
	sp := tr.Start(root.SpanID(), SpanTask)
	sp.SetWorker("w1").SetInt("pairs", 42).SetStr("kind", "local")
	time.Sleep(time.Millisecond)
	sp.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	validateChromeTrace(t, buf.Bytes())

	// The worker lane must be announced via thread_name metadata.
	if !bytes.Contains(buf.Bytes(), []byte(`"w1"`)) {
		t.Fatal("worker name missing from chrome trace")
	}
}

func TestObsSkewReport(t *testing.T) {
	tr := New()
	rep := tr.Start(0, SpanReplicate)
	rep.SetInt("repl_bytes_r", 1000).SetInt("repl_bytes_s", 250)
	rep.End()
	sh := tr.Start(0, SpanShuffle)
	sh.SetInt("shuffled_bytes", 4096).SetInt("remote_bytes", 2048)
	sh.End()
	sup := tr.Start(0, SpanSupplementary)
	sup.SetInt("pairs_in", 500).SetInt("pairs_out", 480)
	sup.End()
	durs := []time.Duration{time.Millisecond, time.Millisecond, 4 * time.Millisecond}
	for i, d := range durs {
		sp := tr.Start(0, SpanTask)
		sp.SetWorker([]string{"a", "a", "b"}[i])
		time.Sleep(d)
		sp.End()
	}

	sk := tr.Skew()
	if sk.Tasks != 3 {
		t.Fatalf("Tasks = %d, want 3", sk.Tasks)
	}
	if sk.TasksPerWorker["a"] != 2 || sk.TasksPerWorker["b"] != 1 {
		t.Fatalf("TasksPerWorker = %v", sk.TasksPerWorker)
	}
	if sk.MaxTaskMicros < sk.MedianTaskMicros || sk.MedianTaskMicros <= 0 {
		t.Fatalf("task micros: max %d median %d", sk.MaxTaskMicros, sk.MedianTaskMicros)
	}
	if sk.StragglerRatio < 1 {
		t.Fatalf("StragglerRatio = %v, want >= 1", sk.StragglerRatio)
	}
	if sk.ReplicationBytes["R"] != 1000 || sk.ReplicationBytes["S"] != 250 {
		t.Fatalf("ReplicationBytes = %v", sk.ReplicationBytes)
	}
	if sk.ShuffleBytes != 4096 || sk.RemoteBytes != 2048 {
		t.Fatalf("shuffle %d remote %d", sk.ShuffleBytes, sk.RemoteBytes)
	}
	if sk.SupplementaryPairs != 500 {
		t.Fatalf("SupplementaryPairs = %d, want 500", sk.SupplementaryPairs)
	}
}

func TestObsSpanLimit(t *testing.T) {
	tr := New()
	tr.SetLimit(4)
	for i := 0; i < 10; i++ {
		tr.Start(0, SpanTask).End()
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	tr.AddSpans([]Span{{ID: 99}, {ID: 100}})
	if tr.Len() != 4 || tr.Dropped() != 8 {
		t.Fatalf("after AddSpans: Len %d Dropped %d", tr.Len(), tr.Dropped())
	}
}
