package obs

import (
	"sort"
	"strings"
)

// SkewReport is the derived diagnostics view of a join trace: where the
// time went, which worker absorbed it, and how much replication each
// agreement type cost. It is computed from span names and attributes,
// so locally-run and cluster-stitched traces reduce identically.
type SkewReport struct {
	Tasks            int            `json:"tasks"`
	TasksPerWorker   map[string]int `json:"tasks_per_worker,omitempty"`
	MaxTaskMicros    int64          `json:"max_task_micros"`
	MedianTaskMicros int64          `json:"median_task_micros"`
	// StragglerRatio is max/median task duration; 1.0 means perfectly
	// balanced partitions, large values mean LPT had skew to absorb.
	StragglerRatio float64 `json:"straggler_ratio"`
	// ReplicationBytes breaks the shuffled replica volume down by the
	// agreement type that caused it ("R": LPiB agreements replicating
	// the outer side, "S": DIFF agreements replicating the inner side).
	ReplicationBytes   map[string]int64 `json:"replication_bytes_by_agreement,omitempty"`
	SupplementaryPairs int64            `json:"supplementary_pairs"`
	ShuffleBytes       int64            `json:"shuffle_bytes"`
	RemoteBytes        int64            `json:"remote_bytes"`
	// ReplicationBytesByClass breaks the two-layer non-point join's
	// replica volume down by tile class (A/B/C/D): A bytes are the
	// native copies, B/C/D bytes are what MBR extent replication cost on
	// top. Empty for point joins.
	ReplicationBytesByClass map[string]int64 `json:"replication_bytes_by_class,omitempty"`
}

// Skew reduces the recorded spans to a SkewReport.
func (t *Tracer) Skew() SkewReport {
	var rep SkewReport
	spans := t.Spans()
	var durs []int64
	for _, s := range spans {
		switch s.Name {
		case SpanTask:
			rep.Tasks++
			durs = append(durs, durMicros(s))
			if s.Worker != "" {
				if rep.TasksPerWorker == nil {
					rep.TasksPerWorker = map[string]int{}
				}
				rep.TasksPerWorker[s.Worker]++
			}
		case SpanReplicate:
			for _, a := range s.Attrs {
				if set, ok := strings.CutPrefix(a.Key, "repl_bytes_"); ok && !a.IsStr {
					if rep.ReplicationBytes == nil {
						rep.ReplicationBytes = map[string]int64{}
					}
					rep.ReplicationBytes[strings.ToUpper(set)] += a.Int
				}
			}
		case SpanAssign:
			for _, a := range s.Attrs {
				if class, ok := strings.CutPrefix(a.Key, "repl_class_bytes_"); ok && !a.IsStr {
					if rep.ReplicationBytesByClass == nil {
						rep.ReplicationBytesByClass = map[string]int64{}
					}
					rep.ReplicationBytesByClass[strings.ToUpper(class)] += a.Int
				}
			}
		case SpanShuffle:
			for _, a := range s.Attrs {
				switch a.Key {
				case "shuffled_bytes":
					rep.ShuffleBytes += a.Int
				case "remote_bytes":
					rep.RemoteBytes += a.Int
				}
			}
		case SpanSupplementary:
			for _, a := range s.Attrs {
				if a.Key == "pairs_in" {
					rep.SupplementaryPairs += a.Int
				}
			}
		}
	}
	if len(durs) > 0 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		rep.MaxTaskMicros = durs[len(durs)-1]
		rep.MedianTaskMicros = durs[len(durs)/2]
		if rep.MedianTaskMicros > 0 {
			rep.StragglerRatio = float64(rep.MaxTaskMicros) / float64(rep.MedianTaskMicros)
		}
	}
	return rep
}
