package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Node is one span rendered for the JSON tree export served by
// sjoind's /v1/joins/{id}/trace endpoint.
type Node struct {
	ID        uint64         `json:"id"`
	Parent    uint64         `json:"parent,omitempty"`
	Name      string         `json:"name"`
	Worker    string         `json:"worker,omitempty"`
	StartNano int64          `json:"start_unix_nano"`
	DurMicros int64          `json:"dur_micros"`
	Attrs     map[string]any `json:"attrs,omitempty"`
	Children  []*Node        `json:"children,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		if a.IsStr {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Int
		}
	}
	return m
}

func durMicros(s Span) int64 {
	if s.Done == 0 || s.Done < s.Start {
		return 0
	}
	return (s.Done - s.Start) / 1e3
}

// Tree assembles the recorded spans into a forest. Spans whose parent
// is unknown (or would point forward in append order, which a cycle
// from malformed remote data necessarily does) are promoted to roots,
// so the result is always finite and serialisable. Duplicate span ids
// keep the first occurrence.
func (t *Tracer) Tree() []*Node {
	spans := t.Spans()
	nodes := make(map[SpanID]*Node, len(spans))
	order := make([]*Node, 0, len(spans))
	ids := make([]SpanID, 0, len(spans))
	for _, s := range spans {
		if _, dup := nodes[s.ID]; dup {
			continue
		}
		n := &Node{
			ID:        uint64(s.ID),
			Parent:    uint64(s.Parent),
			Name:      s.Name,
			Worker:    s.Worker,
			StartNano: s.Start,
			DurMicros: durMicros(s),
			Attrs:     attrMap(s.Attrs),
		}
		nodes[s.ID] = n
		order = append(order, n)
		ids = append(ids, s.ID)
	}
	seen := make(map[SpanID]bool, len(order))
	var roots []*Node
	for i, n := range order {
		p := nodes[SpanID(n.Parent)]
		if n.Parent != 0 && p != nil && p != n && seen[SpanID(n.Parent)] {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
		seen[ids[i]] = true
	}
	return roots
}

// Graft attaches children under the node with the given span id,
// searching the forest recursively. It reports whether the parent was
// found. The fleet router uses it to stitch shard-local join trees
// (fetched over HTTP as Node forests) under its own proxy spans.
func Graft(roots []*Node, parent uint64, children []*Node) bool {
	if len(children) == 0 {
		return false
	}
	for _, n := range roots {
		if n.ID == parent {
			n.Children = append(n.Children, children...)
			return true
		}
		if Graft(n.Children, parent, children) {
			return true
		}
	}
	return false
}

// chromeEvent is one entry in the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace serialises the trace in Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing. Each worker becomes a
// named thread lane; spans are complete ("X") events with microsecond
// timestamps relative to the earliest span.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	var t0 int64 = -1
	workers := map[string]int{}
	var names []string
	for _, s := range spans {
		if t0 < 0 || s.Start < t0 {
			t0 = s.Start
		}
		if s.Worker != "" {
			if _, ok := workers[s.Worker]; !ok {
				workers[s.Worker] = 0
				names = append(names, s.Worker)
			}
		}
	}
	sort.Strings(names)
	for i, n := range names {
		workers[n] = i + 1
	}
	ct := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "spatialjoin"},
	})
	ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "orchestrator"},
	})
	for _, n := range names {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: workers[n],
			Args: map[string]any{"name": n},
		})
	}
	for _, s := range spans {
		end := s.Done
		if end < s.Start {
			end = s.Start
		}
		args := attrMap(s.Attrs)
		if args == nil {
			args = map[string]any{}
		}
		args["span_id"] = uint64(s.ID)
		if s.Parent != 0 {
			args["parent_span_id"] = uint64(s.Parent)
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start-t0) / 1e3,
			Dur:  float64(end-s.Start) / 1e3,
			Pid:  1,
			Tid:  workers[s.Worker],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}
