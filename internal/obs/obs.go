// Package obs is a zero-dependency tracing subsystem for spatial joins.
//
// A Tracer records a tree of spans per join — plan → partition →
// replicate → (shuffle) → local sweep tasks → supplementary join →
// dedup — with wall-clock timestamps, worker attribution, and typed
// attributes (partition ids, tuple counts, pairs emitted, replicas per
// agreement type, marked/locked edge counts, shuffle bytes). The tree
// can be exported as JSON (Tree), as Chrome trace-event format
// (WriteChromeTrace, loadable in Perfetto or chrome://tracing), or
// reduced to skew diagnostics (Skew).
//
// The nil tracer is free: every method on a nil *Tracer or nil *Span is
// a no-op that performs zero allocations, so call sites on the join hot
// path need no branching. Remote spans (e.g. from cluster worker
// processes) are stitched into the coordinator's tree with AddSpans;
// span-id uniqueness across processes is the caller's job (the cluster
// protocol hands each worker a disjoint id range via NewWithID).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one join trace across processes.
type TraceID uint64

// SpanID identifies one span within a trace. 0 means "no span" and is
// used as the parent of root spans.
type SpanID uint64

// Canonical span names. Orchestration layers use these so downstream
// consumers (skew reports, bench phase extraction) can match on them.
const (
	SpanJoin          = "join"
	SpanPlan          = "plan"
	SpanSample        = "sample"
	SpanPartition     = "partition"
	SpanReplicate     = "replicate"
	SpanShuffle       = "shuffle"
	SpanExecute       = "execute"
	SpanTask          = "task"
	SpanSupplementary = "supplementary-join"
	SpanDedup         = "dedup"
	SpanRebalance     = "rebalance"
	SpanCompact       = "compact"

	// Two-layer non-point join phase names: MBR tile assignment with
	// class tagging, the per-tile class-pair interval sweeps, and the
	// exact-geometry refinement of surviving candidates.
	SpanAssign = "assign"
	SpanSweep  = "sweep"
	SpanRefine = "refine"

	// Fleet-router span names: the routing decision, one span per
	// proxied shard request, dataset mirroring/strip shipping, and the
	// cross-shard result merge. Shard-local join trees are grafted under
	// the SpanFleetProxy spans when a stitched trace is served.
	SpanFleetJoin   = "fleet.join"
	SpanFleetProxy  = "fleet.proxy"
	SpanFleetMirror = "fleet.mirror"
	SpanFleetMerge  = "fleet.merge"
)

// Attr is one typed key/value attribute on a span.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// Span is one timed operation in a trace. Start/Done are unix
// nanoseconds; Done == 0 means the span has not ended. Fields are
// exported so spans can cross process boundaries (cluster wire
// protocol), but live spans must be mutated only through the methods,
// which synchronise against concurrent snapshots.
type Span struct {
	tr     *Tracer
	ID     SpanID
	Parent SpanID
	Name   string
	Worker string
	Start  int64
	Done   int64
	Attrs  []Attr
}

// DefaultLimit caps the spans retained per tracer so long-lived users
// (stream engines tracing every rebalance) cannot grow without bound.
const DefaultLimit = 1 << 16

// Tracer records spans for one trace. The zero value is not usable;
// construct with New or NewWithID. A nil *Tracer is a valid disabled
// tracer: Start returns nil and every nil-span method is a no-op.
type Tracer struct {
	id      TraceID
	next    atomic.Uint64 // last span id handed out
	limit   int
	mu      sync.Mutex
	spans   []*Span
	dropped int
}

var traceSeq atomic.Uint64

// New returns a tracer with a fresh process-unique trace id.
func New() *Tracer {
	id := TraceID(uint64(time.Now().UnixNano())<<16 | (traceSeq.Add(1) & 0xffff))
	return NewWithID(id, 0)
}

// NewWithID returns a tracer for an existing trace id whose span ids
// start above base. Cluster workers use a per-worker base so spans
// minted in different processes never collide when stitched.
func NewWithID(id TraceID, base SpanID) *Tracer {
	t := &Tracer{id: id, limit: DefaultLimit}
	t.next.Store(uint64(base))
	return t
}

// TraceID reports the trace id; 0 on a nil tracer.
func (t *Tracer) TraceID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// SetLimit overrides the retained-span cap (minimum 1).
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Start begins a span under parent (0 for a root span). Returns nil on
// a nil tracer or when the span cap is reached; nil spans accept every
// method as a free no-op.
func (t *Tracer) Start(parent SpanID, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		tr:     t,
		ID:     SpanID(t.next.Add(1)),
		Parent: parent,
		Name:   name,
		Start:  time.Now().UnixNano(),
	}
	t.mu.Lock()
	if len(t.spans) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// SpanID reports the span's id; 0 on a nil span.
func (s *Span) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.ID
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: v})
	s.tr.mu.Unlock()
	return s
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: v, IsStr: true})
	s.tr.mu.Unlock()
	return s
}

// SetWorker attributes the span to a named worker (thread lane in the
// Chrome trace, bucket in the skew report).
func (s *Span) SetWorker(w string) *Span {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	s.Worker = w
	s.tr.mu.Unlock()
	return s
}

// End marks the span finished. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	s.tr.mu.Lock()
	if s.Done == 0 {
		s.Done = now
	}
	s.tr.mu.Unlock()
}

// AddSpans imports already-finished spans (typically decoded from a
// remote worker) into the trace, subject to the span cap.
func (t *Tracer) AddSpans(spans []Span) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for i := range spans {
		if len(t.spans) >= t.limit {
			t.dropped += len(spans) - i
			break
		}
		s := spans[i]
		s.tr = t
		t.spans = append(t.spans, &s)
	}
	t.mu.Unlock()
}

// TakeSpans returns the recorded spans and clears the buffer while
// keeping the span-id counter, so cluster workers can ship spans to the
// coordinator incrementally (after each task) without resending or
// reusing ids. Unfinished spans are retained for a later take.
func (t *Tracer) TakeSpans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []Span
	kept := t.spans[:0]
	for _, s := range t.spans {
		if s.Done == 0 {
			kept = append(kept, s)
			continue
		}
		c := *s
		c.tr = nil
		c.Attrs = append([]Attr(nil), s.Attrs...)
		out = append(out, c)
	}
	t.spans = kept
	t.mu.Unlock()
	return out
}

// Spans returns a snapshot copy of all recorded spans in append order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
		out[i].tr = nil
		out[i].Attrs = append([]Attr(nil), s.Attrs...)
	}
	t.mu.Unlock()
	return out
}

// Dropped reports how many spans were discarded at the cap.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
