package twolayer

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"spatialjoin/internal/dpe"
	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// Defaults for the degenerate-tile fallback heuristic.
const (
	// DefaultFallbackMinEntries is the minimum tile population before
	// the kernel considers switching to the R-tree path — below it the
	// sweep wins regardless of shape.
	DefaultFallbackMinEntries = 48
	// DefaultFallbackExtentFrac is the mean x-extent (as a fraction of
	// the tile width) beyond which x-interval sweeping degenerates:
	// when most intervals span most of the tile, every pair survives
	// the x test and the sweep is a disguised nested loop.
	DefaultFallbackExtentFrac = 0.5
)

// KernelStats counts the kernel's filter/refine work across all tiles.
// The counters are atomics: partition tasks run concurrently. They stay
// zero for cluster runs, where the kernel instances live in the worker
// processes.
type KernelStats struct {
	Tiles         atomic.Int64 // tiles with both sides non-empty
	Candidates    atomic.Int64 // MBR-overlap pairs handed to refinement
	Emitted       atomic.Int64 // pairs that passed the exact predicate
	FallbackTiles atomic.Int64 // tiles joined via the R-tree path
	DecodeErrors  atomic.Int64 // replicas dropped on payload corruption
}

// Kernel is the per-tile class-pair mini-join. It implements the
// dpe.Kernel contract: tuples arrive grouped by tile with the geometry
// in the payload, classes are recomputed tile-locally from the MBR (no
// class tags travel on the wire), and the allowed class combinations
// are joined with a forward-scan interval sweep — or a bulk-loaded
// R-tree when the tile is degenerate.
type Kernel struct {
	Grid TileGrid
	Pred extgeom.Predicate

	// ForceFallback routes every tile through the R-tree path; the
	// differential tests use it to prove both paths emit identical
	// result sets.
	ForceFallback bool
	// FallbackMinEntries and FallbackExtentFrac tune the degeneracy
	// heuristic (zero selects the defaults).
	FallbackMinEntries int
	FallbackExtentFrac float64

	Stats KernelStats
}

// KernelFromDesc rebuilds a kernel from its wire description — the
// cluster worker's path.
func KernelFromDesc(desc dpe.KernelDesc) (*Kernel, error) {
	if desc.Kind != dpe.KernelTwoLayer {
		return nil, fmt.Errorf("twolayer: kernel desc kind %d is not KernelTwoLayer", desc.Kind)
	}
	if desc.TileNX < 1 || desc.TileNY < 1 {
		return nil, fmt.Errorf("twolayer: kernel desc tile grid %dx%d invalid", desc.TileNX, desc.TileNY)
	}
	if desc.Predicate > uint8(extgeom.WithinDistance) {
		return nil, fmt.Errorf("twolayer: kernel desc predicate %d unknown", desc.Predicate)
	}
	return &Kernel{
		Grid: NewTileGrid(desc.Bounds, desc.TileNX, desc.TileNY),
		Pred: extgeom.Predicate(desc.Predicate),
	}, nil
}

// Desc returns the wire description a remote worker rebuilds the kernel
// from. refineEps travels so plan validation can bound re-sweeps; the
// kernel itself always refines with the eps of the execution at hand.
func (k *Kernel) Desc(refineEps float64) dpe.KernelDesc {
	return dpe.KernelDesc{
		Kind:      dpe.KernelTwoLayer,
		Bounds:    k.Grid.Bounds,
		TileNX:    k.Grid.NX,
		TileNY:    k.Grid.NY,
		Predicate: uint8(k.Pred),
		RefineEps: refineEps,
	}
}

// entry is one replica materialised inside a tile: the (widened) MBR
// drives the filter, the object is decoded lazily on first refinement.
type entry struct {
	mbr geom.Rect
	t   tuple.Tuple
	obj *extgeom.Object
}

// tileScratch is the reusable per-tile working set: the class buckets
// of both sides plus the R-tree fallback's flattened S side. Tiles run
// concurrently across partition tasks, so the scratch cycles through a
// sync.Pool — after warm-up a tile join allocates nothing but the
// occasional bucket regrowth.
type tileScratch struct {
	byClassR, byClassS [numClasses][]entry
	boxes              []rtree.BoxEntry
	flatS              []*entry
	classS             []Class
}

var scratchPool = sync.Pool{New: func() any { return new(tileScratch) }}

// release drops the scratch's entry references (decoded geometries
// would otherwise pin arbitrarily large payloads inside the pool) and
// returns it, capacity intact.
func (sc *tileScratch) release() {
	for c := range sc.byClassR {
		clear(sc.byClassR[c])
		clear(sc.byClassS[c])
		sc.byClassR[c] = sc.byClassR[c][:0]
		sc.byClassS[c] = sc.byClassS[c][:0]
	}
	clear(sc.flatS)
	sc.boxes, sc.flatS, sc.classS = sc.boxes[:0], sc.flatS[:0], sc.classS[:0]
	scratchPool.Put(sc)
}

func (k *Kernel) object(e *entry) *extgeom.Object {
	if e.obj == nil {
		o, err := extgeom.DecodeObject(e.t.ID, e.t.Payload)
		if err != nil {
			k.Stats.DecodeErrors.Add(1)
			return nil
		}
		e.obj = &o
	}
	return e.obj
}

// widenR is the R-side MBR widening: WithinDistance assigns and
// classifies R objects by their ε-expanded MBR so that every pair
// within ε shares a tile. Intersects and Contains use the raw MBR.
func (k *Kernel) widenR(eps float64) float64 {
	if k.Pred == extgeom.WithinDistance {
		return eps
	}
	return 0
}

// Join joins one tile. eps is the execution threshold: a re-sweep with
// ε' ≤ plan ε re-classifies with the narrower widening, which both
// replica sets still cover, so exactly-once emission is preserved.
func (k *Kernel) Join(cell int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit) {
	col, row := k.Grid.TileCoords(cell)
	widen := k.widenR(eps)

	// Materialise replicas, classify tile-locally, and bucket by class
	// in pooled scratch.
	sc := scratchPool.Get().(*tileScratch)
	defer sc.release()
	byClassR, byClassS := &sc.byClassR, &sc.byClassS
	for _, t := range rs {
		mbr, err := extgeom.DecodeObjectBounds(t.Payload)
		if err != nil {
			k.Stats.DecodeErrors.Add(1)
			continue
		}
		if widen > 0 {
			mbr = mbr.Expand(widen)
		}
		if !k.Grid.Covers(mbr, col, row) {
			// A re-sweep at ε' < plan ε: the ε-widened assignment put a
			// replica here, but the ε'-widened MBR no longer reaches
			// this tile. Its reference tile is covered by both sides'
			// narrower replicas, so dropping the stale copy is safe —
			// and classifying it would double-emit.
			continue
		}
		c := k.Grid.Classify(mbr, col, row)
		byClassR[c] = append(byClassR[c], entry{mbr: mbr, t: t})
	}
	for _, t := range ss {
		mbr, err := extgeom.DecodeObjectBounds(t.Payload)
		if err != nil {
			k.Stats.DecodeErrors.Add(1)
			continue
		}
		if !k.Grid.Covers(mbr, col, row) {
			continue
		}
		c := k.Grid.Classify(mbr, col, row)
		byClassS[c] = append(byClassS[c], entry{mbr: mbr, t: t})
	}
	k.Stats.Tiles.Add(1)

	if k.ForceFallback || k.degenerate(sc) {
		k.Stats.FallbackTiles.Add(1)
		k.joinRtree(sc, eps, emit)
		return
	}

	for cr := ClassA; cr < numClasses; cr++ {
		for cs := ClassA; cs < numClasses; cs++ {
			if !comboAllowed(cr, cs) {
				continue
			}
			k.sweepCombo(byClassR[cr], byClassS[cs], eps, emit)
		}
	}
}

// degenerate applies the fallback heuristic: a populated tile whose
// entries' x-extents mostly span the tile makes the x-interval sweep
// quadratic, so the R-tree (which also partitions on y) wins.
func (k *Kernel) degenerate(sc *tileScratch) bool {
	byClassR, byClassS := &sc.byClassR, &sc.byClassS
	minEntries := k.FallbackMinEntries
	if minEntries <= 0 {
		minEntries = DefaultFallbackMinEntries
	}
	frac := k.FallbackExtentFrac
	if frac <= 0 {
		frac = DefaultFallbackExtentFrac
	}
	tw := k.Grid.tw
	if tw <= 0 {
		return false
	}
	n := 0
	var extent float64
	for c := ClassA; c < numClasses; c++ {
		for i := range byClassR[c] {
			extent += byClassR[c][i].mbr.Width()
		}
		for i := range byClassS[c] {
			extent += byClassS[c][i].mbr.Width()
		}
		n += len(byClassR[c]) + len(byClassS[c])
	}
	return n >= minEntries && extent/float64(n) >= frac*tw
}

// sweepCombo forward-scan sweeps one allowed class pair: both lists
// sorted by MBR x-start, the earlier-starting entry scanned forward in
// the other list while x-intervals overlap, then a y-overlap check,
// then exact refinement.
func (k *Kernel) sweepCombo(res, ses []entry, eps float64, emit sweep.Emit) {
	if len(res) == 0 || len(ses) == 0 {
		return
	}
	slices.SortFunc(res, func(a, b entry) int { return cmp.Compare(a.mbr.MinX, b.mbr.MinX) })
	slices.SortFunc(ses, func(a, b entry) int { return cmp.Compare(a.mbr.MinX, b.mbr.MinX) })
	i, j := 0, 0
	for i < len(res) && j < len(ses) {
		if res[i].mbr.MinX <= ses[j].mbr.MinX {
			r := &res[i]
			for jj := j; jj < len(ses) && ses[jj].mbr.MinX <= r.mbr.MaxX; jj++ {
				k.tryPair(r, &ses[jj], eps, emit)
			}
			i++
		} else {
			s := &ses[j]
			for ii := i; ii < len(res) && res[ii].mbr.MinX <= s.mbr.MaxX; ii++ {
				k.tryPair(&res[ii], s, eps, emit)
			}
			j++
		}
	}
}

// tryPair finishes the filter (y overlap; x overlap is the sweep's
// invariant) and refines with the exact predicate.
func (k *Kernel) tryPair(r, s *entry, eps float64, emit sweep.Emit) {
	if r.mbr.MinY > s.mbr.MaxY || s.mbr.MinY > r.mbr.MaxY {
		return
	}
	k.Stats.Candidates.Add(1)
	ro, so := k.object(r), k.object(s)
	if ro == nil || so == nil {
		return
	}
	if extgeom.Eval(k.Pred, ro, so, eps) {
		k.Stats.Emitted.Add(1)
		emit(r.t, s.t)
	}
}

// joinRtree is the degenerate-tile path: STR bulk-load the S replicas
// into a BoxTree, probe with each R MBR, and gate emissions on the same
// class table. The candidate set (MBR x AND y overlap) is identical to
// the sweeps', so both paths emit identical result sets.
func (k *Kernel) joinRtree(sc *tileScratch, eps float64, emit sweep.Emit) {
	for c := ClassA; c < numClasses; c++ {
		for i := range sc.byClassS[c] {
			e := &sc.byClassS[c][i]
			sc.boxes = append(sc.boxes, rtree.BoxEntry{Rect: e.mbr, Ref: int32(len(sc.flatS))})
			sc.flatS = append(sc.flatS, e)
			sc.classS = append(sc.classS, c)
		}
	}
	if len(sc.boxes) == 0 {
		return
	}
	tree := rtree.BuildBoxes(sc.boxes, rtree.DefaultFanout)
	for cr := ClassA; cr < numClasses; cr++ {
		for i := range sc.byClassR[cr] {
			r := &sc.byClassR[cr][i]
			tree.SearchIntersects(r.mbr, func(be rtree.BoxEntry) {
				if !comboAllowed(cr, sc.classS[be.Ref]) {
					return
				}
				k.tryPair(r, sc.flatS[be.Ref], eps, emit)
			})
		}
	}
}
