package twolayer

import (
	"context"
	"fmt"
	"sync/atomic"

	"spatialjoin/internal/core"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/tuple"
)

// maxSample caps the MBRs fed to the costmodel's resolution selection.
const maxSample = 1024

// Config describes one non-point join.
type Config struct {
	R, S []extgeom.Object
	Pred extgeom.Predicate
	// Eps is the WithinDistance threshold; ignored (and allowed zero)
	// for Intersects and Contains.
	Eps float64

	// Tiles forces a Tiles×Tiles grid; zero selects the resolution via
	// the cost model from sampled MBRs.
	Tiles int

	Workers    int
	Partitions int
	PoolSize   int
	Collect    bool

	// Bounds overrides the data bounds (otherwise the union of both
	// inputs' MBRs). MBRs outside are clamped, consistently between
	// assignment and the kernel.
	Bounds *geom.Rect

	// Engine executes the reduce phase; nil is the in-process local
	// engine, a cluster engine ships the tiles to worker processes.
	Engine dpe.Engine

	// ForceFallback routes every tile through the R-tree path (test
	// hook; see Kernel.ForceFallback).
	ForceFallback bool

	Tracer      *obs.Tracer
	TraceParent obs.SpanID
}

// Plan is a prepared two-layer join: encoded, replicated, tile-bucketed
// inputs plus the kernel, reusable across Executes.
type Plan struct {
	Grid       TileGrid
	Prediction costmodel.TwoLayerPrediction

	kernel *Kernel
	prep   *dpe.Prepared
	cfg    Config
	// classBytes accumulates replica payload bytes per class during the
	// map phase (atomics: map splits run concurrently).
	classBytes [numClasses]atomic.Int64
}

// Kernel exposes the plan's kernel (its Stats in particular).
func (p *Plan) Kernel() *Kernel { return p.kernel }

// ClassBytes returns the replica payload bytes the map phase produced
// per class, keyed by class name — class A is the native copies, B/C/D
// the extent-replication overhead.
func (p *Plan) ClassBytes() map[string]int64 {
	out := make(map[string]int64, int(numClasses))
	for c := ClassA; c < numClasses; c++ {
		out[c.String()] = p.classBytes[c].Load()
	}
	return out
}

// Metrics returns the plan's build-phase metrics.
func (p *Plan) Metrics() dpe.Metrics { return p.prep.BuildMetrics() }

// Eps returns the plan's replication threshold (the upper bound for
// re-sweeps); zero for Intersects/Contains plans.
func (p *Plan) Eps() float64 {
	if p.cfg.Pred == extgeom.WithinDistance {
		return p.cfg.Eps
	}
	return 0
}

// FootprintBytes returns the wire size of the tile-bucketed replicas.
func (p *Plan) FootprintBytes() int64 { return p.prep.FootprintBytes() }

// Encode turns objects into join tuples: the object id, the MBR center
// as the point (cluster shuffle framing needs one), and the geometry
// wire encoding as the payload.
func Encode(objs []extgeom.Object) ([]tuple.Tuple, error) {
	out := make([]tuple.Tuple, len(objs))
	for i := range objs {
		o := &objs[i]
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("twolayer: object %d: %w", o.ID, err)
		}
		out[i] = tuple.Tuple{ID: o.ID, Pt: o.Bounds().Center(), Payload: extgeom.AppendObject(nil, o)}
	}
	return out, nil
}

// Prepare samples, picks the grid, encodes both inputs, and runs the
// replication map + shuffle through dpe.
func Prepare(cfg Config) (*Plan, error) {
	if cfg.Pred > extgeom.WithinDistance {
		return nil, fmt.Errorf("twolayer: unknown predicate %d", cfg.Pred)
	}
	if cfg.Pred == extgeom.WithinDistance && cfg.Eps <= 0 {
		return nil, fmt.Errorf("twolayer: WithinDistance needs a positive eps, got %v", cfg.Eps)
	}
	widen := 0.0
	if cfg.Pred == extgeom.WithinDistance {
		widen = cfg.Eps
	}

	rs, err := Encode(cfg.R)
	if err != nil {
		return nil, err
	}
	ss, err := Encode(cfg.S)
	if err != nil {
		return nil, err
	}

	// ---- Partitioning decision: bounds, sampled MBRs, resolution.
	partSp := cfg.Tracer.Start(cfg.TraceParent, obs.SpanPartition)
	bounds := dataBounds(cfg.Bounds, cfg.R, cfg.S)
	workers, partitions := core.Parallelism(cfg.Workers, cfg.Partitions)
	var pred costmodel.TwoLayerPrediction
	if cfg.Tiles > 0 {
		pred = costmodel.TwoLayerPrediction{NX: cfg.Tiles, NY: cfg.Tiles}
	} else {
		sampleR := sampleMBRs(cfg.R, widen)
		sampleS := sampleMBRs(cfg.S, 0)
		pred = costmodel.TwoLayerResolution(bounds, sampleR, sampleS, len(cfg.R), len(cfg.S), workers)
	}
	grid := NewTileGrid(bounds, pred.NX, pred.NY)
	partSp.SetInt("tiles_x", int64(grid.NX)).SetInt("tiles_y", int64(grid.NY))
	partSp.SetInt("predicted_candidates", int64(pred.CandidatePairs))
	partSp.SetInt("predicted_replicas", int64(pred.Replicated))
	partSp.End()

	p := &Plan{Grid: grid, Prediction: pred, cfg: cfg}
	p.kernel = &Kernel{Grid: grid, Pred: cfg.Pred, ForceFallback: cfg.ForceFallback}

	// dpe needs a positive plan ε even for the ε-less predicates; the
	// kernel never interprets it as a distance for those.
	planEps := cfg.Eps
	if cfg.Pred != extgeom.WithinDistance {
		planEps = 1
	}

	spec := dpe.Spec{
		R:            rs,
		S:            ss,
		Eps:          planEps,
		TupleAssignR: p.assign(widen),
		TupleAssignS: p.assign(0),
		Part:         dpe.HashPartitioner{N: partitions},
		Workers:      cfg.Workers,
		PoolSize:     cfg.PoolSize,
		Collect:      cfg.Collect,
		Kernel:       p.kernel.Join,
		KernelDesc:   p.kernel.Desc(planEps),
		Engine:       cfg.Engine,
		Tracer:       cfg.Tracer,
		TraceParent:  cfg.TraceParent,
	}

	// ---- Assignment: the map + shuffle phases, with per-class replica
	// bytes accumulated by the assignment closures.
	assignSp := cfg.Tracer.Start(cfg.TraceParent, obs.SpanAssign)
	prep, err := dpe.Prepare(spec)
	if err != nil {
		assignSp.End()
		return nil, err
	}
	for c := ClassA; c < numClasses; c++ {
		assignSp.SetInt("repl_class_bytes_"+c.String(), p.classBytes[c].Load())
	}
	assignSp.End()
	p.prep = prep
	return p, nil
}

// assign builds the tuple-assignment closure for one side: decode the
// MBR from the payload, widen, cover tiles (reference tile first), and
// account replica bytes per class.
func (p *Plan) assign(widen float64) dpe.TupleAssign {
	g := p.Grid
	return func(t tuple.Tuple, _ tuple.Set, dst []int) []int {
		mbr, err := extgeom.DecodeObjectBounds(t.Payload)
		if err != nil {
			// Undecodable payloads still need a home; the kernel drops
			// them again and counts the corruption.
			return append(dst, 0)
		}
		if widen > 0 {
			mbr = mbr.Expand(widen)
		}
		dst = g.Cover(mbr, dst)
		sz := int64(len(t.Payload))
		for _, cell := range dst {
			col, row := g.TileCoords(cell)
			p.classBytes[g.Classify(mbr, col, row)].Add(sz)
		}
		return dst
	}
}

// ExecOptions are the per-execution knobs.
type ExecOptions struct {
	// Eps re-sweeps a WithinDistance plan at ε' ≤ the plan's ε: both
	// replica sets cover the narrower widening's reference tiles, so
	// correctness and exactly-once emission hold. Zero means the plan ε.
	Eps     float64
	Collect bool

	Tracer      *obs.Tracer
	TraceParent obs.SpanID
}

// Execute runs the per-tile mini-joins over the prepared tiles.
func (p *Plan) Execute(ctx context.Context, opt ExecOptions) (*dpe.Result, error) {
	if opt.Eps != 0 && p.cfg.Pred != extgeom.WithinDistance {
		return nil, fmt.Errorf("twolayer: eps re-sweep only applies to WithinDistance plans")
	}
	tr, parent := opt.Tracer, opt.TraceParent
	if tr == nil {
		tr, parent = p.cfg.Tracer, p.cfg.TraceParent
	}
	cand0, emit0 := p.kernel.Stats.Candidates.Load(), p.kernel.Stats.Emitted.Load()
	sweepSp := tr.Start(parent, obs.SpanSweep)
	res, err := p.prep.ExecuteContext(ctx, dpe.ExecOptions{
		Eps:         opt.Eps,
		Collect:     opt.Collect,
		Tracer:      opt.Tracer,
		TraceParent: opt.TraceParent,
	})
	if err != nil {
		sweepSp.End()
		return nil, err
	}
	// The sweep and refine phases interleave inside the partition
	// tasks; the spans carry the kernel's counter deltas (zero on
	// cluster runs, where the kernels live in the worker processes).
	cand := p.kernel.Stats.Candidates.Load() - cand0
	sweepSp.SetInt("tiles", p.kernel.Stats.Tiles.Load())
	sweepSp.SetInt("candidates", cand)
	sweepSp.SetInt("fallback_tiles", p.kernel.Stats.FallbackTiles.Load())
	sweepSp.End()
	refineSp := tr.Start(parent, obs.SpanRefine)
	refineSp.SetInt("candidates", cand)
	refineSp.SetInt("emitted", p.kernel.Stats.Emitted.Load()-emit0)
	refineSp.SetInt("decode_errors", p.kernel.Stats.DecodeErrors.Load())
	refineSp.End()
	return res, nil
}

// Join is the one-shot convenience: Prepare + Execute.
func Join(cfg Config) (*dpe.Result, error) {
	p, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	return p.Execute(context.Background(), ExecOptions{Collect: cfg.Collect})
}

// dataBounds resolves the tile grid frame.
func dataBounds(explicit *geom.Rect, rs, ss []extgeom.Object) geom.Rect {
	if explicit != nil {
		return *explicit
	}
	b := geom.EmptyRect()
	for i := range rs {
		b = b.Union(rs[i].Bounds())
	}
	for i := range ss {
		b = b.Union(ss[i].Bounds())
	}
	if b.IsEmpty() {
		b = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	return b
}

// sampleMBRs takes an evenly-strided sample of up to maxSample MBRs,
// widened for the ε predicate — deterministic, so plans are stable.
func sampleMBRs(objs []extgeom.Object, widen float64) []geom.Rect {
	if len(objs) == 0 {
		return nil
	}
	stride := (len(objs) + maxSample - 1) / maxSample
	out := make([]geom.Rect, 0, (len(objs)+stride-1)/stride)
	for i := 0; i < len(objs); i += stride {
		m := objs[i].Bounds()
		if widen > 0 {
			m = m.Expand(widen)
		}
		out = append(out, m)
	}
	return out
}
