// Package twolayer implements the two-layer space-oriented partitioning
// join for non-point objects (rectangles, polylines, simple polygons):
// each object's MBR — ε-widened on the R side for WithinDistance — is
// replicated into every tile it overlaps and tagged with a tile class,
// and per-tile class-pair mini-joins emit every result pair exactly
// once with no dedup pass and no reference-point hash set.
//
// Classes, per tile T (grid coordinates of the MBR's begin corner —
// its bottom-left, after clamping to the data bounds — vs T's):
//
//	A — the begin corner lies in T
//	B — the MBR crosses T's left edge (begins in an earlier column,
//	    same row)
//	C — the MBR crosses T's bottom edge (begins in an earlier row,
//	    same column)
//	D — the MBR overlaps T's interior only (begins in an earlier
//	    column AND an earlier row)
//
// For a candidate pair the reference tile — the unique tile containing
// (max of the two begin xs, max of the two begin ys) — is covered by
// both MBRs, and only there does the pair's class combination land in
// the allowed table. Emitting exactly the allowed combinations per tile
// therefore emits each pair exactly once.
package twolayer

import (
	"spatialjoin/internal/geom"
)

// Class tags one replica of an object within one tile.
type Class uint8

const (
	ClassA Class = iota
	ClassB
	ClassC
	ClassD
	numClasses
)

// String names the class for span attributes and skew reports.
func (c Class) String() string {
	switch c {
	case ClassA:
		return "a"
	case ClassB:
		return "b"
	case ClassC:
		return "c"
	case ClassD:
		return "d"
	}
	return "?"
}

// comboTable marks the class combinations a tile joins. Each allowed
// combination pins the tile to the pair's reference tile:
//
//	        s∈A   s∈B   s∈C   s∈D
//	r∈A      ✓     ✓     ✓     ✓
//	r∈B      ✓     ·     ✓     ·
//	r∈C      ✓     ✓     ·     ·
//	r∈D      ✓     ·     ·     ·
//
// (The B×C and C×B entries are required: with r beginning in an earlier
// column and s in an earlier row, the reference tile sees exactly that
// combination and no other tile does.)
var comboTable = [numClasses][numClasses]bool{
	ClassA: {ClassA: true, ClassB: true, ClassC: true, ClassD: true},
	ClassB: {ClassA: true, ClassC: true},
	ClassC: {ClassA: true, ClassB: true},
	ClassD: {ClassA: true},
}

// comboAllowed reports whether a tile emits pairs of an r-replica of
// class cr against an s-replica of class cs.
func comboAllowed(cr, cs Class) bool { return comboTable[cr][cs] }

// TileGrid is the uniform tile decomposition both layers share: the
// first layer is the tile → partition routing (dpe's partitioner), the
// second the per-tile class separation.
type TileGrid struct {
	Bounds geom.Rect
	NX, NY int

	tw, th float64
}

// NewTileGrid builds an nx×ny tile grid over bounds (both clamped to at
// least 1).
func NewTileGrid(bounds geom.Rect, nx, ny int) TileGrid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	g := TileGrid{Bounds: bounds, NX: nx, NY: ny}
	g.tw = bounds.Width() / float64(nx)
	g.th = bounds.Height() / float64(ny)
	return g
}

// NumTiles returns the tile count; tile ids lie in [0, NumTiles()).
func (g TileGrid) NumTiles() int { return g.NX * g.NY }

// ColOf returns the clamped column of an x coordinate. Every consumer —
// assignment, classification, kernel — must go through this so the
// begin-corner grid coordinates are computed identically everywhere;
// comparing float tile edges instead would let replication and
// classification disagree on objects flush with an edge.
func (g TileGrid) ColOf(x float64) int {
	if g.tw <= 0 {
		return 0
	}
	c := int((x - g.Bounds.MinX) / g.tw)
	if c < 0 {
		return 0
	}
	if c >= g.NX {
		return g.NX - 1
	}
	return c
}

// RowOf returns the clamped row of a y coordinate.
func (g TileGrid) RowOf(y float64) int {
	if g.th <= 0 {
		return 0
	}
	r := int((y - g.Bounds.MinY) / g.th)
	if r < 0 {
		return 0
	}
	if r >= g.NY {
		return g.NY - 1
	}
	return r
}

// TileID returns the id of tile (col, row).
func (g TileGrid) TileID(col, row int) int { return row*g.NX + col }

// TileCoords inverts TileID.
func (g TileGrid) TileCoords(id int) (col, row int) { return id % g.NX, id / g.NX }

// Cover appends the ids of every tile the MBR overlaps to dst and
// returns it, the reference tile (the one holding the clamped begin
// corner — the class-A replica) first, then the rest in row-major
// order. The first-id-is-native contract matches dpe's map phase.
func (g TileGrid) Cover(mbr geom.Rect, dst []int) []int {
	c0, c1 := g.ColOf(mbr.MinX), g.ColOf(mbr.MaxX)
	r0, r1 := g.RowOf(mbr.MinY), g.RowOf(mbr.MaxY)
	dst = append(dst, g.TileID(c0, r0))
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			if col == c0 && row == r0 {
				continue
			}
			dst = append(dst, g.TileID(col, row))
		}
	}
	return dst
}

// Covers reports whether tile (col, row) is one of Cover(mbr)'s. The
// kernel uses it to drop stale replicas on ε re-sweeps: a plan widened
// at ε leaves replicas in tiles the ε'-widened MBR no longer reaches,
// and classifying those would fabricate classes.
func (g TileGrid) Covers(mbr geom.Rect, col, row int) bool {
	return g.ColOf(mbr.MinX) <= col && col <= g.ColOf(mbr.MaxX) &&
		g.RowOf(mbr.MinY) <= row && row <= g.RowOf(mbr.MaxY)
}

// Classify returns the class of the MBR's replica in tile (col, row).
// The tile must be one of Cover(mbr)'s.
func (g TileGrid) Classify(mbr geom.Rect, col, row int) Class {
	beginCol, beginRow := g.ColOf(mbr.MinX), g.RowOf(mbr.MinY)
	switch {
	case col == beginCol && row == beginRow:
		return ClassA
	case row == beginRow:
		return ClassB
	case col == beginCol:
		return ClassC
	default:
		return ClassD
	}
}
