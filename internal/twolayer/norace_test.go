//go:build !race

package twolayer

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
