package twolayer

import (
	"cmp"
	"context"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"spatialjoin/internal/dpe"
	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/extjoin"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/sedonasim"
	"spatialjoin/internal/tuple"
)

// ---- Test data -------------------------------------------------------

func randObjects(rng *rand.Rand, n int, idBase int64, world geom.Rect, maxExtent float64) []extgeom.Object {
	out := make([]extgeom.Object, n)
	for i := range out {
		cx := world.MinX + rng.Float64()*world.Width()
		cy := world.MinY + rng.Float64()*world.Height()
		r := maxExtent * (0.05 + 0.95*rng.Float64())
		id := idBase + int64(i)
		switch rng.Intn(3) {
		case 0: // axis-aligned rectangle as a 4-vertex polygon
			w, h := r*(0.2+rng.Float64()), r*(0.2+rng.Float64())
			out[i] = extgeom.NewPolygon(id, []geom.Point{
				{X: cx - w, Y: cy - h}, {X: cx + w, Y: cy - h},
				{X: cx + w, Y: cy + h}, {X: cx - w, Y: cy + h},
			})
		case 1: // polyline
			nv := 2 + rng.Intn(4)
			verts := make([]geom.Point, nv)
			for j := range verts {
				verts[j] = geom.Point{X: cx + (rng.Float64()*2-1)*r, Y: cy + (rng.Float64()*2-1)*r}
			}
			out[i] = extgeom.NewPolyline(id, verts)
		default: // star-shaped simple polygon
			nv := 3 + rng.Intn(5)
			angles := make([]float64, nv)
			for j := range angles {
				angles[j] = rng.Float64() * 2 * math.Pi
			}
			slices.Sort(angles)
			verts := make([]geom.Point, nv)
			for j, a := range angles {
				rad := r * (0.3 + 0.7*rng.Float64())
				verts[j] = geom.Point{X: cx + rad*math.Cos(a), Y: cy + rad*math.Sin(a)}
			}
			out[i] = extgeom.NewPolygon(id, verts)
		}
	}
	return out
}

func bruteForce(rs, ss []extgeom.Object, pred extgeom.Predicate, eps float64) []tuple.Pair {
	var out []tuple.Pair
	for i := range rs {
		for j := range ss {
			if extgeom.Eval(pred, &rs[i], &ss[j], eps) {
				out = append(out, tuple.Pair{RID: rs[i].ID, SID: ss[j].ID})
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []tuple.Pair) {
	slices.SortFunc(ps, func(a, b tuple.Pair) int {
		if a.RID != b.RID {
			return cmp.Compare(a.RID, b.RID)
		}
		return cmp.Compare(a.SID, b.SID)
	})
}

func pairsEqual(t *testing.T, label string, got, want []tuple.Pair) {
	t.Helper()
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d is %v, want %v", label, i, got[i], want[i])
		}
	}
}

var allPredicates = []extgeom.Predicate{extgeom.Intersects, extgeom.Contains, extgeom.WithinDistance}

// ---- Grid unit tests -------------------------------------------------

func TestTwoLayerGridCoverAndClassify(t *testing.T) {
	g := NewTileGrid(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 5, 5)
	// An MBR spanning tiles (1..2, 1..2): reference tile first.
	mbr := geom.Rect{MinX: 2.5, MinY: 2.5, MaxX: 5.5, MaxY: 5.5}
	cover := g.Cover(mbr, nil)
	if len(cover) != 4 {
		t.Fatalf("cover = %v, want 4 tiles", cover)
	}
	if cover[0] != g.TileID(1, 1) {
		t.Fatalf("reference tile %d not first in %v", g.TileID(1, 1), cover)
	}
	wantClass := map[int]Class{
		g.TileID(1, 1): ClassA,
		g.TileID(2, 1): ClassB,
		g.TileID(1, 2): ClassC,
		g.TileID(2, 2): ClassD,
	}
	for _, tile := range cover {
		col, row := g.TileCoords(tile)
		if got := g.Classify(mbr, col, row); got != wantClass[tile] {
			t.Errorf("tile (%d,%d): class %v, want %v", col, row, got, wantClass[tile])
		}
	}
	// Out-of-bounds MBRs clamp onto border tiles.
	out := g.Cover(geom.Rect{MinX: -5, MinY: -5, MaxX: -1, MaxY: -1}, nil)
	if len(out) != 1 || out[0] != g.TileID(0, 0) {
		t.Fatalf("out-of-bounds cover = %v, want [0]", out)
	}
	// An MBR flush with a tile edge: Cover and Classify agree on the
	// begin tile (both go through ColOf/RowOf).
	edge := geom.Rect{MinX: 4, MinY: 4, MaxX: 4, MaxY: 4} // exactly on the (2,2) corner
	cov := g.Cover(edge, nil)
	if len(cov) != 1 {
		t.Fatalf("edge cover = %v", cov)
	}
	col, row := g.TileCoords(cov[0])
	if got := g.Classify(edge, col, row); got != ClassA {
		t.Fatalf("edge replica class %v, want A", got)
	}
}

func TestTwoLayerComboTable(t *testing.T) {
	want := map[[2]Class]bool{
		{ClassA, ClassA}: true, {ClassA, ClassB}: true, {ClassB, ClassA}: true,
		{ClassA, ClassC}: true, {ClassC, ClassA}: true, {ClassB, ClassC}: true,
		{ClassC, ClassB}: true, {ClassA, ClassD}: true, {ClassD, ClassA}: true,
	}
	n := 0
	for cr := ClassA; cr < numClasses; cr++ {
		for cs := ClassA; cs < numClasses; cs++ {
			if comboAllowed(cr, cs) {
				n++
				if !want[[2]Class{cr, cs}] {
					t.Errorf("combo %v×%v allowed but should not be", cr, cs)
				}
			}
		}
	}
	if n != len(want) {
		t.Errorf("%d combos allowed, want %d", n, len(want))
	}
}

// ---- Differential tests ---------------------------------------------

func TestTwoLayerVsBruteForce(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rs := randObjects(rng, 300, 0, world, 3+rng.Float64()*5)
		ss := randObjects(rng, 300, 10_000, world, 3+rng.Float64()*5)
		for _, pred := range allPredicates {
			for _, tiles := range []int{0, 1, 7} {
				res, err := Join(Config{
					R: rs, S: ss, Pred: pred, Eps: 2.5, Tiles: tiles, Collect: true,
				})
				if err != nil {
					t.Fatalf("seed %d %v tiles=%d: %v", seed, pred, tiles, err)
				}
				want := bruteForce(rs, ss, pred, 2.5)
				pairsEqual(t, fmt.Sprintf("seed %d %v tiles=%d", seed, pred, tiles), res.Pairs, want)
			}
		}
	}
}

func TestTwoLayerVsSedonasim(t *testing.T) {
	world := geom.Rect{MinX: -50, MinY: -50, MaxX: 50, MaxY: 50}
	rng := rand.New(rand.NewSource(42))
	rs := randObjects(rng, 500, 0, world, 4)
	ss := randObjects(rng, 350, 10_000, world, 4)
	for _, pred := range allPredicates {
		res, err := Join(Config{R: rs, S: ss, Pred: pred, Eps: 1.5, Collect: true})
		if err != nil {
			t.Fatalf("%v: %v", pred, err)
		}
		oracle, err := sedonasim.JoinObjects(rs, ss, sedonasim.ObjectsConfig{Pred: pred, Eps: 1.5})
		if err != nil {
			t.Fatalf("sedonasim %v: %v", pred, err)
		}
		sortPairs(oracle)
		pairsEqual(t, pred.String(), res.Pairs, oracle)
	}
}

func TestTwoLayerVsExtjoinWithin(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 80, MaxY: 80}
	rng := rand.New(rand.NewSource(7))
	rs := randObjects(rng, 400, 0, world, 3)
	ss := randObjects(rng, 400, 10_000, world, 3)
	const eps = 2.0
	res, err := Join(Config{R: rs, S: ss, Pred: extgeom.WithinDistance, Eps: eps, Collect: true})
	if err != nil {
		t.Fatalf("twolayer: %v", err)
	}
	ext, err := extjoin.Join(rs, ss, extjoin.Config{Eps: eps, Collect: true})
	if err != nil {
		t.Fatalf("extjoin: %v", err)
	}
	pairsEqual(t, "within", res.Pairs, func() []tuple.Pair { sortPairs(ext.Pairs); return ext.Pairs }())
}

// TestTwoLayerNoDuplicates is the exactly-once proof: the collected
// pairs are the raw kernel emissions (no dedup pass, no hash set
// anywhere in the path), so any double emission would surface as a
// repeated pair.
func TestTwoLayerNoDuplicates(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 60, MaxY: 60}
	rng := rand.New(rand.NewSource(11))
	// Fat objects: extents comparable to tile sizes, so B/C/D replicas
	// and every mini-join combo occur.
	rs := randObjects(rng, 400, 0, world, 10)
	ss := randObjects(rng, 400, 10_000, world, 10)
	for _, pred := range allPredicates {
		for _, tiles := range []int{2, 5, 16} {
			res, err := Join(Config{R: rs, S: ss, Pred: pred, Eps: 3, Tiles: tiles, Collect: true})
			if err != nil {
				t.Fatalf("%v tiles=%d: %v", pred, tiles, err)
			}
			counts := map[tuple.Pair]int{}
			for _, p := range res.Pairs {
				counts[p]++
				if counts[p] > 1 {
					t.Fatalf("%v tiles=%d: pair %v emitted %d times", pred, tiles, p, counts[p])
				}
			}
		}
	}
}

func TestTwoLayerForcedFallbackEquivalence(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 60, MaxY: 60}
	rng := rand.New(rand.NewSource(13))
	// Extreme aspect ratios: long flat rectangles that degenerate the
	// x-interval sweep — the fallback's home turf.
	rs := make([]extgeom.Object, 200)
	for i := range rs {
		cx, cy := rng.Float64()*60, rng.Float64()*60
		w, h := 5+rng.Float64()*20, 0.05+rng.Float64()*0.2
		rs[i] = extgeom.NewPolygon(int64(i), []geom.Point{
			{X: cx - w, Y: cy - h}, {X: cx + w, Y: cy - h},
			{X: cx + w, Y: cy + h}, {X: cx - w, Y: cy + h},
		})
	}
	ss := randObjects(rng, 300, 10_000, world, 6)
	for _, pred := range allPredicates {
		base, err := Join(Config{R: rs, S: ss, Pred: pred, Eps: 2, Tiles: 4, Collect: true})
		if err != nil {
			t.Fatalf("sweep %v: %v", pred, err)
		}
		forced, err := Join(Config{R: rs, S: ss, Pred: pred, Eps: 2, Tiles: 4, Collect: true, ForceFallback: true})
		if err != nil {
			t.Fatalf("fallback %v: %v", pred, err)
		}
		sortPairs(base.Pairs)
		pairsEqual(t, "fallback "+pred.String(), forced.Pairs, base.Pairs)
	}
}

func TestTwoLayerFallbackHeuristicFires(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// One tile full of tile-spanning slivers must trip the heuristic.
	rs := make([]extgeom.Object, 80)
	ss := make([]extgeom.Object, 80)
	for i := range rs {
		y := rng.Float64() * 10
		rs[i] = extgeom.NewPolyline(int64(i), []geom.Point{{X: 0.1, Y: y}, {X: 9.9, Y: y + 0.01}})
		y = rng.Float64() * 10
		ss[i] = extgeom.NewPolyline(int64(1000+i), []geom.Point{{X: 0.1, Y: y}, {X: 9.9, Y: y + 0.01}})
	}
	p, err := Prepare(Config{R: rs, S: ss, Pred: extgeom.Intersects, Tiles: 1, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background(), ExecOptions{Collect: true}); err != nil {
		t.Fatal(err)
	}
	if p.Kernel().Stats.FallbackTiles.Load() == 0 {
		t.Fatal("degeneracy heuristic never chose the R-tree path")
	}
}

// TestTwoLayerResweep: a WithinDistance plan prepared at ε serves any
// ε' ≤ ε without re-preparation, still exact and duplicate-free.
func TestTwoLayerResweep(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 70, MaxY: 70}
	rng := rand.New(rand.NewSource(19))
	rs := randObjects(rng, 300, 0, world, 4)
	ss := randObjects(rng, 300, 10_000, world, 4)
	const planEps = 3.0
	p, err := Prepare(Config{R: rs, S: ss, Pred: extgeom.WithinDistance, Eps: planEps, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{planEps, 1.5, 0.4} {
		res, err := p.Execute(context.Background(), ExecOptions{Eps: eps, Collect: true})
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		want := bruteForce(rs, ss, extgeom.WithinDistance, eps)
		pairsEqual(t, fmt.Sprintf("resweep eps=%v", eps), res.Pairs, want)
	}
	if _, err := p.Execute(context.Background(), ExecOptions{Eps: planEps * 2}); err == nil {
		t.Fatal("re-sweep above the plan eps must be rejected")
	}
	// ε-less plans reject re-sweeps outright.
	pi, err := Prepare(Config{R: rs[:10], S: ss[:10], Pred: extgeom.Intersects})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pi.Execute(context.Background(), ExecOptions{Eps: 0.5}); err == nil {
		t.Fatal("eps re-sweep on an Intersects plan must be rejected")
	}
}

func TestTwoLayerKernelDescRoundTrip(t *testing.T) {
	k := &Kernel{
		Grid: NewTileGrid(geom.Rect{MinX: -3, MinY: 2, MaxX: 9, MaxY: 11}, 12, 7),
		Pred: extgeom.WithinDistance,
	}
	desc := k.Desc(1.25)
	if desc.Kind != dpe.KernelTwoLayer || desc.RefineEps != 1.25 {
		t.Fatalf("desc = %+v", desc)
	}
	k2, err := KernelFromDesc(desc)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Grid != k.Grid || k2.Pred != k.Pred {
		t.Fatalf("rebuilt kernel %+v differs from %+v", k2, k)
	}
	if _, err := KernelFromDesc(dpe.KernelDesc{Kind: dpe.KernelSweep}); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if _, err := KernelFromDesc(dpe.KernelDesc{Kind: dpe.KernelTwoLayer, TileNX: 0, TileNY: 3}); err == nil {
		t.Fatal("zero tile grid accepted")
	}
}

// TestTwoLayerSkewReport: the assign span carries per-class replica
// bytes and the skew report surfaces them.
func TestTwoLayerSkewReport(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	rng := rand.New(rand.NewSource(23))
	rs := randObjects(rng, 200, 0, world, 8)
	ss := randObjects(rng, 200, 10_000, world, 8)
	tr := obs.New()
	root := tr.Start(0, obs.SpanJoin)
	p, err := Prepare(Config{
		R: rs, S: ss, Pred: extgeom.Intersects, Tiles: 6, Collect: true,
		Tracer: tr, TraceParent: root.SpanID(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background(), ExecOptions{Collect: true}); err != nil {
		t.Fatal(err)
	}
	root.End()
	rep := tr.Skew()
	if len(rep.ReplicationBytesByClass) == 0 {
		t.Fatal("skew report has no per-class replication bytes")
	}
	if rep.ReplicationBytesByClass["A"] <= 0 {
		t.Fatalf("class A bytes = %d, want > 0 (every object has a native copy): %+v",
			rep.ReplicationBytesByClass["A"], rep.ReplicationBytesByClass)
	}
	// Fat objects on a 6×6 grid must replicate: some non-A class has bytes.
	if rep.ReplicationBytesByClass["B"]+rep.ReplicationBytesByClass["C"]+rep.ReplicationBytesByClass["D"] == 0 {
		t.Fatalf("no extent replication recorded: %+v", rep.ReplicationBytesByClass)
	}
	// The plan's own view agrees with the trace.
	cb := p.ClassBytes()
	for class, bytes := range rep.ReplicationBytesByClass {
		if cb[map[string]string{"A": "a", "B": "b", "C": "c", "D": "d"}[class]] != bytes {
			t.Fatalf("ClassBytes %v disagree with skew report %v", cb, rep.ReplicationBytesByClass)
		}
	}
}

func TestTwoLayerValidation(t *testing.T) {
	if _, err := Join(Config{Pred: extgeom.WithinDistance}); err == nil {
		t.Fatal("WithinDistance without eps accepted")
	}
	if _, err := Join(Config{Pred: extgeom.Predicate(9)}); err == nil {
		t.Fatal("unknown predicate accepted")
	}
	// Empty inputs are fine.
	res, err := Join(Config{Pred: extgeom.Intersects, Collect: true})
	if err != nil || len(res.Pairs) != 0 {
		t.Fatalf("empty join: %v, %d pairs", err, len(res.Pairs))
	}
}

// TestTwoLayerResolutionSelection: the cost model picks finer grids for
// many small objects than for few fat ones.
func TestTwoLayerResolutionSelection(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	rng := rand.New(rand.NewSource(29))
	small := randObjects(rng, 3000, 0, world, 0.5)
	fat := randObjects(rng, 60, 50_000, world, 40)

	pSmall, err := Prepare(Config{R: small, S: small, Pred: extgeom.Intersects})
	if err != nil {
		t.Fatal(err)
	}
	pFat, err := Prepare(Config{R: fat, S: fat, Pred: extgeom.Intersects})
	if err != nil {
		t.Fatal(err)
	}
	if pSmall.Grid.NX <= pFat.Grid.NX {
		t.Fatalf("small-object grid %dx%d not finer than fat-object grid %dx%d",
			pSmall.Grid.NX, pSmall.Grid.NY, pFat.Grid.NX, pFat.Grid.NY)
	}
}

// TestTwoLayerKernelJoinAllocs pins the per-tile allocation behaviour
// of the kernel: with the pooled tile scratch warm, a tile join whose
// candidates die in the MBR filter (no lazy geometry decodes) must not
// allocate at all — the class buckets, the sorts and the sweep all run
// in reused memory. This is the regression gate for the per-execute
// churn that used to rebuild every bucket slice per tile.
func TestTwoLayerKernelJoinAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race pass")
	}
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	k := &Kernel{
		Grid: NewTileGrid(world, 1, 1),
		Pred: extgeom.WithinDistance,
		// Keep the heuristic from routing this tile to the R-tree path,
		// whose bulk load allocates by design.
		FallbackMinEntries: 1 << 30,
	}
	var rs, ss []tuple.Tuple
	for i := 0; i < 40; i++ {
		x := float64(i) * 25
		ro := extgeom.NewPolygon(int64(i), []geom.Point{
			{X: x, Y: 10}, {X: x + 1, Y: 10}, {X: x + 1, Y: 11}, {X: x, Y: 11},
		})
		so := extgeom.NewPolygon(int64(1000+i), []geom.Point{
			{X: x, Y: 500}, {X: x + 1, Y: 500}, {X: x + 1, Y: 501}, {X: x, Y: 501},
		})
		rs = append(rs, tuple.Tuple{ID: ro.ID, Pt: ro.Bounds().Center(), Payload: extgeom.AppendObject(nil, &ro)})
		ss = append(ss, tuple.Tuple{ID: so.ID, Pt: so.Bounds().Center(), Payload: extgeom.AppendObject(nil, &so)})
	}
	emit := func(r, s tuple.Tuple) {}
	k.Join(0, rs, ss, 0.5, emit) // warm the scratch pool
	if allocs := testing.AllocsPerRun(100, func() {
		k.Join(0, rs, ss, 0.5, emit)
	}); allocs > 0 {
		t.Errorf("steady-state tile join allocates %.1f objects/op, want 0", allocs)
	}
}
