//go:build race

package twolayer

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count gates skip under it because its instrumentation (and
// sync.Pool's altered behaviour) makes testing.AllocsPerRun
// nondeterministic.
const raceEnabled = true
