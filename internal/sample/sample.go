// Package sample provides the dataset sampling used to estimate per-cell
// statistics before the join runs. The paper samples 3% of each input to
// instantiate the graph of agreements and to estimate per-cell join costs
// for LPT scheduling.
package sample

import (
	"math/rand"

	"spatialjoin/internal/tuple"
)

// DefaultFraction is the sampling fraction used by the paper (3%).
const DefaultFraction = 0.03

// Bernoulli returns an independent sample of ts where every tuple is kept
// with probability fraction. The result is deterministic for a given seed.
// Fractions <= 0 yield an empty sample; fractions >= 1 return all tuples.
func Bernoulli(ts []tuple.Tuple, fraction float64, seed int64) []tuple.Tuple {
	if fraction <= 0 || len(ts) == 0 {
		return nil
	}
	if fraction >= 1 {
		out := make([]tuple.Tuple, len(ts))
		copy(out, ts)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]tuple.Tuple, 0, int(float64(len(ts))*fraction*12/10)+1)
	for _, t := range ts {
		if rng.Float64() < fraction {
			out = append(out, t)
		}
	}
	return out
}

// Reservoir returns a uniform random sample of exactly min(k, len(ts))
// tuples using reservoir sampling. It is used where a fixed-size sample is
// preferable to a fixed-rate one (e.g. building the quadtree partitioner).
func Reservoir(ts []tuple.Tuple, k int, seed int64) []tuple.Tuple {
	if k <= 0 || len(ts) == 0 {
		return nil
	}
	if k >= len(ts) {
		out := make([]tuple.Tuple, len(ts))
		copy(out, ts)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]tuple.Tuple, k)
	copy(out, ts[:k])
	for i := k; i < len(ts); i++ {
		if j := rng.Intn(i + 1); j < k {
			out[j] = ts[i]
		}
	}
	return out
}

// ScaleFactor returns the multiplier that converts sampled counts into
// full-population estimates (1/fraction, or 0 for non-positive fractions).
func ScaleFactor(fraction float64) float64 {
	if fraction <= 0 {
		return 0
	}
	if fraction >= 1 {
		return 1
	}
	return 1 / fraction
}
