package sample

import (
	"math"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

func tuples(n int) []tuple.Tuple {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: float64(i)}
	}
	return tuple.FromPoints(pts, 0)
}

func TestBernoulliFractionApproximate(t *testing.T) {
	ts := tuples(100_000)
	got := Bernoulli(ts, 0.03, 1)
	want := 3000.0
	if math.Abs(float64(len(got))-want) > want*0.2 {
		t.Fatalf("3%% sample of 100k = %d tuples, want about 3000", len(got))
	}
}

func TestBernoulliDeterministic(t *testing.T) {
	ts := tuples(10_000)
	a := Bernoulli(ts, 0.1, 99)
	b := Bernoulli(ts, 0.1, 99)
	if len(a) != len(b) {
		t.Fatalf("same seed, different sample sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("same seed, different sample content at %d", i)
		}
	}
	c := Bernoulli(ts, 0.1, 100)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].ID != c[i].ID {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples (vanishingly unlikely)")
	}
}

func TestBernoulliEdgeFractions(t *testing.T) {
	ts := tuples(100)
	if got := Bernoulli(ts, 0, 1); got != nil {
		t.Errorf("fraction 0 should sample nothing, got %d", len(got))
	}
	if got := Bernoulli(ts, -1, 1); got != nil {
		t.Errorf("negative fraction should sample nothing, got %d", len(got))
	}
	if got := Bernoulli(ts, 1, 1); len(got) != 100 {
		t.Errorf("fraction 1 should keep everything, got %d", len(got))
	}
	if got := Bernoulli(nil, 0.5, 1); got != nil {
		t.Errorf("empty input should sample nothing, got %d", len(got))
	}
}

func TestReservoirSize(t *testing.T) {
	ts := tuples(1000)
	if got := Reservoir(ts, 50, 1); len(got) != 50 {
		t.Errorf("reservoir size = %d, want 50", len(got))
	}
	if got := Reservoir(ts, 5000, 1); len(got) != 1000 {
		t.Errorf("k > n should return all, got %d", len(got))
	}
	if got := Reservoir(ts, 0, 1); got != nil {
		t.Errorf("k=0 should return nil, got %d", len(got))
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Every element should appear with probability k/n across many seeds.
	ts := tuples(100)
	const k, trials = 10, 2000
	counts := make([]int, len(ts))
	for seed := int64(0); seed < trials; seed++ {
		for _, tu := range Reservoir(ts, k, seed) {
			counts[tu.ID]++
		}
	}
	want := float64(trials) * float64(k) / float64(len(ts))
	for id, c := range counts {
		if math.Abs(float64(c)-want) > want*0.5 {
			t.Fatalf("element %d sampled %d times, want about %.0f", id, c, want)
		}
	}
}

func TestScaleFactor(t *testing.T) {
	if got := ScaleFactor(0.03); math.Abs(got-1/0.03) > 1e-12 {
		t.Errorf("ScaleFactor(0.03) = %v", got)
	}
	if ScaleFactor(0) != 0 || ScaleFactor(-2) != 0 {
		t.Error("non-positive fractions must scale to 0")
	}
	if ScaleFactor(1) != 1 || ScaleFactor(2) != 1 {
		t.Error("fractions >= 1 must scale to 1")
	}
}
