package service

import (
	"strings"
	"testing"
)

// TestMetricsLabelEscaping drives the labeled counters with hostile
// label values — the exact gap the tenant label surfaced: tenants are
// client-chosen strings, so quotes, backslashes, newlines, and the
// vec's internal key separator must all render as valid exposition
// lines and round-trip their counts.
func TestMetricsLabelEscaping(t *testing.T) {
	m := NewMetrics()
	hostile := []string{
		`quote"tenant`,
		`back\slash`,
		"new\nline",
		"sep\xfftenant", // the counterVec's internal map-key separator
		`both\"and` + "\n",
	}
	for i, tenant := range hostile {
		m.Rejected.Add(int64(i+1), "tenant_quota", tenant)
		m.JoinResults.Add(int64(10*(i+1)), tenant)
	}
	// A separator inside a value must not alias another series: the
	// pair ("a\xffb", "c") is distinct from ("a", "b\xffc").
	m.Requests.Add(1, "a\xffb", "c")
	m.Requests.Add(5, "a", "b\xffc")
	if got := m.Requests.Value("a\xffb", "c"); got != 1 {
		t.Errorf(`Value(a\xffb, c) = %d, want 1`, got)
	}
	if got := m.Requests.Value("a", "b\xffc"); got != 5 {
		t.Errorf(`Value(a, b\xffc) = %d, want 5`, got)
	}

	var sb strings.Builder
	m.Render(&sb)
	out := sb.String()

	// Every line of the exposition must be a comment or a
	// `name{label="value",...} N` / `name N` sample — label values with
	// raw newlines or unescaped quotes break this shape.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		series := line[:sp]
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("unbalanced label braces: %q", line)
			}
			body := series[i+1 : len(series)-1]
			if !validLabelBody(body) {
				t.Fatalf("invalid label body: %q", line)
			}
		}
	}

	// The escaped forms appear; the raw ones never do.
	if !strings.Contains(out, `quote\"tenant`) {
		t.Error("quote not escaped in label value")
	}
	if !strings.Contains(out, `back\\slash`) {
		t.Error("backslash not escaped in label value")
	}
	if !strings.Contains(out, `new\nline`) {
		t.Error("newline not escaped in label value")
	}
	if strings.Contains(out, "new\nline") {
		t.Error("raw newline leaked into the exposition")
	}

	// Counts survive the hostile values.
	for i, tenant := range hostile {
		if got := m.Rejected.Value("tenant_quota", tenant); got != int64(i+1) {
			t.Errorf("Rejected.Value(tenant_quota, %q) = %d, want %d", tenant, got, i+1)
		}
		if got := m.JoinResults.Value(tenant); got != int64(10*(i+1)) {
			t.Errorf("JoinResults.Value(%q) = %d, want %d", tenant, got, 10*(i+1))
		}
	}

	// Snapshot (the /debug/vars mirror) includes the labeled series.
	snap := m.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
}

// validLabelBody checks `k="v",k="v"` with escaped quotes in v.
func validLabelBody(body string) bool {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 || eq+1 >= len(body[i:]) || body[i+eq+1] != '"' {
			return false
		}
		j := i + eq + 2
		for j < len(body) {
			if body[j] == '\\' {
				j += 2
				continue
			}
			if body[j] == '"' {
				break
			}
			j++
		}
		if j >= len(body) {
			return false
		}
		i = j + 1
		if i < len(body) {
			if body[i] != ',' {
				return false
			}
			i++
		}
	}
	return true
}
