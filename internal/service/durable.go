// Durable serving: when Config.DataDir is set, every dataset and
// stream mutation is appended to dstore's record log before it commits
// in memory, stream engines snapshot into periodic checkpoints, and
// Open reconstructs the full service state — registry (revisions and
// generations included), live streams, and per-(R, S, eps) skew
// history — from the newest checkpoint plus a bounded log tail.

package service

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"spatialjoin"
	"spatialjoin/internal/dstore"
	"spatialjoin/internal/stream"
	"spatialjoin/internal/tuple"
)

// ErrPersist wraps durable-log append failures: the mutation was NOT
// applied (memory and log never diverge) and the client should retry.
var ErrPersist = errors.New("service: durable log append failed")

// ErrNotDurable is returned by durability-only operations on a service
// running without a data directory.
var ErrNotDurable = errors.New("service: not durable (started without a data directory)")

// replayClock pins a stream engine's notion of "now" to the wall-clock
// instant its current batch was logged at — both live and during
// recovery replay — so entry timestamps and the TTL expiry Apply runs
// internally are deterministic functions of the log.
type replayClock struct {
	t atomic.Int64 // UnixNano of the current batch
}

func (c *replayClock) Set(t time.Time) { c.t.Store(t.UnixNano()) }
func (c *replayClock) Now() time.Time  { return time.Unix(0, c.t.Load()) }

// Open builds a service like New and, when cfg.DataDir is set, opens
// the durable store under it, recovers all persisted state, installs
// the persist hooks, and starts the periodic checkpoint loop.
func Open(cfg Config) (*Service, error) {
	s := New(cfg)
	if cfg.DataDir == "" {
		return s, nil
	}
	m := s.Metrics
	store, rec, err := dstore.Open(cfg.DataDir, dstore.Options{
		Fsync: cfg.Fsync,
		OnAppend: func(recordBytes int64) {
			m.DstoreLogRecords.Inc()
			m.DstoreLogBytes.Add(recordBytes)
		},
		OnFsync:    func() { m.DstoreFsyncs.Inc() },
		OnSegments: func(n int64) { m.DstoreLogSegments.Set(n) },
		OnCheckpoint: func(seq uint64) {
			m.DstoreCheckpoints.Inc()
			m.DstoreCheckpointSeq.Set(int64(seq))
		},
		Logf: cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	s.store = store

	// Registry first: streams may link datasets and re-seed from them.
	if rec.NextRev > 0 {
		s.Registry.nextRev = rec.NextRev - 1
	}
	for _, d := range rec.Datasets {
		s.Registry.restore(d.Name, d.Rev, d.Gen, d.Tuples)
	}
	// Every surviving record at or below LastSeq is now reflected in
	// memory, so all cursors start there.
	s.Registry.seq = rec.LastSeq
	s.streamsSeq = rec.LastSeq
	s.Registry.persist = &registryPersist{
		put:    store.LogDatasetPut,
		apply:  store.LogDatasetApply,
		delete: store.LogDatasetDelete,
	}
	for _, rs := range rec.Streams {
		if err := s.adoptStream(rs, rec.LastSeq); err != nil {
			store.Close()
			return nil, fmt.Errorf("service: recovering stream %q: %w", rs.Spec.Name, err)
		}
	}
	if len(rec.TelemSnapshot) > 0 {
		if err := s.Telem.RestoreSnapshot(rec.TelemSnapshot); err != nil && cfg.Logf != nil {
			cfg.Logf("service: telemetry snapshot restore: %v", err)
		}
	}
	m.DstoreRecoveredDatasets.Set(int64(len(rec.Datasets)))
	m.DstoreRecoveredStreams.Set(int64(len(rec.Streams)))
	m.DstoreReplayedRecords.Set(rec.ReplayedRecords)
	m.DstoreCheckpointSeq.Set(int64(rec.CheckpointSeq))
	if cfg.Logf != nil {
		cfg.Logf("service: recovered %d datasets and %d streams from %s (checkpoint seq %d, %d records replayed)",
			len(rec.Datasets), len(rec.Streams), cfg.DataDir, rec.CheckpointSeq, rec.ReplayedRecords)
	}

	if cfg.CheckpointEvery > 0 {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop(cfg.CheckpointEvery)
	}
	s.tflushStop = make(chan struct{})
	s.tflushDone = make(chan struct{})
	go s.telemFlushLoop(s.cfg.TelemFlushEvery)
	return s, nil
}

// telemFlushLoop periodically appends the telemetry snapshot to the
// record log (latest-wins) so rollup history survives kill -9.
func (s *Service) telemFlushLoop(every time.Duration) {
	defer close(s.tflushDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.tflushStop:
			return
		case <-tick.C:
			s.flushTelem()
		}
	}
}

// flushTelem appends one telemetry snapshot, skipping the append when
// nothing changed since the last flush (an idle daemon must not grow
// the log). Best-effort: a failed append only logs.
func (s *Service) flushTelem() {
	blob, err := s.Telem.MarshalSnapshot()
	if err == nil {
		if bytes.Equal(blob, s.lastTelemFlush) {
			return
		}
		err = s.store.AppendTelemSnapshot(blob)
		if err == nil {
			s.lastTelemFlush = blob
		}
	}
	if err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("service: telemetry flush: %v", err)
	}
}

// Durable reports whether the service runs on a durable store.
func (s *Service) Durable() bool { return s.store != nil }

// adoptStream rebuilds one recovered stream: engine from the
// checkpoint snapshot (or fresh when the stream postdates it), tail
// batches re-applied under their logged wall-clock times, TTL loop
// restarted. lastSeq is the log position recovery ended at; every
// batch record at or below it is already in the engine state.
func (s *Service) adoptStream(rs dstore.RecoveredStream, lastSeq uint64) error {
	spec := rs.Spec
	policy, policyName, err := parsePolicy(spec.Policy)
	if err != nil {
		return err
	}
	clock := &replayClock{}
	engCfg := stream.Config{
		Eps:            spec.Eps,
		Bounds:         spatialjoin.Rect{MinX: spec.MinX, MinY: spec.MinY, MaxX: spec.MaxX, MaxY: spec.MaxY},
		GridRes:        spec.GridRes,
		Policy:         policy,
		TTL:            time.Duration(spec.TTLMillis) * time.Millisecond,
		RebalanceEvery: spec.RebalanceEvery,
		Now:            clock.Now,
	}
	var eng *stream.Engine
	if rs.Snapshot != nil {
		eng, err = stream.Restore(engCfg, rs.Snapshot)
	} else {
		eng, err = stream.New(engCfg)
	}
	if err != nil {
		return err
	}
	for _, b := range rs.Tail {
		clock.Set(b.AppliedAt)
		eng.Apply(fromStoreMutations(b.Muts))
	}
	if ttl := time.Duration(spec.TTLMillis) * time.Millisecond; ttl > 0 {
		// Converge immediately: entries whose window closed while the
		// process was down expire now rather than at the next tick.
		eng.ExpireBefore(time.Now().Add(-ttl))
	}
	st := &streamState{
		name: spec.Name, policy: policyName, eng: eng,
		rset:  [2]string{tuple.R: spec.RDataset, tuple.S: spec.SDataset},
		done:  make(chan struct{}),
		spec:  spec,
		clock: clock,
	}
	st.covered = lastSeq
	s.streamMu.Lock()
	s.streams[spec.Name] = st
	s.updateStreamGaugesLocked()
	s.streamMu.Unlock()
	if spec.TTLMillis > 0 {
		go s.ttlLoop(st, time.Duration(spec.TTLMillis)*time.Millisecond)
	}
	return nil
}

// applyStreamBatch applies one mutation batch to a stream. On a
// durable service the batch is logged first and applied under the
// stream's persist lock, so the log order equals the apply order and
// the engine clock sees exactly the logged wall-clock instant; a log
// failure rejects the batch without applying it.
func (s *Service) applyStreamBatch(st *streamState, batch []stream.Mutation) (stream.BatchResult, error) {
	if s.store == nil {
		return st.eng.Apply(batch), nil
	}
	st.pmu.Lock()
	defer st.pmu.Unlock()
	appliedAt := time.Now()
	seq, err := s.store.LogStreamBatch(st.name, appliedAt, toStoreMutations(batch))
	if err != nil {
		return stream.BatchResult{}, fmt.Errorf("%w: %v", ErrPersist, err)
	}
	st.clock.Set(appliedAt)
	br := st.eng.Apply(batch)
	st.covered = seq
	return br, nil
}

func toStoreMutations(batch []stream.Mutation) []dstore.StreamMutation {
	out := make([]dstore.StreamMutation, len(batch))
	for i, m := range batch {
		out[i] = dstore.StreamMutation{Set: uint8(m.Set), Delete: m.Delete, Tuple: m.Tuple}
	}
	return out
}

func fromStoreMutations(muts []dstore.StreamMutation) []stream.Mutation {
	out := make([]stream.Mutation, len(muts))
	for i, m := range muts {
		out[i] = stream.Mutation{Set: tuple.Set(m.Set), Delete: m.Delete, Tuple: m.Tuple}
	}
	return out
}

// Checkpoint persists a consistent snapshot of the registry, every
// stream engine, and the skew history, then prunes obsolete log
// segments and dataset files. Recovery afterwards replays only records
// logged past the snapshot's per-class cursors. It returns the log
// position the checkpoint covers through.
func (s *Service) Checkpoint() (uint64, error) {
	if s.store == nil {
		return 0, ErrNotDurable
	}
	nextRev, regSeq, ds := s.Registry.snapshot()
	st := dstore.CheckpointState{NextRev: nextRev, RegistrySeq: regSeq}
	for _, d := range ds {
		st.Datasets = append(st.Datasets, dstore.DatasetCheckpoint{
			Name: d.Name, Rev: d.Rev, Gen: d.Gen, Tuples: d.Tuples,
		})
	}
	s.streamMu.Lock()
	st.StreamsSeq = s.streamsSeq
	states := make([]*streamState, 0, len(s.streams))
	for _, stt := range s.streams {
		states = append(states, stt)
	}
	s.streamMu.Unlock()
	for _, stt := range states {
		// The persist lock makes the blob and its covered position one
		// atomic pair even while ingest batches race the checkpoint.
		stt.pmu.Lock()
		var buf bytes.Buffer
		err := stt.eng.WriteCheckpoint(&buf)
		covered := stt.covered
		stt.pmu.Unlock()
		if err != nil {
			return 0, err
		}
		st.Streams = append(st.Streams, dstore.StreamCheckpoint{
			Spec: stt.spec, CoveredSeq: covered, Blob: buf.Bytes(),
		})
	}
	return s.store.WriteCheckpoint(st)
}

// checkpointLoop drives periodic checkpoints until Close.
func (s *Service) checkpointLoop(every time.Duration) {
	defer close(s.ckptDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-tick.C:
			if _, err := s.Checkpoint(); err != nil && s.cfg.Logf != nil {
				s.cfg.Logf("service: periodic checkpoint: %v", err)
			}
		}
	}
}

// SkewHistory returns the persisted per-(R, S, eps) skew observations
// — the planner-history seed — grouped by join key in
// first-observation order. Nil store yields ErrNotDurable.
func (s *Service) SkewHistory() ([]dstore.SkewSample, error) {
	if s.store == nil {
		return nil, ErrNotDurable
	}
	return s.store.SkewHistory(), nil
}

// Close stops the telemetry and checkpoint loops, flushes a final
// telemetry snapshot, writes a final checkpoint so the next start
// replays nothing, and closes the store. On an in-memory service it
// only stops the telemetry sampler.
func (s *Service) Close() error {
	s.Telem.Stop()
	if s.store == nil {
		return nil
	}
	if s.tflushStop != nil {
		close(s.tflushStop)
		<-s.tflushDone
		s.tflushStop = nil
	}
	if s.ckptStop != nil {
		close(s.ckptStop)
		<-s.ckptDone
		s.ckptStop = nil
	}
	s.flushTelem()
	if _, err := s.Checkpoint(); err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("service: final checkpoint: %v", err)
	}
	return s.store.Close()
}
