// Metrics: a dependency-free micro-registry of counters, gauges and
// histograms rendered in the Prometheus text exposition format on
// /metrics, with a JSON mirror on /debug/vars.

package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"spatialjoin"
	"spatialjoin/internal/telem"
)

// counter is a monotonically increasing metric.
type counter struct {
	name, help string
	v          atomic.Int64
}

func (c *counter) Add(n int64) { c.v.Add(n) }
func (c *counter) Inc()        { c.v.Add(1) }
func (c *counter) Value() int64 {
	return c.v.Load()
}

// gauge is a metric that can go up and down.
type gauge struct {
	name, help string
	v          atomic.Int64
}

func (g *gauge) Add(n int64) { g.v.Add(n) }
func (g *gauge) Set(n int64) { g.v.Store(n) }
func (g *gauge) Value() int64 {
	return g.v.Load()
}

// counterVec is a counter partitioned by label values.
type counterVec struct {
	name, help string
	labels     []string // label names, in render order

	mu   sync.Mutex
	vals map[string]*vecSeries // key: vecKey of the label values
}

// vecKey builds the series map key. Values are length-prefixed rather
// than joined with a separator byte: label values arrive from request
// headers, so no byte can be assumed absent, and a plain join would
// alias ("a\xffb", "c") with ("a", "b\xffc").
func vecKey(labelValues []string) string {
	var b strings.Builder
	for _, v := range labelValues {
		fmt.Fprintf(&b, "%d:%s", len(v), v)
	}
	return b.String()
}

// vecSeries is one label combination's series. The label values are
// stored verbatim and never re-derived by splitting the map key: a
// value containing the join byte (possible since tenant ids ride in
// from a request header) can therefore neither collide two series nor
// corrupt the rendered exposition.
type vecSeries struct {
	values []string
	v      atomic.Int64
}

func (c *counterVec) Inc(labelValues ...string) { c.Add(1, labelValues...) }

func (c *counterVec) Add(n int64, labelValues ...string) {
	if len(labelValues) != len(c.labels) {
		panic(fmt.Sprintf("metric %s: %d label values for %d labels", c.name, len(labelValues), len(c.labels)))
	}
	key := vecKey(labelValues)
	c.mu.Lock()
	v, ok := c.vals[key]
	if !ok {
		if c.vals == nil {
			c.vals = map[string]*vecSeries{}
		}
		v = &vecSeries{values: append([]string(nil), labelValues...)}
		c.vals[key] = v
	}
	c.mu.Unlock()
	v.v.Add(n)
}

// Value returns the count for one label combination (0 if never seen).
func (c *counterVec) Value(labelValues ...string) int64 {
	key := vecKey(labelValues)
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.vals[key]; ok {
		return v.v.Load()
	}
	return 0
}

// histogram is a fixed-bucket cumulative histogram (seconds for latency
// metrics, bytes for size metrics).
type histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending; +Inf implicit

	mu     sync.Mutex
	counts []int64
	sum    float64
	n      int64
}

func newHistogram(name, help string, bounds ...float64) *histogram {
	return &histogram{name: name, help: help, bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// defBuckets are latency buckets from 100µs to ~100s.
var defBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// byteBuckets are size buckets from 256 B to 1 GiB in powers of four.
var byteBuckets = []float64{
	1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18,
	1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30,
}

// Metrics is the service's metric set.
type Metrics struct {
	Requests *counterVec // by endpoint, code
	Rejected *counterVec // by reason (queue_full, draining, timeout, tenant_quota) and tenant

	InFlight   *gauge
	QueueDepth *gauge
	QueueWait  *histogram

	PlanCacheHits      *counter
	PlanCacheMisses    *counter
	PlanCacheEvictions *counter
	PlanCacheEntries   *gauge
	PlanCacheBytes     *gauge

	PlanBuild *histogram // prepared-plan construction latency
	Probe     *histogram // plan execution (probe) latency

	JoinLatency  *histogram // end-to-end join latency (build + probe)
	TaskDuration *histogram // partition task durations, from trace task spans
	ShuffleBytes *histogram // shuffled bytes per join

	JoinResults      *counterVec // result pairs served, by tenant
	ReplicatedServed *counter    // replicated objects served by executed plans
	Datasets         *gauge
	DatasetPoints    *gauge

	// Streaming-join engine counters, folded in per ingest batch from
	// each stream engine's counter diffs. All stay zero until a stream
	// is created.
	StreamIngested       *counter    // upserts + deletes accepted across streams
	StreamDeltaPairs     *counterVec // result-set deltas emitted, by op (add, remove)
	StreamCellRebuilds   *counter    // per-cell slab compactions
	StreamAgreementFlips *counter    // LPiB/DIFF agreement decisions flipped by drift
	StreamMigrations     *counter    // replica copies moved by rebalances
	StreamExpired        *counter    // points dropped by sliding-window TTL expiry
	Streams              *gauge      // live streams
	StreamPoints         *gauge      // live points across streams
	StreamReplicas       *gauge      // dedicated replica copies across streams
	StreamSubscribers    *gauge      // attached delta subscribers

	// Durable-store (dstore) accounting. All stay zero while the daemon
	// runs in-memory (no -data-dir).
	DstoreLogRecords        *counter // records appended to the ingest log
	DstoreLogBytes          *counter // payload bytes appended to the ingest log
	DstoreFsyncs            *counter // log fsyncs issued
	DstoreCheckpoints       *counter // checkpoints written
	DstoreLogSegments       *gauge   // live log segment files
	DstoreCheckpointSeq     *gauge   // log position of the newest checkpoint
	DstoreRecoveredDatasets *gauge   // datasets reconstructed at startup
	DstoreRecoveredStreams  *gauge   // streams reconstructed at startup
	DstoreReplayedRecords   *gauge   // log records replayed at startup

	// Measured wire counters of distributed (cluster-engine) runs,
	// accumulated from each probe's ClusterMetrics. All stay zero while
	// the daemon runs on the in-process engine.
	ClusterWorkers         *gauge   // workers that served the most recent run
	ClusterTaskBytesLocal  *counter // streamed task bytes read worker-locally
	ClusterTaskBytesRemote *counter // streamed task bytes crossing workers
	ClusterBroadcastBytes  *counter // plan broadcast bytes shipped
	ClusterResultBytes     *counter // result frame bytes received
	ClusterTasks           *counter // partition tasks completed
	ClusterRetries         *counter // task re-executions after failures
	ClusterSpecLaunched    *counter // speculative attempts launched
	ClusterSpecWins        *counter // speculative attempts that won
}

// NewMetrics builds the service metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		Requests: &counterVec{name: "sjoind_requests_total", help: "HTTP requests by endpoint and status code.",
			labels: []string{"endpoint", "code"}},
		Rejected: &counterVec{name: "sjoind_rejected_total", help: "Requests rejected by admission control, by reason and tenant.",
			labels: []string{"reason", "tenant"}},
		InFlight:   &gauge{name: "sjoind_requests_in_flight", help: "Join requests currently executing."},
		QueueDepth: &gauge{name: "sjoind_queue_depth", help: "Join requests waiting for an execution slot."},
		QueueWait:  newHistogram("sjoind_queue_wait_seconds", "Time spent waiting for an execution slot.", defBuckets...),

		PlanCacheHits:      &counter{name: "sjoind_plan_cache_hits_total", help: "Join requests served from a cached prepared plan."},
		PlanCacheMisses:    &counter{name: "sjoind_plan_cache_misses_total", help: "Join requests that had to build a prepared plan."},
		PlanCacheEvictions: &counter{name: "sjoind_plan_cache_evictions_total", help: "Prepared plans evicted by the LRU policy."},
		PlanCacheEntries:   &gauge{name: "sjoind_plan_cache_entries", help: "Prepared plans currently cached."},
		PlanCacheBytes:     &gauge{name: "sjoind_plan_cache_bytes", help: "Approximate wire size of the cached partitioned tuples."},

		PlanBuild: newHistogram("sjoind_plan_build_seconds", "Prepared-plan construction latency (sample, grid, agreements, map, shuffle).", defBuckets...),
		Probe:     newHistogram("sjoind_probe_seconds", "Plan execution latency (partition-level joins).", defBuckets...),

		JoinLatency:  newHistogram("sjoind_join_seconds", "End-to-end join latency (plan build on cache misses, plus probe).", defBuckets...),
		TaskDuration: newHistogram("sjoind_task_seconds", "Partition task durations, extracted from each join's trace task spans.", defBuckets...),
		ShuffleBytes: newHistogram("sjoind_shuffle_bytes", "Shuffled bytes per join (replication-driven network traffic).", byteBuckets...),

		JoinResults: &counterVec{name: "sjoind_join_results_total", help: "Result pairs counted across all joins, by tenant.",
			labels: []string{"tenant"}},
		ReplicatedServed: &counter{name: "sjoind_replicated_objects_served_total", help: "Replicated objects served by executed plans."},
		Datasets:         &gauge{name: "sjoind_datasets", help: "Datasets currently registered."},
		DatasetPoints:    &gauge{name: "sjoind_dataset_points", help: "Total points across registered datasets."},

		StreamIngested: &counter{name: "sjoind_stream_ingested_total", help: "Stream mutations (upserts and deletes) accepted."},
		StreamDeltaPairs: &counterVec{name: "sjoind_stream_delta_pairs_total", help: "Result-set deltas emitted to stream subscribers, by op.",
			labels: []string{"op"}},
		StreamCellRebuilds:   &counter{name: "sjoind_stream_cell_rebuilds_total", help: "Per-cell sorted-slab compactions past the dirty threshold."},
		StreamAgreementFlips: &counter{name: "sjoind_stream_agreement_flips_total", help: "Agreement decisions flipped by cardinality drift rebalances."},
		StreamMigrations:     &counter{name: "sjoind_stream_rebalance_migrations_total", help: "Replica copies moved between cells by rebalances."},
		StreamExpired:        &counter{name: "sjoind_stream_expired_total", help: "Points dropped by sliding-window TTL expiry."},
		Streams:              &gauge{name: "sjoind_streams", help: "Streams currently live."},
		StreamPoints:         &gauge{name: "sjoind_stream_points", help: "Live points across all streams."},
		StreamReplicas:       &gauge{name: "sjoind_stream_replicas", help: "Dedicated replica copies across all streams."},
		StreamSubscribers:    &gauge{name: "sjoind_stream_subscribers", help: "Delta subscribers currently attached."},

		DstoreLogRecords:        &counter{name: "sjoind_dstore_log_records_total", help: "Records appended to the durable ingest log."},
		DstoreLogBytes:          &counter{name: "sjoind_dstore_log_bytes_total", help: "Framed record bytes appended to the durable ingest log."},
		DstoreFsyncs:            &counter{name: "sjoind_dstore_fsyncs_total", help: "fsync calls issued by the durable ingest log."},
		DstoreCheckpoints:       &counter{name: "sjoind_dstore_checkpoints_total", help: "Checkpoints written by the durable store."},
		DstoreLogSegments:       &gauge{name: "sjoind_dstore_log_segments", help: "Live segment files in the durable ingest log."},
		DstoreCheckpointSeq:     &gauge{name: "sjoind_dstore_checkpoint_seq", help: "Log sequence number the newest checkpoint covers through."},
		DstoreRecoveredDatasets: &gauge{name: "sjoind_dstore_recovered_datasets", help: "Datasets reconstructed from the durable store at startup."},
		DstoreRecoveredStreams:  &gauge{name: "sjoind_dstore_recovered_streams", help: "Streams reconstructed from the durable store at startup."},
		DstoreReplayedRecords:   &gauge{name: "sjoind_dstore_replayed_records", help: "Log records replayed past the checkpoint at startup."},

		ClusterWorkers:         &gauge{name: "sjoind_cluster_workers", help: "Worker processes that served the most recent distributed join."},
		ClusterTaskBytesLocal:  &counter{name: "sjoind_cluster_task_bytes_local_total", help: "Measured task bytes streamed to the worker co-located with the producing map split."},
		ClusterTaskBytesRemote: &counter{name: "sjoind_cluster_task_bytes_remote_total", help: "Measured task bytes streamed across worker boundaries (real shuffle remote reads)."},
		ClusterBroadcastBytes:  &counter{name: "sjoind_cluster_broadcast_bytes_total", help: "Measured plan broadcast bytes (grid, agreements, placement) shipped to workers."},
		ClusterResultBytes:     &counter{name: "sjoind_cluster_result_bytes_total", help: "Measured result frame bytes received from workers."},
		ClusterTasks:           &counter{name: "sjoind_cluster_tasks_total", help: "Partition tasks completed by cluster workers."},
		ClusterRetries:         &counter{name: "sjoind_cluster_task_retries_total", help: "Task re-executions after a worker died or failed."},
		ClusterSpecLaunched:    &counter{name: "sjoind_cluster_speculative_launched_total", help: "Duplicate attempts launched for straggling tasks."},
		ClusterSpecWins:        &counter{name: "sjoind_cluster_speculative_wins_total", help: "Speculative attempts that finished before the original."},
	}
}

// ObserveCluster folds one distributed run's measured wire counters into
// the registry; runs on the in-process engine (zero Workers) are ignored.
func (m *Metrics) ObserveCluster(cm spatialjoin.ClusterMetrics) {
	if cm.Workers == 0 {
		return
	}
	m.ClusterWorkers.Set(int64(cm.Workers))
	m.ClusterTaskBytesLocal.Add(cm.TaskBytesLocal)
	m.ClusterTaskBytesRemote.Add(cm.TaskBytesRemote)
	m.ClusterBroadcastBytes.Add(cm.BroadcastBytes)
	m.ClusterResultBytes.Add(cm.ResultBytes)
	m.ClusterTasks.Add(cm.Tasks)
	m.ClusterRetries.Add(cm.Retries)
	m.ClusterSpecLaunched.Add(cm.SpeculativeLaunched)
	m.ClusterSpecWins.Add(cm.SpeculativeWins)
}

// Render writes the metric set in the Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) {
	for _, c := range []*counter{
		m.PlanCacheHits, m.PlanCacheMisses, m.PlanCacheEvictions,
		m.ReplicatedServed,
		m.StreamIngested, m.StreamCellRebuilds, m.StreamAgreementFlips,
		m.StreamMigrations, m.StreamExpired,
		m.DstoreLogRecords, m.DstoreLogBytes,
		m.DstoreFsyncs, m.DstoreCheckpoints,
		m.ClusterTaskBytesLocal, m.ClusterTaskBytesRemote,
		m.ClusterBroadcastBytes, m.ClusterResultBytes,
		m.ClusterTasks, m.ClusterRetries,
		m.ClusterSpecLaunched, m.ClusterSpecWins,
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, escapeHelp(c.help), c.name, c.name, c.Value())
	}
	for _, g := range []*gauge{
		m.InFlight, m.QueueDepth, m.PlanCacheEntries, m.PlanCacheBytes,
		m.Datasets, m.DatasetPoints,
		m.Streams, m.StreamPoints, m.StreamReplicas, m.StreamSubscribers,
		m.DstoreLogSegments, m.DstoreCheckpointSeq,
		m.DstoreRecoveredDatasets, m.DstoreRecoveredStreams,
		m.DstoreReplayedRecords,
		m.ClusterWorkers,
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, escapeHelp(g.help), g.name, g.name, g.Value())
	}
	for _, v := range []*counterVec{m.Requests, m.Rejected, m.JoinResults, m.StreamDeltaPairs} {
		renderVec(w, v)
	}
	for _, h := range []*histogram{
		m.QueueWait, m.PlanBuild, m.Probe,
		m.JoinLatency, m.TaskDuration, m.ShuffleBytes,
	} {
		renderHistogram(w, h)
	}
	telem.RenderRuntime(w)
}

func renderVec(w io.Writer, v *counterVec) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, escapeHelp(v.help), v.name)
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		n      int64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		s := v.vals[k]
		parts := make([]string, len(v.labels))
		for i, name := range v.labels {
			parts[i] = name + `="` + escapeLabel(s.values[i]) + `"`
		}
		rows = append(rows, row{labels: strings.Join(parts, ","), n: s.v.Load()})
	}
	v.mu.Unlock()
	for _, r := range rows {
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, r.labels, r.n)
	}
}

func renderHistogram(w io.Writer, h *histogram) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, escapeHelp(h.help), h.name)
	var cum int64
	for i, ub := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, formatBound(ub), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, sum)
	fmt.Fprintf(w, "%s_count %d\n", h.name, n)
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and line feed.
func escapeLabel(v string) string {
	return labelEscaper.Replace(v)
}

// escapeHelp escapes HELP text: backslash and line feed (quotes are
// legal there).
func escapeHelp(v string) string {
	return helpEscaper.Replace(v)
}

var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

// Snapshot returns the metric set as a flat JSON-friendly map — the
// /debug/vars mirror of the Prometheus exposition.
func (m *Metrics) Snapshot() map[string]any {
	out := map[string]any{}
	for _, c := range []*counter{
		m.PlanCacheHits, m.PlanCacheMisses, m.PlanCacheEvictions,
		m.ReplicatedServed,
		m.StreamIngested, m.StreamCellRebuilds, m.StreamAgreementFlips,
		m.StreamMigrations, m.StreamExpired,
		m.DstoreLogRecords, m.DstoreLogBytes,
		m.DstoreFsyncs, m.DstoreCheckpoints,
		m.ClusterTaskBytesLocal, m.ClusterTaskBytesRemote,
		m.ClusterBroadcastBytes, m.ClusterResultBytes,
		m.ClusterTasks, m.ClusterRetries,
		m.ClusterSpecLaunched, m.ClusterSpecWins,
	} {
		out[c.name] = c.Value()
	}
	for _, g := range []*gauge{
		m.InFlight, m.QueueDepth, m.PlanCacheEntries, m.PlanCacheBytes,
		m.Datasets, m.DatasetPoints,
		m.Streams, m.StreamPoints, m.StreamReplicas, m.StreamSubscribers,
		m.DstoreLogSegments, m.DstoreCheckpointSeq,
		m.DstoreRecoveredDatasets, m.DstoreRecoveredStreams,
		m.DstoreReplayedRecords,
		m.ClusterWorkers,
	} {
		out[g.name] = g.Value()
	}
	for _, v := range []*counterVec{m.Requests, m.Rejected, m.JoinResults, m.StreamDeltaPairs} {
		sub := map[string]int64{}
		v.mu.Lock()
		for _, n := range v.vals {
			sub[strings.Join(n.values, ",")] = n.v.Load()
		}
		v.mu.Unlock()
		out[v.name] = sub
	}
	for _, h := range []*histogram{
		m.QueueWait, m.PlanBuild, m.Probe,
		m.JoinLatency, m.TaskDuration, m.ShuffleBytes,
	} {
		h.mu.Lock()
		out[h.name] = map[string]any{"count": h.n, "sum": h.sum}
		h.mu.Unlock()
	}
	for k, v := range telem.RuntimeVars() {
		out[k] = v
	}
	return out
}
