// Metrics: a dependency-free micro-registry of counters, gauges and
// histograms rendered in the Prometheus text exposition format on
// /metrics, with a JSON mirror on /debug/vars.

package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// counter is a monotonically increasing metric.
type counter struct {
	name, help string
	v          atomic.Int64
}

func (c *counter) Add(n int64) { c.v.Add(n) }
func (c *counter) Inc()        { c.v.Add(1) }
func (c *counter) Value() int64 {
	return c.v.Load()
}

// gauge is a metric that can go up and down.
type gauge struct {
	name, help string
	v          atomic.Int64
}

func (g *gauge) Add(n int64) { g.v.Add(n) }
func (g *gauge) Set(n int64) { g.v.Store(n) }
func (g *gauge) Value() int64 {
	return g.v.Load()
}

// counterVec is a counter partitioned by label values.
type counterVec struct {
	name, help string
	labels     []string // label names, in render order

	mu   sync.Mutex
	vals map[string]*atomic.Int64 // key: label values joined by '\xff'
}

func (c *counterVec) Inc(labelValues ...string) {
	if len(labelValues) != len(c.labels) {
		panic(fmt.Sprintf("metric %s: %d label values for %d labels", c.name, len(labelValues), len(c.labels)))
	}
	key := strings.Join(labelValues, "\xff")
	c.mu.Lock()
	v, ok := c.vals[key]
	if !ok {
		if c.vals == nil {
			c.vals = map[string]*atomic.Int64{}
		}
		v = &atomic.Int64{}
		c.vals[key] = v
	}
	c.mu.Unlock()
	v.Add(1)
}

// Value returns the count for one label combination (0 if never seen).
func (c *counterVec) Value(labelValues ...string) int64 {
	key := strings.Join(labelValues, "\xff")
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.vals[key]; ok {
		return v.Load()
	}
	return 0
}

// histogram is a fixed-bucket cumulative histogram of seconds.
type histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending; +Inf implicit

	mu     sync.Mutex
	counts []int64
	sum    float64
	n      int64
}

func newHistogram(name, help string, bounds ...float64) *histogram {
	return &histogram{name: name, help: help, bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) Observe(seconds float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i]++
	h.sum += seconds
	h.n++
}

// Count returns the number of observations.
func (h *histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// defBuckets are latency buckets from 100µs to ~100s.
var defBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// Metrics is the service's metric set.
type Metrics struct {
	Requests *counterVec // by endpoint, code
	Rejected *counterVec // by reason (queue_full, draining, timeout)

	InFlight   *gauge
	QueueDepth *gauge
	QueueWait  *histogram

	PlanCacheHits      *counter
	PlanCacheMisses    *counter
	PlanCacheEvictions *counter
	PlanCacheEntries   *gauge
	PlanCacheBytes     *gauge

	PlanBuild *histogram // prepared-plan construction latency
	Probe     *histogram // plan execution (probe) latency

	JoinResults      *counter // result pairs served
	ReplicatedServed *counter // replicated objects served by executed plans
	Datasets         *gauge
	DatasetPoints    *gauge
}

// NewMetrics builds the service metric set.
func NewMetrics() *Metrics {
	return &Metrics{
		Requests: &counterVec{name: "sjoind_requests_total", help: "HTTP requests by endpoint and status code.",
			labels: []string{"endpoint", "code"}},
		Rejected: &counterVec{name: "sjoind_rejected_total", help: "Requests rejected by admission control, by reason.",
			labels: []string{"reason"}},
		InFlight:   &gauge{name: "sjoind_requests_in_flight", help: "Join requests currently executing."},
		QueueDepth: &gauge{name: "sjoind_queue_depth", help: "Join requests waiting for an execution slot."},
		QueueWait:  newHistogram("sjoind_queue_wait_seconds", "Time spent waiting for an execution slot.", defBuckets...),

		PlanCacheHits:      &counter{name: "sjoind_plan_cache_hits_total", help: "Join requests served from a cached prepared plan."},
		PlanCacheMisses:    &counter{name: "sjoind_plan_cache_misses_total", help: "Join requests that had to build a prepared plan."},
		PlanCacheEvictions: &counter{name: "sjoind_plan_cache_evictions_total", help: "Prepared plans evicted by the LRU policy."},
		PlanCacheEntries:   &gauge{name: "sjoind_plan_cache_entries", help: "Prepared plans currently cached."},
		PlanCacheBytes:     &gauge{name: "sjoind_plan_cache_bytes", help: "Approximate wire size of the cached partitioned tuples."},

		PlanBuild: newHistogram("sjoind_plan_build_seconds", "Prepared-plan construction latency (sample, grid, agreements, map, shuffle).", defBuckets...),
		Probe:     newHistogram("sjoind_probe_seconds", "Plan execution latency (partition-level joins).", defBuckets...),

		JoinResults:      &counter{name: "sjoind_join_results_total", help: "Result pairs counted across all joins."},
		ReplicatedServed: &counter{name: "sjoind_replicated_objects_served_total", help: "Replicated objects served by executed plans."},
		Datasets:         &gauge{name: "sjoind_datasets", help: "Datasets currently registered."},
		DatasetPoints:    &gauge{name: "sjoind_dataset_points", help: "Total points across registered datasets."},
	}
}

// Render writes the metric set in the Prometheus text exposition format.
func (m *Metrics) Render(w io.Writer) {
	for _, c := range []*counter{
		m.PlanCacheHits, m.PlanCacheMisses, m.PlanCacheEvictions,
		m.JoinResults, m.ReplicatedServed,
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.Value())
	}
	for _, g := range []*gauge{
		m.InFlight, m.QueueDepth, m.PlanCacheEntries, m.PlanCacheBytes,
		m.Datasets, m.DatasetPoints,
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.Value())
	}
	for _, v := range []*counterVec{m.Requests, m.Rejected} {
		renderVec(w, v)
	}
	for _, h := range []*histogram{m.QueueWait, m.PlanBuild, m.Probe} {
		renderHistogram(w, h)
	}
}

func renderVec(w io.Writer, v *counterVec) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name)
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		n      int64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		vals := strings.Split(k, "\xff")
		parts := make([]string, len(v.labels))
		for i, name := range v.labels {
			parts[i] = fmt.Sprintf("%s=%q", name, vals[i])
		}
		rows = append(rows, row{labels: strings.Join(parts, ","), n: v.vals[k].Load()})
	}
	v.mu.Unlock()
	for _, r := range rows {
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, r.labels, r.n)
	}
}

func renderHistogram(w io.Writer, h *histogram) {
	h.mu.Lock()
	counts := append([]int64(nil), h.counts...)
	sum, n := h.sum, h.n
	h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	var cum int64
	for i, ub := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(ub), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, sum)
	fmt.Fprintf(w, "%s_count %d\n", h.name, n)
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// Snapshot returns the metric set as a flat JSON-friendly map — the
// /debug/vars mirror of the Prometheus exposition.
func (m *Metrics) Snapshot() map[string]any {
	out := map[string]any{}
	for _, c := range []*counter{
		m.PlanCacheHits, m.PlanCacheMisses, m.PlanCacheEvictions,
		m.JoinResults, m.ReplicatedServed,
	} {
		out[c.name] = c.Value()
	}
	for _, g := range []*gauge{
		m.InFlight, m.QueueDepth, m.PlanCacheEntries, m.PlanCacheBytes,
		m.Datasets, m.DatasetPoints,
	} {
		out[g.name] = g.Value()
	}
	for _, v := range []*counterVec{m.Requests, m.Rejected} {
		sub := map[string]int64{}
		v.mu.Lock()
		for k, n := range v.vals {
			sub[strings.ReplaceAll(k, "\xff", ",")] = n.Load()
		}
		v.mu.Unlock()
		out[v.name] = sub
	}
	for _, h := range []*histogram{m.QueueWait, m.PlanBuild, m.Probe} {
		h.mu.Lock()
		out[h.name] = map[string]any{"count": h.n, "sum_seconds": h.sum}
		h.mu.Unlock()
	}
	return out
}
