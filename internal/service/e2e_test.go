package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spatialjoin"
	"spatialjoin/internal/textio"
)

// TestHTTPEndToEnd drives the full HTTP API in-process: uploads, joins
// (miss then hit with identical checksums), count-only joins, metrics,
// error mapping, deletion, and drain behaviour.
func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{PlanCacheSize: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJoin := func(path string, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decoding %s response: %v", path, err)
		}
		return resp, m
	}

	// Upload one dataset as a text body and generate the other server-side.
	var buf bytes.Buffer
	if err := textio.Write(&buf, spatialjoin.GenerateGaussian(3000, 7)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets?name=r", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Points != 3000 {
		t.Fatalf("uploaded %d points, want 3000", info.Points)
	}
	resp, err = http.Post(ts.URL+"/v1/datasets?name=s&generate=uniform&n=3000&seed=9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("generate status = %d", resp.StatusCode)
	}

	// Listing shows both, sorted.
	resp, err = http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var infos []DatasetInfo
	json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if len(infos) != 2 || infos[0].Name != "r" || infos[1].Name != "s" {
		t.Fatalf("list = %+v", infos)
	}

	// Same join twice: miss, then hit with an identical checksum.
	body := `{"r":"r","s":"s","eps":0.5,"algorithm":"lpib"}`
	r1, j1 := postJoin("/v1/join", body)
	if r1.StatusCode != http.StatusOK || j1["plan_cache"] != "miss" {
		t.Fatalf("first join: status %d, %v", r1.StatusCode, j1)
	}
	r2, j2 := postJoin("/v1/join", body)
	if r2.StatusCode != http.StatusOK || j2["plan_cache"] != "hit" {
		t.Fatalf("second join: status %d, %v", r2.StatusCode, j2)
	}
	if j1["checksum"] != j2["checksum"] || j1["results"] != j2["results"] {
		t.Fatalf("cache hit changed results: %v vs %v", j1, j2)
	}

	// /v1/join/count never materialises pairs, even when asked to.
	_, jc := postJoin("/v1/join/count", `{"r":"r","s":"s","eps":0.5,"algorithm":"lpib","collect":true}`)
	if jc["results"] != j1["results"] || jc["pairs"] != nil {
		t.Fatalf("count join = %v", jc)
	}
	// Collecting through /v1/join respects the limit and flags truncation.
	_, jp := postJoin("/v1/join", `{"r":"r","s":"s","eps":0.5,"algorithm":"lpib","collect":true,"limit":5}`)
	if pairs, ok := jp["pairs"].([]any); !ok || len(pairs) != 5 || jp["truncated"] != true {
		t.Fatalf("collect join = %v", jp)
	}

	// Error mapping.
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"r":"nope","s":"s","eps":0.5}`, http.StatusNotFound},
		{`{"r":"r","s":"s","eps":-1}`, http.StatusBadRequest},
		{`{"r":"r","s":"s","eps":0.5,"algorithm":"nope"}`, http.StatusBadRequest},
		{`{"r":"r","s":"s","eps":0.5,"bogus_field":1}`, http.StatusBadRequest},
	} {
		resp, m := postJoin("/v1/join", tc.body)
		if resp.StatusCode != tc.code || m["error"] == "" {
			t.Errorf("join %s: status %d (want %d), %v", tc.body, resp.StatusCode, tc.code, m)
		}
	}

	// Metrics expose the hit and the vars mirror parses.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		// One miss builds the plan; the repeat, count, and collect joins
		// all share it (Collect is execution-time, not part of the key).
		"sjoind_plan_cache_hits_total 3",
		"sjoind_plan_cache_misses_total 1",
		`sjoind_requests_total{endpoint="join",code="200"}`,
		"sjoind_plan_build_seconds_count 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	resp.Body.Close()
	if vars["sjoind_datasets"] != float64(2) {
		t.Fatalf("vars datasets = %v", vars["sjoind_datasets"])
	}

	// Deleting a dataset drops its cached plans and later joins 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/datasets/s", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if s.PlanCacheLen() != 0 {
		t.Fatalf("plan cache holds %d plans after delete", s.PlanCacheLen())
	}
	if resp, _ := postJoin("/v1/join", body); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("join after delete: status %d", resp.StatusCode)
	}

	// Healthy until draining; afterwards joins are refused with 503.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v, %v", resp, err)
	}
	s.StartDrain()
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %v, %v", resp, err)
	}
	if resp, _ := postJoin("/v1/join", `{"r":"r","s":"r","eps":0.5}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining join: status %d", resp.StatusCode)
	}
}

// TestHTTPUploadErrors exercises the dataset endpoint's failure modes.
func TestHTTPUploadErrors(t *testing.T) {
	s := New(Config{MaxUploadBytes: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		path, body string
	}{
		{"/v1/datasets", "1 2"},                                  // no name
		{"/v1/datasets?name=x", ""},                              // no points
		{"/v1/datasets?name=x", "1 notanumber"},                  // malformed line
		{"/v1/datasets?name=x", strings.Repeat("0.5 0.5\n", 64)}, // over MaxUploadBytes
		{"/v1/datasets?name=x&generate=uniform&n=0", ""},         // bad n
		{"/v1/datasets?name=x&generate=warp&n=10", ""},           // bad generator
	}
	for _, tc := range cases {
		if code := post(tc.path, tc.body); code != http.StatusBadRequest {
			t.Errorf("POST %s (%q...): status %d, want 400", tc.path, firstLine(tc.body), code)
		}
	}
	if got := s.Metrics.Requests.Value("datasets_put", "400"); got != int64(len(cases)) {
		t.Errorf("400 counter = %d, want %d", got, len(cases))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
