package service

import (
	"cmp"
	"fmt"
	"slices"
	"sync"

	"spatialjoin"
)

// sampleKey identifies one cached Bernoulli sample of a dataset.
type sampleKey struct {
	fraction float64
	seed     int64
}

// dataset is one registered point set. Re-uploading under the same name
// replaces it and bumps the revision; in-place mutation through Apply
// (stream ingest mirrored into a dataset) bumps the generation instead.
// Plan-cache keys embed both, so either kind of update invalidates stale
// plans. The Tuples slice itself is immutable: Apply builds a fresh one.
type dataset struct {
	Name   string
	Rev    int64
	Gen    int64
	Tuples []spatialjoin.Tuple
	Bounds spatialjoin.Rect

	mu      sync.Mutex
	samples map[sampleKey][]spatialjoin.Tuple
}

// sample returns the dataset's Bernoulli sample for (fraction, seed),
// drawing and caching it on first use — the reuse that makes ε re-plans
// skip the sampling pass.
func (d *dataset) sample(fraction float64, seed int64) []spatialjoin.Tuple {
	key := sampleKey{fraction, seed}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.samples[key]; ok {
		return s
	}
	s := spatialjoin.Sample(d.Tuples, fraction, seed)
	if d.samples == nil {
		d.samples = map[sampleKey][]spatialjoin.Tuple{}
	}
	d.samples[key] = s
	return s
}

// DatasetInfo describes a registered dataset to clients.
type DatasetInfo struct {
	Name   string  `json:"name"`
	Points int     `json:"points"`
	Rev    int64   `json:"rev"`
	Gen    int64   `json:"gen"`
	MinX   float64 `json:"min_x"`
	MinY   float64 `json:"min_y"`
	MaxX   float64 `json:"max_x"`
	MaxY   float64 `json:"max_y"`
}

// registryPersist makes every registry mutation durable before it
// commits. Each hook appends one log record and returns its sequence
// number; a hook error aborts the mutation. Hooks run under the
// registry write lock, so log order always matches commit order and
// the recorded sequence of the last committed mutation (seq) pairs
// consistently with the in-memory state.
type registryPersist struct {
	put    func(name string, rev int64, ts []spatialjoin.Tuple) (uint64, error)
	apply  func(name string, gen int64, ups []spatialjoin.Tuple, dels []int64) (uint64, error)
	delete func(name string) (uint64, error)
}

// Registry is the in-memory dataset store of the service.
type Registry struct {
	mu      sync.RWMutex
	m       map[string]*dataset
	nextRev int64
	metrics *Metrics
	persist *registryPersist
	seq     uint64 // log position of the last committed mutation
}

// NewRegistry builds an empty registry reporting into m (may be nil).
func NewRegistry(m *Metrics) *Registry {
	return &Registry{m: map[string]*dataset{}, metrics: m}
}

// Put registers (or replaces) a dataset and returns its revision.
func (r *Registry) Put(name string, ts []spatialjoin.Tuple) (int64, error) {
	if name == "" {
		return 0, fmt.Errorf("service: dataset name must not be empty")
	}
	if len(ts) == 0 {
		return 0, fmt.Errorf("service: dataset %q has no points", name)
	}
	b := boundsOf(ts)
	r.mu.Lock()
	defer r.mu.Unlock()
	rev := r.nextRev + 1
	if r.persist != nil {
		seq, err := r.persist.put(name, rev, ts)
		if err != nil {
			return 0, fmt.Errorf("service: persisting dataset %q: %w", name, err)
		}
		r.seq = seq
	}
	r.nextRev = rev
	var delta int
	if old, ok := r.m[name]; ok {
		delta = -len(old.Tuples)
	}
	r.m[name] = &dataset{Name: name, Rev: rev, Tuples: ts, Bounds: b}
	if r.metrics != nil {
		r.metrics.Datasets.Set(int64(len(r.m)))
		r.metrics.DatasetPoints.Add(int64(len(ts) + delta))
	}
	return rev, nil
}

// Apply mutates a dataset in place by tuple ID: upserts replace (or
// append) points, deletes drop them. The stored tuple slice is treated as
// immutable — Apply builds a replacement, recomputes the bounds, discards
// cached samples, and bumps the dataset's generation so plan-cache keys
// built against the old contents can never serve the new ones. It returns
// the new generation. Deleting every point is rejected: datasets must stay
// non-empty, matching Put.
func (r *Registry) Apply(name string, upserts []spatialjoin.Tuple, deletes []int64) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.m[name]
	if !ok {
		return 0, fmt.Errorf("service: unknown dataset %q", name)
	}
	drop := make(map[int64]struct{}, len(deletes)+len(upserts))
	for _, id := range deletes {
		drop[id] = struct{}{}
	}
	for _, t := range upserts {
		drop[t.ID] = struct{}{} // replaced below, not kept twice
	}
	ts := make([]spatialjoin.Tuple, 0, len(d.Tuples)+len(upserts))
	for _, t := range d.Tuples {
		if _, gone := drop[t.ID]; !gone {
			ts = append(ts, t)
		}
	}
	ts = append(ts, upserts...)
	if len(ts) == 0 {
		return 0, fmt.Errorf("service: mutation would empty dataset %q", name)
	}
	if r.persist != nil {
		seq, err := r.persist.apply(name, d.Gen+1, upserts, deletes)
		if err != nil {
			return 0, fmt.Errorf("service: persisting mutation of %q: %w", name, err)
		}
		r.seq = seq
	}
	nd := &dataset{Name: d.Name, Rev: d.Rev, Gen: d.Gen + 1, Tuples: ts, Bounds: boundsOf(ts)}
	r.m[name] = nd
	if r.metrics != nil {
		r.metrics.DatasetPoints.Add(int64(len(ts) - len(d.Tuples)))
	}
	return nd.Gen, nil
}

// Get returns a registered dataset.
func (r *Registry) Get(name string) (*dataset, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.m[name]
	if !ok {
		return nil, fmt.Errorf("service: unknown dataset %q", name)
	}
	return d, nil
}

// Delete removes a dataset; it reports whether one was present. When a
// persist hook is installed and fails, the dataset is kept — memory and
// log must never diverge — and Delete reports false.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.m[name]
	if !ok {
		return false
	}
	if r.persist != nil {
		seq, err := r.persist.delete(name)
		if err != nil {
			return false
		}
		r.seq = seq
	}
	delete(r.m, name)
	if r.metrics != nil {
		r.metrics.Datasets.Set(int64(len(r.m)))
		r.metrics.DatasetPoints.Add(-int64(len(d.Tuples)))
	}
	return ok
}

// restore installs one recovered dataset directly, bypassing the
// persist hooks: the backing log records already exist.
func (r *Registry) restore(name string, rev, gen int64, ts []spatialjoin.Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = &dataset{Name: name, Rev: rev, Gen: gen, Tuples: ts, Bounds: boundsOf(ts)}
	if rev > r.nextRev {
		r.nextRev = rev
	}
	if r.metrics != nil {
		r.metrics.Datasets.Set(int64(len(r.m)))
		r.metrics.DatasetPoints.Add(int64(len(ts)))
	}
}

// snapshot captures a consistent registry state for checkpointing: the
// next revision the registry will assign, the log position of the last
// committed mutation, and every dataset's (rev, gen, tuples). Tuple
// slices are immutable by construction, so sharing them is safe.
func (r *Registry) snapshot() (nextRev int64, seq uint64, out []datasetSnapshot) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out = make([]datasetSnapshot, 0, len(r.m))
	for _, d := range r.m {
		out = append(out, datasetSnapshot{Name: d.Name, Rev: d.Rev, Gen: d.Gen, Tuples: d.Tuples})
	}
	return r.nextRev + 1, r.seq, out
}

// datasetSnapshot is one dataset captured by Registry.snapshot.
type datasetSnapshot struct {
	Name     string
	Rev, Gen int64
	Tuples   []spatialjoin.Tuple
}

// List describes all datasets, sorted by name.
func (r *Registry) List() []DatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(r.m))
	for _, d := range r.m {
		out = append(out, DatasetInfo{
			Name: d.Name, Points: len(d.Tuples), Rev: d.Rev, Gen: d.Gen,
			MinX: d.Bounds.MinX, MinY: d.Bounds.MinY,
			MaxX: d.Bounds.MaxX, MaxY: d.Bounds.MaxY,
		})
	}
	slices.SortFunc(out, func(a, b DatasetInfo) int { return cmp.Compare(a.Name, b.Name) })
	return out
}

func boundsOf(ts []spatialjoin.Tuple) spatialjoin.Rect {
	b := spatialjoin.Rect{MinX: ts[0].Pt.X, MinY: ts[0].Pt.Y, MaxX: ts[0].Pt.X, MaxY: ts[0].Pt.Y}
	for _, t := range ts[1:] {
		if t.Pt.X < b.MinX {
			b.MinX = t.Pt.X
		}
		if t.Pt.X > b.MaxX {
			b.MaxX = t.Pt.X
		}
		if t.Pt.Y < b.MinY {
			b.MinY = t.Pt.Y
		}
		if t.Pt.Y > b.MaxY {
			b.MaxY = t.Pt.Y
		}
	}
	return b
}
