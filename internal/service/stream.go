// Service-level streaming joins: named stream.Engine instances managed
// next to the dataset registry, with metric accounting, optional TTL
// expiry tickers, and optional mirroring of stream mutations into
// registry datasets so batch joins observe the live points (and the
// plan cache, keyed by dataset generation, never serves stale plans).

package service

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"time"

	"spatialjoin"
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/dstore"
	"spatialjoin/internal/stream"
	"spatialjoin/internal/tuple"
)

// StreamConfig creates one named stream.
type StreamConfig struct {
	Name string

	Eps                    float64
	MinX, MinY, MaxX, MaxY float64 // data-space MBR (required)
	GridRes                float64 // 0 = engine default
	Policy                 string  // "lpib" (default) or "diff"
	TTLMillis              int64   // >0 enables sliding-window expiry
	RebalanceEvery         int     // 0 = engine default, <0 disables

	// RDataset / SDataset, when set, link the stream's input sets to
	// registry datasets: the engine is seeded from their current points
	// and every ingested mutation is mirrored back via Registry.Apply,
	// bumping the dataset generation. Batch joins against the linked
	// names then always reflect the live stream state.
	RDataset, SDataset string
}

// StreamInfo describes a live stream to clients.
type StreamInfo struct {
	Name           string  `json:"name"`
	Eps            float64 `json:"eps"`
	Policy         string  `json:"policy"`
	GridCells      int     `json:"grid_cells"`
	LiveR          int64   `json:"live_r"`
	LiveS          int64   `json:"live_s"`
	Replicas       int64   `json:"replicas"`
	Subscribers    int64   `json:"subscribers"`
	DeltasAdded    int64   `json:"deltas_added"`
	DeltasRemoved  int64   `json:"deltas_removed"`
	AgreementFlips int64   `json:"agreement_flips"`
	Migrations     int64   `json:"migrations"`
	RDataset       string  `json:"r_dataset,omitempty"`
	SDataset       string  `json:"s_dataset,omitempty"`
}

// streamState is one live stream and its serving-layer bookkeeping.
type streamState struct {
	name   string
	policy string
	eng    *stream.Engine
	rset   [2]string // linked dataset name per tuple.Set ("" = none)
	done   chan struct{}

	// Durable-mode state (zero on in-memory services). pmu serializes
	// log appends with engine applies so the log order is the apply
	// order; covered is the log position of the last batch reflected in
	// the engine; clock pins the engine's "now" to logged batch times.
	spec    dstore.StreamSpec
	pmu     sync.Mutex
	covered uint64
	clock   *replayClock
}

// parsePolicy maps a wire policy name to the agreements policy and its
// canonical name ("" defaults to lpib).
func parsePolicy(name string) (agreements.Policy, string, error) {
	switch name {
	case "", "lpib":
		return agreements.LPiB, "lpib", nil
	case "diff":
		return agreements.DIFF, "diff", nil
	default:
		return 0, "", fmt.Errorf("service: unknown stream policy %q (lpib, diff)", name)
	}
}

func (st *streamState) info() StreamInfo {
	c := st.eng.Counters()
	return StreamInfo{
		Name: st.name, Eps: st.eng.Eps(), Policy: st.policy,
		GridCells: st.eng.Grid().NumCells(),
		LiveR:     c.LiveR, LiveS: c.LiveS,
		Replicas: c.Replicas, Subscribers: c.Subscribers,
		DeltasAdded: c.DeltasAdded, DeltasRemoved: c.DeltasRemoved,
		AgreementFlips: c.AgreementFlips, Migrations: c.Migrations,
		RDataset: st.rset[tuple.R], SDataset: st.rset[tuple.S],
	}
}

// CreateStream builds, registers, and (when datasets are linked) seeds a
// new stream. Stream names share a namespace separate from datasets.
func (s *Service) CreateStream(cfg StreamConfig) (StreamInfo, error) {
	if cfg.Name == "" {
		return StreamInfo{}, fmt.Errorf("service: stream name must not be empty")
	}
	policy, policyName, err := parsePolicy(cfg.Policy)
	if err != nil {
		return StreamInfo{}, err
	}
	cfg.Policy = policyName
	engCfg := stream.Config{
		Eps:            cfg.Eps,
		Bounds:         spatialjoin.Rect{MinX: cfg.MinX, MinY: cfg.MinY, MaxX: cfg.MaxX, MaxY: cfg.MaxY},
		GridRes:        cfg.GridRes,
		Policy:         policy,
		TTL:            time.Duration(cfg.TTLMillis) * time.Millisecond,
		RebalanceEvery: cfg.RebalanceEvery,
	}
	var clock *replayClock
	if s.store != nil {
		clock = &replayClock{}
		clock.Set(time.Now())
		engCfg.Now = clock.Now
	}
	eng, err := stream.New(engCfg)
	if err != nil {
		return StreamInfo{}, err
	}
	st := &streamState{
		name: cfg.Name, policy: cfg.Policy, eng: eng,
		rset:  [2]string{tuple.R: cfg.RDataset, tuple.S: cfg.SDataset},
		done:  make(chan struct{}),
		clock: clock,
		spec: dstore.StreamSpec{
			Name: cfg.Name, Eps: cfg.Eps,
			MinX: cfg.MinX, MinY: cfg.MinY, MaxX: cfg.MaxX, MaxY: cfg.MaxY,
			GridRes: cfg.GridRes, Policy: cfg.Policy,
			TTLMillis: cfg.TTLMillis, RebalanceEvery: cfg.RebalanceEvery,
			RDataset: cfg.RDataset, SDataset: cfg.SDataset,
		},
	}
	// Reserve the name before seeding so a lost name race cannot leak
	// seed mutations into the metrics. The creation record is logged
	// under the same lock, so the log sees creates and deletes of one
	// name in their commit order.
	s.streamMu.Lock()
	if _, exists := s.streams[cfg.Name]; exists {
		s.streamMu.Unlock()
		return StreamInfo{}, fmt.Errorf("service: stream %q already exists", cfg.Name)
	}
	if s.store != nil {
		seq, err := s.store.LogStreamCreate(st.spec)
		if err != nil {
			s.streamMu.Unlock()
			eng.Close()
			return StreamInfo{}, fmt.Errorf("%w: %v", ErrPersist, err)
		}
		s.streamsSeq = seq
	}
	s.streams[cfg.Name] = st
	s.streamMu.Unlock()

	// Seed linked sets from the datasets' current points. Durable
	// services log the seed as ordinary batches, so recovery replays
	// creation exactly without consulting the (possibly newer) datasets.
	for set := tuple.R; set <= tuple.S; set++ {
		name := st.rset[set]
		if name == "" {
			continue
		}
		d, err := s.Registry.Get(name)
		if err != nil {
			s.DeleteStream(cfg.Name)
			return StreamInfo{}, fmt.Errorf("service: stream %q links %w", cfg.Name, err)
		}
		batch := make([]stream.Mutation, len(d.Tuples))
		for i, t := range d.Tuples {
			batch[i] = stream.Mutation{Set: set, Tuple: t}
		}
		br, err := s.applyStreamBatch(st, batch)
		if err != nil {
			s.DeleteStream(cfg.Name)
			return StreamInfo{}, err
		}
		s.observeStream(br)
	}
	s.streamMu.Lock()
	s.updateStreamGaugesLocked()
	s.streamMu.Unlock()

	if cfg.TTLMillis > 0 {
		go s.ttlLoop(st, time.Duration(cfg.TTLMillis)*time.Millisecond)
	}
	return st.info(), nil
}

// ttlLoop drives sliding-window expiry for one stream so windows slide
// even while no mutations arrive.
func (s *Service) ttlLoop(st *streamState, ttl time.Duration) {
	period := ttl / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-st.done:
			return
		case now := <-tick.C:
			s.observeStream(st.eng.ExpireBefore(now.Add(-ttl)))
			s.streamMu.Lock()
			s.updateStreamGaugesLocked()
			s.streamMu.Unlock()
		}
	}
}

// GetStream returns one live stream.
func (s *Service) GetStream(name string) (*streamState, error) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	st, ok := s.streams[name]
	if !ok {
		return nil, fmt.Errorf("service: unknown stream %q", name)
	}
	return st, nil
}

// ListStreams describes all live streams, sorted by name.
func (s *Service) ListStreams() []StreamInfo {
	s.streamMu.Lock()
	states := make([]*streamState, 0, len(s.streams))
	for _, st := range s.streams {
		states = append(states, st)
	}
	s.streamMu.Unlock()
	out := make([]StreamInfo, len(states))
	for i, st := range states {
		out[i] = st.info()
	}
	slices.SortFunc(out, func(a, b StreamInfo) int { return cmp.Compare(a.Name, b.Name) })
	return out
}

// DeleteStream tears a stream down: its TTL ticker stops and every
// subscriber's queue is closed. Linked datasets keep their last state.
// On a durable service the drop is logged first; a log failure keeps
// the stream (memory and log never diverge) and reports false.
func (s *Service) DeleteStream(name string) bool {
	s.streamMu.Lock()
	st, ok := s.streams[name]
	if ok && s.store != nil {
		seq, err := s.store.LogStreamDelete(name)
		if err != nil {
			s.streamMu.Unlock()
			return false
		}
		s.streamsSeq = seq
	}
	if ok {
		delete(s.streams, name)
		s.updateStreamGaugesLocked()
	}
	s.streamMu.Unlock()
	if !ok {
		return false
	}
	close(st.done)
	st.eng.Close()
	return true
}

// StreamIngest applies one mutation batch to a stream, folds the result
// into the metrics, and mirrors the mutations into linked datasets. A
// mirror failure (e.g. a mutation that would empty a dataset) does not
// roll back the stream; it is reported so the client can reconcile.
func (s *Service) StreamIngest(name string, batch []stream.Mutation) (stream.BatchResult, error) {
	st, err := s.GetStream(name)
	if err != nil {
		return stream.BatchResult{}, err
	}
	br, err := s.applyStreamBatch(st, batch)
	if err != nil {
		return stream.BatchResult{}, err
	}
	s.observeStream(br)
	s.streamMu.Lock()
	s.updateStreamGaugesLocked()
	s.streamMu.Unlock()

	var mirrorErr error
	for set := tuple.R; set <= tuple.S; set++ {
		ds := st.rset[set]
		if ds == "" {
			continue
		}
		var ups []spatialjoin.Tuple
		var dels []int64
		for _, m := range batch {
			if m.Set != set {
				continue
			}
			if m.Delete {
				dels = append(dels, m.Tuple.ID)
			} else {
				ups = append(ups, m.Tuple)
			}
		}
		if len(ups)+len(dels) == 0 {
			continue
		}
		if _, err := s.Registry.Apply(ds, ups, dels); err != nil && mirrorErr == nil {
			mirrorErr = err
		}
	}
	return br, mirrorErr
}

// observeStream folds one engine operation's counter diff into the
// service metrics.
func (s *Service) observeStream(br stream.BatchResult) {
	if n := br.Upserts + br.Deletes; n > 0 {
		s.Metrics.StreamIngested.Add(n)
	}
	if br.DeltasAdded > 0 {
		s.Metrics.StreamDeltaPairs.Add(br.DeltasAdded, "add")
	}
	if br.DeltasRemoved > 0 {
		s.Metrics.StreamDeltaPairs.Add(br.DeltasRemoved, "remove")
	}
	s.Metrics.StreamCellRebuilds.Add(br.SlabRebuilds)
	s.Metrics.StreamAgreementFlips.Add(br.AgreementFlips)
	s.Metrics.StreamMigrations.Add(br.Migrations)
	s.Metrics.StreamExpired.Add(br.Expired)
}

// updateStreamGaugesLocked recomputes the cross-stream gauges. Callers
// hold s.streamMu.
func (s *Service) updateStreamGaugesLocked() {
	var points, replicas, subs int64
	for _, st := range s.streams {
		c := st.eng.Counters()
		points += c.LiveR + c.LiveS
		replicas += c.Replicas
		subs += c.Subscribers
	}
	s.Metrics.Streams.Set(int64(len(s.streams)))
	s.Metrics.StreamPoints.Set(points)
	s.Metrics.StreamReplicas.Set(replicas)
	s.Metrics.StreamSubscribers.Set(subs)
}
