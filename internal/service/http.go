package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spatialjoin"
	"spatialjoin/internal/dstore"
	"spatialjoin/internal/textio"
)

// algorithmNames maps the wire names accepted by the API (the same ones
// cmd/sjoin takes) to algorithms.
var algorithmNames = map[string]spatialjoin.Algorithm{
	"":           spatialjoin.AdaptiveLPiB,
	"lpib":       spatialjoin.AdaptiveLPiB,
	"diff":       spatialjoin.AdaptiveDIFF,
	"uni-r":      spatialjoin.PBSMUniR,
	"uni-s":      spatialjoin.PBSMUniS,
	"eps-grid":   spatialjoin.PBSMEpsGrid,
	"sedona":     spatialjoin.SedonaLike,
	"lpib-dedup": spatialjoin.AdaptiveSimpleDedup,
	"clone":      spatialjoin.PBSMClone,
	"auto":       spatialjoin.AutoPlanned,
}

// joinRequestWire is the JSON body of POST /v1/join.
type joinRequestWire struct {
	R              string  `json:"r"`
	S              string  `json:"s"`
	Eps            float64 `json:"eps"`
	Algorithm      string  `json:"algorithm,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	Partitions     int     `json:"partitions,omitempty"`
	SampleFraction float64 `json:"sample_fraction,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	UseLPT         bool    `json:"use_lpt,omitempty"`
	GridRes        float64 `json:"grid_res,omitempty"`
	Collect        bool    `json:"collect,omitempty"`
	Limit          int     `json:"limit,omitempty"`
	TimeoutMillis  int64   `json:"timeout_ms,omitempty"`
}

type errorWire struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/datasets?name=N       upload a dataset ("x y [payload]" lines)
//	POST   /v1/datasets?name=N&generate=K&n=M&seed=S   generate one instead
//	GET    /v1/datasets              list datasets
//	DELETE /v1/datasets/{name}       drop a dataset (and its cached plans)
//	POST   /v1/join                  execute a join (JSON body)
//	POST   /v1/join/count            same, but never materialises pairs
//	POST   /v1/geodatasets?name=N    upload a geometry dataset (WKT-ish lines)
//	GET    /v1/geodatasets           list geometry datasets
//	DELETE /v1/geodatasets/{name}    drop a geometry dataset
//	POST   /v1/geojoin               execute a non-point join (JSON body)
//	POST   /v1/geojoin/count         same, but never materialises pairs
//	GET    /v1/joins/{id}/trace      span tree + skew of a recent join
//	                                 (?format=chrome for trace-event JSON)
//	GET    /v1/admin/handoff/{name}  export a dataset as a columnar blob
//	                                 (?xlo=&xhi=&inchi= x-range filter)
//	POST   /v1/admin/handoff?name=N  import a columnar blob as a dataset
//	POST   /v1/admin/skew            import planner skew observations
//	POST   /v1/stream                create a streaming join (JSON body)
//	GET    /v1/stream                list streams
//	DELETE /v1/stream/{name}         tear a stream down
//	POST   /v1/stream/ingest?name=N  apply NDJSON mutations
//	GET    /v1/stream/subscribe?name=N  chunked NDJSON delta feed
//	POST   /v1/admin/checkpoint      write a durable checkpoint now
//	GET    /v1/planner/history       persisted per-(R,S,eps) skew reports
//	                                 (?window=5m for rollup-backed series)
//	GET    /v1/telemetry/series      rollup time series (?name=&key=&res=&window=)
//	GET    /v1/telemetry/slo         per-tenant SLO status (p50/p99, burn rate)
//	GET    /v1/telemetry/events      anomaly event log (?limit=)
//	GET    /healthz                  200 ok / 503 draining
//	GET    /metrics                  Prometheus text format
//	GET    /debug/vars               JSON mirror of /metrics
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.registerStreamRoutes(mux)
	s.registerGeoRoutes(mux)
	mux.HandleFunc("POST /v1/datasets", s.instrument("datasets_put", s.handlePutDataset))
	mux.HandleFunc("GET /v1/datasets", s.instrument("datasets_list", s.handleListDatasets))
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.instrument("datasets_delete", s.handleDeleteDataset))
	mux.HandleFunc("POST /v1/join", s.instrument("join", func(w http.ResponseWriter, r *http.Request) (int, error) {
		return s.handleJoin(w, r, true)
	}))
	mux.HandleFunc("POST /v1/join/count", s.instrument("join_count", func(w http.ResponseWriter, r *http.Request) (int, error) {
		return s.handleJoin(w, r, false)
	}))
	mux.HandleFunc("GET /v1/joins/{id}/trace", s.instrument("join_trace", s.handleJoinTrace))
	mux.HandleFunc("GET /v1/admin/handoff/{name}", s.instrument("handoff_export", s.handleHandoffExport))
	mux.HandleFunc("POST /v1/admin/handoff", s.instrument("handoff_import", s.handleHandoffImport))
	mux.HandleFunc("POST /v1/admin/skew", s.instrument("skew_import", s.handleSkewImport))
	mux.HandleFunc("POST /v1/admin/checkpoint", s.instrument("admin_checkpoint", s.handleCheckpoint))
	mux.HandleFunc("GET /v1/planner/history", s.instrument("planner_history", s.handlePlannerHistory))
	mux.HandleFunc("GET /v1/telemetry/series", s.instrument("telemetry_series", s.handleTelemetrySeries))
	mux.HandleFunc("GET /v1/telemetry/slo", s.instrument("telemetry_slo", s.handleTelemetrySLO))
	mux.HandleFunc("GET /v1/telemetry/events", s.instrument("telemetry_events", s.handleTelemetryEvents))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/vars", s.handleVars)
	return mux
}

// instrument wraps a handler with request counting by endpoint and code.
func (s *Service) instrument(endpoint string, h func(http.ResponseWriter, *http.Request) (int, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		code, err := h(w, r)
		if err != nil {
			writeError(w, code, err)
		}
		s.Metrics.Requests.Inc(endpoint, strconv.Itoa(code))
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests {
		after := "1"
		var tqe *TenantQuotaError
		if errors.As(err, &tqe) {
			if secs := int(math.Ceil(tqe.RetryAfter.Seconds())); secs > 1 {
				after = strconv.Itoa(secs)
			}
		}
		w.Header().Set("Retry-After", after)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorWire{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) (int, error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
	return code, nil
}

func (s *Service) handlePutDataset(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.URL.Query().Get("name")
	if name == "" {
		return http.StatusBadRequest, fmt.Errorf("service: query parameter 'name' is required")
	}
	var ts []spatialjoin.Tuple
	if kind := r.URL.Query().Get("generate"); kind != "" {
		n, err := strconv.Atoi(r.URL.Query().Get("n"))
		if err != nil || n <= 0 || n > 10_000_000 {
			return http.StatusBadRequest, fmt.Errorf("service: generate requires 'n' in [1, 1e7]")
		}
		seed, _ := strconv.ParseInt(r.URL.Query().Get("seed"), 10, 64)
		switch kind {
		case "uniform":
			ts = spatialjoin.GenerateUniform(n, seed)
		case "gaussian":
			ts = spatialjoin.GenerateGaussian(n, seed)
		case "tiger":
			ts = spatialjoin.GenerateTigerLike(n, seed)
		case "osm":
			ts = spatialjoin.GenerateOSMLike(n, seed)
		default:
			return http.StatusBadRequest, fmt.Errorf("service: unknown generator %q (uniform, gaussian, tiger, osm)", kind)
		}
	} else {
		var err error
		ts, err = textio.Read(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes), 0)
		if err != nil {
			return http.StatusBadRequest, err
		}
		if len(ts) == 0 {
			return http.StatusBadRequest, fmt.Errorf("service: upload contained no points")
		}
	}
	rev, err := s.Registry.Put(name, ts)
	if err != nil {
		return http.StatusBadRequest, err
	}
	// A replaced dataset invalidates plans referencing the old revision;
	// drop them eagerly rather than waiting for LRU pressure.
	s.cache.Invalidate(name)
	b := boundsOf(ts)
	return writeJSON(w, http.StatusCreated, DatasetInfo{
		Name: name, Points: len(ts), Rev: rev,
		MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY,
	})
}

func (s *Service) handleListDatasets(w http.ResponseWriter, r *http.Request) (int, error) {
	return writeJSON(w, http.StatusOK, s.Registry.List())
}

func (s *Service) handleDeleteDataset(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.PathValue("name")
	if !s.Registry.Delete(name) {
		return http.StatusNotFound, fmt.Errorf("service: unknown dataset %q", name)
	}
	s.cache.Invalidate(name)
	return writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Service) handleJoin(w http.ResponseWriter, r *http.Request, allowCollect bool) (int, error) {
	var wire joinRequestWire
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return http.StatusBadRequest, fmt.Errorf("service: bad join request: %w", err)
	}
	req := JoinRequest{
		R: wire.R, S: wire.S, Eps: wire.Eps,
		Tenant:  r.Header.Get("X-Tenant"),
		Workers: wire.Workers, Partitions: wire.Partitions,
		SampleFraction: wire.SampleFraction, Seed: wire.Seed,
		UseLPT: wire.UseLPT, GridRes: wire.GridRes,
		Collect: wire.Collect && allowCollect, Limit: wire.Limit,
		Timeout: time.Duration(wire.TimeoutMillis) * time.Millisecond,
	}
	// "disk" is not a planner algorithm: it streams the join from the
	// grid-partitioned columnar files instead of in-memory plans.
	if strings.EqualFold(wire.Algorithm, "disk") {
		resp, err := s.DiskJoin(r.Context(), req)
		if err != nil {
			s.Telem.ObserveJoinError(req.Tenant, time.Now())
			return joinErrorCode(err), err
		}
		return writeJSON(w, http.StatusOK, resp)
	}
	algo, ok := algorithmNames[strings.ToLower(wire.Algorithm)]
	if !ok {
		return http.StatusBadRequest, fmt.Errorf("service: unknown algorithm %q", wire.Algorithm)
	}
	req.Algorithm = algo
	resp, err := s.Join(r.Context(), req)
	if err != nil {
		// The error (a 429 included) counts against the tenant's SLO
		// budget; successes are recorded by observeTrace inside Join.
		s.Telem.ObserveJoinError(req.Tenant, time.Now())
		return joinErrorCode(err), err
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleJoinTrace(w http.ResponseWriter, r *http.Request) (int, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("service: bad join id %q", r.PathValue("id"))
	}
	if r.URL.Query().Get("format") == "chrome" {
		var buf bytes.Buffer
		ok, err := s.TraceChrome(id, &buf)
		if !ok {
			return http.StatusNotFound, fmt.Errorf("service: no retained trace for join %d", id)
		}
		if err != nil {
			return http.StatusInternalServerError, err
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
		return http.StatusOK, nil
	}
	resp, ok := s.Trace(id)
	if !ok {
		return http.StatusNotFound, fmt.Errorf("service: no retained trace for join %d", id)
	}
	return writeJSON(w, http.StatusOK, resp)
}

// handleCheckpoint triggers a durable checkpoint on demand: POST
// /v1/admin/checkpoint. 400 on an in-memory daemon (no -data-dir).
func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request) (int, error) {
	seq, err := s.Checkpoint()
	if err != nil {
		if errors.Is(err, ErrNotDurable) {
			return http.StatusBadRequest, err
		}
		return http.StatusInternalServerError, err
	}
	return writeJSON(w, http.StatusOK, map[string]uint64{"checkpoint_seq": seq})
}

// handlePlannerHistory serves the persisted skew observations: GET
// /v1/planner/history. 400 on an in-memory daemon. With ?window= (a
// duration, e.g. 5m) it instead serves the rollup-backed skew series
// for that window — the multi-resolution view the adaptive planner
// consumes — which works on in-memory daemons too.
func (s *Service) handlePlannerHistory(w http.ResponseWriter, r *http.Request) (int, error) {
	if win := r.URL.Query().Get("window"); win != "" {
		return s.handlePlannerWindow(w, r, win)
	}
	hist, err := s.SkewHistory()
	if err != nil {
		return http.StatusBadRequest, err
	}
	if hist == nil {
		hist = []dstore.SkewSample{}
	}
	return writeJSON(w, http.StatusOK, hist)
}

// joinErrorCode maps service errors to HTTP status codes.
func joinErrorCode(err error) int {
	var tqe *TenantQuotaError
	switch {
	case errors.Is(err, ErrOverloaded), errors.As(err, &tqe):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, spatialjoin.ErrNotPreparable):
		// Still a valid query — it just cannot be cached; the service
		// runs Sedona-like joins one-shot, so reaching here is a bug
		// guard rather than an expected path.
		return http.StatusBadRequest
	case strings.Contains(err.Error(), "unknown dataset"):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Metrics.Render(w)
}

func (s *Service) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Metrics.Snapshot())
}
