// Telemetry endpoints: the HTTP surface over the internal/telem hub.
// These are read-only views; observations flow in from observeTrace,
// handleJoin's error path, and the optional gauge-sampling loop.

package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"spatialjoin/internal/telem"
)

// parseWindow turns a ?window= duration into the since-unix-seconds
// cutoff Dump expects. Empty means no cutoff.
func parseWindow(win string) (int64, error) {
	if win == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(win)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("service: bad window %q (want a positive duration like 5m)", win)
	}
	return time.Now().Add(-d).Unix(), nil
}

// handleTelemetrySeries serves GET /v1/telemetry/series: rollup series
// filtered by ?name=, ?key=, ?res= (1s/10s/1m) and ?window= (duration).
func (s *Service) handleTelemetrySeries(w http.ResponseWriter, r *http.Request) (int, error) {
	q := r.URL.Query()
	since, err := parseWindow(q.Get("window"))
	if err != nil {
		return http.StatusBadRequest, err
	}
	dumps := s.Telem.Store.Dump(q.Get("name"), q.Get("key"), q.Get("res"), since)
	if dumps == nil {
		dumps = []telem.SeriesDump{}
	}
	return writeJSON(w, http.StatusOK, dumps)
}

// handleTelemetrySLO serves GET /v1/telemetry/slo: one row per tenant
// with interpolated p50/p99, error rate, and budget burn.
func (s *Service) handleTelemetrySLO(w http.ResponseWriter, r *http.Request) (int, error) {
	sts := s.Telem.SLO.Status(time.Now())
	if sts == nil {
		sts = []telem.SLOStatus{}
	}
	return writeJSON(w, http.StatusOK, sts)
}

// handleTelemetryEvents serves GET /v1/telemetry/events: the bounded
// anomaly event log, oldest first; ?limit= caps the tail returned.
func (s *Service) handleTelemetryEvents(w http.ResponseWriter, r *http.Request) (int, error) {
	limit := 100
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			return http.StatusBadRequest, fmt.Errorf("service: bad limit %q", ls)
		}
		limit = n
	}
	evs := s.Telem.Events.Recent(limit)
	if evs == nil {
		evs = []telem.Event{}
	}
	return writeJSON(w, http.StatusOK, evs)
}

// handlePlannerWindow serves the rollup-backed planner history: the
// skew series (straggler ratio, replication bytes, shuffle bytes) per
// (R,S,eps) key over the requested window, at ?res= resolution.
func (s *Service) handlePlannerWindow(w http.ResponseWriter, r *http.Request, win string) (int, error) {
	since, err := parseWindow(win)
	if err != nil {
		return http.StatusBadRequest, err
	}
	res := r.URL.Query().Get("res")
	out := map[string][]telem.SeriesDump{}
	for _, name := range []string{telem.SeriesStragglerRatio, telem.SeriesReplicationBytes, telem.SeriesShuffleBytes} {
		d := s.Telem.Store.Dump(name, r.URL.Query().Get("key"), res, since)
		if d == nil {
			d = []telem.SeriesDump{}
		}
		out[name] = d
	}
	return writeJSON(w, http.StatusOK, out)
}
