package service

import (
	"container/list"
	"sync"

	"spatialjoin"
)

// PlanKey identifies one prepared plan: the dataset pair (by name AND
// revision AND generation, so both re-uploads and in-place mutations via
// Registry.Apply invalidate), the join parameters, and the algorithm.
// Two requests with equal keys can share a plan.
type PlanKey struct {
	R, S           string
	RRev, SRev     int64
	RGen, SGen     int64
	Eps            float64
	Algorithm      spatialjoin.Algorithm
	Workers        int
	Partitions     int
	SampleFraction float64
	Seed           int64
	UseLPT         bool
	GridRes        float64
}

// planCache is an LRU cache of prepared plans with single-flight
// construction: concurrent requests for the same key build the plan
// exactly once and share the result. Errors are returned to every
// waiter but never cached.
type planCache struct {
	cap     int
	metrics *Metrics

	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[PlanKey]*list.Element
	bytes    int64
	inflight map[PlanKey]*planCall
}

type planEntry struct {
	key  PlanKey
	plan *spatialjoin.PreparedJoin
}

type planCall struct {
	done chan struct{}
	plan *spatialjoin.PreparedJoin
	err  error
}

func newPlanCache(capacity int, m *Metrics) *planCache {
	return &planCache{
		cap:      capacity,
		metrics:  m,
		ll:       list.New(),
		items:    map[PlanKey]*list.Element{},
		inflight: map[PlanKey]*planCall{},
	}
}

// GetOrBuild returns the cached plan for key, or builds it with build.
// The returned bool reports whether the caller skipped construction.
// Concurrent callers with the same key wait for the first builder and
// share its plan, so misses (and PlanBuild observations) count actual
// constructions exactly once per key generation.
func (c *planCache) GetOrBuild(key PlanKey, build func() (*spatialjoin.PreparedJoin, error)) (*spatialjoin.PreparedJoin, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		plan := el.Value.(*planEntry).plan
		c.mu.Unlock()
		if c.metrics != nil {
			c.metrics.PlanCacheHits.Inc()
		}
		return plan, true, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		if call.err != nil {
			return nil, false, call.err
		}
		if c.metrics != nil {
			c.metrics.PlanCacheHits.Inc()
		}
		return call.plan, true, nil
	}
	call := &planCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	if c.metrics != nil {
		c.metrics.PlanCacheMisses.Inc()
	}
	call.plan, call.err = build()
	close(call.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		c.insert(key, call.plan)
	}
	c.mu.Unlock()
	return call.plan, false, call.err
}

// insert adds a plan and evicts from the LRU tail past capacity.
// Callers hold c.mu.
func (c *planCache) insert(key PlanKey, plan *spatialjoin.PreparedJoin) {
	if el, ok := c.items[key]; ok { // lost a race with another builder
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, plan: plan})
	c.bytes += plan.FootprintBytes()
	for c.cap > 0 && c.ll.Len() > c.cap {
		tail := c.ll.Back()
		e := tail.Value.(*planEntry)
		c.ll.Remove(tail)
		delete(c.items, e.key)
		c.bytes -= e.plan.FootprintBytes()
		if c.metrics != nil {
			c.metrics.PlanCacheEvictions.Inc()
		}
	}
	if c.metrics != nil {
		c.metrics.PlanCacheEntries.Set(int64(c.ll.Len()))
		c.metrics.PlanCacheBytes.Set(c.bytes)
	}
}

// Invalidate drops every cached plan that references dataset name — used
// when a dataset is deleted or replaced. (Replacement alone is already
// safe via revisions; invalidation frees the memory eagerly.)
func (c *planCache) Invalidate(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var dropped int
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*planEntry)
		if e.key.R == name || e.key.S == name {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.bytes -= e.plan.FootprintBytes()
			dropped++
		}
		el = next
	}
	if c.metrics != nil && dropped > 0 {
		c.metrics.PlanCacheEntries.Set(int64(c.ll.Len()))
		c.metrics.PlanCacheBytes.Set(c.bytes)
	}
	return dropped
}

// Len returns the number of cached plans.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
