package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"spatialjoin"
)

// TestServiceJoinTrace checks every join retains a trace reachable by
// its join id, with a single join-rooted span tree, task spans, and a
// populated skew report, and that the histograms were fed.
func TestServiceJoinTrace(t *testing.T) {
	s := testService(t, Config{})
	resp, err := s.Join(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.JoinID == 0 {
		t.Fatal("join response carries no join id")
	}
	tr, ok := s.Trace(resp.JoinID)
	if !ok {
		t.Fatalf("trace for join %d not retained", resp.JoinID)
	}
	if tr.TraceID == "" || tr.Spans == 0 {
		t.Fatalf("empty trace: %+v", tr)
	}
	if len(tr.Tree) != 1 || tr.Tree[0].Name != "join" {
		t.Fatalf("trace is not a single join-rooted tree: %d roots", len(tr.Tree))
	}
	if tr.Skew.Tasks == 0 || tr.Skew.MaxTaskMicros <= 0 {
		t.Fatalf("skew report empty: %+v", tr.Skew)
	}
	if got := s.Metrics.JoinLatency.Count(); got != 1 {
		t.Fatalf("join latency histogram count = %d, want 1", got)
	}
	if got := s.Metrics.TaskDuration.Count(); got < int64(tr.Skew.Tasks) {
		t.Fatalf("task histogram count = %d, want >= %d", got, tr.Skew.Tasks)
	}

	if _, ok := s.Trace(resp.JoinID + 999); ok {
		t.Fatal("unknown join id returned a trace")
	}
}

// TestServiceTraceRingEviction checks the trace ring keeps only the
// most recent traceRingSize joins.
func TestServiceTraceRingEviction(t *testing.T) {
	s := New(Config{})
	var first, last int64
	for i := 0; i < traceRingSize+5; i++ {
		tr := spatialjoin.NewTracer()
		sp := tr.Start(0, "join")
		sp.End()
		last = s.observeTrace("lpib", "", "r", "s", 0.5, tr, time.Millisecond)
		if i == 0 {
			first = last
		}
	}
	if _, ok := s.Trace(first); ok {
		t.Fatal("oldest trace survived past the ring capacity")
	}
	if _, ok := s.Trace(last); !ok {
		t.Fatal("newest trace missing")
	}
	s.traceMu.Lock()
	n := len(s.traces)
	s.traceMu.Unlock()
	if n != traceRingSize {
		t.Fatalf("ring holds %d traces, want %d", n, traceRingSize)
	}
}

// TestHTTPJoinTraceEndpoint exercises GET /v1/joins/{id}/trace over
// HTTP in both formats, plus its error paths.
func TestHTTPJoinTraceEndpoint(t *testing.T) {
	s := testService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := strings.NewReader(`{"r": "r", "s": "s", "eps": 0.5}`)
	res, err := http.Post(srv.URL+"/v1/join", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var jr JoinResponse
	if err := json.NewDecoder(res.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if jr.JoinID == 0 {
		t.Fatal("HTTP join response carries no join_id")
	}

	res, err = http.Get(fmt.Sprintf("%s/v1/joins/%d/trace", srv.URL, jr.JoinID))
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status %d", res.StatusCode)
	}
	var tw JoinTraceResponse
	if err := json.NewDecoder(res.Body).Decode(&tw); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if tw.JoinID != jr.JoinID || len(tw.Tree) != 1 || tw.Skew.Tasks == 0 {
		t.Fatalf("trace payload implausible: %+v", tw)
	}

	// Chrome trace-event export: a traceEvents array of metadata ("M")
	// and complete ("X") events with non-negative microsecond stamps.
	res, err = http.Get(fmt.Sprintf("%s/v1/joins/%d/trace?format=chrome", srv.URL, jr.JoinID))
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(res.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	res.Body.Close()
	var complete int
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "M" && ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		if ev.Ph == "X" {
			complete++
			if ev.Name == "" || ev.Ts < 0 {
				t.Fatalf("malformed complete event: %+v", ev)
			}
		}
	}
	if complete == 0 {
		t.Fatal("chrome trace has no complete events")
	}

	for path, want := range map[string]int{
		"/v1/joins/999999/trace": http.StatusNotFound,
		"/v1/joins/xyz/trace":    http.StatusBadRequest,
	} {
		res, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != want {
			t.Fatalf("GET %s status %d, want %d", path, res.StatusCode, want)
		}
	}
}

// Prometheus text-format grammar for one sample line.
var sampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*")*\})? (-?[0-9.]+([eE][+-]?[0-9]+)?|\+Inf|NaN)$`)

var commentRe = regexp.MustCompile(
	`^# (HELP [a-zA-Z_:][a-zA-Z0-9_:]* [^\n]*|TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))$`)

// TestMetricsExpositionFormat scrapes /metrics after real traffic —
// including a label value that needs every escape the format defines —
// and validates the exposition line by line: each line is a well-formed
// HELP/TYPE comment or sample, and every sample belongs to a metric
// family declared by a preceding HELP + TYPE pair.
func TestMetricsExpositionFormat(t *testing.T) {
	s := testService(t, Config{})
	if _, err := s.Join(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Adversarial label value: quote, backslash, newline.
	s.Metrics.Requests.Inc("weird\"end\\point\nnewline", "200")

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	var sb strings.Builder
	s.Metrics.Render(&sb)
	out := sb.String()

	helped := map[string]bool{}
	typed := map[string]bool{}
	samples := 0
	for i, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !commentRe.MatchString(line) {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			f := strings.Fields(line)
			if f[1] == "HELP" {
				helped[f[2]] = true
			} else {
				typed[f[2]] = true
				if f[3] == "histogram" {
					for _, sfx := range []string{"_bucket", "_sum", "_count"} {
						helped[f[2]+sfx] = true
						typed[f[2]+sfx] = true
					}
				}
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		if !helped[m[1]] || !typed[m[1]] {
			t.Fatalf("line %d: sample %q not preceded by HELP+TYPE", i+1, m[1])
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples rendered")
	}

	// The adversarial label value must come out escaped, on one line.
	want := `endpoint="weird\"end\\point\nnewline"`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition lacks escaped label value %s", want)
	}
	// And the new histograms must be present after a traced join.
	for _, name := range []string{"sjoind_join_seconds", "sjoind_task_seconds"} {
		if !strings.Contains(out, "# TYPE "+name+" histogram") {
			t.Fatalf("missing histogram %s", name)
		}
		if !strings.Contains(out, name+"_count") {
			t.Fatalf("missing %s_count sample", name)
		}
	}
}
