// HTTP surface of the streaming join engine:
//
//	POST   /v1/stream                create a stream (JSON body)
//	GET    /v1/stream                list streams
//	DELETE /v1/stream/{name}         tear a stream down
//	POST   /v1/stream/ingest?name=N  NDJSON mutations, one per line
//	GET    /v1/stream/subscribe?name=N[&snapshot=true]
//	                                 chunked NDJSON delta feed
//
// The subscribe response never ends on its own: deltas are flushed as
// they are emitted until the client disconnects or the stream is
// deleted. With snapshot=true the current result set is replayed first
// as "+" lines taken atomically with the subscription, so the client's
// accumulated view equals the live result set from the first byte.

package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"spatialjoin"
	"spatialjoin/internal/stream"
	"spatialjoin/internal/tuple"
)

// streamCreateWire is the JSON body of POST /v1/stream.
type streamCreateWire struct {
	Name           string  `json:"name"`
	Eps            float64 `json:"eps"`
	MinX           float64 `json:"min_x"`
	MinY           float64 `json:"min_y"`
	MaxX           float64 `json:"max_x"`
	MaxY           float64 `json:"max_y"`
	GridRes        float64 `json:"grid_res,omitempty"`
	Policy         string  `json:"policy,omitempty"`
	TTLMillis      int64   `json:"ttl_ms,omitempty"`
	RebalanceEvery int     `json:"rebalance_every,omitempty"`
	RDataset       string  `json:"r_dataset,omitempty"`
	SDataset       string  `json:"s_dataset,omitempty"`
}

// streamMutationWire is one NDJSON line of POST /v1/stream/ingest.
type streamMutationWire struct {
	Op  string  `json:"op,omitempty"` // "upsert" (default) or "delete"
	Set string  `json:"set"`          // "r" or "s"
	ID  int64   `json:"id"`
	X   float64 `json:"x,omitempty"`
	Y   float64 `json:"y,omitempty"`
}

// streamDeltaWire is one NDJSON line of the subscribe feed.
type streamDeltaWire struct {
	Op  string `json:"op"` // "+" or "-"
	RID int64  `json:"rid"`
	SID int64  `json:"sid"`
}

// streamIngestResponse summarises one ingest batch.
type streamIngestResponse struct {
	Accepted      int64  `json:"accepted"`
	Rejected      int64  `json:"rejected"`
	Expired       int64  `json:"expired"`
	DeltasAdded   int64  `json:"deltas_added"`
	DeltasRemoved int64  `json:"deltas_removed"`
	Flips         int64  `json:"agreement_flips"`
	Migrations    int64  `json:"migrations"`
	MirrorError   string `json:"mirror_error,omitempty"`
}

func (s *Service) registerStreamRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/stream", s.instrument("stream_create", s.handleCreateStream))
	mux.HandleFunc("GET /v1/stream", s.instrument("stream_list", s.handleListStreams))
	mux.HandleFunc("DELETE /v1/stream/{name}", s.instrument("stream_delete", s.handleDeleteStream))
	mux.HandleFunc("POST /v1/stream/ingest", s.instrument("stream_ingest", s.handleStreamIngest))
	mux.HandleFunc("GET /v1/stream/subscribe", s.handleStreamSubscribe)
}

func (s *Service) handleCreateStream(w http.ResponseWriter, r *http.Request) (int, error) {
	var wire streamCreateWire
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return http.StatusBadRequest, fmt.Errorf("service: bad stream config: %w", err)
	}
	info, err := s.CreateStream(StreamConfig{
		Name: wire.Name, Eps: wire.Eps,
		MinX: wire.MinX, MinY: wire.MinY, MaxX: wire.MaxX, MaxY: wire.MaxY,
		GridRes: wire.GridRes, Policy: wire.Policy,
		TTLMillis: wire.TTLMillis, RebalanceEvery: wire.RebalanceEvery,
		RDataset: wire.RDataset, SDataset: wire.SDataset,
	})
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "already exists") {
			code = http.StatusConflict
		} else if strings.Contains(err.Error(), "unknown dataset") {
			code = http.StatusNotFound
		}
		return code, err
	}
	return writeJSON(w, http.StatusCreated, info)
}

func (s *Service) handleListStreams(w http.ResponseWriter, r *http.Request) (int, error) {
	return writeJSON(w, http.StatusOK, s.ListStreams())
}

func (s *Service) handleDeleteStream(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.PathValue("name")
	if !s.DeleteStream(name) {
		return http.StatusNotFound, fmt.Errorf("service: unknown stream %q", name)
	}
	return writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Service) handleStreamIngest(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.URL.Query().Get("name")
	if name == "" {
		return http.StatusBadRequest, fmt.Errorf("service: query parameter 'name' is required")
	}
	batch, err := decodeMutations(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		return http.StatusBadRequest, err
	}
	br, err := s.StreamIngest(name, batch)
	if err != nil && strings.Contains(err.Error(), "unknown stream") {
		return http.StatusNotFound, err
	}
	if errors.Is(err, ErrPersist) {
		// The batch was not applied: nothing to summarise, retry later.
		return http.StatusInternalServerError, err
	}
	resp := streamIngestResponse{
		Accepted:    br.Upserts + br.Deletes,
		Rejected:    br.Rejected,
		Expired:     br.Expired,
		DeltasAdded: br.DeltasAdded, DeltasRemoved: br.DeltasRemoved,
		Flips: br.AgreementFlips, Migrations: br.Migrations,
	}
	if err != nil {
		resp.MirrorError = err.Error()
	}
	return writeJSON(w, http.StatusOK, resp)
}

// decodeMutations parses the NDJSON ingest body. Blank lines and
// #-comment lines are skipped; any malformed line fails the whole batch
// so clients never silently lose mutations.
func decodeMutations(body io.Reader) ([]stream.Mutation, error) {
	var batch []stream.Mutation
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var wire streamMutationWire
		if err := json.Unmarshal([]byte(line), &wire); err != nil {
			return nil, fmt.Errorf("service: ingest line %d: %w", lineNo, err)
		}
		var set tuple.Set
		switch strings.ToLower(wire.Set) {
		case "r":
			set = tuple.R
		case "s":
			set = tuple.S
		default:
			return nil, fmt.Errorf("service: ingest line %d: set must be \"r\" or \"s\", got %q", lineNo, wire.Set)
		}
		m := stream.Mutation{Set: set, Tuple: spatialjoin.Tuple{ID: wire.ID, Pt: spatialjoin.Point{X: wire.X, Y: wire.Y}}}
		switch strings.ToLower(wire.Op) {
		case "", "upsert":
		case "delete":
			m.Delete = true
		default:
			return nil, fmt.Errorf("service: ingest line %d: op must be \"upsert\" or \"delete\", got %q", lineNo, wire.Op)
		}
		batch = append(batch, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("service: reading ingest body: %w", err)
	}
	return batch, nil
}

// handleStreamSubscribe streams deltas as chunked NDJSON until the
// client goes away or the stream is deleted. It bypasses instrument():
// the response code is committed long before the handler returns.
func (s *Service) handleStreamSubscribe(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	st, err := s.GetStream(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		s.Metrics.Requests.Inc("stream_subscribe", "404")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("service: response writer cannot stream"))
		s.Metrics.Requests.Inc("stream_subscribe", "500")
		return
	}

	var sub *stream.Subscription
	var snapshot []spatialjoin.Pair
	if r.URL.Query().Get("snapshot") == "true" {
		sub, snapshot = st.eng.SubscribeWithSnapshot()
	} else {
		sub = st.eng.Subscribe()
	}
	defer sub.Close()
	s.streamMu.Lock()
	s.updateStreamGaugesLocked()
	s.streamMu.Unlock()
	defer func() {
		s.streamMu.Lock()
		s.updateStreamGaugesLocked()
		s.streamMu.Unlock()
	}()
	s.Metrics.Requests.Inc("stream_subscribe", "200")

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, p := range snapshot {
		enc.Encode(streamDeltaWire{Op: "+", RID: p.RID, SID: p.SID})
	}
	flusher.Flush()

	// Unblock Next when the client disconnects; Close is idempotent.
	go func() {
		<-r.Context().Done()
		sub.Close()
	}()
	for {
		d, ok := sub.Next()
		if !ok {
			return // subscription closed: client gone or stream deleted
		}
		enc.Encode(streamDeltaWire{Op: d.Op.String(), RID: d.RID, SID: d.SID})
		// Drain whatever else is queued before paying for a flush.
		for {
			d, ok := sub.TryNext()
			if !ok {
				break
			}
			enc.Encode(streamDeltaWire{Op: d.Op.String(), RID: d.RID, SID: d.SID})
		}
		flusher.Flush()
	}
}
