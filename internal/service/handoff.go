// Dataset handoff: the shard-side half of the fleet's data movement.
// A dataset travels between shards as one columnar (.col) blob in the
// dstore tuple format — IDs and payloads preserved bit for bit, so a
// join against a shipped copy produces the same pair ids and checksum
// as against the original. The router drives these endpoints for
// replica placement, ring-change migration, and cross-shard join
// mirroring (optionally restricted to an x-range strip).

package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"spatialjoin"
	"spatialjoin/internal/dstore"
)

// handleHandoffExport serves GET /v1/admin/handoff/{name}: the dataset
// as a columnar blob. Query parameters xlo/xhi restrict the export to
// an x-range (xlo inclusive; xhi inclusive only with inchi=1) — the
// strip filter the router's fan-out join uses. An empty filtered
// region answers 204 with no body.
func (s *Service) handleHandoffExport(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.PathValue("name")
	d, err := s.Registry.Get(name)
	if err != nil {
		return http.StatusNotFound, err
	}
	ts := d.Tuples
	q := r.URL.Query()
	if q.Get("xlo") != "" || q.Get("xhi") != "" {
		xlo, err := strconv.ParseFloat(q.Get("xlo"), 64)
		if err != nil {
			return http.StatusBadRequest, fmt.Errorf("service: bad xlo %q", q.Get("xlo"))
		}
		xhi, err := strconv.ParseFloat(q.Get("xhi"), 64)
		if err != nil {
			return http.StatusBadRequest, fmt.Errorf("service: bad xhi %q", q.Get("xhi"))
		}
		incHi := q.Get("inchi") == "1"
		kept := make([]spatialjoin.Tuple, 0, len(ts))
		for _, t := range ts {
			if t.Pt.X < xlo {
				continue
			}
			if t.Pt.X > xhi || (!incHi && t.Pt.X == xhi) {
				continue
			}
			kept = append(kept, t)
		}
		ts = kept
	}
	w.Header().Set("X-Sjoin-Rev", strconv.FormatInt(d.Rev, 10))
	w.Header().Set("X-Sjoin-Gen", strconv.FormatInt(d.Gen, 10))
	w.Header().Set("X-Sjoin-Points", strconv.Itoa(len(ts)))
	if len(ts) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return http.StatusNoContent, nil
	}
	blob, err := tuplesToBlob(ts)
	if err != nil {
		return http.StatusInternalServerError, err
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
	return http.StatusOK, nil
}

// handleHandoffImport serves POST /v1/admin/handoff?name=N: register a
// columnar blob as a dataset, tuple ids preserved.
func (s *Service) handleHandoffImport(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.URL.Query().Get("name")
	if name == "" {
		return http.StatusBadRequest, fmt.Errorf("service: query parameter 'name' is required")
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("service: reading handoff blob: %w", err)
	}
	ts, err := blobToTuples(blob)
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("service: decoding handoff blob: %w", err)
	}
	rev, err := s.Registry.Put(name, ts)
	if err != nil {
		return http.StatusBadRequest, err
	}
	s.cache.Invalidate(name)
	b := boundsOf(ts)
	return writeJSON(w, http.StatusCreated, DatasetInfo{
		Name: name, Points: len(ts), Rev: rev,
		MinX: b.MinX, MinY: b.MinY, MaxX: b.MaxX, MaxY: b.MaxY,
	})
}

// handleSkewImport serves POST /v1/admin/skew: append planner skew
// observations shipped from another shard into the durable history.
// 400 on an in-memory daemon, matching /v1/planner/history.
func (s *Service) handleSkewImport(w http.ResponseWriter, r *http.Request) (int, error) {
	if s.store == nil {
		return http.StatusBadRequest, ErrNotDurable
	}
	var samples []dstore.SkewSample
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&samples); err != nil {
		return http.StatusBadRequest, fmt.Errorf("service: bad skew payload: %w", err)
	}
	n := 0
	for _, sm := range samples {
		if sm.R == "" || sm.S == "" || len(sm.Report) == 0 {
			continue
		}
		if err := s.store.AppendSkew(sm.R, sm.S, sm.Eps, sm.Report); err != nil {
			return http.StatusInternalServerError, err
		}
		n++
	}
	return writeJSON(w, http.StatusOK, map[string]int{"imported": n})
}

// tuplesToBlob serialises tuples in the dstore columnar tuple format.
// The colfile layer is mmap/file-based, so the round trip goes through
// a scratch file rather than adding a second wire codec.
func tuplesToBlob(ts []spatialjoin.Tuple) ([]byte, error) {
	f, err := os.CreateTemp("", "sjoin-handoff-*.col")
	if err != nil {
		return nil, err
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	if err := dstore.WriteTuplesFile(path, ts); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// blobToTuples decodes a columnar tuple blob.
func blobToTuples(blob []byte) ([]spatialjoin.Tuple, error) {
	dir, err := os.MkdirTemp("", "sjoin-handoff")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "in.col")
	if err := os.WriteFile(path, blob, 0o600); err != nil {
		return nil, err
	}
	cr, err := dstore.OpenColFile(path)
	if err != nil {
		return nil, err
	}
	defer cr.Close()
	return cr.Tuples()
}
