// Package service is the serving layer of the spatial-join library: a
// long-running join service with a dataset registry, a prepared-plan
// cache (LRU + single-flight), a bounded execution pool with admission
// control, and Prometheus-style metrics. cmd/sjoind wraps it in an HTTP
// daemon.
//
// The design amortises the paper's whole construction pipeline —
// sampling, grid + graph-of-agreements build, adaptive replication,
// shuffle — across many queries: the first request for a (datasets, ε,
// algorithm) combination builds a PreparedJoin via the root facade, and
// every subsequent request (including concurrent duplicates, which
// single-flight collapses into one build) pays only the partition-level
// join probes.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spatialjoin"
	"spatialjoin/internal/dstore"
	"spatialjoin/internal/fleet"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/telem"
)

// Config tunes the service. Zero values select sensible defaults.
type Config struct {
	// MaxConcurrent bounds simultaneously executing joins; default
	// GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue bounds joins waiting for a slot; beyond it requests are
	// rejected with ErrOverloaded (HTTP 429). Default 64.
	MaxQueue int
	// PlanCacheSize is the LRU capacity in plans; default 32.
	PlanCacheSize int
	// DefaultTimeout applies to join requests that set none; default 30s.
	DefaultTimeout time.Duration
	// MaxUploadBytes bounds dataset upload bodies; default 64 MiB.
	MaxUploadBytes int64
	// MaxCollect caps the pairs a single response may materialise;
	// default 10000.
	MaxCollect int
	// TenantQuota layers per-tenant admission on top of the global
	// pool: each tenant (the X-Tenant request header; empty is the
	// anonymous tenant) gets a token bucket of Rate joins per second
	// with Burst capacity. The zero value disables per-tenant admission
	// for tenants without an override.
	TenantQuota fleet.Quota
	// TenantOverrides names per-tenant budgets that replace TenantQuota.
	TenantOverrides map[string]fleet.Quota
	// Engine selects the execution backend every join runs on: nil is
	// the in-process engine; a cluster coordinator's Engine ships
	// partition joins to remote worker processes. Measured wire counters
	// of distributed runs surface as the sjoind_cluster_* metrics.
	Engine spatialjoin.Engine

	// TraceRing bounds how many completed join traces are retained for
	// GET /v1/joins/{id}/trace; older ones are evicted FIFO. Default 64.
	TraceRing int
	// TelemSampleEvery starts a background loop sampling service gauges
	// (queue depth, in-flight, plan cache, runtime) into the telemetry
	// rollup store. 0 disables the loop; join-driven series are recorded
	// either way.
	TelemSampleEvery time.Duration
	// TelemFlushEvery is how often the durable service appends a
	// telemetry snapshot to the record log so rollup history survives
	// restart. Default 2s; ignored without DataDir.
	TelemFlushEvery time.Duration
	// StragglerThreshold is the anomaly detector's straggler-ratio
	// trigger (max/median task time). Default 4.
	StragglerThreshold float64
	// SLOObjective is the per-tenant availability objective in (0, 1).
	// Default 0.995.
	SLOObjective float64

	// DataDir, when set, makes the service durable: dataset and stream
	// mutations are logged to an append-only record log under this
	// directory before they commit, datasets are materialised as
	// columnar files, and Open recovers the full state from checkpoint
	// plus log tail. Empty keeps the service purely in-memory.
	DataDir string
	// Fsync syncs the log after every append (crash-durable acks).
	// Without it, acknowledged records survive process crashes but not
	// host crashes between checkpoints.
	Fsync bool
	// CheckpointEvery triggers periodic checkpoints; 0 disables the
	// loop (checkpoints then happen only via Checkpoint or the admin
	// endpoint). Ignored without DataDir.
	CheckpointEvery time.Duration
	// Logf receives durability-layer notes (recovery, skipped corrupt
	// checkpoints); nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.MaxCollect <= 0 {
		c.MaxCollect = 10000
	}
	if c.TraceRing <= 0 {
		c.TraceRing = traceRingSize
	}
	if c.TelemFlushEvery <= 0 {
		c.TelemFlushEvery = 2 * time.Second
	}
	return c
}

// ErrOverloaded is returned when the admission queue is full.
var ErrOverloaded = errors.New("service: queue full, try again later")

// ErrDraining is returned once Drain has started.
var ErrDraining = errors.New("service: draining, not accepting new work")

// TenantQuotaError reports a join rejected by per-tenant admission; the
// HTTP layer maps it to 429 with a Retry-After of RetryAfter rounded up
// to whole seconds.
type TenantQuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *TenantQuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over quota, retry in %v", e.Tenant, e.RetryAfter.Round(time.Millisecond))
}

// Service is the long-running join service.
type Service struct {
	cfg      Config
	Registry *Registry
	Metrics  *Metrics

	// geo is the geometry (non-point) dataset store; see geo.go.
	geo geoRegistry

	cache    *planCache
	slots    chan struct{}
	queued   atomic.Int64
	draining atomic.Bool
	quotas   *fleet.Quotas // nil when per-tenant admission is off

	// diskReaders caches open readers over the disk-join engine's
	// partitioned files.
	diskReaders diskCache

	streamMu   sync.Mutex
	streams    map[string]*streamState
	streamsSeq uint64 // log position of the last stream create/delete

	traceMu    sync.Mutex
	traces     map[int64]*joinTrace
	traceOrder []int64
	nextJoinID int64

	// store is the durable backing store (nil without Config.DataDir).
	store    *dstore.Store
	ckptStop chan struct{}
	ckptDone chan struct{}

	// Telem is the continuous-telemetry hub: rollup series, per-tenant
	// SLOs, and the anomaly event log (see internal/telem).
	Telem      *telem.Hub
	tflushStop chan struct{}
	tflushDone chan struct{}
	// lastTelemFlush dedups no-op snapshot appends; only the flush
	// loop (and Close, after stopping it) touch it.
	lastTelemFlush []byte
}

// traceRingSize is the default Config.TraceRing: how many completed
// join traces the service retains for GET /v1/joins/{id}/trace before
// FIFO eviction.
const traceRingSize = 64

// joinTrace is one retained join trace.
type joinTrace struct {
	id        int64
	algorithm string
	tracer    *spatialjoin.Tracer
}

// New builds a service.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	s := &Service{
		cfg:      cfg,
		Registry: NewRegistry(m),
		Metrics:  m,
		cache:    newPlanCache(cfg.PlanCacheSize, m),
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		streams:  map[string]*streamState{},
		traces:   map[int64]*joinTrace{},
	}
	s.geo.m = map[string]*geoDataset{}
	s.diskReaders.cap = diskReaderCacheSize
	if !cfg.TenantQuota.IsZero() || len(cfg.TenantOverrides) > 0 {
		s.quotas = fleet.NewQuotas(cfg.TenantQuota, cfg.TenantOverrides)
	}
	s.Telem = telem.NewHub(telem.Config{
		SLO:      telem.SLOConfig{Objective: cfg.SLOObjective},
		Detector: telem.DetectorConfig{StragglerRatio: cfg.StragglerThreshold},
	})
	if cfg.TelemSampleEvery > 0 {
		s.Telem.Start(cfg.TelemSampleEvery, s.collectTelem)
	}
	return s
}

// collectTelem is the periodic gauge sampler feeding the rollup store.
func (s *Service) collectTelem(sample func(name, key string, v float64)) {
	sample("queue_depth", "", float64(s.queued.Load()))
	sample("in_flight", "", float64(s.Metrics.InFlight.Value()))
	sample("plan_cache_entries", "", float64(s.cache.Len()))
	sample("datasets", "", float64(len(s.Registry.List())))
	rs := telem.ReadRuntime()
	sample("goroutines", "", float64(rs.Goroutines))
	sample("heap_alloc_bytes", "", float64(rs.HeapAllocBytes))
}

// StartDrain flips the service into draining mode: /healthz turns 503
// and new join work is rejected; in-flight work continues.
func (s *Service) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Service) Draining() bool { return s.draining.Load() }

// PlanCacheLen returns the number of cached prepared plans.
func (s *Service) PlanCacheLen() int { return s.cache.Len() }

// InFlight returns the number of joins currently executing.
func (s *Service) InFlight() int64 { return s.Metrics.InFlight.Value() }

// acquire admits one join into the bounded pool, waiting for a slot
// until ctx expires. Per-tenant admission runs first: a noisy tenant
// burns its own token bucket and is 429ed while other tenants keep
// their access to the global queue. It returns a release func on
// success.
func (s *Service) acquire(ctx context.Context, tenant string) (func(), error) {
	if s.draining.Load() {
		s.Metrics.Rejected.Inc("draining", tenant)
		return nil, ErrDraining
	}
	if ok, retry := s.quotas.Allow(tenant); !ok {
		s.Metrics.Rejected.Inc("tenant_quota", tenant)
		return nil, &TenantQuotaError{Tenant: tenant, RetryAfter: retry}
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.Metrics.Rejected.Inc("queue_full", tenant)
		return nil, ErrOverloaded
	}
	s.Metrics.QueueDepth.Set(s.queued.Load())
	t0 := time.Now()
	defer func() {
		s.queued.Add(-1)
		s.Metrics.QueueDepth.Set(s.queued.Load())
		s.Metrics.QueueWait.Observe(time.Since(t0).Seconds())
	}()
	select {
	case s.slots <- struct{}{}:
		s.Metrics.InFlight.Add(1)
		return func() {
			s.Metrics.InFlight.Add(-1)
			<-s.slots
		}, nil
	case <-ctx.Done():
		s.Metrics.Rejected.Inc("timeout", tenant)
		return nil, ctx.Err()
	}
}

// JoinRequest is one join query against registered datasets.
type JoinRequest struct {
	R, S      string  // dataset names (both required)
	Tenant    string  // requesting tenant ("" is the anonymous tenant)
	Eps       float64 // distance threshold (required)
	Algorithm spatialjoin.Algorithm

	Workers        int
	Partitions     int
	SampleFraction float64
	Seed           int64
	UseLPT         bool
	GridRes        float64

	Collect bool // materialise pairs (capped at Config.MaxCollect)
	Limit   int  // cap on returned pairs; 0 means Config.MaxCollect

	Timeout time.Duration // per-request; 0 means Config.DefaultTimeout
}

// JoinResponse reports one join execution.
type JoinResponse struct {
	Algorithm   string  `json:"algorithm"`
	Results     int64   `json:"results"`
	Checksum    string  `json:"checksum"` // hex, order-independent over pair ids
	Selectivity float64 `json:"selectivity"`

	PlanCache   string `json:"plan_cache"` // "hit" or "miss"
	ReplicatedR int64  `json:"replicated_r"`
	ReplicatedS int64  `json:"replicated_s"`

	BuildMillis float64 `json:"build_ms"` // plan construction (0 on cache hits)
	ProbeMillis float64 `json:"probe_ms"` // partition-level joins

	Pairs     [][2]int64 `json:"pairs,omitempty"` // when Collect, capped at Limit
	Truncated bool       `json:"truncated,omitempty"`

	// JoinID names this execution's retained trace: fetch the span tree
	// and skew diagnostics at GET /v1/joins/{JoinID}/trace.
	JoinID int64 `json:"join_id"`
}

// JoinTraceResponse is the payload of GET /v1/joins/{id}/trace: the
// join's full span tree plus skew diagnostics derived from it.
type JoinTraceResponse struct {
	JoinID    int64                    `json:"join_id"`
	Algorithm string                   `json:"algorithm"`
	TraceID   string                   `json:"trace_id"` // hex
	Spans     int                      `json:"spans"`
	Dropped   int                      `json:"dropped,omitempty"` // spans lost to the tracer's cap
	Skew      spatialjoin.SkewReport   `json:"skew"`
	Tree      []*spatialjoin.TraceNode `json:"tree"`
}

// Trace returns the retained trace of a completed join, or false when
// the id is unknown or was evicted from the ring.
func (s *Service) Trace(id int64) (*JoinTraceResponse, bool) {
	s.traceMu.Lock()
	jt, ok := s.traces[id]
	s.traceMu.Unlock()
	if !ok {
		return nil, false
	}
	return &JoinTraceResponse{
		JoinID:    jt.id,
		Algorithm: jt.algorithm,
		TraceID:   fmt.Sprintf("%016x", uint64(jt.tracer.TraceID())),
		Spans:     jt.tracer.Len(),
		Dropped:   jt.tracer.Dropped(),
		Skew:      jt.tracer.Skew(),
		Tree:      jt.tracer.Tree(),
	}, true
}

// TraceChrome writes a retained trace in Chrome trace-event format; it
// reports false when the id is unknown or evicted.
func (s *Service) TraceChrome(id int64, w io.Writer) (bool, error) {
	s.traceMu.Lock()
	jt, ok := s.traces[id]
	s.traceMu.Unlock()
	if !ok {
		return false, nil
	}
	return true, jt.tracer.WriteChromeTrace(w)
}

// observeTrace feeds a finished join's trace into the latency, task and
// shuffle histograms plus the telemetry hub (per-tenant latency series
// and SLO, per-(R,S,eps) skew series and anomaly rules), retains the
// trace in the ring, and returns its join id.
func (s *Service) observeTrace(algorithm, tenant, rname, sname string, eps float64, tr *spatialjoin.Tracer, total time.Duration) int64 {
	s.Metrics.JoinLatency.Observe(total.Seconds())
	for _, sp := range tr.Spans() {
		if sp.Name == obs.SpanTask && sp.Done > sp.Start {
			s.Metrics.TaskDuration.Observe(float64(sp.Done-sp.Start) / 1e9)
		}
	}
	sk := tr.Skew()
	if sk.ShuffleBytes > 0 {
		s.Metrics.ShuffleBytes.Observe(float64(sk.ShuffleBytes))
	}

	now := time.Now()
	s.Telem.ObserveJoin(tenant, now, total.Seconds())
	var replBytes int64
	for _, b := range sk.ReplicationBytes {
		replBytes += b
	}
	for _, b := range sk.ReplicationBytesByClass {
		replBytes += b
	}
	s.Telem.ObserveSkew(tenant, telem.JoinKey(rname, sname, eps), now, sk.StragglerRatio, replBytes, sk.ShuffleBytes)

	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.nextJoinID++
	id := s.nextJoinID
	s.traces[id] = &joinTrace{id: id, algorithm: algorithm, tracer: tr}
	s.traceOrder = append(s.traceOrder, id)
	if len(s.traceOrder) > s.cfg.TraceRing {
		delete(s.traces, s.traceOrder[0])
		s.traceOrder = s.traceOrder[1:]
	}
	return id
}

// Join executes one join request end to end: admission, plan cache
// lookup (single-flight build on miss), probe, metric accounting.
func (s *Service) Join(ctx context.Context, req JoinRequest) (*JoinResponse, error) {
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	rd, err := s.Registry.Get(req.R)
	if err != nil {
		return nil, err
	}
	sd, err := s.Registry.Get(req.S)
	if err != nil {
		return nil, err
	}

	opt := spatialjoin.Options{
		Eps:            req.Eps,
		Algorithm:      req.Algorithm,
		Workers:        req.Workers,
		Partitions:     req.Partitions,
		SampleFraction: req.SampleFraction,
		Seed:           req.Seed,
		UseLPT:         req.UseLPT,
		GridRes:        req.GridRes,
	}
	// Sedona's R-tree kernel has no wire description; it always runs
	// in-process, even when the daemon serves a cluster.
	if req.Algorithm != spatialjoin.SedonaLike {
		opt.Engine = s.cfg.Engine
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}

	release, err := s.acquire(ctx, req.Tenant)
	if err != nil {
		return nil, err
	}
	released := false
	defer func() {
		if !released {
			release()
		}
	}()

	// Every join is traced; the tracer is bounded (span cap) and cheap
	// relative to the join itself, and it feeds the task/shuffle
	// histograms and the /v1/joins/{id}/trace endpoint.
	tr := spatialjoin.NewTracer()
	root := tr.Start(0, obs.SpanJoin)
	root.SetStr("algorithm", req.Algorithm.String()).
		SetStr("r", rd.Name).SetStr("s", sd.Name)

	// SedonaLike has no reusable plan: run it one-shot on the pool,
	// bypassing the plan cache.
	if req.Algorithm == spatialjoin.SedonaLike {
		o := opt
		o.Collect = req.Collect
		o.Trace = tr
		o.TraceParent = root.SpanID()
		t0 := time.Now()
		rep, err := spatialjoin.JoinContext(ctx, rd.Tuples, sd.Tuples, o)
		if err != nil {
			return nil, err
		}
		total := time.Since(t0)
		root.End()
		s.Metrics.Probe.Observe(total.Seconds())
		s.Metrics.JoinResults.Add(rep.Results, req.Tenant)
		resp := s.respond(req, rep, rd, sd, false, 0, total)
		resp.JoinID = s.observeTrace(resp.Algorithm, req.Tenant, rd.Name, sd.Name, req.Eps, tr, total)
		s.persistSkew(req, tr)
		return resp, nil
	}

	key := PlanKey{
		R: rd.Name, S: sd.Name, RRev: rd.Rev, SRev: sd.Rev,
		RGen: rd.Gen, SGen: sd.Gen,
		Eps: req.Eps, Algorithm: req.Algorithm,
		Workers: req.Workers, Partitions: req.Partitions,
		SampleFraction: req.SampleFraction, Seed: req.Seed,
		UseLPT: req.UseLPT, GridRes: req.GridRes,
	}

	var buildDur time.Duration
	plan, hit, err := s.cache.GetOrBuild(key, func() (*spatialjoin.PreparedJoin, error) {
		o := opt
		// The building request's tracer captures the construction phases
		// (plan, replicate, shuffle); cache hits skip them by design.
		o.Trace = tr
		o.TraceParent = root.SpanID()
		// Reuse the datasets' cached Bernoulli samples across plans (e.g.
		// ε re-sweeps): the facade draws R with Seed and S with Seed+1.
		if isAdaptive(req.Algorithm) {
			o.PresampledR = rd.sample(o.SampleFraction, o.Seed)
			o.PresampledS = sd.sample(o.SampleFraction, o.Seed+1)
		}
		t0 := time.Now()
		p, err := spatialjoin.Prepare(rd.Tuples, sd.Tuples, o)
		if err != nil {
			return nil, err
		}
		buildDur = time.Since(t0)
		s.Metrics.PlanBuild.Observe(buildDur.Seconds())
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Probe on a goroutine so the request context can time out even
	// mid-join; an abandoned probe finishes in the background and only
	// then releases its slot (the pool stays honest about CPU use).
	type probeResult struct {
		rep   *spatialjoin.Report
		probe time.Duration
		err   error
	}
	ch := make(chan probeResult, 1)
	released = true
	go func() {
		defer release()
		t0 := time.Now()
		// The request context rides into the engine, so a deadline that
		// fires mid-join cancels the in-flight partition work instead of
		// letting it run to completion unobserved.
		rep, err := plan.ExecuteContext(ctx, spatialjoin.ExecOptions{
			Collect:     req.Collect,
			Trace:       tr,
			TraceParent: root.SpanID(),
		})
		probe := time.Since(t0)
		if err == nil {
			s.Metrics.Probe.Observe(probe.Seconds())
			s.Metrics.JoinResults.Add(rep.Results, req.Tenant)
			s.Metrics.ReplicatedServed.Add(plan.Replicated())
			s.Metrics.ObserveCluster(rep.Cluster)
		}
		ch <- probeResult{rep: rep, probe: probe, err: err}
	}()
	var rep *spatialjoin.Report
	var probe time.Duration
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, r.err
		}
		rep, probe = r.rep, r.probe
	case <-ctx.Done():
		s.Metrics.Rejected.Inc("timeout", req.Tenant)
		return nil, ctx.Err()
	}

	root.End()
	resp := s.respond(req, rep, rd, sd, hit, buildDur, probe)
	resp.JoinID = s.observeTrace(resp.Algorithm, req.Tenant, rd.Name, sd.Name, req.Eps, tr, buildDur+probe)
	s.persistSkew(req, tr)
	return resp, nil
}

// persistSkew records the finished join's skew report in the durable
// store as planner history for the (R, S, eps) key. Best-effort: a
// failed append never fails the join that produced the report.
func (s *Service) persistSkew(req JoinRequest, tr *spatialjoin.Tracer) {
	if s.store == nil {
		return
	}
	if err := s.store.AppendSkew(req.R, req.S, req.Eps, tr.Skew()); err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("service: persisting skew report: %v", err)
	}
}

// respond converts a Report into the wire response.
func (s *Service) respond(req JoinRequest, rep *spatialjoin.Report, rd, sd *dataset, hit bool, build, probe time.Duration) *JoinResponse {
	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxCollect {
		limit = s.cfg.MaxCollect
	}
	resp := &JoinResponse{
		Algorithm:   rep.Algorithm.String(),
		Results:     rep.Results,
		Checksum:    fmt.Sprintf("%016x", rep.Checksum),
		Selectivity: rep.Selectivity(len(rd.Tuples), len(sd.Tuples)),
		ReplicatedR: rep.ReplicatedR,
		ReplicatedS: rep.ReplicatedS,
		PlanCache:   "miss",
		BuildMillis: float64(build) / float64(time.Millisecond),
		ProbeMillis: float64(probe) / float64(time.Millisecond),
	}
	if hit {
		resp.PlanCache = "hit"
	}
	if req.Collect {
		n := len(rep.Pairs)
		if n > limit {
			n = limit
			resp.Truncated = true
		}
		resp.Pairs = make([][2]int64, n)
		for i := 0; i < n; i++ {
			resp.Pairs[i] = [2]int64{rep.Pairs[i].RID, rep.Pairs[i].SID}
		}
	}
	return resp
}

func isAdaptive(a spatialjoin.Algorithm) bool {
	switch a {
	case spatialjoin.AdaptiveLPiB, spatialjoin.AdaptiveDIFF, spatialjoin.AdaptiveSimpleDedup:
		return true
	}
	return false
}
