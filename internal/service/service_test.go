package service

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialjoin"
)

func testService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	if _, err := s.Registry.Put("r", spatialjoin.GenerateUniform(2000, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry.Put("s", spatialjoin.GenerateUniform(2000, 2)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegistry(t *testing.T) {
	s := New(Config{})
	if _, err := s.Registry.Put("", spatialjoin.GenerateUniform(10, 1)); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := s.Registry.Put("x", nil); err == nil {
		t.Fatal("empty dataset accepted")
	}
	rev1, err := s.Registry.Put("x", spatialjoin.GenerateUniform(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	rev2, err := s.Registry.Put("x", spatialjoin.GenerateUniform(20, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rev2 <= rev1 {
		t.Fatalf("revision did not advance: %d -> %d", rev1, rev2)
	}
	infos := s.Registry.List()
	if len(infos) != 1 || infos[0].Points != 20 || infos[0].Rev != rev2 {
		t.Fatalf("list = %+v", infos)
	}
	if s.Metrics.Datasets.Value() != 1 || s.Metrics.DatasetPoints.Value() != 20 {
		t.Fatalf("dataset gauges = %d, %d", s.Metrics.Datasets.Value(), s.Metrics.DatasetPoints.Value())
	}
	if !s.Registry.Delete("x") || s.Registry.Delete("x") {
		t.Fatal("delete semantics broken")
	}
	if s.Metrics.DatasetPoints.Value() != 0 {
		t.Fatalf("points gauge after delete = %d", s.Metrics.DatasetPoints.Value())
	}
}

func TestRegistrySampleCache(t *testing.T) {
	s := New(Config{})
	if _, err := s.Registry.Put("x", spatialjoin.GenerateUniform(5000, 1)); err != nil {
		t.Fatal(err)
	}
	d, err := s.Registry.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	a := d.sample(0.1, 42)
	b := d.sample(0.1, 42)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Fatal("sample not cached (backing arrays differ)")
	}
	c := d.sample(0.1, 43)
	if len(c) > 0 && len(a) > 0 && &a[0] == &c[0] {
		t.Fatal("different seeds must not share a sample")
	}
}

func TestPlanCacheSingleFlight(t *testing.T) {
	c := newPlanCache(8, NewMetrics())
	rs := spatialjoin.GenerateUniform(500, 1)
	ss := spatialjoin.GenerateUniform(500, 2)
	key := PlanKey{R: "r", S: "s", Eps: 0.5}
	var builds atomic.Int64
	build := func() (*spatialjoin.PreparedJoin, error) {
		builds.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the race window
		return spatialjoin.Prepare(rs, ss, spatialjoin.Options{Eps: 0.5})
	}
	var wg sync.WaitGroup
	plans := make([]*spatialjoin.PreparedJoin, 16)
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := c.GetOrBuild(key, build)
			if err != nil {
				t.Error(err)
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("plan built %d times, want exactly 1", builds.Load())
	}
	for _, p := range plans {
		if p != plans[0] {
			t.Fatal("concurrent callers received different plans")
		}
	}
	// A later call is a plain cache hit.
	if _, hit, _ := c.GetOrBuild(key, build); !hit {
		t.Fatal("second lookup missed")
	}
	if builds.Load() != 1 {
		t.Fatal("cache hit rebuilt the plan")
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	m := NewMetrics()
	c := newPlanCache(2, m)
	rs := spatialjoin.GenerateUniform(200, 1)
	ss := spatialjoin.GenerateUniform(200, 2)
	mk := func(eps float64) PlanKey { return PlanKey{R: "r", S: "s", Eps: eps} }
	build := func(eps float64) func() (*spatialjoin.PreparedJoin, error) {
		return func() (*spatialjoin.PreparedJoin, error) {
			return spatialjoin.Prepare(rs, ss, spatialjoin.Options{Eps: eps})
		}
	}
	for _, eps := range []float64{0.1, 0.2, 0.3} {
		if _, _, err := c.GetOrBuild(mk(eps), build(eps)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d plans, want 2", c.Len())
	}
	if m.PlanCacheEvictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", m.PlanCacheEvictions.Value())
	}
	// 0.1 was evicted (LRU); 0.2 and 0.3 must still hit.
	if _, hit, _ := c.GetOrBuild(mk(0.2), build(0.2)); !hit {
		t.Fatal("0.2 evicted unexpectedly")
	}
	if _, hit, _ := c.GetOrBuild(mk(0.1), build(0.1)); hit {
		t.Fatal("0.1 survived eviction")
	}
}

func TestPlanCacheErrorNotCached(t *testing.T) {
	c := newPlanCache(2, NewMetrics())
	var calls atomic.Int64
	bad := func() (*spatialjoin.PreparedJoin, error) {
		calls.Add(1)
		return nil, context.DeadlineExceeded
	}
	key := PlanKey{R: "r", S: "s", Eps: 0.5}
	if _, _, err := c.GetOrBuild(key, bad); err == nil {
		t.Fatal("error swallowed")
	}
	if _, _, err := c.GetOrBuild(key, bad); err == nil {
		t.Fatal("error cached as success")
	}
	if calls.Load() != 2 || c.Len() != 0 {
		t.Fatalf("calls = %d, len = %d; errors must not be cached", calls.Load(), c.Len())
	}
}

func TestAdmissionControl(t *testing.T) {
	s := testService(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	ctx := context.Background()

	release1, err := s.acquire(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue.
	waited := make(chan error, 1)
	go func() {
		release2, err := s.acquire(ctx, "")
		if err == nil {
			release2()
		}
		waited <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics.QueueDepth.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// The queue is now full: the next acquire is rejected immediately.
	if _, err := s.acquire(ctx, ""); err != ErrOverloaded {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if s.Metrics.Rejected.Value("queue_full", "") != 1 {
		t.Fatal("queue_full rejection not counted")
	}
	release1()
	if err := <-waited; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
	if s.Metrics.QueueWait.Count() < 2 {
		t.Fatal("queue wait not observed")
	}

	// A waiter whose context expires is released with the ctx error.
	release3, err := s.acquire(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	defer release3()
	short, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if _, err := s.acquire(short, ""); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}

	// Draining rejects instantly.
	s.StartDrain()
	if _, err := s.acquire(ctx, ""); err != ErrDraining {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

func TestServiceJoinCacheSemantics(t *testing.T) {
	s := testService(t, Config{})
	ctx := context.Background()
	req := JoinRequest{R: "r", S: "s", Eps: 0.5}

	first, err := s.Join(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.PlanCache != "miss" {
		t.Fatalf("first join plan_cache = %q, want miss", first.PlanCache)
	}
	second, err := s.Join(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.PlanCache != "hit" {
		t.Fatalf("second join plan_cache = %q, want hit", second.PlanCache)
	}
	if first.Checksum != second.Checksum || first.Results != second.Results {
		t.Fatalf("results diverged across cache hit: (%d, %s) != (%d, %s)",
			first.Results, first.Checksum, second.Results, second.Checksum)
	}
	if second.BuildMillis != 0 {
		t.Fatalf("cache hit reported build time %v", second.BuildMillis)
	}
	if s.Metrics.PlanCacheHits.Value() != 1 || s.Metrics.PlanCacheMisses.Value() != 1 {
		t.Fatalf("hits/misses = %d/%d", s.Metrics.PlanCacheHits.Value(), s.Metrics.PlanCacheMisses.Value())
	}

	// A different ε is a different plan...
	third, err := s.Join(ctx, JoinRequest{R: "r", S: "s", Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if third.PlanCache != "miss" {
		t.Fatal("different eps must build a new plan")
	}
	// ...but replacing a dataset invalidates its plans entirely.
	if _, err := s.Registry.Put("r", spatialjoin.GenerateUniform(100, 9)); err != nil {
		t.Fatal(err)
	}
	s.cache.Invalidate("r")
	if got, _ := s.Join(ctx, req); got.PlanCache != "miss" {
		t.Fatal("stale plan served after dataset replacement")
	}
}

func TestServiceJoinValidation(t *testing.T) {
	s := testService(t, Config{})
	ctx := context.Background()
	if _, err := s.Join(ctx, JoinRequest{R: "nope", S: "s", Eps: 0.5}); err == nil ||
		!strings.Contains(err.Error(), "unknown dataset") {
		t.Fatalf("unknown dataset err = %v", err)
	}
	if _, err := s.Join(ctx, JoinRequest{R: "r", S: "s", Eps: -1}); err == nil ||
		!strings.Contains(err.Error(), "Eps must be positive") {
		t.Fatalf("bad eps err = %v", err)
	}
}

func TestMetricsRender(t *testing.T) {
	s := testService(t, Config{})
	if _, err := s.Join(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.5}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	s.Metrics.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE sjoind_plan_cache_misses_total counter",
		"sjoind_plan_cache_misses_total 1",
		"# TYPE sjoind_probe_seconds histogram",
		"sjoind_probe_seconds_count 1",
		"sjoind_probe_seconds_bucket{le=\"+Inf\"} 1",
		"# TYPE sjoind_requests_in_flight gauge",
		"sjoind_datasets 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	snap := s.Metrics.Snapshot()
	if snap["sjoind_plan_cache_misses_total"] != int64(1) {
		t.Fatalf("snapshot misses = %v", snap["sjoind_plan_cache_misses_total"])
	}
}

// TestServiceConcurrentJoins hammers one service from many goroutines
// mixing keys; under -race this is the serving layer's concurrency test.
func TestServiceConcurrentJoins(t *testing.T) {
	s := testService(t, Config{MaxConcurrent: 4, MaxQueue: 256, PlanCacheSize: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	sums := make([]string, 24)
	for i := range sums {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps := 0.4
			if i%3 == 0 {
				eps = 0.6
			}
			resp, err := s.Join(ctx, JoinRequest{R: "r", S: "s", Eps: eps})
			if err != nil {
				t.Error(err)
				return
			}
			sums[i] = resp.Checksum
		}(i)
	}
	wg.Wait()
	for i := range sums {
		for j := range sums {
			if i%3 == j%3 && sums[i] != sums[j] {
				t.Fatalf("same query diverged: %s != %s", sums[i], sums[j])
			}
		}
	}
	if s.Metrics.PlanCacheMisses.Value() != 2 {
		t.Fatalf("misses = %d, want 2 (one per eps)", s.Metrics.PlanCacheMisses.Value())
	}
}
