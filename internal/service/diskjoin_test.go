package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spatialjoin"
)

// TestDiskJoinMatchesInMemory is the disk engine's correctness anchor:
// joining from partitioned columnar files must produce the same count
// and checksum as the in-memory engine over the same datasets.
func TestDiskJoinMatchesInMemory(t *testing.T) {
	s := New(Config{PlanCacheSize: 8})
	if _, err := s.Registry.Put("r", spatialjoin.GenerateGaussian(1500, 11)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry.Put("s", spatialjoin.GenerateUniform(1500, 12)); err != nil {
		t.Fatal(err)
	}

	mem, err := s.Join(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := s.DiskJoin(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if disk.Algorithm != "disk" {
		t.Fatalf("algorithm = %q", disk.Algorithm)
	}
	if disk.Results != mem.Results || disk.Checksum != mem.Checksum {
		t.Fatalf("disk join = (%d, %s), in-memory = (%d, %s)",
			disk.Results, disk.Checksum, mem.Results, mem.Checksum)
	}
	if disk.PlanCache != "miss" {
		t.Fatalf("first disk join plan_cache = %q, want miss", disk.PlanCache)
	}

	// The second run reuses both partitioned files through the reader
	// cache — the disk engine's plan-cache hit.
	disk2, err := s.DiskJoin(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if disk2.PlanCache != "hit" {
		t.Fatalf("second disk join plan_cache = %q, want hit", disk2.PlanCache)
	}
	if disk2.Checksum != disk.Checksum {
		t.Fatal("cached disk join changed the checksum")
	}

	// A smaller eps with the same power-of-two ceiling (0.26 and 0.3
	// both round up to 0.5) shares the partitioned file and still
	// agrees with the in-memory engine.
	mem3, err := s.Join(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.26})
	if err != nil {
		t.Fatal(err)
	}
	disk3, err := s.DiskJoin(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.26})
	if err != nil {
		t.Fatal(err)
	}
	if disk3.Results != mem3.Results || disk3.Checksum != mem3.Checksum {
		t.Fatalf("re-swept disk join = (%d, %s), in-memory = (%d, %s)",
			disk3.Results, disk3.Checksum, mem3.Results, mem3.Checksum)
	}
	if disk3.PlanCache != "hit" {
		t.Fatalf("eps under the file ceiling rebuilt the file: plan_cache = %q", disk3.PlanCache)
	}
}

func TestDiskJoinCollectAndErrors(t *testing.T) {
	s := New(Config{PlanCacheSize: 8})
	if _, err := s.Registry.Put("r", spatialjoin.GenerateUniform(500, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry.Put("s", spatialjoin.GenerateUniform(500, 4)); err != nil {
		t.Fatal(err)
	}

	mem, err := s.Join(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.2, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := s.DiskJoin(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.2, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(disk.Pairs) != len(mem.Pairs) {
		t.Fatalf("disk collected %d pairs, in-memory %d", len(disk.Pairs), len(mem.Pairs))
	}

	if _, err := s.DiskJoin(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0}); err == nil {
		t.Error("eps=0 disk join accepted")
	}
	if _, err := s.DiskJoin(context.Background(), JoinRequest{R: "nope", S: "s", Eps: 0.2}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestDiskJoinHTTP exercises the "disk" algorithm through the HTTP
// surface: same wire format, same checksum as the in-memory engines.
func TestDiskJoinHTTP(t *testing.T) {
	s := New(Config{PlanCacheSize: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, d := range []string{"name=r&generate=gaussian&n=800&seed=5", "name=s&generate=uniform&n=800&seed=6"} {
		resp, err := http.Post(ts.URL+"/v1/datasets?"+d, "", nil)
		if err != nil || resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload: %v / %v", err, resp.Status)
		}
		resp.Body.Close()
	}

	join := func(body string) map[string]any {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/join", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		json.NewDecoder(resp.Body).Decode(&m)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("join status %d: %v", resp.StatusCode, m)
		}
		return m
	}
	mem := join(`{"r":"r","s":"s","eps":0.25,"algorithm":"lpib"}`)
	disk := join(`{"r":"r","s":"s","eps":0.25,"algorithm":"disk"}`)
	if disk["algorithm"] != "disk" {
		t.Fatalf("algorithm = %v", disk["algorithm"])
	}
	if disk["checksum"] != mem["checksum"] || disk["results"] != mem["results"] {
		t.Fatalf("disk = (%v, %v), lpib = (%v, %v)",
			disk["checksum"], disk["results"], mem["checksum"], mem["results"])
	}
}
