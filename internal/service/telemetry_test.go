package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spatialjoin"
	"spatialjoin/internal/telem"
)

// TestTelemetryEndpoints drives joins through the HTTP handler and
// checks the three telemetry endpoints surface series, SLOs, and
// anomaly events.
func TestTelemetryEndpoints(t *testing.T) {
	// StragglerThreshold 1.0 makes every join with tasks an "anomaly",
	// so the event assertion is deterministic.
	s := testService(t, Config{StragglerThreshold: 1.0})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		req, _ := http.NewRequest("POST", srv.URL+"/v1/join/count",
			strings.NewReader(`{"r": "r", "s": "s", "eps": 0.5, "algorithm": "lpib"}`))
		req.Header.Set("X-Tenant", "acme")
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("join status = %d", res.StatusCode)
		}
	}
	// One failing join for the error budget.
	res, err := http.Post(srv.URL+"/v1/join/count", "application/json",
		strings.NewReader(`{"r": "nope", "s": "s", "eps": 0.5, "algorithm": "lpib"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("bad join status = %d", res.StatusCode)
	}

	var dumps []telem.SeriesDump
	getJSONBody(t, srv.URL+"/v1/telemetry/series?name="+telem.SeriesJoinLatency+"&key=acme", &dumps)
	if len(dumps) == 0 {
		t.Fatal("no join latency series for tenant acme")
	}
	var total int64
	for _, d := range dumps {
		if d.Res == "1s" {
			for _, b := range d.Buckets {
				total += b.Count
			}
		}
	}
	if total != 3 {
		t.Fatalf("latency 1s observations = %d, want 3", total)
	}
	getJSONBody(t, srv.URL+"/v1/telemetry/series?window=1h&res=1s", &dumps)
	if len(dumps) == 0 {
		t.Fatal("windowed series empty")
	}
	for _, d := range dumps {
		if d.Res != "1s" {
			t.Fatalf("res filter leaked %q", d.Res)
		}
	}

	var slos []telem.SLOStatus
	getJSONBody(t, srv.URL+"/v1/telemetry/slo", &slos)
	byTenant := map[string]telem.SLOStatus{}
	for _, st := range slos {
		byTenant[st.Tenant] = st
	}
	acme, ok := byTenant["acme"]
	if !ok || acme.Total != 3 || acme.Errors != 0 {
		t.Fatalf("acme SLO = %+v (rows %v)", acme, slos)
	}
	if acme.P99Millis <= 0 {
		t.Fatalf("acme p99 = %g, want > 0", acme.P99Millis)
	}
	anon, ok := byTenant[""]
	if !ok || anon.Errors != 1 {
		t.Fatalf("anonymous SLO = %+v", anon)
	}

	var evs []telem.Event
	getJSONBody(t, srv.URL+"/v1/telemetry/events", &evs)
	var spikes int
	for _, e := range evs {
		if e.Kind == telem.EventStragglerSpike {
			spikes++
		}
	}
	if spikes == 0 {
		t.Fatalf("no straggler events at threshold 1.0: %+v", evs)
	}

	// Bad query params 400.
	for _, path := range []string{
		"/v1/telemetry/series?window=bogus",
		"/v1/telemetry/events?limit=0",
	} {
		res, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s status = %d, want 400", path, res.StatusCode)
		}
	}
}

// TestTelemetryPlannerWindow checks /v1/planner/history?window= serves
// rollup-backed skew series even on an in-memory daemon.
func TestTelemetryPlannerWindow(t *testing.T) {
	s := testService(t, Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	res, err := http.Post(srv.URL+"/v1/join/count", "application/json",
		strings.NewReader(`{"r": "r", "s": "s", "eps": 0.5, "algorithm": "lpib"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()

	// The parameterless form still 400s without a data dir.
	res, err = http.Get(srv.URL + "/v1/planner/history")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("persisted history status = %d, want 400 (in-memory)", res.StatusCode)
	}

	var win map[string][]telem.SeriesDump
	getJSONBody(t, srv.URL+"/v1/planner/history?window=10m", &win)
	if len(win[telem.SeriesStragglerRatio]) == 0 {
		t.Fatalf("windowed history missing straggler series: %+v", win)
	}
	key := telem.JoinKey("r", "s", 0.5)
	if got := win[telem.SeriesStragglerRatio][0].Key; got != key {
		t.Fatalf("series key = %q, want %q", got, key)
	}
}

// TestTelemetryRuntimeMetrics checks the Go runtime satellite metrics
// appear in both expositions.
func TestTelemetryRuntimeMetrics(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	for _, want := range []string{"go_goroutines ", "go_memstats_heap_alloc_bytes ", "go_gc_pause_seconds_total ", "go_gomaxprocs "} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	var vars map[string]any
	getJSONBody(t, srv.URL+"/debug/vars", &vars)
	if _, ok := vars["go_goroutines"]; !ok {
		t.Fatal("/debug/vars missing go_goroutines")
	}
}

// TestTelemetryTraceRingConfigurable checks Config.TraceRing overrides
// the default retention depth.
func TestTelemetryTraceRingConfigurable(t *testing.T) {
	s := New(Config{TraceRing: 2})
	defer s.Close()
	var ids []int64
	for i := 0; i < 5; i++ {
		tr := spatialjoin.NewTracer()
		sp := tr.Start(0, "join")
		sp.End()
		ids = append(ids, s.observeTrace("lpib", "", "r", "s", 0.5, tr, time.Millisecond))
	}
	for _, id := range ids[:3] {
		if _, ok := s.Trace(id); ok {
			t.Fatalf("trace %d survived past ring of 2", id)
		}
	}
	for _, id := range ids[3:] {
		if _, ok := s.Trace(id); !ok {
			t.Fatalf("trace %d missing from ring of 2", id)
		}
	}
}

// TestTelemetrySamplerGauges checks the periodic collector records
// service gauges into the rollup store.
func TestTelemetrySamplerGauges(t *testing.T) {
	s := testService(t, Config{TelemSampleEvery: 5 * time.Millisecond})
	defer s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if d := s.Telem.Store.Dump("goroutines", "", "1s", 0); len(d) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never recorded goroutines gauge")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d := s.Telem.Store.Dump("datasets", "", "1s", 0); len(d) == 0 || d[0].Buckets[len(d[0].Buckets)-1].Max != 2 {
		t.Fatalf("datasets gauge = %+v, want max 2", d)
	}
}

func getJSONBody(t *testing.T, url string, out any) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("GET %s = %d: %s", url, res.StatusCode, body)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		t.Fatalf("GET %s decode: %v", url, err)
	}
}
