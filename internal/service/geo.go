package service

import (
	"cmp"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"time"

	"spatialjoin"
	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/textio"
	"spatialjoin/internal/twolayer"
)

// The geo layer serves non-point joins: geometry datasets (rectangles,
// polylines, simple polygons) uploaded in the WKT-flavoured text format
// and joined with the two-layer engine under the service's existing
// admission pool, tracing and metrics. Geo datasets live in memory
// only — they are not mirrored into the durable store — and geo joins
// run one-shot (Prepare + Execute per request): the two-layer map phase
// is cheap relative to the refinement work, so a plan cache buys little
// until ε re-sweep workloads appear.

// geoDataset is one registered geometry set.
type geoDataset struct {
	Name    string
	Rev     int64
	Objects []extgeom.Object
	Bounds  geom.Rect
}

// GeoDatasetInfo describes a registered geometry dataset to clients.
type GeoDatasetInfo struct {
	Name    string  `json:"name"`
	Objects int     `json:"objects"`
	Rev     int64   `json:"rev"`
	MinX    float64 `json:"min_x"`
	MinY    float64 `json:"min_y"`
	MaxX    float64 `json:"max_x"`
	MaxY    float64 `json:"max_y"`
}

// geoRegistry is the in-memory geometry dataset store.
type geoRegistry struct {
	mu      sync.RWMutex
	m       map[string]*geoDataset
	nextRev int64
}

func (r *geoRegistry) put(name string, objs []extgeom.Object) (int64, error) {
	if name == "" {
		return 0, fmt.Errorf("service: dataset name must not be empty")
	}
	if len(objs) == 0 {
		return 0, fmt.Errorf("service: geo dataset %q has no objects", name)
	}
	b := geom.EmptyRect()
	for i := range objs {
		b = b.Union(objs[i].Bounds())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextRev++
	r.m[name] = &geoDataset{Name: name, Rev: r.nextRev, Objects: objs, Bounds: b}
	return r.nextRev, nil
}

func (r *geoRegistry) get(name string) (*geoDataset, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.m[name]
	if !ok {
		return nil, fmt.Errorf("service: unknown dataset %q", name)
	}
	return d, nil
}

func (r *geoRegistry) delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.m[name]
	delete(r.m, name)
	return ok
}

func (r *geoRegistry) list() []GeoDatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GeoDatasetInfo, 0, len(r.m))
	for _, d := range r.m {
		out = append(out, GeoDatasetInfo{
			Name: d.Name, Objects: len(d.Objects), Rev: d.Rev,
			MinX: d.Bounds.MinX, MinY: d.Bounds.MinY,
			MaxX: d.Bounds.MaxX, MaxY: d.Bounds.MaxY,
		})
	}
	slices.SortFunc(out, func(a, b GeoDatasetInfo) int { return cmp.Compare(a.Name, b.Name) })
	return out
}

// GeoJoinRequest is one non-point join against registered geo datasets.
type GeoJoinRequest struct {
	R, S      string // geo dataset names (both required)
	Tenant    string
	Predicate string  // "intersects", "contains", "within"
	Eps       float64 // WithinDistance threshold

	Tiles      int // force a Tiles×Tiles grid; 0 lets the cost model pick
	Workers    int
	Partitions int

	Collect bool
	Limit   int

	Timeout time.Duration
}

// GeoJoinResponse reports one non-point join execution.
type GeoJoinResponse struct {
	Predicate string `json:"predicate"`
	Results   int64  `json:"results"`

	TilesX int `json:"tiles_x"`
	TilesY int `json:"tiles_y"`

	// Candidates / Emitted / FallbackTiles come from the kernel's filter
	// and refine counters; they stay zero on cluster engines, where the
	// kernels run inside the worker processes.
	Candidates    int64 `json:"candidates"`
	Emitted       int64 `json:"emitted"`
	FallbackTiles int64 `json:"fallback_tiles"`

	ReplicatedR int64 `json:"replicated_r"`
	ReplicatedS int64 `json:"replicated_s"`
	// ReplicationBytesByClass breaks the shipped replica payload bytes
	// down by tile class: "a" is the native copies, "b"/"c"/"d" the
	// extent-replication overhead of the two-layer scheme.
	ReplicationBytesByClass map[string]int64 `json:"replication_bytes_by_class"`

	BuildMillis float64 `json:"build_ms"`
	ProbeMillis float64 `json:"probe_ms"`

	Pairs     [][2]int64 `json:"pairs,omitempty"`
	Truncated bool       `json:"truncated,omitempty"`

	JoinID int64 `json:"join_id"`
}

// GeoJoin executes one non-point join end to end: admission, two-layer
// prepare + execute on the configured engine, metric accounting, trace
// retention.
func (s *Service) GeoJoin(ctx context.Context, req GeoJoinRequest) (*GeoJoinResponse, error) {
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	pred, err := extgeom.ParsePredicate(req.Predicate)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	rd, err := s.geo.get(req.R)
	if err != nil {
		return nil, err
	}
	sd, err := s.geo.get(req.S)
	if err != nil {
		return nil, err
	}

	release, err := s.acquire(ctx, req.Tenant)
	if err != nil {
		return nil, err
	}
	defer release()

	tr := spatialjoin.NewTracer()
	root := tr.Start(0, obs.SpanJoin)
	root.SetStr("algorithm", "twolayer").SetStr("predicate", pred.String()).
		SetStr("r", rd.Name).SetStr("s", sd.Name)

	cfg := twolayer.Config{
		R: rd.Objects, S: sd.Objects,
		Pred: pred, Eps: req.Eps,
		Tiles: req.Tiles, Workers: req.Workers, Partitions: req.Partitions,
		Collect:     req.Collect,
		Engine:      s.cfg.Engine,
		Tracer:      tr,
		TraceParent: root.SpanID(),
	}
	t0 := time.Now()
	plan, err := twolayer.Prepare(cfg)
	if err != nil {
		return nil, err
	}
	build := time.Since(t0)
	s.Metrics.PlanBuild.Observe(build.Seconds())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	res, err := plan.Execute(ctx, twolayer.ExecOptions{Collect: req.Collect})
	if err != nil {
		return nil, err
	}
	probe := time.Since(t0)
	root.End()
	s.Metrics.Probe.Observe(probe.Seconds())
	s.Metrics.JoinResults.Add(res.Results, req.Tenant)

	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxCollect {
		limit = s.cfg.MaxCollect
	}
	st := &plan.Kernel().Stats
	resp := &GeoJoinResponse{
		Predicate:               pred.String(),
		Results:                 res.Results,
		TilesX:                  plan.Grid.NX,
		TilesY:                  plan.Grid.NY,
		Candidates:              st.Candidates.Load(),
		Emitted:                 st.Emitted.Load(),
		FallbackTiles:           st.FallbackTiles.Load(),
		ReplicatedR:             res.ReplicatedR,
		ReplicatedS:             res.ReplicatedS,
		ReplicationBytesByClass: plan.ClassBytes(),
		BuildMillis:             float64(build) / float64(time.Millisecond),
		ProbeMillis:             float64(probe) / float64(time.Millisecond),
	}
	if req.Collect {
		n := len(res.Pairs)
		if n > limit {
			n = limit
			resp.Truncated = true
		}
		resp.Pairs = make([][2]int64, n)
		for i := 0; i < n; i++ {
			resp.Pairs[i] = [2]int64{res.Pairs[i].RID, res.Pairs[i].SID}
		}
	}
	resp.JoinID = s.observeTrace("twolayer-"+pred.String(), req.Tenant, rd.Name, sd.Name, req.Eps, tr, build+probe)
	return resp, nil
}

// geoJoinRequestWire is the JSON body of POST /v1/geojoin.
type geoJoinRequestWire struct {
	R             string  `json:"r"`
	S             string  `json:"s"`
	Predicate     string  `json:"predicate"`
	Eps           float64 `json:"eps,omitempty"`
	Tiles         int     `json:"tiles,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	Partitions    int     `json:"partitions,omitempty"`
	Collect       bool    `json:"collect,omitempty"`
	Limit         int     `json:"limit,omitempty"`
	TimeoutMillis int64   `json:"timeout_ms,omitempty"`
}

func (s *Service) handlePutGeoDataset(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.URL.Query().Get("name")
	if name == "" {
		return http.StatusBadRequest, fmt.Errorf("service: query parameter 'name' is required")
	}
	objs, err := textio.ReadGeoms(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes), 0)
	if err != nil {
		return http.StatusBadRequest, err
	}
	rev, err := s.geo.put(name, objs)
	if err != nil {
		return http.StatusBadRequest, err
	}
	d, _ := s.geo.get(name)
	return writeJSON(w, http.StatusCreated, GeoDatasetInfo{
		Name: name, Objects: len(objs), Rev: rev,
		MinX: d.Bounds.MinX, MinY: d.Bounds.MinY,
		MaxX: d.Bounds.MaxX, MaxY: d.Bounds.MaxY,
	})
}

func (s *Service) handleListGeoDatasets(w http.ResponseWriter, r *http.Request) (int, error) {
	return writeJSON(w, http.StatusOK, s.geo.list())
}

func (s *Service) handleDeleteGeoDataset(w http.ResponseWriter, r *http.Request) (int, error) {
	name := r.PathValue("name")
	if !s.geo.delete(name) {
		return http.StatusNotFound, fmt.Errorf("service: unknown dataset %q", name)
	}
	return writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *Service) handleGeoJoin(w http.ResponseWriter, r *http.Request, allowCollect bool) (int, error) {
	var wire geoJoinRequestWire
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wire); err != nil {
		return http.StatusBadRequest, fmt.Errorf("service: bad geojoin request: %w", err)
	}
	req := GeoJoinRequest{
		R: wire.R, S: wire.S,
		Tenant:    r.Header.Get("X-Tenant"),
		Predicate: wire.Predicate, Eps: wire.Eps,
		Tiles: wire.Tiles, Workers: wire.Workers, Partitions: wire.Partitions,
		Collect: wire.Collect && allowCollect, Limit: wire.Limit,
		Timeout: time.Duration(wire.TimeoutMillis) * time.Millisecond,
	}
	resp, err := s.GeoJoin(r.Context(), req)
	if err != nil {
		s.Telem.ObserveJoinError(req.Tenant, time.Now())
		return joinErrorCode(err), err
	}
	return writeJSON(w, http.StatusOK, resp)
}

// registerGeoRoutes adds the geo layer's endpoints to the service mux.
func (s *Service) registerGeoRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/geodatasets", s.instrument("geodatasets_put", s.handlePutGeoDataset))
	mux.HandleFunc("GET /v1/geodatasets", s.instrument("geodatasets_list", s.handleListGeoDatasets))
	mux.HandleFunc("DELETE /v1/geodatasets/{name}", s.instrument("geodatasets_delete", s.handleDeleteGeoDataset))
	mux.HandleFunc("POST /v1/geojoin", s.instrument("geojoin", func(w http.ResponseWriter, r *http.Request) (int, error) {
		return s.handleGeoJoin(w, r, true)
	}))
	mux.HandleFunc("POST /v1/geojoin/count", s.instrument("geojoin_count", func(w http.ResponseWriter, r *http.Request) (int, error) {
		return s.handleGeoJoin(w, r, false)
	}))
}
