package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/textio"
)

// geoTestObjects builds a mixed rect/polyline/polygon set serialisable
// through the WKT-ish text format.
func geoTestObjects(seed int64, n int, idBase int64) []extgeom.Object {
	rng := rand.New(rand.NewSource(seed))
	out := make([]extgeom.Object, n)
	for i := range out {
		cx, cy := rng.Float64()*100, rng.Float64()*100
		r := 0.5 + 2*rng.Float64()
		id := idBase + int64(i)
		switch rng.Intn(3) {
		case 0:
			out[i] = extgeom.NewPolygon(id, []geom.Point{
				{X: cx - r, Y: cy - r}, {X: cx + r, Y: cy - r},
				{X: cx + r, Y: cy + r}, {X: cx - r, Y: cy + r},
			})
		case 1:
			out[i] = extgeom.NewPolyline(id, []geom.Point{
				{X: cx - r, Y: cy}, {X: cx, Y: cy + r}, {X: cx + r, Y: cy - r},
			})
		default:
			nv := 3 + rng.Intn(4)
			angles := make([]float64, nv)
			for j := range angles {
				angles[j] = rng.Float64() * 2 * math.Pi
			}
			slices.Sort(angles)
			verts := make([]geom.Point, nv)
			for j, a := range angles {
				verts[j] = geom.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
			}
			out[i] = extgeom.NewPolygon(id, verts)
		}
	}
	return out
}

func geoBruteCount(rs, ss []extgeom.Object, pred extgeom.Predicate, eps float64) int64 {
	var n int64
	for i := range rs {
		for j := range ss {
			if extgeom.Eval(pred, &rs[i], &ss[j], eps) {
				n++
			}
		}
	}
	return n
}

func uploadGeo(t *testing.T, srv *httptest.Server, name string, objs []extgeom.Object) {
	t.Helper()
	var body strings.Builder
	if err := textio.WriteGeoms(&body, objs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/geodatasets?name="+name, "text/plain", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: status %d", name, resp.StatusCode)
	}
	var info GeoDatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Objects != len(objs) {
		t.Fatalf("upload %s: %d objects registered, want %d", name, info.Objects, len(objs))
	}
}

func postGeoJoin(t *testing.T, srv *httptest.Server, path string, body string) (*GeoJoinResponse, int) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out GeoJoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

// TestHTTPGeoJoin drives the full geo path over HTTP: WKT-ish upload,
// joins under every predicate checked against a brute-force count,
// pair collection, the count endpoint, trace retention, and the
// delete / error paths.
func TestHTTPGeoJoin(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	rs := geoTestObjects(1, 250, 0)
	ss := geoTestObjects(2, 250, 100_000)
	uploadGeo(t, srv, "geor", rs)
	uploadGeo(t, srv, "geos", ss)

	for _, tc := range []struct {
		pred extgeom.Predicate
		body string
	}{
		{extgeom.Intersects, `{"r":"geor","s":"geos","predicate":"intersects","collect":true}`},
		{extgeom.Contains, `{"r":"geor","s":"geos","predicate":"contains","collect":true}`},
		{extgeom.WithinDistance, `{"r":"geor","s":"geos","predicate":"within","eps":1.5,"collect":true}`},
	} {
		want := geoBruteCount(rs, ss, tc.pred, 1.5)
		out, code := postGeoJoin(t, srv, "/v1/geojoin", tc.body)
		if code != http.StatusOK {
			t.Fatalf("%v: status %d", tc.pred, code)
		}
		if out.Results != want {
			t.Errorf("%v: %d results, brute force says %d", tc.pred, out.Results, want)
		}
		if !out.Truncated && int64(len(out.Pairs)) != want {
			t.Errorf("%v: %d pairs collected, want %d", tc.pred, len(out.Pairs), want)
		}
		if out.TilesX < 1 || out.TilesY < 1 {
			t.Errorf("%v: degenerate grid %dx%d", tc.pred, out.TilesX, out.TilesY)
		}
		if out.ReplicationBytesByClass["a"] <= 0 {
			t.Errorf("%v: no class-A replica bytes reported: %v", tc.pred, out.ReplicationBytesByClass)
		}
		if out.Emitted != want {
			t.Errorf("%v: kernel emitted %d, want %d", tc.pred, out.Emitted, want)
		}
		// The join's trace must be retained and carry spans.
		tr, err := http.Get(srv.URL + fmt.Sprintf("/v1/joins/%d/trace", out.JoinID))
		if err != nil {
			t.Fatal(err)
		}
		var trace JoinTraceResponse
		if err := json.NewDecoder(tr.Body).Decode(&trace); err != nil {
			t.Fatal(err)
		}
		tr.Body.Close()
		if trace.Spans == 0 {
			t.Errorf("%v: retained trace has no spans", tc.pred)
		}
	}

	// The count endpoint never materialises pairs even when asked to.
	out, code := postGeoJoin(t, srv, "/v1/geojoin/count",
		`{"r":"geor","s":"geos","predicate":"intersects","collect":true}`)
	if code != http.StatusOK {
		t.Fatalf("count: status %d", code)
	}
	if len(out.Pairs) != 0 {
		t.Fatalf("count endpoint returned %d pairs", len(out.Pairs))
	}
	if out.Results == 0 {
		t.Fatal("count endpoint returned zero results")
	}

	// Listing shows both datasets sorted by name.
	lr, err := http.Get(srv.URL + "/v1/geodatasets")
	if err != nil {
		t.Fatal(err)
	}
	var infos []GeoDatasetInfo
	if err := json.NewDecoder(lr.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	lr.Body.Close()
	if len(infos) != 2 || infos[0].Name != "geor" || infos[1].Name != "geos" {
		t.Fatalf("list = %+v", infos)
	}

	// Error paths.
	if _, code := postGeoJoin(t, srv, "/v1/geojoin", `{"r":"geor","s":"nope","predicate":"intersects"}`); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d", code)
	}
	if _, code := postGeoJoin(t, srv, "/v1/geojoin", `{"r":"geor","s":"geos","predicate":"overlaps"}`); code != http.StatusBadRequest {
		t.Fatalf("bad predicate: status %d", code)
	}
	if _, code := postGeoJoin(t, srv, "/v1/geojoin", `{"r":"geor","s":"geos","predicate":"within"}`); code != http.StatusBadRequest {
		t.Fatalf("within without eps: status %d", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/geodatasets/geor", nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dr.StatusCode)
	}
	if _, code := postGeoJoin(t, srv, "/v1/geojoin", `{"r":"geor","s":"geos","predicate":"intersects"}`); code != http.StatusNotFound {
		t.Fatalf("join after delete: status %d", code)
	}
}

// TestGeoJoinLimit verifies pair truncation against MaxCollect and the
// per-request limit.
func TestGeoJoinLimit(t *testing.T) {
	s := New(Config{MaxCollect: 10})
	if _, err := s.geo.put("r", geoTestObjects(3, 150, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.geo.put("s", geoTestObjects(4, 150, 50_000)); err != nil {
		t.Fatal(err)
	}
	out, err := s.GeoJoin(t.Context(), GeoJoinRequest{
		R: "r", S: "s", Predicate: "intersects", Collect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Results <= 10 {
		t.Fatalf("test data too sparse: %d results", out.Results)
	}
	if len(out.Pairs) != 10 || !out.Truncated {
		t.Fatalf("pairs=%d truncated=%v, want capped at 10", len(out.Pairs), out.Truncated)
	}
	out, err = s.GeoJoin(t.Context(), GeoJoinRequest{
		R: "r", S: "s", Predicate: "intersects", Collect: true, Limit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Pairs) != 3 || !out.Truncated {
		t.Fatalf("pairs=%d truncated=%v, want capped at 3", len(out.Pairs), out.Truncated)
	}
}
