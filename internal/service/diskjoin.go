// The disk-join engine: joins served from grid-partitioned columnar
// files via dstore.JoinFiles instead of in-memory prepared plans —
// requested with algorithm "disk". Memory use is O(largest partition)
// rather than O(dataset), so it is the engine of choice for datasets
// that dwarf the plan cache, at the cost of no reusable in-memory
// plan. Partitioned files are built on first use per (dataset revision,
// ε ceiling, grid) and reused across requests through a small reader
// LRU; a threshold re-sweep at any eps at or below the file's ceiling
// hits the same file.

package service

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"spatialjoin"
	"spatialjoin/internal/dstore"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// diskReaderCacheSize bounds the open partitioned-file readers.
const diskReaderCacheSize = 8

// diskCache is an LRU of open ColReaders over partitioned files the
// disk engine built. Evicted entries close their mmap and delete the
// backing file (it is a derived artifact, rebuilt on demand).
type diskCache struct {
	mu    sync.Mutex
	cap   int
	elems map[string]*dstore.ColReader
	order []string // LRU order, oldest first
}

func (c *diskCache) get(path string) *dstore.ColReader {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.elems[path]
	if !ok {
		return nil
	}
	c.touch(path)
	return r
}

func (c *diskCache) touch(path string) {
	for i, p := range c.order {
		if p == path {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), path)
			return
		}
	}
	c.order = append(c.order, path)
}

func (c *diskCache) put(path string, r *dstore.ColReader) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.elems == nil {
		c.elems = map[string]*dstore.ColReader{}
	}
	if old, ok := c.elems[path]; ok {
		old.Close()
	}
	c.elems[path] = r
	c.touch(path)
	for len(c.order) > c.cap {
		victim := c.order[0]
		c.order = c.order[1:]
		if v, ok := c.elems[victim]; ok {
			v.Close()
			delete(c.elems, victim)
			os.Remove(victim)
		}
	}
}

// epsCeil rounds eps up to a power of two, so nearby thresholds share
// one partitioned file (JoinFiles stays correct for any eps at or
// below the file's partitioning threshold).
func epsCeil(eps float64) float64 {
	return math.Pow(2, math.Ceil(math.Log2(eps)))
}

// diskDir is where the engine materialises partitioned files: under
// the data dir when the daemon is durable, the system temp dir when
// not.
func (s *Service) diskDir() string {
	if s.cfg.DataDir != "" {
		return filepath.Join(s.cfg.DataDir, "diskjoin")
	}
	return filepath.Join(os.TempDir(), "sjoin-diskjoin")
}

// diskPath names one dataset's partitioned file for a join grid. The
// grid is shared by both sides of a join: eps ceiling, resolution, and
// the union bounds (bounds are part of the grid geometry, so the key
// hashes them too). Revision and generation version the content.
func (s *Service) diskPath(d *dataset, epsC, res float64, bounds spatialjoin.Rect) string {
	name := fmt.Sprintf("%s-r%d-g%d-e%x-s%x-%x-%x-%x-%x.col",
		sanitize(d.Name), d.Rev, d.Gen,
		math.Float64bits(epsC), math.Float64bits(res),
		math.Float64bits(bounds.MinX), math.Float64bits(bounds.MinY),
		math.Float64bits(bounds.MaxX), math.Float64bits(bounds.MaxY))
	return filepath.Join(s.diskDir(), name)
}

// sanitize keeps dataset names filesystem-safe.
func sanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, fmt.Sprintf("%%%02x", c)...)
		}
	}
	return string(out)
}

// openPartitioned returns a reader over d's partitioned file for the
// join grid, building the file on first use. The second return reports
// whether the reader came from the cache (the disk engine's notion of
// a plan-cache hit).
func (s *Service) openPartitioned(d *dataset, epsC, res float64, bounds spatialjoin.Rect) (*dstore.ColReader, bool, time.Duration, error) {
	path := s.diskPath(d, epsC, res, bounds)
	if r := s.diskReaders.get(path); r != nil {
		return r, true, 0, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, false, 0, err
	}
	t0 := time.Now()
	if err := dstore.WritePartitioned(path, d.Tuples, epsC, res, bounds); err != nil {
		return nil, false, 0, err
	}
	r, err := dstore.OpenColFile(path)
	if err != nil {
		return nil, false, 0, err
	}
	build := time.Since(t0)
	s.diskReaders.put(path, r)
	return r, false, build, nil
}

// DiskJoin executes one join from partitioned columnar files. It obeys
// the same admission control (global pool and per-tenant buckets) as
// in-memory joins.
func (s *Service) DiskJoin(ctx context.Context, req JoinRequest) (*JoinResponse, error) {
	if req.Eps <= 0 {
		return nil, fmt.Errorf("service: disk join requires eps > 0")
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	rd, err := s.Registry.Get(req.R)
	if err != nil {
		return nil, err
	}
	sd, err := s.Registry.Get(req.S)
	if err != nil {
		return nil, err
	}

	release, err := s.acquire(ctx, req.Tenant)
	if err != nil {
		return nil, err
	}
	defer release()

	tr := spatialjoin.NewTracer()
	root := tr.Start(0, obs.SpanJoin)
	root.SetStr("algorithm", "disk").SetStr("r", rd.Name).SetStr("s", sd.Name)

	epsC := epsCeil(req.Eps)
	res := req.GridRes
	bounds := rd.Bounds.Union(sd.Bounds)

	pspan := tr.Start(root.SpanID(), obs.SpanPartition)
	rr, rHit, rBuild, err := s.openPartitioned(rd, epsC, res, bounds)
	if err != nil {
		pspan.End()
		return nil, fmt.Errorf("service: partitioning %q: %w", rd.Name, err)
	}
	sr, sHit, sBuild, err := s.openPartitioned(sd, epsC, res, bounds)
	pspan.SetInt("r_points", int64(len(rd.Tuples))).SetInt("s_points", int64(len(sd.Tuples)))
	pspan.End()
	if err != nil {
		return nil, fmt.Errorf("service: partitioning %q: %w", sd.Name, err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	limit := req.Limit
	if limit <= 0 || limit > s.cfg.MaxCollect {
		limit = s.cfg.MaxCollect
	}
	var (
		counter   sweep.Counter
		pairs     [][2]int64
		truncated bool
	)
	emit := func(ps []tuple.Pair) {
		for _, p := range ps {
			counter.EmitPair(p)
		}
		if req.Collect {
			for _, p := range ps {
				if len(pairs) >= limit {
					truncated = true
					break
				}
				pairs = append(pairs, [2]int64{p.RID, p.SID})
			}
		}
	}
	espan := tr.Start(root.SpanID(), obs.SpanExecute)
	t0 := time.Now()
	results, err := dstore.JoinFiles(rr, sr, req.Eps, emit)
	probe := time.Since(t0)
	espan.SetInt("results", results)
	espan.End()
	if err != nil {
		return nil, err
	}
	root.End()

	s.Metrics.Probe.Observe(probe.Seconds())
	s.Metrics.JoinResults.Add(results, req.Tenant)
	build := rBuild + sBuild
	if !rHit || !sHit {
		s.Metrics.PlanCacheMisses.Inc()
		s.Metrics.PlanBuild.Observe(build.Seconds())
	} else {
		s.Metrics.PlanCacheHits.Inc()
	}

	resp := &JoinResponse{
		Algorithm:   "disk",
		Results:     results,
		Checksum:    fmt.Sprintf("%016x", counter.Checksum),
		Selectivity: float64(results) / (float64(len(rd.Tuples)) * float64(len(sd.Tuples))),
		PlanCache:   "miss",
		BuildMillis: float64(build) / float64(time.Millisecond),
		ProbeMillis: float64(probe) / float64(time.Millisecond),
		Pairs:       pairs,
		Truncated:   truncated,
	}
	if rHit && sHit {
		resp.PlanCache = "hit"
	}
	resp.JoinID = s.observeTrace("disk", req.Tenant, req.R, req.S, req.Eps, tr, build+probe)
	s.persistSkew(req, tr)
	return resp, nil
}
