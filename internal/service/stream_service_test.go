package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"spatialjoin"
)

// TestStreamPlanCacheGeneration is the plan-cache regression test for
// in-place dataset mutation: a plan built before Registry.Apply must not
// be served after it, even though name and revision are unchanged.
func TestStreamPlanCacheGeneration(t *testing.T) {
	s := testService(t, Config{})
	ctx := context.Background()
	req := JoinRequest{R: "r", S: "s", Eps: 0.5}

	if resp, err := s.Join(ctx, req); err != nil || resp.PlanCache != "miss" {
		t.Fatalf("first join: resp=%+v err=%v", resp, err)
	}
	if resp, err := s.Join(ctx, req); err != nil || resp.PlanCache != "hit" {
		t.Fatalf("second join: resp=%+v err=%v", resp, err)
	}

	before, _ := s.Registry.Get("r")
	gen, err := s.Registry.Apply("r",
		[]spatialjoin.Tuple{{ID: 1 << 40, Pt: spatialjoin.Point{X: 0.5, Y: 0.5}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen != before.Gen+1 {
		t.Fatalf("gen = %d, want %d", gen, before.Gen+1)
	}
	after, _ := s.Registry.Get("r")
	if after.Rev != before.Rev {
		t.Fatalf("Apply changed the revision: %d -> %d", before.Rev, after.Rev)
	}
	if len(after.Tuples) != len(before.Tuples)+1 {
		t.Fatalf("points = %d, want %d", len(after.Tuples), len(before.Tuples)+1)
	}

	// Same name, same revision — but the generation moved, so the key
	// differs and the stale plan cannot be served.
	if resp, err := s.Join(ctx, req); err != nil || resp.PlanCache != "miss" {
		t.Fatalf("post-mutation join: resp=%+v err=%v (stale plan served)", resp, err)
	}
	if resp, err := s.Join(ctx, req); err != nil || resp.PlanCache != "hit" {
		t.Fatalf("post-mutation rejoin: resp=%+v err=%v", resp, err)
	}

	// Deletes that would empty the dataset are rejected atomically.
	ids := make([]int64, len(after.Tuples))
	for i, tp := range after.Tuples {
		ids[i] = tp.ID
	}
	if _, err := s.Registry.Apply("r", nil, ids); err == nil {
		t.Fatal("emptying Apply accepted")
	}
	if _, err := s.Registry.Apply("nope", nil, nil); err == nil {
		t.Fatal("Apply on unknown dataset accepted")
	}
}

// TestStreamHTTPEndToEnd drives the full streaming surface over HTTP:
// create a stream linked to registry datasets, subscribe with a
// snapshot, ingest NDJSON mutations, and check that (a) the subscriber's
// accumulated view converges to the live result set, (b) the mirrored
// datasets make a batch join agree with it, and (c) deleting the stream
// ends the feed.
func TestStreamHTTPEndToEnd(t *testing.T) {
	s := New(Config{})
	if _, err := s.Registry.Put("sr", []spatialjoin.Tuple{
		{ID: 1, Pt: spatialjoin.Point{X: 1, Y: 1}},
		{ID: 2, Pt: spatialjoin.Point{X: 3, Y: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry.Put("ss", []spatialjoin.Tuple{
		{ID: 10, Pt: spatialjoin.Point{X: 1.25, Y: 1}},
		{ID: 11, Pt: spatialjoin.Point{X: 3, Y: 3.25}},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"name":"live","eps":0.5,"min_x":0,"min_y":0,"max_x":4,"max_y":4,
		"grid_res":2.5,"r_dataset":"sr","s_dataset":"ss"}`
	resp, err := http.Post(srv.URL+"/v1/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	var info StreamInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if info.LiveR != 2 || info.LiveS != 2 {
		t.Fatalf("seeded stream info = %+v", info)
	}

	// A duplicate create conflicts.
	resp, err = http.Post(srv.URL+"/v1/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create status = %d", resp.StatusCode)
	}

	// Subscribe with a snapshot: the seeded pairs arrive first.
	sub, err := http.Get(srv.URL + "/v1/stream/subscribe?name=live&snapshot=true")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	if sub.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status = %d", sub.StatusCode)
	}
	type wire struct {
		Op  string `json:"op"`
		RID int64  `json:"rid"`
		SID int64  `json:"sid"`
	}
	lines := make(chan wire, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(sub.Body)
		for sc.Scan() {
			var d wire
			if json.Unmarshal(sc.Bytes(), &d) == nil {
				lines <- d
			}
		}
	}()
	acc := map[[2]int64]bool{}
	fold := func(d wire) {
		key := [2]int64{d.RID, d.SID}
		if d.Op == "+" {
			if acc[key] {
				t.Errorf("duplicate + for %v", key)
			}
			acc[key] = true
		} else {
			if !acc[key] {
				t.Errorf("- for absent %v", key)
			}
			delete(acc, key)
		}
	}
	waitFor := func(want map[[2]int64]bool) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			if fmt.Sprint(sortedKeys(acc)) == fmt.Sprint(sortedKeys(want)) {
				return
			}
			select {
			case d, ok := <-lines:
				if !ok {
					t.Fatalf("feed ended early: acc=%v want=%v", sortedKeys(acc), sortedKeys(want))
				}
				fold(d)
			case <-deadline:
				t.Fatalf("timeout: acc=%v want=%v", sortedKeys(acc), sortedKeys(want))
			}
		}
	}
	waitFor(map[[2]int64]bool{{1, 10}: true, {2, 11}: true})

	// Ingest: a new qualifying pair appears, one disappears with its
	// deleted endpoint. Comment and blank lines are tolerated.
	mutations := `# move the world
{"op":"upsert","set":"r","id":3,"x":2,"y":2}

{"op":"upsert","set":"s","id":12,"x":2.25,"y":2}
{"op":"delete","set":"s","id":10}
`
	resp, err = http.Post(srv.URL+"/v1/stream/ingest?name=live", "application/x-ndjson", strings.NewReader(mutations))
	if err != nil {
		t.Fatal(err)
	}
	var ing streamIngestResponse
	json.NewDecoder(resp.Body).Decode(&ing)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Accepted != 3 || ing.MirrorError != "" {
		t.Fatalf("ingest status=%d resp=%+v", resp.StatusCode, ing)
	}
	want := map[[2]int64]bool{{2, 11}: true, {3, 12}: true}
	waitFor(want)

	// The mirror bumped the linked datasets, so a batch join over them
	// sees the live points and agrees with the accumulated deltas.
	jr, err := s.Join(context.Background(), JoinRequest{R: "sr", S: "ss", Eps: 0.5, GridRes: 2.5, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int64]bool{}
	for _, p := range jr.Pairs {
		got[p] = true
	}
	if fmt.Sprint(sortedKeys(got)) != fmt.Sprint(sortedKeys(want)) {
		t.Fatalf("batch join = %v, want %v", sortedKeys(got), sortedKeys(want))
	}

	// Metrics surface the streaming counters.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	mresp.Body.Close()
	metrics := sb.String()
	for _, want := range []string{
		"sjoind_stream_ingested_total 7",
		`sjoind_stream_delta_pairs_total{op="add"}`,
		"sjoind_streams 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Deleting the stream closes the subscription and ends the feed.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/stream/live", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	select {
	case _, ok := <-lines:
		if ok {
			// A last flushed delta is fine; the channel must still close.
			for range lines {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("feed did not end after stream deletion")
	}
	if s.ListStreams() != nil && len(s.ListStreams()) != 0 {
		t.Fatalf("streams still listed: %v", s.ListStreams())
	}
}

// TestStreamHTTPValidation covers the ingest/create error surface.
func TestStreamHTTPValidation(t *testing.T) {
	s := New(Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(url, body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/stream", `{"name":"x","eps":-1,"max_x":1,"max_y":1}`); code != http.StatusBadRequest {
		t.Fatalf("bad eps status = %d", code)
	}
	if code := post("/v1/stream", `{"name":"x","eps":0.1,"max_x":1,"max_y":1,"policy":"uni-r"}`); code != http.StatusBadRequest {
		t.Fatalf("bad policy status = %d", code)
	}
	if code := post("/v1/stream", `{"name":"x","eps":0.1,"max_x":1,"max_y":1,"r_dataset":"ghost"}`); code != http.StatusNotFound {
		t.Fatalf("unknown linked dataset status = %d", code)
	}
	if code := post("/v1/stream/ingest?name=ghost", `{"set":"r","id":1,"x":0,"y":0}`); code != http.StatusNotFound {
		t.Fatalf("unknown stream ingest status = %d", code)
	}
	if code := post("/v1/stream", `{"name":"x","eps":0.1,"max_x":1,"max_y":1}`); code != http.StatusCreated {
		t.Fatalf("create status = %d", code)
	}
	if code := post("/v1/stream/ingest?name=x", `{"set":"q","id":1}`); code != http.StatusBadRequest {
		t.Fatalf("bad set status = %d", code)
	}
	if code := post("/v1/stream/ingest?name=x", `{"op":"merge","set":"r","id":1}`); code != http.StatusBadRequest {
		t.Fatalf("bad op status = %d", code)
	}
	resp, err := http.Get(srv.URL + "/v1/stream/subscribe?name=ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream subscribe status = %d", resp.StatusCode)
	}
}

func sortedKeys(m map[[2]int64]bool) [][2]int64 {
	out := make([][2]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
