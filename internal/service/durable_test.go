package service

import (
	"context"
	"sort"
	"testing"

	"spatialjoin"
	"spatialjoin/internal/stream"
	"spatialjoin/internal/tuple"
)

// crash abandons the service without the final checkpoint Close would
// write, so the next Open exercises log-tail recovery.
func crash(t *testing.T, s *Service) {
	t.Helper()
	if s.store == nil {
		t.Fatal("crash on a non-durable service")
	}
	if err := s.store.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}
}

func openDurable(t *testing.T, dir string) *Service {
	t.Helper()
	s, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestDurableGenerationPersisted is the restart half of the plan-cache
// generation regression test (TestStreamPlanCacheGeneration covers the
// in-process half): revisions and generations survive a crash, so a
// restarted daemon can never hand out a (name, rev, gen) plan key that an
// earlier incarnation already used for different data.
func TestDurableGenerationPersisted(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	rev1, err := s.Registry.Put("x", spatialjoin.GenerateUniform(50, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry.Apply("x", []spatialjoin.Tuple{{ID: 900, Pt: spatialjoin.Point{X: 0.5, Y: 0.5}}}, nil); err != nil {
		t.Fatal(err)
	}
	gen, err := s.Registry.Apply("x", []spatialjoin.Tuple{{ID: 901, Pt: spatialjoin.Point{X: 0.6, Y: 0.5}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("gen = %d, want 2", gen)
	}
	crash(t, s)

	s2 := openDurable(t, dir)
	defer s2.Close()
	d, err := s2.Registry.Get("x")
	if err != nil {
		t.Fatalf("dataset lost across restart: %v", err)
	}
	if d.Rev != rev1 || d.Gen != 2 {
		t.Fatalf("recovered r%d g%d, want r%d g2", d.Rev, d.Gen, rev1)
	}
	if len(d.Tuples) != 52 {
		t.Fatalf("recovered %d points, want 52", len(d.Tuples))
	}
	// The counters keep moving from where they left off — never reset.
	gen, err = s2.Registry.Apply("x", []spatialjoin.Tuple{{ID: 902, Pt: spatialjoin.Point{X: 0.7, Y: 0.5}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("post-restart gen = %d, want 3 (stale plan key resurrected)", gen)
	}
	rev2, err := s2.Registry.Put("y", spatialjoin.GenerateUniform(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rev2 <= rev1 {
		t.Fatalf("post-restart rev %d did not advance past %d", rev2, rev1)
	}
}

func enginePairs(t *testing.T, s *Service, name string) []spatialjoin.Pair {
	t.Helper()
	st, err := s.GetStream(name)
	if err != nil {
		t.Fatalf("GetStream(%s): %v", name, err)
	}
	ps := st.eng.CurrentPairs()
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RID != ps[j].RID {
			return ps[i].RID < ps[j].RID
		}
		return ps[i].SID < ps[j].SID
	})
	return ps
}

// TestDurableServiceCrashRecovery drives the whole durable surface in
// process: datasets, a live stream, a join (which persists its skew
// report), an explicit checkpoint, post-checkpoint mutations, then a
// simulated crash. The reopened service must agree with the pre-crash
// one on every observable.
func TestDurableServiceCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	if _, err := s.Registry.Put("r", spatialjoin.GenerateUniform(500, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry.Put("s", spatialjoin.GenerateUniform(500, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateStream(StreamConfig{
		Name: "live", Eps: 0.1, MinX: 0, MinY: 0, MaxX: 1, MaxY: 1,
	}); err != nil {
		t.Fatal(err)
	}
	ingest := func(sv *Service, ids ...int64) {
		t.Helper()
		var batch []stream.Mutation
		for _, id := range ids {
			batch = append(batch, stream.Mutation{
				Set:   tuple.Set(id % 2),
				Tuple: spatialjoin.Tuple{ID: id, Pt: spatialjoin.Point{X: float64(id%10) / 10, Y: float64(id%7) / 10}},
			})
		}
		if _, err := sv.StreamIngest("live", batch); err != nil {
			t.Fatalf("ingest: %v", err)
		}
	}
	ingest(s, 1, 2, 3, 4, 5, 6)

	joinResp, err := s.Join(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.05})
	if err != nil {
		t.Fatalf("join: %v", err)
	}

	ckSeq, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if ckSeq == 0 {
		t.Fatal("checkpoint seq 0")
	}

	// Post-checkpoint work that must come back via log replay alone.
	ingest(s, 7, 8, 9, 10)
	if _, err := s.Registry.Apply("r", []spatialjoin.Tuple{{ID: 1 << 40, Pt: spatialjoin.Point{X: 0.5, Y: 0.5}}}, nil); err != nil {
		t.Fatal(err)
	}
	wantPairs := enginePairs(t, s, "live")
	wantList := s.Registry.List()
	crash(t, s)

	s2 := openDurable(t, dir)
	defer s2.Close()

	gotList := s2.Registry.List()
	if len(gotList) != len(wantList) {
		t.Fatalf("recovered %d datasets, want %d", len(gotList), len(wantList))
	}
	sort.Slice(gotList, func(i, j int) bool { return gotList[i].Name < gotList[j].Name })
	sort.Slice(wantList, func(i, j int) bool { return wantList[i].Name < wantList[j].Name })
	for i := range wantList {
		if gotList[i] != wantList[i] {
			t.Fatalf("dataset %d = %+v, want %+v", i, gotList[i], wantList[i])
		}
	}

	gotPairs := enginePairs(t, s2, "live")
	if len(gotPairs) != len(wantPairs) {
		t.Fatalf("recovered %d stream pairs, want %d", len(gotPairs), len(wantPairs))
	}
	for i := range wantPairs {
		if gotPairs[i] != wantPairs[i] {
			t.Fatalf("stream pair %d = %+v, want %+v", i, gotPairs[i], wantPairs[i])
		}
	}

	// The join's skew report survived, so the planner can warm-start.
	hist, err := s2.SkewHistory()
	if err != nil {
		t.Fatalf("SkewHistory: %v", err)
	}
	if len(hist) == 0 {
		t.Fatal("no skew history recovered")
	}
	if hist[0].R != "r" || hist[0].S != "s" {
		t.Fatalf("skew sample = %+v", hist[0])
	}

	// Recovery was checkpoint + tail, not a full-log replay.
	if s2.Metrics.DstoreCheckpointSeq.Value() == 0 {
		t.Fatal("recovery ignored the checkpoint")
	}
	replayed := s2.Metrics.DstoreReplayedRecords.Value()
	if replayed == 0 || replayed > 6 {
		t.Fatalf("replayed %d records, want the short post-checkpoint tail", replayed)
	}

	// And the recovered service keeps serving: a join over recovered
	// datasets returns the same checksum as before the crash.
	resp2, err := s2.Join(context.Background(), JoinRequest{R: "r", S: "s", Eps: 0.05})
	if err != nil {
		t.Fatalf("post-recovery join: %v", err)
	}
	if resp2.Results != joinResp.Results || resp2.Checksum != joinResp.Checksum {
		t.Fatalf("post-recovery join = %d pairs (%s), want %d (%s)",
			resp2.Results, resp2.Checksum, joinResp.Results, joinResp.Checksum)
	}
	if _, err := s2.StreamIngest("live", []stream.Mutation{{Set: tuple.R, Tuple: spatialjoin.Tuple{ID: 99, Pt: spatialjoin.Point{X: 0.5, Y: 0.5}}}}); err != nil {
		t.Fatalf("post-recovery ingest: %v", err)
	}
}

// TestDurableStreamDeleteSurvivesRestart checks the delete tombstone:
// a stream deleted before the crash must not come back.
func TestDurableStreamDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	if _, err := s.CreateStream(StreamConfig{Name: "gone", Eps: 0.1, MaxX: 1, MaxY: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateStream(StreamConfig{Name: "kept", Eps: 0.1, MaxX: 1, MaxY: 1}); err != nil {
		t.Fatal(err)
	}
	if !s.DeleteStream("gone") {
		t.Fatal("delete failed")
	}
	crash(t, s)

	s2 := openDurable(t, dir)
	defer s2.Close()
	if _, err := s2.GetStream("gone"); err == nil {
		t.Fatal("deleted stream resurrected by recovery")
	}
	if _, err := s2.GetStream("kept"); err != nil {
		t.Fatalf("surviving stream lost: %v", err)
	}
}

// TestInMemoryServiceUnchanged pins the zero-config path: no data dir
// means no store, no persistence hooks, and Checkpoint refuses.
func TestInMemoryServiceUnchanged(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Durable() {
		t.Fatal("Durable() true without a data dir")
	}
	if _, err := s.Checkpoint(); err != ErrNotDurable {
		t.Fatalf("Checkpoint = %v, want ErrNotDurable", err)
	}
	if _, err := s.SkewHistory(); err != ErrNotDurable {
		t.Fatalf("SkewHistory = %v, want ErrNotDurable", err)
	}
	if _, err := s.Registry.Put("x", spatialjoin.GenerateUniform(10, 1)); err != nil {
		t.Fatal(err)
	}
}
