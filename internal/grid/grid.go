// Package grid implements the regular space partitioning that underlies
// both the adaptive-replication join and the PBSM baselines: equi-sized
// cells of side l = k·ε laid over the data MBR, cell/point addressing,
// the replication-area classification of Section 4/5 of the paper
// (interior, plain replication strips, merged duplicate-prone corner
// squares), quartet reference points, and the per-cell sample statistics
// from which agreements and LPT cost estimates are derived.
//
// Cell identifiers are dense ints in [0, NX*NY); the sentinel NoCell (-1)
// denotes a virtual cell outside the grid. Quartets exist at every grid
// corner point, including the outer boundary, where some of their four
// cells are virtual: this keeps the replication algorithms free of border
// special cases, because replication into a virtual cell is simply dropped.
package grid

import (
	"fmt"
	"math"

	"spatialjoin/internal/geom"
)

// NoCell is the identifier of a virtual cell outside the grid.
const NoCell = -1

// Side identifies one of the four side neighbours of a cell.
type Side uint8

// Side neighbours in the order used for array indexing.
const (
	West Side = iota
	East
	South
	North
)

// String returns a compact name ("W", "E", "S", "N").
func (s Side) String() string { return [...]string{"W", "E", "S", "N"}[s] }

// Corner identifies one of the four corners of a cell, and thereby the
// quartet whose reference point sits at that corner.
type Corner uint8

// Corners in the order used for array indexing.
const (
	SW Corner = iota
	SE
	NW
	NE
)

// String returns a compact name ("SW", "SE", "NW", "NE").
func (c Corner) String() string { return [...]string{"SW", "SE", "NW", "NE"}[c] }

// Dir identifies one of the eight neighbours of a cell (four sides and
// four diagonals). Side and Corner values embed into Dir via DirOfSide
// and DirOfCorner.
type Dir uint8

// The eight neighbour directions.
const (
	DirW Dir = iota
	DirE
	DirS
	DirN
	DirSW
	DirSE
	DirNW
	DirNE
	// NumDirs is the number of neighbour directions.
	NumDirs = 8
)

// String returns a compact name for the direction.
func (d Dir) String() string {
	return [...]string{"W", "E", "S", "N", "SW", "SE", "NW", "NE"}[d]
}

// DirOfSide converts a Side to its Dir.
func DirOfSide(s Side) Dir { return Dir(s) }

// DirOfCorner converts a Corner to its Dir.
func DirOfCorner(c Corner) Dir { return Dir(c) + DirSW }

// Opposite returns the direction pointing back (W<->E, SW<->NE, ...).
func (d Dir) Opposite() Dir {
	switch d {
	case DirW:
		return DirE
	case DirE:
		return DirW
	case DirS:
		return DirN
	case DirN:
		return DirS
	case DirSW:
		return DirNE
	case DirSE:
		return DirNW
	case DirNW:
		return DirSE
	default:
		return DirSW
	}
}

// Delta returns the (dx, dy) cell offset of the direction.
func (d Dir) Delta() (int, int) {
	switch d {
	case DirW:
		return -1, 0
	case DirE:
		return 1, 0
	case DirS:
		return 0, -1
	case DirN:
		return 0, 1
	case DirSW:
		return -1, -1
	case DirSE:
		return 1, -1
	case DirNW:
		return -1, 1
	default: // DirNE
		return 1, 1
	}
}

// Grid is a regular partitioning of the data space into equi-sized cells.
type Grid struct {
	Bounds geom.Rect // data-space MBR the grid covers
	Eps    float64   // join distance threshold ε
	Res    float64   // resolution multiplier k: cell side l = k·ε
	Tile   float64   // cell side length l
	NX, NY int       // number of cells per axis
}

// New constructs a grid over bounds for distance threshold eps with cell
// side res·eps. The paper requires res >= 2 for agreement-based
// replication; res < 2 grids (e.g. the ε-grid baseline, res = 1) are valid
// for PBSM-style universal replication only. New panics on non-positive
// eps or res, or an empty bounds rectangle, since every caller constructs
// grids from validated configuration.
func New(bounds geom.Rect, eps, res float64) *Grid {
	if eps <= 0 {
		panic(fmt.Sprintf("grid: eps must be positive, got %v", eps))
	}
	if res <= 0 {
		panic(fmt.Sprintf("grid: resolution must be positive, got %v", res))
	}
	if bounds.IsEmpty() {
		panic("grid: empty bounds")
	}
	tile := res * eps
	nx := int(math.Ceil(bounds.Width() / tile))
	ny := int(math.Ceil(bounds.Height() / tile))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{Bounds: bounds, Eps: eps, Res: res, Tile: tile, NX: nx, NY: ny}
}

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.NX * g.NY }

// SupportsAgreements reports whether the grid resolution satisfies the
// l >= 2ε precondition of agreement-based replication.
func (g *Grid) SupportsAgreements() bool { return g.Tile >= 2*g.Eps }

// Locate returns the coordinates of the cell enclosing p, clamped to the
// grid so that points on the maximum border belong to the last cell.
func (g *Grid) Locate(p geom.Point) (cx, cy int) {
	cx = int((p.X - g.Bounds.MinX) / g.Tile)
	cy = int((p.Y - g.Bounds.MinY) / g.Tile)
	if cx < 0 {
		cx = 0
	} else if cx >= g.NX {
		cx = g.NX - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.NY {
		cy = g.NY - 1
	}
	return cx, cy
}

// CellID maps cell coordinates to a dense identifier, or NoCell when the
// coordinates fall outside the grid.
func (g *Grid) CellID(cx, cy int) int {
	if cx < 0 || cx >= g.NX || cy < 0 || cy >= g.NY {
		return NoCell
	}
	return cy*g.NX + cx
}

// CellCoords is the inverse of CellID for valid identifiers.
func (g *Grid) CellCoords(id int) (cx, cy int) {
	return id % g.NX, id / g.NX
}

// CellRect returns the closed rectangle covered by cell (cx, cy).
func (g *Grid) CellRect(cx, cy int) geom.Rect {
	x0 := g.Bounds.MinX + float64(cx)*g.Tile
	y0 := g.Bounds.MinY + float64(cy)*g.Tile
	return geom.Rect{MinX: x0, MinY: y0, MaxX: x0 + g.Tile, MaxY: y0 + g.Tile}
}

// LocalUV returns p's offsets from the west and south borders of cell
// (cx, cy). For a point inside the cell both are in [0, Tile].
func (g *Grid) LocalUV(p geom.Point, cx, cy int) (u, v float64) {
	u = p.X - (g.Bounds.MinX + float64(cx)*g.Tile)
	v = p.Y - (g.Bounds.MinY + float64(cy)*g.Tile)
	return u, v
}

// Neighbor returns the id of the neighbouring cell of (cx, cy) in
// direction d, or NoCell at the grid border.
func (g *Grid) Neighbor(cx, cy int, d Dir) int {
	dx, dy := d.Delta()
	return g.CellID(cx+dx, cy+dy)
}

// RefPoint returns the position of the grid corner (gx, gy),
// gx in [0, NX], gy in [0, NY]: the reference point of that quartet.
func (g *Grid) RefPoint(gx, gy int) geom.Point {
	return geom.Point{
		X: g.Bounds.MinX + float64(gx)*g.Tile,
		Y: g.Bounds.MinY + float64(gy)*g.Tile,
	}
}

// QuartetID packs quartet corner coordinates into a single key.
// Valid for gx in [0, NX], gy in [0, NY].
func (g *Grid) QuartetID(gx, gy int) int { return gy*(g.NX+1) + gx }

// NumQuartets returns the number of quartet reference points, including
// those on the outer boundary of the grid.
func (g *Grid) NumQuartets() int { return (g.NX + 1) * (g.NY + 1) }

// QuartetCoords is the inverse of QuartetID.
func (g *Grid) QuartetCoords(qid int) (gx, gy int) {
	return qid % (g.NX + 1), qid / (g.NX + 1)
}

// Pos is the local position of a cell within a quartet, named from the
// quartet reference point's perspective: BL is the cell south-west of the
// reference point, TR north-east of it, and so on.
type Pos uint8

// Quartet positions in array-index order.
const (
	BL Pos = iota
	BR
	TL
	TR
	// NumPos is the number of cells in a quartet.
	NumPos = 4
)

// String returns a compact name for the position.
func (p Pos) String() string { return [...]string{"BL", "BR", "TL", "TR"}[p] }

// Diagonal returns the position diagonally opposite p in the quartet
// (the cell sharing only the reference point with p).
func (p Pos) Diagonal() Pos { return 3 - p }

// SideAdjacent returns the two positions that share a border with p
// within the quartet.
func (p Pos) SideAdjacent() [2]Pos {
	switch p {
	case BL:
		return [2]Pos{BR, TL}
	case BR:
		return [2]Pos{BL, TR}
	case TL:
		return [2]Pos{TR, BL}
	default: // TR
		return [2]Pos{TL, BR}
	}
}

// IsDiagonalPair reports whether positions a and b share only the quartet
// reference point (rather than a border).
func IsDiagonalPair(a, b Pos) bool { return a.Diagonal() == b }

// PosCoord returns the (x, y) placement of a quartet position on the unit
// square, with the reference point at the centre: BL=(0,0), TR=(1,1).
func PosCoord(p Pos) (x, y int) {
	switch p {
	case BL:
		return 0, 0
	case BR:
		return 1, 0
	case TL:
		return 0, 1
	default: // TR
		return 1, 1
	}
}

// PosAcross returns the quartet position one step from p in side
// direction s, and whether that position exists within the quartet.
func PosAcross(p Pos, s Side) (Pos, bool) {
	x, y := PosCoord(p)
	switch s {
	case West:
		x--
	case East:
		x++
	case South:
		y--
	default: // North
		y++
	}
	if x < 0 || x > 1 || y < 0 || y > 1 {
		return 0, false
	}
	for q := Pos(0); q < NumPos; q++ {
		if qx, qy := PosCoord(q); qx == x && qy == y {
			return q, true
		}
	}
	panic("unreachable")
}

// QuartetCells returns the ids of the four cells of the quartet at corner
// (gx, gy), indexed by Pos; out-of-grid cells are NoCell.
func (g *Grid) QuartetCells(gx, gy int) [NumPos]int {
	return [NumPos]int{
		BL: g.CellID(gx-1, gy-1),
		BR: g.CellID(gx, gy-1),
		TL: g.CellID(gx-1, gy),
		TR: g.CellID(gx, gy),
	}
}

// CornerQuartet returns the quartet corner coordinates at the given corner
// of cell (cx, cy), plus the cell's Pos within that quartet.
func (g *Grid) CornerQuartet(cx, cy int, c Corner) (gx, gy int, pos Pos) {
	switch c {
	case SW:
		return cx, cy, TR
	case SE:
		return cx + 1, cy, TL
	case NW:
		return cx, cy + 1, BR
	default: // NE
		return cx + 1, cy + 1, BL
	}
}

// AreaKind classifies where in its cell a point lies, with respect to the
// replication areas of Figure 9 of the paper.
type AreaKind uint8

const (
	// AreaInterior is the no-replication area: farther than ε from every
	// cell border.
	AreaInterior AreaKind = iota
	// AreaCorner is a merged duplicate-prone area: within ε of the two
	// borders adjacent to one cell corner (an ε×ε corner square).
	AreaCorner
	// AreaStrip is a plain replication area: within ε of exactly one
	// cell border.
	AreaStrip
)

// String names the area kind.
func (k AreaKind) String() string {
	return [...]string{"interior", "corner", "strip"}[k]
}

// Area is the replication-area classification of a point within its cell.
type Area struct {
	Kind   AreaKind
	Corner Corner // valid when Kind == AreaCorner
	Side   Side   // valid when Kind == AreaStrip
}

// Classify locates p's cell and classifies p into the replication areas of
// that cell. It requires a grid with Tile >= 2ε, which guarantees the four
// corner squares are disjoint; a point within ε of two parallel borders is
// impossible then (up to the measure-zero Tile == 2ε centre point, which is
// assigned to one corner deterministically).
func (g *Grid) Classify(p geom.Point) (cx, cy int, area Area) {
	cx, cy = g.Locate(p)
	u, v := g.LocalUV(p, cx, cy)
	eps := g.Eps
	w := u <= eps        // near west border
	e := g.Tile-u <= eps // near east border
	s := v <= eps        // near south border
	n := g.Tile-v <= eps // near north border

	switch {
	case w && s:
		return cx, cy, Area{Kind: AreaCorner, Corner: SW}
	case e && s:
		return cx, cy, Area{Kind: AreaCorner, Corner: SE}
	case w && n:
		return cx, cy, Area{Kind: AreaCorner, Corner: NW}
	case e && n:
		return cx, cy, Area{Kind: AreaCorner, Corner: NE}
	case w:
		return cx, cy, Area{Kind: AreaStrip, Side: West}
	case e:
		return cx, cy, Area{Kind: AreaStrip, Side: East}
	case s:
		return cx, cy, Area{Kind: AreaStrip, Side: South}
	case n:
		return cx, cy, Area{Kind: AreaStrip, Side: North}
	default:
		return cx, cy, Area{Kind: AreaInterior}
	}
}

// StripQuartets returns the corner coordinates of the two quartets at the
// endpoints of the given side of cell (cx, cy), ordered nearest-first with
// respect to p, together with the cell's Pos within each.
func (g *Grid) StripQuartets(p geom.Point, cx, cy int, s Side) (q1x, q1y int, pos1 Pos, q2x, q2y int, pos2 Pos) {
	u, v := g.LocalUV(p, cx, cy)
	half := g.Tile / 2
	var cNear, cFar Corner
	switch s {
	case West:
		cNear, cFar = SW, NW
		if v > half {
			cNear, cFar = NW, SW
		}
	case East:
		cNear, cFar = SE, NE
		if v > half {
			cNear, cFar = NE, SE
		}
	case South:
		cNear, cFar = SW, SE
		if u > half {
			cNear, cFar = SE, SW
		}
	default: // North
		cNear, cFar = NW, NE
		if u > half {
			cNear, cFar = NE, NW
		}
	}
	q1x, q1y, pos1 = g.CornerQuartet(cx, cy, cNear)
	q2x, q2y, pos2 = g.CornerQuartet(cx, cy, cFar)
	return q1x, q1y, pos1, q2x, q2y, pos2
}

// AdjacentCornerQuartets returns, for a point in the corner square at
// corner c of cell (cx, cy), the corner coordinates of the two quartets
// q' and q” nearest to the corner's quartet q — the quartets at the two
// cell corners adjacent to c — with the cell's Pos within each.
func (g *Grid) AdjacentCornerQuartets(cx, cy int, c Corner) (q1x, q1y int, pos1 Pos, q2x, q2y int, pos2 Pos) {
	var horiz, vert Corner
	switch c {
	case SW:
		horiz, vert = SE, NW
	case SE:
		horiz, vert = SW, NE
	case NW:
		horiz, vert = NE, SW
	default: // NE
		horiz, vert = NW, SE
	}
	q1x, q1y, pos1 = g.CornerQuartet(cx, cy, horiz)
	q2x, q2y, pos2 = g.CornerQuartet(cx, cy, vert)
	return q1x, q1y, pos1, q2x, q2y, pos2
}

// ReplicationTargets appends to dst the ids of every real cell other than
// p's own whose MINDIST from p is at most eps, and returns the extended
// slice. This is the universal (PBSM-style) replication rule; it works for
// any grid resolution, including the ε-grid where a point can have up to
// eight targets.
func (g *Grid) ReplicationTargets(p geom.Point, dst []int) []int {
	cx, cy := g.Locate(p)
	ring := int(math.Ceil(g.Eps / g.Tile))
	if ring < 1 {
		ring = 1
	}
	eps2 := g.Eps * g.Eps
	for dy := -ring; dy <= ring; dy++ {
		for dx := -ring; dx <= ring; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := cx+dx, cy+dy
			id := g.CellID(nx, ny)
			if id == NoCell {
				continue
			}
			if g.CellRect(nx, ny).SqMinDist(p) <= eps2 {
				dst = append(dst, id)
			}
		}
	}
	return dst
}
