package grid

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

func testGrid() *Grid {
	// 10x10 world, eps=1, tile=4 -> 3x3 cells (last row/col overhang).
	return New(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 1, 4)
}

func TestNewDimensions(t *testing.T) {
	g := testGrid()
	if g.NX != 3 || g.NY != 3 {
		t.Fatalf("grid dims = %dx%d, want 3x3", g.NX, g.NY)
	}
	if g.Tile != 4 {
		t.Fatalf("tile = %v, want 4", g.Tile)
	}
	if !g.SupportsAgreements() {
		t.Fatal("tile=4, eps=1 must support agreements")
	}
	eg := New(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 1, 1)
	if eg.SupportsAgreements() {
		t.Fatal("eps-grid must not support agreements")
	}
	if eg.NX != 10 || eg.NY != 10 {
		t.Fatalf("eps-grid dims = %dx%d, want 10x10", eg.NX, eg.NY)
	}
}

func TestNewExactDivision(t *testing.T) {
	g := New(geom.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 12}, 1, 2)
	if g.NX != 4 || g.NY != 6 {
		t.Fatalf("dims = %dx%d, want 4x6", g.NX, g.NY)
	}
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(geom.Rect{MaxX: 1, MaxY: 1}, 0, 2) },
		func() { New(geom.Rect{MaxX: 1, MaxY: 1}, 1, 0) },
		func() { New(geom.EmptyRect(), 1, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLocateAndClamp(t *testing.T) {
	g := testGrid()
	tests := []struct {
		p      geom.Point
		cx, cy int
	}{
		{geom.Point{X: 0, Y: 0}, 0, 0},
		{geom.Point{X: 3.9, Y: 3.9}, 0, 0},
		{geom.Point{X: 4, Y: 4}, 1, 1},
		{geom.Point{X: 9.9, Y: 9.9}, 2, 2},
		{geom.Point{X: 10, Y: 10}, 2, 2},    // max border clamps into grid
		{geom.Point{X: -5, Y: 50}, 0, 2},    // out of bounds clamps
		{geom.Point{X: 11.9, Y: 0.5}, 2, 0}, // grid overhang region
	}
	for _, tc := range tests {
		cx, cy := g.Locate(tc.p)
		if cx != tc.cx || cy != tc.cy {
			t.Errorf("Locate(%v) = (%d,%d), want (%d,%d)", tc.p, cx, cy, tc.cx, tc.cy)
		}
	}
}

func TestCellIDRoundTrip(t *testing.T) {
	g := testGrid()
	seen := map[int]bool{}
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			id := g.CellID(cx, cy)
			if id < 0 || id >= g.NumCells() {
				t.Fatalf("CellID(%d,%d) = %d out of range", cx, cy, id)
			}
			if seen[id] {
				t.Fatalf("duplicate cell id %d", id)
			}
			seen[id] = true
			bx, by := g.CellCoords(id)
			if bx != cx || by != cy {
				t.Fatalf("CellCoords(%d) = (%d,%d), want (%d,%d)", id, bx, by, cx, cy)
			}
		}
	}
	for _, bad := range [][2]int{{-1, 0}, {0, -1}, {3, 0}, {0, 3}} {
		if got := g.CellID(bad[0], bad[1]); got != NoCell {
			t.Errorf("CellID%v = %d, want NoCell", bad, got)
		}
	}
}

func TestCellRectTiles(t *testing.T) {
	g := testGrid()
	r := g.CellRect(1, 2)
	want := geom.Rect{MinX: 4, MinY: 8, MaxX: 8, MaxY: 12}
	if r != want {
		t.Fatalf("CellRect(1,2) = %+v, want %+v", r, want)
	}
}

func TestLocalUV(t *testing.T) {
	g := testGrid()
	u, v := g.LocalUV(geom.Point{X: 5.5, Y: 9}, 1, 2)
	if u != 1.5 || v != 1 {
		t.Fatalf("LocalUV = (%v,%v), want (1.5,1)", u, v)
	}
}

func TestDirHelpers(t *testing.T) {
	for d := Dir(0); d < NumDirs; d++ {
		o := d.Opposite()
		if o.Opposite() != d {
			t.Errorf("Opposite(Opposite(%v)) = %v", d, o.Opposite())
		}
		dx, dy := d.Delta()
		ox, oy := o.Delta()
		if dx != -ox || dy != -oy {
			t.Errorf("Delta(%v)=(%d,%d) not negated by Delta(%v)=(%d,%d)", d, dx, dy, o, ox, oy)
		}
		if dx == 0 && dy == 0 {
			t.Errorf("Delta(%v) is zero", d)
		}
	}
	if DirOfSide(West) != DirW || DirOfSide(North) != DirN {
		t.Error("DirOfSide mapping broken")
	}
	if DirOfCorner(SW) != DirSW || DirOfCorner(NE) != DirNE {
		t.Error("DirOfCorner mapping broken")
	}
}

func TestPosHelpers(t *testing.T) {
	if BL.Diagonal() != TR || BR.Diagonal() != TL || TL.Diagonal() != BR || TR.Diagonal() != BL {
		t.Fatal("Diagonal mapping broken")
	}
	for p := Pos(0); p < NumPos; p++ {
		adj := p.SideAdjacent()
		if adj[0] == p || adj[1] == p || adj[0] == adj[1] {
			t.Fatalf("SideAdjacent(%v) = %v invalid", p, adj)
		}
		if adj[0] == p.Diagonal() || adj[1] == p.Diagonal() {
			t.Fatalf("SideAdjacent(%v) contains diagonal", p)
		}
		if !IsDiagonalPair(p, p.Diagonal()) {
			t.Fatalf("IsDiagonalPair(%v, diag) = false", p)
		}
		if IsDiagonalPair(p, adj[0]) {
			t.Fatalf("IsDiagonalPair(%v, side-adjacent) = true", p)
		}
	}
}

func TestQuartetCellsAndCornerQuartet(t *testing.T) {
	g := testGrid()
	// Interior quartet (1,1): all four cells real.
	cells := g.QuartetCells(1, 1)
	want := [NumPos]int{
		BL: g.CellID(0, 0), BR: g.CellID(1, 0),
		TL: g.CellID(0, 1), TR: g.CellID(1, 1),
	}
	if cells != want {
		t.Fatalf("QuartetCells(1,1) = %v, want %v", cells, want)
	}
	// Boundary quartet (0,0): only TR is real.
	cells = g.QuartetCells(0, 0)
	if cells[BL] != NoCell || cells[BR] != NoCell || cells[TL] != NoCell {
		t.Fatalf("border quartet should have virtual cells: %v", cells)
	}
	if cells[TR] != g.CellID(0, 0) {
		t.Fatalf("border quartet TR = %d", cells[TR])
	}

	// CornerQuartet must be consistent with QuartetCells: the cell id
	// appears at the returned Pos.
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			for c := Corner(0); c < 4; c++ {
				gx, gy, pos := g.CornerQuartet(cx, cy, c)
				if got := g.QuartetCells(gx, gy)[pos]; got != g.CellID(cx, cy) {
					t.Fatalf("cell (%d,%d) corner %v: quartet (%d,%d) pos %v holds %d, want %d",
						cx, cy, c, gx, gy, pos, got, g.CellID(cx, cy))
				}
			}
		}
	}
}

func TestQuartetIDRoundTrip(t *testing.T) {
	g := testGrid()
	seen := map[int]bool{}
	for gy := 0; gy <= g.NY; gy++ {
		for gx := 0; gx <= g.NX; gx++ {
			id := g.QuartetID(gx, gy)
			if seen[id] {
				t.Fatalf("duplicate quartet id %d", id)
			}
			seen[id] = true
			bx, by := g.QuartetCoords(id)
			if bx != gx || by != gy {
				t.Fatalf("QuartetCoords(%d) = (%d,%d), want (%d,%d)", id, bx, by, gx, gy)
			}
		}
	}
	if len(seen) != g.NumQuartets() {
		t.Fatalf("enumerated %d quartets, NumQuartets() = %d", len(seen), g.NumQuartets())
	}
}

func TestRefPoint(t *testing.T) {
	g := testGrid()
	if p := g.RefPoint(1, 2); p != (geom.Point{X: 4, Y: 8}) {
		t.Fatalf("RefPoint(1,2) = %v", p)
	}
}

func TestClassifyKinds(t *testing.T) {
	g := testGrid() // tile 4, eps 1; cell (1,1) spans [4,8]x[4,8]
	tests := []struct {
		p    geom.Point
		want Area
	}{
		{geom.Point{X: 6, Y: 6}, Area{Kind: AreaInterior}},
		{geom.Point{X: 4.5, Y: 4.5}, Area{Kind: AreaCorner, Corner: SW}},
		{geom.Point{X: 7.5, Y: 4.5}, Area{Kind: AreaCorner, Corner: SE}},
		{geom.Point{X: 4.5, Y: 7.5}, Area{Kind: AreaCorner, Corner: NW}},
		{geom.Point{X: 7.5, Y: 7.5}, Area{Kind: AreaCorner, Corner: NE}},
		{geom.Point{X: 4.5, Y: 6}, Area{Kind: AreaStrip, Side: West}},
		{geom.Point{X: 7.5, Y: 6}, Area{Kind: AreaStrip, Side: East}},
		{geom.Point{X: 6, Y: 4.5}, Area{Kind: AreaStrip, Side: South}},
		{geom.Point{X: 6, Y: 7.5}, Area{Kind: AreaStrip, Side: North}},
	}
	for _, tc := range tests {
		cx, cy, area := g.Classify(tc.p)
		if cx != 1 || cy != 1 {
			t.Errorf("Classify(%v) located cell (%d,%d), want (1,1)", tc.p, cx, cy)
		}
		if area != tc.want {
			t.Errorf("Classify(%v) = %+v, want %+v", tc.p, area, tc.want)
		}
	}
}

// Classification semantics: corner c means within eps of both side
// neighbours adjacent to c; strip s means within eps of side s's
// neighbour only; interior means within eps of no neighbour rect edge.
func TestClassifySemanticsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(geom.Rect{MinX: -5, MinY: 3, MaxX: 45, MaxY: 40}, 0.7, 2.5)
	for i := 0; i < 5000; i++ {
		p := geom.Point{
			X: g.Bounds.MinX + rng.Float64()*g.Bounds.Width(),
			Y: g.Bounds.MinY + rng.Float64()*g.Bounds.Height(),
		}
		cx, cy, area := g.Classify(p)
		u, v := g.LocalUV(p, cx, cy)
		nearW, nearE := u <= g.Eps, g.Tile-u <= g.Eps
		nearS, nearN := v <= g.Eps, g.Tile-v <= g.Eps
		nNear := 0
		for _, b := range []bool{nearW, nearE, nearS, nearN} {
			if b {
				nNear++
			}
		}
		switch area.Kind {
		case AreaInterior:
			if nNear != 0 {
				t.Fatalf("point %v interior but near %d borders", p, nNear)
			}
		case AreaStrip:
			if nNear != 1 {
				t.Fatalf("point %v strip but near %d borders", p, nNear)
			}
		case AreaCorner:
			if nNear != 2 {
				t.Fatalf("point %v corner but near %d borders", p, nNear)
			}
			var wantH, wantV bool
			switch area.Corner {
			case SW:
				wantH, wantV = nearW, nearS
			case SE:
				wantH, wantV = nearE, nearS
			case NW:
				wantH, wantV = nearW, nearN
			case NE:
				wantH, wantV = nearE, nearN
			}
			if !wantH || !wantV {
				t.Fatalf("point %v corner %v inconsistent with borders", p, area.Corner)
			}
		}
	}
}

func TestStripQuartetsNearestFirst(t *testing.T) {
	g := testGrid() // cell (1,1) spans [4,8]x[4,8]
	// Point near the east border, below the middle: nearest quartet is SE
	// corner (2,1); the far one is NE corner (2,2).
	p := geom.Point{X: 7.5, Y: 5}
	q1x, q1y, pos1, q2x, q2y, pos2 := g.StripQuartets(p, 1, 1, East)
	if q1x != 2 || q1y != 1 || pos1 != TL {
		t.Fatalf("nearest strip quartet = (%d,%d) pos %v", q1x, q1y, pos1)
	}
	if q2x != 2 || q2y != 2 || pos2 != BL {
		t.Fatalf("far strip quartet = (%d,%d) pos %v", q2x, q2y, pos2)
	}
	// Same point mirrored above the middle flips the order.
	p = geom.Point{X: 7.5, Y: 7}
	q1x, q1y, _, q2x, q2y, _ = g.StripQuartets(p, 1, 1, East)
	if q1x != 2 || q1y != 2 || q2x != 2 || q2y != 1 {
		t.Fatalf("mirrored strip quartets = (%d,%d),(%d,%d)", q1x, q1y, q2x, q2y)
	}
}

func TestStripQuartetsAllSidesNearest(t *testing.T) {
	g := testGrid()
	// For every side and random strip point, the first quartet's reference
	// point must not be farther than the second's.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		p := geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		cx, cy, area := g.Classify(p)
		if area.Kind != AreaStrip {
			continue
		}
		q1x, q1y, pos1, q2x, q2y, pos2 := g.StripQuartets(p, cx, cy, area.Side)
		d1 := p.SqDist(g.RefPoint(q1x, q1y))
		d2 := p.SqDist(g.RefPoint(q2x, q2y))
		if d1 > d2 {
			t.Fatalf("StripQuartets order wrong for %v: d1=%v > d2=%v", p, d1, d2)
		}
		id := g.CellID(cx, cy)
		if g.QuartetCells(q1x, q1y)[pos1] != id || g.QuartetCells(q2x, q2y)[pos2] != id {
			t.Fatalf("StripQuartets positions inconsistent for %v", p)
		}
	}
}

func TestAdjacentCornerQuartets(t *testing.T) {
	g := testGrid()
	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			id := g.CellID(cx, cy)
			for c := Corner(0); c < 4; c++ {
				gx, gy, _ := g.CornerQuartet(cx, cy, c)
				q1x, q1y, pos1, q2x, q2y, pos2 := g.AdjacentCornerQuartets(cx, cy, c)
				// Both must contain the cell at the stated position.
				if g.QuartetCells(q1x, q1y)[pos1] != id || g.QuartetCells(q2x, q2y)[pos2] != id {
					t.Fatalf("cell (%d,%d) corner %v: adjacent quartets positions wrong", cx, cy, c)
				}
				// Both must be distinct from q and from each other, and at
				// distance exactly one tile from q's reference point.
				if (q1x == gx && q1y == gy) || (q2x == gx && q2y == gy) || (q1x == q2x && q1y == q2y) {
					t.Fatalf("cell (%d,%d) corner %v: adjacent quartets not distinct", cx, cy, c)
				}
				for _, q := range [][2]int{{q1x, q1y}, {q2x, q2y}} {
					d := g.RefPoint(q[0], q[1]).Dist(g.RefPoint(gx, gy))
					if d != g.Tile {
						t.Fatalf("adjacent quartet at distance %v, want %v", d, g.Tile)
					}
				}
			}
		}
	}
}

func TestReplicationTargetsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, res := range []float64{1, 2, 3} {
		g := New(geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}, 1, res)
		for i := 0; i < 3000; i++ {
			p := geom.Point{X: rng.Float64() * 20, Y: rng.Float64() * 20}
			got := g.ReplicationTargets(p, nil)
			gotSet := map[int]bool{}
			for _, id := range got {
				if gotSet[id] {
					t.Fatalf("duplicate target %d for %v", id, p)
				}
				gotSet[id] = true
			}
			own := func() int { cx, cy := g.Locate(p); return g.CellID(cx, cy) }()
			for cy := 0; cy < g.NY; cy++ {
				for cx := 0; cx < g.NX; cx++ {
					id := g.CellID(cx, cy)
					want := id != own && g.CellRect(cx, cy).WithinMinDist(p, g.Eps)
					if want != gotSet[id] {
						t.Fatalf("res %v point %v cell %d: target=%v, want %v", res, p, id, gotSet[id], want)
					}
				}
			}
		}
	}
}

func TestStatsBoundaryCounts(t *testing.T) {
	g := testGrid()
	st := NewStats(g)
	// Point in cell (1,1) near the SW corner of the cell: candidate for W,
	// S and (if close enough to the corner) SW neighbours.
	st.Add(tuple.R, geom.Point{X: 4.5, Y: 4.5}) // dw=0.5, ds=0.5, hyp=0.707<=1
	st.Add(tuple.S, geom.Point{X: 4.9, Y: 4.9}) // dw=0.9, ds=0.9, hyp=1.27>1
	st.Add(tuple.R, geom.Point{X: 6, Y: 6})     // interior

	id := g.CellID(1, 1)
	cs := st.At(id)
	if cs.Total[tuple.R] != 2 || cs.Total[tuple.S] != 1 {
		t.Fatalf("totals = %v", cs.Total)
	}
	if cs.Boundary[DirW][tuple.R] != 1 || cs.Boundary[DirS][tuple.R] != 1 || cs.Boundary[DirSW][tuple.R] != 1 {
		t.Fatalf("R boundary counts wrong: %+v", cs.Boundary)
	}
	if cs.Boundary[DirW][tuple.S] != 1 || cs.Boundary[DirSW][tuple.S] != 0 {
		t.Fatalf("S boundary counts wrong: %+v", cs.Boundary)
	}
	if cs.Boundary[DirE][tuple.R] != 0 || cs.Boundary[DirN][tuple.S] != 0 {
		t.Fatalf("far-side boundary counts should be zero: %+v", cs.Boundary)
	}
}

// The per-direction boundary counts must agree with the MINDIST-based
// universal replication rule on grids that support agreements.
func TestStatsMatchesReplicationTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := New(geom.Rect{MinX: 0, MinY: 0, MaxX: 30, MaxY: 17}, 0.9, 2)
	for i := 0; i < 4000; i++ {
		p := geom.Point{X: rng.Float64() * 30, Y: rng.Float64() * 17}
		st := NewStats(g)
		st.Add(tuple.S, p)
		cx, cy := g.Locate(p)
		cs := st.At(g.CellID(cx, cy))
		var fromStats []int
		for d := Dir(0); d < NumDirs; d++ {
			if cs.Boundary[d][tuple.S] > 0 {
				if id := g.Neighbor(cx, cy, d); id != NoCell {
					fromStats = append(fromStats, id)
				}
			}
		}
		want := g.ReplicationTargets(p, nil)
		if len(fromStats) != len(want) {
			t.Fatalf("point %v: stats say %v targets, rule says %v", p, fromStats, want)
		}
		wantSet := map[int]bool{}
		for _, id := range want {
			wantSet[id] = true
		}
		for _, id := range fromStats {
			if !wantSet[id] {
				t.Fatalf("point %v: stats target %d not in rule targets %v", p, id, want)
			}
		}
	}
}

func TestStatsVirtualCell(t *testing.T) {
	g := testGrid()
	st := NewStats(g)
	if cs := st.At(NoCell); cs != (CellStats{}) {
		t.Fatal("virtual cell stats must be zero")
	}
	if st.Candidates(NoCell, DirW, tuple.R) != 0 {
		t.Fatal("virtual cell candidates must be zero")
	}
	if st.EstimatedCost(NoCell) != 0 {
		t.Fatal("virtual cell cost must be zero")
	}
}

func TestEstimatedCost(t *testing.T) {
	g := testGrid()
	st := NewStats(g)
	p := geom.Point{X: 6, Y: 6}
	for i := 0; i < 5; i++ {
		st.Add(tuple.R, p)
	}
	for i := 0; i < 3; i++ {
		st.Add(tuple.S, p)
	}
	if got := st.EstimatedCost(g.CellID(1, 1)); got != 15 {
		t.Fatalf("EstimatedCost = %d, want 15", got)
	}
	if got := st.EstimatedCost(g.CellID(0, 0)); got != 0 {
		t.Fatalf("empty cell cost = %d, want 0", got)
	}
}

func TestAddAll(t *testing.T) {
	g := testGrid()
	st := NewStats(g)
	ts := tuple.FromPoints([]geom.Point{{X: 1, Y: 1}, {X: 5, Y: 5}, {X: 9, Y: 9}}, 0)
	st.AddAll(tuple.R, ts)
	total := int32(0)
	for _, cs := range st.Cells {
		total += cs.Total[tuple.R]
	}
	if total != 3 {
		t.Fatalf("AddAll recorded %d points, want 3", total)
	}
}
