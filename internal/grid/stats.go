package grid

import (
	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// CellStats holds the sampled point counts of one cell: totals per input
// set, and per neighbour direction the number of points that are
// replication candidates toward that neighbour (MINDIST to the neighbour
// cell at most ε). These counts drive the LPiB and DIFF agreement
// policies, the edge weights of the graph of agreements, and the per-cell
// cost estimates used by LPT scheduling.
type CellStats struct {
	Total    [2]int32
	Boundary [NumDirs][2]int32
}

// Stats accumulates per-cell sample statistics over a grid.
type Stats struct {
	g     *Grid
	Cells []CellStats
}

// NewStats returns empty statistics for g.
func NewStats(g *Grid) *Stats {
	return &Stats{g: g, Cells: make([]CellStats, g.NumCells())}
}

// Grid returns the grid the statistics are defined over.
func (st *Stats) Grid() *Grid { return st.g }

// Add records one sampled point of the given set.
func (st *Stats) Add(set tuple.Set, p geom.Point) {
	g := st.g
	cx, cy := g.Locate(p)
	cs := &st.Cells[g.CellID(cx, cy)]
	cs.Total[set]++

	u, v := g.LocalUV(p, cx, cy)
	eps := g.Eps
	eps2 := eps * eps
	dw, de := u, g.Tile-u
	ds, dn := v, g.Tile-v

	if dw <= eps {
		cs.Boundary[DirW][set]++
	}
	if de <= eps {
		cs.Boundary[DirE][set]++
	}
	if ds <= eps {
		cs.Boundary[DirS][set]++
	}
	if dn <= eps {
		cs.Boundary[DirN][set]++
	}
	// Diagonal neighbours: MINDIST is the distance to the shared corner.
	if dw*dw+ds*ds <= eps2 {
		cs.Boundary[DirSW][set]++
	}
	if de*de+ds*ds <= eps2 {
		cs.Boundary[DirSE][set]++
	}
	if dw*dw+dn*dn <= eps2 {
		cs.Boundary[DirNW][set]++
	}
	if de*de+dn*dn <= eps2 {
		cs.Boundary[DirNE][set]++
	}
}

// Remove is the inverse of Add: it retracts one previously recorded point
// of the given set, decrementing the same total and boundary counters Add
// incremented. It is the incremental entry point the streaming engine uses
// to keep exact per-cell histograms over live (not sampled) points as
// mutations arrive. Removing a point that was never added corrupts the
// histograms; the caller owns that invariant.
func (st *Stats) Remove(set tuple.Set, p geom.Point) {
	g := st.g
	cx, cy := g.Locate(p)
	cs := &st.Cells[g.CellID(cx, cy)]
	cs.Total[set]--

	u, v := g.LocalUV(p, cx, cy)
	eps := g.Eps
	eps2 := eps * eps
	dw, de := u, g.Tile-u
	ds, dn := v, g.Tile-v

	if dw <= eps {
		cs.Boundary[DirW][set]--
	}
	if de <= eps {
		cs.Boundary[DirE][set]--
	}
	if ds <= eps {
		cs.Boundary[DirS][set]--
	}
	if dn <= eps {
		cs.Boundary[DirN][set]--
	}
	if dw*dw+ds*ds <= eps2 {
		cs.Boundary[DirSW][set]--
	}
	if de*de+ds*ds <= eps2 {
		cs.Boundary[DirSE][set]--
	}
	if dw*dw+dn*dn <= eps2 {
		cs.Boundary[DirNW][set]--
	}
	if de*de+dn*dn <= eps2 {
		cs.Boundary[DirNE][set]--
	}
}

// AddAll records every tuple of ts as a sampled point of set.
func (st *Stats) AddAll(set tuple.Set, ts []tuple.Tuple) {
	for _, t := range ts {
		st.Add(set, t.Pt)
	}
}

// At returns the statistics of the cell with the given id, or a zero
// value for virtual cells (id == NoCell), so callers can treat border
// quartets uniformly.
func (st *Stats) At(id int) CellStats {
	if id == NoCell {
		return CellStats{}
	}
	return st.Cells[id]
}

// Candidates returns the number of sampled points of set in cell id that
// are replication candidates toward the neighbour in direction d.
func (st *Stats) Candidates(id int, d Dir, set tuple.Set) int32 {
	if id == NoCell {
		return 0
	}
	return st.Cells[id].Boundary[d][set]
}

// EstimatedCost returns the per-cell join cost estimate used for LPT
// scheduling: the product of the sampled R and S counts of the cell. The
// caller scales by the square of the sampling factor if absolute estimates
// are needed; LPT only requires relative costs.
func (st *Stats) EstimatedCost(id int) int64 {
	if id == NoCell {
		return 0
	}
	cs := st.Cells[id]
	return int64(cs.Total[tuple.R]) * int64(cs.Total[tuple.S])
}
