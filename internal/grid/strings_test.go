package grid

import "testing"

func TestStringMethods(t *testing.T) {
	sides := map[Side]string{West: "W", East: "E", South: "S", North: "N"}
	for s, want := range sides {
		if s.String() != want {
			t.Errorf("Side(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	corners := map[Corner]string{SW: "SW", SE: "SE", NW: "NW", NE: "NE"}
	for c, want := range corners {
		if c.String() != want {
			t.Errorf("Corner(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
	dirs := map[Dir]string{
		DirW: "W", DirE: "E", DirS: "S", DirN: "N",
		DirSW: "SW", DirSE: "SE", DirNW: "NW", DirNE: "NE",
	}
	for d, want := range dirs {
		if d.String() != want {
			t.Errorf("Dir(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
	poss := map[Pos]string{BL: "BL", BR: "BR", TL: "TL", TR: "TR"}
	for p, want := range poss {
		if p.String() != want {
			t.Errorf("Pos(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
	kinds := map[AreaKind]string{AreaInterior: "interior", AreaCorner: "corner", AreaStrip: "strip"}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("AreaKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestPosCoordRoundTrip(t *testing.T) {
	seen := map[[2]int]bool{}
	for p := Pos(0); p < NumPos; p++ {
		x, y := PosCoord(p)
		if x < 0 || x > 1 || y < 0 || y > 1 {
			t.Fatalf("PosCoord(%v) = (%d,%d) out of unit square", p, x, y)
		}
		if seen[[2]int{x, y}] {
			t.Fatalf("PosCoord(%v) duplicates (%d,%d)", p, x, y)
		}
		seen[[2]int{x, y}] = true
	}
}

func TestPosAcross(t *testing.T) {
	// Valid moves within the quartet.
	cases := []struct {
		from Pos
		s    Side
		to   Pos
	}{
		{BL, East, BR}, {BL, North, TL},
		{BR, West, BL}, {BR, North, TR},
		{TL, East, TR}, {TL, South, BL},
		{TR, West, TL}, {TR, South, BR},
	}
	for _, tc := range cases {
		got, ok := PosAcross(tc.from, tc.s)
		if !ok || got != tc.to {
			t.Errorf("PosAcross(%v, %v) = %v,%v, want %v,true", tc.from, tc.s, got, ok, tc.to)
		}
	}
	// Moves off the quartet.
	invalid := []struct {
		from Pos
		s    Side
	}{
		{BL, West}, {BL, South}, {BR, East}, {BR, South},
		{TL, West}, {TL, North}, {TR, East}, {TR, North},
	}
	for _, tc := range invalid {
		if _, ok := PosAcross(tc.from, tc.s); ok {
			t.Errorf("PosAcross(%v, %v) should be invalid", tc.from, tc.s)
		}
	}
}

// PosAcross and Dir deltas must agree: moving across side s from p lands
// on the position whose coordinate is p's plus the side's delta.
func TestPosAcrossConsistentWithDeltas(t *testing.T) {
	for p := Pos(0); p < NumPos; p++ {
		for s := Side(0); s < 4; s++ {
			px, py := PosCoord(p)
			dx, dy := DirOfSide(s).Delta()
			wantX, wantY := px+dx, py+dy
			got, ok := PosAcross(p, s)
			if wantX < 0 || wantX > 1 || wantY < 0 || wantY > 1 {
				if ok {
					t.Errorf("PosAcross(%v,%v) = %v but target off-quartet", p, s, got)
				}
				continue
			}
			gx, gy := PosCoord(got)
			if !ok || gx != wantX || gy != wantY {
				t.Errorf("PosAcross(%v,%v) inconsistent with deltas", p, s)
			}
		}
	}
}
