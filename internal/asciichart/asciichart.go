// Package asciichart renders numeric series as terminal line charts, so
// cmd/experiments can show the paper's figures (not just their tables)
// without any plotting dependency.
package asciichart

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// Options controls chart geometry.
type Options struct {
	Width  int  // plot columns; default 60
	Height int  // plot rows; default 16
	Log    bool // base-10 log y axis (requires positive values)
}

// markers distinguish series; they cycle if there are more series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render draws the series over a shared y axis with one x slot per
// label. Series may have fewer values than labels; missing points are
// skipped. Returns "" when there is nothing to draw.
func Render(title string, xlabels []string, series []Series, opts Options) string {
	if opts.Width <= 0 {
		opts.Width = 60
	}
	if opts.Height <= 0 {
		opts.Height = 16
	}
	min, max := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, v := range s.Values {
			if opts.Log && v <= 0 {
				continue
			}
			any = true
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	if !any || len(xlabels) == 0 {
		return ""
	}
	tr := func(v float64) float64 { return v }
	if opts.Log {
		tr = math.Log10
	}
	lo, hi := tr(min), tr(max)
	if hi == lo {
		hi = lo + 1
	}

	rows := opts.Height
	cols := opts.Width
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	// x position of slot i.
	xAt := func(i int) int {
		if len(xlabels) == 1 {
			return cols / 2
		}
		return i * (cols - 1) / (len(xlabels) - 1)
	}
	yAt := func(v float64) int {
		frac := (tr(v) - lo) / (hi - lo)
		row := int(math.Round(float64(rows-1) * frac))
		return rows - 1 - row // row 0 is the top
	}

	for si, s := range series {
		m := markers[si%len(markers)]
		prevX, prevY := -1, -1
		for i, v := range s.Values {
			if i >= len(xlabels) || (opts.Log && v <= 0) {
				continue
			}
			x, y := xAt(i), yAt(v)
			if prevX >= 0 {
				drawLine(grid, prevX, prevY, x, y, '.')
			}
			grid[y][x] = m
			prevX, prevY = x, y
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yLabel := func(row int) string {
		frac := float64(rows-1-row) / float64(rows-1)
		v := lo + frac*(hi-lo)
		if opts.Log {
			v = math.Pow(10, v)
		}
		return fmt.Sprintf("%10.3g", v)
	}
	for row := 0; row < rows; row++ {
		label := strings.Repeat(" ", 10)
		if row == 0 || row == rows-1 || row == rows/2 {
			label = yLabel(row)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[row]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", cols))
	// x labels: first, middle, last.
	xl := make([]byte, cols+12)
	for i := range xl {
		xl[i] = ' '
	}
	place := func(slot int, label string) {
		pos := 12 + xAt(slot) - len(label)/2
		if pos < 0 {
			pos = 0
		}
		for i := 0; i < len(label) && pos+i < len(xl); i++ {
			xl[pos+i] = label[i]
		}
	}
	place(0, xlabels[0])
	if len(xlabels) > 2 {
		place(len(xlabels)/2, xlabels[len(xlabels)/2])
	}
	if len(xlabels) > 1 {
		place(len(xlabels)-1, xlabels[len(xlabels)-1])
	}
	b.Write(xl)
	b.WriteByte('\n')
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s", markers[si%len(markers)], s.Name)
		if (si+1)%4 == 0 || si == len(series)-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// drawLine connects two grid points with a sparse dotted segment,
// leaving endpoints for the markers.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, ch byte) {
	steps := maxInt(absInt(x1-x0), absInt(y1-y0))
	for s := 1; s < steps; s++ {
		x := x0 + (x1-x0)*s/steps
		y := y0 + (y1-y0)*s/steps
		if y >= 0 && y < len(grid) && x >= 0 && x < len(grid[y]) && grid[y][x] == ' ' {
			grid[y][x] = ch
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
