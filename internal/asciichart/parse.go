package asciichart

import (
	"math"
	"strconv"
	"strings"
	"time"
)

// ParseCell converts an experiment table cell back into a number so
// tables can be charted: plain integers/floats, byte sizes with
// KiB/MiB/GiB suffixes, Go durations ("107.77ms", "1.5s"), and ratios
// ("36.8x"). The second return is false when the cell is not numeric or
// not finite (NaN/Inf cannot be placed on a chart).
func ParseCell(cell string) (float64, bool) {
	v, ok := parseCell(cell)
	if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	return v, true
}

func parseCell(cell string) (float64, bool) {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return 0, false
	}
	// Ratio.
	if strings.HasSuffix(cell, "x") {
		if v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64); err == nil {
			return v, true
		}
	}
	// Percentage.
	if strings.HasSuffix(cell, "%") {
		if v, err := strconv.ParseFloat(strings.TrimPrefix(strings.TrimSuffix(cell, "%"), "+"), 64); err == nil {
			return v, true
		}
	}
	// Byte sizes.
	for _, sfx := range []struct {
		s string
		m float64
	}{{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10}, {"B", 1}} {
		if strings.HasSuffix(cell, sfx.s) {
			if v, err := strconv.ParseFloat(strings.TrimSuffix(cell, sfx.s), 64); err == nil {
				return v * sfx.m, true
			}
		}
	}
	// Durations (seconds).
	if d, err := time.ParseDuration(cell); err == nil {
		return d.Seconds(), true
	}
	// Plain numbers.
	if v, err := strconv.ParseFloat(cell, 64); err == nil {
		return v, true
	}
	return 0, false
}
