package asciichart

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render("demo", []string{"a", "b", "c"}, []Series{
		{Name: "up", Values: []float64{1, 2, 3}},
		{Name: "down", Values: []float64{3, 2, 1}},
	}, Options{Width: 30, Height: 8})
	if out == "" {
		t.Fatal("empty chart")
	}
	for _, want := range []string{"demo", "up", "down", "*", "o", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// 8 plot rows + frame lines.
	if lines := strings.Count(out, "\n"); lines < 10 {
		t.Fatalf("chart has only %d lines:\n%s", lines, out)
	}
}

func TestRenderMarkerPositions(t *testing.T) {
	// A single rising series: the first marker must be on the bottom
	// row, the last on the top row.
	out := Render("t", []string{"x0", "x1"}, []Series{
		{Name: "s", Values: []float64{0, 10}},
	}, Options{Width: 20, Height: 5})
	lines := strings.Split(out, "\n")
	plot := lines[1 : 1+5]
	if !strings.Contains(plot[0], "*") {
		t.Fatalf("max value not on top row:\n%s", out)
	}
	if !strings.Contains(plot[4], "*") {
		t.Fatalf("min value not on bottom row:\n%s", out)
	}
}

func TestRenderLogScale(t *testing.T) {
	out := Render("log", []string{"a", "b", "c"}, []Series{
		{Name: "s", Values: []float64{10, 1000, 100000}},
	}, Options{Width: 30, Height: 9, Log: true})
	if out == "" {
		t.Fatal("empty log chart")
	}
	// With log scaling, the mid point (1000) sits mid-chart.
	lines := strings.Split(out, "\n")
	midRow := lines[1+4]
	if !strings.Contains(midRow, "*") {
		t.Fatalf("log midpoint not centred:\n%s", out)
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	if out := Render("t", nil, nil, Options{}); out != "" {
		t.Fatal("no data should render nothing")
	}
	if out := Render("t", []string{"a"}, []Series{{Name: "s", Values: []float64{5}}}, Options{}); out == "" {
		t.Fatal("single point should still render")
	}
	// Log scale with non-positive values only.
	if out := Render("t", []string{"a"}, []Series{{Name: "s", Values: []float64{-1}}}, Options{Log: true}); out != "" {
		t.Fatal("log chart of non-positive values should render nothing")
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"123", 123, true},
		{"1.5", 1.5, true},
		{"36.8x", 36.8, true},
		{"+5.9%", 5.9, true},
		{"-5.2%", -5.2, true},
		{"12.61MiB", 12.61 * (1 << 20), true},
		{"207.47KiB", 207.47 * (1 << 10), true},
		{"2.5GiB", 2.5 * (1 << 30), true},
		{"64B", 64, true},
		{"107.77ms", 0.10777, true},
		{"1.5s", 1.5, true},
		{"1m10.186s", 70.186, true},
		{"LPiB", 0, false},
		{"", 0, false},
		{"eps=0.5", 0, false},
	}
	for _, tc := range cases {
		got, ok := ParseCell(tc.in)
		if ok != tc.ok {
			t.Errorf("ParseCell(%q) ok = %v, want %v", tc.in, ok, tc.ok)
			continue
		}
		if ok && (got-tc.want > 1e-9 || tc.want-got > 1e-9) {
			t.Errorf("ParseCell(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
