package asciichart

import "testing"

// FuzzParseCell must never panic on arbitrary cell text.
func FuzzParseCell(f *testing.F) {
	for _, seed := range []string{
		"123", "36.8x", "12.61MiB", "107.77ms", "+5.9%", "", "LPiB",
		"GiB", "xMiB", "1m10.186s", "-inf", "1e999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, ok := ParseCell(s)
		if ok && v != v && s != "NaN" && s != "nan" {
			// NaN results are only acceptable for explicit NaN inputs.
			t.Fatalf("ParseCell(%q) returned NaN with ok=true", s)
		}
	})
}

// FuzzRender must never panic for arbitrary series shapes.
func FuzzRender(f *testing.F) {
	f.Add(3, int64(42), false)
	f.Add(1, int64(7), true)
	f.Add(0, int64(0), false)
	f.Fuzz(func(t *testing.T, n int, seed int64, log bool) {
		if n < 0 || n > 40 {
			return
		}
		xl := make([]string, n)
		vals := make([]float64, n)
		x := seed
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			xl[i] = string(rune('a' + i%26))
			vals[i] = float64(x%10000) / 7
		}
		Render("fuzz", xl, []Series{{Name: "s", Values: vals}}, Options{Log: log, Width: 20, Height: 6})
	})
}
