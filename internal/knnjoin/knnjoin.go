// Package knnjoin implements the distributed k-nearest-neighbour join of
// the paper's related work (García-García et al.; LocationSpark; Simba):
// for every point r of R, find its k nearest points in S.
//
// The execution models the multi-round MapReduce kNN joins of that
// literature on this library's grid substrate:
//
//  1. S is grid-partitioned once (no replication); the grid resolution is
//     chosen from |S| and k so that one cell is expected to hold ~2k
//     points.
//  2. Every r starts with a search radius of one cell side. Each round,
//     r is "replicated" to the cells its current disk intersects, local
//     candidates are merged into a bounded best-k set, and r either
//     finishes (the k-th candidate lies within the certified radius) or
//     doubles its radius for the next round. Skewed data simply takes a
//     round or two more where S is locally sparse.
//
// Rounds and candidate volume are reported so the operator's cost shape
// is observable, mirroring how the cited systems account their repartition
// rounds.
package knnjoin

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

// Neighbor is one result entry: s is among the k nearest of r.
type Neighbor struct {
	RID, SID int64
	Dist     float64
}

// Config parameterises a kNN join.
type Config struct {
	K       int        // neighbours per R point (required, > 0)
	Workers int        // parallel workers; default GOMAXPROCS
	Bounds  *geom.Rect // data-space MBR; computed from the inputs when nil
}

// Result carries the neighbour lists and the execution profile.
type Result struct {
	// Neighbors holds, for each R point, its (up to) k nearest S points,
	// grouped contiguously and sorted by ascending distance.
	Neighbors []Neighbor
	// Rounds is the number of radius-doubling rounds the slowest point
	// needed.
	Rounds int
	// CandidatesScanned counts (r, s) distance evaluations — the work
	// metric, and the analogue of replication for this operator.
	CandidatesScanned int64
}

// Join computes the kNN join R ⋉k S.
func Join(rs, ss []tuple.Tuple, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("knnjoin: K must be positive, got %d", cfg.K)
	}
	if len(ss) == 0 {
		if len(rs) == 0 {
			return &Result{}, nil
		}
		return &Result{}, nil
	}
	bounds := core.DataBounds(cfg.Bounds, rs, ss)

	// Resolution: aim for ~2k S points per cell so round 1 usually
	// certifies immediately. Cell side = sqrt(area * 2k / |S|), clamped
	// so tiny inputs still form a grid.
	area := bounds.Width() * bounds.Height()
	side := math.Sqrt(area * float64(2*cfg.K) / float64(len(ss)))
	maxSide := math.Min(bounds.Width(), bounds.Height())
	if side > maxSide {
		side = maxSide
	}
	if side <= 0 {
		side = maxSide
	}
	// grid.New takes eps and a resolution multiplier; use eps = side/2.
	g := grid.New(bounds, side/2, 2)

	// Partition S by native cell.
	cells := make([][]tuple.Tuple, g.NumCells())
	for _, s := range ss {
		cx, cy := g.Locate(s.Pt)
		id := g.CellID(cx, cy)
		cells[id] = append(cells[id], s)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	out := make([][]Neighbor, len(rs))
	rounds := make([]int, workers)
	scanned := make([]int64, workers)

	var wg sync.WaitGroup
	chunk := (len(rs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo > len(rs) {
			lo = len(rs)
		}
		if hi > len(rs) {
			hi = len(rs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				nbrs, nRounds, nScanned := search(g, cells, rs[i], cfg.K)
				out[i] = nbrs
				if nRounds > rounds[w] {
					rounds[w] = nRounds
				}
				scanned[w] += nScanned
			}
		}(w, lo, hi)
	}
	wg.Wait()

	res := &Result{}
	for w := 0; w < workers; w++ {
		if rounds[w] > res.Rounds {
			res.Rounds = rounds[w]
		}
		res.CandidatesScanned += scanned[w]
	}
	for _, nbrs := range out {
		res.Neighbors = append(res.Neighbors, nbrs...)
	}
	return res, nil
}

// search runs the radius-doubling rounds for one query point.
func search(g *grid.Grid, cells [][]tuple.Tuple, r tuple.Tuple, k int) ([]Neighbor, int, int64) {
	radius := g.Tile
	worldDiag := math.Hypot(g.Bounds.Width(), g.Bounds.Height())
	var best []Neighbor // sorted ascending, at most k
	visited := make(map[int]bool)
	var scanned int64

	rounds := 0
	for {
		rounds++
		// Visit every not-yet-visited cell intersecting the disk.
		ring := int(math.Ceil(radius/g.Tile)) + 1
		cx, cy := g.Locate(r.Pt)
		r2 := radius * radius
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				nx, ny := cx+dx, cy+dy
				id := g.CellID(nx, ny)
				if id == grid.NoCell || visited[id] {
					continue
				}
				if g.CellRect(nx, ny).SqMinDist(r.Pt) > r2 {
					continue
				}
				visited[id] = true
				for _, s := range cells[id] {
					scanned++
					d := r.Pt.Dist(s.Pt)
					best = insertBounded(best, Neighbor{RID: r.ID, SID: s.ID, Dist: d}, k)
				}
			}
		}
		// Certified when the k-th best lies within the scanned radius:
		// every unvisited cell is farther than radius, hence farther than
		// the k-th best.
		if len(best) == k && best[k-1].Dist <= radius {
			return best, rounds, scanned
		}
		if radius > worldDiag {
			// The whole world has been scanned: fewer than k points exist.
			return best, rounds, scanned
		}
		radius *= 2
	}
}

// insertBounded inserts n into the ascending best-k list.
func insertBounded(best []Neighbor, n Neighbor, k int) []Neighbor {
	if len(best) == k && n.Dist >= best[k-1].Dist {
		return best
	}
	pos := sort.Search(len(best), func(i int) bool {
		if best[i].Dist != n.Dist {
			return best[i].Dist > n.Dist
		}
		return best[i].SID > n.SID
	})
	best = append(best, Neighbor{})
	copy(best[pos+1:], best[pos:])
	best[pos] = n
	if len(best) > k {
		best = best[:k]
	}
	return best
}
