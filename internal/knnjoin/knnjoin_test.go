package knnjoin

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

func randomTuples(rng *rand.Rand, n int, extent float64, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{
			ID: base + int64(i),
			Pt: geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
		}
	}
	return out
}

// bruteKNN returns the exact k nearest of r in ss, ascending, ties by id.
func bruteKNN(r tuple.Tuple, ss []tuple.Tuple, k int) []Neighbor {
	all := make([]Neighbor, len(ss))
	for i, s := range ss {
		all[i] = Neighbor{RID: r.ID, SID: s.ID, Dist: r.Pt.Dist(s.Pt)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].SID < all[j].SID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestKNNJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range []int{1, 3, 10} {
		rs := randomTuples(rng, 300, 30, 0)
		ss := randomTuples(rng, 2000, 30, 1_000_000)
		res, err := Join(rs, ss, Config{K: k, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Neighbors) != len(rs)*k {
			t.Fatalf("k=%d: %d neighbours, want %d", k, len(res.Neighbors), len(rs)*k)
		}
		// Neighbours are grouped per R point in input order.
		for i, r := range rs {
			got := res.Neighbors[i*k : (i+1)*k]
			want := bruteKNN(r, ss, k)
			for j := range want {
				if got[j].SID != want[j].SID {
					// Distance ties can swap ids only if distances equal.
					if got[j].Dist != want[j].Dist {
						t.Fatalf("k=%d r=%d neighbour %d: got id %d (%.6f), want %d (%.6f)",
							k, r.ID, j, got[j].SID, got[j].Dist, want[j].SID, want[j].Dist)
					}
				}
			}
		}
	}
}

func TestKNNJoinSkewedData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// S heavily clustered in one corner; R spread everywhere, so distant
	// R points need several radius-doubling rounds.
	var ss []tuple.Tuple
	for i := 0; i < 3000; i++ {
		ss = append(ss, tuple.Tuple{ID: int64(i + 1_000_000), Pt: geom.Point{
			X: 2 + rng.NormFloat64()*0.5, Y: 2 + rng.NormFloat64()*0.5}})
	}
	rs := randomTuples(rng, 200, 40, 0)
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	res, err := Join(rs, ss, Config{K: 5, Workers: 3, Bounds: &bounds})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 2 {
		t.Fatalf("skewed workload finished in %d rounds; expansion untested", res.Rounds)
	}
	for i, r := range rs {
		got := res.Neighbors[i*5 : (i+1)*5]
		want := bruteKNN(r, ss, 5)
		for j := range want {
			if got[j].Dist != want[j].Dist {
				t.Fatalf("r=%d neighbour %d: %.6f vs %.6f", r.ID, j, got[j].Dist, want[j].Dist)
			}
		}
	}
}

func TestKNNJoinFewerThanK(t *testing.T) {
	rs := randomTuples(rand.New(rand.NewSource(3)), 10, 5, 0)
	ss := randomTuples(rand.New(rand.NewSource(4)), 3, 5, 100)
	res, err := Join(rs, ss, Config{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Every R point gets all 3 available neighbours.
	if len(res.Neighbors) != 10*3 {
		t.Fatalf("%d neighbours, want 30", len(res.Neighbors))
	}
}

func TestKNNJoinValidationAndEmpty(t *testing.T) {
	if _, err := Join(nil, nil, Config{K: 0}); err == nil {
		t.Fatal("k=0 must fail")
	}
	res, err := Join(nil, nil, Config{K: 3})
	if err != nil || len(res.Neighbors) != 0 {
		t.Fatalf("empty join: %v, %d", err, len(res.Neighbors))
	}
	rs := randomTuples(rand.New(rand.NewSource(5)), 5, 5, 0)
	res, err = Join(rs, nil, Config{K: 3})
	if err != nil || len(res.Neighbors) != 0 {
		t.Fatalf("empty S: %v, %d", err, len(res.Neighbors))
	}
}

func TestKNNNeighborsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rs := randomTuples(rng, 50, 20, 0)
	ss := randomTuples(rng, 1000, 20, 1_000_000)
	res, err := Join(rs, ss, Config{K: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		group := res.Neighbors[i*7 : (i+1)*7]
		for j := 1; j < len(group); j++ {
			if group[j].Dist < group[j-1].Dist {
				t.Fatalf("r=%d: neighbours not ascending", rs[i].ID)
			}
			if group[j].RID != rs[i].ID {
				t.Fatalf("neighbour group %d carries wrong RID", i)
			}
		}
	}
	if res.CandidatesScanned <= 0 {
		t.Fatal("work metric not recorded")
	}
}

func TestInsertBounded(t *testing.T) {
	var best []Neighbor
	for _, d := range []float64{5, 1, 3, 2, 4} {
		best = insertBounded(best, Neighbor{SID: int64(d), Dist: d}, 3)
	}
	if len(best) != 3 || best[0].Dist != 1 || best[1].Dist != 2 || best[2].Dist != 3 {
		t.Fatalf("best = %v", best)
	}
	// Ties broken by id.
	best = insertBounded(best[:0], Neighbor{SID: 9, Dist: 1}, 2)
	best = insertBounded(best, Neighbor{SID: 4, Dist: 1}, 2)
	if best[0].SID != 4 || best[1].SID != 9 {
		t.Fatalf("tie break = %v", best)
	}
}

func BenchmarkKNNJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rs := randomTuples(rng, 5000, 100, 0)
	ss := randomTuples(rng, 50_000, 100, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Join(rs, ss, Config{K: 10, Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
