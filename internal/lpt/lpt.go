// Package lpt implements the Longest-Processing-Time greedy heuristic for
// the multiprocessor scheduling problem, used to assign grid cells to
// workers so that the maximum estimated join cost per worker is minimised
// (Section 6.2 of the paper). LPT sorts tasks by descending cost and
// repeatedly gives the next task to the least-loaded bin; it is a 4/3
// approximation of the NP-hard optimum.
package lpt

import (
	"container/heap"
	"slices"
)

// Assign distributes len(costs) tasks over nbins bins and returns, per
// task, the bin index it was assigned to. Zero-cost tasks are spread
// round-robin after the costly ones so empty cells do not all pile onto
// one bin. Assign panics if nbins is not positive.
func Assign(costs []int64, nbins int) []int {
	if nbins <= 0 {
		panic("lpt: number of bins must be positive")
	}
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	// Stable so equal-cost cells keep index order (round-robin ties and
	// test expectations depend on it); SortStableFunc avoids the
	// reflection of sort.SliceStable.
	slices.SortStableFunc(order, func(a, b int) int {
		ca, cb := costs[a], costs[b]
		if ca > cb {
			return -1
		}
		if ca < cb {
			return 1
		}
		return 0
	})

	loads := make(binHeap, nbins)
	for i := range loads {
		loads[i] = &bin{index: i}
	}
	heap.Init(&loads)

	out := make([]int, len(costs))
	rr := 0
	for _, task := range order {
		if costs[task] <= 0 {
			out[task] = rr % nbins
			rr++
			continue
		}
		b := loads[0]
		out[task] = b.index
		b.load += costs[task]
		heap.Fix(&loads, 0)
	}
	return out
}

// Loads returns the total cost per bin for a given assignment.
func Loads(costs []int64, assign []int, nbins int) []int64 {
	loads := make([]int64, nbins)
	for i, b := range assign {
		loads[b] += costs[i]
	}
	return loads
}

// Makespan returns the maximum bin load of an assignment — the quantity
// LPT minimises.
func Makespan(costs []int64, assign []int, nbins int) int64 {
	var max int64
	for _, l := range Loads(costs, assign, nbins) {
		if l > max {
			max = l
		}
	}
	return max
}

type bin struct {
	index int
	load  int64
}

type binHeap []*bin

func (h binHeap) Len() int { return len(h) }
func (h binHeap) Less(i, j int) bool {
	if h[i].load != h[j].load {
		return h[i].load < h[j].load
	}
	return h[i].index < h[j].index
}
func (h binHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *binHeap) Push(x interface{}) { *h = append(*h, x.(*bin)) }
func (h *binHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
