package lpt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAssignBasic(t *testing.T) {
	costs := []int64{7, 5, 4, 3, 1}
	assign := Assign(costs, 2)
	if len(assign) != len(costs) {
		t.Fatalf("assignment length %d", len(assign))
	}
	// LPT: 7 -> bin0; 5 -> bin1; 4 -> bin1 (load 9 vs 7... no: bin0=7,
	// bin1=5, so 4 -> bin1=9; 3 -> bin0=10; 1 -> bin1=10). Makespan 10.
	if got := Makespan(costs, assign, 2); got != 10 {
		t.Fatalf("makespan = %d, want 10", got)
	}
}

func TestAssignSingleBin(t *testing.T) {
	costs := []int64{3, 1, 4}
	assign := Assign(costs, 1)
	for i, b := range assign {
		if b != 0 {
			t.Fatalf("task %d assigned to bin %d with 1 bin", i, b)
		}
	}
}

func TestAssignPanicsOnZeroBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Assign([]int64{1}, 0)
}

func TestZeroCostTasksSpread(t *testing.T) {
	costs := make([]int64, 100) // all zero
	assign := Assign(costs, 4)
	counts := make([]int, 4)
	for _, b := range assign {
		counts[b]++
	}
	for b, c := range counts {
		if c != 25 {
			t.Fatalf("bin %d got %d zero-cost tasks, want 25", b, c)
		}
	}
}

func TestAssignRange(t *testing.T) {
	f := func(raw []uint16, nbinsRaw uint8) bool {
		nbins := int(nbinsRaw%8) + 1
		costs := make([]int64, len(raw))
		for i, v := range raw {
			costs[i] = int64(v)
		}
		assign := Assign(costs, nbins)
		for _, b := range assign {
			if b < 0 || b >= nbins {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// LPT must never be worse than 4/3·OPT + max/3; against the trivial lower
// bound max(total/nbins, maxTask) this gives a checkable guarantee.
func TestLPTApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		nbins := 1 + rng.Intn(8)
		costs := make([]int64, n)
		var total, maxTask int64
		for i := range costs {
			costs[i] = int64(rng.Intn(1000))
			total += costs[i]
			if costs[i] > maxTask {
				maxTask = costs[i]
			}
		}
		assign := Assign(costs, nbins)
		lower := (total + int64(nbins) - 1) / int64(nbins)
		if maxTask > lower {
			lower = maxTask
		}
		ms := Makespan(costs, assign, nbins)
		// 4/3 bound with slack for integer rounding.
		if ms*3 > lower*4+3 {
			t.Fatalf("trial %d: makespan %d exceeds 4/3 of lower bound %d", trial, ms, lower)
		}
	}
}

func TestLPTBeatsRoundRobinOnSkew(t *testing.T) {
	// One huge task and many small ones: round-robin by index can pair the
	// huge task with extra load, LPT never does.
	costs := []int64{1000, 1, 1, 1, 1, 1, 1, 1}
	assign := Assign(costs, 2)
	rr := make([]int, len(costs))
	for i := range rr {
		rr[i] = i % 2
	}
	if Makespan(costs, assign, 2) > Makespan(costs, rr, 2) {
		t.Fatalf("LPT makespan %d worse than round robin %d",
			Makespan(costs, assign, 2), Makespan(costs, rr, 2))
	}
	if got := Makespan(costs, assign, 2); got != 1000 {
		t.Fatalf("LPT makespan = %d, want 1000", got)
	}
}

func TestLoads(t *testing.T) {
	costs := []int64{5, 3, 2}
	assign := []int{0, 1, 0}
	loads := Loads(costs, assign, 2)
	if loads[0] != 7 || loads[1] != 3 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestAssignEmpty(t *testing.T) {
	if got := Assign(nil, 3); len(got) != 0 {
		t.Fatalf("empty costs should give empty assignment, got %v", got)
	}
}

func TestBinHeapInterface(t *testing.T) {
	// Exercise the heap.Interface plumbing directly.
	h := binHeap{{index: 0, load: 5}, {index: 1, load: 2}}
	h.Push(&bin{index: 2, load: 1})
	if h.Len() != 3 {
		t.Fatalf("len = %d", h.Len())
	}
	got := h.Pop().(*bin)
	if got.index != 2 {
		t.Fatalf("Pop returned bin %d, want the last-pushed", got.index)
	}
	if h.Len() != 2 {
		t.Fatalf("len after pop = %d", h.Len())
	}
	// Less ties break by index for determinism.
	a, b := &bin{index: 0, load: 7}, &bin{index: 1, load: 7}
	hh := binHeap{a, b}
	if !hh.Less(0, 1) || hh.Less(1, 0) {
		t.Fatal("equal loads must order by index")
	}
}

func TestAssignZeroCostRoundRobin(t *testing.T) {
	// All-zero costs must take the round-robin path: tasks spread evenly
	// over the bins in order instead of piling onto the least-loaded one.
	const n, nbins = 10, 3
	assign := Assign(make([]int64, n), nbins)
	counts := make([]int, nbins)
	for i, b := range assign {
		if b != i%nbins {
			t.Fatalf("zero-cost task %d assigned to bin %d, want round-robin bin %d", i, b, i%nbins)
		}
		counts[b]++
	}
	for b, c := range counts {
		if c < n/nbins || c > n/nbins+1 {
			t.Fatalf("bin %d holds %d zero-cost tasks, want a balanced %d..%d", b, c, n/nbins, n/nbins+1)
		}
	}

	// Mixed: zero-cost tasks still round-robin from bin 0 in task order,
	// regardless of where the costly tasks land.
	costs := []int64{5, 0, 9, 0, 0, 2}
	assign = Assign(costs, nbins)
	rr := 0
	for i, c := range costs {
		if c != 0 {
			continue
		}
		if assign[i] != rr%nbins {
			t.Fatalf("zero-cost task %d assigned to bin %d, want %d", i, assign[i], rr%nbins)
		}
		rr++
	}
}

func TestAssignStableUnderEqualCosts(t *testing.T) {
	// Equal costs everywhere: the descending sort is stable and the heap
	// breaks load ties by bin index, so the placement must be exactly the
	// task-order round-robin — and identical across repeated calls. A
	// deterministic placement is what lets a coordinator re-derive task
	// ownership after failures.
	const n, nbins = 12, 4
	costs := make([]int64, n)
	for i := range costs {
		costs[i] = 7
	}
	first := Assign(costs, nbins)
	for i, b := range first {
		if b != i%nbins {
			t.Fatalf("equal-cost task %d assigned to bin %d, want %d", i, b, i%nbins)
		}
	}
	for trial := 0; trial < 5; trial++ {
		again := Assign(costs, nbins)
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("trial %d: task %d moved from bin %d to %d under identical input", trial, i, first[i], again[i])
			}
		}
	}
}
