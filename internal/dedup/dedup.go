// Package dedup implements the parallel distinct operator used by the
// non-duplicate-free join variant (Table 6 of the paper): result pairs are
// hash-partitioned by their identifiers — modelling Spark's distinct(),
// which shuffles the result set across the cluster — and deduplicated
// within each partition concurrently.
package dedup

import (
	"sync"

	"spatialjoin/internal/tuple"
)

// Metrics reports the cost of a distinct pass.
type Metrics struct {
	Input         int64 // pairs before deduplication
	Output        int64 // pairs after deduplication
	ShuffledBytes int64 // bytes re-shuffled to partition the result set
	RemoteBytes   int64 // bytes crossing simulated worker boundaries
}

// pairBytes is the wire size of one result pair during the distinct
// shuffle: two 8-byte identifiers plus an 8-byte partition key.
const pairBytes = 24

// Distinct removes duplicate pairs in parallel across the given number of
// workers and partitions, mimicking a cluster-wide distinct() over the
// join output. The input order is not preserved. Workers and partitions
// must be positive.
func Distinct(pairs []tuple.Pair, workers, partitions int) ([]tuple.Pair, Metrics) {
	if workers < 1 {
		workers = 1
	}
	if partitions < 1 {
		partitions = 1
	}
	m := Metrics{Input: int64(len(pairs))}

	// Shuffle: route each pair to a partition by hash. The producing
	// worker of a pair is modelled by its index position (the join output
	// is spread evenly over workers), the consuming worker owns the
	// partition round-robin.
	parts := make([][]tuple.Pair, partitions)
	chunk := (len(pairs) + workers - 1) / workers
	for i, p := range pairs {
		dst := int(pairHash(p) % uint64(partitions))
		parts[dst] = append(parts[dst], p)
		m.ShuffledBytes += pairBytes
		producer := 0
		if chunk > 0 {
			producer = i / chunk
		}
		if producer != dst%workers {
			m.RemoteBytes += pairBytes
		}
	}

	// Deduplicate partitions concurrently.
	out := make([][]tuple.Pair, partitions)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for pi := range parts {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			seen := make(map[tuple.Pair]struct{}, len(parts[pi]))
			uniq := parts[pi][:0]
			for _, p := range parts[pi] {
				if _, dup := seen[p]; dup {
					continue
				}
				seen[p] = struct{}{}
				uniq = append(uniq, p)
			}
			out[pi] = uniq
		}(pi)
	}
	wg.Wait()

	var result []tuple.Pair
	for _, part := range out {
		result = append(result, part...)
	}
	m.Output = int64(len(result))
	return result, m
}

func pairHash(p tuple.Pair) uint64 {
	x := uint64(p.RID)*0x9e3779b97f4a7c15 ^ uint64(p.SID)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}
