package dedup

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/tuple"
)

func sorted(ps []tuple.Pair) []tuple.Pair {
	out := append([]tuple.Pair(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RID != out[j].RID {
			return out[i].RID < out[j].RID
		}
		return out[i].SID < out[j].SID
	})
	return out
}

func TestDistinctRemovesDuplicates(t *testing.T) {
	in := []tuple.Pair{{RID: 1, SID: 2}, {RID: 1, SID: 2}, {RID: 3, SID: 4}, {RID: 1, SID: 2}, {RID: 3, SID: 5}}
	out, m := Distinct(in, 2, 4)
	want := []tuple.Pair{{RID: 1, SID: 2}, {RID: 3, SID: 4}, {RID: 3, SID: 5}}
	got := sorted(out)
	if len(got) != len(want) {
		t.Fatalf("distinct = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct = %v, want %v", got, want)
		}
	}
	if m.Input != 5 || m.Output != 3 {
		t.Fatalf("metrics in/out = %d/%d, want 5/3", m.Input, m.Output)
	}
	if m.ShuffledBytes != 5*pairBytes {
		t.Fatalf("shuffled bytes = %d, want %d", m.ShuffledBytes, 5*pairBytes)
	}
	if m.RemoteBytes > m.ShuffledBytes {
		t.Fatalf("remote bytes %d exceed shuffled bytes %d", m.RemoteBytes, m.ShuffledBytes)
	}
}

func TestDistinctRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(5000)
		in := make([]tuple.Pair, n)
		for i := range in {
			in[i] = tuple.Pair{RID: int64(rng.Intn(50)), SID: int64(rng.Intn(50))}
		}
		workers := 1 + rng.Intn(8)
		partitions := 1 + rng.Intn(16)
		out, m := Distinct(in, workers, partitions)

		want := map[tuple.Pair]struct{}{}
		for _, p := range in {
			want[p] = struct{}{}
		}
		if len(out) != len(want) {
			t.Fatalf("trial %d: distinct kept %d pairs, want %d", trial, len(out), len(want))
		}
		seen := map[tuple.Pair]struct{}{}
		for _, p := range out {
			if _, ok := want[p]; !ok {
				t.Fatalf("trial %d: unexpected pair %v", trial, p)
			}
			if _, dup := seen[p]; dup {
				t.Fatalf("trial %d: pair %v still duplicated", trial, p)
			}
			seen[p] = struct{}{}
		}
		if m.Output != int64(len(want)) {
			t.Fatalf("trial %d: metrics output %d, want %d", trial, m.Output, len(want))
		}
	}
}

func TestDistinctEmpty(t *testing.T) {
	out, m := Distinct(nil, 4, 8)
	if len(out) != 0 || m.Input != 0 || m.Output != 0 {
		t.Fatalf("empty distinct: out=%v metrics=%+v", out, m)
	}
}

func TestDistinctClampsBadConfig(t *testing.T) {
	in := []tuple.Pair{{RID: 1, SID: 1}, {RID: 1, SID: 1}}
	out, _ := Distinct(in, 0, 0)
	if len(out) != 1 {
		t.Fatalf("distinct with clamped config = %v", out)
	}
}
