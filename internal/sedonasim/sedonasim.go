// Package sedonasim reproduces the execution shape of Apache Sedona's
// distance join, the third baseline of the paper's evaluation:
//
//  1. Partitioning: a point quadtree is built on the driver from a sample
//     of the input with the fewest objects; its leaves are the join
//     partitions (dense areas get fine leaves, sparse areas coarse ones).
//  2. Assignment: the sampled (smaller) input is the replicated one —
//     each of its points goes to every leaf within ε of it; the larger
//     input is assigned to its containing leaf only.
//  3. Local join: per partition an STR R-tree is built on the larger
//     input and probed with ε-circles from the smaller one.
//
// Because the indexed side is uniquely assigned, every result pair is
// found exactly once — no deduplication step is needed, matching Sedona's
// behaviour for distance joins. The characteristic trade-off the paper
// observes emerges naturally: quadtree leaves are large, so replication
// and shuffle stay low while per-partition join cost balloons.
package sedonasim

import (
	"fmt"
	"time"

	"spatialjoin/internal/core"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/quadtree"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/sample"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// Config parameterises one Sedona-style join execution.
type Config struct {
	Eps            float64    // join distance threshold (required, > 0)
	Workers        int        // simulated nodes; default GOMAXPROCS
	Partitions     int        // target quadtree leaf count; default 8 × workers
	SampleFraction float64    // partitioner sample; default 0.03
	Seed           int64      // sampling seed
	Fanout         int        // local R-tree fanout; default rtree.DefaultFanout
	Collect        bool       // materialise result pairs
	Bounds         *geom.Rect // data-space MBR; computed from the inputs when nil
	// NetBandwidth is the simulated per-link bandwidth in bytes/s (0: off).
	NetBandwidth float64
	// SelfFilter enables self-join mode: keep only pairs with r.ID < s.ID.
	SelfFilter bool
}

// Result is the outcome of a Sedona-style join.
type Result struct {
	dpe.Metrics
	Pairs       []tuple.Pair
	Partitioner *quadtree.Partitioner
}

// Join executes the ε-distance join with quadtree partitioning and local
// R-tree indexes.
func Join(rs, ss []tuple.Tuple, cfg Config) (*Result, error) {
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("sedonasim: Eps must be positive, got %v", cfg.Eps)
	}
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = sample.DefaultFraction
	}
	workers, partitions := core.Parallelism(cfg.Workers, cfg.Partitions)
	bounds := core.DataBounds(cfg.Bounds, rs, ss)

	// The set with the fewest objects drives partitioning and is the
	// replicated side; the larger set is indexed.
	smallIsR := len(rs) <= len(ss)
	small := ss
	if smallIsR {
		small = rs
	}

	// Phase 1: sample the smaller input on the driver.
	start := time.Now()
	smp := sample.Reservoir(small, targetSampleSize(len(small), cfg.SampleFraction), cfg.Seed)
	sampleTime := time.Since(start)

	// Phase 2: build the quadtree partitioner. Leaf capacity is sized so
	// roughly Partitions leaves emerge from the sample.
	start = time.Now()
	capacity := len(smp) / partitions
	if capacity < 1 {
		capacity = 1
	}
	qt := quadtree.Build(smp, bounds, capacity, 0)
	buildTime := time.Since(start)

	locate := func(p geom.Point, set tuple.Set, dst []int) []int {
		return append(dst, qt.Locate(p))
	}
	replicateCircle := func(p geom.Point, set tuple.Set, dst []int) []int {
		dst = qt.CircleLeaves(p, cfg.Eps, dst)
		return moveNativeFirst(dst, qt.Locate(p))
	}
	assignR, assignS := locate, replicateCircle
	if smallIsR {
		assignR, assignS = replicateCircle, locate
	}

	out, err := dpe.Run(dpe.Spec{
		R: rs, S: ss, Eps: cfg.Eps,
		AssignR: assignR,
		AssignS: assignS,
		Part:    dpe.HashPartitioner{N: partitions},
		Workers: workers,
		Kernel:  indexProbeKernel(smallIsR, cfg.Fanout),
		Collect: cfg.Collect,

		NetBandwidth: cfg.NetBandwidth,
		SelfFilter:   cfg.SelfFilter,
	})
	if err != nil {
		return nil, err
	}
	out.SampleTime = sampleTime
	out.BuildTime = buildTime
	return &Result{Metrics: out.Metrics, Pairs: out.Pairs, Partitioner: qt}, nil
}

// indexProbeKernel returns the local join kernel: an R-tree is built on
// the indexed (larger) side and probed with the replicated side's points.
func indexProbeKernel(smallIsR bool, fanout int) dpe.Kernel {
	return func(_ int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit) {
		if smallIsR {
			// S is indexed, R probes.
			tree := rtree.Build(ss, fanout)
			for _, r := range rs {
				tree.Within(r.Pt, eps, func(s tuple.Tuple) { emit(r, s) })
			}
			return
		}
		tree := rtree.Build(rs, fanout)
		for _, s := range ss {
			tree.Within(s.Pt, eps, func(r tuple.Tuple) { emit(r, s) })
		}
	}
}

// moveNativeFirst reorders ids so the native leaf comes first, keeping
// the engine's "first id is the native cell" replication-count contract.
func moveNativeFirst(ids []int, native int) []int {
	for i, id := range ids {
		if id == native {
			ids[0], ids[i] = ids[i], ids[0]
			return ids
		}
	}
	// MINDIST(p, own leaf) is 0 <= eps, so the native leaf is always in
	// the circle set; reaching here would be a quadtree bug.
	panic("sedonasim: native leaf missing from circle leaves")
}

// targetSampleSize converts a fraction into a reservoir size.
func targetSampleSize(n int, fraction float64) int {
	k := int(float64(n) * fraction)
	if k < 1 {
		k = 1
	}
	return k
}
