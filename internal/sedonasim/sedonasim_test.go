package sedonasim

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

func gaussian(rng *rand.Rand, n int, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	centers := []geom.Point{{X: 12, Y: 12}, {X: 35, Y: 20}, {X: 20, Y: 38}}
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = tuple.Tuple{
			ID: base + int64(i),
			Pt: geom.Point{X: c.X + rng.NormFloat64()*5, Y: c.Y + rng.NormFloat64()*5},
		}
	}
	return out
}

func TestMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	eps := 0.9
	for trial, sizes := range [][2]int{{4000, 3000}, {2000, 5000}, {3000, 3000}} {
		rs := gaussian(rng, sizes[0], 0)
		ss := gaussian(rng, sizes[1], 1_000_000)
		var want sweep.Counter
		sweep.NestedLoop(rs, ss, eps, want.Emit)
		res, err := Join(rs, ss, Config{Eps: eps, Workers: 4, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Results != want.N || res.Checksum != want.Checksum {
			t.Fatalf("sizes %v: results %d/%x, want %d/%x", sizes, res.Results, res.Checksum, want.N, want.Checksum)
		}
	}
}

func TestOnlySmallerSetReplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rs := gaussian(rng, 1000, 0)
	ss := gaussian(rng, 4000, 1_000_000)
	res, err := Join(rs, ss, Config{Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// R is smaller: it is the replicated side, S is uniquely assigned.
	if res.ReplicatedS != 0 {
		t.Fatalf("indexed set replicated: %d", res.ReplicatedS)
	}
	// Swap roles.
	res, err = Join(ss, rs, Config{Eps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicatedR != 0 {
		t.Fatalf("indexed set replicated after swap: %d", res.ReplicatedR)
	}
}

func TestPartitionerExposedAndAdaptive(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rs := gaussian(rng, 5000, 0)
	ss := gaussian(rng, 5000, 1_000_000)
	res, err := Join(rs, ss, Config{Eps: 1, Partitions: 32, SampleFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitioner == nil {
		t.Fatal("partitioner not exposed")
	}
	if res.Partitioner.NumLeaves() < 4 {
		t.Fatalf("partitioner has %d leaves, expected a real split", res.Partitioner.NumLeaves())
	}
}

func TestValidation(t *testing.T) {
	if _, err := Join(nil, nil, Config{Eps: 0}); err == nil {
		t.Error("expected error for eps=0")
	}
	if _, err := Join(nil, nil, Config{Eps: 1}); err != nil {
		t.Errorf("empty join should succeed: %v", err)
	}
}

func TestCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	rs := gaussian(rng, 400, 0)
	ss := gaussian(rng, 400, 1_000_000)
	res, err := Join(rs, ss, Config{Eps: 1.5, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Pairs)) != res.Results {
		t.Fatalf("collected %d, counted %d", len(res.Pairs), res.Results)
	}
}

func TestMoveNativeFirst(t *testing.T) {
	ids := []int{5, 3, 9}
	out := moveNativeFirst(ids, 9)
	if out[0] != 9 {
		t.Fatalf("native not first: %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing native leaf must panic")
		}
	}()
	moveNativeFirst([]int{1, 2}, 7)
}
