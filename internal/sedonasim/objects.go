package sedonasim

import (
	"fmt"

	"spatialjoin/internal/extgeom"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/quadtree"
	"spatialjoin/internal/rtree"
	"spatialjoin/internal/tuple"
)

// ObjectsConfig parameterises a Sedona-style non-point join, the
// independent baseline the two-layer engine is differentially tested
// against. The execution shape mirrors Sedona's spatial join on
// geometries: quadtree partitioning on MBR centers, the larger side
// indexed uniquely by its center leaf, the smaller side replicated to
// every leaf its suitably expanded MBR reaches, per-leaf R-tree
// filter + exact refine. Unique indexed-side assignment means no
// deduplication is needed.
type ObjectsConfig struct {
	Pred extgeom.Predicate
	Eps  float64 // WithinDistance threshold; ignored otherwise

	Partitions     int     // target quadtree leaf count; default 64
	SampleFraction float64 // partitioner sample; default 0.03
	Seed           int64
	Fanout         int        // per-leaf R-tree fanout
	Bounds         *geom.Rect // data-space MBR; computed when nil
}

// JoinObjects joins two object sets under cfg.Pred and returns the
// result pairs (always collected — this path exists to be compared
// against).
func JoinObjects(rs, ss []extgeom.Object, cfg ObjectsConfig) ([]tuple.Pair, error) {
	if cfg.Pred > extgeom.WithinDistance {
		return nil, fmt.Errorf("sedonasim: unknown predicate %d", cfg.Pred)
	}
	eps := 0.0
	if cfg.Pred == extgeom.WithinDistance {
		if cfg.Eps <= 0 {
			return nil, fmt.Errorf("sedonasim: WithinDistance needs a positive eps, got %v", cfg.Eps)
		}
		eps = cfg.Eps
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 64
	}
	if cfg.SampleFraction <= 0 {
		cfg.SampleFraction = 0.03
	}

	bounds := objectBounds(cfg.Bounds, rs, ss)

	// The larger side is indexed (uniquely assigned by MBR center), the
	// smaller side probes with replication.
	indexIsR := len(rs) > len(ss)
	indexed, probe := ss, rs
	if indexIsR {
		indexed, probe = rs, ss
	}

	// Partition on a strided sample of the probe side's centers.
	stride := int(1 / cfg.SampleFraction)
	if stride < 1 {
		stride = 1
	}
	var smp []tuple.Tuple
	for i := 0; i < len(probe); i += stride {
		smp = append(smp, tuple.Tuple{ID: probe[i].ID, Pt: probe[i].Bounds().Center()})
	}
	capacity := len(smp) / cfg.Partitions
	if capacity < 1 {
		capacity = 1
	}
	qt := quadtree.Build(smp, bounds, capacity, 0)

	// An indexed object lands in the leaf of its MBR center; a probe
	// object must reach that leaf whenever the pair can match, so its
	// MBR is expanded by ε plus the largest indexed half-diagonal (the
	// center is at most that far from any point of its own geometry).
	maxHalfDiag := 0.0
	for i := range indexed {
		if hd := indexed[i].HalfDiag(); hd > maxHalfDiag {
			maxHalfDiag = hd
		}
	}

	type entry struct {
		mbr geom.Rect
		obj *extgeom.Object
	}
	idxLeaf := make([][]entry, qt.NumLeaves())
	for i := range indexed {
		o := &indexed[i]
		leaf := qt.Locate(o.Bounds().Center())
		idxLeaf[leaf] = append(idxLeaf[leaf], entry{mbr: o.Bounds(), obj: o})
	}

	// One STR-packed tree per populated leaf, built once.
	trees := make([]*rtree.BoxTree, qt.NumLeaves())
	for leaf, es := range idxLeaf {
		if len(es) == 0 {
			continue
		}
		boxes := make([]rtree.BoxEntry, len(es))
		for j, e := range es {
			boxes[j] = rtree.BoxEntry{Rect: e.mbr, Ref: int32(j)}
		}
		trees[leaf] = rtree.BuildBoxes(boxes, cfg.Fanout)
	}

	var pairs []tuple.Pair
	var leaves []int
	for i := range probe {
		p := &probe[i]
		pmbr := p.Bounds()
		leaves = qt.RectLeaves(pmbr.Expand(eps+maxHalfDiag), leaves[:0])
		probeMBR := pmbr.Expand(eps) // candidate filter: MBR gap ≤ ε per axis
		for _, leaf := range leaves {
			tree := trees[leaf]
			if tree == nil {
				continue
			}
			es := idxLeaf[leaf]
			tree.SearchIntersects(probeMBR, func(be rtree.BoxEntry) {
				s := es[be.Ref].obj
				r := p
				if indexIsR {
					r, s = s, r
				}
				if extgeom.Eval(cfg.Pred, r, s, eps) {
					pairs = append(pairs, tuple.Pair{RID: r.ID, SID: s.ID})
				}
			})
		}
	}
	return pairs, nil
}

func objectBounds(explicit *geom.Rect, rs, ss []extgeom.Object) geom.Rect {
	if explicit != nil {
		return *explicit
	}
	b := geom.EmptyRect()
	for i := range rs {
		b = b.Union(rs[i].Bounds())
	}
	for i := range ss {
		b = b.Union(ss[i].Bounds())
	}
	if b.IsEmpty() {
		b = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	return b
}
