package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/dpe"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/tuple"
)

// measured runs an actual engine join and returns its metrics.
func measured(g *grid.Grid, rs, ss []tuple.Tuple, assignR, assignS dpe.Assign) *dpe.Result {
	res, err := dpe.Run(dpe.Spec{
		R: rs, S: ss, Eps: g.Eps,
		AssignR: assignR, AssignS: assignS,
		Part:    dpe.HashPartitioner{N: 64},
		Workers: 4,
	})
	if err != nil {
		panic(err)
	}
	return res
}

func within(t *testing.T, name string, predicted, actual, tolerance float64) {
	t.Helper()
	// Absolute slack keeps tiny counts (a handful of redirected points)
	// from failing on relative tolerance.
	if math.Abs(predicted-actual) <= 20 {
		return
	}
	if actual == 0 {
		t.Errorf("%s: predicted %v, actual 0", name, predicted)
		return
	}
	ratio := predicted / actual
	if math.Abs(ratio-1) > tolerance {
		t.Errorf("%s: predicted %.0f vs actual %.0f (ratio %.3f, tolerance %.2f)",
			name, predicted, actual, ratio, tolerance)
	}
}

func clusteredData(rng *rand.Rand, n int, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	centers := []geom.Point{{X: 10, Y: 10}, {X: 30, Y: 30}, {X: 15, Y: 32}}
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = tuple.Tuple{
			ID: base + int64(i),
			// Clamped into the grid bounds: the model's statistics and the
			// replication rule agree only for in-bounds points, matching
			// the real pipeline where bounds are the data MBR.
			Pt: clampInto(geom.Point{X: c.X + rng.NormFloat64()*5, Y: c.Y + rng.NormFloat64()*5}, bounds),
		}
	}
	return out
}

// With exhaustive statistics (fraction 1), the model's replication and
// candidate-pair predictions must be near-exact for the universal
// strategies — only corner-geometry approximations (diagonal candidates
// counted by MINDIST exactly as the rule does) remain, so the tolerance
// is tight.
func TestUniversalPredictionExactWithFullStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	g := grid.New(bounds, 1, 2)
	rs := clusteredData(rng, 20_000, 0)
	ss := clusteredData(rng, 20_000, 1_000_000)
	st := grid.NewStats(g)
	st.AddAll(tuple.R, rs)
	st.AddAll(tuple.S, ss)

	for _, replSet := range []tuple.Set{tuple.R, tuple.S} {
		pred := Universal(st, replSet, 1, 24)
		res := measured(g, rs, ss,
			func(p geom.Point, set tuple.Set, dst []int) []int {
				return replicate.Universal(g, p, replSet == tuple.R, dst)
			},
			func(p geom.Point, set tuple.Set, dst []int) []int {
				return replicate.Universal(g, p, replSet == tuple.S, dst)
			})
		within(t, "replicated", pred.Replicated, float64(res.Replicated()), 0.001)
		within(t, "shuffled bytes", pred.ShuffledBytes, float64(res.ShuffledBytes), 0.001)
	}
}

// With sampled statistics the predictions must land within sampling noise.
func TestUniversalPredictionWithSampledStats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	g := grid.New(bounds, 1, 2)
	rs := clusteredData(rng, 50_000, 0)
	ss := clusteredData(rng, 50_000, 1_000_000)
	st := grid.NewStats(g)
	const fraction = 0.2
	for i, r := range rs {
		if i%5 == 0 {
			st.Add(tuple.R, r.Pt)
		}
	}
	for i, s := range ss {
		if i%5 == 0 {
			st.Add(tuple.S, s.Pt)
		}
	}
	pred := Universal(st, tuple.R, fraction, 24)
	res := measured(g, rs, ss,
		func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, true, dst)
		},
		func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, false, dst)
		})
	within(t, "replicated", pred.Replicated, float64(res.Replicated()), 0.1)
	within(t, "shuffled bytes", pred.ShuffledBytes, float64(res.ShuffledBytes), 0.1)
}

// The adaptive prediction must track the measured adaptive run, and the
// model must rank strategies in the same order as reality.
func TestAdaptivePredictionAndRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	g := grid.New(bounds, 1, 2)
	// Asymmetric skew so adaptive clearly beats both universals.
	var rs, ss []tuple.Tuple
	for i := 0; i < 30_000; i++ {
		rs = append(rs, tuple.Tuple{ID: int64(i), Pt: clampInto(geom.Point{
			X: 5 + rng.NormFloat64()*4, Y: 20 + rng.NormFloat64()*10}, bounds)})
		ss = append(ss, tuple.Tuple{ID: int64(i + 1_000_000), Pt: clampInto(geom.Point{
			X: 35 + rng.NormFloat64()*4, Y: 20 + rng.NormFloat64()*10}, bounds)})
	}
	st := grid.NewStats(g)
	st.AddAll(tuple.R, rs)
	st.AddAll(tuple.S, ss)
	gr := agreements.Build(st, agreements.LPiB)

	pred := Adaptive(gr, st, 1, 24)
	res := measured(g, rs, ss,
		func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Adaptive(gr, p, set, dst)
		},
		func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Adaptive(gr, p, set, dst)
		})
	// Marking/supplementary redirections make adaptive counts slightly
	// deviate from the marking-agnostic model: allow 5%.
	within(t, "adaptive replicated", pred.Replicated, float64(res.Replicated()), 0.05)
	within(t, "adaptive shuffled", pred.ShuffledBytes, float64(res.ShuffledBytes), 0.05)

	predUniR := Universal(st, tuple.R, 1, 24)
	predUniS := Universal(st, tuple.S, 1, 24)
	if pred.Replicated >= predUniR.Replicated || pred.Replicated >= predUniS.Replicated {
		t.Fatalf("model must rank adaptive below universal: %v vs %v/%v",
			pred.Replicated, predUniR.Replicated, predUniS.Replicated)
	}
}

// Candidate pairs predicted by the model must match the engine's
// MaxPartitionCost-style accounting: per-cell |R|·|S| sums.
func TestCandidatePairsPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}
	g := grid.New(bounds, 1, 2)
	rs := clusteredData(rng, 5000, 0)
	ss := clusteredData(rng, 5000, 1_000_000)
	// clusteredData spans a 40x40 world; clamp into this smaller one.
	for i := range rs {
		rs[i].Pt = clampInto(rs[i].Pt, bounds)
	}
	for i := range ss {
		ss[i].Pt = clampInto(ss[i].Pt, bounds)
	}
	st := grid.NewStats(g)
	st.AddAll(tuple.R, rs)
	st.AddAll(tuple.S, ss)
	pred := Universal(st, tuple.R, 1, 24)

	// Count actual candidate pairs per cell after universal replication.
	counts := make([][2]int64, g.NumCells())
	var buf []int
	for _, r := range rs {
		buf = replicate.Universal(g, r.Pt, true, buf[:0])
		for _, id := range buf {
			counts[id][0]++
		}
	}
	for _, s := range ss {
		buf = replicate.Universal(g, s.Pt, false, buf[:0])
		for _, id := range buf {
			counts[id][1]++
		}
	}
	var actual, maxCell float64
	for _, c := range counts {
		pairs := float64(c[0]) * float64(c[1])
		actual += pairs
		if pairs > maxCell {
			maxCell = pairs
		}
	}
	within(t, "candidate pairs", pred.CandidatePairs, actual, 0.001)
	within(t, "max cell pairs", pred.MaxCellPairs, maxCell, 0.001)
}

func clampInto(p geom.Point, r geom.Rect) geom.Point {
	if p.X < r.MinX {
		p.X = r.MinX
	} else if p.X > r.MaxX {
		p.X = r.MaxX
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	} else if p.Y > r.MaxY {
		p.Y = r.MaxY
	}
	return p
}

func TestEmptyStatsPredictZero(t *testing.T) {
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 1, 2)
	st := grid.NewStats(g)
	pred := Universal(st, tuple.R, 0.03, 24)
	if pred.Replicated != 0 || pred.CandidatePairs != 0 || pred.ShuffledBytes != 0 {
		t.Fatalf("empty stats should predict zero: %+v", pred)
	}
	gr := agreements.Build(st, agreements.LPiB)
	pred = Adaptive(gr, st, 0.03, 24)
	if pred.Replicated != 0 || pred.CandidatePairs != 0 {
		t.Fatalf("empty adaptive prediction: %+v", pred)
	}
}
