// Package costmodel implements an analytical cost model for the adaptive
// and universal replication strategies — the theoretical counterpart the
// paper lists as future work ("deriving a theoretical cost model for our
// algorithms is of interest").
//
// From the same per-cell sample statistics that drive the graph of
// agreements, the model predicts, per strategy:
//
//   - the number of replicated objects,
//   - the shuffle volume in bytes (given a tuple wire size), and
//   - the total number of candidate pairs examined by the partition-level
//     joins (the Σ|R_c|·|S_c| work metric), whose maximum over cells also
//     lower-bounds the achievable makespan.
//
// Estimates are scaled from the sample by 1/fraction. The model is
// deliberately marking-agnostic: marked edges redirect points between at
// most two cells of the same quartet, which leaves the totals unchanged
// to first order. Tests validate the predictions against measured runs.
package costmodel

import (
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/sample"
	"spatialjoin/internal/tuple"
)

// Prediction is the model's output for one strategy.
type Prediction struct {
	// Replicated is the expected number of replicated objects.
	Replicated float64
	// ShuffledBytes is the expected shuffle volume: every native and
	// replicated copy of a tuple crosses the shuffle once.
	ShuffledBytes float64
	// CandidatePairs is the expected Σ over cells of |R_c|·|S_c| after
	// replication — the join work metric.
	CandidatePairs float64
	// MaxCellPairs is the largest per-cell |R_c|·|S_c|, a lower bound on
	// the join-phase makespan in pair-comparisons.
	MaxCellPairs float64
}

// Universal predicts the PBSM strategy replicating the given set, from
// sampled statistics collected at the given fraction.
func Universal(st *grid.Stats, replicated tuple.Set, fraction float64, tupleBytes int) Prediction {
	g := st.Grid()
	scale := sample.ScaleFactor(fraction)
	var p Prediction
	inbound := make([]float64, g.NumCells()) // replicated-set copies arriving per cell

	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			id := g.CellID(cx, cy)
			cs := st.At(id)
			for d := grid.Dir(0); d < grid.NumDirs; d++ {
				nb := g.Neighbor(cx, cy, d)
				if nb == grid.NoCell {
					continue
				}
				out := float64(cs.Boundary[d][replicated]) * scale
				p.Replicated += out
				inbound[nb] += out
			}
		}
	}
	totalTuples := 0.0
	for id := 0; id < g.NumCells(); id++ {
		cs := st.At(id)
		r := float64(cs.Total[tuple.R]) * scale
		s := float64(cs.Total[tuple.S]) * scale
		totalTuples += r + s
		if replicated == tuple.R {
			r += inbound[id]
		} else {
			s += inbound[id]
		}
		pairs := r * s
		p.CandidatePairs += pairs
		if pairs > p.MaxCellPairs {
			p.MaxCellPairs = pairs
		}
	}
	p.ShuffledBytes = (totalTuples + p.Replicated) * float64(tupleBytes+8)
	return p
}

// Adaptive predicts the agreement-based strategy from a resolved graph,
// using the same statistics the graph was built from.
func Adaptive(gr *agreements.Graph, st *grid.Stats, fraction float64, tupleBytes int) Prediction {
	g := st.Grid()
	scale := sample.ScaleFactor(fraction)
	var p Prediction
	inbound := make([][2]float64, g.NumCells())

	for cy := 0; cy < g.NY; cy++ {
		for cx := 0; cx < g.NX; cx++ {
			id := g.CellID(cx, cy)
			cs := st.At(id)
			for d := grid.Dir(0); d < grid.NumDirs; d++ {
				nb := g.Neighbor(cx, cy, d)
				if nb == grid.NoCell {
					continue
				}
				t := gr.PairType(cx, cy, d)
				out := float64(cs.Boundary[d][t]) * scale
				p.Replicated += out
				inbound[nb][t] += out
			}
		}
	}
	totalTuples := 0.0
	for id := 0; id < g.NumCells(); id++ {
		cs := st.At(id)
		r := float64(cs.Total[tuple.R])*scale + inbound[id][tuple.R]
		s := float64(cs.Total[tuple.S])*scale + inbound[id][tuple.S]
		totalTuples += float64(cs.Total[tuple.R])*scale + float64(cs.Total[tuple.S])*scale
		pairs := r * s
		p.CandidatePairs += pairs
		if pairs > p.MaxCellPairs {
			p.MaxCellPairs = pairs
		}
	}
	p.ShuffledBytes = (totalTuples + p.Replicated) * float64(tupleBytes+8)
	return p
}
