package costmodel

import (
	"math"

	"spatialjoin/internal/geom"
)

// TwoLayerPrediction is the model's output for one candidate tile
// resolution of the two-layer non-point join.
type TwoLayerPrediction struct {
	NX, NY int
	// Replicated is the expected number of extra MBR copies (covered
	// tiles beyond the first), scaled to the full inputs.
	Replicated float64
	// CandidatePairs is the expected Σ over tiles of |R_t|·|S_t| — the
	// filter work the per-tile mini-joins face.
	CandidatePairs float64
	// Score is the cost the resolution was ranked by.
	Score float64
}

// twoLayerReplWeight prices one replica in candidate-pair units when
// scoring resolutions: a replica costs an extra decode + shuffle slot,
// which empirically trades against roughly this many MBR comparisons.
const twoLayerReplWeight = 8.0

// TwoLayerResolution picks the tile resolution for a two-layer
// non-point join from sampled MBRs (the R side already ε-widened by the
// caller where the predicate requires it). nR and nS are the full input
// cardinalities the sample is scaled to; workers floors the tile count
// so the reduce phase has enough tasks to balance.
//
// The model walks a doubling ladder of square resolutions. For each it
// computes, directly from the sample, the expected replication (tiles
// covered per MBR beyond the first) and the expected candidate pairs
// (Σ_t |R_t|·|S_t| over a tile histogram of the sample, scaled
// quadratically), then ranks by candidates + weight·replicas: finer
// grids cut candidate pairs but replicate fat objects into more tiles,
// and the score bottoms out where the marginal replication outweighs
// the filtering gain.
func TwoLayerResolution(bounds geom.Rect, sampleR, sampleS []geom.Rect, nR, nS, workers int) TwoLayerPrediction {
	if workers < 1 {
		workers = 1
	}
	scaleR, scaleS := 1.0, 1.0
	if len(sampleR) > 0 {
		scaleR = float64(nR) / float64(len(sampleR))
	}
	if len(sampleS) > 0 {
		scaleS = float64(nS) / float64(len(sampleS))
	}

	// Resolution ladder: up to the grid where the average tile would
	// hold about one sampled object — finer only adds replication.
	maxN := 1
	for maxN*maxN < (nR+nS) && maxN < 4096 {
		maxN *= 2
	}

	best := TwoLayerPrediction{Score: math.Inf(1)}
	for n := 1; n <= maxN; n *= 2 {
		p := twoLayerPredict(bounds, sampleR, sampleS, scaleR, scaleS, n)
		// Floor for parallelism: with fewer tiles than workers the
		// reduce phase cannot balance; skip unless it is the only
		// candidate left.
		if n*n < workers && n < maxN {
			continue
		}
		if p.Score < best.Score {
			best = p
		}
	}
	if math.IsInf(best.Score, 1) {
		best = twoLayerPredict(bounds, sampleR, sampleS, scaleR, scaleS, maxN)
	}
	return best
}

func twoLayerPredict(bounds geom.Rect, sampleR, sampleS []geom.Rect, scaleR, scaleS float64, n int) TwoLayerPrediction {
	tw := bounds.Width() / float64(n)
	th := bounds.Height() / float64(n)
	histR := make(map[int]float64, len(sampleR))
	histS := make(map[int]float64, len(sampleS))
	replR := tally(bounds, sampleR, tw, th, n, histR)
	replS := tally(bounds, sampleS, tw, th, n, histS)

	var cand float64
	for t, hr := range histR {
		if hs, ok := histS[t]; ok {
			cand += hr * hs
		}
	}
	p := TwoLayerPrediction{
		NX:             n,
		NY:             n,
		Replicated:     replR*scaleR + replS*scaleS,
		CandidatePairs: cand * scaleR * scaleS,
	}
	p.Score = p.CandidatePairs + twoLayerReplWeight*p.Replicated
	return p
}

// tally adds each sampled MBR to the per-tile histogram and returns the
// sample's replica count (covered tiles beyond the first).
func tally(bounds geom.Rect, mbrs []geom.Rect, tw, th float64, n int, hist map[int]float64) float64 {
	clampTile := func(v float64, span float64, lo float64) int {
		if span <= 0 {
			return 0
		}
		c := int((v - lo) / span)
		if c < 0 {
			c = 0
		}
		if c >= n {
			c = n - 1
		}
		return c
	}
	var repl float64
	for _, m := range mbrs {
		c0, c1 := clampTile(m.MinX, tw, bounds.MinX), clampTile(m.MaxX, tw, bounds.MinX)
		r0, r1 := clampTile(m.MinY, th, bounds.MinY), clampTile(m.MaxY, th, bounds.MinY)
		repl += float64((c1-c0+1)*(r1-r0+1) - 1)
		for row := r0; row <= r1; row++ {
			for col := c0; col <= c1; col++ {
				hist[row*n+col]++
			}
		}
	}
	return repl
}
