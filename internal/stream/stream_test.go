package stream_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	spatialjoin "spatialjoin"
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/stream"
	"spatialjoin/internal/tuple"
)

// harness mirrors an engine with a model: the live points per set and the
// pair set accumulated from the engine's own deltas. All coordinates are
// kept on a 1/16 lattice so every squared distance is exactly
// representable and ε-boundary comparisons are exact — the property tests
// deliberately generate pairs at distance exactly ε and points exactly on
// cell borders.
type harness struct {
	t       *testing.T
	eng     *stream.Engine
	sub     *stream.Subscription
	live    [2]map[int64]tuple.Tuple
	pairs   map[tuple.Pair]int
	bounds  geom.Rect
	eps     float64
	gridRes float64
}

func newHarness(t *testing.T, cfg stream.Config) *harness {
	t.Helper()
	eng, err := stream.New(cfg)
	if err != nil {
		t.Fatalf("stream.New: %v", err)
	}
	h := &harness{
		t:       t,
		eng:     eng,
		sub:     eng.Subscribe(),
		live:    [2]map[int64]tuple.Tuple{{}, {}},
		pairs:   map[tuple.Pair]int{},
		bounds:  cfg.Bounds,
		eps:     cfg.Eps,
		gridRes: cfg.GridRes,
	}
	t.Cleanup(h.sub.Close)
	return h
}

func (h *harness) apply(batch []stream.Mutation) {
	for _, m := range batch {
		if m.Delete {
			delete(h.live[m.Set], m.Tuple.ID)
		} else {
			h.live[m.Set][m.Tuple.ID] = m.Tuple
		}
	}
	h.eng.Apply(batch)
	h.drain()
}

// drain folds queued deltas into the accumulated pair set, checking that
// no pair is ever added twice or removed below zero — the duplicate-
// freeness half of Lemma 4.8, observed on the delta stream itself.
func (h *harness) drain() {
	h.t.Helper()
	for {
		d, ok := h.sub.TryNext()
		if !ok {
			return
		}
		p := tuple.Pair{RID: d.RID, SID: d.SID}
		h.pairs[p] += int(d.Op)
		if c := h.pairs[p]; c != 0 && c != 1 {
			h.t.Fatalf("delta stream drove pair %+v to count %d", p, c)
		}
	}
}

func (h *harness) liveSlice(set tuple.Set) []tuple.Tuple {
	out := make([]tuple.Tuple, 0, len(h.live[set]))
	for _, t := range h.live[set] {
		out = append(out, t)
	}
	return out
}

func sortedPairs(ps []tuple.Pair) []tuple.Pair {
	out := append([]tuple.Pair(nil), ps...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].RID != out[j].RID {
			return out[i].RID < out[j].RID
		}
		return out[i].SID < out[j].SID
	})
	return out
}

func (h *harness) accumulated() []tuple.Pair {
	var out []tuple.Pair
	for p, c := range h.pairs {
		if c == 1 {
			out = append(out, p)
		}
	}
	return out
}

func diffPairs(a, b []tuple.Pair) string {
	as, bs := sortedPairs(a), sortedPairs(b)
	if len(as) == len(bs) {
		same := true
		for i := range as {
			if as[i] != bs[i] {
				same = false
				break
			}
		}
		if same {
			return ""
		}
	}
	inA := map[tuple.Pair]bool{}
	for _, p := range as {
		inA[p] = true
	}
	inB := map[tuple.Pair]bool{}
	for _, p := range bs {
		inB[p] = true
	}
	var onlyA, onlyB []tuple.Pair
	for _, p := range as {
		if !inB[p] {
			onlyA = append(onlyA, p)
		}
	}
	for _, p := range bs {
		if !inA[p] {
			onlyB = append(onlyB, p)
		}
	}
	return fmt.Sprintf("sizes %d vs %d, only-left %v, only-right %v", len(as), len(bs), onlyA, onlyB)
}

// checkQuiescent asserts the four-way equality at a quiescent point:
// accumulated deltas == engine snapshot == brute force == batch Join.
func (h *harness) checkQuiescent(withBatchJoin bool) {
	h.t.Helper()
	rs, ss := h.liveSlice(tuple.R), h.liveSlice(tuple.S)
	oracle := spatialjoin.BruteForce(rs, ss, h.eps)
	if d := diffPairs(h.accumulated(), oracle); d != "" {
		h.t.Fatalf("accumulated deltas != brute force: %s", d)
	}
	if d := diffPairs(h.eng.CurrentPairs(), oracle); d != "" {
		h.t.Fatalf("CurrentPairs != brute force: %s", d)
	}
	if withBatchJoin && len(rs) > 0 && len(ss) > 0 {
		rep, err := spatialjoin.Join(rs, ss, spatialjoin.Options{
			Eps:       h.eps,
			Algorithm: spatialjoin.AdaptiveLPiB,
			Collect:   true,
			Bounds:    &h.bounds,
			GridRes:   h.gridRes,
		})
		if err != nil {
			h.t.Fatalf("batch Join: %v", err)
		}
		if d := diffPairs(rep.Pairs, oracle); d != "" {
			h.t.Fatalf("batch Join != brute force: %s", d)
		}
	}
}

// latticeCoord returns a coordinate in [0, span] on the 1/16 lattice.
func latticeCoord(rng *rand.Rand, span int) float64 {
	return float64(rng.Intn(span*16+1)) / 16
}

// TestStreamQuiescentEquivalence is the core property test: random
// interleavings of inserts, moves, and deletes over both sets — biased
// toward cell borders and exact-ε partners — must, at every quiescent
// point, match a from-scratch brute-force join (and periodically the full
// batch pipeline) exactly. Rebalancing runs every 50 mutations so
// agreement flips and migrations are exercised mid-stream.
//
// GridRes is 2.5 rather than the minimum 2 so the closed ε-strips of
// opposite borders are disjoint and the lattice's exact-ε/exact-border
// configurations are all handled (see Config.GridRes).
func TestStreamQuiescentEquivalence(t *testing.T) {
	bounds := geom.NewRect(0, 0, 10, 10)
	h := newHarness(t, stream.Config{
		Eps:            0.5,
		Bounds:         bounds,
		GridRes:        2.5,
		Policy:         agreements.LPiB,
		RebalanceEvery: 50,
	})
	rng := rand.New(rand.NewSource(20250806))
	nextID := [2]int64{1, 1}

	randomPoint := func() geom.Point {
		switch rng.Intn(4) {
		case 0: // exactly on a cell border (tile = 1)
			return geom.Point{X: float64(rng.Intn(11)), Y: latticeCoord(rng, 10)}
		case 1:
			return geom.Point{X: latticeCoord(rng, 10), Y: float64(rng.Intn(11))}
		default:
			return geom.Point{X: latticeCoord(rng, 10), Y: latticeCoord(rng, 10)}
		}
	}
	// exactEpsPartner returns a point at distance exactly ε from a live
	// point of the other set, when one exists.
	exactEpsPartner := func(set tuple.Set) (geom.Point, bool) {
		for _, other := range h.live[set.Other()] {
			p := other.Pt
			switch rng.Intn(4) {
			case 0:
				p.X += 0.5
			case 1:
				p.X -= 0.5
			case 2:
				p.Y += 0.5
			default:
				p.Y -= 0.5
			}
			if bounds.Contains(p) {
				return p, true
			}
		}
		return geom.Point{}, false
	}
	anyLive := func(set tuple.Set) (int64, bool) {
		for id := range h.live[set] {
			return id, true
		}
		return 0, false
	}

	mutation := func() stream.Mutation {
		set := tuple.Set(rng.Intn(2))
		switch roll := rng.Intn(10); {
		case roll < 5: // insert a fresh point
			pt := randomPoint()
			if rng.Intn(3) == 0 {
				if p, ok := exactEpsPartner(set); ok {
					pt = p
				}
			}
			id := nextID[set]
			nextID[set]++
			return stream.Mutation{Set: set, Tuple: tuple.Tuple{ID: id, Pt: pt}}
		case roll < 8: // move (or re-insert) an existing id
			if id, ok := anyLive(set); ok {
				return stream.Mutation{Set: set, Tuple: tuple.Tuple{ID: id, Pt: randomPoint()}}
			}
			id := nextID[set]
			nextID[set]++
			return stream.Mutation{Set: set, Tuple: tuple.Tuple{ID: id, Pt: randomPoint()}}
		default: // delete
			if id, ok := anyLive(set); ok {
				return stream.Mutation{Set: set, Delete: true, Tuple: tuple.Tuple{ID: id}}
			}
			return stream.Mutation{Set: set, Delete: true, Tuple: tuple.Tuple{ID: 1 << 40}}
		}
	}

	const rounds = 120
	for round := 0; round < rounds; round++ {
		batch := make([]stream.Mutation, 1+rng.Intn(8))
		for i := range batch {
			batch[i] = mutation()
		}
		h.apply(batch)
		if round%10 == 9 {
			h.checkQuiescent(round%40 == 39)
		}
	}
	h.checkQuiescent(true)

	c := h.eng.Counters()
	if c.RebalanceRuns == 0 {
		t.Fatalf("expected automatic rebalance runs, got none (counters %+v)", c)
	}
	if c.LiveR != int64(len(h.live[tuple.R])) || c.LiveS != int64(len(h.live[tuple.S])) {
		t.Fatalf("live gauges %d/%d disagree with model %d/%d",
			c.LiveR, c.LiveS, len(h.live[tuple.R]), len(h.live[tuple.S]))
	}
}

// runSkewDrift builds a stream with an optional 600-point "far block" in
// the opposite corner of the space, then injects a skew drift into a tight
// band straddling the y=1.25 border of cells (1,0)/(1,1) (tile = 1.25):
// the band starts R-heavy, an explicit rebalance locks in the agreements,
// then most R points are deleted and S floods in, inverting the local
// density ratio so the policy's decision for the band's pairs flips. It
// returns the result of the post-drift rebalance and the harness.
func runSkewDrift(t *testing.T, withFarBlock bool) (stream.BatchResult, *harness) {
	t.Helper()
	h := newHarness(t, stream.Config{
		Eps:            0.5,
		Bounds:         geom.NewRect(0, 0, 10, 10),
		GridRes:        2.5,
		Policy:         agreements.LPiB,
		RebalanceEvery: -1, // rebalance only when the test says so
	})
	if withFarBlock {
		rng := rand.New(rand.NewSource(9))
		var far []stream.Mutation
		for i := 0; i < 600; i++ {
			far = append(far, stream.Mutation{Set: tuple.Set(i % 2), Tuple: tuple.Tuple{
				ID: int64(i + 1),
				Pt: geom.Point{X: 6 + latticeCoord(rng, 4), Y: 6 + latticeCoord(rng, 4)},
			}})
		}
		h.apply(far)
	}

	// Region ids and coordinates are identical with and without the far
	// block, so any difference in migration counts between the two runs
	// can only come from far-block points being migrated.
	rng := rand.New(rand.NewSource(7))
	id := int64(10_000)
	region := func(set tuple.Set, n int) []stream.Mutation {
		var ms []stream.Mutation
		for i := 0; i < n; i++ {
			id++
			pt := geom.Point{X: 1.75 + latticeCoord(rng, 1)*0.5, Y: 1.0625 + latticeCoord(rng, 1)*0.875}
			ms = append(ms, stream.Mutation{Set: set, Tuple: tuple.Tuple{ID: id, Pt: pt}})
		}
		return ms
	}
	rIDs0 := id + 1
	h.apply(region(tuple.R, 120))
	rIDs1 := id
	h.apply(region(tuple.S, 4))
	h.eng.Rebalance()
	h.checkQuiescent(false)

	var drift []stream.Mutation
	for rid := rIDs0; rid <= rIDs1; rid++ {
		drift = append(drift, stream.Mutation{Set: tuple.R, Delete: true, Tuple: tuple.Tuple{ID: rid}})
	}
	h.apply(drift)
	h.apply(region(tuple.S, 120))
	res := h.eng.Rebalance()
	h.checkQuiescent(withFarBlock)
	return res, h
}

// TestStreamRebalanceFlipIsQuartetLocal is the acceptance check that a
// skew-drift agreement flip re-derives and migrates only the affected
// quartets' replicas rather than rebuilding the grid: the same drift is
// run with and without a 600-point far block, and because the policy's
// pair decisions depend only on the two cells of a pair, the flips and
// migrations must be identical — the far block contributes exactly zero
// migrations. Quiescent equivalence is re-checked after the flip.
func TestStreamRebalanceFlipIsQuartetLocal(t *testing.T) {
	resFar, h := runSkewDrift(t, true)
	resSolo, _ := runSkewDrift(t, false)

	if resFar.AgreementFlips == 0 {
		t.Fatalf("skew drift produced no agreement flip (rebalance result %+v)", resFar)
	}
	if resFar.Migrations == 0 {
		t.Fatalf("agreement flipped but no replicas migrated (result %+v)", resFar)
	}
	if resFar.AgreementFlips != resSolo.AgreementFlips || resFar.Migrations != resSolo.Migrations {
		t.Fatalf("far block changed rebalance work: with block flips=%d migrations=%d, without flips=%d migrations=%d — migration is not quartet-local",
			resFar.AgreementFlips, resFar.Migrations, resSolo.AgreementFlips, resSolo.Migrations)
	}
	after := h.eng.Counters()
	// Sanity-scale check for the metrics story: the drift migrated far
	// fewer replica copies than the stream holds assignments (live points
	// plus replicas), which is what a grid rebuild would re-derive.
	if volume := after.LiveR + after.LiveS + after.Replicas; resFar.Migrations >= volume {
		t.Fatalf("migrations %d not below total assignment volume %d", resFar.Migrations, volume)
	}
	t.Logf("flips=%d migrations=%d live=%d replicas=%d",
		resFar.AgreementFlips, resFar.Migrations, after.LiveR+after.LiveS, after.Replicas)
}

// TestStreamTTLExpiry drives the sliding window with a fake clock:
// expired points retract their pairs, refreshes keep a point alive past
// the original deadline, and equivalence holds after expiry.
func TestStreamTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	h := newHarness(t, stream.Config{
		Eps:    0.5,
		Bounds: geom.NewRect(0, 0, 10, 10),
		TTL:    10 * time.Second,
		Now:    func() time.Time { return now },
	})

	h.apply([]stream.Mutation{
		{Set: tuple.R, Tuple: tuple.Tuple{ID: 1, Pt: geom.Point{X: 5, Y: 5}}},
		{Set: tuple.S, Tuple: tuple.Tuple{ID: 2, Pt: geom.Point{X: 5.25, Y: 5}}},
	})
	if got := len(h.accumulated()); got != 1 {
		t.Fatalf("expected 1 live pair, got %d", got)
	}

	// Refresh R at t=6s; at t=12s the cutoff (2s) expires only S.
	now = now.Add(6 * time.Second)
	h.apply([]stream.Mutation{{Set: tuple.R, Tuple: tuple.Tuple{ID: 1, Pt: geom.Point{X: 5, Y: 5}}}})
	now = time.Unix(12, 0)
	h.eng.ExpireBefore(now.Add(-10 * time.Second))
	h.drain()
	c := h.eng.Counters()
	if c.LiveR != 1 || c.LiveS != 0 || c.Expired != 1 {
		t.Fatalf("after partial expiry: liveR=%d liveS=%d expired=%d", c.LiveR, c.LiveS, c.Expired)
	}
	delete(h.live[tuple.S], 2)
	h.checkQuiescent(false)
	if got := len(h.accumulated()); got != 0 {
		t.Fatalf("expected pair retracted after expiry, still have %d", got)
	}

	// The refreshed point expires off its new deadline: an Apply at
	// t=17s (cutoff 7s > refresh time 6s) reaps it as a side effect.
	now = time.Unix(17, 0)
	h.apply(nil)
	if c := h.eng.Counters(); c.LiveR != 0 || c.Expired != 2 {
		t.Fatalf("after full expiry: liveR=%d expired=%d", c.LiveR, c.Expired)
	}
}

// TestStreamSubscriptionLifecycle covers late subscription (no replay),
// blocking Next, and Close unblocking a waiting consumer.
func TestStreamSubscriptionLifecycle(t *testing.T) {
	eng, err := stream.New(stream.Config{Eps: 0.5, Bounds: geom.NewRect(0, 0, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Upsert(tuple.R, tuple.Tuple{ID: 1, Pt: geom.Point{X: 1, Y: 1}})
	eng.Upsert(tuple.S, tuple.Tuple{ID: 2, Pt: geom.Point{X: 1.25, Y: 1}})

	// A late subscriber sees only future deltas.
	sub := eng.Subscribe()
	if _, ok := sub.TryNext(); ok {
		t.Fatal("late subscriber replayed old deltas")
	}
	eng.Delete(tuple.S, 2)
	d, ok := sub.Next()
	if !ok || d.Op != stream.Remove || d.RID != 1 || d.SID != 2 {
		t.Fatalf("expected -pair(1,2), got %+v ok=%v", d, ok)
	}

	got := make(chan bool, 1)
	go func() {
		_, ok := sub.Next()
		got <- ok
	}()
	sub.Close()
	select {
	case ok := <-got:
		if ok {
			t.Fatal("Next returned a delta after Close on empty queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Next")
	}
	if c := eng.Counters(); c.Subscribers != 0 {
		t.Fatalf("subscription not detached: %d subscribers", c.Subscribers)
	}
}

// TestStreamConfigValidation exercises New's input checking.
func TestStreamConfigValidation(t *testing.T) {
	good := stream.Config{Eps: 0.5, Bounds: geom.NewRect(0, 0, 1, 1)}
	if _, err := stream.New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []stream.Config{
		{Eps: 0, Bounds: good.Bounds},
		{Eps: -1, Bounds: good.Bounds},
		{Eps: 0.5},
		{Eps: 0.5, Bounds: good.Bounds, GridRes: 1.5},
		{Eps: 0.5, Bounds: good.Bounds, Policy: agreements.UniR},
	}
	for i, cfg := range bad {
		if _, err := stream.New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
