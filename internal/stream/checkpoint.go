package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"time"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// Engine checkpoint format (little-endian throughout):
//
//	magic u32 "SJSE" | ver u16 | pad u16
//	eps f64 | bounds 4×f64 | gridRes f64 | policy u8 | pad 7×u8
//	ttl i64 (ns) | rebalanceEvery i64
//	10 cumulative counters i64
//	u32 nTypes | agreement type per canonical pair, 1 byte each
//	per set (R then S): u32 count, then entries sorted by (ts, id):
//	    id i64 | x f64 | y f64 | ts i64 (UnixNano) | u32 payLen | payload
//	crc u32 over everything before
//
// The snapshot stores live points and the agreement store — the
// authoritative driver-side state. Slabs, histograms, and the graph are
// deterministic functions of those and are rebuilt on Restore by
// re-inserting the points under the restored agreements.
const (
	ckMagic   = 0x45534A53 // "SJSE" little-endian
	ckVersion = 1
)

var errCkShort = errors.New("stream: truncated checkpoint")

// WriteCheckpoint serialises the engine's state. The snapshot is taken
// atomically with respect to Apply, so pairing it with the log position
// of the last applied batch gives exact at-most-once replay.
func (e *Engine) WriteCheckpoint(w io.Writer) error {
	e.mu.Lock()
	b := make([]byte, 0, 1024)
	b = binary.LittleEndian.AppendUint32(b, ckMagic)
	b = binary.LittleEndian.AppendUint16(b, ckVersion)
	b = binary.LittleEndian.AppendUint16(b, 0)
	b = appendF64(b, e.cfg.Eps)
	b = appendF64(b, e.cfg.Bounds.MinX)
	b = appendF64(b, e.cfg.Bounds.MinY)
	b = appendF64(b, e.cfg.Bounds.MaxX)
	b = appendF64(b, e.cfg.Bounds.MaxY)
	b = appendF64(b, e.cfg.GridRes)
	b = append(b, byte(e.cfg.Policy), 0, 0, 0, 0, 0, 0, 0)
	b = binary.LittleEndian.AppendUint64(b, uint64(e.cfg.TTL))
	b = binary.LittleEndian.AppendUint64(b, uint64(e.cfg.RebalanceEvery))
	for _, v := range []int64{
		e.c.Upserts, e.c.Deletes, e.c.Expired, e.c.Rejected,
		e.c.DeltasAdded, e.c.DeltasRemoved, e.c.SlabRebuilds,
		e.c.RebalanceRuns, e.c.AgreementFlips, e.c.Migrations,
	} {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(e.dg.types)))
	for _, t := range e.dg.types {
		b = append(b, byte(t))
	}
	for set := tuple.R; set <= tuple.S; set++ {
		entries := make([]*entry, 0, len(e.live[set]))
		for _, en := range e.live[set] {
			entries = append(entries, en)
		}
		sort.Slice(entries, func(i, j int) bool {
			if !entries[i].ts.Equal(entries[j].ts) {
				return entries[i].ts.Before(entries[j].ts)
			}
			return entries[i].t.ID < entries[j].t.ID
		})
		b = binary.LittleEndian.AppendUint32(b, uint32(len(entries)))
		for _, en := range entries {
			b = binary.LittleEndian.AppendUint64(b, uint64(en.t.ID))
			b = appendF64(b, en.t.Pt.X)
			b = appendF64(b, en.t.Pt.Y)
			b = binary.LittleEndian.AppendUint64(b, uint64(en.ts.UnixNano()))
			b = binary.LittleEndian.AppendUint32(b, uint32(len(en.t.Payload)))
			b = append(b, en.t.Payload...)
		}
	}
	e.mu.Unlock()
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	_, err := w.Write(b)
	return err
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// ckReader is a sticky-error cursor over a checkpoint blob.
type ckReader struct {
	b   []byte
	err error
}

func (c *ckReader) fail() {
	if c.err == nil {
		c.err = errCkShort
	}
}

func (c *ckReader) u8() byte {
	if c.err != nil || len(c.b) < 1 {
		c.fail()
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *ckReader) u16() uint16 {
	if c.err != nil || len(c.b) < 2 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v
}

func (c *ckReader) u32() uint32 {
	if c.err != nil || len(c.b) < 4 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *ckReader) u64() uint64 {
	if c.err != nil || len(c.b) < 8 {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

func (c *ckReader) i64() int64   { return int64(c.u64()) }
func (c *ckReader) f64() float64 { return math.Float64frombits(c.u64()) }

func (c *ckReader) bytes(n int) []byte {
	if c.err != nil || n < 0 || len(c.b) < n {
		c.fail()
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

// Restore rebuilds an engine from a checkpoint blob written by
// WriteCheckpoint. cfg must describe the same stream the snapshot was
// taken from (both sides derive it from the stream's durable spec); a
// mismatch is an error, not a silent re-partitioning. The restored
// engine reproduces the original's live points, agreement store,
// cumulative counters, and TTL ordering exactly.
func Restore(cfg Config, blob []byte) (*Engine, error) {
	if len(blob) < 8 {
		return nil, errCkShort
	}
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if binary.LittleEndian.Uint32(tail) != crc32.ChecksumIEEE(body) {
		return nil, errors.New("stream: checkpoint checksum mismatch")
	}
	c := &ckReader{b: body}
	if c.u32() != ckMagic {
		return nil, errors.New("stream: not an engine checkpoint")
	}
	if v := c.u16(); v != ckVersion {
		return nil, fmt.Errorf("stream: checkpoint version %d unsupported (want %d)", v, ckVersion)
	}
	c.u16() // pad

	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	eps := c.f64()
	bounds := geom.Rect{MinX: c.f64(), MinY: c.f64(), MaxX: c.f64(), MaxY: c.f64()}
	gridRes := c.f64()
	policy := agreements.Policy(c.u8())
	c.bytes(7) // pad
	ttl := time.Duration(c.i64())
	rebEvery := c.i64()
	if c.err != nil {
		return nil, c.err
	}
	if eps != e.cfg.Eps || bounds != e.cfg.Bounds || gridRes != e.cfg.GridRes ||
		policy != e.cfg.Policy || ttl != e.cfg.TTL || rebEvery != int64(e.cfg.RebalanceEvery) {
		return nil, fmt.Errorf("stream: checkpoint was taken for a different stream configuration")
	}

	var counters [10]int64
	for i := range counters {
		counters[i] = c.i64()
	}
	nTypes := int(c.u32())
	if c.err != nil {
		return nil, c.err
	}
	if nTypes != len(e.dg.types) {
		return nil, fmt.Errorf("stream: checkpoint has %d agreement slots, grid needs %d", nTypes, len(e.dg.types))
	}
	typeBytes := c.bytes(nTypes)
	if c.err != nil {
		return nil, c.err
	}
	for i, tb := range typeBytes {
		if tb > byte(tuple.S) {
			return nil, fmt.Errorf("stream: invalid agreement type %d at slot %d", tb, i)
		}
		e.dg.types[i] = tuple.Set(tb)
	}
	// Rebuild the graph from the restored agreement store before any
	// insert, so every point is assigned exactly as the original engine
	// would assign it under those agreements.
	e.dg.graph = agreements.BuildFromTypeFunc(e.dg.g, e.dg.typeBetween)

	for set := tuple.R; set <= tuple.S; set++ {
		n := int(c.u32())
		if c.err != nil {
			return nil, c.err
		}
		if n > len(c.b)/28 { // id + x + y + ts + payLen lower bound
			return nil, errCkShort
		}
		var prev time.Time
		for i := 0; i < n; i++ {
			id := c.i64()
			pt := geom.Point{X: c.f64(), Y: c.f64()}
			ts := time.Unix(0, c.i64())
			pay := c.bytes(int(c.u32()))
			if c.err != nil {
				return nil, c.err
			}
			if i > 0 && ts.Before(prev) {
				return nil, errors.New("stream: checkpoint entries out of TTL order")
			}
			prev = ts
			if badPoint(pt) {
				return nil, fmt.Errorf("stream: checkpoint point %d is not finite", id)
			}
			t := tuple.Tuple{ID: id, Pt: pt}
			if len(pay) > 0 {
				t.Payload = append([]byte(nil), pay...)
			}
			e.upsertLocked(set, t, ts)
		}
	}
	if len(c.b) != 0 {
		return nil, fmt.Errorf("stream: %d trailing bytes after checkpoint", len(c.b))
	}

	// Re-inserting emitted cross-set deltas and bumped counters; there
	// are no subscribers yet, so drop the deltas and overwrite the
	// cumulative counters with the snapshot's (Replicas and the live
	// gauges were recomputed by the inserts themselves).
	e.pending = e.pending[:0]
	e.dirty = map[int]struct{}{}
	e.sinceReb = 0
	e.c.Upserts = counters[0]
	e.c.Deletes = counters[1]
	e.c.Expired = counters[2]
	e.c.Rejected = counters[3]
	e.c.DeltasAdded = counters[4]
	e.c.DeltasRemoved = counters[5]
	e.c.SlabRebuilds = counters[6]
	e.c.RebalanceRuns = counters[7]
	e.c.AgreementFlips = counters[8]
	e.c.Migrations = counters[9]
	return e, nil
}
