// Package stream is the incremental streaming join engine: a long-running
// continuous ε-distance join over live point streams that maintains the
// paper's structures — grid, per-cell histograms, graph of agreements,
// per-cell sweep slabs — incrementally, and emits delta result pairs
// (+pair when a qualifying pair appears, -pair when one disappears) as
// points are upserted, deleted, or expired.
//
// Where the batch pipeline re-derives everything from a sample per join,
// the engine keeps one invariant alive across mutations: under a
// consistent resolved graph of agreements, every qualifying pair (r, s)
// is co-located in exactly one grid cell (the paper's correctness +
// duplicate-freeness results, Corollary 4.6 and Lemma 4.8). Inserting a
// point therefore only has to probe the cells the current graph assigns
// it to, and each new pair is discovered exactly once; deleting a point
// probes the same cells and retracts each of its pairs exactly once. At
// any quiescent moment the accumulated deltas equal the from-scratch
// batch join of the live points.
//
// Skew drift is handled by a rebalancer: exact live histograms (not
// samples) are maintained per cell, and when the policy's agreement
// decision for a cell pair flips, the engine atomically rebuilds just the
// subgraphs containing that pair and migrates only the replicas whose
// assignment changed — never the whole grid. Replica migration emits no
// deltas: the qualifying pair set is invariant under a consistent
// agreement change; only the co-location cells move.
package stream

import "sync"

// Op is the polarity of a delta: a pair appearing or disappearing.
type Op int8

const (
	// Add reports a pair that started qualifying (+pair).
	Add Op = +1
	// Remove reports a pair that stopped qualifying (-pair).
	Remove Op = -1
)

// String returns "+" or "-".
func (o Op) String() string {
	if o == Add {
		return "+"
	}
	return "-"
}

// Delta is one incremental join result: the pair (RID, SID) started or
// stopped satisfying d(r, s) <= ε.
type Delta struct {
	Op  Op
	RID int64
	SID int64
}

// Subscription is one subscriber's unbounded ordered delta queue. The
// engine appends under its own lock; consumers drain with Next, which
// blocks until a delta arrives or the subscription is closed. The queue
// is unbounded so a slow consumer can never block the ingest path — the
// serving layer bounds exposure by closing subscriptions whose clients
// disconnect.
type Subscription struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Delta
	closed bool

	cancel func() // detaches from the engine; idempotent
}

func newSubscription() *Subscription {
	s := &Subscription{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push appends deltas to the queue. Called by the engine.
func (s *Subscription) push(ds []Delta) {
	if len(ds) == 0 {
		return
	}
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, ds...)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Next blocks until a delta is available and returns it. The second
// result is false once the subscription is closed and drained.
func (s *Subscription) Next() (Delta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return Delta{}, false
	}
	d := s.queue[0]
	s.queue = s.queue[1:]
	return d, true
}

// TryNext returns the next delta without blocking; ok is false when the
// queue is currently empty (the subscription may still be open).
func (s *Subscription) TryNext() (Delta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return Delta{}, false
	}
	d := s.queue[0]
	s.queue = s.queue[1:]
	return d, true
}

// Pending returns the number of queued, undelivered deltas.
func (s *Subscription) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Close detaches the subscription from the engine and unblocks Next.
// Queued deltas remain drainable; Close is idempotent.
func (s *Subscription) Close() {
	if s.cancel != nil {
		s.cancel()
	}
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
