package stream

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// TestStreamSlabMaintenance hammers one slab with random inserts and
// removes against a map model, checking probes and lazy compaction.
func TestStreamSlabMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s slab
	model := map[int64]tuple.Tuple{}
	const eps = 0.5
	for op := 0; op < 4000; op++ {
		if rng.Intn(3) > 0 || len(model) == 0 {
			id := int64(rng.Intn(300))
			if _, ok := model[id]; ok {
				s.remove(id) // slab ids are unique: replace = remove + insert
			}
			tp := tuple.Tuple{ID: id, Pt: geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}}
			s.insert(tp)
			model[id] = tp
		} else {
			for id := range model {
				s.remove(id)
				delete(model, id)
				break
			}
		}
		if op%97 == 0 {
			p := geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}
			got := map[int64]bool{}
			s.probe(p, eps, func(m tuple.Tuple) {
				if got[m.ID] {
					t.Fatalf("probe reported id %d twice", m.ID)
				}
				got[m.ID] = true
			})
			for id, m := range model {
				if want := p.SqDist(m.Pt) <= eps*eps; want != got[id] {
					t.Fatalf("op %d: probe mismatch for id %d: got %v want %v", op, id, got[id], want)
				}
			}
			if len(got) > len(model) {
				t.Fatalf("probe reported %d tuples, only %d live", len(got), len(model))
			}
		}
	}
	if s.len() != len(model) {
		t.Fatalf("slab len %d, model %d", s.len(), len(model))
	}
	contents := s.contents()
	if !sort.SliceIsSorted(contents, func(i, j int) bool { return contents[i].Pt.X < contents[j].Pt.X }) {
		t.Fatal("contents not sorted by x")
	}
	if len(contents) != len(model) {
		t.Fatalf("contents %d tuples, model %d", len(contents), len(model))
	}
	if s.dirty() != 0 {
		t.Fatalf("dirty after contents(): %d", s.dirty())
	}
}

// TestStreamSlabTombstoneReinsert covers the tombstone-then-reinsert path
// that forces an early compaction to keep ids unique.
func TestStreamSlabTombstoneReinsert(t *testing.T) {
	var s slab
	for i := int64(0); i < 64; i++ {
		s.insert(tuple.Tuple{ID: i, Pt: geom.Point{X: float64(i), Y: 0}})
	}
	s.compact()
	s.remove(7) // in base → tombstone
	if len(s.tombs) != 1 {
		t.Fatalf("expected 1 tombstone, got %d", len(s.tombs))
	}
	s.insert(tuple.Tuple{ID: 7, Pt: geom.Point{X: 99, Y: 0}})
	found := 0
	s.probe(geom.Point{X: 99, Y: 0}, 0.1, func(m tuple.Tuple) {
		if m.ID == 7 {
			found++
		}
	})
	if found != 1 {
		t.Fatalf("reinserted id 7 found %d times", found)
	}
	if s.len() != 64 {
		t.Fatalf("len = %d, want 64", s.len())
	}
}
