package stream_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/stream"
	"spatialjoin/internal/tuple"
)

func ckptConfig(now func() time.Time) stream.Config {
	return stream.Config{
		Eps:            0.5,
		Bounds:         geom.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8},
		GridRes:        2,
		Policy:         agreements.LPiB,
		RebalanceEvery: 8,
		Now:            now,
	}
}

func randomBatch(rng *rand.Rand, n int) []stream.Mutation {
	batch := make([]stream.Mutation, 0, n)
	for i := 0; i < n; i++ {
		m := stream.Mutation{
			Set: tuple.Set(rng.Intn(2)),
			Tuple: tuple.Tuple{
				ID: int64(rng.Intn(200)),
				Pt: geom.Point{X: float64(rng.Intn(129)) / 16, Y: float64(rng.Intn(129)) / 16},
			},
		}
		if rng.Intn(5) == 0 {
			m.Delete = true
		}
		batch = append(batch, m)
	}
	return batch
}

// TestStreamCheckpointRoundTrip drives an engine, snapshots it, restores
// the snapshot into a fresh engine, and then feeds both the original and
// the restored engine the same further batches: result sets and counters
// must stay identical throughout — a restored engine is observationally
// equivalent to one that never stopped.
func TestStreamCheckpointRoundTrip(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	orig, err := stream.New(ckptConfig(now))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer orig.Close()

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 30; i++ {
		clock = clock.Add(time.Second)
		orig.Apply(randomBatch(rng, 16))
	}

	var blob bytes.Buffer
	if err := orig.WriteCheckpoint(&blob); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	restored, err := stream.Restore(ckptConfig(now), blob.Bytes())
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer restored.Close()

	if got, want := sortedPairs(restored.CurrentPairs()), sortedPairs(orig.CurrentPairs()); len(got) != len(want) {
		t.Fatalf("restored pairs %d, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("restored pair %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
	if oc, rc := orig.Counters(), restored.Counters(); oc != rc {
		t.Fatalf("restored counters %+v, want %+v", rc, oc)
	}

	// Both engines now process the same continuation.
	for i := 0; i < 20; i++ {
		clock = clock.Add(time.Second)
		batch := randomBatch(rng, 16)
		ob := orig.Apply(batch)
		rb := restored.Apply(batch)
		// Structural counters (slab rebuilds, migrations) may differ —
		// internal layout is not part of the snapshot contract — but the
		// result-visible ones must match exactly.
		if ob.Upserts != rb.Upserts || ob.Deletes != rb.Deletes || ob.Rejected != rb.Rejected ||
			ob.DeltasAdded != rb.DeltasAdded || ob.DeltasRemoved != rb.DeltasRemoved {
			t.Fatalf("batch %d diverged: orig %+v restored %+v", i, ob, rb)
		}
		got, want := sortedPairs(restored.CurrentPairs()), sortedPairs(orig.CurrentPairs())
		if len(got) != len(want) {
			t.Fatalf("batch %d: restored pairs %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("batch %d: pair %d = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestStreamCheckpointRejects covers the refusal paths: corrupt blobs and
// config drift must fail loudly instead of restoring a wrong engine.
func TestStreamCheckpointRejects(t *testing.T) {
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	eng, err := stream.New(ckptConfig(now))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer eng.Close()
	eng.Apply([]stream.Mutation{
		{Set: tuple.R, Tuple: tuple.Tuple{ID: 1, Pt: geom.Point{X: 1, Y: 1}}},
		{Set: tuple.S, Tuple: tuple.Tuple{ID: 2, Pt: geom.Point{X: 1.25, Y: 1}}},
	})
	var blob bytes.Buffer
	if err := eng.WriteCheckpoint(&blob); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	good := blob.Bytes()

	if _, err := stream.Restore(ckptConfig(now), nil); err == nil {
		t.Fatal("Restore accepted an empty blob")
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x01
	if _, err := stream.Restore(ckptConfig(now), flipped); err == nil {
		t.Fatal("Restore accepted a corrupt blob")
	}
	truncated := good[:len(good)-5]
	if _, err := stream.Restore(ckptConfig(now), truncated); err == nil {
		t.Fatal("Restore accepted a truncated blob")
	}
	drifted := ckptConfig(now)
	drifted.Eps = 0.75
	if _, err := stream.Restore(drifted, good); err == nil {
		t.Fatal("Restore accepted a snapshot taken under a different eps")
	}
}
