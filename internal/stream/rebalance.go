package stream

import (
	"slices"

	"spatialjoin/internal/grid"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/tuple"
)

// rebalanceLocked is the agreement drift scan. It visits every cell whose
// histogram changed since the last scan, re-evaluates the policy for each
// of its adjacent cell pairs against the exact live statistics, and for
// every pair whose decision flipped commits the new type: the subgraphs
// containing the pair are rebuilt (types from the store, Algorithm 1's
// marking/locking re-run with live weights) and only the replicas of the
// rebuilt quartets' member cells are migrated. The grid, slabs of
// unaffected cells, and all other subgraphs are untouched.
//
// Flips are decided before any is applied: committing a flip does not
// change the statistics, so the desired types are independent of
// application order and one scan converges in a single pass.
func (e *Engine) rebalanceLocked() {
	sp := e.cfg.Tracer.Start(0, obs.SpanRebalance)
	sp.SetInt("dirty_cells", int64(len(e.dirty)))
	defer sp.End()
	e.c.RebalanceRuns++
	if len(e.dirty) == 0 {
		return
	}
	type flipRec struct {
		ci   int
		dir  grid.Dir
		want tuple.Set
	}
	var flips []flipRec
	checked := map[int]struct{}{}
	for ci := range e.dirty {
		cx, cy := e.dg.g.CellCoords(ci)
		for dir := grid.Dir(0); dir < grid.NumDirs; dir++ {
			cj := e.dg.g.Neighbor(cx, cy, dir)
			if cj == grid.NoCell {
				continue
			}
			// Canonicalise (ci, dir) so each unordered pair is
			// examined once even when both endpoints are dirty.
			cc, cd := ci, dir
			if canonSlot(cd) < 0 {
				cc, cd = cj, dir.Opposite()
			}
			key := cc*4 + canonSlot(cd)
			if _, done := checked[key]; done {
				continue
			}
			checked[key] = struct{}{}
			if want := e.dg.desiredType(cc, cd); want != e.dg.currentType(cc, cd) {
				flips = append(flips, flipRec{ci: cc, dir: cd, want: want})
			}
		}
	}
	e.dirty = map[int]struct{}{}
	// Apply in canonical pair order: the final graph is order-independent,
	// but the count of replica copies moved through intermediate states is
	// not — a deterministic order makes rebalance work reproducible.
	slices.SortFunc(flips, func(a, b flipRec) int {
		return (a.ci*4 + canonSlot(a.dir)) - (b.ci*4 + canonSlot(b.dir))
	})
	sp.SetInt("flips", int64(len(flips)))
	for _, f := range flips {
		e.flipLocked(f.ci, f.dir, f.want)
	}
}

// flipLocked commits one pair flip: rebuild the subgraphs containing the
// pair, then re-derive the assignment of every point native to a rebuilt
// quartet's member cell — the only points whose replication consults the
// rebuilt subgraphs — and move the changed replica copies between slabs.
//
// Migration is silent (no deltas): both the old and the new graph are
// consistent, so the qualifying pair set is unchanged (Corollary 4.6);
// only the cell in which each pair is co-located may move.
func (e *Engine) flipLocked(ci int, dir grid.Dir, want tuple.Set) {
	qs := e.dg.flip(ci, dir, want)
	e.c.AgreementFlips++
	affected := map[int]struct{}{}
	for _, q := range qs {
		for _, c := range e.dg.g.QuartetCells(q[0], q[1]) {
			if c != grid.NoCell {
				affected[c] = struct{}{}
			}
		}
	}
	for c := range affected {
		for set := tuple.R; set <= tuple.S; set++ {
			for id := range e.cells[c].natives[set] {
				e.migrateLocked(set, e.live[set][id])
			}
		}
	}
}

// migrateLocked recomputes one live point's assignment under the current
// graph and applies the difference to the slabs without emitting deltas.
// The native cell (Locate of the point) never changes; only dedicated
// replica targets can.
func (e *Engine) migrateLocked(set tuple.Set, en *entry) {
	newCells := e.dg.assign(en.t.Pt, set, e.scratch[:0])
	e.scratch = newCells
	moved := 0
	for _, oc := range en.cells {
		if !containsInt(newCells, int(oc)) {
			cs := &e.cells[oc]
			cs.slabs[set].remove(en.t.ID)
			if cs.slabs[set].needsCompaction() {
				e.compactSlab(&cs.slabs[set], set, int(oc))
			}
			moved++
		}
	}
	for _, nc := range newCells {
		if !containsInt32(en.cells, nc) {
			e.cells[nc].slabs[set].insert(en.t)
			if e.cells[nc].slabs[set].needsCompaction() {
				e.compactSlab(&e.cells[nc].slabs[set], set, nc)
			}
			moved++
		}
	}
	if moved == 0 {
		return
	}
	e.c.Migrations += int64(moved)
	e.c.Replicas += int64(len(newCells) - len(en.cells))
	if cap(en.cells) >= len(newCells) {
		en.cells = en.cells[:len(newCells)]
	} else {
		en.cells = make([]int32, len(newCells))
	}
	for i, c := range newCells {
		en.cells[i] = int32(c)
	}
}

// compactSlab recompacts one cell's slab under a compaction span, so
// streams can attribute pause time to slab maintenance.
func (e *Engine) compactSlab(s *slab, set tuple.Set, cell int) {
	sp := e.cfg.Tracer.Start(0, obs.SpanCompact)
	sp.SetInt("cell", int64(cell)).SetInt("set", int64(set))
	s.compact()
	e.c.SlabRebuilds++
	sp.End()
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func containsInt32(xs []int32, x int) bool {
	for _, v := range xs {
		if int(v) == x {
			return true
		}
	}
	return false
}
