package stream

import (
	"fmt"
	"math"
	"sync"
	"time"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/colsweep"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/tuple"
)

// Config tunes a streaming join engine. Eps and Bounds are required: a
// stream has no materialised input to infer the data-space MBR from, so
// the caller declares it up front (points outside are clamped into the
// border cells, which keeps the join correct at the cost of some extra
// replication there).
type Config struct {
	// Eps is the join distance threshold (required, > 0).
	Eps float64
	// Bounds is the data-space MBR the grid covers (required, non-empty).
	Bounds geom.Rect
	// GridRes is the resolution multiplier (cell side = GridRes·ε);
	// 2 when zero. Must be >= 2: the engine always runs the adaptive
	// algorithms, which require l >= 2ε. At exactly 2 the closed ε-strips
	// of opposite borders meet on a cell's centre lines, and a point lying
	// exactly on one (measure zero for continuous data) is classified into
	// a single replication area — the same convention as the batch
	// pipeline. Streams whose points snap to a lattice that can hit centre
	// lines exactly should use GridRes > 2.
	GridRes float64
	// Policy selects the agreement policy re-evaluated by the rebalancer
	// (LPiB by default).
	Policy agreements.Policy
	// TTL, when positive, expires points that have not been re-upserted
	// for this long — a sliding-window join. Expiry runs on every Apply
	// and on explicit ExpireBefore calls.
	TTL time.Duration
	// RebalanceEvery is the number of mutations between agreement-drift
	// scans; 256 when zero, negative disables automatic rebalancing
	// (explicit Rebalance calls still work).
	RebalanceEvery int
	// Now is the clock used for TTL bookkeeping; time.Now when nil.
	Now func() time.Time
	// Tracer, when non-nil, records a span per rebalance cycle and slab
	// compaction. The tracer's span cap (obs.DefaultLimit unless raised
	// with SetLimit) bounds memory on long-lived streams; nil costs
	// nothing.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.GridRes == 0 {
		c.GridRes = 2
	}
	if c.RebalanceEvery == 0 {
		c.RebalanceEvery = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Mutation is one stream event: an upsert (insert, or move/refresh of an
// existing id) or a delete of a point in one input set.
type Mutation struct {
	Set    tuple.Set
	Delete bool
	Tuple  tuple.Tuple // for deletes only the ID is consulted
}

// Counters is a snapshot of the engine's cumulative and live statistics.
type Counters struct {
	Upserts, Deletes, Expired int64 // mutations applied
	Rejected                  int64 // malformed mutations skipped
	DeltasAdded               int64 // +pair deltas emitted
	DeltasRemoved             int64 // -pair deltas emitted
	SlabRebuilds              int64 // per-cell sweep slabs recompacted
	RebalanceRuns             int64 // drift scans executed
	AgreementFlips            int64 // cell-pair agreements re-decided
	Migrations                int64 // replica copies moved by flips

	LiveR, LiveS int64 // live points per set
	Replicas     int64 // current replica copies beyond native cells
	Subscribers  int64
}

// BatchResult reports what one Apply (or Rebalance/ExpireBefore) did, as
// the difference of the cumulative counters around the call.
type BatchResult struct {
	Upserts, Deletes, Expired, Rejected int64
	DeltasAdded, DeltasRemoved          int64
	SlabRebuilds                        int64
	RebalanceRuns, AgreementFlips       int64
	Migrations                          int64
}

// entry is one live point: its tuple, the cells the graph currently
// assigns it to (native first — kept in lockstep with the graph by the
// rebalancer's migrations), and its TTL arrival time.
type entry struct {
	t     tuple.Tuple
	cells []int32
	ts    time.Time
}

// cellState is one grid cell's live contents: a sweep slab and the set
// of native point ids per input set (replicas live in the slabs only).
type cellState struct {
	slabs   [2]slab
	natives [2]map[int64]struct{}
}

// ttlRec is one TTL queue record; a refresh enqueues a newer record and
// the stale one is skipped at expiry (lazy deletion).
type ttlRec struct {
	id int64
	ts time.Time
}

// Engine is the incremental streaming ε-join: it ingests point upserts
// and deletes for R and S, maintains the paper's structures delta-wise,
// and emits +pair/-pair deltas to subscribers. All methods are safe for
// concurrent use; mutations are serialised so subscribers observe one
// total delta order.
type Engine struct {
	cfg Config

	mu       sync.Mutex // guards every field below
	dg       *deltaGrid
	cells    []cellState
	live     [2]map[int64]*entry
	ttlq     [2][]ttlRec
	dirty    map[int]struct{} // cells whose histograms changed since the last drift scan
	sinceReb int
	subs     map[*Subscription]struct{}
	c        Counters
	pending  []Delta // deltas of the in-progress operation, flushed on unlock
	scratch  []int
}

// New builds an engine over an empty stream.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Eps <= 0 || math.IsNaN(cfg.Eps) || math.IsInf(cfg.Eps, 0) {
		return nil, fmt.Errorf("stream: Config.Eps must be positive and finite, got %v", cfg.Eps)
	}
	if cfg.Bounds.IsEmpty() || cfg.Bounds.Width() <= 0 || cfg.Bounds.Height() <= 0 {
		return nil, fmt.Errorf("stream: Config.Bounds %+v must have positive extent", cfg.Bounds)
	}
	if cfg.GridRes < 2 {
		return nil, fmt.Errorf("stream: Config.GridRes %v violates the l >= 2ε requirement of adaptive replication", cfg.GridRes)
	}
	switch cfg.Policy {
	case agreements.LPiB, agreements.DIFF:
	default:
		return nil, fmt.Errorf("stream: unsupported policy %v (LPiB or DIFF)", cfg.Policy)
	}
	dg := newDeltaGrid(cfg.Bounds, cfg.Eps, cfg.GridRes, cfg.Policy)
	return &Engine{
		cfg:   cfg,
		dg:    dg,
		cells: make([]cellState, dg.g.NumCells()),
		live:  [2]map[int64]*entry{{}, {}},
		dirty: map[int]struct{}{},
		subs:  map[*Subscription]struct{}{},
	}, nil
}

// Eps returns the join distance threshold.
func (e *Engine) Eps() float64 { return e.cfg.Eps }

// Grid returns the engine's grid (shape diagnostics; do not mutate).
func (e *Engine) Grid() *grid.Grid { return e.dg.g }

// Counters returns a snapshot of the engine's statistics.
func (e *Engine) Counters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.countersLocked()
}

func (e *Engine) countersLocked() Counters {
	c := e.c
	c.LiveR = int64(len(e.live[tuple.R]))
	c.LiveS = int64(len(e.live[tuple.S]))
	c.Subscribers = int64(len(e.subs))
	return c
}

// Subscribe attaches a new delta subscriber. Deltas emitted after this
// call are queued for it in emission order; pair it with Close.
func (e *Engine) Subscribe() *Subscription {
	s, _ := e.subscribe(false)
	return s
}

// SubscribeWithSnapshot atomically materialises the current result set and
// attaches a subscriber: the returned pairs plus the subscription's future
// deltas reconstruct the live result set with no gap and no overlap —
// the consistent hand-off for late subscribers.
func (e *Engine) SubscribeWithSnapshot() (*Subscription, []tuple.Pair) {
	return e.subscribe(true)
}

func (e *Engine) subscribe(withSnapshot bool) (*Subscription, []tuple.Pair) {
	s := newSubscription()
	e.mu.Lock()
	var snap []tuple.Pair
	if withSnapshot {
		snap = e.currentPairsLocked()
	}
	e.subs[s] = struct{}{}
	e.mu.Unlock()
	s.cancel = func() {
		e.mu.Lock()
		delete(e.subs, s)
		e.mu.Unlock()
	}
	return s, snap
}

// Close closes every subscription and detaches them from the engine. The
// engine itself remains usable; Close is how a serving layer tears down a
// stream's consumers when the stream is deleted.
func (e *Engine) Close() {
	e.mu.Lock()
	subs := make([]*Subscription, 0, len(e.subs))
	for s := range e.subs {
		subs = append(subs, s)
	}
	e.subs = map[*Subscription]struct{}{}
	e.mu.Unlock()
	for _, s := range subs {
		s.Close()
	}
}

// Upsert inserts, moves, or refreshes one point of set.
func (e *Engine) Upsert(set tuple.Set, t tuple.Tuple) BatchResult {
	return e.Apply([]Mutation{{Set: set, Tuple: t}})
}

// Delete removes one point of set by id (a no-op for unknown ids).
func (e *Engine) Delete(set tuple.Set, id int64) BatchResult {
	return e.Apply([]Mutation{{Set: set, Delete: true, Tuple: tuple.Tuple{ID: id}}})
}

// Apply ingests a batch of mutations atomically with respect to
// subscribers and snapshots: TTL expiry runs first, then each mutation
// in order, then (every Config.RebalanceEvery mutations) the agreement
// drift scan. Emitted deltas are flushed to subscribers once, after the
// whole batch.
func (e *Engine) Apply(batch []Mutation) BatchResult {
	e.mu.Lock()
	before := e.c
	if e.cfg.TTL > 0 {
		e.expireLocked(e.cfg.Now().Add(-e.cfg.TTL))
	}
	now := e.cfg.Now()
	for _, m := range batch {
		if m.Delete {
			if e.deleteLocked(m.Set, m.Tuple.ID) {
				e.c.Deletes++
			}
			e.sinceReb++
			continue
		}
		if badPoint(m.Tuple.Pt) {
			e.c.Rejected++
			continue
		}
		e.upsertLocked(m.Set, m.Tuple, now)
		e.c.Upserts++
		e.sinceReb++
	}
	if e.cfg.RebalanceEvery > 0 && e.sinceReb >= e.cfg.RebalanceEvery {
		e.rebalanceLocked()
		e.sinceReb = 0
	}
	res := diffCounters(before, e.c)
	e.flushLocked()
	e.mu.Unlock()
	return res
}

// Rebalance runs the agreement drift scan immediately: every cell whose
// histogram changed since the last scan has its pairs re-decided, and
// each flipped pair's quartets are rebuilt and migrated.
func (e *Engine) Rebalance() BatchResult {
	e.mu.Lock()
	before := e.c
	e.rebalanceLocked()
	e.sinceReb = 0
	res := diffCounters(before, e.c)
	e.flushLocked()
	e.mu.Unlock()
	return res
}

// ExpireBefore removes every live point last upserted before cutoff,
// emitting -pair deltas for the pairs that disappear. It works with or
// without a configured TTL (without one, arrival times are still
// recorded only when TTL > 0, so it is then a no-op).
func (e *Engine) ExpireBefore(cutoff time.Time) BatchResult {
	e.mu.Lock()
	before := e.c
	e.expireLocked(cutoff)
	res := diffCounters(before, e.c)
	e.flushLocked()
	e.mu.Unlock()
	return res
}

// CurrentPairs returns the quiescent result set: the ε-join of the live
// points, materialised by sweeping every cell's slabs. Under the graph's
// co-location invariant each qualifying pair is produced by exactly one
// cell, so the output is duplicate-free and must equal the accumulated
// deltas — the correctness anchor of the engine's tests — and serves as
// the initial snapshot for late subscribers.
func (e *Engine) CurrentPairs() []tuple.Pair {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.currentPairsLocked()
}

func (e *Engine) currentPairsLocked() []tuple.Pair {
	var out []tuple.Pair
	bufs := colsweep.Get()
	defer colsweep.Put(bufs)
	bat := bufs.Batch(func(ps []tuple.Pair) {
		out = append(out, ps...)
	}, false)
	for i := range e.cells {
		cs := &e.cells[i]
		rs := cs.slabs[tuple.R].sorted()
		ss := cs.slabs[tuple.S].sorted()
		if rs.Len() == 0 || ss.Len() == 0 {
			continue
		}
		colsweep.SweepSorted(rs, ss, e.cfg.Eps, bat)
	}
	bat.Flush()
	return out
}

// --- locked internals -------------------------------------------------

func badPoint(p geom.Point) bool {
	return math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0)
}

func (e *Engine) upsertLocked(set tuple.Set, t tuple.Tuple, now time.Time) {
	if old, ok := e.live[set][t.ID]; ok {
		if old.t.Pt == t.Pt {
			// Pure refresh: position unchanged, no deltas, just payload
			// and TTL bookkeeping.
			old.t = t
			old.ts = now
			if e.cfg.TTL > 0 {
				e.ttlq[set] = append(e.ttlq[set], ttlRec{id: t.ID, ts: now})
			}
			return
		}
		e.removeEntryLocked(set, old)
	}
	cells := e.dg.assign(t.Pt, set, e.scratch[:0])
	e.scratch = cells
	en := &entry{t: t, cells: make([]int32, len(cells)), ts: now}
	for i, c := range cells {
		en.cells[i] = int32(c)
	}
	other := set.Other()
	for _, c := range cells {
		cs := &e.cells[c]
		cs.slabs[other].probe(t.Pt, e.cfg.Eps, func(m tuple.Tuple) {
			e.emitLocked(Add, set, t.ID, m.ID)
		})
		cs.slabs[set].insert(t)
		if cs.slabs[set].needsCompaction() {
			e.compactSlab(&cs.slabs[set], set, c)
		}
	}
	native := cells[0]
	if e.cells[native].natives[set] == nil {
		e.cells[native].natives[set] = map[int64]struct{}{}
	}
	e.cells[native].natives[set][t.ID] = struct{}{}
	e.dg.stats.Add(set, t.Pt)
	e.dirty[native] = struct{}{}
	e.live[set][t.ID] = en
	e.c.Replicas += int64(len(cells) - 1)
	if e.cfg.TTL > 0 {
		e.ttlq[set] = append(e.ttlq[set], ttlRec{id: t.ID, ts: now})
	}
}

func (e *Engine) deleteLocked(set tuple.Set, id int64) bool {
	en, ok := e.live[set][id]
	if !ok {
		return false
	}
	e.removeEntryLocked(set, en)
	return true
}

// removeEntryLocked retracts a live point: -pair deltas for every pair
// it participates in (probed in its assigned cells, where each pair is
// co-located exactly once), slab removal, histogram and index upkeep.
func (e *Engine) removeEntryLocked(set tuple.Set, en *entry) {
	other := set.Other()
	id := en.t.ID
	for _, c32 := range en.cells {
		cs := &e.cells[c32]
		cs.slabs[set].remove(id)
		cs.slabs[other].probe(en.t.Pt, e.cfg.Eps, func(m tuple.Tuple) {
			e.emitLocked(Remove, set, id, m.ID)
		})
		if cs.slabs[set].needsCompaction() {
			e.compactSlab(&cs.slabs[set], set, int(c32))
		}
	}
	native := int(en.cells[0])
	delete(e.cells[native].natives[set], id)
	e.dg.stats.Remove(set, en.t.Pt)
	e.dirty[native] = struct{}{}
	delete(e.live[set], id)
	e.c.Replicas -= int64(len(en.cells) - 1)
}

func (e *Engine) expireLocked(cutoff time.Time) {
	for set := tuple.R; set <= tuple.S; set++ {
		q := e.ttlq[set]
		for len(q) > 0 && q[0].ts.Before(cutoff) {
			rec := q[0]
			q = q[1:]
			if en, ok := e.live[set][rec.id]; ok && !en.ts.After(rec.ts) {
				e.removeEntryLocked(set, en)
				e.c.Expired++
			}
		}
		e.ttlq[set] = q
	}
}

// emitLocked buffers one delta, oriented so RID always names the R-side
// tuple regardless of which set mutated.
func (e *Engine) emitLocked(op Op, mutated tuple.Set, mutatedID, partnerID int64) {
	d := Delta{Op: op, RID: mutatedID, SID: partnerID}
	if mutated == tuple.S {
		d.RID, d.SID = partnerID, mutatedID
	}
	e.pending = append(e.pending, d)
	if op == Add {
		e.c.DeltasAdded++
	} else {
		e.c.DeltasRemoved++
	}
}

// flushLocked hands the operation's buffered deltas to every subscriber.
func (e *Engine) flushLocked() {
	if len(e.pending) == 0 {
		return
	}
	for s := range e.subs {
		s.push(e.pending)
	}
	e.pending = e.pending[:0]
}

func diffCounters(before, after Counters) BatchResult {
	return BatchResult{
		Upserts:        after.Upserts - before.Upserts,
		Deletes:        after.Deletes - before.Deletes,
		Expired:        after.Expired - before.Expired,
		Rejected:       after.Rejected - before.Rejected,
		DeltasAdded:    after.DeltasAdded - before.DeltasAdded,
		DeltasRemoved:  after.DeltasRemoved - before.DeltasRemoved,
		SlabRebuilds:   after.SlabRebuilds - before.SlabRebuilds,
		RebalanceRuns:  after.RebalanceRuns - before.RebalanceRuns,
		AgreementFlips: after.AgreementFlips - before.AgreementFlips,
		Migrations:     after.Migrations - before.Migrations,
	}
}
