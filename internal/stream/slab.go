package stream

import (
	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// Slab compaction policy: a slab is rebuilt (tail merged, tombstones
// dropped, re-sorted) once its dirty part — pending inserts plus
// tombstones — exceeds dirtyFraction of the sorted base, but never before
// minDirty mutations, so small cells absorb churn without re-sorting.
const (
	dirtyFraction = 0.25
	minDirty      = 32
)

// slab is one cell's maintained sweep structure for one input set: a
// sorted-by-x base (the lazily rebuilt part), an unsorted tail of recent
// inserts, and tombstones for deletions that still sit in the base.
// Probes run against the base in O(log n + ε-window) via the sweep
// package's incremental entry point, plus a linear scan of the small
// tail.
type slab struct {
	base  []tuple.Tuple      // sorted by ascending x
	tail  []tuple.Tuple      // unsorted recent inserts
	tombs map[int64]struct{} // ids deleted but still present in base
}

// insert adds t to the slab. A tombstoned re-insert of the same id first
// resolves the tombstone by compacting, keeping ids unique per slab.
func (s *slab) insert(t tuple.Tuple) {
	if _, dead := s.tombs[t.ID]; dead {
		s.compact()
	}
	s.tail = append(s.tail, t)
}

// remove deletes the tuple with the given id, preferring an in-place
// tail removal and falling back to a tombstone against the base.
func (s *slab) remove(id int64) {
	for i := range s.tail {
		if s.tail[i].ID == id {
			s.tail[i] = s.tail[len(s.tail)-1]
			s.tail = s.tail[:len(s.tail)-1]
			return
		}
	}
	if s.tombs == nil {
		s.tombs = map[int64]struct{}{}
	}
	s.tombs[id] = struct{}{}
}

// probe reports every live tuple of the slab within eps of p.
func (s *slab) probe(p geom.Point, eps float64, emit func(tuple.Tuple)) {
	if len(s.tombs) == 0 {
		sweep.ProbeSorted(s.base, p, eps, emit)
	} else {
		sweep.ProbeSorted(s.base, p, eps, func(t tuple.Tuple) {
			if _, dead := s.tombs[t.ID]; !dead {
				emit(t)
			}
		})
	}
	eps2 := eps * eps
	for _, t := range s.tail {
		if p.SqDist(t.Pt) <= eps2 {
			emit(t)
		}
	}
}

// dirty returns the size of the unsorted/tombstoned part.
func (s *slab) dirty() int { return len(s.tail) + len(s.tombs) }

// len returns the number of live tuples.
func (s *slab) len() int { return len(s.base) - len(s.tombs) + len(s.tail) }

// needsCompaction reports whether the dirty part crossed the threshold.
func (s *slab) needsCompaction() bool {
	d := s.dirty()
	if d < minDirty {
		return false
	}
	return float64(d) > dirtyFraction*float64(len(s.base))
}

// compact merges the tail into the base, drops tombstoned entries, and
// re-sorts — the lazy rebuild of the cell's sweep structure.
func (s *slab) compact() {
	merged := make([]tuple.Tuple, 0, s.len())
	for _, t := range s.base {
		if _, dead := s.tombs[t.ID]; !dead {
			merged = append(merged, t)
		}
	}
	merged = append(merged, s.tail...)
	sweep.SortByX(merged)
	s.base = merged
	s.tail = nil
	s.tombs = nil
}

// contents returns the live tuples of the slab sorted by x, compacting
// as a side effect so repeated snapshots stay cheap.
func (s *slab) contents() []tuple.Tuple {
	if s.dirty() > 0 {
		s.compact()
	}
	return s.base
}
