package stream

import (
	"spatialjoin/internal/colsweep"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// Slab compaction policy: a slab is rebuilt (tail merged, tombstones
// dropped, re-sorted) once its dirty part — pending inserts plus
// tombstones — exceeds dirtyFraction of the sorted base, but never before
// minDirty mutations, so small cells absorb churn without re-sorting.
const (
	dirtyFraction = 0.25
	minDirty      = 32
)

// slab is one cell's maintained sweep structure for one input set: a
// sorted-by-x columnar base (the lazily rebuilt part, held as parallel
// x/y/id lanes so probes scan contiguous coordinates), a payload column
// aligned with the base, an unsorted tail of recent inserts, and
// tombstones for deletions that still sit in the base. Probes run against
// the base in O(log n + ε-window) via the columnar kernel's incremental
// entry point, plus a linear scan of the small tail.
type slab struct {
	base  colsweep.Cols      // sorted by ascending x
	pay   [][]byte           // payload column, parallel to base
	tail  []tuple.Tuple      // unsorted recent inserts
	tombs map[int64]struct{} // ids deleted but still present in base
}

// insert adds t to the slab. A tombstoned re-insert of the same id first
// resolves the tombstone by compacting, keeping ids unique per slab.
func (s *slab) insert(t tuple.Tuple) {
	if _, dead := s.tombs[t.ID]; dead {
		s.compact()
	}
	s.tail = append(s.tail, t)
}

// remove deletes the tuple with the given id, preferring an in-place
// tail removal and falling back to a tombstone against the base.
func (s *slab) remove(id int64) {
	for i := range s.tail {
		if s.tail[i].ID == id {
			s.tail[i] = s.tail[len(s.tail)-1]
			s.tail = s.tail[:len(s.tail)-1]
			return
		}
	}
	if s.tombs == nil {
		s.tombs = map[int64]struct{}{}
	}
	s.tombs[id] = struct{}{}
}

// at materialises the base point at index i as a tuple.
func (s *slab) at(i int) tuple.Tuple {
	return tuple.Tuple{
		ID:      s.base.IDs[i],
		Pt:      geom.Point{X: s.base.Xs[i], Y: s.base.Ys[i]},
		Payload: s.pay[i],
	}
}

// probe reports every live tuple of the slab within eps of p.
func (s *slab) probe(p geom.Point, eps float64, emit func(tuple.Tuple)) {
	if len(s.tombs) == 0 {
		colsweep.Probe(&s.base, p.X, p.Y, eps, func(i int) {
			emit(s.at(i))
		})
	} else {
		colsweep.Probe(&s.base, p.X, p.Y, eps, func(i int) {
			if _, dead := s.tombs[s.base.IDs[i]]; !dead {
				emit(s.at(i))
			}
		})
	}
	eps2 := eps * eps
	for _, t := range s.tail {
		if p.SqDist(t.Pt) <= eps2 {
			emit(t)
		}
	}
}

// dirty returns the size of the unsorted/tombstoned part.
func (s *slab) dirty() int { return len(s.tail) + len(s.tombs) }

// len returns the number of live tuples.
func (s *slab) len() int { return s.base.Len() - len(s.tombs) + len(s.tail) }

// needsCompaction reports whether the dirty part crossed the threshold.
func (s *slab) needsCompaction() bool {
	d := s.dirty()
	if d < minDirty {
		return false
	}
	return float64(d) > dirtyFraction*float64(s.base.Len())
}

// compact merges the tail into the base, drops tombstoned entries, and
// re-sorts — the lazy rebuild of the cell's columnar sweep structure.
func (s *slab) compact() {
	merged := make([]tuple.Tuple, 0, s.len())
	for i := 0; i < s.base.Len(); i++ {
		if _, dead := s.tombs[s.base.IDs[i]]; !dead {
			merged = append(merged, s.at(i))
		}
	}
	merged = append(merged, s.tail...)
	sweep.SortByX(merged)
	s.base.Reset()
	s.pay = s.pay[:0]
	for _, t := range merged {
		s.base.Append(t.Pt.X, t.Pt.Y, t.ID)
		s.pay = append(s.pay, t.Payload)
	}
	s.tail = nil
	s.tombs = nil
}

// sorted returns the live contents of the slab as an x-sorted columnar
// slab, compacting as a side effect so repeated snapshots stay cheap. The
// returned Cols is the slab's own base: read-only, valid until the next
// mutation.
func (s *slab) sorted() *colsweep.Cols {
	if s.dirty() > 0 {
		s.compact()
	}
	return &s.base
}

// contents returns the live tuples of the slab sorted by x (materialised;
// prefer sorted for the columnar view).
func (s *slab) contents() []tuple.Tuple {
	s.sorted()
	out := make([]tuple.Tuple, 0, s.base.Len())
	for i := 0; i < s.base.Len(); i++ {
		out = append(out, s.at(i))
	}
	return out
}
