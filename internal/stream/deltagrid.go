package stream

import (
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/tuple"
)

// canonical pair directions: every unordered pair of adjacent cells is
// owned by exactly one cell, the one from which the neighbour lies east,
// north, north-east, or north-west.
var canonDirs = [4]grid.Dir{grid.DirE, grid.DirN, grid.DirNE, grid.DirNW}

func canonSlot(d grid.Dir) int {
	switch d {
	case grid.DirE:
		return 0
	case grid.DirN:
		return 1
	case grid.DirNE:
		return 2
	case grid.DirNW:
		return 3
	default:
		return -1
	}
}

// deltaGrid maintains the paper's driver-side structures incrementally:
// the grid, exact per-cell histograms over the live points (grid.Stats
// fed by Add/Remove rather than a one-shot sample), a store of the
// current agreement type per adjacent cell pair, and the resolved graph
// of agreements built from that store. The store — not the statistics —
// is authoritative for the graph: statistics drift with every mutation,
// but a pair's type only changes when the rebalancer commits a flip, so
// the graph stays consistent (Def. 4.2) between flips by construction.
type deltaGrid struct {
	g      *grid.Grid
	policy agreements.Policy
	stats  *grid.Stats // exact live histograms, mutated per point
	types  []tuple.Set // current agreement type per canonical pair
	graph  *agreements.Graph
}

func newDeltaGrid(bounds geom.Rect, eps, res float64, policy agreements.Policy) *deltaGrid {
	g := grid.New(bounds, eps, res)
	d := &deltaGrid{
		g:      g,
		policy: policy,
		stats:  grid.NewStats(g),
		types:  make([]tuple.Set, g.NumCells()*4),
	}
	d.resetTypes()
	d.graph = agreements.BuildFromTypeFunc(g, d.typeBetween)
	return d
}

// resetTypes recomputes every canonical pair type from the current
// statistics — used at construction (empty stats: every tie resolves to
// R, the policy's deterministic default).
func (d *deltaGrid) resetTypes() {
	for id := 0; id < d.g.NumCells(); id++ {
		cx, cy := d.g.CellCoords(id)
		for slot, dir := range canonDirs {
			if d.g.Neighbor(cx, cy, dir) == grid.NoCell {
				continue
			}
			d.types[id*4+slot] = d.desiredType(id, dir)
		}
	}
}

// dirBetweenCells returns the direction from real cell ci to adjacent
// real cell cj, and false when the two are not neighbours.
func (d *deltaGrid) dirBetweenCells(ci, cj int) (grid.Dir, bool) {
	ix, iy := d.g.CellCoords(ci)
	jx, jy := d.g.CellCoords(cj)
	dx, dy := jx-ix, jy-iy
	for dir := grid.Dir(0); dir < grid.NumDirs; dir++ {
		ddx, ddy := dir.Delta()
		if ddx == dx && ddy == dy {
			return dir, true
		}
	}
	return 0, false
}

// typeBetween is the symmetric type function the agreements package
// consumes: the stored type for real pairs, R for pairs touching a
// virtual cell (never consulted for replication — virtual cells hold no
// points and Algorithm 1 skips their edges).
func (d *deltaGrid) typeBetween(ci, cj int) tuple.Set {
	if ci == grid.NoCell || cj == grid.NoCell {
		return tuple.R
	}
	dir, ok := d.dirBetweenCells(ci, cj)
	if !ok {
		return tuple.R
	}
	if slot := canonSlot(dir); slot >= 0 {
		return d.types[ci*4+slot]
	}
	return d.types[cj*4+canonSlot(dir.Opposite())]
}

// currentType returns the stored agreement type of the canonical pair
// (ci, dir); dir must be one of canonDirs.
func (d *deltaGrid) currentType(ci int, dir grid.Dir) tuple.Set {
	return d.types[ci*4+canonSlot(dir)]
}

// desiredType returns the type the policy would choose for the canonical
// pair (ci, dir) from the exact live histograms.
func (d *deltaGrid) desiredType(ci int, dir grid.Dir) tuple.Set {
	cx, cy := d.g.CellCoords(ci)
	return agreements.TypeForPair(d.stats, ci, d.g.Neighbor(cx, cy, dir), dir, d.policy)
}

// pairQuartets returns the grid-corner coordinates of every quartet
// containing the pair (ci, dir): two corners for a side pair, one for a
// diagonal pair. dir must be canonical.
func (d *deltaGrid) pairQuartets(ci int, dir grid.Dir) [][2]int {
	cx, cy := d.g.CellCoords(ci)
	switch dir {
	case grid.DirE:
		return [][2]int{{cx + 1, cy}, {cx + 1, cy + 1}}
	case grid.DirN:
		return [][2]int{{cx, cy + 1}, {cx + 1, cy + 1}}
	case grid.DirNE:
		return [][2]int{{cx + 1, cy + 1}}
	default: // grid.DirNW
		return [][2]int{{cx, cy + 1}}
	}
}

// flip commits a new agreement type for the canonical pair (ci, dir) and
// rebuilds every subgraph containing the pair — re-instantiating types
// from the store and re-running Algorithm 1's marking/locking with
// weights from the live histograms. It returns the rebuilt quartets'
// corner coordinates so the caller can migrate their cells' replicas.
func (d *deltaGrid) flip(ci int, dir grid.Dir, t tuple.Set) [][2]int {
	d.types[ci*4+canonSlot(dir)] = t
	qs := d.pairQuartets(ci, dir)
	for _, q := range qs {
		d.graph.RebuildSub(d.stats, q[0], q[1], d.typeBetween)
	}
	return qs
}

// assign returns the cells the current graph assigns a point of set to:
// its native cell first, then the replication targets of the paper's
// Algorithm 2 under the resolved agreements.
func (d *deltaGrid) assign(p geom.Point, set tuple.Set, buf []int) []int {
	return replicate.Adaptive(d.graph, p, set, buf)
}
