// Package tuple defines the record type that flows through the join
// pipeline: an identified spatial point plus an optional non-spatial
// payload, together with the serialized-size model used by the engine's
// shuffle accounting.
//
// The paper's evaluation varies a "tuple size factor" (f0..f4): real-world
// spatial records carry extra attributes (names, descriptions, ...) whose
// bytes must travel through every shuffle. The factors map to payload sizes
// via Factors.
package tuple

import "spatialjoin/internal/geom"

// Set identifies which join input a tuple belongs to.
type Set uint8

const (
	// R is the left join input.
	R Set = iota
	// S is the right join input.
	S
)

// String returns "R" or "S".
func (s Set) String() string {
	if s == R {
		return "R"
	}
	return "S"
}

// Other returns the opposite set.
func (s Set) Other() Set {
	if s == R {
		return S
	}
	return R
}

// Tuple is one record of a join input: a point with a stable identifier and
// an optional opaque payload of non-spatial attributes.
type Tuple struct {
	ID      int64
	Pt      geom.Point
	Payload []byte
}

// SerializedSize returns the number of bytes this tuple occupies in the
// engine's wire format: 8 (id) + 16 (coordinates) + len(payload).
// This is the size model used for shuffle accounting.
func (t Tuple) SerializedSize() int {
	return 8 + 16 + len(t.Payload)
}

// KeyedSize returns the wire size of the tuple once it has been keyed for
// a shuffle: SerializedSize plus 8 bytes for the partition key.
func (t Tuple) KeyedSize() int {
	return t.SerializedSize() + 8
}

// Factors lists the payload sizes in bytes for the paper's tuple size
// factors f0..f4. f0 carries no extra attributes.
var Factors = []int{0, 32, 64, 128, 256}

// FactorName returns the paper's name for factor index i ("f0".."f4").
func FactorName(i int) string {
	names := []string{"f0", "f1", "f2", "f3", "f4"}
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return "f?"
}

// WithPayloads returns a copy of ts where every tuple carries a payload of
// size bytes (shared backing array: payload content is irrelevant to the
// join, only its size matters for shuffle accounting).
func WithPayloads(ts []Tuple, size int) []Tuple {
	if size <= 0 {
		return ts
	}
	payload := make([]byte, size)
	out := make([]Tuple, len(ts))
	for i, t := range ts {
		t.Payload = payload
		out[i] = t
	}
	return out
}

// FromPoints wraps points into tuples with sequential IDs starting at base.
func FromPoints(pts []geom.Point, base int64) []Tuple {
	out := make([]Tuple, len(pts))
	for i, p := range pts {
		out[i] = Tuple{ID: base + int64(i), Pt: p}
	}
	return out
}

// Points extracts the coordinates of ts.
func Points(ts []Tuple) []geom.Point {
	out := make([]geom.Point, len(ts))
	for i, t := range ts {
		out[i] = t.Pt
	}
	return out
}

// Pair is one join result: the identifiers of an (r, s) tuple pair with
// d(r, s) <= eps.
type Pair struct {
	RID, SID int64
}
