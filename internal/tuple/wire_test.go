package tuple

import (
	"bytes"
	"testing"

	"spatialjoin/internal/geom"
)

func TestTupleWireRoundTrip(t *testing.T) {
	cases := []Tuple{
		{ID: 0, Pt: geom.Point{X: 0, Y: 0}},
		{ID: -7, Pt: geom.Point{X: -1.5, Y: 2.25}},
		{ID: 1 << 40, Pt: geom.Point{X: 99.125, Y: -0.0625}, Payload: []byte("attrs")},
		{ID: 42, Pt: geom.Point{X: 3, Y: 4}, Payload: make([]byte, 256)},
	}
	var buf []byte
	for _, tc := range cases {
		buf = AppendTuple(buf, tc)
	}
	for i, tc := range cases {
		got, n, err := DecodeTuple(buf)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != tc.WireSize() {
			t.Fatalf("case %d: consumed %d bytes, WireSize says %d", i, n, tc.WireSize())
		}
		if got.ID != tc.ID || got.Pt != tc.Pt || !bytes.Equal(got.Payload, tc.Payload) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, tc)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after decoding all tuples", len(buf))
	}
}

func TestTupleDecodeErrors(t *testing.T) {
	if _, _, err := DecodeTuple(make([]byte, 27)); err == nil {
		t.Fatal("short buffer accepted")
	}
	// A tuple whose declared payload length exceeds the buffer.
	enc := AppendTuple(nil, Tuple{ID: 1, Payload: []byte("abcdef")})
	if _, _, err := DecodeTuple(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestPairWireRoundTrip(t *testing.T) {
	in := []Pair{{RID: 1, SID: 2}, {RID: -3, SID: 1 << 50}, {}}
	var buf []byte
	for _, p := range in {
		buf = AppendPair(buf, p)
	}
	if len(buf) != len(in)*PairWireSize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), len(in)*PairWireSize)
	}
	for i, want := range in {
		got, err := DecodePair(buf[i*PairWireSize:])
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("pair %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := DecodePair(buf[:8]); err == nil {
		t.Fatal("short pair buffer accepted")
	}
}
