// Wire encoding: the binary format tuples and result pairs travel in
// over the cluster backend's shuffle protocol. The format is
// little-endian and self-delimiting, so records can be streamed back to
// back inside one frame:
//
//	tuple:  id u64 | x f64 | y f64 | payload len u32 | payload bytes
//	pair:   rid u64 | sid u64
//
// WireSize (28 bytes + payload) intentionally differs from the
// SerializedSize *model* (24 + payload): the model mirrors the paper's
// accounting, while the wire format pays four extra bytes to delimit the
// payload. Shuffle-byte counters measured on the wire therefore report
// real, not modelled, bytes.

package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
)

// WireSize returns the number of bytes AppendTuple will write for t.
func (t Tuple) WireSize() int { return 8 + 8 + 8 + 4 + len(t.Payload) }

// PairWireSize is the encoded size of one result pair.
const PairWireSize = 16

// AppendTuple appends the wire encoding of t to dst and returns the
// extended slice.
func AppendTuple(dst []byte, t Tuple) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.ID))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.Pt.X))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.Pt.Y))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Payload)))
	return append(dst, t.Payload...)
}

// DecodeTuple decodes one tuple from the front of b, returning the tuple
// and the number of bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	if len(b) < 28 {
		return Tuple{}, 0, fmt.Errorf("tuple: decode: %d bytes, need at least 28", len(b))
	}
	var t Tuple
	t.ID = int64(binary.LittleEndian.Uint64(b))
	t.Pt.X = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	t.Pt.Y = math.Float64frombits(binary.LittleEndian.Uint64(b[16:]))
	plen := int(binary.LittleEndian.Uint32(b[24:]))
	if plen < 0 || len(b) < 28+plen {
		return Tuple{}, 0, fmt.Errorf("tuple: decode: payload of %d bytes exceeds buffer of %d", plen, len(b)-28)
	}
	if plen > 0 {
		t.Payload = append([]byte(nil), b[28:28+plen]...)
	}
	return t, 28 + plen, nil
}

// AppendPair appends the wire encoding of p to dst.
func AppendPair(dst []byte, p Pair) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.RID))
	return binary.LittleEndian.AppendUint64(dst, uint64(p.SID))
}

// DecodePair decodes one pair from the front of b.
func DecodePair(b []byte) (Pair, error) {
	if len(b) < PairWireSize {
		return Pair{}, fmt.Errorf("tuple: decode pair: %d bytes, need %d", len(b), PairWireSize)
	}
	return Pair{
		RID: int64(binary.LittleEndian.Uint64(b)),
		SID: int64(binary.LittleEndian.Uint64(b[8:])),
	}, nil
}
