package tuple

import (
	"testing"

	"spatialjoin/internal/geom"
)

func TestSetString(t *testing.T) {
	if R.String() != "R" || S.String() != "S" {
		t.Errorf("Set.String: got %q, %q", R.String(), S.String())
	}
}

func TestSetOther(t *testing.T) {
	if R.Other() != S || S.Other() != R {
		t.Error("Other must flip the set")
	}
}

func TestSerializedSize(t *testing.T) {
	tu := Tuple{ID: 1, Pt: geom.Point{X: 1, Y: 2}}
	if got := tu.SerializedSize(); got != 24 {
		t.Errorf("empty payload size = %d, want 24", got)
	}
	tu.Payload = make([]byte, 100)
	if got := tu.SerializedSize(); got != 124 {
		t.Errorf("payload size = %d, want 124", got)
	}
	if got := tu.KeyedSize(); got != 132 {
		t.Errorf("keyed size = %d, want 132", got)
	}
}

func TestFactors(t *testing.T) {
	if len(Factors) != 5 {
		t.Fatalf("expected 5 tuple size factors, got %d", len(Factors))
	}
	if Factors[0] != 0 {
		t.Errorf("f0 must carry no payload, got %d", Factors[0])
	}
	for i := 1; i < len(Factors); i++ {
		if Factors[i] <= Factors[i-1] {
			t.Errorf("factors must be increasing: f%d=%d <= f%d=%d", i, Factors[i], i-1, Factors[i-1])
		}
	}
	if FactorName(2) != "f2" {
		t.Errorf("FactorName(2) = %q", FactorName(2))
	}
	if FactorName(9) != "f?" {
		t.Errorf("FactorName(9) = %q", FactorName(9))
	}
}

func TestWithPayloads(t *testing.T) {
	ts := FromPoints([]geom.Point{{X: 1}, {X: 2}}, 10)
	out := WithPayloads(ts, 64)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	for i, tu := range out {
		if len(tu.Payload) != 64 {
			t.Errorf("tuple %d payload = %d bytes, want 64", i, len(tu.Payload))
		}
		if tu.ID != ts[i].ID || tu.Pt != ts[i].Pt {
			t.Errorf("tuple %d identity changed", i)
		}
	}
	// Zero size leaves the slice untouched.
	same := WithPayloads(ts, 0)
	if &same[0] != &ts[0] {
		t.Error("WithPayloads(0) should return the input slice")
	}
}

func TestFromPointsAndPoints(t *testing.T) {
	pts := []geom.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	ts := FromPoints(pts, 100)
	if ts[0].ID != 100 || ts[1].ID != 101 {
		t.Errorf("sequential IDs: got %d, %d", ts[0].ID, ts[1].ID)
	}
	back := Points(ts)
	for i := range pts {
		if back[i] != pts[i] {
			t.Errorf("round trip mismatch at %d", i)
		}
	}
}
