package replicate

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// joinViaAssign partitions both inputs with the given assignment function,
// joins every cell independently, and returns the sorted result pairs
// WITHOUT removing duplicates — so a comparison against the oracle detects
// both missing and duplicated results.
func joinViaAssign(g *grid.Grid, rs, ss []tuple.Tuple, assign func(p geom.Point, set tuple.Set, dst []int) []int) []tuple.Pair {
	partsR := make([][]tuple.Tuple, g.NumCells())
	partsS := make([][]tuple.Tuple, g.NumCells())
	var buf []int
	for _, r := range rs {
		buf = assign(r.Pt, tuple.R, buf[:0])
		for _, id := range buf {
			partsR[id] = append(partsR[id], r)
		}
	}
	for _, s := range ss {
		buf = assign(s.Pt, tuple.S, buf[:0])
		for _, id := range buf {
			partsS[id] = append(partsS[id], s)
		}
	}
	var c sweep.Collector
	for cell := range partsR {
		sweep.NestedLoop(partsR[cell], partsS[cell], g.Eps, c.Emit)
	}
	sortPairs(c.Pairs)
	return c.Pairs
}

func sortPairs(ps []tuple.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RID != ps[j].RID {
			return ps[i].RID < ps[j].RID
		}
		return ps[i].SID < ps[j].SID
	})
}

func oracle(rs, ss []tuple.Tuple, eps float64) []tuple.Pair {
	var c sweep.Collector
	sweep.NestedLoop(rs, ss, eps, c.Emit)
	sortPairs(c.Pairs)
	return c.Pairs
}

// diffPairs returns a short description of the first divergence between
// got and want, or "" if identical.
func diffPairs(got, want []tuple.Pair) string {
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			return fmt.Sprintf("index %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if len(got) != len(want) {
		which := "missing"
		ps := want
		if len(got) > len(want) {
			which = "extra (duplicate)"
			ps = got
		}
		i := min(len(got), len(want))
		return fmt.Sprintf("%s results from index %d, e.g. %v (got %d, want %d)", which, i, ps[i], len(got), len(want))
	}
	return ""
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// gridPoints generates a jittered lattice of points covering bounds with
// the given spacing, alternating tuple sets pseudo-randomly.
func gridPoints(bounds geom.Rect, spacing float64, rng *rand.Rand) (rs, ss []tuple.Tuple) {
	id := int64(0)
	for x := bounds.MinX + spacing/2; x < bounds.MaxX; x += spacing {
		for y := bounds.MinY + spacing/2; y < bounds.MaxY; y += spacing {
			p := geom.Point{
				X: x + (rng.Float64()-0.5)*spacing*0.3,
				Y: y + (rng.Float64()-0.5)*spacing*0.3,
			}
			if rng.Intn(2) == 0 {
				rs = append(rs, tuple.Tuple{ID: id, Pt: p})
			} else {
				ss = append(ss, tuple.Tuple{ID: id + 1_000_000, Pt: p})
			}
			id++
		}
	}
	return rs, ss
}

func TestUniversalMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, res := range []float64{1, 2, 3} { // includes the ε-grid (res 1)
		for trial := 0; trial < 5; trial++ {
			bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 9, MaxY: 7}
			g := grid.New(bounds, 1, res)
			rs, ss := gridPoints(bounds, 0.8, rng)
			want := oracle(rs, ss, g.Eps)
			for _, replSet := range []tuple.Set{tuple.R, tuple.S} {
				got := joinViaAssign(g, rs, ss, func(p geom.Point, set tuple.Set, dst []int) []int {
					return Universal(g, p, set == replSet, dst)
				})
				if d := diffPairs(got, want); d != "" {
					t.Fatalf("res %v UNI(%v) trial %d: %s", res, replSet, trial, d)
				}
			}
		}
	}
}

// maskTypeFunc builds a globally consistent pair-type function for a 2x2
// grid from a 6-bit mask over the unordered real cell pairs; virtual pairs
// default to R.
func maskTypeFunc(mask int) func(ci, cj int) tuple.Set {
	pairBit := map[[2]int]int{
		{0, 1}: 0, {0, 2}: 1, {0, 3}: 2, {1, 2}: 3, {1, 3}: 4, {2, 3}: 5,
	}
	return func(ci, cj int) tuple.Set {
		if ci == grid.NoCell || cj == grid.NoCell {
			return tuple.R
		}
		lo, hi := ci, cj
		if lo > hi {
			lo, hi = hi, lo
		}
		if mask&(1<<pairBit[[2]int{lo, hi}]) != 0 {
			return tuple.S
		}
		return tuple.R
	}
}

// TestAdaptiveExhaustiveQuartet is the central correctness test of the
// reproduction: on a 2x2-cell world, every one of the 64 agreement-type
// configurations is exercised with a dense jittered point lattice, and the
// adaptive join must equal the oracle exactly — no missing pair, no
// duplicate.
func TestAdaptiveExhaustiveQuartet(t *testing.T) {
	for _, res := range []float64{2, 2.5, 4} {
		bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 2 * res, MaxY: 2 * res}
		g := grid.New(bounds, 1, res)
		if g.NX != 2 || g.NY != 2 {
			t.Fatalf("res %v: world is %dx%d cells, want 2x2", res, g.NX, g.NY)
		}
		rng := rand.New(rand.NewSource(int64(res * 100)))
		rs, ss := gridPoints(bounds, 0.37, rng)
		want := oracle(rs, ss, g.Eps)

		for mask := 0; mask < 64; mask++ {
			gr := agreements.BuildFromTypeFunc(g, maskTypeFunc(mask))
			got := joinViaAssign(g, rs, ss, func(p geom.Point, set tuple.Set, dst []int) []int {
				return Adaptive(gr, p, set, dst)
			})
			if d := diffPairs(got, want); d != "" {
				t.Fatalf("res %v mask %06b: %s", res, mask, d)
			}
		}
	}
}

// hashTypeFunc is a deterministic pseudo-random but globally consistent
// pair-type function.
func hashTypeFunc(seed int64) func(ci, cj int) tuple.Set {
	return func(ci, cj int) tuple.Set {
		lo, hi := ci, cj
		if lo > hi {
			lo, hi = hi, lo
		}
		h := uint64(lo)*0x9e3779b97f4a7c15 ^ uint64(hi)*0xbf58476d1ce4e5b9 ^ uint64(seed)*0x94d049bb133111eb
		h ^= h >> 29
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 32
		return tuple.Set(h & 1)
	}
}

// TestAdaptiveRandomGridsAndTypes stresses multi-cell grids where quartets
// interact: random resolutions, random world shapes, pseudo-random (but
// pair-consistent) agreement types, dense jittered lattices.
func TestAdaptiveRandomGridsAndTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		res := 2 + rng.Float64()*2 // [2, 4)
		w := 2 + rng.Float64()*10
		h := 2 + rng.Float64()*10
		bounds := geom.Rect{MinX: -3, MinY: 5, MaxX: -3 + w*res, MaxY: 5 + h*res}
		g := grid.New(bounds, 1, res)
		rs, ss := gridPoints(bounds, 0.9, rng)
		want := oracle(rs, ss, g.Eps)

		gr := agreements.BuildFromTypeFunc(g, hashTypeFunc(int64(trial)))
		got := joinViaAssign(g, rs, ss, func(p geom.Point, set tuple.Set, dst []int) []int {
			return Adaptive(gr, p, set, dst)
		})
		if d := diffPairs(got, want); d != "" {
			t.Fatalf("trial %d (res %.2f, %dx%d cells): %s", trial, res, g.NX, g.NY, d)
		}
	}
}

// clusteredTuples places clusters of points directly around quartet
// reference points — the most duplicate-prone geometry.
func clusteredTuples(g *grid.Grid, rng *rand.Rand, perCorner int) (rs, ss []tuple.Tuple) {
	id := int64(0)
	for gy := 0; gy <= g.NY; gy++ {
		for gx := 0; gx <= g.NX; gx++ {
			ref := g.RefPoint(gx, gy)
			for i := 0; i < perCorner; i++ {
				p := geom.Point{
					X: ref.X + (rng.Float64()-0.5)*4*g.Eps,
					Y: ref.Y + (rng.Float64()-0.5)*4*g.Eps,
				}
				if !g.Bounds.Contains(p) {
					continue
				}
				if rng.Intn(2) == 0 {
					rs = append(rs, tuple.Tuple{ID: id, Pt: p})
				} else {
					ss = append(ss, tuple.Tuple{ID: id + 1_000_000, Pt: p})
				}
				id++
			}
		}
	}
	return rs, ss
}

func TestAdaptiveCornerClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 1, 2)
		rs, ss := clusteredTuples(g, rng, 40)
		want := oracle(rs, ss, g.Eps)
		gr := agreements.BuildFromTypeFunc(g, hashTypeFunc(int64(trial+500)))
		got := joinViaAssign(g, rs, ss, func(p geom.Point, set tuple.Set, dst []int) []int {
			return Adaptive(gr, p, set, dst)
		})
		if d := diffPairs(got, want); d != "" {
			t.Fatalf("trial %d: %s", trial, d)
		}
	}
}

// TestAdaptiveWithSampledPolicies runs the paper's actual pipeline: LPiB
// and DIFF agreements instantiated from a 50% sample, then the adaptive
// assignment, which must stay exact regardless of sampling noise.
func TestAdaptiveWithSampledPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 14, MaxY: 14}, 1, 2)
	rs, ss := gridPoints(g.Bounds, 0.5, rng)
	want := oracle(rs, ss, g.Eps)
	for _, pol := range []agreements.Policy{agreements.LPiB, agreements.DIFF, agreements.UniR, agreements.UniS} {
		st := grid.NewStats(g)
		for i, r := range rs {
			if i%2 == 0 {
				st.Add(tuple.R, r.Pt)
			}
		}
		for i, s := range ss {
			if i%2 == 0 {
				st.Add(tuple.S, s.Pt)
			}
		}
		gr := agreements.Build(st, pol)
		got := joinViaAssign(g, rs, ss, func(p geom.Point, set tuple.Set, dst []int) []int {
			return Adaptive(gr, p, set, dst)
		})
		if d := diffPairs(got, want); d != "" {
			t.Fatalf("%v: %s", pol, d)
		}
	}
}

// TestAdaptiveSimpleCorrectButDuplicates verifies the Table 6 baseline:
// the simplified assignment must find every result (set-correct) and, in
// mixed-agreement configurations, actually produce duplicates.
func TestAdaptiveSimpleCorrectButDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 1, 2)
	rs, ss := clusteredTuples(g, rng, 60)
	want := oracle(rs, ss, g.Eps)

	sawDuplicates := false
	for trial := 0; trial < 10; trial++ {
		gr := agreements.BuildFromTypeFunc(g, hashTypeFunc(int64(trial+900)))
		got := joinViaAssign(g, rs, ss, func(p geom.Point, set tuple.Set, dst []int) []int {
			return AdaptiveSimple(gr, p, set, dst)
		})
		// Set-correctness: after dedup, got must equal want exactly.
		dedup := got[:0:0]
		for i, p := range got {
			if i == 0 || p != got[i-1] {
				dedup = append(dedup, p)
			}
		}
		if d := diffPairs(dedup, want); d != "" {
			t.Fatalf("trial %d: simplified assignment incorrect after dedup: %s", trial, d)
		}
		if len(got) > len(dedup) {
			sawDuplicates = true
		}
	}
	if !sawDuplicates {
		t.Fatal("simplified assignment never produced duplicates across mixed configurations; the Table 6 ablation would be vacuous")
	}
}

// TestAdaptiveReplicationAtMostThreeCells checks the paper's replication
// bound for l >= 2ε grids: a point is assigned to its native cell plus at
// most 3 others.
func TestAdaptiveReplicationAtMostThreeCells(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 12, MaxY: 12}, 1, 2)
	gr := agreements.BuildFromTypeFunc(g, hashTypeFunc(1))
	var buf []int
	for i := 0; i < 20000; i++ {
		p := geom.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12}
		set := tuple.Set(rng.Intn(2))
		buf = Adaptive(gr, p, set, buf[:0])
		if len(buf) > 4 {
			t.Fatalf("point %v assigned to %d cells: %v", p, len(buf), buf)
		}
		if len(buf) == 0 {
			t.Fatalf("point %v assigned to no cell", p)
		}
		// Native cell must come first.
		cx, cy := g.Locate(p)
		if buf[0] != g.CellID(cx, cy) {
			t.Fatalf("point %v: first assignment %d is not the native cell", p, buf[0])
		}
		// No duplicates.
		for a := 0; a < len(buf); a++ {
			for b := a + 1; b < len(buf); b++ {
				if buf[a] == buf[b] {
					t.Fatalf("point %v: duplicate assignment %v", p, buf)
				}
			}
		}
	}
}

// TestAdaptiveReplicatesLessThanUniversal confirms the core claim on a
// skewed workload: adaptive replication moves fewer points than the best
// universal choice.
func TestAdaptiveReplicatesLessThanUniversal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}, 1, 2)
	// Skew: R dense in the left half, S dense in the right half, so the
	// best set to replicate differs by region.
	var rs, ss []tuple.Tuple
	for i := 0; i < 20000; i++ {
		rs = append(rs, tuple.Tuple{ID: int64(i), Pt: geom.Point{X: rng.Float64() * 22, Y: rng.Float64() * 40}})
		ss = append(ss, tuple.Tuple{ID: int64(i + 1_000_000), Pt: geom.Point{X: 18 + rng.Float64()*22, Y: rng.Float64() * 40}})
	}
	st := grid.NewStats(g)
	st.AddAll(tuple.R, rs)
	st.AddAll(tuple.S, ss)
	gr := agreements.Build(st, agreements.LPiB)

	countRepl := func(assign func(p geom.Point, set tuple.Set, dst []int) []int) int {
		var buf []int
		n := 0
		for _, r := range rs {
			buf = assign(r.Pt, tuple.R, buf[:0])
			n += len(buf) - 1
		}
		for _, s := range ss {
			buf = assign(s.Pt, tuple.S, buf[:0])
			n += len(buf) - 1
		}
		return n
	}

	adaptive := countRepl(func(p geom.Point, set tuple.Set, dst []int) []int {
		return Adaptive(gr, p, set, dst)
	})
	uniR := countRepl(func(p geom.Point, set tuple.Set, dst []int) []int {
		return Universal(g, p, set == tuple.R, dst)
	})
	uniS := countRepl(func(p geom.Point, set tuple.Set, dst []int) []int {
		return Universal(g, p, set == tuple.S, dst)
	})
	best := min(uniR, uniS)
	if adaptive >= best {
		t.Fatalf("adaptive replicated %d points, universal best %d (R=%d, S=%d)", adaptive, best, uniR, uniS)
	}
	t.Logf("replication: adaptive=%d, UNI(R)=%d, UNI(S)=%d", adaptive, uniR, uniS)
}

func TestDedupeKeepFirst(t *testing.T) {
	got := dedupeKeepFirst([]int{3, 1, 3, 2, 1, 3})
	want := []int{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("dedupe = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupe = %v, want %v", got, want)
		}
	}
	if out := dedupeKeepFirst(nil); len(out) != 0 {
		t.Fatal("dedupe(nil) should be empty")
	}
}
