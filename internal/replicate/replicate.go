// Package replicate implements the point-to-partition assignment rules of
// every join algorithm in the library:
//
//   - Adaptive: the paper's Algorithms 2 (area dispatch), 3 (MeDuPAr) and
//     4 (SupAr) over a resolved graph of agreements — correct and
//     duplicate-free by construction.
//   - AdaptiveSimple: the same agreements without marking, locking or
//     supplementary areas — correct but duplicate-producing; the variant
//     measured against a post-join deduplication step in Table 6.
//   - Universal: PBSM-style replication of one entire data set to every
//     cell within ε (used by UNI(R), UNI(S) and the ε-grid baseline).
//
// Every function appends the point's native cell first, followed by the
// cells it is replicated to, so callers can count replication as
// len(result) - 1.
package replicate

import (
	"spatialjoin/internal/agreements"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

// Universal assigns p under PBSM-style universal replication: the native
// cell always; when replicated is true (p belongs to the globally
// replicated data set), additionally every other cell whose MINDIST from
// p is at most ε. Works for any grid resolution including the ε-grid.
func Universal(g *grid.Grid, p geom.Point, replicated bool, dst []int) []int {
	cx, cy := g.Locate(p)
	dst = append(dst, g.CellID(cx, cy))
	if replicated {
		dst = g.ReplicationTargets(p, dst)
	}
	return dst
}

// Adaptive assigns p of the given set under the paper's adaptive
// replication (Algorithm 2). The first id is the native cell; subsequent
// ids are replication targets, deduplicated.
func Adaptive(gr *agreements.Graph, p geom.Point, set tuple.Set, dst []int) []int {
	g := gr.Grid
	cx, cy, area := g.Classify(p)
	native := g.CellID(cx, cy)
	dst = append(dst, native)

	switch area.Kind {
	case grid.AreaInterior:
		// No replication area: the point stays in its native cell only.
		return dst

	case grid.AreaCorner:
		// Merged duplicate-prone area of the quartet at this corner:
		// MeDuPAr for that quartet, then SupAr for the two nearest
		// neighbouring quartets (Algorithm 2 lines 5-11). The packed
		// quartet flags decide how much machinery each quartet needs
		// before its ~200-byte subgraph is touched at all.
		gx, gy, pos := g.CornerQuartet(cx, cy, area.Corner)
		t, uniform, marked := gr.Info(gx, gy)
		switch {
		case uniform && t != set:
			// All borders agree on the opposite set: p crosses nowhere.
		case uniform:
			// All borders agree on p's set and nothing is marked
			// (marking needs mixed types): both side-adjacent cells,
			// plus the diagonal cell when p is within ε of the
			// reference point.
			sub := gr.Sub(gx, gy)
			for _, j := range pos.SideAdjacent() {
				if sub.Cells[j] != grid.NoCell {
					dst = append(dst, sub.Cells[j])
				}
			}
			if l := pos.Diagonal(); sub.Cells[l] != grid.NoCell && p.WithinDist(sub.Ref, g.Eps) {
				dst = append(dst, sub.Cells[l])
			}
		default:
			sub := gr.Sub(gx, gy)
			dst = meDuPAr(sub, g, p, set, pos, dst)
			// Deviation from the paper's Algorithm 2 pseudocode (documented in
			// DESIGN.md): a point in the merged duplicate-prone area of q can
			// simultaneously lie in a supplementary area of ANOTHER triad of
			// the same quartet (Def. 4.10 admits it: within ε of a side
			// neighbour whose marked edge excluded partners from this cell,
			// farther than ε from the third cell, within 2ε of the reference
			// point). The pseudocode only probes q' and q'', which loses such
			// pairs; running SupAr on q as well restores them.
			if marked {
				dst = supAr(sub, g, p, set, pos, dst)
			}
		}
		q1x, q1y, pos1, q2x, q2y, pos2 := g.AdjacentCornerQuartets(cx, cy, area.Corner)
		if _, _, m := gr.Info(q1x, q1y); m {
			dst = supAr(gr.Sub(q1x, q1y), g, p, set, pos1, dst)
		}
		if _, _, m := gr.Info(q2x, q2y); m {
			dst = supAr(gr.Sub(q2x, q2y), g, p, set, pos2, dst)
		}

	default: // grid.AreaStrip
		// Plain replication area: replicate across the side when the
		// agreement type matches, then SupAr for the two quartets at the
		// side's endpoints (Algorithm 2 lines 12-19).
		q1x, q1y, pos1, q2x, q2y, pos2 := g.StripQuartets(p, cx, cy, area.Side)
		t1, uniform1, marked1 := gr.Info(q1x, q1y)
		if j, ok := grid.PosAcross(pos1, area.Side); ok && (!uniform1 || t1 == set) {
			sub := gr.Sub(q1x, q1y)
			if sub.Cells[j] != grid.NoCell && sub.Type(pos1, j) == set {
				dst = append(dst, sub.Cells[j])
			}
		}
		if marked1 {
			dst = supAr(gr.Sub(q1x, q1y), g, p, set, pos1, dst)
		}
		if _, _, m := gr.Info(q2x, q2y); m {
			dst = supAr(gr.Sub(q2x, q2y), g, p, set, pos2, dst)
		}
	}
	return dedupeKeepFirst(dst)
}

// meDuPAr is Algorithm 3: assignment of a point located in the merged
// duplicate-prone area of the quartet sub, where the point's native cell
// occupies position i.
func meDuPAr(sub *agreements.Subgraph, g *grid.Grid, p geom.Point, set tuple.Set, i grid.Pos, dst []int) []int {
	// Fast path for the dominant quartet shape: all six pair types equal
	// and nothing marked. A point of the opposite set replicates nowhere;
	// a point of the matching set crosses to every real side-adjacent
	// cell, and to the diagonal cell exactly when it is within ε of the
	// reference point (no marked edge can redirect it there).
	if t, ok := sub.UniformType(); ok && !sub.AnyMarked() {
		if t != set {
			return dst
		}
		for _, j := range i.SideAdjacent() {
			if sub.Cells[j] != grid.NoCell {
				dst = append(dst, sub.Cells[j])
			}
		}
		if l := i.Diagonal(); sub.Cells[l] != grid.NoCell && p.WithinDist(sub.Ref, g.Eps) {
			dst = append(dst, sub.Cells[l])
		}
		return dst
	}
	adj := i.SideAdjacent()
	// Lines 2-4: side-adjacent cells via unmarked same-type edges.
	for _, j := range adj {
		if sub.Cells[j] == grid.NoCell {
			continue
		}
		if sub.Type(i, j) == set && !sub.Marked(i, j) {
			dst = append(dst, sub.Cells[j])
		}
	}
	// Lines 5-11: the cell sharing only the reference point with i.
	l := i.Diagonal()
	if sub.Cells[l] != grid.NoCell && sub.Type(i, l) == set && !sub.Marked(i, l) {
		if p.WithinDist(sub.Ref, g.Eps) {
			dst = append(dst, sub.Cells[l])
		} else {
			// The point cannot reach the diagonal cell directly, but if a
			// marked same-type side edge excluded it from a side cell, it
			// must travel to the diagonal cell instead, where its excluded
			// pairs are recovered.
			for _, j := range adj {
				if sub.Type(i, j) == set && sub.Marked(i, j) {
					dst = append(dst, sub.Cells[l])
					break
				}
			}
		}
	}
	return dst
}

// supAr is Algorithm 4: assignment of a point that may lie in a
// supplementary area of the quartet sub, where the point's native cell
// occupies position i. A supplementary area exists opposite a marked
// opposite-type edge e_ji: the points that edge excludes from replication
// into i's cell travel to a third cell of the quartet, and p — which can
// form pairs with them — must follow them there.
func supAr(sub *agreements.Subgraph, g *grid.Grid, p geom.Point, set tuple.Set, i grid.Pos, dst []int) []int {
	// Line 4's precondition, hoisted: without a marked edge anywhere in
	// the quartet no supplementary area exists, so the geometry tests
	// below cannot matter. Algorithm 1 leaves most quartets unmarked,
	// making this the common exit.
	if !sub.AnyMarked() {
		return dst
	}
	// Line 3's first clause is independent of the neighbour: p must be
	// within 2ε of the quartet's reference point for any supplementary
	// area of the quartet to contain it.
	if !p.WithinDist(sub.Ref, 2*g.Eps) {
		return dst
	}
	adj := i.SideAdjacent()
	for n, j := range adj {
		if sub.Cells[j] == grid.NoCell {
			continue
		}
		// Line 4: the edge from j into i is marked with the opposite type,
		// so j's duplicate-prone points that p could match were excluded
		// from i's cell. Checked before line 3's remaining geometry —
		// two array reads against a MINDIST computation.
		if sub.Type(j, i) == set || !sub.Marked(j, i) {
			continue
		}
		// Line 3: p must also be near cell j.
		jx, jy := g.CellCoords(sub.Cells[j])
		if !g.CellRect(jx, jy).WithinMinDist(p, g.Eps) {
			continue
		}
		k := adj[1-n]     // the other side-adjacent cell
		l := i.Diagonal() // the cell sharing only the reference point
		// Lines 5-8: follow the excluded points to whichever cell both p
		// (via an unmarked same-type edge from i) and they (via an
		// unmarked opposite-type edge from j) reach.
		switch {
		case sub.Cells[k] != grid.NoCell &&
			sub.Type(i, k) == set && !sub.Marked(i, k) &&
			sub.Type(j, k) != set && !sub.Marked(j, k):
			dst = append(dst, sub.Cells[k])
		case sub.Cells[l] != grid.NoCell &&
			sub.Type(i, l) == set && !sub.Marked(i, l) &&
			sub.Type(j, l) != set && !sub.Marked(j, l):
			dst = append(dst, sub.Cells[l])
		}
	}
	return dst
}

// AdaptiveSimple assigns p under agreement-based replication without the
// duplicate-free machinery: agreements decide which set crosses each
// border, but no edge is treated as marked and no supplementary
// replication happens. The assignment is correct (Corollary 4.6) but
// produces duplicate join results in quartets with mixed agreement types
// (Lemma 4.8); it exists as the baseline for the deduplication ablation
// (Table 6).
func AdaptiveSimple(gr *agreements.Graph, p geom.Point, set tuple.Set, dst []int) []int {
	g := gr.Grid
	cx, cy, area := g.Classify(p)
	dst = append(dst, g.CellID(cx, cy))

	switch area.Kind {
	case grid.AreaInterior:
		return dst

	case grid.AreaCorner:
		gx, gy, pos := g.CornerQuartet(cx, cy, area.Corner)
		// Uniform quartet of the opposite set: no border agrees with p's
		// set, so no geometry test can add a cell — decided from the
		// packed flags without touching the subgraph.
		if t, uniform, _ := gr.Info(gx, gy); uniform && t != set {
			return dst
		}
		sub := gr.Sub(gx, gy)
		for _, j := range pos.SideAdjacent() {
			if sub.Cells[j] == grid.NoCell || sub.Type(pos, j) != set {
				continue
			}
			jx, jy := g.CellCoords(sub.Cells[j])
			if g.CellRect(jx, jy).WithinMinDist(p, g.Eps) {
				dst = append(dst, sub.Cells[j])
			}
		}
		l := pos.Diagonal()
		if sub.Cells[l] != grid.NoCell && sub.Type(pos, l) == set && p.WithinDist(sub.Ref, g.Eps) {
			dst = append(dst, sub.Cells[l])
		}

	default: // grid.AreaStrip
		q1x, q1y, pos1, _, _, _ := g.StripQuartets(p, cx, cy, area.Side)
		if t, uniform, _ := gr.Info(q1x, q1y); uniform && t != set {
			return dst
		}
		sub := gr.Sub(q1x, q1y)
		if j, ok := grid.PosAcross(pos1, area.Side); ok {
			if sub.Cells[j] != grid.NoCell && sub.Type(pos1, j) == set {
				dst = append(dst, sub.Cells[j])
			}
		}
	}
	return dst
}

// dedupeKeepFirst removes duplicate ids preserving first occurrence. The
// slices involved hold at most four entries, so quadratic scanning wins
// over any map-based approach.
func dedupeKeepFirst(ids []int) []int {
	out := ids[:0]
	for _, id := range ids {
		seen := false
		for _, o := range out {
			if o == id {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, id)
		}
	}
	return out
}
