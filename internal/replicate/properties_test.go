package replicate

import (
	"bytes"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"spatialjoin/internal/agreements"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

// Every point is assigned to at most 4 cells even by the simplified
// (duplicate-producing) variant, so a result pair can be reported at most
// 4 times: both endpoints appear in at most 4 cells and co-occurrence is
// bounded by the smaller multiset.
func TestAdaptiveSimpleMultiplicityBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 12, MaxY: 12}, 1, 2)
	gr := agreements.BuildFromTypeFunc(g, hashTypeFunc(7))
	rs, ss := clusteredTuples(g, rng, 50)

	pairCount := map[tuple.Pair]int{}
	got := joinViaAssign(g, rs, ss, func(p geom.Point, set tuple.Set, dst []int) []int {
		return AdaptiveSimple(gr, p, set, dst)
	})
	for _, p := range got {
		pairCount[p]++
	}
	for p, n := range pairCount {
		if n > 4 {
			t.Fatalf("pair %v reported %d times; the multiplicity bound is 4", p, n)
		}
	}
}

// The simplified variant never replicates MORE than the full adaptive
// variant plus its supplementary copies would suggest missing; concretely
// its assignment is a subset of "agreement says replicate": each point
// goes to at most as many cells as the duplicate-free variant plus one.
func TestSimpleAssignmentStaysSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 12, MaxY: 12}, 1, 2)
	gr := agreements.BuildFromTypeFunc(g, hashTypeFunc(8))
	var bufA, bufB []int
	for i := 0; i < 10000; i++ {
		p := geom.Point{X: rng.Float64() * 12, Y: rng.Float64() * 12}
		set := tuple.Set(rng.Intn(2))
		bufA = AdaptiveSimple(gr, p, set, bufA[:0])
		bufB = Adaptive(gr, p, set, bufB[:0])
		if len(bufA) > 4 {
			t.Fatalf("simple assignment of %v spans %d cells", p, len(bufA))
		}
		// Both keep the native cell first.
		if bufA[0] != bufB[0] {
			t.Fatalf("variants disagree on native cell for %v", p)
		}
	}
}

// Adaptive replication with a universal-policy graph must coincide
// exactly with the PBSM universal rule (PBSM is an instance of the graph
// of agreements, Section 4.4).
func TestUniversalPolicyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 16, MaxY: 16}, 1, 2)
	st := grid.NewStats(g)
	gr := agreements.Build(st, agreements.UniR)

	var bufA, bufU []int
	for i := 0; i < 20000; i++ {
		p := geom.Point{X: rng.Float64() * 16, Y: rng.Float64() * 16}
		// R points replicate exactly like PBSM UNI(R)...
		bufA = Adaptive(gr, p, tuple.R, bufA[:0])
		bufU = Universal(g, p, true, bufU[:0])
		if !sameSet(bufA, bufU) {
			t.Fatalf("R point %v: adaptive-UniR %v != universal %v", p, bufA, bufU)
		}
		// ...and S points stay in their native cell.
		bufA = Adaptive(gr, p, tuple.S, bufA[:0])
		if len(bufA) != 1 {
			t.Fatalf("S point %v replicated under UniR policy: %v", p, bufA)
		}
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int]bool{}
	for _, v := range a {
		m[v] = true
	}
	for _, v := range b {
		if !m[v] {
			return false
		}
	}
	return true
}

// A graph that has been encoded and decoded must assign every point to
// exactly the same cells as the original — the broadcast wire format
// carries everything replication needs.
func TestDecodedGraphAssignsIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := grid.New(geom.Rect{MinX: 0, MinY: 0, MaxX: 14, MaxY: 14}, 1, 2)
	st := grid.NewStats(g)
	for i := 0; i < 2000; i++ {
		st.Add(tuple.Set(rng.Intn(2)), geom.Point{X: rng.Float64() * 14, Y: rng.Float64() * 14})
	}
	gr := agreements.Build(st, agreements.LPiB)
	var buf bytes.Buffer
	if err := gr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := agreements.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB []int
	for i := 0; i < 20000; i++ {
		p := geom.Point{X: rng.Float64() * 14, Y: rng.Float64() * 14}
		set := tuple.Set(rng.Intn(2))
		bufA = Adaptive(gr, p, set, bufA[:0])
		bufB = Adaptive(back, p, set, bufB[:0])
		if len(bufA) != len(bufB) {
			t.Fatalf("point %v: %v vs %v", p, bufA, bufB)
		}
		for k := range bufA {
			if bufA[k] != bufB[k] {
				t.Fatalf("point %v: %v vs %v", p, bufA, bufB)
			}
		}
	}
}

// TestAdaptiveSoak is a long randomized oracle comparison; the trial
// count scales with SOAK_TRIALS (default small so CI stays fast).
func TestAdaptiveSoak(t *testing.T) {
	trials := 10
	if v := os.Getenv("SOAK_TRIALS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			trials = n
		}
	}
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < trials; trial++ {
		res := 2 + rng.Float64()*3
		w := 2 + rng.Float64()*8
		h := 2 + rng.Float64()*8
		bounds := geom.Rect{
			MinX: rng.Float64()*10 - 5, MinY: rng.Float64()*10 - 5,
		}
		bounds.MaxX = bounds.MinX + w*res
		bounds.MaxY = bounds.MinY + h*res
		g := grid.New(bounds, 1, res)

		// Mix lattice points with corner clusters for maximum pressure on
		// the duplicate-prone machinery.
		rs, ss := gridPoints(bounds, 1.1, rng)
		cr, cs := clusteredTuples(g, rng, 12)
		for i := range cr {
			cr[i].ID += 10_000_000
		}
		for i := range cs {
			cs[i].ID += 11_000_000
		}
		rs = append(rs, cr...)
		ss = append(ss, cs...)

		want := oracle(rs, ss, g.Eps)
		gr := agreements.BuildFromTypeFunc(g, hashTypeFunc(rng.Int63()))
		got := joinViaAssign(g, rs, ss, func(p geom.Point, set tuple.Set, dst []int) []int {
			return Adaptive(gr, p, set, dst)
		})
		if d := diffPairs(got, want); d != "" {
			t.Fatalf("soak trial %d (res %.3f, %dx%d): %s", trial, res, g.NX, g.NY, d)
		}
	}
}
