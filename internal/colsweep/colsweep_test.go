package colsweep

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// counterSink adapts a sweep.Counter to an EmitBatch sink.
func counterSink(c *sweep.Counter) EmitBatch {
	return func(ps []tuple.Pair) {
		for _, p := range ps {
			c.EmitPair(p)
		}
	}
}

// joinColumnar runs one cell through the columnar kernel and returns the
// counter.
func joinColumnar(rs, ss []tuple.Tuple, eps float64, selfFilter bool) sweep.Counter {
	var c sweep.Counter
	b := Get()
	defer Put(b)
	bat := b.Batch(counterSink(&c), selfFilter)
	JoinCell(b, rs, ss, eps, bat)
	bat.Flush()
	return c
}

func randomTuples(rng *rand.Rand, n int, extent float64, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{
			ID: base + int64(i),
			Pt: geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
		}
	}
	return out
}

// latticeTuples places points on an exact (eps/2)-lattice so many pairs
// sit at distance exactly eps — the closed-predicate border the scalar
// and columnar kernels must agree on bit-for-bit.
func latticeTuples(rng *rand.Rand, n int, eps float64, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	step := eps / 2
	for i := range out {
		out[i] = tuple.Tuple{
			ID: base + int64(i),
			Pt: geom.Point{X: float64(rng.Intn(12)) * step, Y: float64(rng.Intn(12)) * step},
		}
	}
	return out
}

// borderTuples generates pairs separated by exactly eps along an axis.
func borderTuples(rng *rand.Rand, n int, eps float64, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		x := rng.Float64() * 4
		y := rng.Float64() * 4
		if i%2 == 1 {
			x += eps // exactly eps from the previous point's column
		}
		out[i] = tuple.Tuple{ID: base + int64(i), Pt: geom.Point{X: x, Y: y}}
	}
	return out
}

// checkDifferential asserts columnar == scalar == nested loop on one input.
func checkDifferential(t *testing.T, rs, ss []tuple.Tuple, eps float64, label string) {
	t.Helper()
	var oracle, scalar sweep.Counter
	sweep.NestedLoop(rs, ss, eps, oracle.Emit)
	sweep.PlaneSweep(rs, ss, eps, scalar.Emit)
	col := joinColumnar(rs, ss, eps, false)
	if oracle != scalar {
		t.Fatalf("%s: scalar %d/%x, oracle %d/%x", label, scalar.N, scalar.Checksum, oracle.N, oracle.Checksum)
	}
	if oracle != col {
		t.Fatalf("%s: columnar %d/%x, oracle %d/%x", label, col.N, col.Checksum, oracle.N, oracle.Checksum)
	}
}

func TestColumnarDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		nr, ns := rng.Intn(300), rng.Intn(300)
		eps := 0.05 + rng.Float64()*2
		rs := randomTuples(rng, nr, 20, 0)
		ss := randomTuples(rng, ns, 20, 1_000_000)
		checkDifferential(t, rs, ss, eps, "random")
	}
}

func TestColumnarDifferentialLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		eps := []float64{0.25, 0.5, 1}[rng.Intn(3)]
		rs := latticeTuples(rng, 20+rng.Intn(200), eps, 0)
		ss := latticeTuples(rng, 20+rng.Intn(200), eps, 1_000_000)
		checkDifferential(t, rs, ss, eps, "lattice")
	}
}

func TestColumnarDifferentialExactEpsBorder(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		eps := 0.125 * float64(1+rng.Intn(8)) // powers keep x+eps exact
		rs := borderTuples(rng, 20+rng.Intn(150), eps, 0)
		ss := borderTuples(rng, 20+rng.Intn(150), eps, 1_000_000)
		checkDifferential(t, rs, ss, eps, "border")
	}
}

func TestColumnarSelfFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	ts := randomTuples(rng, 250, 8, 0)
	eps := 0.5
	// Scalar self-filter path: r.ID < s.ID.
	var want sweep.Counter
	sweep.PlaneSweep(ts, ts, eps, func(r, s tuple.Tuple) {
		if r.ID < s.ID {
			want.Emit(r, s)
		}
	})
	got := joinColumnar(ts, ts, eps, true)
	if want != got {
		t.Fatalf("self-filter columnar %d/%x, scalar %d/%x", got.N, got.Checksum, want.N, want.Checksum)
	}
	if got.N == 0 {
		t.Fatal("self-join produced no pairs; widen the workload")
	}
}

func TestColumnarEmptyAndTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	ss := randomTuples(rng, 5, 1, 1000)
	if c := joinColumnar(nil, ss, 1, false); c.N != 0 {
		t.Fatalf("empty R side must join empty, got %d", c.N)
	}
	if c := joinColumnar(ss, nil, 1, false); c.N != 0 {
		t.Fatalf("empty S side must join empty, got %d", c.N)
	}
	for trial := 0; trial < 20; trial++ {
		rs := randomTuples(rng, 1+rng.Intn(8), 1, 0)
		ts := randomTuples(rng, 1+rng.Intn(8), 1, 1000)
		checkDifferential(t, rs, ts, 0.3, "tiny")
	}
}

// TestColumnarBatchBoundary drives the join across the BatchSize flush
// boundary: a dense cell producing far more than one batch of pairs.
func TestColumnarBatchBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	rs := randomTuples(rng, 300, 1, 0) // dense: ~all pairs qualify
	ss := randomTuples(rng, 300, 1, 1_000_000)
	checkDifferential(t, rs, ss, 1.5, "dense")
}

func TestColumnarZeroAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	rs := randomTuples(rng, 2000, 50, 0)
	ss := randomTuples(rng, 2000, 50, 1_000_000)
	var c sweep.Counter
	b := Get()
	defer Put(b)
	bat := b.Batch(counterSink(&c), false)
	// Warm the pooled buffers to steady-state capacity once.
	JoinCell(b, rs, ss, 0.5, bat)
	bat.Flush()
	allocs := testing.AllocsPerRun(10, func() {
		JoinCell(b, rs, ss, 0.5, bat)
		bat.Flush()
	})
	if allocs != 0 {
		t.Fatalf("columnar JoinCell allocated %v times per join, want 0", allocs)
	}
	if c.N == 0 {
		t.Fatal("workload produced no pairs; the alloc assertion is vacuous")
	}
}

func TestProbeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	for trial := 0; trial < 30; trial++ {
		ts := randomTuples(rng, 1+rng.Intn(400), 10, 0)
		sweep.SortByX(ts)
		var cols Cols
		cols.Pack(ts)
		eps := 0.1 + rng.Float64()
		for probe := 0; probe < 20; probe++ {
			p := geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			var want, got sweep.Counter
			sweep.ProbeSorted(ts, p, eps, func(m tuple.Tuple) {
				want.EmitPair(tuple.Pair{RID: m.ID, SID: m.ID})
			})
			Probe(&cols, p.X, p.Y, eps, func(i int) {
				got.EmitPair(tuple.Pair{RID: cols.IDs[i], SID: cols.IDs[i]})
			})
			if want != got {
				t.Fatalf("trial %d: probe %d/%x, scalar %d/%x", trial, got.N, got.Checksum, want.N, want.Checksum)
			}
		}
	}
}

// FuzzColumnarDifferential decodes arbitrary bytes into two point sets
// and asserts the columnar, scalar, and nested-loop kernels agree.
func FuzzColumnarDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(10), uint8(10))
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255}, uint8(1), uint8(1))
	f.Add([]byte{128, 64, 32, 16, 8, 4, 2, 1, 0, 255}, uint8(30), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, nr, ns uint8) {
		if len(data) == 0 {
			return
		}
		eps := 0.25 + float64(data[0]%8)/8
		decode := func(n int, base int64, off int) []tuple.Tuple {
			out := make([]tuple.Tuple, n)
			for i := range out {
				bx := data[(off+2*i)%len(data)]
				by := data[(off+2*i+1)%len(data)]
				// Quantise to the eps/2 grid so exact-ε borders occur.
				out[i] = tuple.Tuple{
					ID: base + int64(i),
					Pt: geom.Point{X: float64(bx%16) * eps / 2, Y: float64(by%16) * eps / 2},
				}
			}
			return out
		}
		rs := decode(int(nr%64), 0, 0)
		ss := decode(int(ns%64), 1_000_000, 1)
		var oracle, scalar sweep.Counter
		sweep.NestedLoop(rs, ss, eps, oracle.Emit)
		sweep.PlaneSweep(rs, ss, eps, scalar.Emit)
		col := joinColumnar(rs, ss, eps, false)
		if oracle != scalar || oracle != col {
			t.Fatalf("kernel divergence: oracle %d/%x, scalar %d/%x, columnar %d/%x",
				oracle.N, oracle.Checksum, scalar.N, scalar.Checksum, col.N, col.Checksum)
		}
	})
}

// benchCells builds a partition-shaped workload: many mid-size cells,
// the regime the per-cell kernels live in.
func benchCells(cells, perSide int, extent, _ float64) (rss, sss [][]tuple.Tuple) {
	rng := rand.New(rand.NewSource(99))
	for c := 0; c < cells; c++ {
		rss = append(rss, randomTuples(rng, perSide, extent, int64(c)<<20))
		sss = append(sss, randomTuples(rng, perSide, extent, 1<<40|int64(c)<<20))
	}
	return rss, sss
}

// BenchmarkJoinCellColumnar is the headline sweep microbenchmark: the
// columnar kernel over 64 cells of 256+256 points. pairs/sec is the
// throughput number BENCH_sweep.json tracks.
func BenchmarkJoinCellColumnar(b *testing.B) {
	rss, sss := benchCells(64, 256, 8, 0)
	const eps = 0.5
	bufs := Get()
	defer Put(bufs)
	var c sweep.Counter
	bat := bufs.Batch(counterSink(&c), false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rss {
			JoinCell(bufs, rss[j], sss[j], eps, bat)
		}
		bat.Flush()
	}
	b.StopTimer()
	if c.N > 0 {
		b.ReportMetric(float64(c.N)/b.Elapsed().Seconds(), "pairs/sec")
	}
}

// BenchmarkJoinCellScalar is the same workload through the scalar kernel
// (copy + slices.SortFunc + per-pair emit) — the post-satellite scalar
// baseline.
func BenchmarkJoinCellScalar(b *testing.B) {
	rss, sss := benchCells(64, 256, 8, 0)
	const eps = 0.5
	var c sweep.Counter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rss {
			sweep.PlaneSweep(rss[j], sss[j], eps, c.Emit)
		}
	}
	b.StopTimer()
	if c.N > 0 {
		b.ReportMetric(float64(c.N)/b.Elapsed().Seconds(), "pairs/sec")
	}
}
