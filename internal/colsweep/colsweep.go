// Package colsweep is the columnar (structure-of-arrays) plane-sweep
// kernel: the hot partition-level ε-join rewritten for cache locality and
// zero steady-state allocation.
//
// The scalar kernel in internal/sweep operates on []tuple.Tuple — an
// array-of-structs whose 40-byte elements (id, two coordinates, a payload
// slice header) drag payload pointers through the cache on every
// comparison — sorts them with reflection-based sort.Slice, and calls a
// dynamic Emit closure once per result pair. This package instead
//
//   - packs each cell's tuples into parallel Xs/Ys/IDs slabs, so the sort
//     and the sweep's ε-window scans touch contiguous 8-byte lanes only;
//   - sorts by an int32 index permutation with slices.SortFunc (pdqsort,
//     no reflection), then gathers the columns once;
//   - picks the sweep axis by the spread computed during packing — a free
//     by-product of the packing pass — and flips axes by swapping slice
//     headers rather than rewriting points;
//   - emits results in batches: pairs accumulate in a reused []tuple.Pair
//     buffer flushed through one EmitBatch call per BatchSize results,
//     replacing one dynamic call per pair with one per batch;
//   - recycles every working buffer through a sync.Pool, so the
//     steady-state per-cell join performs zero heap allocations.
//
// The scalar kernel remains the differential-test oracle: for any input,
// JoinCell must produce exactly the pair multiset of sweep.PlaneSweep
// (asserted via identical sweep.Counter{N, Checksum} in the package's
// property and fuzz tests).
package colsweep

import (
	"slices"
	"sync"

	"spatialjoin/internal/tuple"
)

// BatchSize is the result-buffer capacity of a Batch: the number of pairs
// accumulated between EmitBatch flushes.
const BatchSize = 1024

// nestedLoopThreshold mirrors internal/sweep: below this per-side size the
// quadratic loop beats packing and sorting.
const nestedLoopThreshold = 8

// EmitBatch receives one batch of verified result pairs. The slice is
// reused by the emitter after the call returns: implementations must copy
// the pairs out (or fully consume them) before returning and must not
// retain the slice.
type EmitBatch func([]tuple.Pair)

// Batch accumulates result pairs and hands them to an EmitBatch sink in
// BatchSize chunks. Obtain one from Buffers.Batch so the pair buffer is
// pooled; call Flush after the last Add to deliver the partial tail batch.
type Batch struct {
	emit       EmitBatch
	buf        []tuple.Pair
	selfFilter bool
}

// Add records one result pair, flushing if the buffer filled up. In
// self-join mode pairs are kept only when rid < sid (dropping identity
// pairs and one orientation of every match, like the scalar path).
func (b *Batch) Add(rid, sid int64) {
	if b.selfFilter && rid >= sid {
		return
	}
	b.buf = append(b.buf, tuple.Pair{RID: rid, SID: sid})
	if len(b.buf) == cap(b.buf) {
		b.Flush()
	}
}

// Flush delivers the buffered pairs, if any, to the sink.
func (b *Batch) Flush() {
	if len(b.buf) > 0 {
		b.emit(b.buf)
		b.buf = b.buf[:0]
	}
}

// Cols is a columnar slab of points: parallel coordinate and id lanes.
// Invariant: len(Xs) == len(Ys) == len(IDs).
type Cols struct {
	Xs, Ys []float64
	IDs    []int64
}

// Len returns the number of points in the slab.
func (c *Cols) Len() int { return len(c.IDs) }

// Reset truncates the slab, keeping capacity for reuse.
func (c *Cols) Reset() {
	c.Xs, c.Ys, c.IDs = c.Xs[:0], c.Ys[:0], c.IDs[:0]
}

// Append adds one point to the slab.
func (c *Cols) Append(x, y float64, id int64) {
	c.Xs = append(c.Xs, x)
	c.Ys = append(c.Ys, y)
	c.IDs = append(c.IDs, id)
}

// Pack replaces c's contents with ts (payloads are dropped: the kernel
// joins on coordinates and reports ids). It returns the spread (max-min)
// of each axis, computed during the same pass — the input of the
// sweep-axis choice, for free.
func (c *Cols) Pack(ts []tuple.Tuple) (spreadX, spreadY float64) {
	c.Reset()
	if len(ts) == 0 {
		return 0, 0
	}
	c.Xs = slices.Grow(c.Xs, len(ts))
	c.Ys = slices.Grow(c.Ys, len(ts))
	c.IDs = slices.Grow(c.IDs, len(ts))
	minX, maxX := ts[0].Pt.X, ts[0].Pt.X
	minY, maxY := ts[0].Pt.Y, ts[0].Pt.Y
	for i := range ts {
		x, y := ts[i].Pt.X, ts[i].Pt.Y
		c.Xs = append(c.Xs, x)
		c.Ys = append(c.Ys, y)
		c.IDs = append(c.IDs, ts[i].ID)
		if x < minX {
			minX = x
		} else if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		} else if y > maxY {
			maxY = y
		}
	}
	return maxX - minX, maxY - minY
}

// SwapAxes flips the slab's sweep axis by exchanging the coordinate slice
// headers — no points move. Emitted ids are axis-independent, so sweeping
// swapped slabs yields the identical pair set.
func (c *Cols) SwapAxes() { c.Xs, c.Ys = c.Ys, c.Xs }

// SortByX sorts the slab by ascending Xs via an index permutation: the
// int32 permutation is sorted with slices.SortFunc (no reflection), then
// each lane is gathered once through scratch space from b.
func (c *Cols) SortByX(b *Buffers) {
	n := c.Len()
	if n < 2 {
		return
	}
	perm := b.perm[:0]
	perm = slices.Grow(perm, n)
	for i := 0; i < n; i++ {
		perm = append(perm, int32(i))
	}
	xs := c.Xs
	slices.SortFunc(perm, func(a, b int32) int {
		if xs[a] < xs[b] {
			return -1
		}
		if xs[a] > xs[b] {
			return 1
		}
		return 0
	})
	b.perm = perm
	b.tmpF = append(b.tmpF[:0], c.Xs...)
	for i, p := range perm {
		c.Xs[i] = b.tmpF[p]
	}
	b.tmpF = append(b.tmpF[:0], c.Ys...)
	for i, p := range perm {
		c.Ys[i] = b.tmpF[p]
	}
	b.tmpI = append(b.tmpI[:0], c.IDs...)
	for i, p := range perm {
		c.IDs[i] = b.tmpI[p]
	}
}

// Buffers is the pooled working set of the columnar kernel: the packed
// and sorted slabs of both inputs, the permutation and gather scratch,
// and the result batch buffer. Obtain one with Get, return it with Put;
// a Buffers must not be shared across goroutines.
type Buffers struct {
	r, s Cols
	perm []int32
	tmpF []float64
	tmpI []int64
	bat  Batch
}

var pool = sync.Pool{New: func() any { return new(Buffers) }}

// Get returns a Buffers from the pool.
func Get() *Buffers { return pool.Get().(*Buffers) }

// Put returns a Buffers to the pool. The caller must not use it (or any
// Batch obtained from it) afterwards.
func Put(b *Buffers) {
	b.bat.emit = nil
	pool.Put(b)
}

// Batch binds b's pooled pair buffer to an emission sink and returns the
// ready-to-use Batch. One Batch may span many JoinCell calls (batching
// across cells); the caller flushes once at the end.
func (b *Buffers) Batch(emit EmitBatch, selfFilter bool) *Batch {
	if b.bat.buf == nil {
		b.bat.buf = make([]tuple.Pair, 0, BatchSize)
	}
	b.bat.emit = emit
	b.bat.selfFilter = selfFilter
	return &b.bat
}

// JoinCell computes the ε-distance join of one cell's R and S tuples with
// the columnar kernel, adding every pair (r, s) with d(r, s) <= eps to
// out exactly once. Tiny cells take the quadratic loop directly; larger
// cells are packed into columnar slabs, sorted along the wider axis, and
// swept. The caller owns flushing out.
func JoinCell(b *Buffers, rs, ss []tuple.Tuple, eps float64, out *Batch) {
	if len(rs) == 0 || len(ss) == 0 {
		return
	}
	if len(rs)*len(ss) <= nestedLoopThreshold*nestedLoopThreshold {
		eps2 := eps * eps
		for i := range rs {
			for j := range ss {
				if rs[i].Pt.SqDist(ss[j].Pt) <= eps2 {
					out.Add(rs[i].ID, ss[j].ID)
				}
			}
		}
		return
	}
	rsx, rsy := b.r.Pack(rs)
	ssx, ssy := b.s.Pack(ss)
	// Sweep along the wider combined extent: fewer points per ε-window.
	if max(rsy, ssy) > max(rsx, ssx) {
		b.r.SwapAxes()
		b.s.SwapAxes()
	}
	b.r.SortByX(b)
	b.s.SortByX(b)
	SweepSorted(&b.r, &b.s, eps, out)
}

// SweepSorted joins two x-sorted columnar slabs, adding every pair within
// eps to out. It is the inner kernel of JoinCell and the batch entry
// point for callers that maintain sorted slabs themselves (the streaming
// engine's per-cell slabs and the columnar pipeline's partition slabs).
//
// The ε-window scan separates true hits from candidates: a pair whose
// coordinate deltas satisfy |dx|+|dy| <= ε is within ε in L2 as well
// (the L1 ball is inscribed in the L2 ball), so it is emitted without
// the squared-distance refinement; only the candidates in the annulus
// between the two balls pay the multiplications.
func SweepSorted(r, s *Cols, eps float64, out *Batch) {
	rx, ry, rid := r.Xs, r.Ys, r.IDs
	sx, sy, sid := s.Xs, s.Ys, s.IDs
	if len(rx) == 0 || len(sx) == 0 {
		return
	}
	eps2 := eps * eps
	start := 0
	for i := range rx {
		x := rx[i]
		lo := x - eps
		for start < len(sx) && sx[start] < lo {
			start++
		}
		if start == len(sx) {
			return
		}
		y := ry[i]
		hi := x + eps
		for j := start; j < len(sx) && sx[j] <= hi; j++ {
			dy := y - sy[j]
			if dy < 0 {
				dy = -dy
			}
			if dy > eps {
				continue
			}
			dx := x - sx[j]
			if dx < 0 {
				dx = -dx
			}
			// True hit: inside the inscribed L1 ball, no refinement needed.
			if dx+dy <= eps {
				out.Add(rid[i], sid[j])
				continue
			}
			// Candidate: refine with the exact squared distance.
			if dx*dx+dy*dy <= eps2 {
				out.Add(rid[i], sid[j])
			}
		}
	}
}

// Probe reports the index of every point of the x-sorted slab c within
// eps of (px, py) — the columnar analogue of sweep.ProbeSorted, used by
// the streaming engine to probe one arriving point against a maintained
// slab in O(log n + ε-window). Matches at distance exactly eps are
// reported (closed predicate).
func Probe(c *Cols, px, py, eps float64, emit func(i int)) {
	n := len(c.Xs)
	if n == 0 {
		return
	}
	// Binary search for the first x >= px-eps.
	lo, hi := 0, n
	bound := px - eps
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.Xs[mid] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	eps2 := eps * eps
	end := px + eps
	for i := lo; i < n && c.Xs[i] <= end; i++ {
		dy := py - c.Ys[i]
		if dy < 0 {
			dy = -dy
		}
		if dy > eps {
			continue
		}
		dx := px - c.Xs[i]
		if dx < 0 {
			dx = -dx
		}
		// Same true-hit/candidate split as SweepSorted.
		if dx+dy <= eps || dx*dx+dy*dy <= eps2 {
			emit(i)
		}
	}
}
