package dpe

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/lpt"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/tuple"
)

// LPT placement must reduce the worst per-partition load compared to hash
// partitioning on a heavily skewed workload (the mechanism behind the
// paper's Table 7 gains), without changing the result.
func TestLPTReducesMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}
	g := grid.New(bounds, 1, 2)
	// Many medium-hot single-cell clusters of very different heat: hash
	// placement inevitably lands several hot cells on one partition,
	// while LPT spreads them. (A single dominating cell would bound the
	// makespan for both, so the workload uses many.)
	var rs, ss []tuple.Tuple
	id := int64(0)
	for c := 0; c < 60; c++ {
		cx := 1 + rng.Float64()*38
		cy := 1 + rng.Float64()*38
		heat := 50 + rng.Intn(400)
		for i := 0; i < heat; i++ {
			p := geom.Point{X: cx + rng.NormFloat64()*0.2, Y: cy + rng.NormFloat64()*0.2}
			rs = append(rs, tuple.Tuple{ID: id, Pt: p})
			ss = append(ss, tuple.Tuple{ID: id + 10_000_000, Pt: geom.Point{
				X: p.X + rng.NormFloat64()*0.1, Y: p.Y + rng.NormFloat64()*0.1}})
			id++
		}
	}
	clampAll := func(ts []tuple.Tuple) {
		for i := range ts {
			p := ts[i].Pt
			if p.X < 0 {
				p.X = 0
			} else if p.X > 40 {
				p.X = 40
			}
			if p.Y < 0 {
				p.Y = 0
			} else if p.Y > 40 {
				p.Y = 40
			}
			ts[i].Pt = p
		}
	}
	clampAll(rs)
	clampAll(ss)

	// Exact per-cell costs (full statistics).
	st := grid.NewStats(g)
	st.AddAll(tuple.R, rs)
	st.AddAll(tuple.S, ss)
	costs := make([]int64, g.NumCells())
	for id := range costs {
		costs[id] = st.EstimatedCost(id)
	}

	const nparts = 16
	assign := func(p geom.Point, set tuple.Set, dst []int) []int {
		return replicate.Universal(g, p, set == tuple.R, dst)
	}
	runWith := func(part Partitioner) *Result {
		res, err := Run(Spec{
			R: rs, S: ss, Eps: 1,
			AssignR: assign, AssignS: assign,
			Part:    part,
			Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hash := runWith(HashPartitioner{N: nparts})
	balanced := runWith(ExplicitPartitioner{Table: lpt.Assign(costs, nparts), N: nparts})

	if balanced.Results != hash.Results || balanced.Checksum != hash.Checksum {
		t.Fatalf("LPT changed results: %d vs %d", balanced.Results, hash.Results)
	}
	if balanced.MaxPartitionCost >= hash.MaxPartitionCost {
		t.Fatalf("LPT makespan %d >= hash %d on a skewed workload",
			balanced.MaxPartitionCost, hash.MaxPartitionCost)
	}
	t.Logf("max partition cost: hash=%d, LPT=%d (%.1fx better)",
		hash.MaxPartitionCost, balanced.MaxPartitionCost,
		float64(hash.MaxPartitionCost)/float64(balanced.MaxPartitionCost))
}
