//go:build race

package dpe

// raceEnabled reports whether the race detector is compiled in; the
// allocation-count gates skip under it because its instrumentation
// makes testing.AllocsPerRun nondeterministic.
const raceEnabled = true
