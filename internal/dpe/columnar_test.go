package dpe

import (
	"math/rand"
	"slices"
	"testing"

	"spatialjoin/internal/colpipe"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/tuple"
)

// columnarWorkloads are the differential inputs: uniform random points,
// a lattice whose points sit exactly on cell borders (the replication
// tie cases), and a comb of points exactly ε apart so the inclusive
// distance boundary is exercised on both the scalar and columnar paths.
func columnarWorkloads(eps float64) map[string][2][]tuple.Tuple {
	rng := rand.New(rand.NewSource(41))
	random := [2][]tuple.Tuple{
		randomTuples(rng, 2500, 20, 0),
		randomTuples(rng, 2500, 20, 1_000_000),
	}

	// grid.New(bounds, eps, 2) cells have side 2ε; put points on every
	// multiple of ε so half of them lie exactly on cell borders.
	var latR, latS []tuple.Tuple
	id := int64(0)
	for x := 0.0; x <= 20; x += eps {
		for y := 0.0; y <= 20; y += 2 * eps {
			latR = append(latR, tuple.Tuple{ID: id, Pt: geom.Point{X: x, Y: y}})
			latS = append(latS, tuple.Tuple{ID: 1_000_000 + id, Pt: geom.Point{X: x, Y: y + eps}})
			id++
		}
	}

	// Exact ε-border: R at x=k·3ε, S exactly ε to the right — every
	// pair's distance is exactly eps and must be emitted (inclusive ≤).
	var combR, combS []tuple.Tuple
	for i := 0; i < 400; i++ {
		x := float64(i%20) * 3 * eps
		y := float64(i/20) * 3 * eps
		combR = append(combR, tuple.Tuple{ID: int64(i), Pt: geom.Point{X: x, Y: y}})
		combS = append(combS, tuple.Tuple{ID: 1_000_000 + int64(i), Pt: geom.Point{X: x + eps, Y: y}})
	}

	return map[string][2][]tuple.Tuple{
		"random":     random,
		"lattice":    {latR, latS},
		"eps-border": {combR, combS},
	}
}

// columnarSpec is uniSpec plus the columnar gate: Cells (and optionally
// CellRank) switch Prepare onto the slab pipeline.
func columnarSpec(rs, ss []tuple.Tuple, eps float64, workers, nparts int, hilbert bool) (Spec, *grid.Grid) {
	spec, g := uniSpec(rs, ss, eps, workers, nparts)
	spec.Cells = g.NumCells()
	if hilbert {
		spec.CellRank = colpipe.HilbertRanks(g.NX, g.NY)
	}
	return spec, g
}

// TestColumnarMatchesScalarDifferential runs every workload through the
// columnar pipeline and the Keyed scalar oracle (dpe.ScalarKernel) and
// requires byte-identical outcomes: result count, checksum, and the
// full collected pair set.
func TestColumnarMatchesScalarDifferential(t *testing.T) {
	const eps = 0.5
	for name, w := range columnarWorkloads(eps) {
		for _, hilbert := range []bool{false, true} {
			spec, _ := columnarSpec(w[0], w[1], eps, 3, 8, hilbert)
			spec.Collect = true
			col, err := Run(spec)
			if err != nil {
				t.Fatalf("%s columnar: %v", name, err)
			}

			oracle := spec
			oracle.Kernel = ScalarKernel
			want, err := Run(oracle)
			if err != nil {
				t.Fatalf("%s scalar: %v", name, err)
			}

			if col.Results != want.Results || col.Checksum != want.Checksum {
				t.Fatalf("%s hilbert=%v: columnar %d/%x, scalar %d/%x",
					name, hilbert, col.Results, col.Checksum, want.Results, want.Checksum)
			}
			sortPairs(col.Pairs)
			sortPairs(want.Pairs)
			if !slices.Equal(col.Pairs, want.Pairs) {
				t.Fatalf("%s hilbert=%v: pair sets diverge (%d vs %d pairs)",
					name, hilbert, len(col.Pairs), len(want.Pairs))
			}
		}
	}
}

// cellMembers maps cell id → sorted tuple IDs, the canonical form both
// representations are reduced to for the per-cell comparison.
type cellMembers map[int][]int64

func (m cellMembers) add(cell int, id int64) {
	m[cell] = append(m[cell], id)
}

func (m cellMembers) sorted() cellMembers {
	for _, ids := range m {
		slices.Sort(ids)
	}
	return m
}

// TestColumnarPartitionContents proves the index-permutation shuffle
// reproduces the scalar path's partitions exactly: for every reduce
// partition and every cell, the columnar slab group holds the same
// tuple IDs — native and halo replicas alike — as the Keyed buckets.
func TestColumnarPartitionContents(t *testing.T) {
	const eps = 0.5
	for name, w := range columnarWorkloads(eps) {
		for _, hilbert := range []bool{false, true} {
			spec, g := columnarSpec(w[0], w[1], eps, 3, 8, hilbert)
			prCol, err := Prepare(spec)
			if err != nil {
				t.Fatalf("%s columnar prepare: %v", name, err)
			}
			if !prCol.Columnar() {
				t.Fatalf("%s: prepared plan is not columnar", name)
			}

			oracle := spec
			oracle.Kernel = ScalarKernel
			prKey, err := Prepare(oracle)
			if err != nil {
				t.Fatalf("%s scalar prepare: %v", name, err)
			}

			// rank → cell, inverting CellRank (identity when unset).
			rankCell := make([]int, g.NumCells())
			for c := 0; c < g.NumCells(); c++ {
				if spec.CellRank != nil {
					rankCell[spec.CellRank[c]] = c
				} else {
					rankCell[c] = c
				}
			}

			if prCol.NumPartitions() != prKey.NumPartitions() {
				t.Fatalf("%s: %d columnar partitions, %d keyed",
					name, prCol.NumPartitions(), prKey.NumPartitions())
			}
			for p := 0; p < prCol.NumPartitions(); p++ {
				krs, kss := prKey.Partition(p)
				crs, css := prCol.ColumnarPartition(p)
				for side, pair := range [2]struct {
					keyed []Keyed
					slab  *colpipe.Slab
				}{{krs, crs}, {kss, css}} {
					wantCells := cellMembers{}
					for _, rec := range pair.keyed {
						wantCells.add(rec.Cell, rec.T.ID)
					}
					gotCells := cellMembers{}
					for k := 0; k < pair.slab.NumGroups(); k++ {
						cell := rankCell[pair.slab.Ranks[k]]
						lo, hi := pair.slab.Group(k)
						for i := lo; i < hi; i++ {
							gotCells.add(cell, pair.slab.IDs[i])
						}
					}
					wantCells.sorted()
					gotCells.sorted()
					if len(gotCells) != len(wantCells) {
						t.Fatalf("%s hilbert=%v part %d side %d: %d cells, want %d",
							name, hilbert, p, side, len(gotCells), len(wantCells))
					}
					for cell, want := range wantCells {
						if !slices.Equal(gotCells[cell], want) {
							t.Fatalf("%s hilbert=%v part %d side %d cell %d: members %v, want %v",
								name, hilbert, p, side, cell, gotCells[cell], want)
						}
					}
				}
			}

			// The modelled shuffle footprint must agree too: replicas are
			// index ranges, not copies, but the byte model still counts
			// every keyed record.
			if a, b := prCol.FootprintBytes(), prKey.FootprintBytes(); a != b {
				t.Fatalf("%s hilbert=%v: columnar footprint %d bytes, keyed %d", name, hilbert, a, b)
			}
		}
	}
}
