package dpe

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/grid"
	"spatialjoin/internal/replicate"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

func randomTuples(rng *rand.Rand, n int, extent float64, base int64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{
			ID: base + int64(i),
			Pt: geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
		}
	}
	return out
}

// uniSpec builds a UNI(R) PBSM spec over a fresh grid.
func uniSpec(rs, ss []tuple.Tuple, eps float64, workers, nparts int) (Spec, *grid.Grid) {
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}
	g := grid.New(bounds, eps, 2)
	spec := Spec{
		R: rs, S: ss, Eps: eps,
		AssignR: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, true, dst)
		},
		AssignS: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, false, dst)
		},
		Part:    HashPartitioner{N: nparts},
		Workers: workers,
	}
	return spec, g
}

func TestRunMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := randomTuples(rng, 3000, 20, 0)
	ss := randomTuples(rng, 3000, 20, 1_000_000)
	eps := 0.5

	var want sweep.Counter
	sweep.NestedLoop(rs, ss, eps, want.Emit)

	for _, workers := range []int{1, 3, 8} {
		for _, nparts := range []int{1, 7, 32} {
			spec, _ := uniSpec(rs, ss, eps, workers, nparts)
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Results != want.N || res.Checksum != want.Checksum {
				t.Fatalf("workers=%d parts=%d: results %d/%x, want %d/%x",
					workers, nparts, res.Results, res.Checksum, want.N, want.Checksum)
			}
		}
	}
}

func TestRunCollectPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rs := randomTuples(rng, 500, 20, 0)
	ss := randomTuples(rng, 500, 20, 1_000_000)
	spec, _ := uniSpec(rs, ss, 0.8, 4, 16)
	spec.Collect = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Pairs)) != res.Results {
		t.Fatalf("collected %d pairs, counted %d", len(res.Pairs), res.Results)
	}
	var c sweep.Collector
	sweep.NestedLoop(rs, ss, 0.8, c.Emit)
	sortPairs(res.Pairs)
	sortPairs(c.Pairs)
	for i := range c.Pairs {
		if res.Pairs[i] != c.Pairs[i] {
			t.Fatalf("pair %d: %v vs %v", i, res.Pairs[i], c.Pairs[i])
		}
	}
}

func sortPairs(ps []tuple.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RID != ps[j].RID {
			return ps[i].RID < ps[j].RID
		}
		return ps[i].SID < ps[j].SID
	})
}

func TestReplicationCounts(t *testing.T) {
	// One R point near a cell border, one interior; S not replicated.
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}
	g := grid.New(bounds, 1, 4) // 2x2 cells of side 4
	rs := []tuple.Tuple{
		{ID: 1, Pt: geom.Point{X: 3.5, Y: 2}}, // within eps of east neighbour only
		{ID: 2, Pt: geom.Point{X: 2, Y: 2}},   // interior: no replication
	}
	ss := []tuple.Tuple{{ID: 3, Pt: geom.Point{X: 4.4, Y: 2}}}
	spec := Spec{
		R: rs, S: ss, Eps: 1,
		AssignR: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, true, dst)
		},
		AssignS: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, false, dst)
		},
		Part:    HashPartitioner{N: 4},
		Workers: 2,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicatedR != 1 || res.ReplicatedS != 0 {
		t.Fatalf("replicated R/S = %d/%d, want 1/0", res.ReplicatedR, res.ReplicatedS)
	}
	if res.Results != 1 {
		t.Fatalf("results = %d, want 1", res.Results)
	}
	if res.Replicated() != 1 {
		t.Fatalf("Replicated() = %d", res.Replicated())
	}
}

func TestShuffleByteAccounting(t *testing.T) {
	// One R tuple assigned to exactly one cell, one S tuple likewise, no
	// payloads: shuffled bytes must be exactly 2 keyed tuples of 32 bytes.
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}
	g := grid.New(bounds, 1, 4) // interior points of a 4-wide cell do not replicate
	rs := []tuple.Tuple{{ID: 1, Pt: geom.Point{X: 2, Y: 2}}}
	ss := []tuple.Tuple{{ID: 2, Pt: geom.Point{X: 2.2, Y: 2}}}
	spec := Spec{
		R: rs, S: ss, Eps: 1,
		AssignR: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, true, dst)
		},
		AssignS: func(p geom.Point, set tuple.Set, dst []int) []int {
			return replicate.Universal(g, p, false, dst)
		},
		Part:    HashPartitioner{N: 8},
		Workers: 4,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShuffledBytes != 64 {
		t.Fatalf("shuffled bytes = %d, want 64", res.ShuffledBytes)
	}
	if res.RemoteBytes > res.ShuffledBytes {
		t.Fatalf("remote bytes %d > shuffled %d", res.RemoteBytes, res.ShuffledBytes)
	}
}

func TestPayloadsIncreaseShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomTuples(rng, 1000, 20, 0)
	other := randomTuples(rng, 1000, 20, 1_000_000)
	spec0, _ := uniSpec(base, other, 0.5, 4, 16)
	res0, err := Run(spec0)
	if err != nil {
		t.Fatal(err)
	}
	specBig, _ := uniSpec(tuple.WithPayloads(base, 128), tuple.WithPayloads(other, 128), 0.5, 4, 16)
	resBig, err := Run(specBig)
	if err != nil {
		t.Fatal(err)
	}
	if resBig.ShuffledBytes <= res0.ShuffledBytes {
		t.Fatalf("128-byte payloads did not grow shuffle: %d vs %d", resBig.ShuffledBytes, res0.ShuffledBytes)
	}
	if resBig.Results != res0.Results {
		t.Fatalf("payloads changed results: %d vs %d", resBig.Results, res0.Results)
	}
	wantGrowth := res0.ShuffledBytes / 32 * 128 // 128 extra bytes per keyed record
	if got := resBig.ShuffledBytes - res0.ShuffledBytes; got != wantGrowth {
		t.Fatalf("shuffle growth = %d, want %d", got, wantGrowth)
	}
}

func TestDedupSpec(t *testing.T) {
	// Duplicate results via an assignment that sends BOTH sets to both
	// neighbouring cells: every near-border pair is found twice.
	bounds := geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}
	g := grid.New(bounds, 1, 2)
	rng := rand.New(rand.NewSource(6))
	rs := randomTuples(rng, 2000, 20, 0)
	ss := randomTuples(rng, 2000, 20, 1_000_000)
	dupAssign := func(p geom.Point, set tuple.Set, dst []int) []int {
		return replicate.Universal(g, p, true, dst)
	}
	var want sweep.Counter
	sweep.NestedLoop(rs, ss, 1, want.Emit)

	spec := Spec{
		R: rs, S: ss, Eps: 1,
		AssignR: dupAssign, AssignS: dupAssign,
		Part: HashPartitioner{N: 16}, Workers: 4,
		Dedup: true,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Results != want.N || res.Checksum != want.Checksum {
		t.Fatalf("dedup results %d/%x, want %d/%x", res.Results, res.Checksum, want.N, want.Checksum)
	}
	// Without dedup the same spec must overcount.
	spec.Dedup = false
	raw, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if raw.Results <= want.N {
		t.Fatalf("expected duplicates without dedup: %d vs oracle %d", raw.Results, want.N)
	}
}

func TestExplicitPartitioner(t *testing.T) {
	table := []int{0, 1, 0, 1}
	p := ExplicitPartitioner{Table: table, N: 2}
	if p.PartitionOf(2) != 0 || p.PartitionOf(3) != 1 {
		t.Fatal("table routing broken")
	}
	if got := p.PartitionOf(99); got < 0 || got >= 2 {
		t.Fatalf("fallback routing out of range: %d", got)
	}
	if p.NumPartitions() != 2 {
		t.Fatal("NumPartitions broken")
	}
}

func TestHashPartitionerRange(t *testing.T) {
	h := HashPartitioner{N: 7}
	counts := make([]int, 7)
	for c := 0; c < 10000; c++ {
		p := h.PartitionOf(c)
		if p < 0 || p >= 7 {
			t.Fatalf("partition %d out of range", p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < 1000 || c > 2000 {
			t.Fatalf("partition %d badly balanced: %d of 10000", p, c)
		}
	}
}

func TestRunValidation(t *testing.T) {
	ok := Spec{
		Eps:     1,
		AssignR: func(p geom.Point, s tuple.Set, d []int) []int { return append(d, 0) },
		AssignS: func(p geom.Point, s tuple.Set, d []int) []int { return append(d, 0) },
		Part:    HashPartitioner{N: 1},
	}
	bad := ok
	bad.Eps = 0
	if _, err := Run(bad); err == nil {
		t.Error("expected error for eps=0")
	}
	bad = ok
	bad.AssignR = nil
	if _, err := Run(bad); err == nil {
		t.Error("expected error for nil AssignR")
	}
	bad = ok
	bad.Part = nil
	if _, err := Run(bad); err == nil {
		t.Error("expected error for nil partitioner")
	}
	if _, err := Run(ok); err != nil {
		t.Errorf("valid empty spec failed: %v", err)
	}
}

func TestWorkerBusyReported(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rs := randomTuples(rng, 2000, 20, 0)
	ss := randomTuples(rng, 2000, 20, 1_000_000)
	spec, _ := uniSpec(rs, ss, 0.5, 3, 12)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WorkerBusy) != 3 {
		t.Fatalf("worker busy entries = %d, want 3", len(res.WorkerBusy))
	}
	if res.MaxPartitionCost <= 0 {
		t.Fatalf("max partition cost = %d, want positive", res.MaxPartitionCost)
	}
	if res.TotalTime() <= 0 {
		t.Fatal("total time must be positive")
	}
}

func TestNetBandwidthCharging(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rs := randomTuples(rng, 2000, 20, 0)
	ss := randomTuples(rng, 2000, 20, 1_000_000)
	spec, _ := uniSpec(rs, ss, 0.5, 4, 16)
	base, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if base.NetTime != 0 {
		t.Fatalf("NetTime without bandwidth = %v, want 0", base.NetTime)
	}
	spec.NetBandwidth = 1e6 // 1 MB/s: slow enough to dominate
	slow, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if slow.NetTime <= 0 {
		t.Fatal("NetTime with bandwidth must be positive")
	}
	// NetTime = RemoteBytes / workers / bandwidth.
	want := time.Duration(float64(slow.RemoteBytes) / 4 / 1e6 * float64(time.Second))
	if diff := slow.NetTime - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("NetTime = %v, want %v", slow.NetTime, want)
	}
	if slow.SimulatedTime() <= base.SimulatedTime() && slow.NetTime > base.SimulatedTime() {
		t.Fatal("network charge not reflected in simulated time")
	}
	// Results are unaffected.
	if slow.Results != base.Results || slow.Checksum != base.Checksum {
		t.Fatal("bandwidth changed results")
	}
}

func TestSimulatedTimeComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rs := randomTuples(rng, 3000, 20, 0)
	ss := randomTuples(rng, 3000, 20, 1_000_000)
	spec, _ := uniSpec(rs, ss, 0.5, 6, 24)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MapBusy) != 6 || len(res.WorkerBusy) != 6 {
		t.Fatalf("busy slices = %d/%d, want 6", len(res.MapBusy), len(res.WorkerBusy))
	}
	var maxMap, maxJoin time.Duration
	for i := 0; i < 6; i++ {
		if res.MapBusy[i] > maxMap {
			maxMap = res.MapBusy[i]
		}
		if res.WorkerBusy[i] > maxJoin {
			maxJoin = res.WorkerBusy[i]
		}
	}
	want := res.SampleTime + res.BuildTime + maxMap + res.ShuffleTime + res.NetTime + maxJoin + res.DedupTime
	if res.SimulatedTime() != want {
		t.Fatalf("SimulatedTime = %v, want %v", res.SimulatedTime(), want)
	}
	if res.TotalPartitionCost < res.MaxPartitionCost {
		t.Fatalf("total cost %d < max cost %d", res.TotalPartitionCost, res.MaxPartitionCost)
	}
}
