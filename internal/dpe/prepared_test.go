package dpe

import (
	"math/rand"
	"sync"
	"testing"
)

// TestPrepareExecuteMatchesRun asserts that splitting the pipeline into
// Prepare + Execute is observationally identical to the one-shot Run,
// and that repeated executions of the same plan agree bit for bit.
func TestPrepareExecuteMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rs := randomTuples(rng, 2000, 20, 0)
	ss := randomTuples(rng, 2000, 20, 1_000_000)
	spec, _ := uniSpec(rs, ss, 0.6, 4, 16)

	want, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := pr.Execute(ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Results != want.Results || got.Checksum != want.Checksum {
			t.Fatalf("execute %d: (%d, %#x) != run (%d, %#x)",
				i, got.Results, got.Checksum, want.Results, want.Checksum)
		}
		if got.ReplicatedR != want.ReplicatedR || got.ShuffledBytes != want.ShuffledBytes {
			t.Fatalf("execute %d lost construction metrics", i)
		}
	}
	if pr.FootprintBytes() != want.ShuffledBytes {
		t.Fatalf("footprint %d != shuffled bytes %d", pr.FootprintBytes(), want.ShuffledBytes)
	}
}

// TestPreparedConcurrentExecute hammers one plan from many goroutines;
// run under -race this checks Execute never mutates shared plan state.
func TestPreparedConcurrentExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rs := randomTuples(rng, 1000, 20, 0)
	ss := randomTuples(rng, 1000, 20, 1_000_000)
	spec, _ := uniSpec(rs, ss, 0.5, 4, 16)
	pr, err := Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	base, err := pr.Execute(ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(collect bool) {
			defer wg.Done()
			got, err := pr.Execute(ExecOptions{Collect: collect})
			if err != nil {
				t.Error(err)
				return
			}
			if got.Results != base.Results || got.Checksum != base.Checksum {
				t.Errorf("concurrent execute diverged: (%d, %#x) != (%d, %#x)",
					got.Results, got.Checksum, base.Results, base.Checksum)
			}
			if collect && int64(len(got.Pairs)) != got.Results {
				t.Errorf("collected %d pairs, counted %d", len(got.Pairs), got.Results)
			}
		}(i%2 == 0)
	}
	wg.Wait()
}

// TestPreparedEpsResweep executes a plan prepared for a large ε with
// smaller thresholds: every ε' ≤ ε must match a fresh Run at ε', and
// thresholds outside (0, ε] must be rejected.
func TestPreparedEpsResweep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rs := randomTuples(rng, 2000, 20, 0)
	ss := randomTuples(rng, 2000, 20, 1_000_000)
	const eps = 0.8
	spec, _ := uniSpec(rs, ss, eps, 4, 16)
	pr, err := Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Eps() != eps {
		t.Fatalf("plan eps %v, want %v", pr.Eps(), eps)
	}
	for _, sub := range []float64{0.8, 0.6, 0.3} {
		got, err := pr.Execute(ExecOptions{Eps: sub})
		if err != nil {
			t.Fatal(err)
		}
		// Independent reference: a one-shot Run whose grid and replication
		// are built for ε' directly.
		freshSpec, _ := uniSpec(rs, ss, sub, 4, 16)
		ref, err := Run(freshSpec)
		if err != nil {
			t.Fatal(err)
		}
		if got.Results != ref.Results || got.Checksum != ref.Checksum {
			t.Fatalf("eps %v: (%d, %#x) != (%d, %#x)", sub, got.Results, got.Checksum, ref.Results, ref.Checksum)
		}
	}
	// Sanity: smaller eps yields strictly fewer results on this data.
	big, _ := pr.Execute(ExecOptions{Eps: 0.8})
	small, _ := pr.Execute(ExecOptions{Eps: 0.3})
	if small.Results >= big.Results {
		t.Fatalf("re-sweep not monotone: %d >= %d", small.Results, big.Results)
	}
	if _, err := pr.Execute(ExecOptions{Eps: 1.5}); err == nil {
		t.Fatal("eps beyond the plan's threshold must be rejected")
	}
	if _, err := pr.Execute(ExecOptions{Eps: -1}); err == nil {
		t.Fatal("negative eps must be rejected")
	}
}
