package dpe

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/tuple"
)

func tracePartition(n int) (rs, ss []Keyed) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		rs = append(rs, Keyed{Cell: i % 4, T: tuple.Tuple{
			ID: int64(i), Pt: geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4},
		}})
		ss = append(ss, Keyed{Cell: i % 4, T: tuple.Tuple{
			ID: 1<<40 | int64(i), Pt: geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4},
		}})
	}
	return rs, ss
}

// TestObsNilTracerJoinPartition is the nil-tracer-overhead acceptance
// gate: the traced JoinPartition path with tracing disabled must add
// zero allocations over the untraced baseline, and the instrumentation
// delta itself must be allocation-free.
func TestObsNilTracerJoinPartition(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under -race")
	}
	rs, ss := tracePartition(256)

	base := testing.AllocsPerRun(50, func() {
		JoinPartition(rs, ss, 0.5, nil, false, false)
	})
	traced := testing.AllocsPerRun(50, func() {
		JoinPartitionTraced(rs, ss, 0.5, nil, false, false, nil)
	})
	if extra := traced - base; extra != 0 {
		t.Fatalf("traced JoinPartition with nil span: %.1f extra allocs/run, want 0 (base %.1f, traced %.1f)", extra, base, traced)
	}

	// The instrumentation alone (what the traced path adds around the
	// join) must be exactly zero allocations when tracing is disabled.
	var tr *obs.Tracer
	instr := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(0, obs.SpanTask)
		sp.SetWorker("").SetInt("partition", 1)
		sp.SetInt("tuples_r", int64(len(rs)))
		sp.SetInt("tuples_s", int64(len(ss)))
		sp.SetInt("pairs", 0)
		sp.SetInt("cost", 0)
		sp.End()
	})
	if instr != 0 {
		t.Fatalf("nil-tracer instrumentation allocated %.1f times per run, want 0", instr)
	}
}

// TestObsLocalEngineTrace runs a full traced pipeline on the local
// engine and checks the span tree carries the phases and attributes
// the skew report needs.
func TestObsLocalEngineTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var r, s []tuple.Tuple
	for i := 0; i < 2000; i++ {
		r = append(r, tuple.Tuple{ID: int64(i), Pt: geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}})
		s = append(s, tuple.Tuple{ID: 1<<40 | int64(i), Pt: geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}})
	}
	assign := func(p geom.Point, _ tuple.Set, dst []int) []int {
		return append(dst[:0], int(p.X)+10*int(p.Y))
	}
	tr := obs.New()
	root := tr.Start(0, obs.SpanJoin)
	spec := Spec{
		R: r, S: s, Eps: 0.3,
		AssignR: assign, AssignS: assign,
		Part:    HashPartitioner{N: 8},
		Workers: 4, Dedup: true,
		Tracer: tr, TraceParent: root.SpanID(),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if res.Results == 0 {
		t.Fatal("traced join produced no results")
	}

	names := map[string]int{}
	for _, sp := range tr.Spans() {
		names[sp.Name]++
		if sp.Name == obs.SpanTask && sp.Worker == "" {
			t.Error("task span without worker attribution")
		}
	}
	for _, want := range []string{
		obs.SpanReplicate, obs.SpanShuffle, obs.SpanExecute,
		obs.SpanTask, obs.SpanSupplementary, obs.SpanDedup,
	} {
		if names[want] == 0 {
			t.Errorf("no %q span recorded (got %v)", want, names)
		}
	}

	sk := tr.Skew()
	if sk.Tasks == 0 || sk.MaxTaskMicros < sk.MedianTaskMicros {
		t.Fatalf("bad skew report: %+v", sk)
	}
	if sk.ShuffleBytes == 0 {
		t.Fatalf("skew report missing shuffle bytes: %+v", sk)
	}
	if len(sk.ReplicationBytes) == 0 && res.Replicated() > 0 {
		t.Fatalf("replication happened but skew report has no per-agreement bytes: %+v", sk)
	}

	roots := tr.Tree()
	if len(roots) != 1 || roots[0].Name != obs.SpanJoin {
		t.Fatalf("trace is not a single join-rooted tree: %d roots", len(roots))
	}
}
