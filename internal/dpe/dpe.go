// Package dpe (data-parallel engine) is the library's Apache Spark
// substitute: it executes the keyed map → shuffle → partition-join
// pipeline of the paper's Algorithm 5 on an in-process pool of simulated
// workers, with the byte-level shuffle accounting the paper's evaluation
// reports.
//
// The correspondence to Spark is deliberate and close:
//
//   - an input split per worker plays the role of an HDFS partition,
//   - Assign is the flatMapToPair that keys each tuple by the 1D cell ids
//     the replication algorithm chooses,
//   - a Partitioner routes cell ids to reduce partitions (hash-based, or
//     an explicit LPT placement), and each reduce partition is owned by a
//     worker round-robin,
//   - shuffled bytes are computed from the tuple wire-size model, and the
//     subset that crosses worker boundaries is reported as "shuffle remote
//     reads",
//   - every reduce partition hash-groups its records by cell and joins
//     each cell with a plane sweep, applying the ε-distance refinement.
//
// The engine measures the same three quantities as the paper's cluster
// runs — replicated objects, shuffle remote reads, execution time — with
// the same causal structure (replication drives shuffle volume, shuffle
// volume and per-cell cost drive time).
package dpe

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"spatialjoin/internal/dedup"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// Assign maps a point of one input set to the cells (partitions keys) it
// is assigned to; the first id must be the native cell.
type Assign func(p geom.Point, set tuple.Set, dst []int) []int

// Partitioner routes cell ids to reduce partitions.
type Partitioner interface {
	// PartitionOf returns the reduce partition of a cell id.
	PartitionOf(cell int) int
	// NumPartitions returns the number of reduce partitions.
	NumPartitions() int
}

// HashPartitioner routes cells to partitions by a mixed hash — the
// engine's default, mirroring Spark's HashPartitioner.
type HashPartitioner struct{ N int }

// PartitionOf implements Partitioner.
func (h HashPartitioner) PartitionOf(cell int) int {
	x := uint64(cell) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	return int(x % uint64(h.N))
}

// NumPartitions implements Partitioner.
func (h HashPartitioner) NumPartitions() int { return h.N }

// ExplicitPartitioner routes cells via a precomputed table (the LPT
// placement). Cells outside the table fall back to hashing.
type ExplicitPartitioner struct {
	Table []int
	N     int
}

// PartitionOf implements Partitioner.
func (e ExplicitPartitioner) PartitionOf(cell int) int {
	if cell >= 0 && cell < len(e.Table) {
		return e.Table[cell]
	}
	return HashPartitioner{N: e.N}.PartitionOf(cell)
}

// NumPartitions implements Partitioner.
func (e ExplicitPartitioner) NumPartitions() int { return e.N }

// Kernel joins the R and S tuples of one cell, emitting every pair within
// eps exactly once. The default is the plane sweep; the Sedona-style
// baseline substitutes an R-tree build-and-probe kernel, and the
// clone-join baseline a reference-point filter (which is why the kernel
// receives the cell id it is joining).
type Kernel func(cell int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit)

// Spec describes one join execution.
type Spec struct {
	R, S    []tuple.Tuple
	Eps     float64
	AssignR Assign // assignment rule for R tuples
	AssignS Assign // assignment rule for S tuples (may differ, e.g. PBSM)
	Part    Partitioner
	Workers int    // simulated cluster nodes; defaults to GOMAXPROCS
	Kernel  Kernel // local join kernel; plane sweep when nil
	Collect bool   // materialise result pairs (else count + checksum only)
	Dedup   bool   // run a distinct() pass after the join (Table 6 variant)
	// SelfFilter keeps only pairs with r.ID < s.ID — the self-join mode,
	// where both inputs are the same set: it drops identity pairs and
	// one of the two orientations of every match.
	SelfFilter bool
	// NetBandwidth, in bytes per second per worker link, charges the
	// simulated cluster for its shuffle remote reads: SimulatedTime gains
	// RemoteBytes / workers / NetBandwidth. Zero disables network
	// simulation (in-process shuffles move no real bytes).
	NetBandwidth float64
}

// Metrics reports everything the paper's evaluation charts need.
type Metrics struct {
	SampleTime  time.Duration // orchestrator-filled: input sampling
	BuildTime   time.Duration // orchestrator-filled: grid / agreements / index build
	MapTime     time.Duration // flatMapToPair: assignment of both inputs
	ShuffleTime time.Duration // grouping keyed records into partitions
	NetTime     time.Duration // simulated network cost of remote reads
	JoinTime    time.Duration // per-partition grouping + plane sweeps
	DedupTime   time.Duration // distinct() pass, when enabled

	BroadcastBytes int64 // orchestrator-filled: structures shipped to every worker

	ReplicatedR   int64 // extra copies of R tuples beyond the native cell
	ReplicatedS   int64
	ShuffledBytes int64 // total keyed bytes moved into reduce partitions
	RemoteBytes   int64 // subset crossing worker boundaries ("remote reads")

	Results    int64  // result pairs after refinement (and dedup, if enabled)
	DedupInput int64  // pairs entering the distinct() pass (0 unless Dedup)
	Checksum   uint64 // order-independent hash of result pair ids

	MaxPartitionCost   int64           // largest per-partition Σ|R_c|·|S_c| (load balance)
	TotalPartitionCost int64           // Σ over all cells of |R_c|·|S_c| (join work metric)
	MapBusy            []time.Duration // map-phase busy time per worker
	WorkerBusy         []time.Duration // reduce-phase busy time per worker
}

// Replicated returns the total number of replicated objects.
func (m *Metrics) Replicated() int64 { return m.ReplicatedR + m.ReplicatedS }

// ConstructionTime returns the time spent before partitions are joined:
// sampling, structure building, mapping and shuffling (the lower part of
// the paper's Figure 13c stacked bars).
func (m *Metrics) ConstructionTime() time.Duration {
	return m.SampleTime + m.BuildTime + m.MapTime + m.ShuffleTime
}

// TotalTime returns the summed pipeline phase times.
func (m *Metrics) TotalTime() time.Duration {
	return m.ConstructionTime() + m.JoinTime + m.DedupTime
}

// SimulatedTime returns the critical-path execution time of the simulated
// cluster: sequential driver phases plus the busiest worker of each
// parallel phase. On a host with fewer cores than simulated workers,
// wall-clock times serialise the workers' CPU work and hide scaling;
// SimulatedTime restores the cluster's makespan, which is what the
// paper's charts plot.
func (m *Metrics) SimulatedTime() time.Duration {
	return m.SampleTime + m.BuildTime + maxDur(m.MapBusy) + m.ShuffleTime +
		m.NetTime + maxDur(m.WorkerBusy) + m.DedupTime
}

// maxParallel caps in-flight simulated workers at the host's cores.
func maxParallel(workers int) int {
	if cores := runtime.GOMAXPROCS(0); workers > cores {
		return cores
	}
	return workers
}

func maxDur(ds []time.Duration) time.Duration {
	var max time.Duration
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	return max
}

// Result is the outcome of one engine run.
type Result struct {
	Metrics
	Pairs []tuple.Pair // populated when Spec.Collect (or Spec.Dedup) is set
}

// keyed is one record of the shuffle: a tuple keyed by destination cell.
type keyed struct {
	cell int
	t    tuple.Tuple
}

// Prepared holds the reusable product of the map and shuffle phases: the
// already-replicated, partition-bucketed tuples of both inputs, plus the
// construction metrics. One Prepared can be Executed any number of times
// (concurrently, if desired) without re-mapping or re-shuffling — the
// substrate of prepared-plan serving, where plan construction is paid
// once and amortised over many probes.
type Prepared struct {
	spec         Spec
	workers      int
	partR, partS [][]keyed
	build        Metrics // map + shuffle phase metrics
}

// Prepare runs the map and shuffle phases of the pipeline and returns the
// partitioned datasets without joining them. It returns an error on
// invalid configuration; the phases themselves cannot fail.
func Prepare(spec Spec) (*Prepared, error) {
	if spec.Eps <= 0 {
		return nil, fmt.Errorf("dpe: eps must be positive, got %v", spec.Eps)
	}
	if spec.AssignR == nil || spec.AssignS == nil {
		return nil, fmt.Errorf("dpe: both assignment functions are required")
	}
	if spec.Part == nil || spec.Part.NumPartitions() <= 0 {
		return nil, fmt.Errorf("dpe: a partitioner with positive partition count is required")
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	pr := &Prepared{spec: spec, workers: workers}
	res := &pr.build
	nparts := spec.Part.NumPartitions()

	// ---- Map phase: flatMapToPair on both inputs, one split per worker.
	start := time.Now()
	outR, replR, busyR := mapPhase(spec.R, tuple.R, spec.AssignR, spec.Part, workers)
	outS, replS, busyS := mapPhase(spec.S, tuple.S, spec.AssignS, spec.Part, workers)
	res.ReplicatedR, res.ReplicatedS = replR, replS
	res.MapTime = time.Since(start)
	res.MapBusy = make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		res.MapBusy[w] = busyR[w] + busyS[w]
	}

	// ---- Shuffle: merge per-worker map outputs into reduce partitions,
	// accounting bytes; a record is a remote read when the partition's
	// owner differs from the worker that produced it.
	start = time.Now()
	partR := make([][]keyed, nparts)
	partS := make([][]keyed, nparts)
	for w := 0; w < workers; w++ {
		for p := 0; p < nparts; p++ {
			owner := p % workers
			for _, rec := range outR[w][p] {
				sz := int64(rec.t.KeyedSize())
				res.ShuffledBytes += sz
				if owner != w {
					res.RemoteBytes += sz
				}
			}
			for _, rec := range outS[w][p] {
				sz := int64(rec.t.KeyedSize())
				res.ShuffledBytes += sz
				if owner != w {
					res.RemoteBytes += sz
				}
			}
			partR[p] = append(partR[p], outR[w][p]...)
			partS[p] = append(partS[p], outS[w][p]...)
		}
	}
	res.ShuffleTime = time.Since(start)
	if spec.NetBandwidth > 0 {
		res.NetTime = time.Duration(float64(res.RemoteBytes) / float64(workers) / spec.NetBandwidth * float64(time.Second))
	}
	pr.partR, pr.partS = partR, partS
	return pr, nil
}

// Eps returns the distance threshold the plan was prepared for — the
// upper bound on the ε any Execute may use.
func (pr *Prepared) Eps() float64 { return pr.spec.Eps }

// FootprintBytes returns the wire size of the partition-bucketed tuples
// the plan holds — the quantity a plan cache should account for.
func (pr *Prepared) FootprintBytes() int64 { return pr.build.ShuffledBytes }

// Replicated returns the replicated objects the plan serves per Execute.
func (pr *Prepared) Replicated() int64 { return pr.build.Replicated() }

// ExecOptions are the per-execution knobs of a Prepared join.
type ExecOptions struct {
	// Eps optionally re-sweeps the prepared partitions with a smaller
	// threshold. Replication for ε co-locates every pair within ε' ≤ ε in
	// exactly one common cell, so any ε' in (0, plan ε] stays correct and
	// duplicate-free. Zero means the plan's own ε.
	Eps float64
	// Collect materialises the result pairs.
	Collect bool
}

// Execute runs the reduce phase (and the distinct() pass, when the spec
// asked for one) over the prepared partitions. It is safe to call
// concurrently: the partition buckets are only read.
func (pr *Prepared) Execute(opt ExecOptions) (*Result, error) {
	eps := opt.Eps
	if eps == 0 {
		eps = pr.spec.Eps
	}
	if eps <= 0 || eps > pr.spec.Eps {
		return nil, fmt.Errorf("dpe: execute eps %v outside (0, %v], the range the plan's replication supports", opt.Eps, pr.spec.Eps)
	}
	spec := pr.spec
	workers := pr.workers
	partR, partS := pr.partR, pr.partS
	nparts := spec.Part.NumPartitions()
	collectOut := opt.Collect

	res := &Result{Metrics: pr.build}

	// ---- Reduce phase: per-partition hash grouping by cell + plane
	// sweep join with refinement. Partitions are owned by workers
	// round-robin; workers run concurrently, their partitions serially.
	start := time.Now()
	type partOut struct {
		counter sweep.Counter
		pairs   []tuple.Pair
		cost    int64
	}
	outs := make([]partOut, nparts)
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	collect := collectOut || spec.Dedup
	kernel := spec.Kernel
	if kernel == nil {
		kernel = func(_ int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit) {
			sweep.PlaneSweep(rs, ss, eps, emit)
		}
	}
	// In-flight workers are capped at GOMAXPROCS: running more simulated
	// workers than cores would only time-slice them against each other,
	// polluting the per-worker busy clocks the makespan model relies on.
	sem := make(chan struct{}, maxParallel(workers))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			for p := w; p < nparts; p += workers {
				outs[p] = joinPartition(partR[p], partS[p], eps, kernel, collect, spec.SelfFilter)
			}
			busy[w] = time.Since(t0)
		}(w)
	}
	wg.Wait()
	res.JoinTime = time.Since(start)
	res.WorkerBusy = busy

	for p := range outs {
		res.Results += outs[p].counter.N
		res.Checksum += outs[p].counter.Checksum
		res.TotalPartitionCost += outs[p].cost
		if outs[p].cost > res.MaxPartitionCost {
			res.MaxPartitionCost = outs[p].cost
		}
		if collect {
			res.Pairs = append(res.Pairs, outs[p].pairs...)
		}
	}

	// ---- Optional distinct() pass (the Table 6 non-duplicate-free
	// variant pays this extra shuffle + dedup).
	if spec.Dedup {
		start = time.Now()
		uniq, dm := dedup.Distinct(res.Pairs, workers, nparts)
		res.DedupTime = time.Since(start)
		res.Pairs = uniq
		res.Results = dm.Output
		res.DedupInput = dm.Input
		res.ShuffledBytes += dm.ShuffledBytes
		res.RemoteBytes += dm.RemoteBytes
		if spec.NetBandwidth > 0 {
			res.NetTime += time.Duration(float64(dm.RemoteBytes) / float64(workers) / spec.NetBandwidth * float64(time.Second))
		}
		// Recompute the checksum over the deduplicated set.
		var c sweep.Counter
		for _, p := range uniq {
			c.Emit(tuple.Tuple{ID: p.RID}, tuple.Tuple{ID: p.SID})
		}
		res.Checksum = c.Checksum
		if !collectOut {
			res.Pairs = nil
		}
	}
	return res, nil
}

// Run executes the full pipeline — Prepare followed by a single Execute —
// preserving the one-shot batch interface.
func Run(spec Spec) (*Result, error) {
	pr, err := Prepare(spec)
	if err != nil {
		return nil, err
	}
	return pr.Execute(ExecOptions{Collect: spec.Collect})
}

// mapPhase runs the keyed assignment of one input over the worker pool.
// It returns per-worker, per-partition record buffers and the replication
// count (assignments beyond the native cell).
func mapPhase(in []tuple.Tuple, set tuple.Set, assign Assign, part Partitioner, workers int) ([][][]keyed, int64, []time.Duration) {
	nparts := part.NumPartitions()
	out := make([][][]keyed, workers)
	repl := make([]int64, workers)
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel(workers))
	chunk := (len(in) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo > len(in) {
			lo = len(in)
		}
		if hi > len(in) {
			hi = len(in)
		}
		out[w] = make([][]keyed, nparts)
		wg.Add(1)
		go func(w int, split []tuple.Tuple) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			var cells []int
			for _, t := range split {
				cells = assign(t.Pt, set, cells[:0])
				repl[w] += int64(len(cells) - 1)
				for _, c := range cells {
					p := part.PartitionOf(c)
					out[w][p] = append(out[w][p], keyed{cell: c, t: t})
				}
			}
			busy[w] = time.Since(t0)
		}(w, in[lo:hi])
	}
	wg.Wait()
	var total int64
	for _, r := range repl {
		total += r
	}
	return out, total, busy
}

// joinPartition groups a reduce partition's records by cell and joins each
// cell independently with the given kernel.
func joinPartition(rs, ss []keyed, eps float64, kernel Kernel, collect, selfFilter bool) (out struct {
	counter sweep.Counter
	pairs   []tuple.Pair
	cost    int64
}) {
	groupR := make(map[int][]tuple.Tuple)
	for _, rec := range rs {
		groupR[rec.cell] = append(groupR[rec.cell], rec.t)
	}
	groupS := make(map[int][]tuple.Tuple)
	for _, rec := range ss {
		groupS[rec.cell] = append(groupS[rec.cell], rec.t)
	}
	var coll sweep.Collector
	emit := out.counter.Emit
	if collect {
		emit = func(r, s tuple.Tuple) {
			out.counter.Emit(r, s)
			coll.Emit(r, s)
		}
	}
	if selfFilter {
		inner := emit
		emit = func(r, s tuple.Tuple) {
			if r.ID < s.ID {
				inner(r, s)
			}
		}
	}
	for cell, r := range groupR {
		s := groupS[cell]
		if len(s) == 0 {
			continue
		}
		out.cost += int64(len(r)) * int64(len(s))
		kernel(cell, r, s, eps, emit)
	}
	out.pairs = coll.Pairs
	return out
}
