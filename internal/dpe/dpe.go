// Package dpe (data-parallel engine) is the library's Apache Spark
// substitute: it executes the keyed map → shuffle → partition-join
// pipeline of the paper's Algorithm 5, with the byte-level shuffle
// accounting the paper's evaluation reports.
//
// The correspondence to Spark is deliberate and close:
//
//   - an input split per worker plays the role of an HDFS partition,
//   - Assign is the flatMapToPair that keys each tuple by the 1D cell ids
//     the replication algorithm chooses,
//   - a Partitioner routes cell ids to reduce partitions (hash-based, or
//     an explicit LPT placement), and each reduce partition is owned by a
//     worker round-robin,
//   - shuffled bytes are computed from the tuple wire-size model, and the
//     subset that crosses worker boundaries is reported as "shuffle remote
//     reads",
//   - every reduce partition hash-groups its records by cell and joins
//     each cell with a plane sweep, applying the ε-distance refinement.
//
// The reduce phase runs on a pluggable Engine: the default local engine
// joins partitions on an in-process goroutine pool of simulated workers,
// while internal/cluster provides a real multi-process backend that ships
// partitions to worker processes over TCP and measures actual shuffle
// bytes, retries and speculative re-executions.
//
// The engine measures the same three quantities as the paper's cluster
// runs — replicated objects, shuffle remote reads, execution time — with
// the same causal structure (replication drives shuffle volume, shuffle
// volume and per-cell cost drive time).
package dpe

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"spatialjoin/internal/colpipe"
	"spatialjoin/internal/colsweep"
	"spatialjoin/internal/dedup"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/obs"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/tuple"
)

// Assign maps a point of one input set to the cells (partitions keys) it
// is assigned to; the first id must be the native cell.
type Assign func(p geom.Point, set tuple.Set, dst []int) []int

// TupleAssign is the whole-tuple variant of Assign, for join families
// whose assignment needs more than the point — the two-layer non-point
// join decodes the object MBR from the tuple payload. When set on a
// Spec it takes precedence over the point Assign for that side. The
// contract is the same: append the cell ids of every replica to dst and
// return it, with the native cell (the one that owns the tuple) first.
type TupleAssign func(t tuple.Tuple, set tuple.Set, dst []int) []int

// Partitioner routes cell ids to reduce partitions.
type Partitioner interface {
	// PartitionOf returns the reduce partition of a cell id.
	PartitionOf(cell int) int
	// NumPartitions returns the number of reduce partitions.
	NumPartitions() int
}

// HashPartitioner routes cells to partitions by a mixed hash — the
// engine's default, mirroring Spark's HashPartitioner.
type HashPartitioner struct{ N int }

// PartitionOf implements Partitioner.
func (h HashPartitioner) PartitionOf(cell int) int {
	x := uint64(cell) * 0x9e3779b97f4a7c15
	x ^= x >> 32
	return int(x % uint64(h.N))
}

// NumPartitions implements Partitioner.
func (h HashPartitioner) NumPartitions() int { return h.N }

// ExplicitPartitioner routes cells via a precomputed table (the LPT
// placement). Cells outside the table fall back to hashing.
type ExplicitPartitioner struct {
	Table []int
	N     int
}

// PartitionOf implements Partitioner.
func (e ExplicitPartitioner) PartitionOf(cell int) int {
	if cell >= 0 && cell < len(e.Table) {
		return e.Table[cell]
	}
	return HashPartitioner{N: e.N}.PartitionOf(cell)
}

// NumPartitions implements Partitioner.
func (e ExplicitPartitioner) NumPartitions() int { return e.N }

// Kernel joins the R and S tuples of one cell, emitting every pair within
// eps exactly once. The default (nil) is the columnar zero-allocation
// plane sweep of internal/colsweep; ScalarKernel restores the scalar
// sweep as an explicit override (the differential-test oracle), the
// Sedona-style baseline substitutes an R-tree build-and-probe kernel, and
// the clone-join baseline a reference-point filter (which is why the
// kernel receives the cell id it is joining).
type Kernel func(cell int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit)

// KernelKind enumerates the join kernels a remote worker can rebuild
// from a wire description.
type KernelKind uint8

const (
	// KernelSweep is the default plane-sweep kernel.
	KernelSweep KernelKind = iota
	// KernelRefPoint is the reference-point filtered sweep of the clone
	// join; it needs the grid geometry to locate pair midpoints.
	KernelRefPoint
	// KernelCustom marks a kernel that cannot be described on the wire
	// (e.g. the Sedona R-tree kernel); such plans execute locally only.
	KernelCustom
	// KernelTwoLayer is the class-based non-point mini-join kernel of
	// the two-layer partitioning; it needs the tile grid geometry, the
	// predicate, and the refinement ε to rebuild remotely.
	KernelTwoLayer
)

// KernelDesc is the wire-reconstructible description of a join kernel.
type KernelDesc struct {
	Kind KernelKind
	// Grid geometry, used by KernelRefPoint.
	Bounds           geom.Rect
	GridEps, GridRes float64
	// Tile grid geometry and refinement parameters, used by
	// KernelTwoLayer (Bounds doubles as the tile grid's frame).
	TileNX, TileNY int
	Predicate      uint8
	RefineEps      float64
}

// Spec describes one join execution.
type Spec struct {
	R, S    []tuple.Tuple
	Eps     float64
	AssignR Assign // assignment rule for R tuples
	AssignS Assign // assignment rule for S tuples (may differ, e.g. PBSM)
	// TupleAssignR/TupleAssignS, when non-nil, replace AssignR/AssignS
	// with whole-tuple assignment (payload-aware joins).
	TupleAssignR TupleAssign
	TupleAssignS TupleAssign
	Part         Partitioner
	Workers      int    // simulated cluster nodes; defaults to GOMAXPROCS
	Kernel       Kernel // local join kernel; the columnar plane sweep when nil
	Collect      bool   // materialise result pairs (else count + checksum only)
	Dedup        bool   // run a distinct() pass after the join (Table 6 variant)
	// SelfFilter keeps only pairs with r.ID < s.ID — the self-join mode,
	// where both inputs are the same set: it drops identity pairs and
	// one of the two orientations of every match.
	SelfFilter bool
	// NetBandwidth, in bytes per second per worker link, charges the
	// simulated cluster for its shuffle remote reads: SimulatedTime gains
	// RemoteBytes / workers / NetBandwidth. Zero disables network
	// simulation (in-process shuffles move no real bytes).
	NetBandwidth float64
	// PoolSize caps the OS-level goroutine pool that runs the simulated
	// workers in the map and local reduce phases. Zero means GOMAXPROCS.
	// It bounds real parallelism only; Workers sets the simulated cluster
	// size that shuffle accounting and busy clocks model.
	PoolSize int
	// Engine is the execution backend for the reduce phase; nil selects
	// the in-process local engine. A cluster engine instead ships
	// partitions to remote worker processes and measures real bytes.
	Engine Engine
	// Broadcast is an opaque blob a distributed Engine ships to every
	// worker alongside the plan — for the adaptive join, the encoded
	// graph of agreements and the LPT placement (Algorithm 5's driver
	// broadcast, now in real bytes). The local engine ignores it.
	Broadcast []byte
	// KernelDesc describes Kernel in a form a remote worker can
	// reconstruct. Leave zero when Kernel is nil (plane sweep). A non-nil
	// Kernel with a zero descriptor is treated as KernelCustom: the plan
	// is local-only and cluster engines reject it.
	KernelDesc KernelDesc
	// Tracer records phase and task spans for the join; nil (the
	// default) disables tracing at zero cost. TraceParent, when set, is
	// the span the pipeline's phase spans are parented under.
	Tracer      *obs.Tracer
	TraceParent obs.SpanID

	// Cells, when positive, declares that every cell id the point
	// Assigns produce lies in [0, Cells) — the contract that enables
	// the columnar pipeline: map workers append straight into SoA
	// segments, the shuffle counting-sorts them into per-partition
	// slabs (grouped by cell rank, each group x-sorted once), and the
	// partition join sweeps slab subranges with zero re-boxing. The
	// columnar path activates only for point joins on the default
	// kernel (Kernel nil, no TupleAssign); any explicit kernel —
	// including ScalarKernel, the differential oracle — keeps the
	// keyed-record path, whose results the columnar path must match
	// exactly.
	Cells int
	// CellRank optionally maps cell id → slab group rank (any bijection
	// onto [0, Cells)); nil means identity. Orchestrators pass a
	// Hilbert- or Morton-curve ranking so adjacent slab groups are
	// spatially adjacent (see colpipe.HilbertRanks).
	CellRank []int32
}

// Engine executes the reduce phase of a Prepared join. The eps in opt is
// already resolved (non-zero, validated against the plan) and opt.Collect
// already accounts for a pending distinct() pass; the dedup pass itself
// runs in ExecuteContext after the engine returns.
type Engine interface {
	ExecutePrepared(ctx context.Context, pr *Prepared, opt ExecOptions) (*Result, error)
}

// ClusterMetrics are the measured-on-the-wire counters of a distributed
// engine run. All fields are zero when the local engine executed the
// join.
type ClusterMetrics struct {
	Workers int // live worker processes that served the run

	// TaskBytesLocal and TaskBytesRemote split the streamed task payload
	// bytes by whether the receiving worker is the one the record's map
	// split is co-located with (a "local read" in the paper's shuffle
	// model) — measured on real encoded bytes, unlike the wire-size model
	// of ShuffledBytes/RemoteBytes.
	TaskBytesLocal  int64
	TaskBytesRemote int64
	// BroadcastBytes is the measured size of the plan frames (grid,
	// agreements, placement) shipped to every worker.
	BroadcastBytes int64
	// ResultBytes is the measured size of the result frames received.
	ResultBytes int64

	Tasks   int64 // partition tasks executed to completion
	Retries int64 // task re-executions after a worker died or failed
	// SpeculativeLaunched counts duplicate attempts launched for
	// straggling tasks; SpeculativeWins counts those that finished before
	// the original attempt (first result wins, the loser is cancelled).
	SpeculativeLaunched int64
	SpeculativeWins     int64
}

// Metrics reports everything the paper's evaluation charts need.
type Metrics struct {
	SampleTime  time.Duration // orchestrator-filled: input sampling
	BuildTime   time.Duration // orchestrator-filled: grid / agreements / index build
	MapTime     time.Duration // flatMapToPair: assignment of both inputs
	ShuffleTime time.Duration // grouping keyed records into partitions
	NetTime     time.Duration // simulated network cost of remote reads
	JoinTime    time.Duration // per-partition grouping + plane sweeps
	DedupTime   time.Duration // distinct() pass, when enabled

	BroadcastBytes int64 // orchestrator-filled: structures shipped to every worker

	ReplicatedR   int64 // extra copies of R tuples beyond the native cell
	ReplicatedS   int64
	ShuffledBytes int64 // total keyed bytes moved into reduce partitions
	RemoteBytes   int64 // subset crossing worker boundaries ("remote reads")

	Results    int64  // result pairs after refinement (and dedup, if enabled)
	DedupInput int64  // pairs entering the distinct() pass (0 unless Dedup)
	Checksum   uint64 // order-independent hash of result pair ids

	MaxPartitionCost   int64           // largest per-partition Σ|R_c|·|S_c| (load balance)
	TotalPartitionCost int64           // Σ over all cells of |R_c|·|S_c| (join work metric)
	MapBusy            []time.Duration // map-phase busy time per worker
	WorkerBusy         []time.Duration // reduce-phase busy time per worker

	// Cluster holds the measured counters of a distributed engine run
	// (zero under the local engine).
	Cluster ClusterMetrics
}

// Replicated returns the total number of replicated objects.
func (m *Metrics) Replicated() int64 { return m.ReplicatedR + m.ReplicatedS }

// ConstructionTime returns the time spent before partitions are joined:
// sampling, structure building, mapping and shuffling (the lower part of
// the paper's Figure 13c stacked bars).
func (m *Metrics) ConstructionTime() time.Duration {
	return m.SampleTime + m.BuildTime + m.MapTime + m.ShuffleTime
}

// TotalTime returns the summed pipeline phase times.
func (m *Metrics) TotalTime() time.Duration {
	return m.ConstructionTime() + m.JoinTime + m.DedupTime
}

// SimulatedTime returns the critical-path execution time of the simulated
// cluster: sequential driver phases plus the busiest worker of each
// parallel phase. On a host with fewer cores than simulated workers,
// wall-clock times serialise the workers' CPU work and hide scaling;
// SimulatedTime restores the cluster's makespan, which is what the
// paper's charts plot.
func (m *Metrics) SimulatedTime() time.Duration {
	return m.SampleTime + m.BuildTime + maxDur(m.MapBusy) + m.ShuffleTime +
		m.NetTime + maxDur(m.WorkerBusy) + m.DedupTime
}

// maxParallel caps in-flight simulated workers at the pool size (the
// host's cores when pool is 0).
func maxParallel(workers, pool int) int {
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	if workers > pool {
		return pool
	}
	return workers
}

func maxDur(ds []time.Duration) time.Duration {
	var max time.Duration
	for _, d := range ds {
		if d > max {
			max = d
		}
	}
	return max
}

// Result is the outcome of one engine run.
type Result struct {
	Metrics
	Pairs []tuple.Pair // populated when Spec.Collect (or Spec.Dedup) is set
}

// Keyed is one record of the shuffle: a tuple keyed by destination cell.
// Src is the map split (simulated worker) that produced the record; a
// distributed engine uses it to classify streamed bytes as local or
// remote reads.
type Keyed struct {
	Cell int
	Src  int
	T    tuple.Tuple
}

// Prepared holds the reusable product of the map and shuffle phases: the
// already-replicated, partition-bucketed tuples of both inputs, plus the
// construction metrics. One Prepared can be Executed any number of times
// (concurrently, if desired) without re-mapping or re-shuffling — the
// substrate of prepared-plan serving, where plan construction is paid
// once and amortised over many probes.
type Prepared struct {
	spec         Spec
	workers      int
	partR, partS [][]Keyed
	build        Metrics // map + shuffle phase metrics

	// Columnar-pipeline state: per-partition slabs replacing the keyed
	// buckets when the spec qualifies (see Spec.Cells). partR/partS
	// stay allocated (empty) so partition-count accessors keep working.
	col        bool
	colR, colS []colpipe.Slab
}

// Prepare runs the map and shuffle phases of the pipeline and returns the
// partitioned datasets without joining them. It returns an error on
// invalid configuration; the phases themselves cannot fail.
func Prepare(spec Spec) (*Prepared, error) {
	if spec.Eps <= 0 {
		return nil, fmt.Errorf("dpe: eps must be positive, got %v", spec.Eps)
	}
	if (spec.AssignR == nil && spec.TupleAssignR == nil) ||
		(spec.AssignS == nil && spec.TupleAssignS == nil) {
		return nil, fmt.Errorf("dpe: both assignment functions are required")
	}
	if spec.Part == nil || spec.Part.NumPartitions() <= 0 {
		return nil, fmt.Errorf("dpe: a partitioner with positive partition count is required")
	}
	if spec.PoolSize < 0 {
		return nil, fmt.Errorf("dpe: pool size must not be negative, got %d", spec.PoolSize)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	pr := &Prepared{spec: spec, workers: workers}
	res := &pr.build
	nparts := spec.Part.NumPartitions()

	// The columnar pipeline handles point joins on the default kernel;
	// explicit kernels (the scalar oracle, R-tree and reference-point
	// baselines) and whole-tuple assignments keep the keyed-record path.
	if spec.Cells > 0 && spec.Kernel == nil && spec.TupleAssignR == nil && spec.TupleAssignS == nil {
		prepareColumnar(pr, workers, nparts)
		return pr, nil
	}

	// ---- Map phase: flatMapToPair on both inputs, one split per worker.
	replSp := spec.Tracer.Start(spec.TraceParent, obs.SpanReplicate)
	start := time.Now()
	outR, replR, busyR := mapPhase(spec.R, tuple.R, tupleAssign(spec.AssignR, spec.TupleAssignR), spec.Part, workers, spec.PoolSize)
	outS, replS, busyS := mapPhase(spec.S, tuple.S, tupleAssign(spec.AssignS, spec.TupleAssignS), spec.Part, workers, spec.PoolSize)
	res.ReplicatedR, res.ReplicatedS = replR, replS
	res.MapTime = time.Since(start)
	replSp.SetInt("replicated_r", replR).SetInt("replicated_s", replS)
	replSp.End()
	res.MapBusy = make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		res.MapBusy[w] = busyR[w] + busyS[w]
	}

	// ---- Shuffle: merge per-worker map outputs into reduce partitions,
	// accounting bytes; a record is a remote read when the partition's
	// owner differs from the worker that produced it.
	shufSp := spec.Tracer.Start(spec.TraceParent, obs.SpanShuffle)
	start = time.Now()
	partR := make([][]Keyed, nparts)
	partS := make([][]Keyed, nparts)
	var bytesR, bytesS int64
	var recsR, recsS int64
	for w := 0; w < workers; w++ {
		for p := 0; p < nparts; p++ {
			owner := p % workers
			for _, rec := range outR[w][p] {
				sz := int64(rec.T.KeyedSize())
				bytesR += sz
				recsR++
				if owner != w {
					res.RemoteBytes += sz
				}
			}
			for _, rec := range outS[w][p] {
				sz := int64(rec.T.KeyedSize())
				bytesS += sz
				recsS++
				if owner != w {
					res.RemoteBytes += sz
				}
			}
			partR[p] = append(partR[p], outR[w][p]...)
			partS[p] = append(partS[p], outS[w][p]...)
		}
	}
	res.ShuffledBytes = bytesR + bytesS
	res.ShuffleTime = time.Since(start)
	shufSp.SetInt("shuffled_bytes", res.ShuffledBytes).SetInt("remote_bytes", res.RemoteBytes)
	shufSp.End()
	// Replication bytes per set: the agreement type of a cell pair names
	// the set it replicates across the boundary, so replica count times
	// the set's mean keyed wire size is the replication volume each
	// agreement type put on the shuffle.
	if recsR > 0 {
		replSp.SetInt("repl_bytes_r", replR*(bytesR/recsR))
	}
	if recsS > 0 {
		replSp.SetInt("repl_bytes_s", replS*(bytesS/recsS))
	}
	if spec.NetBandwidth > 0 {
		res.NetTime = time.Duration(float64(res.RemoteBytes) / float64(workers) / spec.NetBandwidth * float64(time.Second))
	}
	pr.partR, pr.partS = partR, partS
	return pr, nil
}

// prepareColumnar is Prepare's columnar pipeline: map workers append
// replicas straight into SoA segments keyed by cell rank, and the
// shuffle counting-sorts each partition's segments into a kernel-ready
// slab (groups ascending by rank, each group x-sorted once). The byte
// accounting is identical to the keyed path — every appended record
// carries its KeyedSize — so ShuffledBytes, RemoteBytes and the
// replication-byte span attributes match the scalar pipeline exactly.
func prepareColumnar(pr *Prepared, workers, nparts int) {
	spec := &pr.spec
	res := &pr.build

	// With every cell id in [0, Cells), partition routing becomes one
	// table lookup per replica instead of a hash per replica.
	partTab := make([]int32, spec.Cells)
	for c := range partTab {
		partTab[c] = int32(spec.Part.PartitionOf(c))
	}

	replSp := spec.Tracer.Start(spec.TraceParent, obs.SpanReplicate)
	start := time.Now()
	outR, replR, busyR := mapPhaseCol(spec.R, tuple.R, spec.AssignR, partTab, nparts, spec.CellRank, workers, spec.PoolSize)
	outS, replS, busyS := mapPhaseCol(spec.S, tuple.S, spec.AssignS, partTab, nparts, spec.CellRank, workers, spec.PoolSize)
	res.ReplicatedR, res.ReplicatedS = replR, replS
	res.MapTime = time.Since(start)
	replSp.SetInt("replicated_r", replR).SetInt("replicated_s", replS)
	replSp.End()
	res.MapBusy = make([]time.Duration, workers)
	for w := 0; w < workers; w++ {
		res.MapBusy[w] = busyR[w] + busyS[w]
	}

	// ---- Shuffle: counting-sort each partition's per-worker segments
	// into one slab per side. A record is a remote read when the
	// partition's owner differs from the worker that produced it; the
	// slab's per-worker byte counters carry that split.
	shufSp := spec.Tracer.Start(spec.TraceParent, obs.SpanShuffle)
	start = time.Now()
	builder := colpipe.NewBuilder(spec.Cells)
	pr.colR = make([]colpipe.Slab, nparts)
	pr.colS = make([]colpipe.Slab, nparts)
	scratch := make([]colpipe.Seg, workers)
	var bytesR, bytesS, recsR, recsS int64
	for p := 0; p < nparts; p++ {
		owner := p % workers
		for w := 0; w < workers; w++ {
			scratch[w] = outR[w][p]
		}
		builder.BuildInto(&pr.colR[p], scratch)
		for w := 0; w < workers; w++ {
			scratch[w] = outS[w][p]
		}
		builder.BuildInto(&pr.colS[p], scratch)
		bytesR += pr.colR[p].Bytes
		bytesS += pr.colS[p].Bytes
		recsR += int64(pr.colR[p].Rows())
		recsS += int64(pr.colS[p].Rows())
		for w := 0; w < workers; w++ {
			if w != owner {
				res.RemoteBytes += pr.colR[p].WorkerBytes[w] + pr.colS[p].WorkerBytes[w]
			}
		}
	}
	res.ShuffledBytes = bytesR + bytesS
	res.ShuffleTime = time.Since(start)
	shufSp.SetInt("shuffled_bytes", res.ShuffledBytes).SetInt("remote_bytes", res.RemoteBytes)
	shufSp.End()
	if recsR > 0 {
		replSp.SetInt("repl_bytes_r", replR*(bytesR/recsR))
	}
	if recsS > 0 {
		replSp.SetInt("repl_bytes_s", replS*(bytesS/recsS))
	}
	if spec.NetBandwidth > 0 {
		res.NetTime = time.Duration(float64(res.RemoteBytes) / float64(workers) / spec.NetBandwidth * float64(time.Second))
	}

	pr.col = true
	// Empty keyed buckets keep NumPartitions and Partition working for
	// callers that only inspect partition counts.
	pr.partR = make([][]Keyed, nparts)
	pr.partS = make([][]Keyed, nparts)
}

// mapPhaseCol is the columnar map phase: each worker assigns its split's
// points and appends every replica — rank, coordinates, id, modelled
// wire bytes — into its own per-partition segment. No Keyed records are
// built; the halo replicas become ordinary slab rows after the shuffle.
func mapPhaseCol(in []tuple.Tuple, set tuple.Set, assign Assign, partTab []int32, nparts int, rank []int32, workers, pool int) ([][]colpipe.Seg, int64, []time.Duration) {
	out := make([][]colpipe.Seg, workers)
	repl := make([]int64, workers)
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel(workers, pool))
	chunk := (len(in) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo > len(in) {
			lo = len(in)
		}
		if hi > len(in) {
			hi = len(in)
		}
		out[w] = make([]colpipe.Seg, nparts)
		wg.Add(1)
		go func(w int, split []tuple.Tuple) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			var cells []int
			segs := out[w]
			// Reserve the native-rows floor per partition up front;
			// replicas overflow into at most one further doubling.
			if est := len(split) / nparts; est > 0 {
				for p := range segs {
					segs[p].Grow(est)
				}
			}
			for i := range split {
				t := &split[i]
				cells = assign(t.Pt, set, cells[:0])
				repl[w] += int64(len(cells) - 1)
				sz := t.KeyedSize()
				for _, c := range cells {
					rk := int32(c)
					if rank != nil {
						rk = rank[c]
					}
					segs[partTab[c]].Append(rk, t.Pt.X, t.Pt.Y, t.ID, sz)
				}
			}
			busy[w] = time.Since(t0)
		}(w, in[lo:hi])
	}
	wg.Wait()
	var total int64
	for _, r := range repl {
		total += r
	}
	return out, total, busy
}

// Eps returns the distance threshold the plan was prepared for — the
// upper bound on the ε any Execute may use.
func (pr *Prepared) Eps() float64 { return pr.spec.Eps }

// FootprintBytes returns the wire size of the partition-bucketed tuples
// the plan holds — the quantity a plan cache should account for.
func (pr *Prepared) FootprintBytes() int64 { return pr.build.ShuffledBytes }

// Replicated returns the replicated objects the plan serves per Execute.
func (pr *Prepared) Replicated() int64 { return pr.build.Replicated() }

// Workers returns the simulated cluster size of the plan: Keyed.Src
// values lie in [0, Workers()).
func (pr *Prepared) Workers() int { return pr.workers }

// NumPartitions returns the number of reduce partitions of the plan.
func (pr *Prepared) NumPartitions() int { return len(pr.partR) }

// Partition returns the R and S shuffle records of one reduce partition.
// The slices are shared and must not be mutated.
func (pr *Prepared) Partition(p int) (rs, ss []Keyed) { return pr.partR[p], pr.partS[p] }

// Columnar reports whether the plan's partitions are columnar slabs
// (see Spec.Cells); when true, Partition returns empty slices and
// ColumnarPartition holds the data.
func (pr *Prepared) Columnar() bool { return pr.col }

// ColumnarPartition returns the R and S slabs of one reduce partition
// of a columnar plan. The slabs are shared and must not be mutated.
func (pr *Prepared) ColumnarPartition(p int) (rs, ss *colpipe.Slab) {
	return &pr.colR[p], &pr.colS[p]
}

// SelfFilter reports whether the plan joins in self-join mode.
func (pr *Prepared) SelfFilter() bool { return pr.spec.SelfFilter }

// Broadcast returns the opaque per-worker broadcast blob of the plan
// (nil when the orchestrator attached none).
func (pr *Prepared) Broadcast() []byte { return pr.spec.Broadcast }

// BuildMetrics returns a copy of the construction-phase metrics, the
// base every engine's Result starts from.
func (pr *Prepared) BuildMetrics() Metrics { return pr.build }

// WireKernel returns the wire description of the plan's join kernel.
func (pr *Prepared) WireKernel() KernelDesc {
	if pr.spec.Kernel == nil {
		return KernelDesc{Kind: KernelSweep}
	}
	if pr.spec.KernelDesc.Kind != KernelSweep {
		return pr.spec.KernelDesc
	}
	return KernelDesc{Kind: KernelCustom}
}

// ExecOptions are the per-execution knobs of a Prepared join.
type ExecOptions struct {
	// Eps optionally re-sweeps the prepared partitions with a smaller
	// threshold. Replication for ε co-locates every pair within ε' ≤ ε in
	// exactly one common cell, so any ε' in (0, plan ε] stays correct and
	// duplicate-free. Zero means the plan's own ε.
	Eps float64
	// Collect materialises the result pairs.
	Collect bool
	// Tracer records execute-phase spans (per-partition tasks, the
	// supplementary join and dedup passes) under TraceParent. Nil falls
	// back to the spec's tracer; a prepared plan probed by many requests
	// passes a per-request tracer here.
	Tracer      *obs.Tracer
	TraceParent obs.SpanID
}

// Execute runs the reduce phase (and the distinct() pass, when the spec
// asked for one) over the prepared partitions. It is safe to call
// concurrently: the partition buckets are only read.
func (pr *Prepared) Execute(opt ExecOptions) (*Result, error) {
	return pr.ExecuteContext(context.Background(), opt)
}

// ExecuteContext is Execute with cancellation: when ctx expires, the
// engine abandons unstarted partitions and returns ctx's error. The
// engine used is Spec.Engine (the in-process local engine when nil).
func (pr *Prepared) ExecuteContext(ctx context.Context, opt ExecOptions) (*Result, error) {
	eps := opt.Eps
	if eps == 0 {
		eps = pr.spec.Eps
	}
	if eps <= 0 || eps > pr.spec.Eps {
		return nil, fmt.Errorf("dpe: execute eps %v outside (0, %v], the range the plan's replication supports", opt.Eps, pr.spec.Eps)
	}
	collectOut := opt.Collect

	tr, parent := opt.Tracer, opt.TraceParent
	if tr == nil {
		tr, parent = pr.spec.Tracer, pr.spec.TraceParent
	}

	eng := pr.spec.Engine
	if eng == nil {
		eng = LocalEngine{}
	}
	res, err := eng.ExecutePrepared(ctx, pr, ExecOptions{
		Eps:         eps,
		Collect:     collectOut || pr.spec.Dedup,
		Tracer:      tr,
		TraceParent: parent,
	})
	if err != nil {
		return nil, err
	}

	// ---- Optional distinct() pass (the Table 6 non-duplicate-free
	// variant pays this extra shuffle + dedup).
	if pr.spec.Dedup {
		supSp := tr.Start(parent, obs.SpanSupplementary)
		start := time.Now()
		uniq, dm := dedup.Distinct(res.Pairs, pr.workers, pr.NumPartitions())
		res.DedupTime = time.Since(start)
		supSp.SetInt("pairs_in", dm.Input).SetInt("pairs_out", dm.Output)
		supSp.SetInt("shuffled_bytes", dm.ShuffledBytes).SetInt("remote_bytes", dm.RemoteBytes)
		supSp.End()
		res.Pairs = uniq
		res.Results = dm.Output
		res.DedupInput = dm.Input
		res.ShuffledBytes += dm.ShuffledBytes
		res.RemoteBytes += dm.RemoteBytes
		if pr.spec.NetBandwidth > 0 {
			res.NetTime += time.Duration(float64(dm.RemoteBytes) / float64(pr.workers) / pr.spec.NetBandwidth * float64(time.Second))
		}
		// Recompute the checksum over the deduplicated set.
		dedupSp := tr.Start(parent, obs.SpanDedup)
		var c sweep.Counter
		for _, p := range uniq {
			c.Emit(tuple.Tuple{ID: p.RID}, tuple.Tuple{ID: p.SID})
		}
		res.Checksum = c.Checksum
		dedupSp.SetInt("pairs", int64(len(uniq)))
		dedupSp.End()
		if !collectOut {
			res.Pairs = nil
		}
	}
	return res, nil
}

// Run executes the full pipeline — Prepare followed by a single Execute —
// preserving the one-shot batch interface.
func Run(spec Spec) (*Result, error) {
	pr, err := Prepare(spec)
	if err != nil {
		return nil, err
	}
	return pr.Execute(ExecOptions{Collect: spec.Collect})
}

// mapPhase runs the keyed assignment of one input over the worker pool.
// It returns per-worker, per-partition record buffers and the replication
// count (assignments beyond the native cell).
// tupleAssign lifts a point Assign to a TupleAssign unless the caller
// already supplied a whole-tuple assignment, which wins.
func tupleAssign(pt Assign, whole TupleAssign) TupleAssign {
	if whole != nil {
		return whole
	}
	return func(t tuple.Tuple, set tuple.Set, dst []int) []int {
		return pt(t.Pt, set, dst)
	}
}

func mapPhase(in []tuple.Tuple, set tuple.Set, assign TupleAssign, part Partitioner, workers, pool int) ([][][]Keyed, int64, []time.Duration) {
	nparts := part.NumPartitions()
	out := make([][][]Keyed, workers)
	repl := make([]int64, workers)
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel(workers, pool))
	chunk := (len(in) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo > len(in) {
			lo = len(in)
		}
		if hi > len(in) {
			hi = len(in)
		}
		out[w] = make([][]Keyed, nparts)
		wg.Add(1)
		go func(w int, split []tuple.Tuple) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t0 := time.Now()
			var cells []int
			for _, t := range split {
				cells = assign(t, set, cells[:0])
				repl[w] += int64(len(cells) - 1)
				for _, c := range cells {
					p := part.PartitionOf(c)
					out[w][p] = append(out[w][p], Keyed{Cell: c, Src: w, T: t})
				}
			}
			busy[w] = time.Since(t0)
		}(w, in[lo:hi])
	}
	wg.Wait()
	var total int64
	for _, r := range repl {
		total += r
	}
	return out, total, busy
}

// PartitionResult is the outcome of joining one reduce partition.
type PartitionResult struct {
	Results  int64
	Checksum uint64
	Pairs    []tuple.Pair
	Cost     int64 // Σ over the partition's cells of |R_c|·|S_c|
}

// ScalarKernel is the scalar array-of-structs plane-sweep kernel — the
// engine's pre-columnar default, kept as the differential-test oracle the
// columnar kernel is verified against and as an explicit Spec.Kernel /
// core.Config.Kernel override.
func ScalarKernel(_ int, rs, ss []tuple.Tuple, eps float64, emit sweep.Emit) {
	sweep.PlaneSweep(rs, ss, eps, emit)
}

// JoinPartition groups a reduce partition's records by cell and joins
// each cell independently. A nil kernel selects the columnar zero-
// allocation sweep (internal/colsweep) with batched emission; a non-nil
// kernel runs the scalar per-pair path — the route for the R-tree,
// reference-point, and oracle kernels. It is the partition-level join
// both the local engine and remote cluster workers run.
func JoinPartition(rs, ss []Keyed, eps float64, kernel Kernel, collect, selfFilter bool) PartitionResult {
	groupR := make(map[int][]tuple.Tuple)
	for _, rec := range rs {
		groupR[rec.Cell] = append(groupR[rec.Cell], rec.T)
	}
	groupS := make(map[int][]tuple.Tuple)
	for _, rec := range ss {
		groupS[rec.Cell] = append(groupS[rec.Cell], rec.T)
	}
	if kernel == nil {
		return joinPartitionColumnar(groupR, groupS, eps, collect, selfFilter)
	}
	var out PartitionResult
	var counter sweep.Counter
	var coll sweep.Collector
	emit := counter.Emit
	if collect {
		emit = func(r, s tuple.Tuple) {
			counter.Emit(r, s)
			coll.Emit(r, s)
		}
	}
	if selfFilter {
		inner := emit
		emit = func(r, s tuple.Tuple) {
			if r.ID < s.ID {
				inner(r, s)
			}
		}
	}
	for cell, r := range groupR {
		s := groupS[cell]
		if len(s) == 0 {
			continue
		}
		out.Cost += int64(len(r)) * int64(len(s))
		kernel(cell, r, s, eps, emit)
	}
	out.Results = counter.N
	out.Checksum = counter.Checksum
	out.Pairs = coll.Pairs
	return out
}

// JoinPartitionTraced is JoinPartition plus span instrumentation: the
// partition's input sizes, pair count, and cost are attached to sp,
// which is then ended. A nil sp (tracing disabled) adds zero work and
// zero allocations — the guarantee the engines rely on to keep the
// traced path on by default.
func JoinPartitionTraced(rs, ss []Keyed, eps float64, kernel Kernel, collect, selfFilter bool, sp *obs.Span) PartitionResult {
	out := JoinPartition(rs, ss, eps, kernel, collect, selfFilter)
	sp.SetInt("tuples_r", int64(len(rs)))
	sp.SetInt("tuples_s", int64(len(ss)))
	sp.SetInt("pairs", out.Results)
	sp.SetInt("cost", out.Cost)
	sp.End()
	return out
}

// JoinSlabs joins the matching rank groups of a columnar partition's
// two slabs — the reduce task of the columnar pipeline. The sweep
// reads the slab lanes in place: no hash grouping, no sorting, no
// tuple materialisation, zero allocations per partition in steady
// state (result collection, when requested, is the only growth).
func JoinSlabs(rs, ss *colpipe.Slab, eps float64, collect, selfFilter bool) PartitionResult {
	var out PartitionResult
	var counter sweep.Counter
	bufs := colsweep.Get()
	defer colsweep.Put(bufs)
	sink := func(ps []tuple.Pair) {
		for _, p := range ps {
			counter.EmitPair(p)
		}
		if collect {
			out.Pairs = append(out.Pairs, ps...)
		}
	}
	bat := bufs.Batch(sink, selfFilter)
	out.Cost = colpipe.JoinSlabs(rs, ss, eps, bat)
	bat.Flush()
	out.Results = counter.N
	out.Checksum = counter.Checksum
	return out
}

// JoinSlabsTraced is JoinSlabs plus the span instrumentation of
// JoinPartitionTraced: row counts, pair count and cost attached to sp,
// which is then ended. A nil sp adds zero work.
func JoinSlabsTraced(rs, ss *colpipe.Slab, eps float64, collect, selfFilter bool, sp *obs.Span) PartitionResult {
	out := JoinSlabs(rs, ss, eps, collect, selfFilter)
	sp.SetInt("tuples_r", int64(rs.Rows()))
	sp.SetInt("tuples_s", int64(ss.Rows()))
	sp.SetInt("pairs", out.Results)
	sp.SetInt("cost", out.Cost)
	sp.End()
	return out
}

// joinPartitionColumnar is the default partition join: every cell runs
// through the columnar kernel with pooled buffers, results drain through
// one batched sink shared across the partition's cells, and the counter
// is fed per batch — zero allocations per cell in steady state (the
// result materialisation, when requested, is the only growth).
func joinPartitionColumnar(groupR, groupS map[int][]tuple.Tuple, eps float64, collect, selfFilter bool) PartitionResult {
	var out PartitionResult
	var counter sweep.Counter
	bufs := colsweep.Get()
	defer colsweep.Put(bufs)
	sink := func(ps []tuple.Pair) {
		for _, p := range ps {
			counter.EmitPair(p)
		}
		if collect {
			out.Pairs = append(out.Pairs, ps...)
		}
	}
	bat := bufs.Batch(sink, selfFilter)
	for cell, r := range groupR {
		s := groupS[cell]
		if len(s) == 0 {
			continue
		}
		out.Cost += int64(len(r)) * int64(len(s))
		colsweep.JoinCell(bufs, r, s, eps, bat)
	}
	bat.Flush()
	out.Results = counter.N
	out.Checksum = counter.Checksum
	return out
}
