//go:build !race

package dpe

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
