package dpe

import (
	"context"
	"strconv"
	"sync"
	"time"

	"spatialjoin/internal/obs"
)

// LocalEngine is the default execution backend: the reduce phase runs on
// an in-process goroutine pool of simulated workers, with partitions
// owned round-robin. It is the zero-dependency stand-in for a cluster,
// and the reference an actual cluster engine must match result-for-result.
type LocalEngine struct{}

// ExecutePrepared implements Engine. Partitions are owned by workers
// round-robin; workers run concurrently, their partitions serially. When
// ctx is cancelled, workers stop before their next partition and the
// context error is returned.
func (LocalEngine) ExecutePrepared(ctx context.Context, pr *Prepared, opt ExecOptions) (*Result, error) {
	spec := pr.spec
	workers := pr.workers
	partR, partS := pr.partR, pr.partS
	nparts := len(partR)

	res := &Result{Metrics: pr.build}

	tr := opt.Tracer
	execSp := tr.Start(opt.TraceParent, obs.SpanExecute)
	execSp.SetInt("partitions", int64(nparts)).SetInt("workers", int64(workers))

	// ---- Reduce phase: per-partition hash grouping by cell + plane
	// sweep join with refinement.
	start := time.Now()
	outs := make([]PartitionResult, nparts)
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	// In-flight workers are capped at the pool size: running more
	// simulated workers than cores would only time-slice them against
	// each other, polluting the per-worker busy clocks the makespan model
	// relies on.
	sem := make(chan struct{}, maxParallel(workers, spec.PoolSize))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var wname string
			if tr != nil {
				wname = "local-" + strconv.Itoa(w)
			}
			t0 := time.Now()
			for p := w; p < nparts; p += workers {
				if ctx.Err() != nil {
					return
				}
				ts := tr.Start(execSp.SpanID(), obs.SpanTask)
				ts.SetWorker(wname).SetInt("partition", int64(p))
				if pr.col {
					outs[p] = JoinSlabsTraced(&pr.colR[p], &pr.colS[p], opt.Eps, opt.Collect, spec.SelfFilter, ts)
				} else {
					outs[p] = JoinPartitionTraced(partR[p], partS[p], opt.Eps, spec.Kernel, opt.Collect, spec.SelfFilter, ts)
				}
			}
			busy[w] = time.Since(t0)
		}(w)
	}
	wg.Wait()
	execSp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.JoinTime = time.Since(start)
	res.WorkerBusy = busy

	for p := range outs {
		res.Results += outs[p].Results
		res.Checksum += outs[p].Checksum
		res.TotalPartitionCost += outs[p].Cost
		if outs[p].Cost > res.MaxPartitionCost {
			res.MaxPartitionCost = outs[p].Cost
		}
		if opt.Collect {
			res.Pairs = append(res.Pairs, outs[p].Pairs...)
		}
	}
	return res, nil
}
