// Package geom provides the elementary planar geometry used throughout the
// spatial-join library: points, axis-aligned rectangles, Euclidean distance,
// and the MINDIST lower bound between a point and a rectangle.
//
// All coordinates are float64. Distance predicates in the library compare
// squared distances where possible to avoid needless square roots.
package geom

import "math"

// Point is a location in the 2-dimensional data space.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.SqDist(q))
}

// SqDist returns the squared Euclidean distance between p and q.
func (p Point) SqDist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// WithinDist reports whether d(p, q) <= eps. It compares squared distances
// and therefore never computes a square root.
func (p Point) WithinDist(q Point, eps float64) bool {
	return p.SqDist(q) <= eps*eps
}

// Rect is a closed axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2),
		MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2),
		MaxY: math.Max(y1, y2),
	}
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Contains reports whether p lies in r (borders inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point
// (touching borders count as intersecting).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Expand returns r grown by d on every side. A negative d shrinks r; the
// caller is responsible for keeping the result non-degenerate.
func (r Rect) Expand(d float64) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle covering r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X),
		MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X),
		MaxY: math.Max(r.MaxY, p.Y),
	}
}

// EmptyRect returns a rectangle that behaves as the identity for Union and
// ExtendPoint: every coordinate is set so any real point extends it.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r is the empty rectangle (or otherwise inverted).
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// SqMinDist returns the squared MINDIST between p and r: zero when p is
// inside r, otherwise the squared distance to the nearest point of r.
func (r Rect) SqMinDist(p Point) float64 {
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

// MinDist returns MINDIST(p, r), the minimum distance from p to any point
// of the rectangle r (zero when p is inside r).
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.SqMinDist(p))
}

// WithinMinDist reports whether MINDIST(p, r) <= eps.
func (r Rect) WithinMinDist(p Point, eps float64) bool {
	return r.SqMinDist(p) <= eps*eps
}

// BoundingRect returns the minimum bounding rectangle of the given points.
// It returns EmptyRect() for an empty slice.
func BoundingRect(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}
