package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
			if got := tc.p.SqDist(tc.q); math.Abs(got-tc.want*tc.want) > 1e-9 {
				t.Errorf("SqDist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.SqDist(b) == b.SqDist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithinDist(t *testing.T) {
	p, q := Point{0, 0}, Point{3, 4}
	if !p.WithinDist(q, 5) {
		t.Error("distance exactly eps must satisfy WithinDist (<=)")
	}
	if p.WithinDist(q, 4.999) {
		t.Error("distance above eps must not satisfy WithinDist")
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Errorf("NewRect = %+v, want %+v", r, want)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	for _, p := range []Point{{0, 0}, {10, 10}, {5, 5}, {0, 10}} {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false, want true (borders inclusive)", p)
		}
	}
	for _, p := range []Point{{-0.1, 5}, {10.1, 5}, {5, -0.1}, {5, 10.1}} {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	tests := []struct {
		name string
		s    Rect
		want bool
	}{
		{"overlap", Rect{5, 5, 15, 15}, true},
		{"contained", Rect{2, 2, 3, 3}, true},
		{"touch edge", Rect{10, 0, 20, 10}, true},
		{"touch corner", Rect{10, 10, 20, 20}, true},
		{"disjoint x", Rect{10.01, 0, 20, 10}, false},
		{"disjoint y", Rect{0, 10.01, 10, 20}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.Intersects(tc.s); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			if got := tc.s.Intersects(r); got != tc.want {
				t.Errorf("Intersects not symmetric: %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSqMinDist(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	tests := []struct {
		name string
		p    Point
		want float64 // distance, not squared
	}{
		{"inside", Point{5, 5}, 0},
		{"on border", Point{0, 5}, 0},
		{"on corner", Point{10, 10}, 0},
		{"left", Point{-3, 5}, 3},
		{"right", Point{14, 5}, 4},
		{"below", Point{5, -2}, 2},
		{"above", Point{5, 12}, 2},
		{"corner diag", Point{13, 14}, 5},
		{"neg corner diag", Point{-3, -4}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.MinDist(tc.p); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("MinDist(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

// MINDIST must lower-bound the distance from p to any point inside r.
func TestMinDistLowerBoundsProperty(t *testing.T) {
	f := func(px, py, x1, y1, x2, y2, fx, fy float64) bool {
		r := NewRect(norm(x1), norm(y1), norm(x2), norm(y2))
		p := Point{norm(px), norm(py)}
		// q: a point inside r, from fractions fx, fy in [0,1).
		q := Point{
			X: r.MinX + frac(fx)*r.Width(),
			Y: r.MinY + frac(fy)*r.Height(),
		}
		return r.SqMinDist(p) <= p.SqDist(q)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// norm maps an arbitrary float (possibly NaN/Inf) into a sane range.
func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

func frac(v float64) float64 {
	v = math.Abs(norm(v)) / 1000
	if v >= 1 {
		v = 0.5
	}
	return v
}

func TestUnionAndExtend(t *testing.T) {
	r := EmptyRect()
	if !r.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	r = r.ExtendPoint(Point{3, 4})
	if r.IsEmpty() || r.MinX != 3 || r.MaxY != 4 {
		t.Fatalf("ExtendPoint from empty = %+v", r)
	}
	r = r.ExtendPoint(Point{-1, 10})
	want := Rect{-1, 4, 3, 10}
	if r != want {
		t.Fatalf("ExtendPoint = %+v, want %+v", r, want)
	}
	u := Rect{0, 0, 1, 1}.Union(Rect{5, 5, 6, 6})
	if (u != Rect{0, 0, 6, 6}) {
		t.Fatalf("Union = %+v", u)
	}
}

func TestBoundingRect(t *testing.T) {
	if !BoundingRect(nil).IsEmpty() {
		t.Error("BoundingRect(nil) should be empty")
	}
	got := BoundingRect([]Point{{1, 2}, {-3, 8}, {4, 0}})
	want := Rect{-3, 0, 4, 8}
	if got != want {
		t.Errorf("BoundingRect = %+v, want %+v", got, want)
	}
}

func TestExpand(t *testing.T) {
	r := Rect{0, 0, 10, 10}.Expand(2)
	if (r != Rect{-2, -2, 12, 12}) {
		t.Errorf("Expand = %+v", r)
	}
}

func TestContainsRect(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.ContainsRect(Rect{0, 0, 10, 10}) {
		t.Error("rect must contain itself")
	}
	if !r.ContainsRect(Rect{1, 1, 9, 9}) {
		t.Error("rect must contain inner rect")
	}
	if r.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Error("rect must not contain overflowing rect")
	}
}

func TestCenterWidthHeightArea(t *testing.T) {
	r := Rect{2, 4, 8, 10}
	if c := r.Center(); c != (Point{5, 7}) {
		t.Errorf("Center = %v", c)
	}
	if r.Width() != 6 || r.Height() != 6 || r.Area() != 36 {
		t.Errorf("Width/Height/Area = %v/%v/%v", r.Width(), r.Height(), r.Area())
	}
}
