package rtree

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func randBoxes(rng *rand.Rand, n int) []BoxEntry {
	out := make([]BoxEntry, n)
	for i := range out {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		w, h := rng.Float64()*20, rng.Float64()*20
		out[i] = BoxEntry{
			Rect: geom.Rect{MinX: cx - w/2, MinY: cy - h/2, MaxX: cx + w/2, MaxY: cy + h/2},
			Ref:  int32(i),
		}
	}
	return out
}

func TestBoxTreeSearchIntersects(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 15, 16, 17, 500, 3000} {
		es := randBoxes(rng, n)
		tree := BuildBoxes(es, DefaultFanout)
		if tree.Size() != n {
			t.Fatalf("n=%d: Size=%d", n, tree.Size())
		}
		for q := 0; q < 50; q++ {
			cx, cy := rng.Float64()*1000, rng.Float64()*1000
			w, h := rng.Float64()*100, rng.Float64()*100
			query := geom.Rect{MinX: cx, MinY: cy, MaxX: cx + w, MaxY: cy + h}
			want := map[int32]bool{}
			for _, e := range es {
				if e.Rect.Intersects(query) {
					want[e.Ref] = true
				}
			}
			got := map[int32]bool{}
			tree.SearchIntersects(query, func(e BoxEntry) {
				if got[e.Ref] {
					t.Fatalf("n=%d: ref %d visited twice", n, e.Ref)
				}
				got[e.Ref] = true
			})
			if len(got) != len(want) {
				t.Fatalf("n=%d query %v: got %d refs, want %d", n, query, len(got), len(want))
			}
			for ref := range want {
				if !got[ref] {
					t.Fatalf("n=%d: missing ref %d", n, ref)
				}
			}
		}
	}
}

// TestBoxTreePacking checks the STR bulk load actually packs: leaf count
// near the ceil(n/fanout) optimum (full leaves, not degenerate splits)
// and height at the log_fanout bound.
func TestBoxTreePacking(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{16, 100, 1000, 10000} {
		for _, fanout := range []int{4, 16, 32} {
			tree := BuildBoxes(randBoxes(rng, n), fanout)
			minLeaves := (n + fanout - 1) / fanout
			leaves := tree.NumLeaves()
			// STR slicing can leave one partially-filled leaf per vertical
			// slice; allow that slack but nothing looser.
			slack := int(math.Ceil(math.Sqrt(float64(minLeaves)))) + 1
			if leaves > minLeaves+slack {
				t.Errorf("n=%d fanout=%d: %d leaves, packed optimum %d (+%d slack)", n, fanout, leaves, minLeaves, slack)
			}
			wantHeight := 1
			for c := leaves; c > 1; c = (c + fanout - 1) / fanout {
				wantHeight++
			}
			if h := tree.Height(); h > wantHeight {
				t.Errorf("n=%d fanout=%d: height %d, want ≤ %d", n, fanout, h, wantHeight)
			}
		}
	}
}

func TestBoxTreeEmptyAndBounds(t *testing.T) {
	empty := BuildBoxes(nil, 0)
	if empty.Size() != 0 || empty.Height() != 0 || empty.NumLeaves() != 0 {
		t.Fatalf("empty tree: size=%d height=%d leaves=%d", empty.Size(), empty.Height(), empty.NumLeaves())
	}
	empty.SearchIntersects(geom.Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}, func(BoxEntry) {
		t.Fatal("empty tree visited an entry")
	})
	es := []BoxEntry{
		{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}, Ref: 0},
		{Rect: geom.Rect{MinX: 5, MinY: 5, MaxX: 9, MaxY: 7}, Ref: 1},
	}
	tree := BuildBoxes(es, 4)
	want := geom.Rect{MinX: 0, MinY: 0, MaxX: 9, MaxY: 7}
	if tree.Bounds() != want {
		t.Fatalf("Bounds=%v, want %v", tree.Bounds(), want)
	}
}

func BenchmarkBuildBoxesTiny(b *testing.B) {
	// The two-layer fallback's real workload: thousands of tiny trees.
	rng := rand.New(rand.NewSource(1))
	es := randBoxes(rng, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildBoxes(es, DefaultFanout)
	}
}
