// Package rtree implements an STR (Sort-Tile-Recursive) bulk-loaded
// R-tree over points with circular and rectangular range search. It plays
// the role of Sedona's per-partition local index in the Sedona-style
// baseline: the larger join input is indexed per partition and probed
// with ε-circles from the smaller input.
package rtree

import (
	"cmp"
	"math"
	"slices"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

// DefaultFanout is the default maximum number of entries per node.
const DefaultFanout = 16

// Tree is an immutable, bulk-loaded R-tree over points.
type Tree struct {
	root   *node
	size   int
	fanout int
}

type node struct {
	rect     geom.Rect
	children []*node       // nil for leaves
	entries  []tuple.Tuple // nil for internal nodes
}

// Build constructs a tree from ts using STR packing with the given fanout
// (clamped to a minimum of 2; DefaultFanout if non-positive). The input
// slice is not modified.
func Build(ts []tuple.Tuple, fanout int) *Tree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		fanout = 2
	}
	t := &Tree{size: len(ts), fanout: fanout}
	if len(ts) == 0 {
		return t
	}
	entries := make([]tuple.Tuple, len(ts))
	copy(entries, ts)
	t.root = buildLevel(packLeaves(entries, fanout), fanout)
	return t
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if len(n.children) == 0 {
			break
		}
		n = n.children[0]
	}
	return h
}

// Bounds returns the MBR of all indexed points (empty rect when empty).
func (t *Tree) Bounds() geom.Rect {
	if t.root == nil {
		return geom.EmptyRect()
	}
	return t.root.rect
}

// packLeaves tiles sorted entries into leaf nodes of up to fanout entries
// using the STR strategy: sort by x, cut into vertical slices of
// ceil(sqrt(P)) leaves each, sort each slice by y, pack runs.
func packLeaves(entries []tuple.Tuple, fanout int) []*node {
	slices.SortFunc(entries, func(a, b tuple.Tuple) int { return cmp.Compare(a.Pt.X, b.Pt.X) })
	nLeaves := (len(entries) + fanout - 1) / fanout
	sliceCount := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := sliceCount * fanout

	var leaves []*node
	for lo := 0; lo < len(entries); lo += sliceSize {
		hi := lo + sliceSize
		if hi > len(entries) {
			hi = len(entries)
		}
		slice := entries[lo:hi]
		slices.SortFunc(slice, func(a, b tuple.Tuple) int { return cmp.Compare(a.Pt.Y, b.Pt.Y) })
		for s := 0; s < len(slice); s += fanout {
			e := s + fanout
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &node{entries: slice[s:e:e], rect: geom.BoundingRect(points(slice[s:e]))}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func points(ts []tuple.Tuple) []geom.Point {
	out := make([]geom.Point, len(ts))
	for i, t := range ts {
		out[i] = t.Pt
	}
	return out
}

// buildLevel recursively packs nodes into parents until one root remains.
func buildLevel(nodes []*node, fanout int) *node {
	if len(nodes) == 1 {
		return nodes[0]
	}
	slices.SortFunc(nodes, func(a, b *node) int { return cmp.Compare(a.rect.Center().X, b.rect.Center().X) })
	nParents := (len(nodes) + fanout - 1) / fanout
	sliceCount := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := sliceCount * fanout

	var parents []*node
	for lo := 0; lo < len(nodes); lo += sliceSize {
		hi := lo + sliceSize
		if hi > len(nodes) {
			hi = len(nodes)
		}
		slice := nodes[lo:hi]
		slices.SortFunc(slice, func(a, b *node) int { return cmp.Compare(a.rect.Center().Y, b.rect.Center().Y) })
		for s := 0; s < len(slice); s += fanout {
			e := s + fanout
			if e > len(slice) {
				e = len(slice)
			}
			p := &node{children: append([]*node(nil), slice[s:e]...)}
			p.rect = slice[s].rect
			for _, c := range slice[s:e] {
				p.rect = p.rect.Union(c.rect)
			}
			parents = append(parents, p)
		}
	}
	return buildLevel(parents, fanout)
}

// Within visits every indexed point within distance eps of center
// (inclusive).
func (t *Tree) Within(center geom.Point, eps float64, visit func(tuple.Tuple)) {
	if t.root == nil {
		return
	}
	eps2 := eps * eps
	var walk func(n *node)
	walk = func(n *node) {
		if n.rect.SqMinDist(center) > eps2 {
			return
		}
		if n.children == nil {
			for _, e := range n.entries {
				if e.Pt.SqDist(center) <= eps2 {
					visit(e)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// Nearest returns up to k indexed points closest to center, ordered by
// ascending distance (ties broken by id for determinism). It uses
// best-first branch-and-bound traversal over node MINDISTs.
func (t *Tree) Nearest(center geom.Point, k int) []tuple.Tuple {
	if t.root == nil || k <= 0 {
		return nil
	}
	// Best-first search: a priority queue over nodes keyed by MINDIST,
	// and a bounded max-heap of current best candidates.
	type queued struct {
		n    *node
		dist float64
	}
	pq := []queued{{t.root, t.root.rect.SqMinDist(center)}}
	push := func(q queued) {
		pq = append(pq, q)
		for i := len(pq) - 1; i > 0; {
			parent := (i - 1) / 2
			if pq[parent].dist <= pq[i].dist {
				break
			}
			pq[parent], pq[i] = pq[i], pq[parent]
			i = parent
		}
	}
	pop := func() queued {
		top := pq[0]
		last := len(pq) - 1
		pq[0] = pq[last]
		pq = pq[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(pq) && pq[l].dist < pq[small].dist {
				small = l
			}
			if r < len(pq) && pq[r].dist < pq[small].dist {
				small = r
			}
			if small == i {
				break
			}
			pq[i], pq[small] = pq[small], pq[i]
			i = small
		}
		return top
	}

	type cand struct {
		t    tuple.Tuple
		dist float64
	}
	var best []cand
	worst := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		w := 0.0
		for _, c := range best {
			if c.dist > w {
				w = c.dist
			}
		}
		return w
	}
	insert := func(c cand) {
		best = append(best, c)
		if len(best) > k {
			// Drop the worst (k is small; linear scan is fine).
			wi := 0
			for i, b := range best {
				if b.dist > best[wi].dist ||
					(b.dist == best[wi].dist && b.t.ID > best[wi].t.ID) {
					wi = i
				}
			}
			best[wi] = best[len(best)-1]
			best = best[:len(best)-1]
		}
	}

	for len(pq) > 0 {
		q := pop()
		if q.dist > worst() {
			break
		}
		if q.n.children == nil {
			for _, e := range q.n.entries {
				d := e.Pt.SqDist(center)
				if d < worst() || len(best) < k {
					insert(cand{e, d})
				}
			}
			continue
		}
		for _, c := range q.n.children {
			d := c.rect.SqMinDist(center)
			if d <= worst() {
				push(queued{c, d})
			}
		}
	}
	slices.SortFunc(best, func(a, b cand) int {
		if a.dist != b.dist {
			return cmp.Compare(a.dist, b.dist)
		}
		return cmp.Compare(a.t.ID, b.t.ID)
	})
	out := make([]tuple.Tuple, len(best))
	for i, c := range best {
		out[i] = c.t
	}
	return out
}

// SearchRect visits every indexed point inside r (borders inclusive).
func (t *Tree) SearchRect(r geom.Rect, visit func(tuple.Tuple)) {
	if t.root == nil {
		return
	}
	var walk func(n *node)
	walk = func(n *node) {
		if !n.rect.Intersects(r) {
			return
		}
		if n.children == nil {
			for _, e := range n.entries {
				if r.Contains(e.Pt) {
					visit(e)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}
