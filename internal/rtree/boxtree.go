package rtree

import (
	"cmp"
	"math"
	"slices"

	"spatialjoin/internal/geom"
)

// BoxEntry is one indexed rectangle. Ref is an opaque caller index (the
// two-layer kernel stores the position of the object in its per-tile
// slice there).
type BoxEntry struct {
	Rect geom.Rect
	Ref  int32
}

// BoxTree is an immutable STR bulk-loaded R-tree over rectangles. The
// two-layer join kernel builds one per degenerate tile — potentially
// thousands of tiny trees per join — so construction cost matters as much
// as probe cost: BuildBoxes packs bottom-up in O(n log n) with exactly
// one entry copy and no per-insert re-splits.
type BoxTree struct {
	root   *boxNode
	size   int
	fanout int
}

type boxNode struct {
	rect     geom.Rect
	children []*boxNode // nil for leaves
	entries  []BoxEntry // nil for internal nodes
}

// BuildBoxes constructs a BoxTree from es using STR packing with the
// given fanout (clamped to a minimum of 2; DefaultFanout if
// non-positive). The input slice is not modified.
func BuildBoxes(es []BoxEntry, fanout int) *BoxTree {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 2 {
		fanout = 2
	}
	t := &BoxTree{size: len(es), fanout: fanout}
	if len(es) == 0 {
		return t
	}
	entries := make([]BoxEntry, len(es))
	copy(entries, es)
	t.root = buildBoxLevel(packBoxLeaves(entries, fanout), fanout)
	return t
}

// Size returns the number of indexed rectangles.
func (t *BoxTree) Size() int { return t.size }

// Height returns the number of levels (0 for an empty tree).
func (t *BoxTree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if len(n.children) == 0 {
			break
		}
		n = n.children[0]
	}
	return h
}

// Bounds returns the MBR of all indexed rectangles (empty rect when
// empty).
func (t *BoxTree) Bounds() geom.Rect {
	if t.root == nil {
		return geom.EmptyRect()
	}
	return t.root.rect
}

// NumLeaves counts leaf nodes (used by the packing test to check STR
// fill factor).
func (t *BoxTree) NumLeaves() int {
	n := 0
	var walk func(*boxNode)
	walk = func(b *boxNode) {
		if b.children == nil {
			n++
			return
		}
		for _, c := range b.children {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return n
}

// SearchIntersects visits every indexed rectangle intersecting q
// (borders inclusive).
func (t *BoxTree) SearchIntersects(q geom.Rect, visit func(BoxEntry)) {
	if t.root == nil {
		return
	}
	var walk func(n *boxNode)
	walk = func(n *boxNode) {
		if !n.rect.Intersects(q) {
			return
		}
		if n.children == nil {
			for _, e := range n.entries {
				if e.Rect.Intersects(q) {
					visit(e)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// packBoxLeaves tiles entries into leaves exactly like packLeaves, using
// rectangle centers as the STR sort keys.
func packBoxLeaves(entries []BoxEntry, fanout int) []*boxNode {
	slices.SortFunc(entries, func(a, b BoxEntry) int { return cmp.Compare(a.Rect.Center().X, b.Rect.Center().X) })
	nLeaves := (len(entries) + fanout - 1) / fanout
	sliceCount := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	sliceSize := sliceCount * fanout

	var leaves []*boxNode
	for lo := 0; lo < len(entries); lo += sliceSize {
		hi := lo + sliceSize
		if hi > len(entries) {
			hi = len(entries)
		}
		slice := entries[lo:hi]
		slices.SortFunc(slice, func(a, b BoxEntry) int { return cmp.Compare(a.Rect.Center().Y, b.Rect.Center().Y) })
		for s := 0; s < len(slice); s += fanout {
			e := s + fanout
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &boxNode{entries: slice[s:e:e]}
			leaf.rect = slice[s].Rect
			for _, be := range slice[s+1 : e] {
				leaf.rect = leaf.rect.Union(be.Rect)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func buildBoxLevel(nodes []*boxNode, fanout int) *boxNode {
	if len(nodes) == 1 {
		return nodes[0]
	}
	slices.SortFunc(nodes, func(a, b *boxNode) int { return cmp.Compare(a.rect.Center().X, b.rect.Center().X) })
	nParents := (len(nodes) + fanout - 1) / fanout
	sliceCount := int(math.Ceil(math.Sqrt(float64(nParents))))
	sliceSize := sliceCount * fanout

	var parents []*boxNode
	for lo := 0; lo < len(nodes); lo += sliceSize {
		hi := lo + sliceSize
		if hi > len(nodes) {
			hi = len(nodes)
		}
		slice := nodes[lo:hi]
		slices.SortFunc(slice, func(a, b *boxNode) int { return cmp.Compare(a.rect.Center().Y, b.rect.Center().Y) })
		for s := 0; s < len(slice); s += fanout {
			e := s + fanout
			if e > len(slice) {
				e = len(slice)
			}
			p := &boxNode{children: append([]*boxNode(nil), slice[s:e]...)}
			p.rect = slice[s].rect
			for _, c := range slice[s+1 : e] {
				p.rect = p.rect.Union(c.rect)
			}
			parents = append(parents, p)
		}
	}
	return buildBoxLevel(parents, fanout)
}
