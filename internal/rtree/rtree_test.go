package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/tuple"
)

func randomTuples(rng *rand.Rand, n int, extent float64) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{
			ID: int64(i),
			Pt: geom.Point{X: rng.Float64() * extent, Y: rng.Float64() * extent},
		}
	}
	return out
}

func idsWithin(ts []tuple.Tuple, c geom.Point, eps float64) []int64 {
	var out []int64
	for _, t := range ts {
		if t.Pt.WithinDist(c, eps) {
			out = append(out, t.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, 0)
	if tr.Size() != 0 || tr.Height() != 0 {
		t.Fatalf("empty tree size/height = %d/%d", tr.Size(), tr.Height())
	}
	if !tr.Bounds().IsEmpty() {
		t.Fatal("empty tree bounds must be empty")
	}
	tr.Within(geom.Point{}, 1, func(tuple.Tuple) { t.Fatal("visit on empty tree") })
	tr.SearchRect(geom.Rect{MaxX: 1, MaxY: 1}, func(tuple.Tuple) { t.Fatal("visit on empty tree") })
}

func TestSingleEntry(t *testing.T) {
	tr := Build([]tuple.Tuple{{ID: 7, Pt: geom.Point{X: 3, Y: 4}}}, 4)
	if tr.Size() != 1 || tr.Height() != 1 {
		t.Fatalf("size/height = %d/%d", tr.Size(), tr.Height())
	}
	var hits []int64
	tr.Within(geom.Point{X: 0, Y: 0}, 5, func(e tuple.Tuple) { hits = append(hits, e.ID) })
	if len(hits) != 1 || hits[0] != 7 {
		t.Fatalf("hits = %v", hits)
	}
	hits = nil
	tr.Within(geom.Point{X: 0, Y: 0}, 4.9, func(e tuple.Tuple) { hits = append(hits, e.ID) })
	if len(hits) != 0 {
		t.Fatalf("point beyond eps reported: %v", hits)
	}
}

func TestWithinMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 100, 5000} {
		for _, fanout := range []int{2, 4, 16, 64} {
			ts := randomTuples(rng, n, 50)
			tr := Build(ts, fanout)
			if tr.Size() != n {
				t.Fatalf("size = %d, want %d", tr.Size(), n)
			}
			for q := 0; q < 50; q++ {
				c := geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
				eps := rng.Float64() * 5
				want := idsWithin(ts, c, eps)
				var got []int64
				tr.Within(c, eps, func(e tuple.Tuple) { got = append(got, e.ID) })
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				if len(got) != len(want) {
					t.Fatalf("n=%d fanout=%d: got %d hits, want %d", n, fanout, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d fanout=%d: hit %d = %d, want %d", n, fanout, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSearchRectMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ts := randomTuples(rng, 3000, 30)
	tr := Build(ts, 8)
	for q := 0; q < 50; q++ {
		r := geom.NewRect(rng.Float64()*30, rng.Float64()*30, rng.Float64()*30, rng.Float64()*30)
		want := 0
		for _, e := range ts {
			if r.Contains(e.Pt) {
				want++
			}
		}
		got := 0
		tr.SearchRect(r, func(tuple.Tuple) { got++ })
		if got != want {
			t.Fatalf("query %d: got %d, want %d", q, got, want)
		}
	}
}

func TestBoundsCoverAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := randomTuples(rng, 1000, 20)
	tr := Build(ts, 16)
	b := tr.Bounds()
	for _, e := range ts {
		if !b.Contains(e.Pt) {
			t.Fatalf("bounds %+v exclude %v", b, e.Pt)
		}
	}
}

func TestHeightLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ts := randomTuples(rng, 10_000, 100)
	tr := Build(ts, 16)
	// 10000 points, fanout 16: ceil(log16(10000/16)) + 1 levels ~ 4.
	if h := tr.Height(); h < 2 || h > 5 {
		t.Fatalf("height = %d, want 2..5", h)
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts := randomTuples(rng, 500, 10)
	before := append([]tuple.Tuple(nil), ts...)
	Build(ts, 8)
	for i := range ts {
		if ts[i].ID != before[i].ID || ts[i].Pt != before[i].Pt {
			t.Fatal("Build reordered its input")
		}
	}
}

func TestDuplicatePositions(t *testing.T) {
	ts := make([]tuple.Tuple, 100)
	for i := range ts {
		ts[i] = tuple.Tuple{ID: int64(i), Pt: geom.Point{X: 1, Y: 1}}
	}
	tr := Build(ts, 4)
	got := 0
	tr.Within(geom.Point{X: 1, Y: 1}, 0, func(tuple.Tuple) { got++ })
	if got != 100 {
		t.Fatalf("co-located points: got %d hits, want 100", got)
	}
}

func BenchmarkBuild100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ts := randomTuples(rng, 100_000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(ts, 16)
	}
}

func BenchmarkWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ts := randomTuples(rng, 100_000, 1000)
	tr := Build(ts, 16)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		c := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		tr.Within(c, 5, func(tuple.Tuple) { n++ })
	}
}

func nearestLinear(ts []tuple.Tuple, c geom.Point, k int) []int64 {
	type cand struct {
		id   int64
		dist float64
	}
	cands := make([]cand, len(ts))
	for i, t := range ts {
		cands[i] = cand{t.ID, t.Pt.SqDist(c)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int64, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}

func TestNearestMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ts := randomTuples(rng, 3000, 40)
	tr := Build(ts, 8)
	for q := 0; q < 200; q++ {
		c := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
		k := 1 + rng.Intn(20)
		want := nearestLinear(ts, c, k)
		got := tr.Nearest(c, k)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d neighbours, want %d", q, len(got), len(want))
		}
		for i := range want {
			// Equal-distance ties may legitimately order differently only
			// if distances collide; we break ties by id in both, so exact
			// equality is required.
			if got[i].ID != want[i] {
				t.Fatalf("query %d: neighbour %d = id %d, want %d", q, i, got[i].ID, want[i])
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	empty := Build(nil, 4)
	if out := empty.Nearest(geom.Point{}, 5); out != nil {
		t.Fatalf("empty tree knn = %v", out)
	}
	ts := randomTuples(rand.New(rand.NewSource(7)), 10, 5)
	tr := Build(ts, 4)
	if out := tr.Nearest(geom.Point{X: 1, Y: 1}, 0); out != nil {
		t.Fatalf("k=0 should be nil, got %v", out)
	}
	if out := tr.Nearest(geom.Point{X: 1, Y: 1}, 100); len(out) != 10 {
		t.Fatalf("k > n should return all %d points, got %d", 10, len(out))
	}
	// Ordered ascending.
	prev := -1.0
	for _, e := range tr.Nearest(geom.Point{X: 1, Y: 1}, 10) {
		d := e.Pt.SqDist(geom.Point{X: 1, Y: 1})
		if d < prev {
			t.Fatal("knn results not sorted by distance")
		}
		prev = d
	}
}

func BenchmarkNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ts := randomTuples(rng, 100_000, 1000)
	tr := Build(ts, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		tr.Nearest(c, 10)
	}
}
