package extgeom

import (
	"fmt"

	"spatialjoin/internal/geom"
)

// Predicate names the spatial relations the non-point join engines
// evaluate. The filter step of a join works on MBRs (widened by ε for
// WithinDistance); the refinement step evaluates the exact predicate
// through Eval.
type Predicate uint8

const (
	// Intersects holds when the two objects share at least one point
	// (boundary contact and containment both count).
	Intersects Predicate = iota
	// Contains holds when the left object fully contains the right one
	// (boundary contact allowed). Only polygons have an interior, so a
	// non-polygon left side contains nothing but an identical point.
	Contains
	// WithinDistance holds when the minimum distance between the two
	// objects is at most ε.
	WithinDistance
)

// String names the predicate in the form the HTTP API accepts.
func (p Predicate) String() string {
	switch p {
	case Intersects:
		return "intersects"
	case Contains:
		return "contains"
	case WithinDistance:
		return "within"
	}
	return fmt.Sprintf("predicate(%d)", uint8(p))
}

// ParsePredicate is the inverse of String, accepting a few aliases.
func ParsePredicate(s string) (Predicate, error) {
	switch s {
	case "intersects", "intersect":
		return Intersects, nil
	case "contains":
		return Contains, nil
	case "within", "within-distance", "withindistance":
		return WithinDistance, nil
	}
	return 0, fmt.Errorf("extgeom: unknown predicate %q (want intersects, contains or within)", s)
}

// Eval evaluates the predicate on a concrete object pair. eps is only
// consulted by WithinDistance.
func Eval(p Predicate, a, b *Object, eps float64) bool {
	switch p {
	case Intersects:
		return IntersectsObjects(a, b)
	case Contains:
		return ContainsObject(a, b)
	case WithinDistance:
		return WithinDist(a, b, eps)
	}
	return false
}

// IntersectsObjects reports whether the two objects share at least one
// point: their boundaries cross or touch, or one lies inside the other's
// interior.
func IntersectsObjects(a, b *Object) bool {
	if !a.Bounds().Intersects(b.Bounds()) {
		return false
	}
	return SqDist(a, b) == 0
}

// ContainsObject reports whether a fully contains b, boundary contact
// allowed. Only a polygon has an interior; for non-polygon a the relation
// degenerates to point equality (a point "contains" an identical point).
//
// For polygon a the test is: every vertex of b lies in the closed region
// of a, and no segment of b properly crosses a's boundary. Segments that
// graze a's boundary through one of a's vertices are additionally probed
// at interior sample points, which resolves the vertex-on-edge cases the
// proper-crossing test alone cannot see.
func ContainsObject(a, b *Object) bool {
	if a.Kind != KindPolygon {
		return a.Kind == KindPoint && b.Kind == KindPoint && a.Verts[0] == b.Verts[0]
	}
	if !a.Bounds().ContainsRect(b.Bounds()) {
		return false
	}
	for _, v := range b.Verts {
		if !a.ContainsPoint(v) {
			return false
		}
	}
	if b.Kind == KindPoint {
		return true
	}
	contained := true
	b.segments(func(sb Segment) {
		if !contained {
			return
		}
		grazes := false
		a.segments(func(sa Segment) {
			if !contained || !SegmentsIntersect(sa, sb) {
				return
			}
			if properCross(sa, sb) {
				contained = false
				return
			}
			grazes = true
		})
		if !contained || !grazes {
			return
		}
		// The segment touches a's boundary without a proper crossing
		// (endpoint contact, collinear overlap, or a pass through one of
		// a's vertices). Probe interior points of the segment: any sample
		// outside a proves an excursion.
		for _, t := range [...]float64{0.25, 0.5, 0.75} {
			p := interp(sb, t)
			if !a.ContainsPoint(p) {
				contained = false
				return
			}
		}
	})
	return contained
}

// properCross reports whether the two segments cross at a single interior
// point of both (strict orientation sign changes on both sides) — the
// unambiguous "goes through the boundary" case.
func properCross(a, b Segment) bool {
	d1 := orient(b.A, b.B, a.A)
	d2 := orient(b.A, b.B, a.B)
	d3 := orient(a.A, a.B, b.A)
	d4 := orient(a.A, a.B, b.B)
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

func interp(s Segment, t float64) geom.Point {
	return geom.Point{
		X: s.A.X + t*(s.B.X-s.A.X),
		Y: s.A.Y + t*(s.B.Y-s.A.Y),
	}
}
